# Empty compiler generated dependencies file for fig5_stability.
# This may be replaced when dependencies are built.
