file(REMOVE_RECURSE
  "CMakeFiles/fig5_stability.dir/fig5_stability.cpp.o"
  "CMakeFiles/fig5_stability.dir/fig5_stability.cpp.o.d"
  "fig5_stability"
  "fig5_stability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_stability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
