
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/common.cpp" "bench/CMakeFiles/bench_common.dir/common.cpp.o" "gcc" "bench/CMakeFiles/bench_common.dir/common.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/she_common.dir/DependInfo.cmake"
  "/root/repo/build/src/stream/CMakeFiles/she_stream.dir/DependInfo.cmake"
  "/root/repo/build/src/sketch/CMakeFiles/she_sketch.dir/DependInfo.cmake"
  "/root/repo/build/src/she/CMakeFiles/she_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/she_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/she_hw.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
