# Empty compiler generated dependencies file for table2_3_hardware.
# This may be replaced when dependencies are built.
