file(REMOVE_RECURSE
  "CMakeFiles/table2_3_hardware.dir/table2_3_hardware.cpp.o"
  "CMakeFiles/table2_3_hardware.dir/table2_3_hardware.cpp.o.d"
  "table2_3_hardware"
  "table2_3_hardware.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_3_hardware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
