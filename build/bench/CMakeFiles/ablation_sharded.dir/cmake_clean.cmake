file(REMOVE_RECURSE
  "CMakeFiles/ablation_sharded.dir/ablation_sharded.cpp.o"
  "CMakeFiles/ablation_sharded.dir/ablation_sharded.cpp.o.d"
  "ablation_sharded"
  "ablation_sharded.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_sharded.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
