# Empty compiler generated dependencies file for ablation_sharded.
# This may be replaced when dependencies are built.
