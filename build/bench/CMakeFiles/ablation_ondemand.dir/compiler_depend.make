# Empty compiler generated dependencies file for ablation_ondemand.
# This may be replaced when dependencies are built.
