file(REMOVE_RECURSE
  "CMakeFiles/ablation_ondemand.dir/ablation_ondemand.cpp.o"
  "CMakeFiles/ablation_ondemand.dir/ablation_ondemand.cpp.o.d"
  "ablation_ondemand"
  "ablation_ondemand.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_ondemand.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
