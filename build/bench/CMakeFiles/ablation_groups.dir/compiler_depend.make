# Empty compiler generated dependencies file for ablation_groups.
# This may be replaced when dependencies are built.
