file(REMOVE_RECURSE
  "CMakeFiles/ablation_groups.dir/ablation_groups.cpp.o"
  "CMakeFiles/ablation_groups.dir/ablation_groups.cpp.o.d"
  "ablation_groups"
  "ablation_groups.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_groups.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
