# Empty compiler generated dependencies file for ablation_softhw.
# This may be replaced when dependencies are built.
