file(REMOVE_RECURSE
  "CMakeFiles/ablation_softhw.dir/ablation_softhw.cpp.o"
  "CMakeFiles/ablation_softhw.dir/ablation_softhw.cpp.o.d"
  "ablation_softhw"
  "ablation_softhw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_softhw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
