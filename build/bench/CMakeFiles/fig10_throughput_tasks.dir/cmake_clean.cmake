file(REMOVE_RECURSE
  "CMakeFiles/fig10_throughput_tasks.dir/fig10_throughput_tasks.cpp.o"
  "CMakeFiles/fig10_throughput_tasks.dir/fig10_throughput_tasks.cpp.o.d"
  "fig10_throughput_tasks"
  "fig10_throughput_tasks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_throughput_tasks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
