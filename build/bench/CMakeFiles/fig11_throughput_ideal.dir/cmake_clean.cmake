file(REMOVE_RECURSE
  "CMakeFiles/fig11_throughput_ideal.dir/fig11_throughput_ideal.cpp.o"
  "CMakeFiles/fig11_throughput_ideal.dir/fig11_throughput_ideal.cpp.o.d"
  "fig11_throughput_ideal"
  "fig11_throughput_ideal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_throughput_ideal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
