# Empty compiler generated dependencies file for fig11_throughput_ideal.
# This may be replaced when dependencies are built.
