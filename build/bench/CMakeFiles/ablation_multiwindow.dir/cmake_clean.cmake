file(REMOVE_RECURSE
  "CMakeFiles/ablation_multiwindow.dir/ablation_multiwindow.cpp.o"
  "CMakeFiles/ablation_multiwindow.dir/ablation_multiwindow.cpp.o.d"
  "ablation_multiwindow"
  "ablation_multiwindow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_multiwindow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
