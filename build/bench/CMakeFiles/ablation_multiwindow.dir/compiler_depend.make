# Empty compiler generated dependencies file for ablation_multiwindow.
# This may be replaced when dependencies are built.
