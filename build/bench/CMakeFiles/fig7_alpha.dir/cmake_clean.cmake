file(REMOVE_RECURSE
  "CMakeFiles/fig7_alpha.dir/fig7_alpha.cpp.o"
  "CMakeFiles/fig7_alpha.dir/fig7_alpha.cpp.o.d"
  "fig7_alpha"
  "fig7_alpha.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_alpha.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
