# Empty dependencies file for fig8_shebf_params.
# This may be replaced when dependencies are built.
