file(REMOVE_RECURSE
  "CMakeFiles/fig8_shebf_params.dir/fig8_shebf_params.cpp.o"
  "CMakeFiles/fig8_shebf_params.dir/fig8_shebf_params.cpp.o.d"
  "fig8_shebf_params"
  "fig8_shebf_params.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_shebf_params.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
