# Empty dependencies file for she_tools_lib.
# This may be replaced when dependencies are built.
