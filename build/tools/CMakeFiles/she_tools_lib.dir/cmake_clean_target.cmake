file(REMOVE_RECURSE
  "libshe_tools_lib.a"
)
