file(REMOVE_RECURSE
  "CMakeFiles/she_tools_lib.dir/args.cpp.o"
  "CMakeFiles/she_tools_lib.dir/args.cpp.o.d"
  "CMakeFiles/she_tools_lib.dir/commands.cpp.o"
  "CMakeFiles/she_tools_lib.dir/commands.cpp.o.d"
  "libshe_tools_lib.a"
  "libshe_tools_lib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/she_tools_lib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
