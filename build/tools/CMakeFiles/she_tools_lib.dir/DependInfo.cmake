
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tools/args.cpp" "tools/CMakeFiles/she_tools_lib.dir/args.cpp.o" "gcc" "tools/CMakeFiles/she_tools_lib.dir/args.cpp.o.d"
  "/root/repo/tools/commands.cpp" "tools/CMakeFiles/she_tools_lib.dir/commands.cpp.o" "gcc" "tools/CMakeFiles/she_tools_lib.dir/commands.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/she_common.dir/DependInfo.cmake"
  "/root/repo/build/src/stream/CMakeFiles/she_stream.dir/DependInfo.cmake"
  "/root/repo/build/src/sketch/CMakeFiles/she_sketch.dir/DependInfo.cmake"
  "/root/repo/build/src/she/CMakeFiles/she_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/she_baselines.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
