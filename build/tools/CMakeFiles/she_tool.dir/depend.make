# Empty dependencies file for she_tool.
# This may be replaced when dependencies are built.
