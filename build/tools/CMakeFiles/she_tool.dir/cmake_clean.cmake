file(REMOVE_RECURSE
  "CMakeFiles/she_tool.dir/she_tool.cpp.o"
  "CMakeFiles/she_tool.dir/she_tool.cpp.o.d"
  "she_tool"
  "she_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/she_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
