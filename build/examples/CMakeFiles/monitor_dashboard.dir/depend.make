# Empty dependencies file for monitor_dashboard.
# This may be replaced when dependencies are built.
