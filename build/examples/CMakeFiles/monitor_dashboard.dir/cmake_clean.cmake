file(REMOVE_RECURSE
  "CMakeFiles/monitor_dashboard.dir/monitor_dashboard.cpp.o"
  "CMakeFiles/monitor_dashboard.dir/monitor_dashboard.cpp.o.d"
  "monitor_dashboard"
  "monitor_dashboard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/monitor_dashboard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
