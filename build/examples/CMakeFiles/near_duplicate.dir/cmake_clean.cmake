file(REMOVE_RECURSE
  "CMakeFiles/near_duplicate.dir/near_duplicate.cpp.o"
  "CMakeFiles/near_duplicate.dir/near_duplicate.cpp.o.d"
  "near_duplicate"
  "near_duplicate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/near_duplicate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
