# Empty compiler generated dependencies file for near_duplicate.
# This may be replaced when dependencies are built.
