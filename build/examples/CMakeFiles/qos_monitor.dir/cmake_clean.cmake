file(REMOVE_RECURSE
  "CMakeFiles/qos_monitor.dir/qos_monitor.cpp.o"
  "CMakeFiles/qos_monitor.dir/qos_monitor.cpp.o.d"
  "qos_monitor"
  "qos_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qos_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
