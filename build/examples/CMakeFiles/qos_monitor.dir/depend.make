# Empty dependencies file for qos_monitor.
# This may be replaced when dependencies are built.
