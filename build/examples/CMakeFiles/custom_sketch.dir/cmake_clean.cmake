file(REMOVE_RECURSE
  "CMakeFiles/custom_sketch.dir/custom_sketch.cpp.o"
  "CMakeFiles/custom_sketch.dir/custom_sketch.cpp.o.d"
  "custom_sketch"
  "custom_sketch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_sketch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
