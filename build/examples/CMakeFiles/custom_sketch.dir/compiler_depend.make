# Empty compiler generated dependencies file for custom_sketch.
# This may be replaced when dependencies are built.
