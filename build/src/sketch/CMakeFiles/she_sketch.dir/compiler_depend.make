# Empty compiler generated dependencies file for she_sketch.
# This may be replaced when dependencies are built.
