
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sketch/bitmap.cpp" "src/sketch/CMakeFiles/she_sketch.dir/bitmap.cpp.o" "gcc" "src/sketch/CMakeFiles/she_sketch.dir/bitmap.cpp.o.d"
  "/root/repo/src/sketch/bloom_filter.cpp" "src/sketch/CMakeFiles/she_sketch.dir/bloom_filter.cpp.o" "gcc" "src/sketch/CMakeFiles/she_sketch.dir/bloom_filter.cpp.o.d"
  "/root/repo/src/sketch/count_min.cpp" "src/sketch/CMakeFiles/she_sketch.dir/count_min.cpp.o" "gcc" "src/sketch/CMakeFiles/she_sketch.dir/count_min.cpp.o.d"
  "/root/repo/src/sketch/hyperloglog.cpp" "src/sketch/CMakeFiles/she_sketch.dir/hyperloglog.cpp.o" "gcc" "src/sketch/CMakeFiles/she_sketch.dir/hyperloglog.cpp.o.d"
  "/root/repo/src/sketch/minhash.cpp" "src/sketch/CMakeFiles/she_sketch.dir/minhash.cpp.o" "gcc" "src/sketch/CMakeFiles/she_sketch.dir/minhash.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/she_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
