file(REMOVE_RECURSE
  "CMakeFiles/she_sketch.dir/bitmap.cpp.o"
  "CMakeFiles/she_sketch.dir/bitmap.cpp.o.d"
  "CMakeFiles/she_sketch.dir/bloom_filter.cpp.o"
  "CMakeFiles/she_sketch.dir/bloom_filter.cpp.o.d"
  "CMakeFiles/she_sketch.dir/count_min.cpp.o"
  "CMakeFiles/she_sketch.dir/count_min.cpp.o.d"
  "CMakeFiles/she_sketch.dir/hyperloglog.cpp.o"
  "CMakeFiles/she_sketch.dir/hyperloglog.cpp.o.d"
  "CMakeFiles/she_sketch.dir/minhash.cpp.o"
  "CMakeFiles/she_sketch.dir/minhash.cpp.o.d"
  "libshe_sketch.a"
  "libshe_sketch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/she_sketch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
