file(REMOVE_RECURSE
  "libshe_sketch.a"
)
