file(REMOVE_RECURSE
  "CMakeFiles/she_baselines.dir/compact_table.cpp.o"
  "CMakeFiles/she_baselines.dir/compact_table.cpp.o.d"
  "CMakeFiles/she_baselines.dir/cvs.cpp.o"
  "CMakeFiles/she_baselines.dir/cvs.cpp.o.d"
  "CMakeFiles/she_baselines.dir/ecm.cpp.o"
  "CMakeFiles/she_baselines.dir/ecm.cpp.o.d"
  "CMakeFiles/she_baselines.dir/shll.cpp.o"
  "CMakeFiles/she_baselines.dir/shll.cpp.o.d"
  "CMakeFiles/she_baselines.dir/strawman_minhash.cpp.o"
  "CMakeFiles/she_baselines.dir/strawman_minhash.cpp.o.d"
  "CMakeFiles/she_baselines.dir/swamp.cpp.o"
  "CMakeFiles/she_baselines.dir/swamp.cpp.o.d"
  "CMakeFiles/she_baselines.dir/tbf.cpp.o"
  "CMakeFiles/she_baselines.dir/tbf.cpp.o.d"
  "CMakeFiles/she_baselines.dir/tobf.cpp.o"
  "CMakeFiles/she_baselines.dir/tobf.cpp.o.d"
  "CMakeFiles/she_baselines.dir/tsv.cpp.o"
  "CMakeFiles/she_baselines.dir/tsv.cpp.o.d"
  "libshe_baselines.a"
  "libshe_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/she_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
