# Empty compiler generated dependencies file for she_baselines.
# This may be replaced when dependencies are built.
