file(REMOVE_RECURSE
  "libshe_baselines.a"
)
