
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/compact_table.cpp" "src/baselines/CMakeFiles/she_baselines.dir/compact_table.cpp.o" "gcc" "src/baselines/CMakeFiles/she_baselines.dir/compact_table.cpp.o.d"
  "/root/repo/src/baselines/cvs.cpp" "src/baselines/CMakeFiles/she_baselines.dir/cvs.cpp.o" "gcc" "src/baselines/CMakeFiles/she_baselines.dir/cvs.cpp.o.d"
  "/root/repo/src/baselines/ecm.cpp" "src/baselines/CMakeFiles/she_baselines.dir/ecm.cpp.o" "gcc" "src/baselines/CMakeFiles/she_baselines.dir/ecm.cpp.o.d"
  "/root/repo/src/baselines/shll.cpp" "src/baselines/CMakeFiles/she_baselines.dir/shll.cpp.o" "gcc" "src/baselines/CMakeFiles/she_baselines.dir/shll.cpp.o.d"
  "/root/repo/src/baselines/strawman_minhash.cpp" "src/baselines/CMakeFiles/she_baselines.dir/strawman_minhash.cpp.o" "gcc" "src/baselines/CMakeFiles/she_baselines.dir/strawman_minhash.cpp.o.d"
  "/root/repo/src/baselines/swamp.cpp" "src/baselines/CMakeFiles/she_baselines.dir/swamp.cpp.o" "gcc" "src/baselines/CMakeFiles/she_baselines.dir/swamp.cpp.o.d"
  "/root/repo/src/baselines/tbf.cpp" "src/baselines/CMakeFiles/she_baselines.dir/tbf.cpp.o" "gcc" "src/baselines/CMakeFiles/she_baselines.dir/tbf.cpp.o.d"
  "/root/repo/src/baselines/tobf.cpp" "src/baselines/CMakeFiles/she_baselines.dir/tobf.cpp.o" "gcc" "src/baselines/CMakeFiles/she_baselines.dir/tobf.cpp.o.d"
  "/root/repo/src/baselines/tsv.cpp" "src/baselines/CMakeFiles/she_baselines.dir/tsv.cpp.o" "gcc" "src/baselines/CMakeFiles/she_baselines.dir/tsv.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/she_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sketch/CMakeFiles/she_sketch.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
