file(REMOVE_RECURSE
  "CMakeFiles/she_stream.dir/oracle.cpp.o"
  "CMakeFiles/she_stream.dir/oracle.cpp.o.d"
  "CMakeFiles/she_stream.dir/patterns.cpp.o"
  "CMakeFiles/she_stream.dir/patterns.cpp.o.d"
  "CMakeFiles/she_stream.dir/trace.cpp.o"
  "CMakeFiles/she_stream.dir/trace.cpp.o.d"
  "CMakeFiles/she_stream.dir/trace_io.cpp.o"
  "CMakeFiles/she_stream.dir/trace_io.cpp.o.d"
  "libshe_stream.a"
  "libshe_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/she_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
