file(REMOVE_RECURSE
  "libshe_stream.a"
)
