
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stream/oracle.cpp" "src/stream/CMakeFiles/she_stream.dir/oracle.cpp.o" "gcc" "src/stream/CMakeFiles/she_stream.dir/oracle.cpp.o.d"
  "/root/repo/src/stream/patterns.cpp" "src/stream/CMakeFiles/she_stream.dir/patterns.cpp.o" "gcc" "src/stream/CMakeFiles/she_stream.dir/patterns.cpp.o.d"
  "/root/repo/src/stream/trace.cpp" "src/stream/CMakeFiles/she_stream.dir/trace.cpp.o" "gcc" "src/stream/CMakeFiles/she_stream.dir/trace.cpp.o.d"
  "/root/repo/src/stream/trace_io.cpp" "src/stream/CMakeFiles/she_stream.dir/trace_io.cpp.o" "gcc" "src/stream/CMakeFiles/she_stream.dir/trace_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/she_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
