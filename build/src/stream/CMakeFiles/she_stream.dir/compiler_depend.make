# Empty compiler generated dependencies file for she_stream.
# This may be replaced when dependencies are built.
