file(REMOVE_RECURSE
  "libshe_hw.a"
)
