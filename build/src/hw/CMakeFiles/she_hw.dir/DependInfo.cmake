
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hw/access_trace.cpp" "src/hw/CMakeFiles/she_hw.dir/access_trace.cpp.o" "gcc" "src/hw/CMakeFiles/she_hw.dir/access_trace.cpp.o.d"
  "/root/repo/src/hw/builders.cpp" "src/hw/CMakeFiles/she_hw.dir/builders.cpp.o" "gcc" "src/hw/CMakeFiles/she_hw.dir/builders.cpp.o.d"
  "/root/repo/src/hw/cycle_sim.cpp" "src/hw/CMakeFiles/she_hw.dir/cycle_sim.cpp.o" "gcc" "src/hw/CMakeFiles/she_hw.dir/cycle_sim.cpp.o.d"
  "/root/repo/src/hw/pipeline.cpp" "src/hw/CMakeFiles/she_hw.dir/pipeline.cpp.o" "gcc" "src/hw/CMakeFiles/she_hw.dir/pipeline.cpp.o.d"
  "/root/repo/src/hw/switch_profile.cpp" "src/hw/CMakeFiles/she_hw.dir/switch_profile.cpp.o" "gcc" "src/hw/CMakeFiles/she_hw.dir/switch_profile.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/she_common.dir/DependInfo.cmake"
  "/root/repo/build/src/she/CMakeFiles/she_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sketch/CMakeFiles/she_sketch.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
