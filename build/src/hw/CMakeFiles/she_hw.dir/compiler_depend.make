# Empty compiler generated dependencies file for she_hw.
# This may be replaced when dependencies are built.
