file(REMOVE_RECURSE
  "CMakeFiles/she_hw.dir/access_trace.cpp.o"
  "CMakeFiles/she_hw.dir/access_trace.cpp.o.d"
  "CMakeFiles/she_hw.dir/builders.cpp.o"
  "CMakeFiles/she_hw.dir/builders.cpp.o.d"
  "CMakeFiles/she_hw.dir/cycle_sim.cpp.o"
  "CMakeFiles/she_hw.dir/cycle_sim.cpp.o.d"
  "CMakeFiles/she_hw.dir/pipeline.cpp.o"
  "CMakeFiles/she_hw.dir/pipeline.cpp.o.d"
  "CMakeFiles/she_hw.dir/switch_profile.cpp.o"
  "CMakeFiles/she_hw.dir/switch_profile.cpp.o.d"
  "libshe_hw.a"
  "libshe_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/she_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
