file(REMOVE_RECURSE
  "CMakeFiles/she_common.dir/bit_array.cpp.o"
  "CMakeFiles/she_common.dir/bit_array.cpp.o.d"
  "CMakeFiles/she_common.dir/bobhash.cpp.o"
  "CMakeFiles/she_common.dir/bobhash.cpp.o.d"
  "CMakeFiles/she_common.dir/io.cpp.o"
  "CMakeFiles/she_common.dir/io.cpp.o.d"
  "CMakeFiles/she_common.dir/packed_array.cpp.o"
  "CMakeFiles/she_common.dir/packed_array.cpp.o.d"
  "CMakeFiles/she_common.dir/stats.cpp.o"
  "CMakeFiles/she_common.dir/stats.cpp.o.d"
  "CMakeFiles/she_common.dir/table.cpp.o"
  "CMakeFiles/she_common.dir/table.cpp.o.d"
  "CMakeFiles/she_common.dir/zipf.cpp.o"
  "CMakeFiles/she_common.dir/zipf.cpp.o.d"
  "libshe_common.a"
  "libshe_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/she_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
