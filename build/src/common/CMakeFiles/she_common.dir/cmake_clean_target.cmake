file(REMOVE_RECURSE
  "libshe_common.a"
)
