# Empty dependencies file for she_common.
# This may be replaced when dependencies are built.
