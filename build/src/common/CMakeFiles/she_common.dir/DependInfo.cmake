
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/bit_array.cpp" "src/common/CMakeFiles/she_common.dir/bit_array.cpp.o" "gcc" "src/common/CMakeFiles/she_common.dir/bit_array.cpp.o.d"
  "/root/repo/src/common/bobhash.cpp" "src/common/CMakeFiles/she_common.dir/bobhash.cpp.o" "gcc" "src/common/CMakeFiles/she_common.dir/bobhash.cpp.o.d"
  "/root/repo/src/common/io.cpp" "src/common/CMakeFiles/she_common.dir/io.cpp.o" "gcc" "src/common/CMakeFiles/she_common.dir/io.cpp.o.d"
  "/root/repo/src/common/packed_array.cpp" "src/common/CMakeFiles/she_common.dir/packed_array.cpp.o" "gcc" "src/common/CMakeFiles/she_common.dir/packed_array.cpp.o.d"
  "/root/repo/src/common/stats.cpp" "src/common/CMakeFiles/she_common.dir/stats.cpp.o" "gcc" "src/common/CMakeFiles/she_common.dir/stats.cpp.o.d"
  "/root/repo/src/common/table.cpp" "src/common/CMakeFiles/she_common.dir/table.cpp.o" "gcc" "src/common/CMakeFiles/she_common.dir/table.cpp.o.d"
  "/root/repo/src/common/zipf.cpp" "src/common/CMakeFiles/she_common.dir/zipf.cpp.o" "gcc" "src/common/CMakeFiles/she_common.dir/zipf.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
