file(REMOVE_RECURSE
  "libshe_core.a"
)
