file(REMOVE_RECURSE
  "CMakeFiles/she_core.dir/config.cpp.o"
  "CMakeFiles/she_core.dir/config.cpp.o.d"
  "CMakeFiles/she_core.dir/csm.cpp.o"
  "CMakeFiles/she_core.dir/csm.cpp.o.d"
  "CMakeFiles/she_core.dir/group_clock.cpp.o"
  "CMakeFiles/she_core.dir/group_clock.cpp.o.d"
  "CMakeFiles/she_core.dir/heavy_hitters.cpp.o"
  "CMakeFiles/she_core.dir/heavy_hitters.cpp.o.d"
  "CMakeFiles/she_core.dir/monitor.cpp.o"
  "CMakeFiles/she_core.dir/monitor.cpp.o.d"
  "CMakeFiles/she_core.dir/she_bitmap.cpp.o"
  "CMakeFiles/she_core.dir/she_bitmap.cpp.o.d"
  "CMakeFiles/she_core.dir/she_bloom.cpp.o"
  "CMakeFiles/she_core.dir/she_bloom.cpp.o.d"
  "CMakeFiles/she_core.dir/she_cm.cpp.o"
  "CMakeFiles/she_core.dir/she_cm.cpp.o.d"
  "CMakeFiles/she_core.dir/she_hll.cpp.o"
  "CMakeFiles/she_core.dir/she_hll.cpp.o.d"
  "CMakeFiles/she_core.dir/she_minhash.cpp.o"
  "CMakeFiles/she_core.dir/she_minhash.cpp.o.d"
  "CMakeFiles/she_core.dir/soft_bloom.cpp.o"
  "CMakeFiles/she_core.dir/soft_bloom.cpp.o.d"
  "CMakeFiles/she_core.dir/tuning.cpp.o"
  "CMakeFiles/she_core.dir/tuning.cpp.o.d"
  "libshe_core.a"
  "libshe_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/she_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
