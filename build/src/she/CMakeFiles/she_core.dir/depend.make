# Empty dependencies file for she_core.
# This may be replaced when dependencies are built.
