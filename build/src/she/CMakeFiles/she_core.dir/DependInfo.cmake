
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/she/config.cpp" "src/she/CMakeFiles/she_core.dir/config.cpp.o" "gcc" "src/she/CMakeFiles/she_core.dir/config.cpp.o.d"
  "/root/repo/src/she/csm.cpp" "src/she/CMakeFiles/she_core.dir/csm.cpp.o" "gcc" "src/she/CMakeFiles/she_core.dir/csm.cpp.o.d"
  "/root/repo/src/she/group_clock.cpp" "src/she/CMakeFiles/she_core.dir/group_clock.cpp.o" "gcc" "src/she/CMakeFiles/she_core.dir/group_clock.cpp.o.d"
  "/root/repo/src/she/heavy_hitters.cpp" "src/she/CMakeFiles/she_core.dir/heavy_hitters.cpp.o" "gcc" "src/she/CMakeFiles/she_core.dir/heavy_hitters.cpp.o.d"
  "/root/repo/src/she/monitor.cpp" "src/she/CMakeFiles/she_core.dir/monitor.cpp.o" "gcc" "src/she/CMakeFiles/she_core.dir/monitor.cpp.o.d"
  "/root/repo/src/she/she_bitmap.cpp" "src/she/CMakeFiles/she_core.dir/she_bitmap.cpp.o" "gcc" "src/she/CMakeFiles/she_core.dir/she_bitmap.cpp.o.d"
  "/root/repo/src/she/she_bloom.cpp" "src/she/CMakeFiles/she_core.dir/she_bloom.cpp.o" "gcc" "src/she/CMakeFiles/she_core.dir/she_bloom.cpp.o.d"
  "/root/repo/src/she/she_cm.cpp" "src/she/CMakeFiles/she_core.dir/she_cm.cpp.o" "gcc" "src/she/CMakeFiles/she_core.dir/she_cm.cpp.o.d"
  "/root/repo/src/she/she_hll.cpp" "src/she/CMakeFiles/she_core.dir/she_hll.cpp.o" "gcc" "src/she/CMakeFiles/she_core.dir/she_hll.cpp.o.d"
  "/root/repo/src/she/she_minhash.cpp" "src/she/CMakeFiles/she_core.dir/she_minhash.cpp.o" "gcc" "src/she/CMakeFiles/she_core.dir/she_minhash.cpp.o.d"
  "/root/repo/src/she/soft_bloom.cpp" "src/she/CMakeFiles/she_core.dir/soft_bloom.cpp.o" "gcc" "src/she/CMakeFiles/she_core.dir/soft_bloom.cpp.o.d"
  "/root/repo/src/she/tuning.cpp" "src/she/CMakeFiles/she_core.dir/tuning.cpp.o" "gcc" "src/she/CMakeFiles/she_core.dir/tuning.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/she_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sketch/CMakeFiles/she_sketch.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
