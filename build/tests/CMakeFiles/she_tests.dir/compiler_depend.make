# Empty compiler generated dependencies file for she_tests.
# This may be replaced when dependencies are built.
