
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_baselines.cpp" "tests/CMakeFiles/she_tests.dir/test_baselines.cpp.o" "gcc" "tests/CMakeFiles/she_tests.dir/test_baselines.cpp.o.d"
  "/root/repo/tests/test_bit_array.cpp" "tests/CMakeFiles/she_tests.dir/test_bit_array.cpp.o" "gcc" "tests/CMakeFiles/she_tests.dir/test_bit_array.cpp.o.d"
  "/root/repo/tests/test_bobhash.cpp" "tests/CMakeFiles/she_tests.dir/test_bobhash.cpp.o" "gcc" "tests/CMakeFiles/she_tests.dir/test_bobhash.cpp.o.d"
  "/root/repo/tests/test_cli.cpp" "tests/CMakeFiles/she_tests.dir/test_cli.cpp.o" "gcc" "tests/CMakeFiles/she_tests.dir/test_cli.cpp.o.d"
  "/root/repo/tests/test_config_tuning.cpp" "tests/CMakeFiles/she_tests.dir/test_config_tuning.cpp.o" "gcc" "tests/CMakeFiles/she_tests.dir/test_config_tuning.cpp.o.d"
  "/root/repo/tests/test_coverage_gaps.cpp" "tests/CMakeFiles/she_tests.dir/test_coverage_gaps.cpp.o" "gcc" "tests/CMakeFiles/she_tests.dir/test_coverage_gaps.cpp.o.d"
  "/root/repo/tests/test_csm.cpp" "tests/CMakeFiles/she_tests.dir/test_csm.cpp.o" "gcc" "tests/CMakeFiles/she_tests.dir/test_csm.cpp.o.d"
  "/root/repo/tests/test_csm_soft.cpp" "tests/CMakeFiles/she_tests.dir/test_csm_soft.cpp.o" "gcc" "tests/CMakeFiles/she_tests.dir/test_csm_soft.cpp.o.d"
  "/root/repo/tests/test_differential.cpp" "tests/CMakeFiles/she_tests.dir/test_differential.cpp.o" "gcc" "tests/CMakeFiles/she_tests.dir/test_differential.cpp.o.d"
  "/root/repo/tests/test_fixed_sketches.cpp" "tests/CMakeFiles/she_tests.dir/test_fixed_sketches.cpp.o" "gcc" "tests/CMakeFiles/she_tests.dir/test_fixed_sketches.cpp.o.d"
  "/root/repo/tests/test_group_clock.cpp" "tests/CMakeFiles/she_tests.dir/test_group_clock.cpp.o" "gcc" "tests/CMakeFiles/she_tests.dir/test_group_clock.cpp.o.d"
  "/root/repo/tests/test_heavy_hitters.cpp" "tests/CMakeFiles/she_tests.dir/test_heavy_hitters.cpp.o" "gcc" "tests/CMakeFiles/she_tests.dir/test_heavy_hitters.cpp.o.d"
  "/root/repo/tests/test_hw.cpp" "tests/CMakeFiles/she_tests.dir/test_hw.cpp.o" "gcc" "tests/CMakeFiles/she_tests.dir/test_hw.cpp.o.d"
  "/root/repo/tests/test_int_math.cpp" "tests/CMakeFiles/she_tests.dir/test_int_math.cpp.o" "gcc" "tests/CMakeFiles/she_tests.dir/test_int_math.cpp.o.d"
  "/root/repo/tests/test_integration.cpp" "tests/CMakeFiles/she_tests.dir/test_integration.cpp.o" "gcc" "tests/CMakeFiles/she_tests.dir/test_integration.cpp.o.d"
  "/root/repo/tests/test_merge.cpp" "tests/CMakeFiles/she_tests.dir/test_merge.cpp.o" "gcc" "tests/CMakeFiles/she_tests.dir/test_merge.cpp.o.d"
  "/root/repo/tests/test_monitor.cpp" "tests/CMakeFiles/she_tests.dir/test_monitor.cpp.o" "gcc" "tests/CMakeFiles/she_tests.dir/test_monitor.cpp.o.d"
  "/root/repo/tests/test_multi_window.cpp" "tests/CMakeFiles/she_tests.dir/test_multi_window.cpp.o" "gcc" "tests/CMakeFiles/she_tests.dir/test_multi_window.cpp.o.d"
  "/root/repo/tests/test_oracle.cpp" "tests/CMakeFiles/she_tests.dir/test_oracle.cpp.o" "gcc" "tests/CMakeFiles/she_tests.dir/test_oracle.cpp.o.d"
  "/root/repo/tests/test_packed_array.cpp" "tests/CMakeFiles/she_tests.dir/test_packed_array.cpp.o" "gcc" "tests/CMakeFiles/she_tests.dir/test_packed_array.cpp.o.d"
  "/root/repo/tests/test_rng_zipf.cpp" "tests/CMakeFiles/she_tests.dir/test_rng_zipf.cpp.o" "gcc" "tests/CMakeFiles/she_tests.dir/test_rng_zipf.cpp.o.d"
  "/root/repo/tests/test_robustness.cpp" "tests/CMakeFiles/she_tests.dir/test_robustness.cpp.o" "gcc" "tests/CMakeFiles/she_tests.dir/test_robustness.cpp.o.d"
  "/root/repo/tests/test_serialize.cpp" "tests/CMakeFiles/she_tests.dir/test_serialize.cpp.o" "gcc" "tests/CMakeFiles/she_tests.dir/test_serialize.cpp.o.d"
  "/root/repo/tests/test_sharded.cpp" "tests/CMakeFiles/she_tests.dir/test_sharded.cpp.o" "gcc" "tests/CMakeFiles/she_tests.dir/test_sharded.cpp.o.d"
  "/root/repo/tests/test_she_bitmap.cpp" "tests/CMakeFiles/she_tests.dir/test_she_bitmap.cpp.o" "gcc" "tests/CMakeFiles/she_tests.dir/test_she_bitmap.cpp.o.d"
  "/root/repo/tests/test_she_bloom.cpp" "tests/CMakeFiles/she_tests.dir/test_she_bloom.cpp.o" "gcc" "tests/CMakeFiles/she_tests.dir/test_she_bloom.cpp.o.d"
  "/root/repo/tests/test_she_cm.cpp" "tests/CMakeFiles/she_tests.dir/test_she_cm.cpp.o" "gcc" "tests/CMakeFiles/she_tests.dir/test_she_cm.cpp.o.d"
  "/root/repo/tests/test_she_hll.cpp" "tests/CMakeFiles/she_tests.dir/test_she_hll.cpp.o" "gcc" "tests/CMakeFiles/she_tests.dir/test_she_hll.cpp.o.d"
  "/root/repo/tests/test_she_minhash.cpp" "tests/CMakeFiles/she_tests.dir/test_she_minhash.cpp.o" "gcc" "tests/CMakeFiles/she_tests.dir/test_she_minhash.cpp.o.d"
  "/root/repo/tests/test_soft_bloom.cpp" "tests/CMakeFiles/she_tests.dir/test_soft_bloom.cpp.o" "gcc" "tests/CMakeFiles/she_tests.dir/test_soft_bloom.cpp.o.d"
  "/root/repo/tests/test_stats_table.cpp" "tests/CMakeFiles/she_tests.dir/test_stats_table.cpp.o" "gcc" "tests/CMakeFiles/she_tests.dir/test_stats_table.cpp.o.d"
  "/root/repo/tests/test_time_based.cpp" "tests/CMakeFiles/she_tests.dir/test_time_based.cpp.o" "gcc" "tests/CMakeFiles/she_tests.dir/test_time_based.cpp.o.d"
  "/root/repo/tests/test_trace.cpp" "tests/CMakeFiles/she_tests.dir/test_trace.cpp.o" "gcc" "tests/CMakeFiles/she_tests.dir/test_trace.cpp.o.d"
  "/root/repo/tests/test_trace_io.cpp" "tests/CMakeFiles/she_tests.dir/test_trace_io.cpp.o" "gcc" "tests/CMakeFiles/she_tests.dir/test_trace_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/she_common.dir/DependInfo.cmake"
  "/root/repo/build/src/stream/CMakeFiles/she_stream.dir/DependInfo.cmake"
  "/root/repo/build/src/sketch/CMakeFiles/she_sketch.dir/DependInfo.cmake"
  "/root/repo/build/src/she/CMakeFiles/she_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/she_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/she_hw.dir/DependInfo.cmake"
  "/root/repo/build/tools/CMakeFiles/she_tools_lib.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
