// Tiny argument parser for the `she_tool` CLI: positional subcommand plus
// `--flag value` / `--flag` pairs.  Deliberately dependency-free and
// testable (commands receive an ArgMap and an output stream).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace she::tools {

class ArgMap {
 public:
  /// Parse `argv`-style tokens (excluding the program & subcommand names).
  /// Tokens starting with "--" become flags; a following non-flag token is
  /// the flag's value, otherwise the flag is boolean.  Throws
  /// std::invalid_argument on stray positional tokens.
  static ArgMap parse(const std::vector<std::string>& tokens);

  [[nodiscard]] bool has(const std::string& flag) const;

  /// String flag with default.
  [[nodiscard]] std::string get(const std::string& flag,
                                const std::string& fallback) const;

  /// Required string flag; throws std::invalid_argument when missing.
  [[nodiscard]] std::string require(const std::string& flag) const;

  /// Unsigned integer flag with default; accepts size suffixes
  /// K/M/G (binary: x1024).  Throws on malformed numbers.
  [[nodiscard]] std::uint64_t get_u64(const std::string& flag,
                                      std::uint64_t fallback) const;

  /// Floating-point flag with default.
  [[nodiscard]] double get_f64(const std::string& flag, double fallback) const;

  /// Flags that were never read by any get/require call — used to report
  /// typos instead of silently ignoring them.
  [[nodiscard]] std::vector<std::string> unused() const;

  /// Parse "64KB"/"2MB"/"4096" into bytes (suffix case-insensitive).
  static std::uint64_t parse_size(const std::string& text);

 private:
  std::map<std::string, std::string> values_;
  mutable std::map<std::string, bool> used_;
};

}  // namespace she::tools
