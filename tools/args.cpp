#include "args.hpp"

#include <algorithm>
#include <cctype>
#include <stdexcept>

namespace she::tools {

ArgMap ArgMap::parse(const std::vector<std::string>& tokens) {
  ArgMap args;
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const std::string& tok = tokens[i];
    if (tok.rfind("--", 0) != 0)
      throw std::invalid_argument("unexpected positional argument '" + tok + "'");
    std::string flag = tok.substr(2);
    if (flag.empty()) throw std::invalid_argument("empty flag '--'");
    if (i + 1 < tokens.size() && tokens[i + 1].rfind("--", 0) != 0) {
      args.values_[flag] = tokens[++i];
    } else {
      args.values_[flag] = "";  // boolean flag
    }
    args.used_[flag] = false;
  }
  return args;
}

bool ArgMap::has(const std::string& flag) const {
  auto it = values_.find(flag);
  if (it == values_.end()) return false;
  used_[flag] = true;
  return true;
}

std::string ArgMap::get(const std::string& flag, const std::string& fallback) const {
  auto it = values_.find(flag);
  if (it == values_.end()) return fallback;
  used_[flag] = true;
  return it->second;
}

std::string ArgMap::require(const std::string& flag) const {
  auto it = values_.find(flag);
  if (it == values_.end())
    throw std::invalid_argument("missing required flag --" + flag);
  used_[flag] = true;
  return it->second;
}

std::uint64_t ArgMap::get_u64(const std::string& flag, std::uint64_t fallback) const {
  auto it = values_.find(flag);
  if (it == values_.end()) return fallback;
  used_[flag] = true;
  return parse_size(it->second);
}

double ArgMap::get_f64(const std::string& flag, double fallback) const {
  auto it = values_.find(flag);
  if (it == values_.end()) return fallback;
  used_[flag] = true;
  std::size_t pos = 0;
  double v = std::stod(it->second, &pos);
  if (pos != it->second.size())
    throw std::invalid_argument("malformed number for --" + flag + ": '" +
                                it->second + "'");
  return v;
}

std::vector<std::string> ArgMap::unused() const {
  std::vector<std::string> out;
  for (const auto& [flag, was_used] : used_)
    if (!was_used) out.push_back(flag);
  return out;
}

std::uint64_t ArgMap::parse_size(const std::string& text) {
  if (text.empty()) throw std::invalid_argument("empty size value");
  std::size_t pos = 0;
  unsigned long long base = std::stoull(text, &pos);
  std::string suffix = text.substr(pos);
  std::transform(suffix.begin(), suffix.end(), suffix.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  std::uint64_t mult = 1;
  if (suffix == "" ) {
    mult = 1;
  } else if (suffix == "K" || suffix == "KB") {
    mult = 1024;
  } else if (suffix == "M" || suffix == "MB") {
    mult = 1024 * 1024;
  } else if (suffix == "G" || suffix == "GB") {
    mult = 1024ull * 1024 * 1024;
  } else {
    throw std::invalid_argument("unknown size suffix '" + suffix + "'");
  }
  return base * mult;
}

}  // namespace she::tools
