// `she_tool` subcommand implementations.
//
// Each command takes a parsed ArgMap and an output stream (so tests can
// drive them without a process boundary) and returns a process exit code.
//
//   generate     make a synthetic trace file
//   membership   sliding membership (SHE-BF) over a trace, FPR vs oracle
//   cardinality  sliding distinct count (SHE-BM or SHE-HLL) vs oracle
//   frequency    sliding top-k heavy hitters (SHE-CM + HeavyHitters)
//   similarity   sliding Jaccard between two traces (SHE-MH) vs oracle
//   pipeline     replay a trace through the concurrent ingest runtime at a
//                target rate, issuing queries while ingesting; --metrics-out
//                dumps the telemetry registries after the run
//   metrics      replay a trace through a StreamMonitor with telemetry
//                enabled and dump the SHE-internals metric registry
//   info         describe a trace or estimator checkpoint file
//   client       drive a running she_server over its binary protocol
//   verify       offline CRC scrub of a checkpoint root: every checkpoint
//                generation and WAL file is validated; damage is listed,
//                counted in she_scrub_corrupt_total, and exits nonzero
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "args.hpp"

namespace she::tools {

int cmd_generate(const ArgMap& args, std::ostream& out);
int cmd_membership(const ArgMap& args, std::ostream& out);
int cmd_cardinality(const ArgMap& args, std::ostream& out);
int cmd_frequency(const ArgMap& args, std::ostream& out);
int cmd_similarity(const ArgMap& args, std::ostream& out);
int cmd_pipeline(const ArgMap& args, std::ostream& out);
int cmd_metrics(const ArgMap& args, std::ostream& out);
int cmd_info(const ArgMap& args, std::ostream& out);
int cmd_client(const ArgMap& args, std::ostream& out);
int cmd_trace(const ArgMap& args, std::ostream& out);
int cmd_verify(const ArgMap& args, std::ostream& out);

/// Dispatch `argv[1]` to a command; prints usage and returns 2 on unknown
/// or missing subcommands.
int run_cli(const std::vector<std::string>& argv, std::ostream& out);

/// The usage text.
std::string usage();

}  // namespace she::tools
