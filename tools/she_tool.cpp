// she_tool — command-line front-end; all logic lives in commands.cpp so it
// can be unit-tested without a process boundary.
#include <iostream>
#include <string>
#include <vector>

#include "commands.hpp"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv, argv + argc);
  return she::tools::run_cli(args, std::cout);
}
