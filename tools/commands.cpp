#include "commands.hpp"

#include <atomic>
#include <chrono>
#include <exception>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <span>
#include <sstream>
#include <thread>
#include <vector>

#include "common/checkpoint.hpp"
#include "common/wal.hpp"
#include "obs/trace.hpp"
#include "server/client.hpp"
#include "server/server.hpp"
#include "common/stats.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "runtime/fault_injection.hpp"
#include "she/csm.hpp"
#include "she/monitor.hpp"
#include "she/she.hpp"
#include "stream/oracle.hpp"
#include "stream/trace.hpp"
#include "stream/trace_io.hpp"

namespace she::tools {
namespace {

/// Load --trace FILE, or generate --dataset NAME --length L --seed S.
stream::Trace input_trace(const ArgMap& args) {
  if (args.has("trace-text"))
    return stream::load_text_keys_file(args.require("trace-text"));
  if (args.has("trace")) return stream::load_trace_file(args.require("trace"));
  std::string dataset = args.get("dataset", "caida");
  std::uint64_t length = args.get_u64("length", 1u << 20);
  std::uint64_t seed = args.get_u64("seed", 1);
  if (dataset == "distinct") return stream::distinct_trace(length, seed);
  return stream::named_dataset(dataset, length, seed);
}

void reject_unused(const ArgMap& args) {
  auto stray = args.unused();
  if (!stray.empty())
    throw std::invalid_argument("unknown flag --" + stray.front());
}

/// RAII guard around the process-wide telemetry toggle: zeroes the default
/// registry and enables collection for the command's lifetime, restoring
/// the disabled state even when the command throws (run_cli catches and
/// other in-process callers — tests — must not inherit an enabled toggle).
struct TelemetryScope {
  explicit TelemetryScope(bool on) : active(on) {
    if (active) {
      obs::default_registry().reset();
      obs::set_enabled(true);
    }
  }
  ~TelemetryScope() {
    if (active) obs::set_enabled(false);
  }
  TelemetryScope(const TelemetryScope&) = delete;
  TelemetryScope& operator=(const TelemetryScope&) = delete;
  bool active;
};

void write_registries(std::ostream& os, const std::string& format,
                      std::span<const obs::Registry* const> registries) {
  if (format == "json") {
    obs::write_json(os, registries);
    os << "\n";
  } else if (format == "prom") {
    obs::write_prometheus(os, registries);
  } else {
    throw std::invalid_argument("--metrics-format must be 'prom' or 'json'");
  }
}

/// RAII guard around the process-global fault injector: arms the
/// comma-separated `--inject` specs for the command's lifetime and clears
/// them afterwards (even on throw) so in-process callers — tests — never
/// inherit armed faults.
struct FaultScope {
  explicit FaultScope(const std::string& specs) {
    if (specs.empty()) return;
#if !defined(SHE_FAULT_INJECTION)
    throw std::invalid_argument(
        "--inject needs the fault-injection harness, which this build has "
        "compiled out (reconfigure with -DSHE_FAULT_INJECTION=ON)");
#else
    std::size_t start = 0;
    while (start <= specs.size()) {
      const std::size_t comma = specs.find(',', start);
      const std::string one = comma == std::string::npos
                                  ? specs.substr(start)
                                  : specs.substr(start, comma - start);
      if (!one.empty())
        runtime::fault::injector().arm(runtime::fault::parse_spec(one));
      if (comma == std::string::npos) break;
      start = comma + 1;
    }
    armed = true;
#endif
  }
  ~FaultScope() {
    if (armed) runtime::fault::injector().clear();
  }
  FaultScope(const FaultScope&) = delete;
  FaultScope& operator=(const FaultScope&) = delete;
  bool armed = false;
};

SheConfig she_config_from(const ArgMap& args, std::size_t cell_bits,
                          std::size_t group_cells, double default_alpha) {
  SheConfig cfg;
  cfg.window = args.get_u64("window", 1u << 16);
  std::uint64_t bytes = args.get_u64("memory", 64 * 1024);
  cfg.cells = static_cast<std::size_t>(bytes * 8 / cell_bits);
  cfg.group_cells = args.get_u64("group", group_cells);
  cfg.alpha = args.get_f64("alpha", default_alpha);
  cfg.seed = static_cast<std::uint32_t>(args.get_u64("hash-seed", 0));
  cfg.mark_bits = static_cast<unsigned>(args.get_u64("mark-bits", 1));
  return cfg;
}

}  // namespace

int cmd_generate(const ArgMap& args, std::ostream& out) {
  std::string path = args.require("out");
  auto trace = input_trace(args);
  reject_unused(args);
  stream::save_trace_file(path, trace);
  out << "wrote " << trace.size() << " items (" << stream::distinct_count(trace)
      << " distinct) to " << path << "\n";
  return 0;
}

int cmd_membership(const ArgMap& args, std::ostream& out) {
  auto trace = input_trace(args);
  std::uint64_t probes = args.get_u64("probes", 50000);
  std::string save_path = args.get("save", "");
  std::string resume_path = args.get("resume", "");

  SheBloomFilter bf = [&] {
    if (!resume_path.empty()) {
      // --resume: continue from a checkpoint; sizing flags are ignored.
      std::ifstream is(resume_path, std::ios::binary);
      if (!is) throw std::invalid_argument("cannot open " + resume_path);
      BinaryReader in(is);
      return SheBloomFilter::load(in);
    }
    unsigned hashes = static_cast<unsigned>(args.get_u64("hashes", 8));
    SheConfig cfg = she_config_from(args, /*cell_bits=*/1, 64, /*alpha*/ 0.0);
    if (cfg.alpha == 0.0) {
      // Auto-tune via Eq. (2) using the measured window cardinality.
      stream::WindowOracle probe(cfg.window);
      std::size_t prefix = std::min<std::size_t>(trace.size(), 2 * cfg.window);
      for (std::size_t i = 0; i < prefix; ++i) probe.insert(trace[i]);
      cfg.alpha = optimal_alpha_bf(cfg.cells, cfg.group_cells,
                                   static_cast<double>(probe.cardinality()),
                                   hashes);
    }
    return SheBloomFilter(cfg, hashes);
  }();
  const SheConfig& cfg = bf.config();
  unsigned hashes = bf.hash_count();
  reject_unused(args);

  stream::WindowOracle oracle(cfg.window);
  std::uint64_t false_negatives = 0;
  std::uint64_t checks = 0;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    bf.insert(trace[i]);
    oracle.insert(trace[i]);
    if (i % 997 == 0 && i > cfg.window) {
      ++checks;
      if (!bf.contains(trace[i - cfg.window / 2])) ++false_negatives;
    }
  }
  std::uint64_t fp = 0;
  for (std::uint64_t p = 0; p < probes; ++p)
    if (bf.contains((std::uint64_t{1} << 40) + p)) ++fp;

  out << "SHE-BF  window=" << cfg.window << " memory=" << bf.memory_bytes()
      << "B alpha=" << cfg.alpha << " hashes=" << hashes << "\n";
  out << "  false-positive rate: " << static_cast<double>(fp) / static_cast<double>(probes)
      << " (" << fp << "/" << probes << " absent probes)\n";
  out << "  false negatives:     " << false_negatives << "/" << checks
      << " in-window checks (must be 0)\n";
  if (!save_path.empty()) {
    std::ofstream os(save_path, std::ios::binary);
    if (!os) throw std::invalid_argument("cannot open " + save_path);
    BinaryWriter w(os);
    bf.save(w);
    out << "  checkpoint saved to " << save_path << " (resume with --resume)\n";
  }
  return false_negatives == 0 ? 0 : 1;
}

int cmd_cardinality(const ArgMap& args, std::ostream& out) {
  auto trace = input_trace(args);
  std::string algo = args.get("algo", "bitmap");
  SheConfig cfg = algo == "hll" ? she_config_from(args, 6, 1, 0.2)
                                : she_config_from(args, 1, 64, 0.2);
  reject_unused(args);

  stream::WindowOracle oracle(cfg.window);
  RunningStats err;
  auto measure = [&](auto& est) {
    for (std::size_t i = 0; i < trace.size(); ++i) {
      est.insert(trace[i]);
      oracle.insert(trace[i]);
      if (i > 2 * cfg.window && i % (cfg.window / 2) == 0)
        err.add(relative_error(static_cast<double>(oracle.cardinality()),
                               est.cardinality()));
    }
    out << "SHE-" << (algo == "hll" ? "HLL" : "BM") << "  window=" << cfg.window
        << " memory=" << est.memory_bytes() << "B alpha=" << cfg.alpha << "\n";
    out << "  final estimate: " << est.cardinality()
        << "  (exact: " << oracle.cardinality() << ")\n";
    out << "  mean relative error over " << err.count()
        << " checkpoints: " << err.mean() << "\n";
  };
  if (algo == "hll") {
    SheHyperLogLog est(cfg);
    measure(est);
  } else if (algo == "bitmap") {
    SheBitmap est(cfg);
    measure(est);
  } else {
    throw std::invalid_argument("--algo must be 'bitmap' or 'hll'");
  }
  return 0;
}

int cmd_frequency(const ArgMap& args, std::ostream& out) {
  auto trace = input_trace(args);
  unsigned hashes = static_cast<unsigned>(args.get_u64("hashes", 8));
  std::uint64_t k = args.get_u64("top", 10);
  SheConfig cfg = she_config_from(args, 32, 64, 1.0);
  reject_unused(args);

  HeavyHitters hh(cfg, hashes, static_cast<std::size_t>(4 * k));
  stream::WindowOracle oracle(cfg.window);
  for (auto key : trace) {
    hh.insert(key);
    oracle.insert(key);
  }
  out << "SHE-CM heavy hitters  window=" << cfg.window
      << " memory=" << hh.memory_bytes() << "B\n";
  out << "  key              estimate   exact\n";
  for (const auto& e : hh.top(static_cast<std::size_t>(k))) {
    out << "  " << e.key << "  " << e.estimate << "  "
        << oracle.frequency(e.key) << "\n";
  }
  return 0;
}

int cmd_similarity(const ArgMap& args, std::ostream& out) {
  stream::Trace a, b;
  if (args.has("trace-a") || args.has("trace-b")) {
    a = stream::load_trace_file(args.require("trace-a"));
    b = stream::load_trace_file(args.require("trace-b"));
  } else {
    std::uint64_t length = args.get_u64("length", 1u << 17);
    double overlap = args.get_f64("overlap", 0.6);
    std::uint64_t seed = args.get_u64("seed", 1);
    auto pair = stream::relevant_pair(length, length / 4, overlap, 0.8, seed);
    a = std::move(pair.a);
    b = std::move(pair.b);
  }
  if (a.size() != b.size())
    throw std::invalid_argument("similarity: traces must have equal length");
  std::uint64_t slots = args.get_u64("slots", 512);
  SheConfig cfg;
  cfg.window = args.get_u64("window", 1u << 14);
  cfg.cells = slots;
  cfg.group_cells = 1;
  cfg.alpha = args.get_f64("alpha", 0.2);
  reject_unused(args);

  SheMinHash sa(cfg), sb(cfg);
  stream::JaccardOracle oracle(cfg.window);
  for (std::size_t i = 0; i < a.size(); ++i) {
    sa.insert(a[i]);
    sb.insert(b[i]);
    oracle.insert(a[i], b[i]);
  }
  out << "SHE-MH  window=" << cfg.window << " slots=" << slots << " memory="
      << sa.memory_bytes() + sb.memory_bytes() << "B\n";
  out << "  estimated Jaccard: " << SheMinHash::jaccard(sa, sb) << "\n";
  out << "  exact Jaccard:     " << oracle.jaccard() << "\n";
  return 0;
}

int cmd_pipeline(const ArgMap& args, std::ostream& out) {
  auto trace = input_trace(args);

  MonitorConfig mcfg;
  mcfg.window = args.get_u64("window", 1u << 16);
  mcfg.memory_bytes = args.get_u64("memory", 1u << 20);
  mcfg.heavy_hitter_slots = args.get_u64("top", 10) * 4;
  mcfg.seed = static_cast<std::uint32_t>(args.get_u64("hash-seed", 0));

  runtime::PipelineOptions pcfg;
  pcfg.shards = args.get_u64("shards", 4);
  pcfg.producers = args.get_u64("producers", 2);
  pcfg.queue_capacity = args.get_u64("queue", 4096);
  pcfg.publish_interval = args.get_u64("publish", 2048);
  pcfg.policy = runtime::backpressure_from(args.get("policy", "block"));
  pcfg.push_timeout_ms = args.get_u64("push-timeout-ms", 100);
  pcfg.supervise = !args.has("no-supervise");  // CLI default: supervised
  pcfg.checkpoint_dir = args.get("checkpoint-dir", "");
  pcfg.checkpoint_interval = args.get_u64("checkpoint-every", 1u << 16);
  pcfg.checkpoint_keep = args.get_u64("checkpoint-keep", 1);
  pcfg.resume = args.has("resume");
  // Deterministic replay needs one producer: resume offsets are per-shard
  // prefix counts of the original single arrival order.
  if (pcfg.resume) pcfg.producers = 1;
  if (pcfg.resume) {
    // A --resume that finds nothing would silently run a fresh start —
    // exactly what someone recovering real state must not get.  Demand the
    // directory, and at least one frame for this shard layout.
    if (pcfg.checkpoint_dir.empty())
      throw std::invalid_argument("--resume requires --checkpoint-dir");
    bool any_frame = false;
    for (std::size_t s = 0; s < pcfg.shards && !any_frame; ++s) {
      const std::string base =
          pcfg.checkpoint_dir + "/shard-" + std::to_string(s) + ".ckpt";
      for (std::size_t gen = 0; gen < pcfg.checkpoint_keep && !any_frame;
           ++gen) {
        any_frame = std::filesystem::exists(
            checkpoint_generation_path(base, gen));
      }
    }
    if (!any_frame)
      throw std::invalid_argument(
          "--resume: no checkpoint frames under '" + pcfg.checkpoint_dir +
          "' for --shards " + std::to_string(pcfg.shards) +
          " (expected " + pcfg.checkpoint_dir +
          "/shard-<0.." + std::to_string(pcfg.shards - 1) +
          ">.ckpt); pass the directory and shard count the checkpoints "
          "were written with, or drop --resume for a fresh start");
  }

  const std::uint64_t rate = args.get_u64("rate", 0);  // items/s; 0 = flat out
  const std::uint64_t query_ms = args.get_u64("query-interval-ms", 20);
  const std::size_t top_k = args.get_u64("top", 10);
  const bool json = args.has("json");
  const std::string metrics_out = args.get("metrics-out", "");
  const std::string metrics_format = args.get("metrics-format", "prom");
  const std::string inject = args.get("inject", "");
  // Queue-depth sampler: on by default when dumping metrics.
  pcfg.sample_interval_ms =
      args.get_u64("sample-ms", metrics_out.empty() ? 0 : 5);
  reject_unused(args);

  TelemetryScope telemetry(!metrics_out.empty());
  FaultScope faults(inject);
  ConcurrentMonitor mon(mcfg, pcfg);

  // With --resume, each shard reports how much of the stream its restored
  // checkpoint already covers; skip that per-shard prefix of the replay.
  std::vector<std::uint64_t> skip(mon.shard_count(), 0);
  std::uint64_t skip_total = 0;
  for (std::size_t s = 0; s < mon.shard_count(); ++s) {
    skip[s] = mon.resume_offset(s);
    skip_total += skip[s];
  }
  mon.start();

  // Producers replay disjoint contiguous slices of the trace; --rate is
  // split evenly between them (sleep-based pacing, coarse but honest).
  std::vector<std::thread> producers;
  producers.reserve(pcfg.producers);
  for (std::size_t p = 0; p < pcfg.producers; ++p) {
    producers.emplace_back([&, p] {
      const std::size_t lo = trace.size() * p / pcfg.producers;
      const std::size_t hi = trace.size() * (p + 1) / pcfg.producers;
      const double per_producer_rate =
          rate == 0 ? 0 : static_cast<double>(rate) / pcfg.producers;
      const auto t0 = std::chrono::steady_clock::now();
      for (std::size_t i = lo; i < hi; ++i) {
        if (skip_total > 0) {  // resume mode: single producer, no races
          const std::size_t s = mon.shard_of(trace[i]);
          if (skip[s] > 0) {
            --skip[s];
            continue;
          }
        }
        mon.push(p, trace[i]);
        if (per_producer_rate > 0 && (i - lo) % 256 == 0) {
          auto due = t0 + std::chrono::duration<double>(
                              static_cast<double>(i - lo) / per_producer_rate);
          std::this_thread::sleep_until(due);
        }
      }
    });
  }

  // Interleaved queries from this thread while the producers run.
  std::uint64_t queries = 0;
  MonitorReport last;
  std::atomic<bool> done{false};
  std::thread waiter([&] {
    for (auto& t : producers) t.join();
    done.store(true, std::memory_order_release);
  });
  while (!done.load(std::memory_order_acquire)) {
    last = mon.report(top_k);
    ++queries;
    std::this_thread::sleep_for(std::chrono::milliseconds(query_ms));
  }
  waiter.join();
  mon.close();

  auto st = mon.stats();
  auto rep = mon.report(top_k);

  // Accuracy reference: exact cardinality over the same trace replayed
  // sequentially (the sharded window approximates the global last-N).
  stream::WindowOracle oracle(mcfg.window);
  for (auto k : trace) oracle.insert(k);
  const double exact = static_cast<double>(oracle.cardinality());
  const double est = rep.cardinality.value_or(0);

  if (!metrics_out.empty()) {
    std::ofstream ms(metrics_out);
    if (!ms) throw std::invalid_argument("cannot open " + metrics_out);
    const obs::Registry* regs[] = {&obs::default_registry(),
                                   &mon.metrics_registry()};
    write_registries(ms, metrics_format, regs);
    if (!json) out << "  metrics written to " << metrics_out << "\n";
  }

  // Lossy runs must be visible to scripts: anything dropped, timed out, or
  // faulted makes the exit status nonzero, with a one-line summary on
  // stderr regardless of the output format.
  const bool faulty =
      st.dropped > 0 || st.worker_faults > 0 || st.push_timeouts > 0;
  if (faulty) {
    std::cerr << "she_tool pipeline: faults detected: dropped=" << st.dropped
              << " worker_faults=" << st.worker_faults
              << " restarts=" << st.worker_restarts
              << " items_lost=" << st.items_lost
              << " push_timeouts=" << st.push_timeouts << "\n";
  }
  const int rc = faulty ? 1 : 0;

  if (json) {
    out << "{\"stats\":" << st.to_json() << ",\"queries_during_ingest\":"
        << queries << ",\"skipped_on_resume\":" << skip_total
        << ",\"cardinality\":" << est << ",\"cardinality_exact\":"
        << exact << ",\"cardinality_re\":" << relative_error(exact, est)
        << "}\n";
    return rc;
  }
  st.print(out);
  if (skip_total > 0)
    out << "  resumed from checkpoints: skipped " << skip_total
        << " already-ingested items\n";
  out << "  queries during ingest: " << queries << "\n";
  out << "  final cardinality: " << est << "  (exact: " << exact
      << ", RE " << relative_error(exact, est) << ")\n";
  out << "  top-" << top_k << " keys under load:\n";
  for (const auto& e : rep.top)
    out << "    " << e.key << "  ~" << e.estimate << "\n";
  return rc;
}

int cmd_metrics(const ArgMap& args, std::ostream& out) {
  auto trace = input_trace(args);

  MonitorConfig mcfg;
  mcfg.window = args.get_u64("window", 1u << 14);
  mcfg.memory_bytes = args.get_u64("memory", 1u << 18);
  mcfg.use_hll = args.get("algo", "bitmap") == "hll";
  mcfg.heavy_hitter_slots = args.get_u64("top", 10) * 4;
  mcfg.seed = static_cast<std::uint32_t>(args.get_u64("hash-seed", 0));

  const std::size_t top_k = args.get_u64("top", 10);
  // Query cadence: exercise every query path (membership, cardinality,
  // frequency, top-k) this often so the classification counters fill up.
  const std::uint64_t query_every =
      args.get_u64("query-every", std::max<std::uint64_t>(1, mcfg.window / 4));
  const std::string format = args.get("format", "prom");
  const std::string out_path = args.get("out", "");
  reject_unused(args);
  if (format != "prom" && format != "json")
    throw std::invalid_argument("--format must be 'prom' or 'json'");

  TelemetryScope telemetry(true);
  StreamMonitor mon(mcfg);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    mon.insert(trace[i]);
    if ((i + 1) % query_every == 0) {
      (void)mon.seen(trace[i]);
      (void)mon.frequency(trace[i]);
      (void)mon.report(top_k);
    }
  }
  (void)mon.report(top_k);

  const obs::Registry* regs[] = {&obs::default_registry()};
  if (out_path.empty()) {
    write_registries(out, format, regs);
  } else {
    std::ofstream os(out_path);
    if (!os) throw std::invalid_argument("cannot open " + out_path);
    write_registries(os, format, regs);
    out << "replayed " << trace.size() << " items (window " << mcfg.window
        << "); metrics written to " << out_path << "\n";
  }
  return 0;
}

int cmd_info(const ArgMap& args, std::ostream& out) {
  std::string path = args.require("file");
  reject_unused(args);
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::invalid_argument("cannot open " + path);
  char magic[4] = {};
  is.read(magic, 4);
  std::string tag(magic, 4);
  is.seekg(0);

  if (tag == "SHTR") {
    auto trace = stream::load_trace(is);
    out << path << ": trace, " << trace.size() << " items, "
        << stream::distinct_count(trace) << " distinct\n";
    return 0;
  }
  if (tag == "SHCP") {
    // A durable pipeline checkpoint: validate the frame (CRC and all),
    // then describe the estimator payload by recursing on its own tag.
    const CheckpointData ck = read_checkpoint_file(path);
    out << path << ": CRC-framed pipeline checkpoint (valid)\n"
        << "  stream offset: " << ck.stream_offset << " items, payload "
        << ck.payload.size() << " bytes\n";
    const std::string inner(ck.payload.data(),
                            ck.payload.size() < 4 ? ck.payload.size() : 4);
    out << "  payload magic: '" << inner << "'\n";
    return 0;
  }
  auto describe = [&](const char* name, const SheConfig& cfg,
                      std::uint64_t time) {
    out << path << ": " << name << " checkpoint\n";
    out << "  window=" << cfg.window << " cells=" << cfg.cells
        << " group_cells=" << cfg.group_cells << " alpha=" << cfg.alpha
        << " mark_bits=" << cfg.mark_bits << "\n";
    out << "  stream position: " << time << " items\n";
  };
  BinaryReader in(is);
  if (tag == "SHBF") {
    auto bf = SheBloomFilter::load(in);
    describe("SHE-BF", bf.config(), bf.time());
  } else if (tag == "SHBM") {
    auto bm = SheBitmap::load(in);
    describe("SHE-BM", bm.config(), bm.time());
  } else if (tag == "SHLL") {
    auto hll = SheHyperLogLog::load(in);
    describe("SHE-HLL", hll.config(), hll.time());
  } else if (tag == "SHCM") {
    auto cm = SheCountMin::load(in);
    describe("SHE-CM", cm.config(), cm.time());
  } else if (tag == "SHMH") {
    auto mh = SheMinHash::load(in);
    describe("SHE-MH", mh.config(), mh.time());
  } else {
    out << path << ": unknown format (magic '" << tag << "')\n";
    return 1;
  }
  return 0;
}

int cmd_client(const ArgMap& args, std::ostream& out) {
  const std::string host = args.get("host", "127.0.0.1");
  const auto port = static_cast<std::uint16_t>(args.get_u64("port", 7070));
  const std::string endpoints = args.get("endpoints", "");
  const std::string op = args.require("op");
  const auto require_u64 = [&](const char* flag) {
    if (!args.has(flag))
      throw std::invalid_argument("--op " + op + " needs --" + flag);
    return args.get_u64(flag, 0);
  };

  // Deadline-aware transport: --timeout-ms bounds every connect and
  // socket read/write; a missed deadline exits 3 (distinct from usage
  // errors' 2 and server errors' 1) so scripts can tell "slow" apart
  // from "wrong".  --retries enables reconnect + idempotent replay.
  server::ClientOptions copt;
  copt.io_timeout_ms = args.get_u64("timeout-ms", 0);
  copt.connect_timeout_ms = args.get_u64("connect-timeout-ms",
                                         copt.io_timeout_ms);
  copt.auth_token = args.get("token", "");
  copt.max_retries = static_cast<std::size_t>(args.get_u64("retries", 0));
  // --endpoints "h1:p1,h2:p2" builds the failover client: a dead or
  // read-only (standby) server rotates the request to the next endpoint;
  // seq-tagged inserts make the replay exactly-once.
  server::SheClient client = [&] {
    if (endpoints.empty()) return server::SheClient(host, port, copt);
    std::vector<std::string> eps;
    std::size_t start = 0;
    while (start <= endpoints.size()) {
      const std::size_t comma = endpoints.find(',', start);
      const std::string one = comma == std::string::npos
                                  ? endpoints.substr(start)
                                  : endpoints.substr(start, comma - start);
      if (!one.empty()) eps.push_back(one);
      if (comma == std::string::npos) break;
      start = comma + 1;
    }
    return server::SheClient(eps, copt);
  }();
  // Optional trace correlation: every request this invocation sends is
  // prefixed with the trace-header wire extension carrying this id, so a
  // server running with --trace attributes the spans to it.
  if (args.has("trace-id")) client.set_trace_id(args.get_u64("trace-id", 0));
  if (op == "ping") {
    reject_unused(args);
    client.ping();
    out << "pong\n";
  } else if (op == "create") {
    const std::string name = args.require("name");
    const std::string spec = args.get("spec", "");
    reject_unused(args);
    client.create(name, spec);
    out << "created " << name << "\n";
  } else if (op == "insert") {
    const std::string name = args.require("name");
    const std::uint64_t key = require_u64("key");
    reject_unused(args);
    out << "accepted " << client.insert(name, key) << "/1\n";
  } else if (op == "bulk") {
    // Deterministic synthetic keys: key-base + i, wrapping at --distinct
    // so repeated-key workloads are one flag away.
    const std::string name = args.require("name");
    const std::uint64_t count = args.get_u64("count", 1u << 16);
    const std::uint64_t base = args.get_u64("key-base", 0);
    const std::uint64_t distinct = args.get_u64("distinct", 0);
    reject_unused(args);
    std::uint64_t accepted = 0;
    std::vector<std::uint64_t> chunk;
    for (std::uint64_t i = 0; i < count;) {
      chunk.clear();
      const std::uint64_t n = std::min<std::uint64_t>(count - i, 65536);
      for (std::uint64_t j = 0; j < n; ++j, ++i)
        chunk.push_back(base + (distinct ? i % distinct : i));
      accepted += client.insert_bulk(name, chunk);
    }
    out << "accepted " << accepted << "/" << count << "\n";
  } else if (op == "query") {
    const std::string name = args.require("name");
    const std::string type = args.get("type", "cardinality");
    if (type == "membership") {
      const std::uint64_t key = require_u64("key");
      reject_unused(args);
      out << "present " << (client.query_membership(name, key) ? "true" : "false")
          << "\n";
    } else if (type == "frequency") {
      const std::uint64_t key = require_u64("key");
      reject_unused(args);
      out << "frequency " << client.query_frequency(name, key) << "\n";
    } else if (type == "cardinality") {
      reject_unused(args);
      out << "cardinality " << client.query_cardinality(name) << "\n";
    } else if (type == "topk") {
      const auto k = static_cast<std::uint32_t>(args.get_u64("k", 10));
      reject_unused(args);
      for (const auto& [key, est] : client.query_topk(name, k))
        out << key << "  ~" << est << "\n";
    } else if (type == "jaccard") {
      const std::string other = args.require("other");
      reject_unused(args);
      out << "jaccard " << client.query_jaccard(name, other) << "\n";
    } else {
      throw std::invalid_argument("unknown query --type '" + type + "'");
    }
  } else if (op == "stats") {
    const std::string name = args.require("name");
    reject_unused(args);
    out << client.stats_json(name) << "\n";
  } else if (op == "drop") {
    const std::string name = args.require("name");
    reject_unused(args);
    client.drop(name);
    out << "dropped " << name << "\n";
  } else if (op == "save") {
    const std::string name = args.require("name");
    reject_unused(args);
    client.save(name);
    out << "saved " << name << "\n";
  } else if (op == "flush") {
    const std::string name = args.require("name");
    reject_unused(args);
    client.flush(name);
    out << "flushed " << name << "\n";
  } else if (op == "list") {
    reject_unused(args);
    for (const std::string& n : client.list()) out << n << "\n";
  } else if (op == "shutdown") {
    reject_unused(args);
    client.shutdown_server();
    out << "shutdown requested\n";
  } else if (op == "promote") {
    reject_unused(args);
    client.promote();
    out << "promoted\n";
  } else {
    throw std::invalid_argument("unknown --op '" + op + "'");
  }
  return 0;
}

int cmd_trace(const ArgMap& args, std::ostream& out) {
  // Traced end-to-end replay: run an in-process she_server with tracing
  // on, drive it over the real wire protocol (trace-id headers and all),
  // and export everything the span rings captured as Chrome trace-event
  // JSON.  Load the result in chrome://tracing or Perfetto to see each
  // request's server op over the pipeline drains and estimator batches it
  // caused.
  const std::string out_path = args.get("out", "trace.json");
  const std::uint64_t count = args.get_u64("count", 1u << 16);
  const std::uint64_t queries = args.get_u64("queries", 8);
  const std::string spec = args.get("spec", "");
  reject_unused(args);

  std::vector<obs::trace::CollectedSpan> spans;
  {
    server::ServerOptions opt;
    opt.port = 0;       // ephemeral; nothing else should connect
    opt.http_port = -1;
    opt.enable_tracing = true;
    server::SheServer server(std::move(opt));
    server.start();
    server::SheClient client("127.0.0.1", server.port());
    std::uint64_t trace_id = 1;
    client.set_trace_id(trace_id++);
    client.create("traced", spec);
    std::vector<std::uint64_t> chunk;
    for (std::uint64_t i = 0; i < count;) {
      chunk.clear();
      const std::uint64_t n = std::min<std::uint64_t>(count - i, 8192);
      for (std::uint64_t j = 0; j < n; ++j, ++i) chunk.push_back(i);
      client.set_trace_id(trace_id++);
      client.insert_bulk("traced", chunk);
    }
    client.set_trace_id(trace_id++);
    client.flush("traced");
    for (std::uint64_t q = 0; q < queries; ++q) {
      client.set_trace_id(trace_id++);
      (void)client.query_cardinality("traced");
      client.set_trace_id(trace_id++);
      (void)client.query_topk("traced", 8);
      client.set_trace_id(trace_id++);
      (void)client.query_membership("traced", q);
    }
    server.request_stop();
    server.stop();  // final drains land in the rings before collection
    spans = obs::trace::collect(0);
  }
  obs::trace::set_enabled(false);  // in-process callers must not inherit
  obs::trace::reset();

  std::ofstream os(out_path, std::ios::binary);
  if (!os) throw std::runtime_error("cannot write '" + out_path + "'");
  obs::trace::write_chrome_trace(os, spans);
  out << "wrote " << out_path << " (" << spans.size() << " spans, "
      << count << " keys, " << 3 * queries << " queries)\n";
  return 0;
}

int cmd_verify(const ArgMap& args, std::ostream& out) {
  // Offline scrub of a server checkpoint root (or one pipeline's
  // directory, or a single file): every checkpoint generation is parsed
  // through the same CRC-framed reader a resume uses, and every WAL is
  // scanned frame by frame.  Anything that fails — bad magic, CRC
  // mismatch, torn or corrupt tail bytes — is listed, counted in
  // she_scrub_corrupt_total, and makes the exit status nonzero, so a cron
  // job can page before a failover discovers the damage the hard way.
  namespace fs = std::filesystem;
  const std::string root = args.require("dir");
  const bool json = args.has("json");
  const bool quiet = args.has("quiet");
  reject_unused(args);
  if (!fs::exists(root))
    throw std::invalid_argument("verify: no such path '" + root + "'");

  TelemetryScope telemetry(true);
  auto& corrupt_total = obs::default_registry().counter(
      "she_scrub_corrupt_total",
      "files the offline scrub found damaged (bad CRC, torn tail)");

  std::vector<fs::path> paths;
  if (fs::is_regular_file(root)) {
    paths.emplace_back(root);
  } else {
    std::error_code ec;
    for (fs::recursive_directory_iterator it(root, ec), end;
         !ec && it != end; it.increment(ec)) {
      if (it->is_regular_file(ec)) paths.push_back(it->path());
    }
    std::sort(paths.begin(), paths.end());
  }

  std::uint64_t scanned = 0, frames = 0, corrupt = 0;
  const auto note = [&](const fs::path& p, const std::string& why) {
    ++corrupt;
    corrupt_total.inc();
    if (!json) out << "CORRUPT  " << p.string() << ": " << why << "\n";
  };
  for (const fs::path& p : paths) {
    const std::string name = p.filename().string();
    if (name.find(".ckpt") != std::string::npos) {
      ++scanned;
      try {
        const CheckpointData ck = read_checkpoint_file(p.string());
        ++frames;
        if (!json && !quiet)
          out << "ok       " << p.string() << ": checkpoint, offset "
              << ck.stream_offset << ", " << ck.payload.size()
              << " payload bytes\n";
      } catch (const CheckpointError& e) {
        note(p, e.what());
      }
    } else if (name.size() >= 4 && name.ends_with(".wal")) {
      ++scanned;
      try {
        const WalScan scan = read_wal(p.string());
        frames += scan.frames.size();
        if (scan.dropped_bytes > 0) {
          note(p, std::to_string(scan.dropped_bytes) +
                      " torn/corrupt tail bytes after a valid prefix of " +
                      std::to_string(scan.valid_bytes));
        } else if (!json && !quiet) {
          out << "ok       " << p.string() << ": wal, "
              << scan.frames.size() << " data frames, end offset "
              << scan.end_offset << "\n";
        }
      } catch (const WalError& e) {
        note(p, e.what());
      }
    }
    // Everything else (traces, tmp files, foreign data) is not ours to
    // judge; skip it silently.
  }

  if (json) {
    out << "{\"scanned\":" << scanned << ",\"frames\":" << frames
        << ",\"corrupt\":" << corrupt << "}\n";
  } else {
    out << "scrubbed " << scanned << " files (" << frames << " valid frames), "
        << corrupt << " corrupt\n";
  }
  return corrupt == 0 ? 0 : 1;
}

std::string usage() {
  return
      "she_tool — sliding-window stream mining (SHE framework)\n"
      "\n"
      "usage: she_tool <command> [--flag value ...]\n"
      "\n"
      "commands:\n"
      "  generate     --out FILE [--dataset caida|campus|webpage|distinct]\n"
      "               [--length N] [--seed S]\n"
      "  membership   [--trace FILE | --dataset ... --length N] [--window N]\n"
      "               [--memory BYTES] [--hashes K] [--alpha A (0 = Eq. 2)]\n"
      "               [--probes P] [--save CKPT] [--resume CKPT]\n"
      "  cardinality  [--algo bitmap|hll] [--trace FILE | --dataset ...]\n"
      "               [--window N] [--memory BYTES] [--alpha A]\n"
      "  frequency    [--trace FILE | --dataset ...] [--window N]\n"
      "               [--memory BYTES] [--hashes K] [--top K]\n"
      "  similarity   [--trace-a FILE --trace-b FILE | --length N\n"
      "               --overlap F] [--window N] [--slots M] [--alpha A]\n"
      "  pipeline     [--trace FILE | --dataset ... --length N] [--window N]\n"
      "               [--memory BYTES] [--shards S] [--producers P]\n"
      "               [--queue N] [--policy block|drop|block-timeout]\n"
      "               [--push-timeout-ms MS] [--rate ITEMS/S] [--publish N]\n"
      "               [--query-interval-ms MS] [--top K] [--json]\n"
      "               [--metrics-out FILE] [--metrics-format prom|json]\n"
      "               [--sample-ms MS] [--no-supervise]\n"
      "               [--checkpoint-dir DIR] [--checkpoint-every N]\n"
      "               [--checkpoint-keep K] [--resume]\n"
      "               [--inject SPEC[,SPEC...]]\n"
      "               (concurrent ingest, queries under load; supervised\n"
      "               workers restart on faults; --checkpoint-dir writes\n"
      "               CRC-framed durable checkpoints and --resume replays\n"
      "               from them; SPEC = point[:shard[:at[:param]]] with\n"
      "               point throw|stall|ckpt-bitflip|ckpt-truncate;\n"
      "               exit 1 when items were dropped, timed out, or a\n"
      "               worker faulted)\n"
      "  metrics      [--trace FILE | --dataset ... --length N] [--window N]\n"
      "               [--memory BYTES] [--algo bitmap|hll] [--top K]\n"
      "               [--query-every N] [--format prom|json] [--out FILE]\n"
      "               (replay with telemetry on, dump SHE-internals metrics)\n"
      "  info         --file FILE   (trace, estimator checkpoint, or\n"
      "               CRC-framed pipeline checkpoint — frames are\n"
      "               validated before being described)\n"
      "  client       --op ping|create|insert|bulk|query|stats|drop|save|\n"
      "               flush|list|shutdown|promote [--host A] [--port N]\n"
      "               [--endpoints H1:P1,H2:P2,...] [--name X]\n"
      "               [--spec \"window=64K shards=2 ...\"] [--key K]\n"
      "               [--count N --key-base B --distinct D]\n"
      "               [--type membership|frequency|cardinality|topk|jaccard]\n"
      "               [--k N] [--other NAME] [--trace-id ID]\n"
      "               [--timeout-ms N] [--connect-timeout-ms N]\n"
      "               [--token T] [--retries N]\n"
      "               (drive a running she_server over its binary protocol;\n"
      "               --trace-id tags requests for a --trace'd server;\n"
      "               --timeout-ms bounds connect + every read/write and\n"
      "               exits 3 on a missed deadline; --token authenticates\n"
      "               against --auth-token-file servers; --retries replays\n"
      "               idempotent requests over a fresh connection;\n"
      "               --endpoints enables failover: a dead or read-only\n"
      "               standby server rotates the request to the next one)\n"
      "  verify       --dir DIR [--json] [--quiet]\n"
      "               (offline CRC scrub of a checkpoint root: validates\n"
      "               every checkpoint generation and WAL frame; lists\n"
      "               damage, counts it in she_scrub_corrupt_total, and\n"
      "               exits 1 when anything is corrupt)\n"
      "  trace        [--out FILE (default trace.json)] [--count N]\n"
      "               [--queries N] [--spec \"window=64K ...\"]\n"
      "               (traced in-process server replay; writes Chrome\n"
      "               trace-event JSON for chrome://tracing / Perfetto)\n"
      "\n"
      "sizes accept K/M/G suffixes (binary), e.g. --memory 64K\n"
      "every command also accepts --trace-text FILE (one key per line;\n"
      "non-numeric tokens such as '10.0.0.1:443' are hashed)\n";
}

int run_cli(const std::vector<std::string>& argv, std::ostream& out) {
  if (argv.size() < 2) {
    out << usage();
    return 2;
  }
  std::vector<std::string> rest(argv.begin() + 2, argv.end());
  try {
    ArgMap args = ArgMap::parse(rest);
    const std::string& cmd = argv[1];
    if (cmd == "generate") return cmd_generate(args, out);
    if (cmd == "membership") return cmd_membership(args, out);
    if (cmd == "cardinality") return cmd_cardinality(args, out);
    if (cmd == "frequency") return cmd_frequency(args, out);
    if (cmd == "similarity") return cmd_similarity(args, out);
    if (cmd == "pipeline") return cmd_pipeline(args, out);
    if (cmd == "metrics") return cmd_metrics(args, out);
    if (cmd == "info") return cmd_info(args, out);
    if (cmd == "client") return cmd_client(args, out);
    if (cmd == "trace") return cmd_trace(args, out);
    if (cmd == "verify") return cmd_verify(args, out);
    if (cmd == "help" || cmd == "--help") {
      out << usage();
      return 0;
    }
    out << "unknown command '" << cmd << "'\n\n" << usage();
    return 2;
  } catch (const server::IoTimeout& e) {
    out << "timeout: " << e.what() << "\n";
    return 3;
  } catch (const server::ClientError& e) {
    // A server-side deadline shed is still a deadline: same exit as a
    // transport timeout so callers need one check.
    if (e.status() == server::Status::kTimeout) {
      out << "timeout: " << e.what() << "\n";
      return 3;
    }
    out << "error: " << e.what() << "\n";
    return 1;
  } catch (const std::exception& e) {
    out << "error: " << e.what() << "\n";
    return 2;
  }
}

}  // namespace she::tools
