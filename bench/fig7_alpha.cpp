// Fig. 7 — impact of the cleaning-speed parameter alpha.
//
//   7a  SHE-BF: FPR vs memory for alpha = 1, optimal (Eq. 2), 5.
//       Claim: the Eq. 2 alpha tracks the best of the fixed settings.
//   7b  SHE-BM: RE vs memory for alpha = 0.1, 0.3, 1.0.
//       Claim: 0.2-0.4 is the sweet spot; 1.0 over-ages the estimate.
#include <iostream>

#include "common.hpp"
#include "common/stats.hpp"
#include "she/she.hpp"
#include "stream/oracle.hpp"

namespace she::bench {
namespace {

constexpr std::uint64_t kN = kWindow;

std::string fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.4g", v);
  return buf;
}

double shebf_fpr(std::size_t bits, double alpha, const stream::Trace& trace,
                 const std::vector<std::uint64_t>& probes) {
  SheConfig cfg;
  cfg.window = kN;
  cfg.cells = bits;
  cfg.group_cells = 64;
  cfg.alpha = alpha;
  SheBloomFilter bf(cfg, 8);
  for (auto k : trace) bf.insert(k);
  std::size_t fp = 0;
  for (auto p : probes)
    if (bf.contains(p)) ++fp;
  return static_cast<double>(fp) / static_cast<double>(probes.size());
}

void fig7a() {
  std::printf("\n--- Fig. 7a  SHE-BF: FPR vs memory, alpha settings ---\n");
  Table table({"memory", "alpha=1", "alpha=opt(Eq.2)", "opt value", "alpha=5"});
  auto trace = caida_like(4 * kN);
  auto probes = absent_probes(50000);
  // Window cardinality of the CAIDA-like stream (measured once).
  stream::WindowOracle oracle(kN);
  for (auto k : trace) oracle.insert(k);
  double card = static_cast<double>(oracle.cardinality());

  for (std::size_t kb : {16, 30, 60, 90, 120}) {
    std::size_t bits = kb * 1024 * 8;
    double opt = optimal_alpha_bf(bits, 64, card, 8);
    table.add(memory_label(kb * 1024), fmt(shebf_fpr(bits, 1.0, trace, probes)),
              fmt(shebf_fpr(bits, opt, trace, probes)), fmt(opt),
              fmt(shebf_fpr(bits, 5.0, trace, probes)));
  }
  table.print(std::cout);
}

void fig7b() {
  std::printf("\n--- Fig. 7b  SHE-BM: RE vs memory, alpha settings ---\n");
  Table table({"memory", "alpha=0.1", "alpha=0.3", "alpha=1.0"});
  auto trace = caida_like(4 * kN);

  for (std::size_t bytes : {512, 1024, 1536, 2048}) {
    std::vector<std::string> row = {memory_label(bytes)};
    for (double alpha : {0.1, 0.3, 1.0}) {
      SheConfig cfg;
      cfg.window = kN;
      cfg.cells = bytes * 8;
      cfg.group_cells = 64;
      cfg.alpha = alpha;
      SheBitmap bm(cfg);
      stream::WindowOracle oracle(kN);
      RunningStats err;
      for (std::size_t i = 0; i < trace.size(); ++i) {
        bm.insert(trace[i]);
        oracle.insert(trace[i]);
        if (i > 2 * kN && i % (kN / 2) == 0)
          err.add(relative_error(static_cast<double>(oracle.cardinality()),
                                 bm.cardinality()));
      }
      row.push_back(fmt(err.mean()));
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);
}

}  // namespace
}  // namespace she::bench

int main() {
  she::bench::banner("Fig. 7 — performance vs alpha",
                     "7a: SHE-BF FPR with the Eq. 2 optimal alpha against "
                     "fixed settings; 7b: SHE-BM RE across alpha.");
  she::bench::fig7a();
  she::bench::fig7b();
  return 0;
}
