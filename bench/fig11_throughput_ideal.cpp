// Fig. 11 — insert throughput of each SHE estimator against its fixed-window
// original ("Ideal") on the CAIDA-like stream.  Claim: the SHE overhead
// (time-mark check + occasional group reset) is a small constant factor.
#include <iostream>

#include "common.hpp"
#include "she/she.hpp"

namespace she::bench {
namespace {

constexpr std::uint64_t kN = kWindow;

std::string fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", v);
  return buf;
}

template <typename F>
double mips(const stream::Trace& trace, F&& insert) {
  MopsTimer timer;
  timer.start();
  for (auto k : trace) insert(k);
  return timer.stop(trace.size());
}

}  // namespace
}  // namespace she::bench

int main() {
  using namespace she;
  using namespace she::bench;
  banner("Fig. 11 — SHE vs fixed-window Ideal throughput",
         "Insert Mips per algorithm on the CAIDA-like stream; MinHash "
         "updates all slots per item, so both variants run a shorter trace.");

  auto trace = caida_like(2'000'000);
  auto short_trace = caida_like(100'000);
  Table table({"algorithm", "Ideal (Mips)", "SHE (Mips)", "SHE/Ideal"});

  {
    fixed::Bitmap ideal(1u << 16);
    SheConfig cfg;
    cfg.window = kN;
    cfg.cells = 1u << 16;
    cfg.group_cells = 64;
    cfg.alpha = 0.2;
    SheBitmap s(cfg);
    double a = mips(trace, [&](std::uint64_t k) { ideal.insert(k); });
    double b = mips(trace, [&](std::uint64_t k) { s.insert(k); });
    table.add("BM", fmt(a), fmt(b), fmt(b / a));
  }
  {
    fixed::CountMin ideal(1u << 18, 8);
    SheConfig cfg;
    cfg.window = kN;
    cfg.cells = 1u << 18;
    cfg.group_cells = 64;
    cfg.alpha = 1.0;
    SheCountMin s(cfg, 8);
    double a = mips(trace, [&](std::uint64_t k) { ideal.insert(k); });
    double b = mips(trace, [&](std::uint64_t k) { s.insert(k); });
    table.add("CM-sketch", fmt(a), fmt(b), fmt(b / a));
  }
  {
    fixed::BloomFilter ideal(1u << 20, 8);
    SheConfig cfg;
    cfg.window = kN;
    cfg.cells = 1u << 20;
    cfg.group_cells = 64;
    cfg.alpha = 3.0;
    SheBloomFilter s(cfg, 8);
    double a = mips(trace, [&](std::uint64_t k) { ideal.insert(k); });
    double b = mips(trace, [&](std::uint64_t k) { s.insert(k); });
    table.add("BF", fmt(a), fmt(b), fmt(b / a));
  }
  {
    fixed::HyperLogLog ideal(2048);
    SheConfig cfg;
    cfg.window = kN;
    cfg.cells = 2048;
    cfg.group_cells = 1;
    cfg.alpha = 0.2;
    SheHyperLogLog s(cfg);
    double a = mips(trace, [&](std::uint64_t k) { ideal.insert(k); });
    double b = mips(trace, [&](std::uint64_t k) { s.insert(k); });
    table.add("HLL", fmt(a), fmt(b), fmt(b / a));
  }
  {
    fixed::MinHash ideal(128);
    SheConfig cfg;
    cfg.window = kN;
    cfg.cells = 128;
    cfg.group_cells = 1;
    cfg.alpha = 0.2;
    SheMinHash s(cfg);
    double a = mips(short_trace, [&](std::uint64_t k) { ideal.insert(k); });
    double b = mips(short_trace, [&](std::uint64_t k) { s.insert(k); });
    table.add("MH (128 slots)", fmt(a), fmt(b), fmt(b / a));
  }
  table.print(std::cout);
  return 0;
}
