#include "common.hpp"

#include <cstdio>

namespace she::bench {

stream::Trace caida_like(std::uint64_t length, std::uint64_t seed) {
  stream::ZipfTraceConfig cfg;
  cfg.length = length;
  cfg.universe = 600'000;
  cfg.skew = 1.0;
  cfg.seed = seed;
  return stream::zipf_trace(cfg);
}

std::vector<std::uint64_t> absent_probes(std::size_t count) {
  std::vector<std::uint64_t> probes;
  probes.reserve(count);
  for (std::size_t i = 0; i < count; ++i)
    probes.push_back((std::uint64_t{1} << 40) + i);
  return probes;
}

void banner(const std::string& experiment, const std::string& description) {
  std::printf("==============================================================\n");
  std::printf("%s\n", experiment.c_str());
  std::printf("%s\n", description.c_str());
  std::printf("seed=%llu\n", static_cast<unsigned long long>(kSeed));
  std::printf("==============================================================\n");
}

std::string memory_label(std::size_t bytes) {
  char buf[32];
  if (bytes >= 1024 * 1024) {
    std::snprintf(buf, sizeof(buf), "%.3g MB", static_cast<double>(bytes) / (1024 * 1024));
  } else if (bytes >= 1024) {
    std::snprintf(buf, sizeof(buf), "%.3g KB", static_cast<double>(bytes) / 1024);
  } else {
    std::snprintf(buf, sizeof(buf), "%zu B", bytes);
  }
  return buf;
}

}  // namespace she::bench
