// Google-benchmark micro-operations: per-insert and per-query cost of every
// estimator and baseline on a pre-generated CAIDA-like key sequence.
// Complements the trace-level Mips figures (Fig. 10/11) with steady-state
// per-op numbers and their variance.
#include <benchmark/benchmark.h>

#include <span>

#include "baselines/cvs.hpp"
#include "baselines/ecm.hpp"
#include "baselines/shll.hpp"
#include "baselines/swamp.hpp"
#include "baselines/tbf.hpp"
#include "baselines/tobf.hpp"
#include "baselines/tsv.hpp"
#include "common.hpp"
#include "she/she.hpp"

namespace she::bench {
namespace {

const stream::Trace& keys() {
  static stream::Trace t = caida_like(1 << 20);
  return t;
}

constexpr std::uint64_t kN = 1u << 16;

template <typename T>
void drive_inserts(benchmark::State& state, T& sketch) {
  const auto& ks = keys();
  std::size_t i = 0;
  for (auto _ : state) {
    sketch.insert(ks[i]);
    i = (i + 1) & (ks.size() - 1);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void BM_SheBloomInsert(benchmark::State& state) {
  SheConfig cfg;
  cfg.window = kN;
  cfg.cells = 1u << 20;
  cfg.group_cells = 64;
  cfg.alpha = 3.0;
  SheBloomFilter bf(cfg, static_cast<unsigned>(state.range(0)));
  drive_inserts(state, bf);
}
BENCHMARK(BM_SheBloomInsert)->Arg(4)->Arg(8)->Arg(16);

void BM_SheBitmapInsert(benchmark::State& state) {
  SheConfig cfg;
  cfg.window = kN;
  cfg.cells = 1u << 16;
  cfg.group_cells = static_cast<std::size_t>(state.range(0));
  cfg.alpha = 0.2;
  SheBitmap bm(cfg);
  drive_inserts(state, bm);
}
BENCHMARK(BM_SheBitmapInsert)->Arg(16)->Arg(64)->Arg(256);

void BM_SheHllInsert(benchmark::State& state) {
  SheConfig cfg;
  cfg.window = kN;
  cfg.cells = 2048;
  cfg.group_cells = 1;
  cfg.alpha = 0.2;
  SheHyperLogLog hll(cfg);
  drive_inserts(state, hll);
}
BENCHMARK(BM_SheHllInsert);

void BM_SheCmInsert(benchmark::State& state) {
  SheConfig cfg;
  cfg.window = kN;
  cfg.cells = 1u << 18;
  cfg.group_cells = 64;
  cfg.alpha = 1.0;
  SheCountMin cm(cfg, 8);
  drive_inserts(state, cm);
}
BENCHMARK(BM_SheCmInsert);

void BM_SheMinHashInsert(benchmark::State& state) {
  SheConfig cfg;
  cfg.window = kN;
  cfg.cells = static_cast<std::size_t>(state.range(0));
  cfg.group_cells = 1;
  cfg.alpha = 0.2;
  SheMinHash mh(cfg);
  drive_inserts(state, mh);
}
BENCHMARK(BM_SheMinHashInsert)->Arg(64)->Arg(256);

void BM_SheBloomInsertBatch(benchmark::State& state) {
  // Batch insert with prefetch on a filter sized past the last-level cache:
  // compare against BM_SheBloomInsert/8 at the same (cells, hashes).
  SheConfig cfg;
  cfg.window = kN;
  cfg.cells = std::size_t{1} << static_cast<unsigned>(state.range(0));
  cfg.group_cells = 64;
  cfg.alpha = 3.0;
  SheBloomFilter bf(cfg, 8);
  const auto& ks = keys();
  std::size_t i = 0;
  constexpr std::size_t kChunk = 512;
  for (auto _ : state) {
    bf.insert_batch(std::span<const std::uint64_t>(ks.data() + i, kChunk));
    i = (i + kChunk) & (ks.size() - 1);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * kChunk);
}
BENCHMARK(BM_SheBloomInsertBatch)->Arg(20)->Arg(24)->Arg(26);

void BM_SheBloomInsertScalarLarge(benchmark::State& state) {
  SheConfig cfg;
  cfg.window = kN;
  cfg.cells = std::size_t{1} << static_cast<unsigned>(state.range(0));
  cfg.group_cells = 64;
  cfg.alpha = 3.0;
  SheBloomFilter bf(cfg, 8);
  drive_inserts(state, bf);
}
BENCHMARK(BM_SheBloomInsertScalarLarge)->Arg(20)->Arg(24)->Arg(26);

void BM_FixedBloomInsert(benchmark::State& state) {
  fixed::BloomFilter bf(1u << 20, 8);
  drive_inserts(state, bf);
}
BENCHMARK(BM_FixedBloomInsert);

void BM_SwampInsert(benchmark::State& state) {
  baselines::Swamp sw(kN, 16);
  drive_inserts(state, sw);
}
BENCHMARK(BM_SwampInsert);

void BM_TobfInsert(benchmark::State& state) {
  baselines::TimeOutBloomFilter tobf(1u << 17, 8, kN);
  drive_inserts(state, tobf);
}
BENCHMARK(BM_TobfInsert);

void BM_TbfInsert(benchmark::State& state) {
  baselines::TimingBloomFilter tbf(1u << 17, 8, kN, 18);
  drive_inserts(state, tbf);
}
BENCHMARK(BM_TbfInsert);

void BM_TsvInsert(benchmark::State& state) {
  baselines::TimestampVector tsv(1u << 16, kN);
  drive_inserts(state, tsv);
}
BENCHMARK(BM_TsvInsert);

void BM_CvsInsert(benchmark::State& state) {
  baselines::CounterVectorSketch cvs(1u << 16, kN, 10, kSeed);
  drive_inserts(state, cvs);
}
BENCHMARK(BM_CvsInsert);

void BM_ShllInsert(benchmark::State& state) {
  baselines::SlidingHyperLogLog shll(2048, kN);
  drive_inserts(state, shll);
}
BENCHMARK(BM_ShllInsert);

void BM_EcmInsert(benchmark::State& state) {
  baselines::EcmSketch ecm(4096, 4, kN);
  drive_inserts(state, ecm);
}
BENCHMARK(BM_EcmInsert);

void BM_SheBloomQuery(benchmark::State& state) {
  SheConfig cfg;
  cfg.window = kN;
  cfg.cells = 1u << 20;
  cfg.group_cells = 64;
  cfg.alpha = 3.0;
  SheBloomFilter bf(cfg, 8);
  const auto& ks = keys();
  for (std::size_t i = 0; i < 4 * kN; ++i) bf.insert(ks[i]);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(bf.contains(ks[i]));
    i = (i + 1) & (ks.size() - 1);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SheBloomQuery);

void BM_SheCmQuery(benchmark::State& state) {
  SheConfig cfg;
  cfg.window = kN;
  cfg.cells = 1u << 18;
  cfg.group_cells = 64;
  cfg.alpha = 1.0;
  SheCountMin cm(cfg, 8);
  const auto& ks = keys();
  for (std::size_t i = 0; i < 4 * kN; ++i) cm.insert(ks[i]);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cm.frequency(ks[i]));
    i = (i + 1) & (ks.size() - 1);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SheCmQuery);

}  // namespace
}  // namespace she::bench
