// Google-benchmark micro-operations: per-insert and per-query cost of every
// estimator and baseline on a pre-generated CAIDA-like key sequence.
// Complements the trace-level Mips figures (Fig. 10/11) with steady-state
// per-op numbers and their variance.
//
// Every SHE estimator gets a symmetric *InsertScalarLarge / *InsertBatch
// pair at cache-exceeding sizes; a custom main() tees the console report
// into BENCH_micro.json (schema_version stamped, matching the
// BENCH_pipeline.json treatment) with the scalar-vs-batch speedups paired
// up by estimator and size argument.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <fstream>
#include <span>
#include <string>
#include <vector>

#include "baselines/cvs.hpp"
#include "common/simd.hpp"
#include "baselines/ecm.hpp"
#include "baselines/shll.hpp"
#include "baselines/swamp.hpp"
#include "baselines/tbf.hpp"
#include "baselines/tobf.hpp"
#include "baselines/tsv.hpp"
#include "common.hpp"
#include "obs/trace.hpp"
#include "she/she.hpp"

namespace she::bench {
namespace {

const stream::Trace& keys() {
  static stream::Trace t = caida_like(1 << 20);
  return t;
}

constexpr std::uint64_t kN = 1u << 16;

template <typename T>
void drive_inserts(benchmark::State& state, T& sketch) {
  const auto& ks = keys();
  std::size_t i = 0;
  for (auto _ : state) {
    sketch.insert(ks[i]);
    i = (i + 1) & (ks.size() - 1);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void BM_SheBloomInsert(benchmark::State& state) {
  SheConfig cfg;
  cfg.window = kN;
  cfg.cells = 1u << 20;
  cfg.group_cells = 64;
  cfg.alpha = 3.0;
  SheBloomFilter bf(cfg, static_cast<unsigned>(state.range(0)));
  drive_inserts(state, bf);
}
BENCHMARK(BM_SheBloomInsert)->Arg(4)->Arg(8)->Arg(16);

void BM_SheBitmapInsert(benchmark::State& state) {
  SheConfig cfg;
  cfg.window = kN;
  cfg.cells = 1u << 16;
  cfg.group_cells = static_cast<std::size_t>(state.range(0));
  cfg.alpha = 0.2;
  SheBitmap bm(cfg);
  drive_inserts(state, bm);
}
BENCHMARK(BM_SheBitmapInsert)->Arg(16)->Arg(64)->Arg(256);

void BM_SheHllInsert(benchmark::State& state) {
  SheConfig cfg;
  cfg.window = kN;
  cfg.cells = 2048;
  cfg.group_cells = 1;
  cfg.alpha = 0.2;
  SheHyperLogLog hll(cfg);
  drive_inserts(state, hll);
}
BENCHMARK(BM_SheHllInsert);

void BM_SheCmInsert(benchmark::State& state) {
  SheConfig cfg;
  cfg.window = kN;
  cfg.cells = 1u << 18;
  cfg.group_cells = 64;
  cfg.alpha = 1.0;
  SheCountMin cm(cfg, 8);
  drive_inserts(state, cm);
}
BENCHMARK(BM_SheCmInsert);

void BM_SheMinHashInsert(benchmark::State& state) {
  SheConfig cfg;
  cfg.window = kN;
  cfg.cells = static_cast<std::size_t>(state.range(0));
  cfg.group_cells = 1;
  cfg.alpha = 0.2;
  SheMinHash mh(cfg);
  drive_inserts(state, mh);
}
BENCHMARK(BM_SheMinHashInsert)->Arg(64)->Arg(256);

// ---- scalar-vs-batch pairs ------------------------------------------------
// One *InsertScalarLarge / *InsertBatch pair per estimator at sizes past
// the last-level cache, identical configs on both sides so the JSON writer
// can pair them by (estimator, arg) and report batch/scalar speedup.  The
// batch side feeds 512-key chunks through the pipelined insert_batch.

template <typename T>
void drive_batch_inserts(benchmark::State& state, T& sketch) {
  const auto& ks = keys();
  std::size_t i = 0;
  constexpr std::size_t kChunk = 512;
  for (auto _ : state) {
    sketch.insert_batch(std::span<const std::uint64_t>(ks.data() + i, kChunk));
    i = (i + kChunk) & (ks.size() - 1);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kChunk);
}

SheBloomFilter large_bloom(std::int64_t log2_cells) {
  SheConfig cfg;
  cfg.window = kN;
  cfg.cells = std::size_t{1} << static_cast<unsigned>(log2_cells);
  cfg.group_cells = 64;
  cfg.alpha = 3.0;
  return SheBloomFilter(cfg, 8);
}

void BM_SheBloomInsertScalarLarge(benchmark::State& state) {
  SheBloomFilter bf = large_bloom(state.range(0));
  drive_inserts(state, bf);
}
BENCHMARK(BM_SheBloomInsertScalarLarge)->Arg(20)->Arg(24)->Arg(26);

void BM_SheBloomInsertBatch(benchmark::State& state) {
  SheBloomFilter bf = large_bloom(state.range(0));
  drive_batch_inserts(state, bf);
}
BENCHMARK(BM_SheBloomInsertBatch)->Arg(20)->Arg(24)->Arg(26);

SheBitmap large_bitmap(std::int64_t log2_cells) {
  SheConfig cfg;
  cfg.window = kN;
  cfg.cells = std::size_t{1} << static_cast<unsigned>(log2_cells);
  cfg.group_cells = 64;
  cfg.alpha = 0.2;
  return SheBitmap(cfg);
}

void BM_SheBitmapInsertScalarLarge(benchmark::State& state) {
  SheBitmap bm = large_bitmap(state.range(0));
  drive_inserts(state, bm);
}
BENCHMARK(BM_SheBitmapInsertScalarLarge)->Arg(20)->Arg(24)->Arg(26);

void BM_SheBitmapInsertBatch(benchmark::State& state) {
  SheBitmap bm = large_bitmap(state.range(0));
  drive_batch_inserts(state, bm);
}
BENCHMARK(BM_SheBitmapInsertBatch)->Arg(20)->Arg(24)->Arg(26);

SheHyperLogLog large_hll(std::int64_t log2_registers) {
  SheConfig cfg;
  cfg.window = kN;
  cfg.cells = std::size_t{1} << static_cast<unsigned>(log2_registers);
  cfg.group_cells = 1;
  cfg.alpha = 0.2;
  return SheHyperLogLog(cfg);
}

void BM_SheHllInsertScalarLarge(benchmark::State& state) {
  SheHyperLogLog hll = large_hll(state.range(0));
  drive_inserts(state, hll);
}
BENCHMARK(BM_SheHllInsertScalarLarge)->Arg(11)->Arg(20);

void BM_SheHllInsertBatch(benchmark::State& state) {
  SheHyperLogLog hll = large_hll(state.range(0));
  drive_batch_inserts(state, hll);
}
BENCHMARK(BM_SheHllInsertBatch)->Arg(11)->Arg(20);

SheCountMin large_cm(std::int64_t log2_cells) {
  SheConfig cfg;
  cfg.window = kN;
  cfg.cells = std::size_t{1} << static_cast<unsigned>(log2_cells);
  cfg.group_cells = 64;
  cfg.alpha = 1.0;
  return SheCountMin(cfg, 8);
}

void BM_SheCmInsertScalarLarge(benchmark::State& state) {
  SheCountMin cm = large_cm(state.range(0));
  drive_inserts(state, cm);
}
BENCHMARK(BM_SheCmInsertScalarLarge)->Arg(18)->Arg(22)->Arg(24)->Arg(26);

void BM_SheCmInsertBatch(benchmark::State& state) {
  SheCountMin cm = large_cm(state.range(0));
  drive_batch_inserts(state, cm);
}
BENCHMARK(BM_SheCmInsertBatch)->Arg(18)->Arg(22)->Arg(24)->Arg(26);

SheMinHash large_minhash(std::int64_t m) {
  SheConfig cfg;
  cfg.window = kN;
  cfg.cells = static_cast<std::size_t>(m);
  cfg.group_cells = 1;
  cfg.alpha = 0.2;
  return SheMinHash(cfg);
}

// SHE-MH touches all m slots per insert, so the slot budget degrades the
// block to 1 key: the pair documents that batching does not regress it.
void BM_SheMinHashInsertScalarLarge(benchmark::State& state) {
  SheMinHash mh = large_minhash(state.range(0));
  drive_inserts(state, mh);
}
BENCHMARK(BM_SheMinHashInsertScalarLarge)->Arg(64)->Arg(256);

void BM_SheMinHashInsertBatch(benchmark::State& state) {
  SheMinHash mh = large_minhash(state.range(0));
  drive_batch_inserts(state, mh);
}
BENCHMARK(BM_SheMinHashInsertBatch)->Arg(64)->Arg(256);
// ---- end scalar-vs-batch pairs --------------------------------------------

// ---- simd-vs-scalar batch pairs -------------------------------------------
// The same insert_batch loops with the SIMD stage 1 forced off, so the
// *InsertBatch / *InsertBatchScalar gap isolates the vectorized front-end
// (hashing + mark staging) from the batching/prefetch win the pair above
// already measures.  BENCH_micro.json joins them as simd_speedup; CI
// guards SHE-BF and SHE-CM at >= 2x on AVX2 runners.

void BM_SheBloomInsertBatchScalar(benchmark::State& state) {
  const simd::ScopedForceScalar scalar_only;
  SheBloomFilter bf = large_bloom(state.range(0));
  drive_batch_inserts(state, bf);
}
BENCHMARK(BM_SheBloomInsertBatchScalar)->Arg(20)->Arg(24)->Arg(26);

void BM_SheBitmapInsertBatchScalar(benchmark::State& state) {
  const simd::ScopedForceScalar scalar_only;
  SheBitmap bm = large_bitmap(state.range(0));
  drive_batch_inserts(state, bm);
}
BENCHMARK(BM_SheBitmapInsertBatchScalar)->Arg(20)->Arg(24)->Arg(26);

void BM_SheHllInsertBatchScalar(benchmark::State& state) {
  const simd::ScopedForceScalar scalar_only;
  SheHyperLogLog hll = large_hll(state.range(0));
  drive_batch_inserts(state, hll);
}
BENCHMARK(BM_SheHllInsertBatchScalar)->Arg(11)->Arg(20);

void BM_SheCmInsertBatchScalar(benchmark::State& state) {
  const simd::ScopedForceScalar scalar_only;
  SheCountMin cm = large_cm(state.range(0));
  drive_batch_inserts(state, cm);
}
BENCHMARK(BM_SheCmInsertBatchScalar)->Arg(18)->Arg(22)->Arg(24)->Arg(26);

void BM_SheMinHashInsertBatchScalar(benchmark::State& state) {
  const simd::ScopedForceScalar scalar_only;
  SheMinHash mh = large_minhash(state.range(0));
  drive_batch_inserts(state, mh);
}
BENCHMARK(BM_SheMinHashInsertBatchScalar)->Arg(64)->Arg(256);
// ---- end simd-vs-scalar batch pairs ---------------------------------------

// ---- tracing overhead pair ------------------------------------------------
// Identical batched SHE-CM insert loops: the baseline has no trace macro at
// all, the TraceOff side runs SHE_TRACE_SPAN per chunk with tracing
// disabled — i.e. the macro's production steady state (one relaxed load and
// branch).  BENCH_micro.json reports the relative gap as trace_overhead and
// CI guards it under 2%.

void BM_InsertBatchTraceBaseline(benchmark::State& state) {
  SheCountMin cm = large_cm(22);
  drive_batch_inserts(state, cm);
}
BENCHMARK(BM_InsertBatchTraceBaseline);

void BM_InsertBatchTraceOff(benchmark::State& state) {
  obs::trace::set_enabled(false);
  SheCountMin cm = large_cm(22);
  const auto& ks = keys();
  std::size_t i = 0;
  constexpr std::size_t kChunk = 512;
  for (auto _ : state) {
    SHE_TRACE_SPAN("bench.insert_batch", "bench");
    cm.insert_batch(std::span<const std::uint64_t>(ks.data() + i, kChunk));
    i = (i + kChunk) & (ks.size() - 1);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kChunk);
}
BENCHMARK(BM_InsertBatchTraceOff);

// Tracing enabled: every chunk records one span into the thread ring
// (rdtsc ×2 + a seqlock slot write).  Not part of the CI guard — the
// guard holds the *disabled* path to <2% — but TUNING quotes this number
// as the cost of switching collection on.
void BM_InsertBatchTraceOn(benchmark::State& state) {
  obs::trace::set_enabled(true);
  SheCountMin cm = large_cm(22);
  const auto& ks = keys();
  std::size_t i = 0;
  constexpr std::size_t kChunk = 512;
  for (auto _ : state) {
    SHE_TRACE_SPAN("bench.insert_batch", "bench");
    cm.insert_batch(std::span<const std::uint64_t>(ks.data() + i, kChunk));
    i = (i + kChunk) & (ks.size() - 1);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kChunk);
  obs::trace::set_enabled(false);
  obs::trace::reset();
}
BENCHMARK(BM_InsertBatchTraceOn);
// ---- end tracing overhead pair --------------------------------------------

void BM_FixedBloomInsert(benchmark::State& state) {
  fixed::BloomFilter bf(1u << 20, 8);
  drive_inserts(state, bf);
}
BENCHMARK(BM_FixedBloomInsert);

void BM_SwampInsert(benchmark::State& state) {
  baselines::Swamp sw(kN, 16);
  drive_inserts(state, sw);
}
BENCHMARK(BM_SwampInsert);

void BM_TobfInsert(benchmark::State& state) {
  baselines::TimeOutBloomFilter tobf(1u << 17, 8, kN);
  drive_inserts(state, tobf);
}
BENCHMARK(BM_TobfInsert);

void BM_TbfInsert(benchmark::State& state) {
  baselines::TimingBloomFilter tbf(1u << 17, 8, kN, 18);
  drive_inserts(state, tbf);
}
BENCHMARK(BM_TbfInsert);

void BM_TsvInsert(benchmark::State& state) {
  baselines::TimestampVector tsv(1u << 16, kN);
  drive_inserts(state, tsv);
}
BENCHMARK(BM_TsvInsert);

void BM_CvsInsert(benchmark::State& state) {
  baselines::CounterVectorSketch cvs(1u << 16, kN, 10, kSeed);
  drive_inserts(state, cvs);
}
BENCHMARK(BM_CvsInsert);

void BM_ShllInsert(benchmark::State& state) {
  baselines::SlidingHyperLogLog shll(2048, kN);
  drive_inserts(state, shll);
}
BENCHMARK(BM_ShllInsert);

void BM_EcmInsert(benchmark::State& state) {
  baselines::EcmSketch ecm(4096, 4, kN);
  drive_inserts(state, ecm);
}
BENCHMARK(BM_EcmInsert);

void BM_SheBloomQuery(benchmark::State& state) {
  SheConfig cfg;
  cfg.window = kN;
  cfg.cells = 1u << 20;
  cfg.group_cells = 64;
  cfg.alpha = 3.0;
  SheBloomFilter bf(cfg, 8);
  const auto& ks = keys();
  for (std::size_t i = 0; i < 4 * kN; ++i) bf.insert(ks[i]);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(bf.contains(ks[i]));
    i = (i + 1) & (ks.size() - 1);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SheBloomQuery);

void BM_SheCmQuery(benchmark::State& state) {
  SheConfig cfg;
  cfg.window = kN;
  cfg.cells = 1u << 18;
  cfg.group_cells = 64;
  cfg.alpha = 1.0;
  SheCountMin cm(cfg, 8);
  const auto& ks = keys();
  for (std::size_t i = 0; i < 4 * kN; ++i) cm.insert(ks[i]);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cm.frequency(ks[i]));
    i = (i + 1) & (ks.size() - 1);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SheCmQuery);

}  // namespace

/// ConsoleReporter that also collects per-run rows, so main() can emit
/// BENCH_micro.json next to the usual console report.  (A tee, not a
/// separate file reporter: the library insists on --benchmark_out for
/// those.)
class MicroJsonCollector : public benchmark::ConsoleReporter {
 public:
  struct Row {
    std::string name;           ///< e.g. "BM_SheCmInsertBatch/22"
    std::int64_t iterations = 0;
    double items_per_sec = 0;
  };

  void ReportRuns(const std::vector<Run>& runs) override {
    ConsoleReporter::ReportRuns(runs);
    for (const Run& r : runs) {
      if (r.error_occurred || r.run_type != Run::RT_Iteration) continue;
      Row row;
      row.name = r.benchmark_name();
      row.iterations = static_cast<std::int64_t>(r.iterations);
      auto it = r.counters.find("items_per_second");
      if (it != r.counters.end()) row.items_per_sec = it->second;
      rows.push_back(std::move(row));
    }
  }

  std::vector<Row> rows;
};

/// BENCH_micro.json: every run as a row, plus scalar-vs-batch pairs joined
/// on (estimator, size arg) — "BM_<Est>InsertBatch/<arg>" against
/// "BM_<Est>InsertScalarLarge/<arg>" — with the batch/scalar speedup.
void write_micro_json(const std::vector<MicroJsonCollector::Row>& rows,
                      const std::string& path) {
  std::ofstream os(path);
  os << "{\"schema_version\":1,\"benchmark\":\"micro_ops\",\"runs\":[";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    if (i) os << ",";
    os << "{\"name\":\"" << rows[i].name
       << "\",\"iterations\":" << rows[i].iterations
       << ",\"items_per_sec\":" << rows[i].items_per_sec << "}";
  }
  os << "],\"batch_speedup\":[";
  const std::string batch_tag = "InsertBatch/";
  bool first = true;
  for (const auto& b : rows) {
    const std::size_t tag = b.name.find(batch_tag);
    if (tag == std::string::npos) continue;
    std::string scalar_name = b.name;
    scalar_name.replace(tag, batch_tag.size() - 1, "InsertScalarLarge");
    const MicroJsonCollector::Row* s = nullptr;
    for (const auto& r : rows)
      if (r.name == scalar_name) s = &r;
    if (s == nullptr || s->items_per_sec <= 0) continue;
    if (!first) os << ",";
    first = false;
    os << "{\"estimator\":\"" << b.name.substr(3, tag - 3)
       << "\",\"arg\":" << b.name.substr(tag + batch_tag.size())
       << ",\"scalar_items_per_sec\":" << s->items_per_sec
       << ",\"batch_items_per_sec\":" << b.items_per_sec
       << ",\"speedup\":" << b.items_per_sec / s->items_per_sec << "}";
  }
  os << "]";
  // SIMD-vs-scalar pairs: "BM_<Est>InsertBatch/<arg>" (native dispatch)
  // against "BM_<Est>InsertBatchScalar/<arg>" (ScopedForceScalar), best-of
  // across repetitions on both sides like the trace pair below.
  os << ",\"simd_speedup\":[";
  first = true;
  std::vector<std::string> emitted;  // one pair per name across repetitions
  for (const auto& b : rows) {
    const std::size_t tag = b.name.find(batch_tag);
    if (tag == std::string::npos) continue;
    if (std::find(emitted.begin(), emitted.end(), b.name) != emitted.end())
      continue;
    emitted.push_back(b.name);
    std::string scalar_name = b.name;
    scalar_name.replace(tag, batch_tag.size() - 1, "InsertBatchScalar");
    double native = b.items_per_sec, forced = 0;
    for (const auto& r : rows) {
      if (r.name == b.name) native = std::max(native, r.items_per_sec);
      if (r.name == scalar_name) forced = std::max(forced, r.items_per_sec);
    }
    if (forced <= 0) continue;
    if (!first) os << ",";
    first = false;
    os << "{\"estimator\":\"" << b.name.substr(3, tag - 3)
       << "\",\"arg\":" << b.name.substr(tag + batch_tag.size())
       << ",\"forced_scalar_items_per_sec\":" << forced
       << ",\"simd_items_per_sec\":" << native
       << ",\"speedup\":" << native / forced << "}";
  }
  os << "]";
  // Which backend the vector kernels dispatched to while these numbers were
  // taken — a speedup row is only meaningful alongside its ISA.
  os << ",\"simd\":{\"isa\":\"" << simd::active_isa_name()
     << "\",\"force_scalar\":" << (simd::force_scalar_env() ? 1 : 0) << "}";
  // Best-of across repetitions: throughput noise is one-sided (slowdowns
  // from scheduler/cache interference), so max-of-N estimates the true
  // rate on both sides and keeps the overhead comparison from reporting
  // jitter as macro cost.  Run with --benchmark_repetitions for stability.
  double base = 0, off = 0;
  for (const auto& r : rows) {
    if (r.name.rfind("BM_InsertBatchTraceBaseline", 0) == 0)
      base = std::max(base, r.items_per_sec);
    if (r.name.rfind("BM_InsertBatchTraceOff", 0) == 0)
      off = std::max(off, r.items_per_sec);
  }
  if (base > 0 && off > 0) {
    os << ",\"trace_overhead\":{\"baseline_items_per_sec\":" << base
       << ",\"trace_off_items_per_sec\":" << off
       << ",\"overhead_pct\":" << (base - off) / base * 100.0 << "}";
  }
  os << "}\n";
}

}  // namespace she::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  she::bench::MicroJsonCollector collect;
  benchmark::RunSpecifiedBenchmarks(&collect);
  benchmark::Shutdown();
  she::bench::write_micro_json(collect.rows, "BENCH_micro.json");
  return 0;
}
