// Ablation — on-demand (lazy) cleaning error, validating Eq. (1) of Sec. 5.1.
//
// A group "fails" when no insertion touches it for a whole cleaning cycle;
// with 1-bit marks a group untouched for two cycles aliases back to a fresh
// mark and its stale content leaks into queries.  We measure:
//   (1) groups missed per cycle vs the Eq. (1) expectation
//       G * e^(-(1+alpha)CH/G), in a regime where failures occur (small
//       groups, then low stream cardinality);
//   (2) the end-to-end effect: a wide burst followed by a narrow stream
//       leaves most groups untouched for cycles; 1-bit marks alias and
//       keep serving the burst's stale bits, wider marks detect staleness.
#include <algorithm>
#include <iostream>
#include <vector>

#include "common.hpp"
#include "common/bobhash.hpp"
#include "she/she.hpp"

namespace she::bench {
namespace {

constexpr std::uint64_t kN = 1u << 14;

std::string fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.4g", v);
  return buf;
}

/// Measured groups-missed-per-cycle for a stream with window cardinality
/// `card` (distinct keys cycling), across group sizes.
void failure_counts() {
  std::printf("\n--- Eq. (1): groups missed per cleaning cycle ---\n");
  Table table({"stream C", "w", "groups G", "measured misses/cycle",
               "Eq.(1) expectation"});
  constexpr std::size_t kBits = 1u << 17;
  constexpr unsigned kHashes = 8;
  constexpr double kAlpha = 1.0;
  auto tcycle = static_cast<std::uint64_t>((1.0 + kAlpha) * kN);

  for (std::uint64_t card : {std::uint64_t{512}, std::uint64_t{4096}, kN}) {
    for (std::size_t w : {2, 8, 64}) {
      std::size_t groups = kBits / w;
      std::vector<std::uint8_t> touched(groups, 0);
      double cycles = 0;
      double misses = 0;
      std::uint64_t t = 0;
      for (std::uint64_t i = 0; i < 6 * kN; ++i) {
        // Cardinality-controlled stream: `card` distinct keys per window.
        std::uint64_t key = hash64(i % card, 7) ^ hash64(i / kN, 9);
        ++t;
        for (unsigned h = 0; h < kHashes; ++h) {
          std::size_t pos = BobHash32(h)(key) % kBits;
          touched[pos / w] = 1;
        }
        if (t % tcycle == 0) {
          if (t > 2 * kN) {
            ++cycles;
            for (auto f : touched)
              if (!f) ++misses;
          }
          std::fill(touched.begin(), touched.end(), 0);
        }
      }
      // Eq. (1) with the per-window cardinality: C distinct keys inserted
      // (1+alpha) windows per cycle, H cells each.
      double expected =
          expected_failed_groups(groups, static_cast<double>(card), kHashes, kAlpha);
      table.add(card, w, groups, fmt(cycles > 0 ? misses / cycles : 0.0),
                fmt(expected));
    }
  }
  table.print(std::cout);
}

/// Aliasing demo: a wide distinct burst sets bits everywhere, then a narrow
/// stream (few keys) runs for many cycles.  Untouched groups alias on 1-bit
/// marks and keep answering with the burst's stale bits.
void mark_width_effect() {
  std::printf("\n--- Mark width vs stale-positive rate after a burst ---\n");
  Table table({"mark bits", "stale positive rate", "marks memory"});
  constexpr std::size_t kBits = 1u << 17;

  for (unsigned bits : {1, 2, 4, 8}) {
    SheConfig cfg;
    cfg.window = kN;
    cfg.cells = kBits;
    cfg.group_cells = 64;
    cfg.alpha = 1.0;
    cfg.mark_bits = bits;
    SheBloomFilter bf(cfg, 8);

    // Burst: one window of distinct keys (these are the stale content).
    auto burst = stream::distinct_trace(kN, kSeed);
    for (auto k : burst) bf.insert(k);
    // Narrow phase: 16 keys for 8 windows (4 cycles) — groups not hashed by
    // these keys are never touched again.
    for (std::uint64_t i = 0; i < 8 * kN; ++i) bf.insert(hash64(i % 16, 3));

    // Re-probe the burst keys: all are far out of the window, so every
    // "present" is a stale positive caused by aliased (uncleaned) groups.
    std::size_t stale = 0;
    for (auto k : burst)
      if (bf.contains(k)) ++stale;
    table.add(bits, fmt(static_cast<double>(stale) / static_cast<double>(burst.size())),
              memory_label(std::max<std::size_t>(1, cfg.groups() * bits / 8)));
  }
  table.print(std::cout);
}

}  // namespace
}  // namespace she::bench

int main() {
  she::bench::banner("Ablation — on-demand cleaning (Eq. 1)",
                     "Measured group-miss counts vs the analytical "
                     "expectation, and the FPR cost of 1-bit mark aliasing.");
  she::bench::failure_counts();
  she::bench::mark_width_effect();
  return 0;
}
