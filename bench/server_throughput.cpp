// she_server wire-protocol throughput and query latency.
//
// Starts an in-process SheServer on an ephemeral port and drives it over
// real TCP connections, the way deployed clients would:
//
//   * bulk-insert throughput — K client threads, each streaming
//     INSERT_BULK chunks into one shared pipeline, at K = 1 / 4 / 16;
//     reports aggregate accepted items/s (the protocol + producer-slot
//     cost on top of the raw pipeline numbers in BENCH_pipeline.json),
//   * query latency — K clients issuing frequency queries against the
//     seqlock snapshots while the pipeline holds a full window; reports
//     per-request p50/p99 wall latency.
//
// Each row is emitted as JSON and the whole run lands in
// BENCH_server.json so CI can diff runs across hosts.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common.hpp"
#include "server/client.hpp"
#include "server/server.hpp"

namespace she::bench {
namespace {

using server::SheClient;
using server::SheServer;
using server::ServerOptions;

constexpr std::uint64_t kInsertItems = 2'000'000;  ///< total, split across clients
constexpr std::size_t kBulkChunk = 8192;           ///< keys per INSERT_BULK frame
constexpr std::size_t kQueriesPerClient = 20'000;

std::string fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.4g", v);
  return buf;
}

/// The shared pipeline every run talks to: enough producer slots that 16
/// handler threads rarely contend on one ring.
std::string spec() {
  return "window=64K memory=1M shards=4 producers=8 queue=8192";
}

double insert_run(SheServer& server, std::size_t clients,
                  const stream::Trace& trace,
                  const std::string& extra_spec = "") {
  const std::string name = "bench-ins-" + std::to_string(clients) +
                           (extra_spec.empty() ? "" : "-wal");
  SheClient admin("127.0.0.1", server.port());
  admin.create(name, spec() + extra_spec);

  std::atomic<std::uint64_t> accepted{0};
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> pool;
  pool.reserve(clients);
  for (std::size_t c = 0; c < clients; ++c) {
    pool.emplace_back([&, c] {
      SheClient cl("127.0.0.1", server.port());
      const std::size_t lo = trace.size() * c / clients;
      const std::size_t hi = trace.size() * (c + 1) / clients;
      std::uint64_t acc = 0;
      for (std::size_t i = lo; i < hi; i += kBulkChunk) {
        const std::size_t n = std::min(kBulkChunk, hi - i);
        acc += cl.insert_bulk(
            name, std::span<const std::uint64_t>(trace.data() + i, n));
      }
      accepted.fetch_add(acc, std::memory_order_relaxed);
    });
  }
  for (auto& t : pool) t.join();
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  admin.drop(name);
  return static_cast<double>(accepted.load()) / secs;
}

struct LatencyResult {
  double p50_us = 0;
  double p99_us = 0;
  double queries_per_sec = 0;
};

LatencyResult query_run(SheServer& server, std::size_t clients,
                        const stream::Trace& trace) {
  const std::string name = "bench-qry-" + std::to_string(clients);
  SheClient admin("127.0.0.1", server.port());
  admin.create(name, spec());
  // Fill a full window so queries touch realistic sketch state.
  for (std::size_t i = 0; i < (64u << 10); i += kBulkChunk) {
    (void)admin.insert_bulk(
        name, std::span<const std::uint64_t>(trace.data() + i, kBulkChunk));
  }
  admin.flush(name);

  std::vector<std::vector<double>> lat_us(clients);
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> pool;
  pool.reserve(clients);
  for (std::size_t c = 0; c < clients; ++c) {
    pool.emplace_back([&, c] {
      SheClient cl("127.0.0.1", server.port());
      auto& lat = lat_us[c];
      lat.reserve(kQueriesPerClient);
      for (std::size_t q = 0; q < kQueriesPerClient; ++q) {
        const auto q0 = std::chrono::steady_clock::now();
        (void)cl.query_frequency(name, trace[(c * 7919 + q) % trace.size()]);
        lat.push_back(std::chrono::duration<double, std::micro>(
                          std::chrono::steady_clock::now() - q0)
                          .count());
      }
    });
  }
  for (auto& t : pool) t.join();
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  admin.drop(name);

  std::vector<double> all;
  all.reserve(clients * kQueriesPerClient);
  for (const auto& v : lat_us) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());
  LatencyResult r;
  r.p50_us = all[all.size() / 2];
  r.p99_us = all[all.size() * 99 / 100];
  r.queries_per_sec = static_cast<double>(all.size()) / secs;
  return r;
}

void write_report(const std::string& path,
                  const std::vector<std::string>& rows) {
  std::ofstream os(path);
  if (!os) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return;
  }
  os << "{\n  \"schema_version\": 1,\n  \"bench\": \"server_throughput\",\n"
     << "  \"insert_items\": " << kInsertItems << ",\n"
     << "  \"queries_per_client\": " << kQueriesPerClient << ",\n"
     << "  \"hardware_concurrency\": " << std::thread::hardware_concurrency()
     << ",\n  \"runs\": [\n    ";
  for (std::size_t i = 0; i < rows.size(); ++i)
    os << (i ? ",\n    " : "") << rows[i];
  os << "\n  ]\n}\n";
  std::printf("\nwrote %s\n", path.c_str());
}

void run_all(const std::string& out_path) {
  // A durable root lets the WAL rows run on the same server; pipelines
  // without wal= in their spec never touch it.
  const auto wal_root =
      std::filesystem::temp_directory_path() / "she_bench_server_wal";
  std::filesystem::remove_all(wal_root);
  ServerOptions opt;
  opt.http_port = -1;  // protocol only; /metrics costs nothing when off
  opt.manager.checkpoint_root = wal_root.string();
  SheServer server(std::move(opt));
  server.start();
  auto trace = caida_like(kInsertItems);

  std::vector<std::string> rows;
  Table ins_table({"clients", "insert Mitems/s"});
  Table wal_table({"wal", "insert Mitems/s"});
  Table qry_table({"clients", "q/s", "p50 us", "p99 us"});
  for (std::size_t clients : {1u, 4u, 16u}) {
    const double ips = insert_run(server, clients, trace);
    ins_table.add(clients, fmt(ips / 1e6));
    std::ostringstream row;
    row << "{\"mode\":\"insert\",\"clients\":" << clients
        << ",\"items_per_sec\":" << ips << "}";
    rows.push_back(row.str());
    std::printf("JSON %s\n", row.str().c_str());
  }
  // The durability tax: the same 4-client bulk-insert load with the
  // write-ahead backlog log off vs group-committed fsync (1 MiB interval).
  for (const char* wal : {"off", "fsync"}) {
    const bool on = std::string_view(wal) == "fsync";
    const double ips = insert_run(
        server, 4, trace, on ? " wal=fsync wal-fsync-bytes=1M" : "");
    wal_table.add(wal, fmt(ips / 1e6));
    std::ostringstream row;
    row << "{\"mode\":\"insert_wal\",\"wal\":\"" << wal
        << "\",\"clients\":4,\"items_per_sec\":" << ips << "}";
    rows.push_back(row.str());
    std::printf("JSON %s\n", row.str().c_str());
  }
  for (std::size_t clients : {1u, 4u, 16u}) {
    const LatencyResult r = query_run(server, clients, trace);
    qry_table.add(clients, fmt(r.queries_per_sec), fmt(r.p50_us),
                  fmt(r.p99_us));
    std::ostringstream row;
    row << "{\"mode\":\"query\",\"clients\":" << clients
        << ",\"queries_per_sec\":" << r.queries_per_sec
        << ",\"p50_us\":" << r.p50_us << ",\"p99_us\":" << r.p99_us << "}";
    rows.push_back(row.str());
    std::printf("JSON %s\n", row.str().c_str());
  }
  ins_table.print(std::cout);
  wal_table.print(std::cout);
  qry_table.print(std::cout);
  server.request_stop();
  server.stop();
  std::filesystem::remove_all(wal_root);
  write_report(out_path, rows);
}

}  // namespace
}  // namespace she::bench

int main(int argc, char** argv) {
  she::bench::banner(
      "Server throughput — she_server over TCP",
      "Bulk-insert items/s and query latency percentiles at 1/4/16 "
      "concurrent protocol clients against one shared pipeline.");
  she::bench::run_all(argc > 1 ? argv[1] : "BENCH_server.json");
  return 0;
}
