// Shared benchmark-harness utilities.
//
// Every fig*/table* binary prints the same rows/series the paper's figure
// reports, preceded by a header naming the experiment and the seed, so runs
// are reproducible and greppable.  Scales default to the paper's settings
// (window 2^16; SHE-HLL uses a larger window) but are trimmed where a
// figure would otherwise take minutes; each binary prints its actual
// parameters.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "stream/trace.hpp"

namespace she::bench {

/// Default experiment seed (printed by every harness).
inline constexpr std::uint64_t kSeed = 20220829;  // ICPP'22 conference date

/// Paper-default window: N = 2^16 items.
inline constexpr std::uint64_t kWindow = 1u << 16;

/// CAIDA-substitute stream (DESIGN.md §5): Zipf 1.0 over 600K ranks.
stream::Trace caida_like(std::uint64_t length, std::uint64_t seed = kSeed);

/// Probe keys guaranteed absent from any generator-produced stream (their
/// key space is bounded; probes start at 2^40).
std::vector<std::uint64_t> absent_probes(std::size_t count);

/// Print the standard experiment banner.
void banner(const std::string& experiment, const std::string& description);

/// Wall-clock timer returning million-operations-per-second.
class MopsTimer {
 public:
  void start() { t0_ = std::chrono::steady_clock::now(); }
  /// Mops for `ops` operations since start().
  [[nodiscard]] double stop(std::uint64_t ops) const {
    auto dt = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0_);
    return static_cast<double>(ops) / dt.count() / 1e6;
  }

 private:
  std::chrono::steady_clock::time_point t0_;
};

/// Human-readable memory label ("0.5 KB", "2 MB").
std::string memory_label(std::size_t bytes);

}  // namespace she::bench
