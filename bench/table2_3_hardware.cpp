// Tables 2 & 3 — hardware implementation results (FPGA substitute).
//
// The paper synthesizes SHE-BM and SHE-BF on a Virtex-7 (xc7vx690t):
//   Table 2: LUT 1653 / 12875, registers 1509 / 11790, block memory 0.
//   Table 3: clock 544.07 / 468.82 MHz -> 544 Mips at 1 item/cycle.
//
// Without the device we report (DESIGN.md §5):
//   (1) the structural constraint check — each design passes/fails the
//       three pipeline constraints of Sec. 2.3 (SWAMP fails, reproducing
//       the paper's argument);
//   (2) the calibrated resource model (LUT-equivalents / register bits);
//   (3) modeled throughput = clock x 1 item/cycle at the paper's clocks;
//   (4) the per-item memory-access trace (fixed budget -> II = 1);
//   (5) measured software insert throughput for reference.
#include <iostream>

#include "common.hpp"
#include "hw/access_trace.hpp"
#include "hw/builders.hpp"
#include "hw/cycle_sim.hpp"
#include "hw/switch_profile.hpp"
#include "she/she.hpp"

namespace she::bench {
namespace {

std::string fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", v);
  return buf;
}

void constraint_section() {
  std::printf("\n--- Sec. 2.3 constraint check ---\n");
  Table table({"design", "SRAM fits", "single-stage", "limited-concurrency",
               "pipelined (II=1)"});
  for (const auto& p : {hw::make_she_bm_pipeline(), hw::make_she_bf_pipeline(),
                        hw::make_swamp_pipeline()}) {
    auto rep = p.check();
    table.add(p.name(), rep.sram_fits ? "yes" : "NO",
              rep.single_stage_access ? "yes" : "NO",
              rep.limited_concurrent_access ? "yes" : "NO",
              rep.pipelined() ? "yes" : "NO");
  }
  table.print(std::cout);

  auto swamp = hw::make_swamp_pipeline();
  std::printf("\nSWAMP violations (why it cannot run on this hardware):\n");
  for (const auto& v : swamp.check().violations) std::printf("  * %s\n", v.c_str());
}

void table2_section() {
  std::printf("\n--- Table 2 analog: resource model (paper: LUT 1653/12875, "
              "reg 1509/11790, BRAM 0) ---\n");
  Table table({"design", "LUT (modeled)", "registers (modeled)", "block RAM bits"});
  for (const auto& p : {hw::make_she_bm_pipeline(), hw::make_she_bf_pipeline()}) {
    auto est = p.resources();
    table.add(p.name(), est.lut, est.registers, est.block_ram_bits);
  }
  table.print(std::cout);
}

void table3_section() {
  std::printf("\n--- Table 3 analog: throughput model (paper: 544.07 / 468.82 "
              "MHz) ---\n");
  Table table({"design", "items/cycle", "Mips @ paper clock", "Mips @ 200 MHz"});
  struct Row {
    hw::Pipeline pipeline;
    double paper_clock;
  };
  Row rows[] = {{hw::make_she_bm_pipeline(), 544.07},
                {hw::make_she_bf_pipeline(), 468.82}};
  for (const auto& r : rows) {
    auto est = r.pipeline.resources();
    table.add(r.pipeline.name(), fmt(est.items_per_cycle),
              fmt(r.pipeline.throughput_mips(r.paper_clock)),
              fmt(r.pipeline.throughput_mips(200.0)));
  }
  table.print(std::cout);
}

void cycle_sim_section() {
  std::printf("\n--- Cycle-level simulation (1M items; SWAMP stalls modeled) ---\n");
  Table table({"design", "cycles/item", "Mips @ 544 MHz"});
  for (const auto& p : {hw::make_she_bm_pipeline(), hw::make_she_bf_pipeline(),
                        hw::make_swamp_pipeline()}) {
    auto res = hw::simulate(p, 1'000'000);
    table.add(p.name(), fmt(res.cycles_per_item), fmt(res.mips(544.0)));
  }
  table.print(std::cout);
}

void switch_section() {
  std::printf("\n--- Programmable-switch profile (Tofino-like: 12 stages, "
              "128-bit accesses) ---\n");
  Table table({"design", "lanes", "fits switch"});
  auto p4 = hw::tofino_like();
  table.add("SHE-BM", 1,
            hw::check_switch(hw::make_she_bm_pipeline(), p4).pipelined() ? "yes" : "NO");
  table.add("SHE-BF", 8,
            hw::check_switch(hw::make_she_bf_pipeline(), p4, 8).pipelined() ? "yes"
                                                                            : "NO");
  table.add("SWAMP", 8,
            hw::check_switch(hw::make_swamp_pipeline(), p4, 8).pipelined() ? "yes"
                                                                           : "NO");
  table.print(std::cout);

  std::printf("\nSHE-BM stage layout (P4 planning artifact):\n%s",
              hw::describe(hw::make_she_bm_pipeline()).c_str());
}

void access_trace_section() {
  std::printf("\n--- Per-item memory-access budget (II = 1 evidence) ---\n");
  Table table({"design", "counter acc/item", "mark acc/item", "cell acc/item",
               "group resets/item"});
  auto trace = caida_like(500'000);

  SheConfig bm;
  bm.window = kWindow;
  bm.cells = 1024;
  bm.group_cells = 64;
  bm.alpha = 0.2;
  auto s1 = hw::trace_insertions(bm, 1, trace);
  table.add("SHE-BM", fmt(1.0), fmt(s1.mark_accesses_per_item()),
            fmt(s1.cell_accesses_per_item()), fmt(s1.resets_per_item()));

  SheConfig bf = bm;
  bf.alpha = 3.0;
  auto s8 = hw::trace_insertions(bf, 8, trace);
  table.add("SHE-BF (8 lanes)", fmt(1.0), fmt(s8.mark_accesses_per_item()),
            fmt(s8.cell_accesses_per_item()), fmt(s8.resets_per_item()));
  table.print(std::cout);
}

void software_section() {
  std::printf("\n--- Measured software insert throughput (CPU reference) ---\n");
  Table table({"design", "Mips (this machine)"});
  auto trace = caida_like(2'000'000);
  {
    SheConfig cfg;
    cfg.window = kWindow;
    cfg.cells = 1024;
    cfg.group_cells = 64;
    cfg.alpha = 0.2;
    SheBitmap bm(cfg);
    MopsTimer t;
    t.start();
    for (auto k : trace) bm.insert(k);
    table.add("SHE-BM", fmt(t.stop(trace.size())));
  }
  {
    SheConfig cfg;
    cfg.window = kWindow;
    cfg.cells = 8192;
    cfg.group_cells = 64;
    cfg.alpha = 3.0;
    SheBloomFilter bf(cfg, 8);
    MopsTimer t;
    t.start();
    for (auto k : trace) bf.insert(k);
    table.add("SHE-BF", fmt(t.stop(trace.size())));
  }
  table.print(std::cout);
}

}  // namespace
}  // namespace she::bench

int main() {
  she::bench::banner("Tables 2 & 3 — hardware implementation (pipeline model)",
                     "Constraint check, calibrated resource model, modeled "
                     "throughput, access-budget trace, software reference.");
  she::bench::constraint_section();
  she::bench::table2_section();
  she::bench::table3_section();
  she::bench::cycle_sim_section();
  she::bench::switch_section();
  she::bench::access_trace_section();
  she::bench::software_section();
  return 0;
}
