// Ablation — multi-core scaling of the sharded wrapper.
//
// The FPGA hits 544 Mips with one pipeline; on CPUs, Sharded<T> partitions
// the key space so shards run on separate cores with no synchronization.
// This harness measures bulk-insert throughput of sharded SHE-BF and
// SHE-BM across thread counts, plus the accuracy cost of window sharding
// (cardinality RE of sharded vs monolithic SHE-BM).
#include <iostream>
#include <thread>

#include "common.hpp"
#include "common/stats.hpp"
#include "she/she.hpp"
#include "she/sharded.hpp"
#include "stream/oracle.hpp"

namespace she::bench {
namespace {

constexpr std::uint64_t kN = kWindow;
constexpr std::uint64_t kItems = 8'000'000;

std::string fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.4g", v);
  return buf;
}

Sharded<SheBloomFilter> make_bf(std::size_t shards) {
  return Sharded<SheBloomFilter>(shards, [&](std::size_t s) {
    SheConfig cfg;
    cfg.window = kN / shards;
    cfg.cells = (1u << 20) / shards;
    cfg.group_cells = 64;
    cfg.alpha = 3.0;
    cfg.seed = static_cast<std::uint32_t>(s);
    return SheBloomFilter(cfg, 8);
  });
}

void throughput_scaling() {
  std::printf("\n--- Bulk-insert throughput vs threads (SHE-BF, %llu items) ---\n",
              static_cast<unsigned long long>(kItems));
  std::printf("(hardware_concurrency on this machine: %u — speedup is capped "
              "by the physical core count)\n",
              std::thread::hardware_concurrency());
  Table table({"threads", "shards", "Mips", "speedup"});
  auto trace = caida_like(kItems);
  double base = 0;
  for (unsigned threads : {1u, 2u, 4u, 8u}) {
    std::size_t shards = threads == 1 ? 1 : threads;
    auto s = make_bf(shards);
    MopsTimer timer;
    timer.start();
    s.insert_bulk(trace, threads);
    double mips = timer.stop(trace.size());
    if (threads == 1) base = mips;
    table.add(threads, shards, fmt(mips), fmt(mips / base));
  }
  table.print(std::cout);
}

void sharding_accuracy_cost() {
  std::printf("\n--- Sharding accuracy cost (SHE-BM cardinality RE) ---\n");
  Table table({"shards", "RE"});
  auto trace = caida_like(4 * kN);
  for (std::size_t shards : {1, 2, 4, 8}) {
    Sharded<SheBitmap> s(shards, [&](std::size_t idx) {
      SheConfig cfg;
      cfg.window = kN / shards;
      cfg.cells = (1u << 16) / shards;
      cfg.group_cells = 64;
      cfg.alpha = 0.2;
      cfg.seed = static_cast<std::uint32_t>(idx);
      return SheBitmap(cfg);
    });
    stream::WindowOracle oracle(kN);
    RunningStats err;
    for (std::size_t i = 0; i < trace.size(); ++i) {
      s.insert(trace[i]);
      oracle.insert(trace[i]);
      if (i > 2 * kN && i % (kN / 2) == 0)
        err.add(relative_error(static_cast<double>(oracle.cardinality()),
                               sharded_cardinality(s)));
    }
    table.add(shards, fmt(err.mean()));
  }
  table.print(std::cout);
}

}  // namespace
}  // namespace she::bench

int main() {
  she::bench::banner("Ablation — sharded multi-core scaling",
                     "Throughput scaling of Sharded<SHE-BF> with threads and "
                     "the accuracy cost of window sharding for SHE-BM.");
  she::bench::throughput_scaling();
  she::bench::sharding_accuracy_cost();
  return 0;
}
