// Concurrent ingest runtime — producers x shards throughput sweep.
//
// Replays a Zipf (CAIDA-like) stream through IngestPipeline<SheBloomFilter>
// for every (producers, shards) combination, with an optional concurrent
// reader hammering snapshot queries, and reports aggregate insert
// throughput.  Each row is also emitted as one JSON object (the
// RuntimeStats report plus the sweep coordinates) so runs are
// machine-comparable across hosts.
//
// The interesting acceptance signal is insert scaling with shard count
// (>=2x from 1 to 4 shards on multi-core hosts); on a single-core host the
// sweep degenerates to context-switch overhead, which is why the physical
// concurrency is part of the banner.
#include <atomic>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common.hpp"
#include "common/stats.hpp"
#include "runtime/ingest_pipeline.hpp"
#include "she/she.hpp"
#include "stream/oracle.hpp"

namespace she::bench {
namespace {

using runtime::IngestPipeline;
using runtime::PipelineOptions;
using runtime::SnapshotReader;

constexpr std::uint64_t kN = kWindow;
constexpr std::uint64_t kItems = 4'000'000;

std::string fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.4g", v);
  return buf;
}

IngestPipeline<SheBloomFilter>::Factory bf_factory(std::size_t shards) {
  return [shards](std::size_t s) {
    SheConfig cfg;
    cfg.window = kN / shards;
    cfg.cells = (1u << 20) / shards;
    cfg.group_cells = 64;
    cfg.alpha = 3.0;
    cfg.seed = static_cast<std::uint32_t>(s);
    return SheBloomFilter(cfg, 8);
  };
}

struct RunResult {
  double mips = 0;
  double queries_per_sec = 0;
  runtime::RuntimeStats stats;
};

RunResult run_once(const stream::Trace& trace, std::size_t producers,
                   std::size_t shards, bool with_reader) {
  PipelineOptions opt;
  opt.shards = shards;
  opt.producers = producers;
  opt.queue_capacity = 4096;
  opt.publish_interval = 4096;
  IngestPipeline<SheBloomFilter> pipe(opt, bf_factory(shards));
  pipe.start();

  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> queries{0};
  std::thread reader;
  if (with_reader) {
    reader = std::thread([&] {
      std::vector<SnapshotReader<SheBloomFilter>> views;
      views.reserve(shards);
      for (std::size_t s = 0; s < shards; ++s)
        views.emplace_back(pipe.snapshot_slot(s));
      std::uint64_t q = 0;
      while (!done.load(std::memory_order_acquire)) {
        for (std::size_t s = 0; s < shards; ++s) {
          const SheBloomFilter& snap = views[s].get();
          (void)snap.contains(0xFEEDu + q);
          ++q;
        }
      }
      queries.store(q, std::memory_order_relaxed);
    });
  }

  MopsTimer timer;
  timer.start();
  std::vector<std::thread> pool;
  pool.reserve(producers);
  for (std::size_t p = 0; p < producers; ++p) {
    pool.emplace_back([&, p] {
      const std::size_t lo = trace.size() * p / producers;
      const std::size_t hi = trace.size() * (p + 1) / producers;
      for (std::size_t i = lo; i < hi; ++i) pipe.push(p, trace[i]);
    });
  }
  for (auto& t : pool) t.join();
  pipe.close();
  RunResult r;
  r.mips = timer.stop(trace.size());
  r.stats = pipe.stats();
  if (with_reader) {
    done.store(true, std::memory_order_release);
    reader.join();
    r.queries_per_sec = static_cast<double>(queries.load()) /
                        r.stats.elapsed_seconds;
  }
  return r;
}

void sweep(std::vector<std::string>& json_rows) {
  auto trace = caida_like(kItems);
  std::printf("\n--- Ingest throughput: producers x shards (SHE-BF, %llu "
              "items, Zipf) ---\n",
              static_cast<unsigned long long>(kItems));
  std::printf("(hardware_concurrency on this machine: %u — scaling is capped "
              "by the physical core count)\n",
              std::thread::hardware_concurrency());
  Table table({"producers", "shards", "Mips", "speedup-vs-1shard", "q/s",
               "hwm"});
  for (std::size_t producers : {1u, 2u, 4u}) {
    double base = 0;
    for (std::size_t shards : {1u, 2u, 4u, 8u}) {
      RunResult r = run_once(trace, producers, shards, /*with_reader=*/true);
      if (shards == 1) base = r.mips;
      table.add(producers, shards, fmt(r.mips), fmt(r.mips / base),
                fmt(r.queries_per_sec), r.stats.queue_hwm);
      std::ostringstream row;
      row << "{\"producers\":" << producers << ",\"shards\":" << shards
          << ",\"mips\":" << r.mips
          << ",\"queries_per_sec\":" << r.queries_per_sec
          << ",\"stats\":" << r.stats.to_json() << "}";
      json_rows.push_back(row.str());
      std::printf("JSON %s\n", row.str().c_str());
    }
  }
  table.print(std::cout);
}

void accuracy_under_load(std::vector<std::string>& json_rows) {
  // Concurrent queries must stay within the single-threaded sharded error
  // envelope: compare final snapshot cardinality (SHE-BM) to the exact
  // oracle, as test_sharded.cpp does offline.
  std::printf("\n--- Queries-under-load accuracy (SHE-BM cardinality RE) ---\n");
  auto trace = caida_like(4 * kN);
  Table table({"shards", "RE"});
  for (std::size_t shards : {1u, 2u, 4u}) {
    PipelineOptions opt;
    opt.shards = shards;
    opt.producers = 1;
    IngestPipeline<SheBitmap> pipe(opt, [shards](std::size_t s) {
      SheConfig cfg;
      cfg.window = kN / shards;
      cfg.cells = (1u << 16) / shards;
      cfg.group_cells = 64;
      cfg.alpha = 0.2;
      cfg.seed = static_cast<std::uint32_t>(s);
      return SheBitmap(cfg);
    });
    pipe.start();
    stream::WindowOracle oracle(kN);
    RunningStats err;
    std::size_t fed = 0;
    for (std::size_t i = 0; i < trace.size(); ++i) {
      pipe.push(0, trace[i]);
      oracle.insert(trace[i]);
      if (i > 2 * kN && i % (kN / 2) == 0) {
        // Let the worker catch up, then query the live snapshots.
        while (pipe.stats().inserted < i - opt.queue_capacity)
          std::this_thread::yield();
        double est = 0;
        for (std::size_t s = 0; s < shards; ++s)
          est += pipe.snapshot(s).cardinality();
        err.add(relative_error(static_cast<double>(oracle.cardinality()), est));
        ++fed;
      }
    }
    pipe.close();
    (void)fed;
    table.add(shards, fmt(err.mean()));
    std::ostringstream row;
    row << "{\"shards\":" << shards << ",\"mean_re\":" << err.mean()
        << ",\"samples\":" << fed << "}";
    json_rows.push_back(row.str());
  }
  table.print(std::cout);
}

/// Write every sweep and accuracy row into one machine-readable document so
/// CI can diff runs across hosts without scraping stdout.
void write_report(const std::string& path,
                  const std::vector<std::string>& sweep_rows,
                  const std::vector<std::string>& accuracy_rows) {
  std::ofstream os(path);
  if (!os) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return;
  }
  auto emit = [&os](const std::vector<std::string>& rows) {
    for (std::size_t i = 0; i < rows.size(); ++i)
      os << (i ? ",\n    " : "") << rows[i];
  };
  os << "{\n  \"schema_version\": 1,\n  \"bench\": \"pipeline_throughput\",\n"
     << "  \"items\": " << kItems << ",\n  \"window\": " << kN << ",\n"
     << "  \"hardware_concurrency\": " << std::thread::hardware_concurrency()
     << ",\n  \"sweep\": [\n    ";
  emit(sweep_rows);
  os << "\n  ],\n  \"accuracy_under_load\": [\n    ";
  emit(accuracy_rows);
  os << "\n  ]\n}\n";
  std::printf("\nwrote %s\n", path.c_str());
}

}  // namespace
}  // namespace she::bench

int main(int argc, char** argv) {
  she::bench::banner("Pipeline throughput — concurrent ingest runtime",
                     "Lock-free shard pipelines: aggregate insert throughput "
                     "across producers x shards with concurrent snapshot "
                     "queries, plus queries-under-load accuracy.");
  std::vector<std::string> sweep_rows;
  std::vector<std::string> accuracy_rows;
  she::bench::sweep(sweep_rows);
  she::bench::accuracy_under_load(accuracy_rows);
  she::bench::write_report(argc > 1 ? argv[1] : "BENCH_pipeline.json",
                           sweep_rows, accuracy_rows);
  return 0;
}
