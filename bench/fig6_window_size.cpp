// Fig. 6 — adaptation to the window size: error vs. window size at three
// fixed memory sizes per task.  The claim to reproduce: SHE's error stays
// roughly flat as the window grows (given the memory suits the task scale),
// i.e. the framework has no hidden per-item state.
#include <iostream>

#include "common.hpp"
#include "common/stats.hpp"
#include "she/she.hpp"
#include "stream/oracle.hpp"

namespace she::bench {
namespace {

std::string fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.4g", v);
  return buf;
}

stream::Trace window_trace(std::uint64_t window) {
  // Keep the stream's distinct-rate similar across windows: universe scales
  // with the window (a fixed-universe stream would saturate small windows).
  stream::ZipfTraceConfig tc;
  tc.length = 5 * window;
  tc.universe = std::max<std::uint64_t>(4 * window, 4096);
  tc.skew = 1.0;
  tc.seed = kSeed;
  return stream::zipf_trace(tc);
}

void fig6a_bitmap() {
  std::printf("\n--- Fig. 6a  Cardinality (Bitmap): RE vs window size ---\n");
  Table table({"window", "0.5 KB", "1 KB", "2 KB"});
  for (std::uint64_t w : {1u << 10, 1u << 12, 1u << 14, 1u << 16}) {
    auto trace = window_trace(w);
    std::vector<std::string> row = {std::to_string(w)};
    for (std::size_t bytes : {512, 1024, 2048}) {
      SheConfig cfg;
      cfg.window = w;
      cfg.cells = bytes * 8;
      cfg.group_cells = 64;
      cfg.alpha = 0.2;
      SheBitmap bm(cfg);
      stream::WindowOracle oracle(w);
      RunningStats err;
      for (std::size_t i = 0; i < trace.size(); ++i) {
        bm.insert(trace[i]);
        oracle.insert(trace[i]);
        if (i > 2 * w && i % (w / 2) == 0)
          err.add(relative_error(static_cast<double>(oracle.cardinality()),
                                 bm.cardinality()));
      }
      row.push_back(fmt(err.mean()));
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);
}

void fig6b_hll() {
  std::printf("\n--- Fig. 6b  Cardinality (HLL): RE vs window size ---\n");
  Table table({"window", "128 B", "512 B", "2 KB"});
  for (std::uint64_t w : {1u << 12, 1u << 14, 1u << 16, 1u << 18}) {
    auto trace = window_trace(w);
    std::vector<std::string> row = {std::to_string(w)};
    for (std::size_t bytes : {128, 512, 2048}) {
      SheConfig cfg;
      cfg.window = w;
      cfg.cells = bytes * 8 / 6;
      cfg.group_cells = 1;
      cfg.alpha = 0.2;
      SheHyperLogLog hll(cfg);
      stream::WindowOracle oracle(w);
      RunningStats err;
      for (std::size_t i = 0; i < trace.size(); ++i) {
        hll.insert(trace[i]);
        oracle.insert(trace[i]);
        if (i > 2 * w && i % (w / 2) == 0)
          err.add(relative_error(static_cast<double>(oracle.cardinality()),
                                 hll.cardinality()));
      }
      row.push_back(fmt(err.mean()));
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);
}

void fig6c_cm() {
  std::printf("\n--- Fig. 6c  Frequency: ARE vs window size ---\n");
  Table table({"window", "1 MB", "2 MB", "4 MB"});
  for (std::uint64_t w : {1u << 10, 1u << 12, 1u << 14, 1u << 16}) {
    auto trace = window_trace(w);
    std::vector<std::string> row = {std::to_string(w)};
    for (std::size_t mb : {1, 2, 4}) {
      SheConfig cfg;
      cfg.window = w;
      cfg.cells = mb * (1u << 20) / 4;
      cfg.group_cells = 64;
      cfg.alpha = 1.0;
      SheCountMin cm(cfg, 8);
      stream::WindowOracle oracle(w);
      RunningStats are;
      for (std::size_t i = 0; i < trace.size(); ++i) {
        cm.insert(trace[i]);
        oracle.insert(trace[i]);
        if (i > 2 * w && i % w == w / 2) {
          std::size_t sampled = 0;
          for (const auto& [key, f] : oracle.counts()) {
            if (++sampled % 17 != 0) continue;
            are.add(relative_error(static_cast<double>(f),
                                   static_cast<double>(cm.frequency(key))));
          }
        }
      }
      row.push_back(fmt(are.mean()));
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);
}

void fig6d_bf() {
  std::printf("\n--- Fig. 6d  Membership: FPR vs window size ---\n");
  Table table({"window", "2 KB", "8 KB", "32 KB"});
  auto probes = absent_probes(50000);
  for (std::uint64_t w : {1u << 8, 1u << 10, 1u << 12, 1u << 14, 1u << 16}) {
    auto trace = window_trace(w);
    std::vector<std::string> row = {std::to_string(w)};
    for (std::size_t kb : {2, 8, 32}) {
      std::size_t bits = kb * 1024 * 8;
      SheConfig cfg;
      cfg.window = w;
      cfg.cells = bits;
      cfg.group_cells = 64;
      cfg.alpha = optimal_alpha_bf(bits, 64, 0.4 * static_cast<double>(w), 8);
      SheBloomFilter bf(cfg, 8);
      for (auto k : trace) bf.insert(k);
      std::size_t fp = 0;
      for (auto p : probes)
        if (bf.contains(p)) ++fp;
      row.push_back(fmt(static_cast<double>(fp) / static_cast<double>(probes.size())));
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);
}

void fig6e_mh() {
  std::printf("\n--- Fig. 6e  Similarity: RE vs window size ---\n");
  Table table({"window", "1 KB", "2 KB", "4 KB"});
  for (std::uint64_t w : {1u << 12, 1u << 13, 1u << 14, 1u << 15}) {
    auto pair = stream::relevant_pair(5 * w, 4 * w, 0.6, 0.8, kSeed);
    std::vector<std::string> row = {std::to_string(w)};
    for (std::size_t kb : {1, 2, 4}) {
      SheConfig cfg;
      cfg.window = w;
      cfg.cells = kb * 1024 * 8 / 25;
      cfg.group_cells = 1;
      cfg.alpha = 0.2;
      SheMinHash a(cfg), b(cfg);
      stream::JaccardOracle oracle(w);
      RunningStats err;
      for (std::size_t i = 0; i < pair.a.size(); ++i) {
        a.insert(pair.a[i]);
        b.insert(pair.b[i]);
        oracle.insert(pair.a[i], pair.b[i]);
        if (i > 2 * w && i % (w / 2) == 0)
          err.add(relative_error(oracle.jaccard(), SheMinHash::jaccard(a, b)));
      }
      row.push_back(fmt(err.mean()));
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);
}

}  // namespace
}  // namespace she::bench

int main() {
  she::bench::banner("Fig. 6 — adaptation to the window size",
                     "Error vs window size at three memory sizes per task; "
                     "flat series = scale-free behaviour.");
  she::bench::fig6a_bitmap();
  she::bench::fig6b_hll();
  she::bench::fig6c_cm();
  she::bench::fig6d_bf();
  she::bench::fig6e_mh();
  return 0;
}
