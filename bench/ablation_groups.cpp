// Ablation — group size w.
//
// DESIGN.md calls out the trade-off behind the paper's w = 64 default:
// larger groups make on-demand cleaning more reliable (more insertions per
// group per cycle, Eq. 1) and cut the mark overhead, but coarsen the age
// granularity so more cells sit in the ignored/young band and cleaning is
// blunter.  We sweep w for SHE-BF (FPR) and SHE-BM (RE) at fixed total
// memory, also reporting the reset traffic per item.
#include <iostream>

#include "common.hpp"
#include "common/stats.hpp"
#include "hw/access_trace.hpp"
#include "she/she.hpp"
#include "stream/oracle.hpp"

namespace she::bench {
namespace {

constexpr std::uint64_t kN = 1u << 14;

std::string fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.4g", v);
  return buf;
}

void bf_sweep() {
  std::printf("\n--- SHE-BF: FPR vs group size w (memory fixed) ---\n");
  Table table({"w", "groups", "FPR", "resets/item", "marks memory"});
  constexpr std::size_t kBits = 1u << 17;
  auto trace = stream::distinct_trace(8 * kN, kSeed);
  auto probes = absent_probes(50000);

  for (std::size_t w : {8, 16, 32, 64, 128, 256, 512}) {
    SheConfig cfg;
    cfg.window = kN;
    cfg.cells = kBits;
    cfg.group_cells = w;
    cfg.alpha = 3.0;
    SheBloomFilter bf(cfg, 8);
    for (auto k : trace) bf.insert(k);
    std::size_t fp = 0;
    for (auto p : probes)
      if (bf.contains(p)) ++fp;
    auto stats = hw::trace_insertions(cfg, 8, trace);
    table.add(w, cfg.groups(),
              fmt(static_cast<double>(fp) / static_cast<double>(probes.size())),
              fmt(stats.resets_per_item()), memory_label((cfg.groups() + 7) / 8));
  }
  table.print(std::cout);
}

void bm_sweep() {
  std::printf("\n--- SHE-BM: RE vs group size w (memory fixed) ---\n");
  Table table({"w", "groups", "RE"});
  constexpr std::size_t kBits = 1u << 15;
  auto trace = caida_like(6 * kN);

  for (std::size_t w : {8, 16, 32, 64, 128, 256, 512}) {
    SheConfig cfg;
    cfg.window = kN;
    cfg.cells = kBits;
    cfg.group_cells = w;
    cfg.alpha = 0.2;
    SheBitmap bm(cfg);
    stream::WindowOracle oracle(kN);
    RunningStats err;
    for (std::size_t i = 0; i < trace.size(); ++i) {
      bm.insert(trace[i]);
      oracle.insert(trace[i]);
      if (i > 2 * kN && i % (kN / 2) == 0)
        err.add(relative_error(static_cast<double>(oracle.cardinality()),
                               bm.cardinality()));
    }
    table.add(w, cfg.groups(), fmt(err.mean()));
  }
  table.print(std::cout);
}

}  // namespace
}  // namespace she::bench

int main() {
  she::bench::banner("Ablation — group size w",
                     "Accuracy and reset traffic across group sizes at a "
                     "fixed memory budget (paper default: w = 64).");
  she::bench::bf_sweep();
  she::bench::bm_sweep();
  return 0;
}
