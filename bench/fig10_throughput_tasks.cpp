// Fig. 10 — insert throughput (million items per second) on three datasets:
//   10a  SHE-HLL vs SHLL vs Ideal (fixed-window HLL)
//   10b  SHE-BM  vs CVS  vs Ideal (fixed-window Bitmap)
// Claim: SHE's lazy group cleaning costs little over the fixed-window
// original, while the exact-expiry baselines pay for their bookkeeping.
#include <iostream>

#include "baselines/cvs.hpp"
#include "baselines/shll.hpp"
#include "common.hpp"
#include "she/she.hpp"

namespace she::bench {
namespace {

constexpr std::uint64_t kItems = 2'000'000;
constexpr std::uint64_t kN = kWindow;

std::string fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", v);
  return buf;
}

template <typename F>
double mips(const stream::Trace& trace, F&& insert) {
  MopsTimer timer;
  timer.start();
  for (auto k : trace) insert(k);
  return timer.stop(trace.size());
}

void fig10a() {
  std::printf("\n--- Fig. 10a  Throughput (Mips): HLL task ---\n");
  Table table({"dataset", "Ideal", "SHE-HLL", "SHLL"});
  for (const char* name : {"caida", "campus", "webpage"}) {
    auto trace = stream::named_dataset(name, kItems, kSeed);

    fixed::HyperLogLog ideal(2048);
    SheConfig cfg;
    cfg.window = kN;
    cfg.cells = 2048;
    cfg.group_cells = 1;
    cfg.alpha = 0.2;
    SheHyperLogLog shehll(cfg);
    baselines::SlidingHyperLogLog shll(2048, kN);

    table.add(name, fmt(mips(trace, [&](std::uint64_t k) { ideal.insert(k); })),
              fmt(mips(trace, [&](std::uint64_t k) { shehll.insert(k); })),
              fmt(mips(trace, [&](std::uint64_t k) { shll.insert(k); })));
  }
  table.print(std::cout);
}

void fig10b() {
  std::printf("\n--- Fig. 10b  Throughput (Mips): Bitmap task ---\n");
  Table table({"dataset", "Ideal", "SHE-BM", "CVS"});
  for (const char* name : {"caida", "campus", "webpage"}) {
    auto trace = stream::named_dataset(name, kItems, kSeed);

    fixed::Bitmap ideal(1u << 16);
    SheConfig cfg;
    cfg.window = kN;
    cfg.cells = 1u << 16;
    cfg.group_cells = 64;
    cfg.alpha = 0.2;
    SheBitmap shebm(cfg);
    baselines::CounterVectorSketch cvs(1u << 16, kN, 10, kSeed);

    table.add(name, fmt(mips(trace, [&](std::uint64_t k) { ideal.insert(k); })),
              fmt(mips(trace, [&](std::uint64_t k) { shebm.insert(k); })),
              fmt(mips(trace, [&](std::uint64_t k) { cvs.insert(k); })));
  }
  table.print(std::cout);
}

}  // namespace
}  // namespace she::bench

int main() {
  she::bench::banner("Fig. 10 — processing speed on three datasets",
                     "Insert throughput (million items/s) for SHE vs the "
                     "exact-expiry baselines vs the fixed-window Ideal.");
  she::bench::fig10a();
  she::bench::fig10b();
  return 0;
}
