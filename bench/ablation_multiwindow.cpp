// Ablation — multi-window queries: one SHE structure answering every
// sub-window of N.
//
// Sliding-HLL advertises arbitrary-window queries via its timestamp queues;
// SHE gets the same capability for free from cell ages (cells of age a
// record an a-item window).  This harness quantifies the accuracy of
// sub-window queries for SHE-BM/SHE-HLL cardinality, SHE-BF membership and
// SHE-CM frequency, against exact per-window oracles, plus the SHLL
// comparison point.
#include <iostream>

#include "baselines/shll.hpp"
#include "common.hpp"
#include "common/stats.hpp"
#include "she/she.hpp"
#include "stream/oracle.hpp"

namespace she::bench {
namespace {

constexpr std::uint64_t kN = 1u << 15;

std::string fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.4g", v);
  return buf;
}

void cardinality_sweep() {
  std::printf("\n--- Sub-window cardinality RE (structure sized for N = 2^15) ---\n");
  Table table({"query window", "SHE-BM", "SHE-HLL", "SHLL"});
  auto trace = caida_like(6 * kN);

  SheConfig bm_cfg;
  bm_cfg.window = kN;
  bm_cfg.cells = 1u << 16;
  bm_cfg.group_cells = 16;
  bm_cfg.alpha = 0.3;
  SheBitmap bm(bm_cfg);

  SheConfig hll_cfg;
  hll_cfg.window = kN;
  hll_cfg.cells = 1u << 13;
  hll_cfg.group_cells = 1;
  hll_cfg.alpha = 0.3;
  SheHyperLogLog hll(hll_cfg);

  baselines::SlidingHyperLogLog shll(1u << 13, kN);

  std::vector<std::uint64_t> windows = {kN / 8, kN / 4, kN / 2, kN};
  std::vector<stream::WindowOracle> oracles;
  for (auto w : windows) oracles.emplace_back(w);
  std::vector<RunningStats> e_bm(windows.size()), e_hll(windows.size()),
      e_shll(windows.size());

  for (std::size_t i = 0; i < trace.size(); ++i) {
    bm.insert(trace[i]);
    hll.insert(trace[i]);
    shll.insert(trace[i]);
    for (auto& o : oracles) o.insert(trace[i]);
    if (i > 3 * kN && i % (kN / 2) == 0) {
      for (std::size_t wi = 0; wi < windows.size(); ++wi) {
        double truth = static_cast<double>(oracles[wi].cardinality());
        e_bm[wi].add(relative_error(truth, bm.cardinality(windows[wi])));
        e_hll[wi].add(relative_error(truth, hll.cardinality(windows[wi])));
        e_shll[wi].add(relative_error(truth, shll.cardinality(windows[wi])));
      }
    }
  }
  for (std::size_t wi = 0; wi < windows.size(); ++wi)
    table.add(windows[wi], fmt(e_bm[wi].mean()), fmt(e_hll[wi].mean()),
              fmt(e_shll[wi].mean()));
  table.print(std::cout);
}

void membership_sweep() {
  std::printf("\n--- Sub-window membership (SHE-BF sized for N = 2^15) ---\n");
  Table table({"query window", "FPR (absent keys)", "in-window found rate"});
  auto trace = stream::distinct_trace(6 * kN, kSeed);
  auto probes = absent_probes(30000);

  SheConfig cfg;
  cfg.window = kN;
  cfg.cells = 1u << 19;
  cfg.group_cells = 16;
  cfg.alpha = 2.0;
  SheBloomFilter bf(cfg, 8);
  for (auto k : trace) bf.insert(k);

  for (std::uint64_t w : {kN / 8, kN / 4, kN / 2, kN}) {
    std::size_t fp = 0;
    for (auto p : probes)
      if (bf.contains(p, w)) ++fp;
    std::size_t found = 0;
    constexpr std::size_t kChecks = 2000;
    for (std::size_t c = 0; c < kChecks; ++c) {
      // Keys at depth w/2: inside the queried sub-window.
      std::size_t depth = w / 2 + c % (w / 4);
      if (bf.contains(trace[trace.size() - 1 - depth], w)) ++found;
    }
    table.add(w, fmt(static_cast<double>(fp) / static_cast<double>(probes.size())),
              fmt(static_cast<double>(found) / kChecks));
  }
  table.print(std::cout);
}

void frequency_sweep() {
  std::printf("\n--- Sub-window frequency ARE (SHE-CM sized for N = 2^15) ---\n");
  Table table({"query window", "ARE"});
  auto trace = caida_like(6 * kN);

  SheConfig cfg;
  cfg.window = kN;
  cfg.cells = 1u << 18;
  cfg.group_cells = 16;
  cfg.alpha = 1.0;
  SheCountMin cm(cfg, 8);

  std::vector<std::uint64_t> windows = {kN / 4, kN / 2, kN};
  std::vector<stream::WindowOracle> oracles;
  for (auto w : windows) oracles.emplace_back(w);
  std::vector<RunningStats> errs(windows.size());

  for (std::size_t i = 0; i < trace.size(); ++i) {
    cm.insert(trace[i]);
    for (auto& o : oracles) o.insert(trace[i]);
    if (i > 3 * kN && i % kN == kN / 2) {
      for (std::size_t wi = 0; wi < windows.size(); ++wi) {
        std::size_t sampled = 0;
        for (const auto& [key, f] : oracles[wi].counts()) {
          if (++sampled % 31 != 0 || f < 4) continue;
          errs[wi].add(relative_error(
              static_cast<double>(f),
              static_cast<double>(cm.frequency(key, windows[wi]))));
        }
      }
    }
  }
  for (std::size_t wi = 0; wi < windows.size(); ++wi)
    table.add(windows[wi], fmt(errs[wi].mean()));
  table.print(std::cout);
}

}  // namespace
}  // namespace she::bench

int main() {
  she::bench::banner("Ablation — multi-window queries",
                     "Accuracy of sub-window queries answered from one SHE "
                     "structure sized for N, vs exact per-window oracles.");
  she::bench::cardinality_sweep();
  she::bench::membership_sweep();
  she::bench::frequency_sweep();
  return 0;
}
