// Ablation — the Sec. 5.3 error bounds, measured.
//
//   Eq. (3): SHE-BM bias |E[C_hat] - C| / C <= alpha*T/(4C).  On the
//            Distinct Stream C = N, so the bound is alpha/4.
//   Eq. (4): same shape for SHE-HLL.
//   Eq. (5): SHE-MH bias bounded by eps/4 + eps^2/6 with eps = 2*alpha*T/S_u.
//
// We sweep alpha and print measured mean signed bias against each bound.
// (The bounds assume the legal age range is centred on N; with the default
// beta = 0.9 the residual centring offset (beta-1)/2 is also printed.)
#include <cmath>
#include <iostream>

#include "common.hpp"
#include "common/stats.hpp"
#include "she/she.hpp"
#include "stream/oracle.hpp"

namespace she::bench {
namespace {

constexpr std::uint64_t kN = 1u << 14;

std::string fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%+.4f", v);
  return buf;
}

void bitmap_bound() {
  std::printf("\n--- Eq. (3): SHE-BM signed bias vs alpha (Distinct Stream) ---\n");
  // "age model" = (beta+1+alpha)/2 - 1: the mean legal group age minus N,
  // which on a distinct stream (C = N) equals the predicted relative bias.
  // Eq. (3)'s alpha/4 bound assumes a legal range centred on N; the model
  // column shows the actual off-centre prediction at beta = 0.9.
  Table table({"alpha", "measured bias", "age model", "Eq.(3) bound alpha/4"});
  auto trace = stream::distinct_trace(8 * kN, kSeed);
  for (double alpha : {0.1, 0.2, 0.4, 0.8}) {
    SheConfig cfg;
    cfg.window = kN;
    cfg.cells = 1u << 17;  // roomy: isolate the aging bias from collisions
    cfg.group_cells = 64;
    cfg.alpha = alpha;
    SheBitmap bm(cfg);
    stream::WindowOracle oracle(kN);
    RunningStats bias;
    for (std::size_t i = 0; i < trace.size(); ++i) {
      bm.insert(trace[i]);
      oracle.insert(trace[i]);
      if (i > 3 * kN && i % 499 == 0) {
        double truth = static_cast<double>(oracle.cardinality());
        bias.add((bm.cardinality() - truth) / truth);
      }
    }
    table.add(fmt(alpha), fmt(bias.mean()),
              fmt((cfg.beta + 1.0 + alpha) / 2.0 - 1.0), fmt(alpha / 4.0));
  }
  table.print(std::cout);
}

void hll_bound() {
  std::printf("\n--- Eq. (4): SHE-HLL signed bias vs alpha (Distinct Stream) ---\n");
  Table table({"alpha", "measured bias", "age model", "Eq.(4) bound ~alpha/4"});
  auto trace = stream::distinct_trace(8 * kN, kSeed);
  for (double alpha : {0.1, 0.2, 0.4, 0.8}) {
    SheConfig cfg;
    cfg.window = kN;
    cfg.cells = 1u << 13;
    cfg.group_cells = 1;
    cfg.alpha = alpha;
    SheHyperLogLog hll(cfg);
    stream::WindowOracle oracle(kN);
    RunningStats bias;
    for (std::size_t i = 0; i < trace.size(); ++i) {
      hll.insert(trace[i]);
      oracle.insert(trace[i]);
      if (i > 3 * kN && i % 499 == 0) {
        double truth = static_cast<double>(oracle.cardinality());
        bias.add((hll.cardinality() - truth) / truth);
      }
    }
    table.add(fmt(alpha), fmt(bias.mean()),
              fmt((cfg.beta + 1.0 + alpha) / 2.0 - 1.0), fmt(alpha / 4.0));
  }
  table.print(std::cout);
}

void minhash_bound() {
  std::printf("\n--- Eq. (5): SHE-MH signed bias vs alpha ---\n");
  Table table({"alpha", "measured bias", "bound eps/4+eps^2/6"});
  constexpr std::uint64_t kMhN = 1u << 13;
  auto pair = stream::relevant_pair(8 * kMhN, 4 * kMhN, 0.6, 0.8, kSeed);
  for (double alpha : {0.1, 0.2, 0.4, 0.8}) {
    SheConfig cfg;
    cfg.window = kMhN;
    cfg.cells = 1024;
    cfg.group_cells = 1;
    cfg.alpha = alpha;
    SheMinHash a(cfg), b(cfg);
    stream::JaccardOracle oracle(kMhN);
    RunningStats bias;
    double union_size = 0;
    std::size_t samples = 0;
    for (std::size_t i = 0; i < pair.a.size(); ++i) {
      a.insert(pair.a[i]);
      b.insert(pair.b[i]);
      oracle.insert(pair.a[i], pair.b[i]);
      if (i > 3 * kMhN && i % (kMhN / 2) == 0) {
        bias.add(SheMinHash::jaccard(a, b) - oracle.jaccard());
        std::size_t inter = 0;
        for (const auto& [key, cnt] : oracle.a().counts()) {
          (void)cnt;
          if (oracle.b().counts().count(key)) ++inter;
        }
        union_size += static_cast<double>(oracle.a().counts().size() +
                                          oracle.b().counts().size() - inter);
        ++samples;
      }
    }
    double eps = 2.0 * alpha * static_cast<double>(kMhN) /
                 (union_size / static_cast<double>(samples));
    table.add(fmt(alpha), fmt(bias.mean()), fmt(eps / 4.0 + eps * eps / 6.0));
  }
  table.print(std::cout);
}

}  // namespace
}  // namespace she::bench

int main() {
  she::bench::banner("Ablation — Sec. 5.3 error bounds, measured",
                     "Signed bias of SHE-BM / SHE-HLL / SHE-MH against the "
                     "paper's analytical bounds, sweeping alpha.");
  she::bench::bitmap_bound();
  she::bench::hll_bound();
  she::bench::minhash_bound();
  return 0;
}
