// Fig. 8 — SHE-BF parameter studies on the Distinct Stream (the worst case
// for a sliding Bloom filter: no repeated insertions refresh groups).
//
//   8a  FPR vs item age: probing items inserted a given number of windows
//       ago.  In-window items always answer true (no false negatives);
//       out-dated items decay toward the steady-state FPR, flattening once
//       the age exceeds the relaxed window (1+alpha)N.
//   8b  FPR vs number of hash functions, with alpha fixed at 3 vs alpha
//       from Eq. 2 per k.
#include <iostream>

#include "common.hpp"
#include "common/stats.hpp"
#include "she/she.hpp"

namespace she::bench {
namespace {

constexpr std::uint64_t kN = 1u << 14;  // scaled from 2^16: 8a needs many trials

std::string fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.4g", v);
  return buf;
}

void fig8a() {
  std::printf("\n--- Fig. 8a  SHE-BF: FPR vs item age (Distinct Stream) ---\n");
  Table table({"age (windows)", "positive rate", "note"});
  constexpr std::size_t kBits = 1u << 18;
  constexpr double kAlpha = 3.0;

  SheConfig cfg;
  cfg.window = kN;
  cfg.cells = kBits;
  cfg.group_cells = 64;
  cfg.alpha = kAlpha;
  SheBloomFilter bf(cfg, 8);

  // One long distinct stream; after warm-up, repeatedly query items whose
  // age is a fixed number of half-windows.
  auto trace = stream::distinct_trace(12 * kN, kSeed);
  std::vector<RunningStats> by_age(11);  // age = 0.5 .. 5.5 windows
  for (std::size_t i = 0; i < trace.size(); ++i) {
    bf.insert(trace[i]);
    if (i < 6 * kN || i % 37 != 0) continue;
    for (std::size_t half = 1; half <= 10; ++half) {
      std::uint64_t age = half * kN / 2;
      by_age[half].add(bf.contains(trace[i - age]) ? 1.0 : 0.0);
    }
  }
  for (std::size_t half = 1; half <= 10; ++half) {
    double age_windows = static_cast<double>(half) / 2.0;
    const char* note = age_windows <= 1.0
                           ? "in window: must be 1 (no FN)"
                           : (age_windows <= 1.0 + kAlpha ? "decaying" : "steady FPR");
    table.add(fmt(age_windows), fmt(by_age[half].mean()), note);
  }
  table.print(std::cout);
}

void fig8b() {
  std::printf("\n--- Fig. 8b  SHE-BF: FPR vs #hash functions ---\n");
  Table table({"k", "alpha=3", "alpha=opt(Eq.2)", "opt value"});
  constexpr std::size_t kBits = 1u << 19;
  auto trace = stream::distinct_trace(5 * kN, kSeed);
  auto probes = absent_probes(50000);

  auto fpr_at = [&](unsigned k, double alpha) {
    SheConfig cfg;
    cfg.window = kN;
    cfg.cells = kBits;
    cfg.group_cells = 64;
    cfg.alpha = alpha;
    SheBloomFilter bf(cfg, k);
    for (auto key : trace) bf.insert(key);
    std::size_t fp = 0;
    for (auto p : probes)
      if (bf.contains(p)) ++fp;
    return static_cast<double>(fp) / static_cast<double>(probes.size());
  };

  for (unsigned k : {1, 2, 4, 8, 12, 16, 24, 30}) {
    double opt = optimal_alpha_bf(kBits, 64, static_cast<double>(kN), k);
    table.add(k, fmt(fpr_at(k, 3.0)), fmt(fpr_at(k, opt)), fmt(opt));
  }
  table.print(std::cout);
}

}  // namespace
}  // namespace she::bench

int main() {
  she::bench::banner("Fig. 8 — SHE-BF parameters on the Distinct Stream",
                     "8a: positive rate vs item age; 8b: FPR vs hash count "
                     "with fixed vs Eq. 2-optimal alpha.");
  she::bench::fig8a();
  she::bench::fig8b();
  return 0;
}
