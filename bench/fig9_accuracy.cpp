// Fig. 9 — accuracy comparison for the five tasks, error vs. memory.
//
//   9a cardinality (Bitmap):   SHE-BM  vs SWAMP, TSV, CVS, Ideal
//   9b cardinality (HLL):      SHE-HLL vs SHLL, Ideal
//   9c frequency:              SHE-CM  vs SWAMP, ECM, Ideal
//   9d membership:             SHE-BF  vs SWAMP, TOBF, TBF, Ideal
//   9e similarity:             SHE-MH  vs straw-man, Ideal
//
// "Ideal" is the fixed-window base sketch rebuilt from the exact window
// contents at each query — the best the base algorithm could possibly do.
// Entries print "inf" where a baseline cannot run at the budget (SWAMP
// below ~1.2 KB for a 2^16 window).
#include <cmath>
#include <iostream>
#include <optional>

#include "baselines/cvs.hpp"
#include "baselines/ecm.hpp"
#include "baselines/shll.hpp"
#include "baselines/strawman_minhash.hpp"
#include "baselines/swamp.hpp"
#include "baselines/tbf.hpp"
#include "baselines/tobf.hpp"
#include "baselines/tsv.hpp"
#include "common.hpp"
#include "common/int_math.hpp"
#include "common/stats.hpp"
#include "she/she.hpp"
#include "stream/oracle.hpp"

namespace she::bench {
namespace {

constexpr std::uint64_t kN = kWindow;         // 2^16, the paper default
constexpr std::uint64_t kStreamLen = 4 * kN;  // 2 windows warm-up + 2 measured
constexpr std::uint64_t kWarmup = 2 * kN;

std::string fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.4g", v);
  return buf;
}

// --------------------------- 9a: cardinality (Bitmap) ----------------------

void fig9a() {
  std::printf("\n--- Fig. 9a  Cardinality (Bitmap family): RE vs memory ---\n");
  std::printf("(group size follows Eq. (1): w grows with memory so that the\n"
              " expected on-demand cleaning failures stay below 0.5/cycle)\n");
  Table table({"memory", "w", "SHE-BM", "SWAMP", "TSV", "CVS", "Ideal"});
  auto trace = caida_like(kStreamLen);
  // Window cardinality of the CAIDA-like stream, for the Eq. (1) sizing.
  double card;
  {
    stream::WindowOracle probe_oracle(kN);
    for (std::size_t i = 0; i < 2 * kN; ++i) probe_oracle.insert(trace[i]);
    card = static_cast<double>(probe_oracle.cardinality());
  }

  for (std::size_t kb : {1, 2, 4, 6, 8, 10, 100, 300}) {
    std::size_t bytes = kb * 1024;

    SheConfig cfg;
    cfg.window = kN;
    cfg.cells = bytes * 8;
    cfg.group_cells = 64;
    cfg.alpha = 0.2;
    std::size_t max_groups = max_groups_for_failure(card, 1, cfg.alpha, 0.5);
    if (cfg.groups() > max_groups)
      cfg.group_cells = ceil_div(cfg.cells, max_groups);
    SheBitmap shebm(cfg);

    auto fbits = baselines::Swamp::fingerprint_bits_for_memory(kN, bytes);
    std::optional<baselines::Swamp> swamp;
    if (fbits) swamp.emplace(kN, *fbits);

    baselines::TimestampVector tsv(bytes / 8, kN);
    baselines::CounterVectorSketch cvs(bytes * 2, kN, 10, kSeed);
    stream::WindowOracle oracle(kN);

    RunningStats e_she, e_swamp, e_tsv, e_cvs, e_ideal;
    for (std::size_t i = 0; i < trace.size(); ++i) {
      std::uint64_t k = trace[i];
      shebm.insert(k);
      if (swamp) swamp->insert(k);
      tsv.insert(k);
      cvs.insert(k);
      oracle.insert(k);
      if (i > kWarmup && i % (kN / 2) == 0) {
        double truth = static_cast<double>(oracle.cardinality());
        e_she.add(relative_error(truth, shebm.cardinality()));
        if (swamp) e_swamp.add(relative_error(truth, swamp->cardinality()));
        e_tsv.add(relative_error(truth, tsv.cardinality()));
        e_cvs.add(relative_error(truth, cvs.cardinality()));
        fixed::Bitmap ideal(bytes * 8);
        for (const auto& [key, cnt] : oracle.counts()) {
          (void)cnt;
          ideal.insert(key);
        }
        e_ideal.add(relative_error(truth, ideal.cardinality()));
      }
    }
    table.add(memory_label(bytes), cfg.group_cells, fmt(e_she.mean()),
              swamp ? fmt(e_swamp.mean()) : std::string("inf"),
              fmt(e_tsv.mean()), fmt(e_cvs.mean()), fmt(e_ideal.mean()));
  }
  table.print(std::cout);
}

// ----------------------------- 9b: cardinality (HLL) -----------------------

void fig9b() {
  std::printf(
      "\n--- Fig. 9b  Cardinality (HLL family): RE vs memory "
      "(window 2^19, scaled from the paper's 2^21) ---\n");
  constexpr std::uint64_t kBigN = 1u << 19;
  Table table({"memory", "SHE-HLL", "SHLL(meas. mem)", "SHLL RE", "Ideal"});

  stream::ZipfTraceConfig tc;
  tc.length = 4 * kBigN;
  tc.universe = 4'000'000;
  tc.skew = 1.0;
  tc.seed = kSeed;
  auto trace = stream::zipf_trace(tc);

  for (std::size_t kb : {1, 2, 4, 8, 16, 32}) {
    std::size_t bytes = kb * 1024;
    std::size_t regs = bytes * 8 / 6;  // 5-bit register + 1-bit mark

    SheConfig cfg;
    cfg.window = kBigN;
    cfg.cells = regs;
    cfg.group_cells = 1;
    cfg.alpha = 0.2;
    SheHyperLogLog shehll(cfg);

    // SHLL: pick a register count whose *measured* footprint lands near the
    // budget (entries are data-dependent; ~4 queue entries x 9 B typical).
    std::size_t shll_regs = std::max<std::size_t>(16, bytes / 44);
    baselines::SlidingHyperLogLog shll(shll_regs, kBigN);

    stream::WindowOracle oracle(kBigN);
    RunningStats e_she, e_shll, e_ideal;
    for (std::size_t i = 0; i < trace.size(); ++i) {
      std::uint64_t k = trace[i];
      shehll.insert(k);
      shll.insert(k);
      oracle.insert(k);
      if (i > 2 * kBigN && i % (kBigN / 2) == 0) {
        double truth = static_cast<double>(oracle.cardinality());
        e_she.add(relative_error(truth, shehll.cardinality()));
        e_shll.add(relative_error(truth, shll.cardinality(kBigN)));
        fixed::HyperLogLog ideal(regs);
        for (const auto& [key, cnt] : oracle.counts()) {
          (void)cnt;
          ideal.insert(key);
        }
        e_ideal.add(relative_error(truth, ideal.cardinality()));
      }
    }
    table.add(memory_label(bytes), fmt(e_she.mean()),
              memory_label(shll.peak_memory_bytes()), fmt(e_shll.mean()),
              fmt(e_ideal.mean()));
  }
  table.print(std::cout);
}

// ------------------------------- 9c: frequency ------------------------------

void fig9c() {
  std::printf("\n--- Fig. 9c  Frequency: ARE vs memory ---\n");
  Table table({"memory", "SHE-CM", "SWAMP", "ECM(meas. mem)", "ECM ARE", "Ideal"});
  auto trace = caida_like(kStreamLen);

  for (double mb : {0.125, 0.25, 0.5, 1.0, 2.0, 2.5}) {
    std::size_t bytes = static_cast<std::size_t>(mb * 1024 * 1024);

    SheConfig cfg;
    cfg.window = kN;
    cfg.cells = bytes / 4;  // 32-bit counters
    cfg.group_cells = 64;
    cfg.alpha = 1.0;  // paper default for SHE-CM
    SheCountMin shecm(cfg, 8);

    auto fbits = baselines::Swamp::fingerprint_bits_for_memory(kN, bytes);
    std::optional<baselines::Swamp> swamp;
    if (fbits) swamp.emplace(kN, *fbits);

    // ECM: each EH counter costs ~(k_eh+1)*log2(per-counter count) buckets
    // at 8 B each, ~0.6 KB at these loads; sized so measured memory lands
    // near the budget (printed alongside).
    std::size_t ecm_counters = std::max<std::size_t>(64, bytes / 300);
    baselines::EcmSketch ecm(ecm_counters, 4, kN);

    stream::WindowOracle oracle(kN);
    RunningStats e_she, e_swamp, e_ecm, e_ideal;
    for (std::size_t i = 0; i < trace.size(); ++i) {
      std::uint64_t k = trace[i];
      shecm.insert(k);
      if (swamp) swamp->insert(k);
      ecm.insert(k);
      oracle.insert(k);
      if (i > kWarmup && i % kN == kN / 2) {
        fixed::CountMin ideal(bytes / 4, 8);
        for (const auto& [key, cnt] : oracle.counts())
          for (std::uint64_t c = 0; c < cnt; ++c) ideal.insert(key);
        std::size_t sampled = 0;
        for (const auto& [key, f] : oracle.counts()) {
          if (++sampled % 13 != 0) continue;  // subsample keys for speed
          double truth = static_cast<double>(f);
          e_she.add(relative_error(truth, static_cast<double>(shecm.frequency(key))));
          if (swamp)
            e_swamp.add(relative_error(truth, static_cast<double>(swamp->frequency(key))));
          e_ecm.add(relative_error(truth, ecm.frequency(key)));
          e_ideal.add(relative_error(truth, static_cast<double>(ideal.frequency(key))));
        }
      }
    }
    table.add(memory_label(bytes), fmt(e_she.mean()),
              swamp ? fmt(e_swamp.mean()) : std::string("inf"),
              memory_label(ecm.memory_bytes()), fmt(e_ecm.mean()),
              fmt(e_ideal.mean()));
  }
  table.print(std::cout);
}

// ------------------------------ 9d: membership ------------------------------

void fig9d() {
  std::printf("\n--- Fig. 9d  Membership: FPR vs memory ---\n");
  Table table({"memory", "SHE-BF", "SWAMP", "TOBF", "TBF", "Ideal"});
  auto trace = caida_like(kStreamLen);
  auto probes = absent_probes(100000);

  for (std::size_t kb : {16, 32, 64, 128, 256, 512}) {
    std::size_t bytes = kb * 1024;
    std::size_t bits = bytes * 8;

    SheConfig cfg;
    cfg.window = kN;
    cfg.cells = bits;
    cfg.group_cells = 64;
    // Window cardinality of the CAIDA-like stream is ~0.3 N; Eq. (2).
    cfg.alpha = optimal_alpha_bf(bits, 64, 0.3 * static_cast<double>(kN), 8);
    SheBloomFilter shebf(cfg, 8);

    auto fbits = baselines::Swamp::fingerprint_bits_for_memory(kN, bytes);
    std::optional<baselines::Swamp> swamp;
    if (fbits) swamp.emplace(kN, *fbits);

    baselines::TimeOutBloomFilter tobf(bytes / 8, 8, kN);
    baselines::TimingBloomFilter tbf(bits / 18, 8, kN, 18);
    stream::WindowOracle oracle(kN);

    for (std::size_t i = 0; i < trace.size(); ++i) {
      std::uint64_t k = trace[i];
      shebf.insert(k);
      if (swamp) swamp->insert(k);
      tobf.insert(k);
      tbf.insert(k);
      oracle.insert(k);
    }
    fixed::BloomFilter ideal(bits, 8);
    for (const auto& [key, cnt] : oracle.counts()) {
      (void)cnt;
      ideal.insert(key);
    }

    std::size_t fp_she = 0, fp_swamp = 0, fp_tobf = 0, fp_tbf = 0, fp_ideal = 0;
    for (auto p : probes) {
      if (shebf.contains(p)) ++fp_she;
      if (swamp && swamp->contains(p)) ++fp_swamp;
      if (tobf.contains(p)) ++fp_tobf;
      if (tbf.contains(p)) ++fp_tbf;
      if (ideal.contains(p)) ++fp_ideal;
    }
    double n = static_cast<double>(probes.size());
    table.add(memory_label(bytes), fmt(fp_she / n),
              swamp ? fmt(fp_swamp / n) : std::string("inf"), fmt(fp_tobf / n),
              fmt(fp_tbf / n), fmt(fp_ideal / n));
  }
  table.print(std::cout);
}

// ------------------------------ 9e: similarity ------------------------------

void fig9e() {
  std::printf(
      "\n--- Fig. 9e  Similarity: RE vs memory "
      "(window 2^14 to keep the O(M)-per-insert cost tractable) ---\n");
  constexpr std::uint64_t kMhN = 1u << 14;
  Table table({"memory", "SHE-MH", "Strawman", "Ideal"});
  auto pair = stream::relevant_pair(10 * kMhN, 2 * kMhN, 0.7, 0.8, kSeed);

  for (std::size_t kb : {1, 2, 3, 4}) {
    std::size_t bytes = kb * 1024;
    std::size_t she_slots = bytes * 8 / 25;  // 24-bit value + 1-bit mark
    std::size_t straw_slots = bytes / 11;

    SheConfig cfg;
    cfg.window = kMhN;
    cfg.cells = she_slots;
    cfg.group_cells = 1;
    cfg.alpha = 0.2;
    SheMinHash a(cfg), b(cfg);
    baselines::StrawmanMinHash sa(straw_slots, kMhN, kSeed),
        sb(straw_slots, kMhN, kSeed);
    stream::JaccardOracle oracle(kMhN);

    RunningStats e_she, e_straw, e_ideal;
    for (std::size_t i = 0; i < pair.a.size(); ++i) {
      a.insert(pair.a[i]);
      b.insert(pair.b[i]);
      sa.insert(pair.a[i]);
      sb.insert(pair.b[i]);
      oracle.insert(pair.a[i], pair.b[i]);
      if (i > 5 * kMhN && i % kMhN == kMhN / 2) {
        double truth = oracle.jaccard();
        e_she.add(relative_error(truth, SheMinHash::jaccard(a, b)));
        e_straw.add(
            relative_error(truth, baselines::StrawmanMinHash::jaccard(sa, sb)));
        fixed::MinHash ia(she_slots, kSeed), ib(she_slots, kSeed);
        for (const auto& [key, cnt] : oracle.a().counts()) {
          (void)cnt;
          ia.insert(key);
        }
        for (const auto& [key, cnt] : oracle.b().counts()) {
          (void)cnt;
          ib.insert(key);
        }
        e_ideal.add(relative_error(truth, fixed::MinHash::jaccard(ia, ib)));
      }
    }
    table.add(memory_label(bytes), fmt(e_she.mean()), fmt(e_straw.mean()),
              fmt(e_ideal.mean()));
  }
  table.print(std::cout);
}

}  // namespace
}  // namespace she::bench

int main() {
  she::bench::banner("Fig. 9 — accuracy comparison for five tasks",
                     "Error vs memory for SHE against the sliding-window "
                     "baselines and the fixed-window Ideal.");
  she::bench::fig9a();
  she::bench::fig9b();
  she::bench::fig9c();
  she::bench::fig9d();
  she::bench::fig9e();
  return 0;
}
