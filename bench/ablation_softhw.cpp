// Ablation — software sweep (Sec. 3.2) vs hardware lazy group cleaning
// (Sec. 3.3) for SHE-BF.
//
// The hardware version is a block-granular approximation of the software
// cell-by-cell sweep; this harness shows the two track each other across
// alpha and group size (the grouped version converging to the sweep as w
// shrinks), validating that the FPGA-oriented design does not change the
// algorithm's accuracy class.
#include <iostream>

#include "common.hpp"
#include "she/she.hpp"

namespace she::bench {
namespace {

constexpr std::uint64_t kN = 1u << 14;
constexpr std::size_t kBits = 1u << 17;

std::string fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.4g", v);
  return buf;
}

double fpr_soft(double alpha, const stream::Trace& trace,
                const std::vector<std::uint64_t>& probes) {
  SheConfig cfg;
  cfg.window = kN;
  cfg.cells = kBits;
  cfg.group_cells = 64;  // ignored by the sweep version
  cfg.alpha = alpha;
  SoftSheBloomFilter bf(cfg, 8);
  for (auto k : trace) bf.insert(k);
  std::size_t fp = 0;
  for (auto p : probes)
    if (bf.contains(p)) ++fp;
  return static_cast<double>(fp) / static_cast<double>(probes.size());
}

double fpr_hw(double alpha, std::size_t w, const stream::Trace& trace,
              const std::vector<std::uint64_t>& probes) {
  SheConfig cfg;
  cfg.window = kN;
  cfg.cells = kBits;
  cfg.group_cells = w;
  cfg.alpha = alpha;
  SheBloomFilter bf(cfg, 8);
  for (auto k : trace) bf.insert(k);
  std::size_t fp = 0;
  for (auto p : probes)
    if (bf.contains(p)) ++fp;
  return static_cast<double>(fp) / static_cast<double>(probes.size());
}

}  // namespace
}  // namespace she::bench

int main() {
  using namespace she::bench;
  banner("Ablation — software sweep vs hardware group cleaning (SHE-BF)",
         "FPR of the Sec. 3.2 sweep cleaner against the Sec. 3.3 grouped "
         "lazy cleaner at several group sizes, across alpha.");

  auto trace = she::stream::distinct_trace(8 * kN, kSeed);
  auto probes = absent_probes(50000);

  she::Table table({"alpha", "soft sweep", "hw w=8", "hw w=64", "hw w=512"});
  for (double alpha : {1.0, 2.0, 3.0, 5.0}) {
    table.add(fmt(alpha), fmt(fpr_soft(alpha, trace, probes)),
              fmt(fpr_hw(alpha, 8, trace, probes)),
              fmt(fpr_hw(alpha, 64, trace, probes)),
              fmt(fpr_hw(alpha, 512, trace, probes)));
  }
  table.print(std::cout);
  return 0;
}
