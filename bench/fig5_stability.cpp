// Fig. 5 — stability of SHE as the window slides: error measured every half
// window over five windows, at three memory sizes, for all five tasks.
// The claim to reproduce: after warm-up the error series is flat (no drift
// as cells recycle), and larger memory gives a uniformly lower curve.
#include <functional>
#include <iostream>
#include <memory>

#include "common.hpp"
#include "common/stats.hpp"
#include "she/she.hpp"
#include "stream/oracle.hpp"

namespace she::bench {
namespace {

constexpr std::uint64_t kWarmupWindows = 2;
constexpr std::uint64_t kMeasureWindows = 5;

std::string fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.4g", v);
  return buf;
}

/// One estimator under measurement: feed items one at a time, sample the
/// error only at measurement points.
struct Curve {
  std::function<void(std::uint64_t key)> insert;
  std::function<double()> error;
};

/// Drive all curves over `trace`; print an error row every half window
/// after warm-up.
void series(const char* title, const std::vector<std::size_t>& byte_sizes,
            std::uint64_t window, const stream::Trace& trace,
            const std::function<Curve(std::size_t)>& make_curve) {
  std::printf("\n--- %s ---\n", title);
  std::vector<std::string> headers = {"t/N"};
  for (std::size_t b : byte_sizes) headers.push_back(memory_label(b));
  Table table(headers);

  std::vector<Curve> curves;
  for (std::size_t b : byte_sizes) curves.push_back(make_curve(b));

  std::uint64_t total = (kWarmupWindows + kMeasureWindows) * window;
  for (std::uint64_t t = 1; t <= total; ++t) {
    for (auto& c : curves) c.insert(trace[t - 1]);
    if (t >= kWarmupWindows * window && t % (window / 2) == 0) {
      std::vector<std::string> row;
      row.push_back(fmt(static_cast<double>(t - kWarmupWindows * window) /
                        static_cast<double>(window)));
      for (auto& c : curves) row.push_back(fmt(c.error()));
      table.add_row(std::move(row));
    }
  }
  table.print(std::cout);
}

void fig5a_bitmap() {
  auto trace = caida_like((kWarmupWindows + kMeasureWindows) * kWindow + 1);
  series("Fig. 5a  Cardinality (Bitmap): RE vs time", {512, 1024, 2048},
         kWindow, trace, [](std::size_t bytes) {
           SheConfig cfg;
           cfg.window = kWindow;
           cfg.cells = bytes * 8;
           cfg.group_cells = 64;
           cfg.alpha = 0.2;
           auto bm = std::make_shared<SheBitmap>(cfg);
           auto oracle = std::make_shared<stream::WindowOracle>(kWindow);
           return Curve{
               [bm, oracle](std::uint64_t k) {
                 bm->insert(k);
                 oracle->insert(k);
               },
               [bm, oracle] {
                 return relative_error(
                     static_cast<double>(oracle->cardinality()),
                     bm->cardinality());
               }};
         });
}

void fig5b_hll() {
  auto trace = caida_like((kWarmupWindows + kMeasureWindows) * kWindow + 1);
  series("Fig. 5b  Cardinality (HLL): RE vs time", {256, 1024, 8192}, kWindow,
         trace, [](std::size_t bytes) {
           SheConfig cfg;
           cfg.window = kWindow;
           cfg.cells = bytes * 8 / 6;
           cfg.group_cells = 1;
           cfg.alpha = 0.2;
           auto hll = std::make_shared<SheHyperLogLog>(cfg);
           auto oracle = std::make_shared<stream::WindowOracle>(kWindow);
           return Curve{
               [hll, oracle](std::uint64_t k) {
                 hll->insert(k);
                 oracle->insert(k);
               },
               [hll, oracle] {
                 return relative_error(
                     static_cast<double>(oracle->cardinality()),
                     hll->cardinality());
               }};
         });
}

void fig5c_cm() {
  auto trace = caida_like((kWarmupWindows + kMeasureWindows) * kWindow + 1);
  series("Fig. 5c  Frequency: ARE vs time",
         {std::size_t{1} << 20, std::size_t{2} << 20, std::size_t{4} << 20},
         kWindow, trace, [](std::size_t bytes) {
           SheConfig cfg;
           cfg.window = kWindow;
           cfg.cells = bytes / 4;
           cfg.group_cells = 64;
           cfg.alpha = 1.0;
           auto cm = std::make_shared<SheCountMin>(cfg, 8);
           auto oracle = std::make_shared<stream::WindowOracle>(kWindow);
           return Curve{
               [cm, oracle](std::uint64_t k) {
                 cm->insert(k);
                 oracle->insert(k);
               },
               [cm, oracle] {
                 RunningStats are;
                 std::size_t sampled = 0;
                 for (const auto& [key, f] : oracle->counts()) {
                   if (++sampled % 29 != 0) continue;
                   are.add(relative_error(
                       static_cast<double>(f),
                       static_cast<double>(cm->frequency(key))));
                 }
                 return are.mean();
               }};
         });
}

void fig5d_bf() {
  auto trace = caida_like((kWarmupWindows + kMeasureWindows) * kWindow + 1);
  static auto probes = absent_probes(20000);
  series("Fig. 5d  Membership: FPR vs time",
         {32u * 1024, 128u * 1024, 512u * 1024}, kWindow, trace,
         [](std::size_t bytes) {
           SheConfig cfg;
           cfg.window = kWindow;
           cfg.cells = bytes * 8;
           cfg.group_cells = 64;
           cfg.alpha = optimal_alpha_bf(bytes * 8, 64,
                                        0.3 * static_cast<double>(kWindow), 8);
           auto bf = std::make_shared<SheBloomFilter>(cfg, 8);
           return Curve{[bf](std::uint64_t k) { bf->insert(k); },
                        [bf] {
                          std::size_t fp = 0;
                          for (auto p : probes)
                            if (bf->contains(p)) ++fp;
                          return static_cast<double>(fp) /
                                 static_cast<double>(probes.size());
                        }};
         });
}

void fig5e_mh() {
  // MinHash inserts cost O(slots); use a smaller window to keep this quick.
  constexpr std::uint64_t kMhN = 1u << 13;
  static auto pair = stream::relevant_pair(
      (kWarmupWindows + kMeasureWindows) * kMhN + 1, 2 * kMhN, 0.7, 0.8, kSeed);
  // series() feeds one key; SHE-MH needs the pair, so index by time instead.
  std::printf("\n--- Fig. 5e  Similarity: RE vs time (window 2^13) ---\n");
  Table table({"t/N", "512 B", "1 KB", "2 KB"});

  struct PairCurve {
    std::shared_ptr<SheMinHash> a, b;
  };
  std::vector<PairCurve> curves;
  for (std::size_t bytes : {512, 1024, 2048}) {
    SheConfig cfg;
    cfg.window = kMhN;
    cfg.cells = bytes * 8 / 25;
    cfg.group_cells = 1;
    cfg.alpha = 0.2;
    curves.push_back(
        {std::make_shared<SheMinHash>(cfg), std::make_shared<SheMinHash>(cfg)});
  }
  stream::JaccardOracle oracle(kMhN);

  std::uint64_t total = (kWarmupWindows + kMeasureWindows) * kMhN;
  for (std::uint64_t t = 1; t <= total; ++t) {
    for (auto& c : curves) {
      c.a->insert(pair.a[t - 1]);
      c.b->insert(pair.b[t - 1]);
    }
    oracle.insert(pair.a[t - 1], pair.b[t - 1]);
    if (t >= kWarmupWindows * kMhN && t % (kMhN / 2) == 0) {
      std::vector<std::string> row = {
          fmt(static_cast<double>(t - kWarmupWindows * kMhN) /
              static_cast<double>(kMhN))};
      for (auto& c : curves)
        row.push_back(
            fmt(relative_error(oracle.jaccard(), SheMinHash::jaccard(*c.a, *c.b))));
      table.add_row(std::move(row));
    }
  }
  table.print(std::cout);
}

}  // namespace
}  // namespace she::bench

int main() {
  she::bench::banner("Fig. 5 — stability of SHE as the window slides",
                     "Error every half window for five windows after a "
                     "two-window warm-up, at three memory sizes per task.");
  she::bench::fig5a_bitmap();
  she::bench::fig5b_hll();
  she::bench::fig5c_cm();
  she::bench::fig5d_bf();
  she::bench::fig5e_mh();
  return 0;
}
