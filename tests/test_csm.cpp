// CSM generic-framework tests: the policy-based SlidingEstimator must be
// answer-equivalent to the hand-specialized classes (same hashing, same
// clock), and must accept user-defined policies.
#include "she/csm.hpp"

#include <algorithm>

#include "she/she.hpp"
#include "stream/oracle.hpp"
#include "stream/trace.hpp"
#include <gtest/gtest.h>

namespace she::csm {
namespace {

SheConfig cfg_of(std::uint64_t window, std::size_t cells, std::size_t w,
                 double alpha, std::uint32_t seed = 0) {
  SheConfig cfg;
  cfg.window = window;
  cfg.cells = cells;
  cfg.group_cells = w;
  cfg.alpha = alpha;
  cfg.seed = seed;
  return cfg;
}

TEST(Csm, BloomEquivalentToSpecialized) {
  SheConfig cfg = cfg_of(1024, 1 << 13, 64, 2.0, 7);
  SlidingEstimator<BloomPolicy> generic(cfg, BloomPolicy{8, cfg.seed});
  SheBloomFilter specialized(cfg, 8);

  auto trace = stream::distinct_trace(6 * cfg.window, 3);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    generic.insert(trace[i]);
    specialized.insert(trace[i]);
    if (i % 101 != 0) continue;
    // Compare on recent keys, old keys, and absent probes.
    for (std::uint64_t probe :
         {trace[i], trace[i / 2], trace[0], hash64(i, 99), hash64(i, 100)}) {
      ASSERT_EQ(contains(generic, probe), specialized.contains(probe))
          << "i=" << i << " probe=" << probe;
    }
  }
}

TEST(Csm, BitmapEquivalentToSpecialized) {
  SheConfig cfg = cfg_of(2048, 1 << 14, 64, 0.2, 5);
  SlidingEstimator<BitmapPolicy> generic(cfg, BitmapPolicy{cfg.seed});
  SheBitmap specialized(cfg);

  auto trace = stream::distinct_trace(6 * cfg.window, 9);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    generic.insert(trace[i]);
    specialized.insert(trace[i]);
    if (i % 509 == 0) {
      ASSERT_DOUBLE_EQ(cardinality(generic), specialized.cardinality())
          << "i=" << i;
    }
  }
}

TEST(Csm, HllEquivalentToSpecialized) {
  SheConfig cfg = cfg_of(4096, 1024, 1, 0.2, 11);
  SlidingEstimator<HllPolicy> generic(cfg, HllPolicy{cfg.seed});
  SheHyperLogLog specialized(cfg);

  auto trace = stream::distinct_trace(5 * cfg.window, 13);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    generic.insert(trace[i]);
    specialized.insert(trace[i]);
    if (i % 997 == 0) {
      ASSERT_DOUBLE_EQ(cardinality(generic), specialized.cardinality())
          << "i=" << i;
    }
  }
}

TEST(Csm, CountMinEquivalentToSpecialized) {
  SheConfig cfg = cfg_of(1024, 1 << 13, 64, 1.0, 3);
  SlidingEstimator<CountMinPolicy> generic(cfg, CountMinPolicy{8, cfg.seed});
  SheCountMin specialized(cfg, 8);

  stream::ZipfTraceConfig tc;
  tc.length = 6 * cfg.window;
  tc.universe = cfg.window;
  tc.skew = 1.0;
  tc.seed = 21;
  auto trace = stream::zipf_trace(tc);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    generic.insert(trace[i]);
    specialized.insert(trace[i]);
    if (i % 211 == 0) {
      ASSERT_EQ(frequency(generic, trace[i]), specialized.frequency(trace[i]))
          << "i=" << i;
    }
  }
}

TEST(Csm, MinHashEquivalentToSpecialized) {
  SheConfig cfg = cfg_of(2048, 256, 1, 0.2, 17);
  SlidingEstimator<MinHashPolicy> ga(cfg, MinHashPolicy{cfg.seed});
  SlidingEstimator<MinHashPolicy> gb(cfg, MinHashPolicy{cfg.seed});
  SheMinHash sa(cfg), sb(cfg);

  auto pair = stream::relevant_pair(5 * cfg.window, 2 * cfg.window, 0.6, 0.8, 7);
  for (std::size_t i = 0; i < pair.a.size(); ++i) {
    ga.insert(pair.a[i]);
    gb.insert(pair.b[i]);
    sa.insert(pair.a[i]);
    sb.insert(pair.b[i]);
    if (i % 499 == 0) {
      ASSERT_DOUBLE_EQ(jaccard(ga, gb), SheMinHash::jaccard(sa, sb)) << "i=" << i;
    }
  }
}

TEST(Csm, MinHashIncompatibilityChecks) {
  SheConfig a_cfg = cfg_of(100, 64, 1, 0.5, 1);
  SheConfig b_cfg = cfg_of(100, 64, 1, 0.5, 2);  // different hash family
  SlidingEstimator<MinHashPolicy> a(a_cfg, MinHashPolicy{a_cfg.seed});
  SlidingEstimator<MinHashPolicy> b(b_cfg, MinHashPolicy{b_cfg.seed});
  EXPECT_THROW((void)jaccard(a, b), std::invalid_argument);
}

TEST(Csm, CellViewsClassifyAges) {
  SheConfig cfg = cfg_of(100, 256, 16, 1.0);
  SlidingEstimator<BitmapPolicy> est(cfg, BitmapPolicy{});
  for (std::uint64_t i = 0; i < 500; ++i) est.insert(hash64(i));
  std::size_t young = 0, perfect = 0, aged = 0;
  for (std::size_t pos = 0; pos < est.cell_count(); pos += cfg.group_cells) {
    switch (est.view(pos).age_class) {
      case CellAge::kYoung: ++young; break;
      case CellAge::kPerfect: ++perfect; break;
      case CellAge::kAged: ++aged; break;
    }
  }
  // Tcycle = 2N: roughly half the groups young, half aged.
  EXPECT_GT(young, 0u);
  EXPECT_GT(aged, 0u);
  EXPECT_LE(perfect, 2u);
}

// --- a user-defined policy: sliding "maximum value" sketch ------------------
//
// Tracks the maximum of a per-item 16-bit payload over the window per hashed
// cell — the kind of custom aggregate the CSM framework admits without
// touching SHE internals.  F(x, y) = max(payload(x), y).
struct MaxPolicy {
  using Cell = std::uint16_t;
  std::uint32_t seed = 0;

  [[nodiscard]] unsigned probes(std::size_t) const { return 2; }
  [[nodiscard]] std::size_t position(std::uint64_t key, unsigned i,
                                     std::size_t cells) const {
    return BobHash32(seed + i)(key) % cells;
  }
  [[nodiscard]] Cell update(std::uint64_t key, unsigned, Cell old) const {
    auto payload = static_cast<Cell>(key >> 48);  // payload rides in high bits
    return payload > old ? payload : old;
  }
  static Cell empty_cell() { return 0; }
  static std::size_t cell_bits() { return 16; }
};
static_assert(CsmPolicy<MaxPolicy>);

TEST(Csm, CustomPolicyWorks) {
  SheConfig cfg = cfg_of(1000, 4096, 64, 1.0);
  SlidingEstimator<MaxPolicy> est(cfg, MaxPolicy{});

  // Insert a burst of items with payload <= 100, then one spike of 60000,
  // then keep streaming low payloads for several windows.
  auto low_key = [](std::uint64_t i, std::uint64_t payload) {
    return (payload << 48) | (hash64(i) & 0xFFFFFFFFFFFFULL);
  };
  for (std::uint64_t i = 0; i < 500; ++i) est.insert(low_key(i, i % 100));
  est.insert(low_key(12345, 60000));

  // Immediately after: the spike is visible through its mature probes.
  std::uint16_t seen_max = 0;
  for (unsigned p = 0; p < 2; ++p)
    seen_max = std::max(seen_max, est.probe(low_key(12345, 60000), p).value);
  EXPECT_EQ(seen_max, 60000);

  // Several windows later, the spike has been cleaned away.
  for (std::uint64_t i = 0; i < 8000; ++i) est.insert(low_key(i + 1000, i % 100));
  std::uint16_t later_max = 0;
  for (std::size_t pos = 0; pos < est.cell_count(); ++pos)
    later_max = std::max(later_max, est.view(pos).value);
  EXPECT_LT(later_max, 60000);
}

TEST(Csm, ClearResets) {
  SheConfig cfg = cfg_of(100, 1024, 64, 1.0);
  SlidingEstimator<BloomPolicy> est(cfg, BloomPolicy{4, 0});
  est.insert(42);
  est.clear();
  EXPECT_EQ(est.time(), 0u);
}

TEST(Csm, MemoryModelCountsPolicyBits) {
  SheConfig cfg = cfg_of(100, 1024, 64, 1.0);
  SlidingEstimator<BloomPolicy> bf(cfg, BloomPolicy{4, 0});
  // 1024 1-bit cells = 128 B + 16 marks.
  EXPECT_LE(bf.memory_bytes(), 128u + 8u + 8u);
  SlidingEstimator<CountMinPolicy> cm(cfg, CountMinPolicy{4, 0});
  EXPECT_GE(cm.memory_bytes(), 4096u);
}

}  // namespace
}  // namespace she::csm
