// Hardware pipeline model tests: SHE designs satisfy the three constraints
// of Sec. 2.3, SWAMP's design violates them (the paper's core hardware
// argument), and the access trace confirms the fixed per-item budget.
#include "hw/access_trace.hpp"
#include "hw/builders.hpp"
#include "hw/cycle_sim.hpp"
#include "hw/switch_profile.hpp"
#include "hw/pipeline.hpp"

#include "stream/trace.hpp"
#include <gtest/gtest.h>

namespace she::hw {
namespace {

TEST(Pipeline, RejectsDanglingRegionReference) {
  std::vector<MemoryRegion> regions = {{"a", 8}};
  std::vector<Stage> stages = {{"s", {{5, 8, true, true, true}}, 0, 0}};
  EXPECT_THROW(Pipeline("bad", regions, stages), std::invalid_argument);
}

TEST(Pipeline, SheBmSatisfiesAllConstraints) {
  auto p = make_she_bm_pipeline();
  auto rep = p.check();
  EXPECT_TRUE(rep.sram_fits);
  EXPECT_TRUE(rep.single_stage_access);
  EXPECT_TRUE(rep.limited_concurrent_access);
  EXPECT_TRUE(rep.pipelined());
  EXPECT_TRUE(rep.violations.empty());
}

TEST(Pipeline, SheBfSatisfiesAllConstraints) {
  auto p = make_she_bf_pipeline();
  auto rep = p.check();
  EXPECT_TRUE(rep.pipelined()) << (rep.violations.empty() ? "" : rep.violations[0]);
}

TEST(Pipeline, SheBmHasFourStages) {
  auto p = make_she_bm_pipeline();
  EXPECT_EQ(p.stages().size(), 4u);  // Sec. 6's four-stage decomposition
}

TEST(Pipeline, SwampViolatesConstraints) {
  auto p = make_swamp_pipeline();
  auto rep = p.check();
  EXPECT_FALSE(rep.pipelined());
  // The three argued failure modes: double access in queue_swap, shared
  // table region across stages, unbounded domino expansion.
  EXPECT_FALSE(rep.single_stage_access);
  EXPECT_FALSE(rep.limited_concurrent_access);
  EXPECT_GE(rep.violations.size(), 3u);
}

TEST(Pipeline, SwampThroughputZeroWhenNotPipelined) {
  EXPECT_EQ(make_swamp_pipeline().throughput_mips(544.0), 0.0);
  EXPECT_EQ(make_she_bm_pipeline().throughput_mips(544.0), 544.0);
}

TEST(Pipeline, TooWideAccessFlagged) {
  std::vector<MemoryRegion> regions = {{"wide", 1 << 20}};
  std::vector<Stage> stages = {{"s", {{0, 4096, true, true, true}}, 0, 0}};
  Pipeline p("wide", regions, stages);
  auto rep = p.check();
  EXPECT_FALSE(rep.limited_concurrent_access);
}

TEST(Pipeline, SramBudgetEnforced) {
  std::vector<MemoryRegion> regions = {{"huge", std::size_t{64} * 8 * 1024 * 1024}};
  Pipeline p("huge", regions, {});
  EXPECT_FALSE(p.check().sram_fits);
  EXPECT_TRUE(p.check(std::size_t{128} * 8 * 1024 * 1024).sram_fits);
}

TEST(Pipeline, ResourceModelScalesWithLanes) {
  auto bm = make_she_bm_pipeline().resources();
  auto bf = make_she_bf_pipeline().resources();
  EXPECT_GT(bm.lut, 1000u);
  EXPECT_LT(bm.lut, 3000u);  // Table 2 ballpark: 1653
  EXPECT_GT(bf.lut, 6 * bm.lut);  // 8 lanes
  EXPECT_LT(bf.lut, 10 * bm.lut);
  EXPECT_GT(bm.registers, 1024u);  // 1024-bit array held in registers
  EXPECT_EQ(bm.block_ram_bits, 0u);  // Table 2: zero block memory
  EXPECT_EQ(bf.block_ram_bits, 0u);
  EXPECT_DOUBLE_EQ(bm.items_per_cycle, 1.0);
}

TEST(Pipeline, LargeArraysSpillToBlockRam) {
  auto p = make_she_bm_pipeline(1 << 20, 64);
  auto est = p.resources();
  EXPECT_GT(est.block_ram_bits, 0u);
}

TEST(AccessTrace, FixedBudgetPerItem) {
  SheConfig cfg;
  cfg.window = 1024;
  cfg.cells = 4096;
  cfg.group_cells = 64;
  cfg.alpha = 1.0;
  auto trace = stream::distinct_trace(20000, 3);
  auto stats = trace_insertions(cfg, 1, trace);
  EXPECT_EQ(stats.items, 20000u);
  EXPECT_EQ(stats.counter_accesses, 20000u);
  EXPECT_DOUBLE_EQ(stats.mark_accesses_per_item(), 1.0);   // SHE-BM: k = 1
  EXPECT_DOUBLE_EQ(stats.cell_accesses_per_item(), 1.0);
  EXPECT_LE(stats.resets_per_item(), 1.0);  // resets folded into the access
}

TEST(AccessTrace, ScalesLinearlyWithHashCount) {
  SheConfig cfg;
  cfg.window = 1024;
  cfg.cells = 1 << 14;
  cfg.group_cells = 64;
  cfg.alpha = 3.0;
  auto trace = stream::distinct_trace(10000, 4);
  auto s8 = trace_insertions(cfg, 8, trace);
  EXPECT_DOUBLE_EQ(s8.mark_accesses_per_item(), 8.0);
  EXPECT_DOUBLE_EQ(s8.cell_accesses_per_item(), 8.0);
}

TEST(CycleSim, PipelinedDesignRunsAtOneItemPerCycle) {
  auto res = simulate(make_she_bm_pipeline(), 1'000'000);
  EXPECT_EQ(res.cycles, 1'000'000u + 3u);  // n + depth - 1, depth = 4
  EXPECT_NEAR(res.cycles_per_item, 1.0, 0.001);
  EXPECT_NEAR(res.mips(544.0), 544.0, 0.1);
}

TEST(CycleSim, SheBfLanesDoNotStall) {
  auto res = simulate(make_she_bf_pipeline(), 100'000);
  EXPECT_NEAR(res.cycles_per_item, 1.0, 0.001);
}

TEST(CycleSim, SwampViolationsSerialize) {
  auto res = simulate(make_swamp_pipeline(), 100'000);
  // queue double-access (+1), domino cascade (+4 default), multi-address
  // (+1), shared-table hazard (+1): well above 1 cycle/item.
  EXPECT_GT(res.cycles_per_item, 4.0);
  EXPECT_LT(res.mips(544.0), 544.0 / 4);
}

TEST(CycleSim, CascadePenaltyParameter) {
  auto cheap = simulate(make_swamp_pipeline(), 10'000, 1);
  auto costly = simulate(make_swamp_pipeline(), 10'000, 16);
  EXPECT_LT(cheap.cycles, costly.cycles);
}

TEST(CycleSim, ZeroItems) {
  auto res = simulate(make_she_bm_pipeline(), 0);
  EXPECT_EQ(res.cycles, 0u);
  EXPECT_EQ(res.mips(500.0), 0.0);
}

TEST(SwitchProfile, SheBmFitsTofinoLike) {
  auto rep = check_switch(make_she_bm_pipeline(), tofino_like());
  EXPECT_TRUE(rep.pipelined()) << (rep.violations.empty() ? "" : rep.violations[0]);
}

TEST(SwitchProfile, SheBfNeedsParallelLanes) {
  auto p = make_she_bf_pipeline();  // 25 stages as a straight line
  EXPECT_FALSE(check_switch(p, tofino_like(), 1).pipelined());
  EXPECT_TRUE(check_switch(p, tofino_like(), 8).pipelined());
}

TEST(SwitchProfile, SwampFailsRegardlessOfLanes) {
  auto p = make_swamp_pipeline();
  EXPECT_FALSE(check_switch(p, tofino_like(), 1).pipelined());
  EXPECT_FALSE(check_switch(p, tofino_like(), 8).pipelined());
}

TEST(SwitchProfile, NarrowAccessWidthEnforced) {
  // A 512-bit group exceeds the 128-bit stateful ALU width.
  auto p = make_she_bm_pipeline(4096, 512);
  EXPECT_FALSE(check_switch(p, tofino_like()).pipelined());
  EXPECT_TRUE(p.check().pipelined());  // still fine on the FPGA profile
}

TEST(SwitchProfile, DescribeListsEveryStage) {
  auto text = describe(make_she_bm_pipeline());
  EXPECT_NE(text.find("fetch_time"), std::string::npos);
  EXPECT_NE(text.find("hash_index"), std::string::npos);
  EXPECT_NE(text.find("mark_check"), std::string::npos);
  EXPECT_NE(text.find("cell_update"), std::string::npos);
  EXPECT_NE(text.find("bit_array 64b rw"), std::string::npos);
  // SWAMP's description flags the unbounded access.
  EXPECT_NE(describe(make_swamp_pipeline()).find("UNBOUNDED"), std::string::npos);
}

TEST(AccessTrace, ResetsBoundedByCycleRate) {
  // Each group resets at most once per Tcycle, so resets/item <= k (and in
  // aggregate <= G * items / Tcycle when every group stays warm).
  SheConfig cfg;
  cfg.window = 1 << 12;
  cfg.cells = 1 << 14;
  cfg.group_cells = 64;
  cfg.alpha = 0.5;
  auto trace = stream::distinct_trace(1 << 16, 5);
  auto stats = trace_insertions(cfg, 1, trace);
  double max_resets = static_cast<double>(cfg.groups()) *
                      static_cast<double>(stats.items) /
                      static_cast<double>(cfg.tcycle());
  EXPECT_LE(static_cast<double>(stats.group_resets), max_resets * 1.1);
}

}  // namespace
}  // namespace she::hw
