// Edge-case coverage beyond the per-module suites: large-clock arithmetic,
// HLL-variant monitor checkpoints, and misc API corners surfaced by review.
#include <sstream>

#include "common/bit_array.hpp"
#include "common/zipf.hpp"
#include "common/io.hpp"
#include "she/csm_soft.hpp"
#include "she/she.hpp"
#include "stream/trace.hpp"
#include <gtest/gtest.h>

namespace she {
namespace {

TEST(LargeClock, GroupClockStableAtHugeTimes) {
  // Ages/marks must stay consistent far into a stream (t ~ 2^40).
  GroupClock c(64, (1u << 20) + 7);
  std::uint64_t t0 = std::uint64_t{1} << 40;
  for (std::size_t g = 0; g < 64; ++g) {
    std::uint64_t a0 = c.age(g, t0);
    EXPECT_LT(a0, c.tcycle());
    EXPECT_EQ(c.age(g, t0 + 1), (a0 + 1) % c.tcycle());
    // Mark flips exactly at the age wrap, even at huge t.
    std::uint64_t to_wrap = c.tcycle() - a0;
    EXPECT_NE(c.current_mark(g, t0 + to_wrap), c.current_mark(g, t0 + to_wrap - 1));
  }
}

TEST(LargeClock, EstimatorSurvivesHugeAdvance) {
  SheConfig cfg;
  cfg.window = 1000;
  cfg.cells = 1 << 14;
  cfg.group_cells = 64;
  cfg.alpha = 1.0;
  SheBloomFilter bf(cfg, 4);
  bf.insert_at(7, std::uint64_t{1} << 40);
  EXPECT_TRUE(bf.contains(7));
  bf.advance_to((std::uint64_t{1} << 40) + 500);
  EXPECT_TRUE(bf.contains(7));
}

TEST(MonitorGaps, HllVariantCheckpointRoundTrip) {
  MonitorConfig cfg;
  cfg.window = 1 << 14;
  cfg.memory_bytes = 64 * 1024;
  cfg.use_hll = true;
  cfg.expected_cardinality = 8000;
  StreamMonitor mon(cfg);
  for (auto k : stream::distinct_trace(2 * cfg.window, 3)) mon.insert(k);

  std::stringstream ss;
  BinaryWriter w(ss);
  mon.save(w);
  BinaryReader r(ss);
  StreamMonitor back = StreamMonitor::load(r);
  ASSERT_TRUE(back.report(1).cardinality.has_value());
  EXPECT_DOUBLE_EQ(*back.report(1).cardinality, *mon.report(1).cardinality);
}

TEST(MonitorGaps, CorruptedMonitorStreamRejected) {
  MonitorConfig cfg;
  cfg.window = 1024;
  cfg.memory_bytes = 16 * 1024;
  StreamMonitor mon(cfg);
  std::stringstream ss;
  BinaryWriter w(ss);
  mon.save(w);
  std::string data = ss.str();
  std::stringstream cut(data.substr(0, data.size() / 3));
  BinaryReader r(cut);
  EXPECT_THROW((void)StreamMonitor::load(r), std::runtime_error);
}

TEST(BitArrayGaps, MergeOperatorsRejectSizeMismatch) {
  BitArray a(64), b(128);
  EXPECT_THROW(a |= b, std::invalid_argument);
  EXPECT_THROW(a &= b, std::invalid_argument);
}

TEST(BitArrayGaps, IntersectionWorks) {
  BitArray a(128), b(128);
  a.set(3);
  a.set(70);
  b.set(70);
  b.set(90);
  a &= b;
  EXPECT_FALSE(a.test(3));
  EXPECT_TRUE(a.test(70));
  EXPECT_FALSE(a.test(90));
}

TEST(HeavyHittersGaps, RestoreSketchKeepsPointQueries) {
  SheConfig cfg;
  cfg.window = 2048;
  cfg.cells = 1 << 13;
  cfg.group_cells = 64;
  cfg.alpha = 1.0;
  HeavyHitters hh(cfg, 8, 16);
  for (int i = 0; i < 500; ++i) hh.insert(42);

  std::stringstream ss;
  BinaryWriter w(ss);
  hh.sketch().save(w);
  BinaryReader r(ss);

  HeavyHitters fresh(cfg, 8, 16);
  fresh.restore_sketch(SheCountMin::load(r));
  EXPECT_EQ(fresh.frequency(42), hh.frequency(42));
  EXPECT_EQ(fresh.candidate_count(), 0u);  // candidates rebuild from stream
  fresh.insert(42);
  EXPECT_EQ(fresh.candidate_count(), 1u);
}

TEST(ShardedGaps, OwnerAccessorsConsistent) {
  Sharded<SheBitmap> s(3, [](std::size_t idx) {
    SheConfig cfg;
    cfg.window = 1024;
    cfg.cells = 4096;
    cfg.group_cells = 64;
    cfg.alpha = 0.2;
    cfg.seed = static_cast<std::uint32_t>(idx);
    return SheBitmap(cfg);
  });
  const auto& cs = s;
  for (std::uint64_t k = 0; k < 100; ++k) {
    std::size_t shard = s.shard_of(k);
    EXPECT_EQ(&s.owner(k), &s.shard(shard));
    EXPECT_EQ(&cs.owner(k), &cs.shard(shard));
  }
}

TEST(ZipfGaps, PmfOutOfRangeThrows) {
  ZipfDistribution z(10, 1.0);
  EXPECT_THROW((void)z.pmf(10), std::out_of_range);
  EXPECT_NO_THROW((void)z.pmf(9));
}

TEST(SoftBloomGaps, TimeApiMatchesHardwareSemantics) {
  // SoftSheBloomFilter only exposes insert(); the csm soft engine provides
  // the time API — verify an insert-at-gap scenario through it instead.
  SheConfig cfg;
  cfg.window = 500;
  cfg.cells = 1 << 13;
  cfg.group_cells = 64;
  cfg.alpha = 1.0;
  csm::SoftSlidingEstimator<csm::BloomPolicy> bf(cfg, csm::BloomPolicy{8, 0});
  bf.insert_at(123, 100);
  EXPECT_TRUE(csm::contains(bf, 123));
  bf.advance_to(100 + 3 * cfg.tcycle());
  EXPECT_FALSE(csm::contains(bf, 123));
}

}  // namespace
}  // namespace she
