// RNG and Zipf distribution tests.
#include "common/rng.hpp"
#include "common/zipf.hpp"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

namespace she {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (a() == b()) ++equal;
  EXPECT_EQ(equal, 0);
}

TEST(Rng, BelowStaysInRange) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(r.below(17), 17u);
}

TEST(Rng, BelowRoughlyUniform) {
  Rng r(11);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 100000; ++i) ++counts[r.below(10)];
  for (int c : counts) {
    EXPECT_GT(c, 9000);
    EXPECT_LT(c, 11000);
  }
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(3);
  double sum = 0;
  for (int i = 0; i < 100000; ++i) {
    double u = r.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 100000.0, 0.5, 0.01);
}

TEST(Zipf, RejectsBadArguments) {
  EXPECT_THROW(ZipfDistribution(0, 1.0), std::invalid_argument);
  EXPECT_THROW(ZipfDistribution(10, -0.5), std::invalid_argument);
}

TEST(Zipf, PmfSumsToOne) {
  ZipfDistribution z(1000, 1.0);
  double total = 0;
  for (std::uint64_t i = 0; i < 1000; ++i) total += z.pmf(i);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Zipf, PmfMonotoneDecreasing) {
  ZipfDistribution z(100, 1.2);
  for (std::uint64_t i = 1; i < 100; ++i) EXPECT_LE(z.pmf(i), z.pmf(i - 1));
}

TEST(Zipf, SkewZeroIsUniform) {
  ZipfDistribution z(50, 0.0);
  for (std::uint64_t i = 0; i < 50; ++i) EXPECT_NEAR(z.pmf(i), 1.0 / 50, 1e-12);
}

TEST(Zipf, EmpiricalMatchesPmfForHeadRanks) {
  ZipfDistribution z(1000, 1.0);
  Rng r(5);
  constexpr int kDraws = 200000;
  std::vector<int> counts(1000, 0);
  for (int i = 0; i < kDraws; ++i) ++counts[z(r)];
  for (std::uint64_t rank = 0; rank < 5; ++rank) {
    double expected = z.pmf(rank) * kDraws;
    EXPECT_NEAR(counts[rank], expected, expected * 0.1 + 30)
        << "rank " << rank;
  }
}

TEST(Zipf, HigherSkewConcentratesMass) {
  ZipfDistribution flat(1000, 0.5), steep(1000, 1.5);
  EXPECT_GT(steep.pmf(0), flat.pmf(0));
  EXPECT_LT(steep.pmf(999), flat.pmf(999));
}

}  // namespace
}  // namespace she
