// SHE-CM tests.  Key property: like Count-Min, SHE-CM must not
// under-estimate window frequencies, except through the documented
// all-probes-young fallback whose rate we bound.
#include "she/she_cm.hpp"

#include "common/bobhash.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "stream/oracle.hpp"
#include "stream/trace.hpp"
#include <gtest/gtest.h>

namespace she {
namespace {

SheConfig cm_config(std::uint64_t window, std::size_t counters, double alpha = 1.0) {
  SheConfig cfg;
  cfg.window = window;
  cfg.cells = counters;
  cfg.group_cells = 64;
  cfg.alpha = alpha;  // paper default for SHE-CM
  return cfg;
}

TEST(SheCm, RejectsZeroHashes) {
  EXPECT_THROW(SheCountMin(cm_config(100, 1024), 0), std::invalid_argument);
}

TEST(SheCm, ExactForIsolatedKeyWithAmpleMemory) {
  SheCountMin cm(cm_config(4096, 1 << 16), 8);
  for (int i = 0; i < 100; ++i) cm.insert(7);
  EXPECT_GE(cm.frequency(7), 100u);
  EXPECT_LE(cm.frequency(7), 110u);
}

TEST(SheCm, NeverUnderestimatesOutsideFallback) {
  constexpr std::uint64_t kWindow = 2048;
  SheCountMin cm(cm_config(kWindow, 1 << 14, 1.0), 8);
  stream::WindowOracle oracle(kWindow);

  stream::ZipfTraceConfig tc;
  tc.length = 8 * kWindow;
  tc.universe = kWindow;
  tc.skew = 1.0;
  tc.seed = 5;
  auto trace = stream::zipf_trace(tc);

  std::uint64_t checked = 0;
  std::uint64_t underestimates = 0;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    cm.insert(trace[i]);
    oracle.insert(trace[i]);
    if (i > 2 * kWindow && i % 19 == 0) {
      std::uint64_t key = trace[i - (i % kWindow) / 2];
      std::uint64_t fallbacks_before = cm.all_young_queries();
      std::uint64_t est = cm.frequency(key);
      bool used_fallback = cm.all_young_queries() > fallbacks_before;
      if (!used_fallback) {
        ++checked;
        if (est < oracle.frequency(key)) ++underestimates;
      }
    }
  }
  EXPECT_GT(checked, 100u);
  EXPECT_EQ(underestimates, 0u);
}

TEST(SheCm, AllYoungFallbackIsRare) {
  constexpr std::uint64_t kWindow = 2048;
  SheCountMin cm(cm_config(kWindow, 1 << 14, 1.0), 8);
  auto trace = stream::distinct_trace(6 * kWindow, 3);
  for (auto k : trace) cm.insert(k);
  std::uint64_t queries = 5000;
  for (std::uint64_t q = 0; q < queries; ++q) (void)cm.frequency(hash64(q, 42));
  // P(all 8 probes young) = (N / Tcycle)^8 = 2^-8 ~ 0.4%; allow 4x slack.
  EXPECT_LT(static_cast<double>(cm.all_young_queries()) /
                static_cast<double>(queries),
            0.016);
}

TEST(SheCm, AccurateOnSkewedStream) {
  constexpr std::uint64_t kWindow = 4096;
  SheCountMin cm(cm_config(kWindow, 1 << 16, 1.0), 8);
  stream::WindowOracle oracle(kWindow);
  stream::ZipfTraceConfig tc;
  tc.length = 6 * kWindow;
  tc.universe = 2 * kWindow;
  tc.skew = 1.0;
  tc.seed = 9;
  auto trace = stream::zipf_trace(tc);
  RunningStats are;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    cm.insert(trace[i]);
    oracle.insert(trace[i]);
    if (i > 3 * kWindow && i % 997 == 0) {
      // ARE over currently-heavy keys.
      for (const auto& [key, f] : oracle.counts()) {
        if (f < 8) continue;
        are.add(relative_error(static_cast<double>(f),
                               static_cast<double>(cm.frequency(key))));
      }
    }
  }
  EXPECT_LT(are.mean(), 0.6);
}

TEST(SheCm, OverestimateBoundedByAgedWindow) {
  // A counter records at most a (1+alpha)N window; the estimate for a key
  // whose true in-window frequency is f is at most f plus collisions plus
  // the aged tail.  With one key only, the estimate is bounded by its
  // frequency over (1+alpha)N.
  constexpr std::uint64_t kWindow = 1024;
  SheCountMin cm(cm_config(kWindow, 1 << 14, 1.0), 4);
  std::uint64_t mature_checks = 0;
  for (std::uint64_t i = 0; i < 10 * kWindow; ++i) {
    cm.insert(9999);
    if (i < 4 * kWindow || i % 97 != 0) continue;
    std::uint64_t fallbacks_before = cm.all_young_queries();
    std::uint64_t est = cm.frequency(9999);
    if (cm.all_young_queries() > fallbacks_before) continue;  // all-young query
    ++mature_checks;
    EXPECT_LE(est, static_cast<std::uint64_t>((1.0 + 1.0) * kWindow) + 1);
    EXPECT_GE(est, kWindow);  // at least the true window count
  }
  EXPECT_GT(mature_checks, 10u);
}

TEST(SheCm, ExpiryReducesEstimates) {
  constexpr std::uint64_t kWindow = 2048;
  SheCountMin cm(cm_config(kWindow, 1 << 14, 1.0), 8);
  for (int i = 0; i < 500; ++i) cm.insert(5);
  // Push many windows of other traffic.
  auto noise = stream::distinct_trace(8 * kWindow, 8);
  for (auto k : noise) cm.insert(k);
  EXPECT_LT(cm.frequency(5), 50u);
}

TEST(SheCm, ClearResets) {
  SheCountMin cm(cm_config(1000, 8192), 4);
  for (int i = 0; i < 100; ++i) cm.insert(1);
  cm.clear();
  EXPECT_EQ(cm.time(), 0u);
  EXPECT_EQ(cm.all_young_queries(), 0u);
  EXPECT_EQ(cm.frequency(1), 0u);
}

}  // namespace
}  // namespace she
