// Unit tests for the floored-division arithmetic everything else builds on.
#include "common/int_math.hpp"

#include <cmath>

#include <gtest/gtest.h>

namespace she {
namespace {

TEST(IntMath, FloorDivMatchesMathematicalDefinition) {
  // Exhaustive over a signed range: floor_div(a,b) == floor(a/b).
  for (std::int64_t a = -50; a <= 50; ++a) {
    for (std::int64_t b = 1; b <= 12; ++b) {
      double exact = static_cast<double>(a) / static_cast<double>(b);
      std::int64_t expected = static_cast<std::int64_t>(std::floor(exact));
      EXPECT_EQ(floor_div(a, b), expected) << "a=" << a << " b=" << b;
    }
  }
}

TEST(IntMath, FloorModInRangeAndConsistent) {
  for (std::int64_t a = -50; a <= 50; ++a) {
    for (std::int64_t b = 1; b <= 12; ++b) {
      std::int64_t m = floor_mod(a, b);
      EXPECT_GE(m, 0);
      EXPECT_LT(m, b);
      // Division identity: a == b * floor_div(a,b) + floor_mod(a,b).
      EXPECT_EQ(a, b * floor_div(a, b) + m);
    }
  }
}

TEST(IntMath, FloorDivNegativeDivisor) {
  EXPECT_EQ(floor_div(7, -2), -4);
  EXPECT_EQ(floor_div(-7, -2), 3);
  EXPECT_EQ(floor_mod(7, -2), -1);
  EXPECT_EQ(floor_mod(-7, -2), -1);
}

TEST(IntMath, KnownValues) {
  EXPECT_EQ(floor_div(-1, 8), -1);
  EXPECT_EQ(floor_div(0, 8), 0);
  EXPECT_EQ(floor_div(7, 8), 0);
  EXPECT_EQ(floor_div(8, 8), 1);
  EXPECT_EQ(floor_div(-8, 8), -1);
  EXPECT_EQ(floor_div(-9, 8), -2);
  EXPECT_EQ(floor_mod(-1, 8), 7);
  EXPECT_EQ(floor_mod(-8, 8), 0);
  EXPECT_EQ(floor_mod(15, 8), 7);
}

TEST(IntMath, IsPow2) {
  EXPECT_FALSE(is_pow2(0));
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(2));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_TRUE(is_pow2(1ULL << 63));
  EXPECT_FALSE(is_pow2((1ULL << 63) + 1));
}

TEST(IntMath, NextPow2) {
  EXPECT_EQ(next_pow2(0), 1u);
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(2), 2u);
  EXPECT_EQ(next_pow2(3), 4u);
  EXPECT_EQ(next_pow2(1000), 1024u);
  EXPECT_EQ(next_pow2(1024), 1024u);
  EXPECT_EQ(next_pow2(1025), 2048u);
}

TEST(IntMath, CeilDiv) {
  EXPECT_EQ(ceil_div(0, 4), 0u);
  EXPECT_EQ(ceil_div(1, 4), 1u);
  EXPECT_EQ(ceil_div(4, 4), 1u);
  EXPECT_EQ(ceil_div(5, 4), 2u);
}

TEST(IntMath, HllRankCountsLeadingZerosPlusOne) {
  // Within a 32-bit value: top bit set -> rank 1.
  EXPECT_EQ(hll_rank(0x80000000u, 32), 1);
  EXPECT_EQ(hll_rank(0x40000000u, 32), 2);
  EXPECT_EQ(hll_rank(0x00000001u, 32), 32);
  EXPECT_EQ(hll_rank(0x0u, 32), 33);  // all-zero convention: width + 1
}

TEST(IntMath, HllRankMasksHighBits) {
  // Bits above the window must not influence the rank.
  EXPECT_EQ(hll_rank(0xFFFFFFFF00000001ULL, 32), 32);
  EXPECT_EQ(hll_rank(0xFFFFFFFF00000000ULL, 32), 33);
}

TEST(IntMath, HllRankGeometricDistribution) {
  // Over all 16-bit values, exactly half have rank 1, a quarter rank 2, ...
  std::size_t counts[18] = {};
  for (std::uint32_t v = 0; v < (1u << 16); ++v) ++counts[hll_rank(v, 16)];
  EXPECT_EQ(counts[1], 1u << 15);
  EXPECT_EQ(counts[2], 1u << 14);
  EXPECT_EQ(counts[16], 1u);  // value 1
  EXPECT_EQ(counts[17], 1u);  // value 0
}

TEST(IntMath, Log2Pow2) {
  EXPECT_EQ(log2_pow2(1), 0u);
  EXPECT_EQ(log2_pow2(2), 1u);
  EXPECT_EQ(log2_pow2(1u << 16), 16u);
}

}  // namespace
}  // namespace she
