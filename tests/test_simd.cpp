// Differential SIMD-vs-scalar equivalence (docs/INTERNALS.md §13).
//
// The vectorized stage 1 must be *bit-identical* to the scalar reference
// path, not merely statistically close: SHE's accuracy claims ride on the
// exact BobHash32 family and the exact CheckGroup ordering.  Three layers
// are pinned here:
//
//   1. kernels — simd::bobhash32_keys / bobhash32_seeds / hash64_keys lane
//      outputs equal the scalar hashes for every count (covering full
//      vectors plus misaligned tails), and FastDiv32 equals / and % for
//      adversarial divisors;
//   2. GroupClock staging — stage_marks / stage_marks_range /
//      stage_marks_ramp reproduce current_mark()/age() across cycle
//      boundaries and mark widths;
//   3. estimators — every SHE estimator inserted under native dispatch
//      serializes byte-identically to the same stream inserted under
//      SHE_FORCE_SCALAR (ScopedForceScalar), for insert_batch and
//      insert_at_batch, across chunk sizes that misalign every block.
//
// On hardware without a vector backend both sides run scalar and the suite
// degrades to a (still valid) self-consistency check.
#include <sstream>
#include <vector>

#include "common/bobhash.hpp"
#include "common/int_math.hpp"
#include "common/io.hpp"
#include "common/rng.hpp"
#include "common/simd.hpp"
#include "common/simd_hash.hpp"
#include "she/she.hpp"
#include "stream/trace.hpp"
#include <gtest/gtest.h>

namespace she {
namespace {

template <typename T>
std::string serialized(const T& est) {
  std::stringstream ss;
  BinaryWriter w(ss);
  est.save(w);
  return ss.str();
}

// ----------------------------------------------------------------- kernels --

TEST(SimdKernels, Bobhash32KeysMatchesScalar) {
  Rng rng(1);
  for (std::size_t n = 0; n <= 40; ++n) {  // tails: every residue mod 8
    std::vector<std::uint64_t> keys(n);
    for (auto& k : keys) k = rng();
    const std::uint32_t seed = static_cast<std::uint32_t>(rng());
    std::vector<std::uint32_t> native(n), scalar(n);
    simd::bobhash32_keys(keys.data(), n, seed, native.data());
    {
      const simd::ScopedForceScalar pin;
      simd::bobhash32_keys(keys.data(), n, seed, scalar.data());
    }
    const BobHash32 ref(seed);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(native[i], ref(keys[i])) << "n=" << n << " i=" << i;
      ASSERT_EQ(scalar[i], ref(keys[i])) << "n=" << n << " i=" << i;
    }
  }
}

TEST(SimdKernels, Bobhash32SeedsMatchesScalar) {
  Rng rng(2);
  for (std::size_t n = 0; n <= 40; ++n) {
    const std::uint64_t key = rng();
    const std::uint32_t seed0 = static_cast<std::uint32_t>(rng());
    std::vector<std::uint32_t> native(n), scalar(n);
    simd::bobhash32_seeds(key, seed0, n, native.data());
    {
      const simd::ScopedForceScalar pin;
      simd::bobhash32_seeds(key, seed0, n, scalar.data());
    }
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint32_t ref =
          BobHash32(seed0 + static_cast<std::uint32_t>(i))(key);
      ASSERT_EQ(native[i], ref) << "n=" << n << " i=" << i;
      ASSERT_EQ(scalar[i], ref) << "n=" << n << " i=" << i;
    }
  }
}

TEST(SimdKernels, Bobhash32KeysMultiMatchesScalar) {
  // The fused key-major kernel: out[b * k + h] == BobHash32(seed0 + h)(keys[b])
  // for every key count (tail residues) and probe count the estimators use.
  Rng rng(12);
  for (unsigned k : {1u, 3u, 8u, 11u, 16u}) {
    for (std::size_t n = 0; n <= 40; ++n) {
      std::vector<std::uint64_t> keys(n);
      for (auto& key : keys) key = rng();
      const std::uint32_t seed0 = static_cast<std::uint32_t>(rng());
      std::vector<std::uint32_t> native(n * k), scalar(n * k);
      simd::bobhash32_keys_multi(keys.data(), n, seed0, k, native.data());
      {
        const simd::ScopedForceScalar pin;
        simd::bobhash32_keys_multi(keys.data(), n, seed0, k, scalar.data());
      }
      for (std::size_t b = 0; b < n; ++b) {
        for (unsigned h = 0; h < k; ++h) {
          const std::uint32_t ref = BobHash32(seed0 + h)(keys[b]);
          ASSERT_EQ(native[b * k + h], ref) << "k=" << k << " b=" << b;
          ASSERT_EQ(scalar[b * k + h], ref) << "k=" << k << " b=" << b;
        }
      }
    }
  }
}

TEST(SimdKernels, Hash64KeysMatchesScalar) {
  Rng rng(3);
  for (std::size_t n = 0; n <= 20; ++n) {  // tails: every residue mod 4
    std::vector<std::uint64_t> keys(n);
    for (auto& k : keys) k = rng();
    const std::uint64_t seed = rng();
    std::vector<std::uint64_t> native(n), scalar(n);
    simd::hash64_keys(keys.data(), n, seed, native.data());
    {
      const simd::ScopedForceScalar pin;
      simd::hash64_keys(keys.data(), n, seed, scalar.data());
    }
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(native[i], hash64(keys[i], seed)) << "n=" << n << " i=" << i;
      ASSERT_EQ(scalar[i], hash64(keys[i], seed)) << "n=" << n << " i=" << i;
    }
  }
}

TEST(SimdKernels, FastDiv32MatchesHardwareDivide) {
  // Adversarial divisors: 1, powers of two (and neighbours), primes, and
  // the extremes of the 32-bit range; numerators sweep the same corners
  // plus random draws.  The Lemire reciprocal is exact for all u32 n, d.
  const std::uint32_t divisors[] = {1u,       2u,          3u,
                                    7u,       64u,         65u,
                                    1000u,    4093u,       (1u << 16) - 1,
                                    1u << 16, (1u << 16) + 1, 0x7FFFFFFFu,
                                    0x80000000u, 0xFFFFFFFFu};
  const std::uint32_t corners[] = {0u, 1u, 2u, 0x7FFFFFFFu, 0x80000000u,
                                   0xFFFFFFFEu, 0xFFFFFFFFu};
  Rng rng(4);
  for (std::uint32_t d : divisors) {
    const FastDiv32 fd(d);
    for (std::uint32_t n : corners) {
      ASSERT_EQ(fd.div(n), n / d) << "n=" << n << " d=" << d;
      ASSERT_EQ(fd.mod(n), n % d) << "n=" << n << " d=" << d;
    }
    for (int i = 0; i < 10000; ++i) {
      const std::uint32_t n = static_cast<std::uint32_t>(rng());
      ASSERT_EQ(fd.div(n), n / d) << "n=" << n << " d=" << d;
      ASSERT_EQ(fd.mod(n), n % d) << "n=" << n << " d=" << d;
    }
  }
}

TEST(SimdKernels, PositionsGroupsMatchesHardwareDivide) {
  // The fused hash -> cell -> group kernel against plain % and /, across
  // misaligned lengths, a unit group width (the HLL shape, where gid must
  // copy pos), and cell counts around power-of-two corners.
  const std::uint32_t cell_counts[] = {2u,          64u,      1009u,
                                       (1u << 20) - 1, 1u << 20, 0xFFFFFFFFu};
  const std::uint32_t group_widths[] = {1u, 2u, 64u, 1000u};
  Rng rng(11);
  for (std::uint32_t cells : cell_counts) {
    for (std::uint32_t w : group_widths) {
      const FastDiv32 mod_cells(cells);
      const FastDiv32 div_group(w);
      for (std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{7},
                            std::size_t{8}, std::size_t{9}, std::size_t{32},
                            std::size_t{40}}) {
        std::vector<std::uint32_t> h(n), pos(n, 0xAAu), gid(n, 0xAAu);
        for (auto& v : h) v = static_cast<std::uint32_t>(rng());
        simd::positions_groups(h.data(), n, mod_cells, div_group, pos.data(),
                               gid.data());
        for (std::size_t i = 0; i < n; ++i) {
          ASSERT_EQ(pos[i], h[i] % cells)
              << "cells=" << cells << " w=" << w << " i=" << i;
          ASSERT_EQ(gid[i], pos[i] / w)
              << "cells=" << cells << " w=" << w << " i=" << i;
        }
        const simd::ScopedForceScalar scalar_only;
        std::vector<std::uint32_t> pos2(n), gid2(n);
        simd::positions_groups(h.data(), n, mod_cells, div_group, pos2.data(),
                               gid2.data());
        ASSERT_EQ(pos, pos2);
        ASSERT_EQ(gid, gid2);
      }
    }
  }
}

// --------------------------------------------------------- GroupClock staging --

TEST(SimdGroupClock, StagedMarksMatchScalarQueries) {
  Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t groups = 1 + rng.below(300);
    const std::uint64_t window = 8 + rng.below(500);
    const double alpha = 0.1 + rng.uniform() * 3.0;
    const unsigned mark_bits = 1 + static_cast<unsigned>(rng.below(4));
    GroupClock clock(groups,
                     static_cast<std::uint64_t>(
                         static_cast<double>(window) * (1.0 + alpha)),
                     mark_bits);
    // Touch a few groups at scattered times so stored marks differ.
    std::uint64_t t = 0;
    for (int i = 0; i < 50; ++i) {
      t += 1 + rng.below(window);
      clock.touch(rng.below(groups), t);
    }
    // Staged values must equal the scalar per-group queries at several
    // probe times, including exact cycle boundaries.
    const std::uint64_t probes[] = {t, t + 1, t + clock.tcycle() - 1,
                                    t + clock.tcycle(),
                                    t + 3 * clock.tcycle() + rng.below(7)};
    std::vector<std::uint32_t> gids(groups);
    for (std::size_t g = 0; g < groups; ++g)
      gids[g] = static_cast<std::uint32_t>(rng.below(groups));
    std::vector<std::uint32_t> curs(groups);
    std::vector<std::uint64_t> ages(groups);
    for (std::uint64_t pt : probes) {
      const GroupClock::TimeParts p = clock.split(pt);
      clock.stage_marks(gids.data(), groups, p, curs.data(), ages.data());
      for (std::size_t i = 0; i < groups; ++i) {
        ASSERT_EQ(curs[i], clock.current_mark_at(p, gids[i]));
        ASSERT_EQ(ages[i], clock.age(gids[i], pt));
      }
      clock.stage_marks_range(0, groups, p, curs.data(), ages.data());
      for (std::size_t g = 0; g < groups; ++g) {
        ASSERT_EQ(curs[g], clock.current_mark_at(p, g));
        ASSERT_EQ(ages[g], clock.age(g, pt));
      }
      // Ramp kernel: one key per tick, valid while the block stays inside
      // the cycle (the MarkStager precondition).
      const std::int64_t room =
          static_cast<std::int64_t>(clock.tcycle()) - p.rem;
      const std::size_t n = std::min<std::size_t>(
          groups, room > 0 ? static_cast<std::size_t>(room) : 0);
      if (n > 0) {
        clock.stage_marks_ramp(gids.data(), n, p, curs.data());
        for (std::size_t i = 0; i < n; ++i) {
          ASSERT_EQ(curs[i], clock.current_mark(gids[i], pt + i))
              << "ramp lane " << i << " at t=" << pt;
        }
        // Rep kernel: k probes per key, key b at time pt + b — the fused
        // insert shape.  Same in-cycle precondition, over keys.
        for (unsigned k : {1u, 3u, 8u}) {
          std::vector<std::uint32_t> rep_gids(n * k), rep_curs(n * k);
          for (auto& g : rep_gids)
            g = static_cast<std::uint32_t>(rng.below(groups));
          clock.stage_marks_rep(rep_gids.data(), n, k, p, rep_curs.data());
          for (std::size_t b = 0; b < n; ++b) {
            for (unsigned h = 0; h < k; ++h) {
              ASSERT_EQ(rep_curs[b * k + h],
                        clock.current_mark(rep_gids[b * k + h], pt + b))
                  << "rep key " << b << " probe " << h << " at t=" << pt;
            }
          }
        }
      }
    }
  }
}

// ------------------------------------------------------------- estimators --

/// Insert the same trace through `make()` twice — native dispatch vs
/// forced scalar — in `chunk`-sized insert_batch calls, and require
/// byte-identical serialized state.
template <typename Make>
void expect_batch_paths_identical(Make&& make, const stream::Trace& trace,
                                  std::size_t chunk) {
  auto native = make();
  auto scalar = make();
  std::size_t i = 0;
  while (i < trace.size()) {
    const std::size_t n = std::min(chunk, trace.size() - i);
    const std::span<const std::uint64_t> span(trace.data() + i, n);
    native.insert_batch(span);
    {
      const simd::ScopedForceScalar pin;
      scalar.insert_batch(span);
    }
    i += n;
  }
  ASSERT_EQ(serialized(native), serialized(scalar)) << "chunk=" << chunk;
}

/// Same, for insert_at_batch with clustered (repeating + jumping)
/// timestamps that force both the ramp fallback and advance() staging.
template <typename Make>
void expect_at_batch_paths_identical(Make&& make, const stream::Trace& trace,
                                     std::size_t chunk, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::uint64_t> times(trace.size());
  std::uint64_t t = 0;
  for (auto& ti : times) {
    if (rng.below(4) == 0) t += rng.below(50);  // bursts + gaps
    ti = t;
  }
  auto native = make();
  auto scalar = make();
  std::size_t i = 0;
  while (i < trace.size()) {
    const std::size_t n = std::min(chunk, trace.size() - i);
    const std::span<const std::uint64_t> keys(trace.data() + i, n);
    const std::span<const std::uint64_t> ts(times.data() + i, n);
    native.insert_at_batch(keys, ts);
    {
      const simd::ScopedForceScalar pin;
      scalar.insert_at_batch(keys, ts);
    }
    i += n;
  }
  ASSERT_EQ(serialized(native), serialized(scalar)) << "chunk=" << chunk;
}

/// Chunks that cover sub-block tails, primes misaligning every 8-lane
/// sweep, exact block multiples, and one whole-trace call.
const std::size_t kChunks[] = {1, 5, 8, 13, 32, 57, 256, 100000};

stream::Trace zipf(std::uint64_t seed, std::uint64_t len,
                   std::uint64_t universe) {
  stream::ZipfTraceConfig tc;
  tc.length = len;
  tc.universe = universe;
  tc.skew = 0.9;
  tc.seed = seed;
  return stream::zipf_trace(tc);
}

TEST(SimdDifferential, BloomBatchPaths) {
  // k > 1 probes per key exercises the hash-major sweep and the slot
  // budget; the adversarial trial uses 1-bit marks, a partial last group
  // and a tiny window so lazy cleans fire inside blocks (ramp fallback).
  for (int trial = 0; trial < 4; ++trial) {
    SheConfig cfg;
    const bool adversarial = trial % 2 == 1;
    cfg.window = adversarial ? 48 : 1 << 12;
    cfg.cells = adversarial ? 1009 : 1 << 14;
    cfg.group_cells = adversarial ? 16 : 64;
    cfg.alpha = adversarial ? 0.25 : 3.0;
    cfg.mark_bits = adversarial ? 1 : 4;
    cfg.seed = 77 + static_cast<std::uint32_t>(trial);
    const unsigned hashes = trial < 2 ? 8 : 11;  // 11: tail inside each key
    const auto trace = zipf(90 + trial, 4 * cfg.window, 3 * cfg.window);
    for (std::size_t chunk : kChunks) {
      expect_batch_paths_identical(
          [&] { return SheBloomFilter(cfg, hashes); }, trace, chunk);
      expect_at_batch_paths_identical(
          [&] { return SheBloomFilter(cfg, hashes); }, trace, chunk,
          1000 + trial);
    }
  }
}

TEST(SimdDifferential, BloomQueryPaths) {
  SheConfig cfg;
  cfg.window = 1 << 10;
  cfg.cells = 1 << 14;
  cfg.group_cells = 64;
  cfg.alpha = 3.0;
  cfg.seed = 11;
  SheBloomFilter bf(cfg, 8);
  const auto trace = zipf(17, 3 * cfg.window, 2 * cfg.window);
  bf.insert_batch(std::span<const std::uint64_t>(trace.data(), trace.size()));
  for (std::size_t n : {std::size_t{1}, std::size_t{13}, std::size_t{300}}) {
    std::vector<std::uint8_t> native(n), scalar(n);
    const std::span<const std::uint64_t> probes(trace.data(), n);
    bf.contains_batch(probes, std::span<std::uint8_t>(native));
    {
      const simd::ScopedForceScalar pin;
      bf.contains_batch(probes, std::span<std::uint8_t>(scalar));
    }
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(native[i], scalar[i]) << "n=" << n << " i=" << i;
      ASSERT_EQ(native[i] != 0, bf.contains(probes[i])) << "i=" << i;
    }
  }
}

TEST(SimdDifferential, BitmapBatchPaths) {
  for (int trial = 0; trial < 4; ++trial) {
    SheConfig cfg;
    const bool adversarial = trial % 2 == 1;
    cfg.window = adversarial ? 48 : 1 << 12;
    cfg.cells = adversarial ? 1013 : 1 << 14;
    cfg.group_cells = adversarial ? 16 : 64;
    cfg.alpha = 0.2;
    cfg.mark_bits = adversarial ? 1 : 4;
    cfg.seed = 177 + static_cast<std::uint32_t>(trial);
    const auto trace = zipf(190 + trial, 4 * cfg.window, 3 * cfg.window);
    for (std::size_t chunk : kChunks) {
      expect_batch_paths_identical([&] { return SheBitmap(cfg); }, trace,
                                   chunk);
      expect_at_batch_paths_identical([&] { return SheBitmap(cfg); }, trace,
                                      chunk, 2000 + trial);
    }
  }
}

TEST(SimdDifferential, HllBatchPaths) {
  for (int trial = 0; trial < 4; ++trial) {
    SheConfig cfg;
    const bool adversarial = trial % 2 == 1;
    cfg.window = adversarial ? 48 : 1 << 12;
    cfg.cells = adversarial ? 997 : 2048;
    cfg.group_cells = 1;
    cfg.alpha = 0.2;
    cfg.mark_bits = adversarial ? 1 : 4;
    cfg.seed = 277 + static_cast<std::uint32_t>(trial);
    const auto trace = zipf(290 + trial, 4 * cfg.window, 3 * cfg.window);
    for (std::size_t chunk : kChunks) {
      expect_batch_paths_identical([&] { return SheHyperLogLog(cfg); }, trace,
                                   chunk);
      expect_at_batch_paths_identical([&] { return SheHyperLogLog(cfg); },
                                      trace, chunk, 3000 + trial);
    }
  }
}

TEST(SimdDifferential, CountMinBatchPaths) {
  for (int trial = 0; trial < 4; ++trial) {
    SheConfig cfg;
    const bool adversarial = trial % 2 == 1;
    cfg.window = adversarial ? 48 : 1 << 12;
    cfg.cells = adversarial ? 1019 : 1 << 14;
    cfg.group_cells = adversarial ? 16 : 64;
    cfg.alpha = 1.0;
    cfg.mark_bits = adversarial ? 1 : 4;
    cfg.seed = 377 + static_cast<std::uint32_t>(trial);
    const unsigned hashes = trial < 2 ? 8 : 5;
    const auto trace = zipf(390 + trial, 4 * cfg.window, 3 * cfg.window);
    for (std::size_t chunk : kChunks) {
      expect_batch_paths_identical([&] { return SheCountMin(cfg, hashes); },
                                   trace, chunk);
      expect_at_batch_paths_identical([&] { return SheCountMin(cfg, hashes); },
                                      trace, chunk, 4000 + trial);
    }
  }
}

TEST(SimdDifferential, CountMinQueryPaths) {
  SheConfig cfg;
  cfg.window = 1 << 10;
  cfg.cells = 1 << 14;
  cfg.group_cells = 64;
  cfg.alpha = 1.0;
  cfg.seed = 13;
  SheCountMin cm(cfg, 8);
  const auto trace = zipf(19, 3 * cfg.window, 2 * cfg.window);
  cm.insert_batch(std::span<const std::uint64_t>(trace.data(), trace.size()));
  for (std::size_t n : {std::size_t{1}, std::size_t{13}, std::size_t{300}}) {
    std::vector<std::uint64_t> native(n), scalar(n);
    const std::span<const std::uint64_t> probes(trace.data(), n);
    cm.frequency_batch(probes, std::span<std::uint64_t>(native));
    {
      const simd::ScopedForceScalar pin;
      cm.frequency_batch(probes, std::span<std::uint64_t>(scalar));
    }
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(native[i], scalar[i]) << "n=" << n << " i=" << i;
      ASSERT_EQ(native[i], cm.frequency(probes[i])) << "i=" << i;
    }
  }
}

TEST(SimdDifferential, MinHashBatchPaths) {
  // K = m slots per key: the slot budget drops the block to a few keys and
  // every insert sweeps the whole signature (seed-axis SIMD sweep).
  for (int trial = 0; trial < 4; ++trial) {
    SheConfig cfg;
    const bool adversarial = trial % 2 == 1;
    cfg.window = adversarial ? 48 : 1 << 10;
    cfg.cells = trial < 2 ? 64 : 37;  // 37: tail inside every seed sweep
    cfg.group_cells = 1;
    cfg.alpha = 0.2;
    cfg.mark_bits = adversarial ? 1 : 4;
    cfg.seed = 477 + static_cast<std::uint32_t>(trial);
    const auto trace = zipf(490 + trial, 4 * cfg.window, 3 * cfg.window);
    for (std::size_t chunk : kChunks) {
      expect_batch_paths_identical([&] { return SheMinHash(cfg); }, trace,
                                   chunk);
      expect_at_batch_paths_identical([&] { return SheMinHash(cfg); }, trace,
                                      chunk, 5000 + trial);
    }
  }
}

TEST(SimdDifferential, InsertAtBatchMatchesScalarInsertAt) {
  // The batched insert_at must equal the per-key insert_at loop, not just
  // the other batch path.
  SheConfig cfg;
  cfg.window = 256;
  cfg.cells = 1 << 12;
  cfg.group_cells = 64;
  cfg.alpha = 1.0;
  cfg.seed = 23;
  const auto trace = zipf(29, 1024, 512);
  Rng rng(31);
  std::vector<std::uint64_t> times(trace.size());
  std::uint64_t t = 0;
  for (auto& ti : times) {
    if (rng.below(3) == 0) t += rng.below(20);
    ti = t;
  }
  SheCountMin batched(cfg, 8);
  SheCountMin scalar(cfg, 8);
  batched.insert_at_batch(
      std::span<const std::uint64_t>(trace.data(), trace.size()),
      std::span<const std::uint64_t>(times));
  for (std::size_t i = 0; i < trace.size(); ++i)
    scalar.insert_at(trace[i], times[i]);
  EXPECT_EQ(serialized(batched), serialized(scalar));
}

TEST(SimdDifferential, InsertAtBatchValidation) {
  SheConfig cfg;
  cfg.window = 64;
  cfg.cells = 1 << 10;
  cfg.group_cells = 16;
  cfg.alpha = 1.0;
  SheCountMin cm(cfg, 4);
  const std::uint64_t keys[3] = {1, 2, 3};
  const std::uint64_t short_times[2] = {1, 2};
  EXPECT_THROW(cm.insert_at_batch(std::span<const std::uint64_t>(keys),
                                  std::span<const std::uint64_t>(short_times)),
               std::invalid_argument);
  const std::uint64_t backwards[3] = {5, 4, 6};
  EXPECT_THROW(cm.insert_at_batch(std::span<const std::uint64_t>(keys),
                                  std::span<const std::uint64_t>(backwards)),
               std::invalid_argument);
  cm.advance_to(10);
  const std::uint64_t stale_start[3] = {9, 10, 11};
  EXPECT_THROW(cm.insert_at_batch(std::span<const std::uint64_t>(keys),
                                  std::span<const std::uint64_t>(stale_start)),
               std::invalid_argument);
  // A failed validation must not have advanced the clock or mutated state.
  EXPECT_EQ(cm.time(), 10u);
  const std::uint64_t ok_times[3] = {10, 12, 12};
  cm.insert_at_batch(std::span<const std::uint64_t>(keys),
                     std::span<const std::uint64_t>(ok_times));
  EXPECT_EQ(cm.time(), 12u);
}

TEST(SimdDifferential, ShardedRoutingUnchanged) {
  // insert_bulk's chunked hash64 routing must partition exactly like
  // shard_of() (scalar hash64) — verified against per-key sequential
  // routing at a non-power-of-two shard count.
  const auto trace = zipf(37, 20000, 5000);
  SheConfig cfg;
  cfg.window = 1 << 10;
  cfg.cells = 1 << 12;
  cfg.group_cells = 64;
  cfg.alpha = 3.0;
  const auto factory = [&](std::size_t) { return SheBloomFilter(cfg, 4); };
  Sharded<SheBloomFilter> bulk(5, factory);
  Sharded<SheBloomFilter> seq(5, factory);
  bulk.insert_bulk(std::span<const std::uint64_t>(trace.data(), trace.size()),
                   2);
  for (std::uint64_t key : trace) seq.insert(key);
  for (std::size_t s = 0; s < 5; ++s)
    ASSERT_EQ(serialized(bulk.shard(s)), serialized(seq.shard(s))) << s;
}

}  // namespace
}  // namespace she
