// Telemetry subsystem tests: lock-free metric primitives, registry
// identity, Prometheus/JSON export invariants, the RuntimeStats view over
// the pipeline registry, the global enabled() gate around SHE-internals
// instrumentation, and the she_tool surface (`metrics`, `pipeline
// --metrics-out`).  Runs under both the default suite and `ctest -L tsan`
// — the multi-writer tests are the thread-safety surface.
#include "obs/metrics.hpp"

#include <cctype>
#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "commands.hpp"
#include "obs/export.hpp"
#include "obs/she_metrics.hpp"
#include "runtime/runtime_stats.hpp"
#include "she/monitor.hpp"
#include "she/she_bloom.hpp"
#include <gtest/gtest.h>

namespace she::obs {
namespace {

// ------------------------------ primitives ---------------------------------

TEST(Counter, ConcurrentIncrementsSumExactly) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 50000;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t)
    ts.emplace_back([&c] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) c.inc();
    });
  for (auto& t : ts) t.join();
  EXPECT_EQ(c.value(), kThreads * kPerThread);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Gauge, MaxOfIsMonotoneUnderConcurrency) {
  Gauge g;
  std::vector<std::thread> ts;
  for (int t = 0; t < 4; ++t)
    ts.emplace_back([&g, t] {
      for (std::int64_t v = t; v < 10000; v += 4) g.max_of(v);
    });
  for (auto& t : ts) t.join();
  EXPECT_EQ(g.value(), 9999);
  g.max_of(12);  // lower value must not regress the ratchet
  EXPECT_EQ(g.value(), 9999);
  g.set(-5);
  EXPECT_EQ(g.value(), -5);
}

TEST(Histogram, BucketCountsEqualObservationCount) {
  Histogram h;
  // One sample per power of two plus the edge cases.
  std::vector<std::uint64_t> samples = {0, 1, 2, 3, 4, 7, 8, 1023, 1024,
                                        (1ull << 40) + 17, ~0ull};
  std::uint64_t expect_sum = 0;
  for (std::uint64_t s : samples) {
    h.observe(s);
    expect_sum += s;
  }
  Histogram::Snapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, samples.size());
  EXPECT_EQ(snap.sum, expect_sum);
  std::uint64_t bucket_total = 0;
  for (std::uint64_t b : snap.buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, snap.count);
  // Every bucket's samples respect its [lower, upper) range.
  EXPECT_EQ(Histogram::bucket_of(0), 0u);
  EXPECT_EQ(Histogram::bucket_of(1), 1u);
  EXPECT_EQ(Histogram::bucket_of(2), 2u);
  EXPECT_EQ(Histogram::bucket_of(3), 2u);
  EXPECT_EQ(Histogram::bucket_of(4), 3u);
  EXPECT_EQ(Histogram::bucket_of(~0ull), Histogram::kBuckets - 1);
  for (std::size_t i = 1; i + 1 < Histogram::kBuckets; ++i)
    EXPECT_GT(Histogram::upper_bound(i), Histogram::upper_bound(i - 1));
}

TEST(Histogram, ConcurrentObserversSum) {
  Histogram h;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 20000;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t)
    ts.emplace_back([&h] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) h.observe(i & 1023);
    });
  for (auto& t : ts) t.join();
  EXPECT_EQ(h.count(), kThreads * kPerThread);
}

// ------------------------------- registry ----------------------------------

TEST(Registry, SameNameAndLabelsIsSameObject) {
  Registry r;
  Counter& a = r.counter("x_total", "help");
  Counter& b = r.counter("x_total", "help");
  EXPECT_EQ(&a, &b);
  Counter& c = r.counter("x_total", "help", {{"shard", "1"}});
  EXPECT_NE(&a, &c);  // distinct label set = distinct series
  Counter& d = r.counter("x_total", "help", {{"shard", "1"}});
  EXPECT_EQ(&c, &d);
}

TEST(Registry, KindConflictThrows) {
  Registry r;
  r.counter("x_total", "help");
  EXPECT_THROW(r.gauge("x_total", "help"), std::logic_error);
  EXPECT_THROW(r.histogram("x_total", "help"), std::logic_error);
}

TEST(Registry, ResetZeroesValuesKeepsRegistrations) {
  Registry r;
  r.counter("c", "h").inc(7);
  r.gauge("g", "h").set(3);
  r.histogram("hist", "h").observe(9);
  r.reset();
  EXPECT_EQ(r.counter("c", "h").value(), 0u);
  EXPECT_EQ(r.gauge("g", "h").value(), 0);
  EXPECT_EQ(r.histogram("hist", "h").count(), 0u);
  EXPECT_EQ(r.entries().size(), 3u);
}

TEST(Registry, ConcurrentRegistrationIsSafe) {
  Registry r;
  std::vector<std::thread> ts;
  for (int t = 0; t < 4; ++t)
    ts.emplace_back([&r] {
      for (int i = 0; i < 64; ++i)
        r.counter("series_total", "h", {{"i", std::to_string(i & 7)}}).inc();
    });
  for (auto& t : ts) t.join();
  std::uint64_t total = 0;
  for (const Registry::Entry& e : r.entries()) total += e.counter->value();
  EXPECT_EQ(total, 4u * 64);
  EXPECT_EQ(r.entries().size(), 8u);
}

// -------------------------------- export -----------------------------------

// Pull `metric{...} value` / `metric value` samples out of Prometheus text.
std::uint64_t prom_value(const std::string& text, const std::string& line_prefix) {
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line))
    if (line.rfind(line_prefix, 0) == 0)
      return std::stoull(line.substr(line.find_last_of(' ') + 1));
  ADD_FAILURE() << "no sample line starts with: " << line_prefix;
  return 0;
}

TEST(Export, PrometheusHistogramIsCumulativeAndEndsAtCount) {
  Registry r;
  Histogram& h = r.histogram("lat_ns", "latency");
  h.observe(1);    // bucket le="2"
  h.observe(3);    // bucket le="4"
  h.observe(3);
  h.observe(500);  // bucket le="512"
  std::ostringstream os;
  write_prometheus(os, r);
  const std::string text = os.str();
  EXPECT_NE(text.find("# TYPE lat_ns histogram"), std::string::npos);
  EXPECT_EQ(prom_value(text, "lat_ns_bucket{le=\"2\"}"), 1u);
  EXPECT_EQ(prom_value(text, "lat_ns_bucket{le=\"4\"}"), 3u);  // cumulative
  EXPECT_EQ(prom_value(text, "lat_ns_bucket{le=\"512\"}"), 4u);
  EXPECT_EQ(prom_value(text, "lat_ns_bucket{le=\"+Inf\"}"), 4u);
  EXPECT_EQ(prom_value(text, "lat_ns_count"), 4u);
  EXPECT_EQ(prom_value(text, "lat_ns_sum"), 507u);
}

TEST(Export, PrometheusLabelsAndHelpEscaping) {
  Registry r;
  r.counter("c_total", "help with \\ and \n newline",
            {{"path", "a\"b\\c"}})
      .inc(2);
  std::ostringstream os;
  write_prometheus(os, r);
  const std::string text = os.str();
  EXPECT_NE(text.find("# HELP c_total help with \\\\ and \\n newline"),
            std::string::npos);
  EXPECT_NE(text.find("c_total{path=\"a\\\"b\\\\c\"} 2"), std::string::npos);
}

TEST(Export, JsonIsStructurallyValidAndCarriesSchema) {
  Registry r;
  r.counter("c_total", "h", {{"k", "v"}}).inc(5);
  r.gauge("g", "h").set(-3);
  Histogram& h = r.histogram("lat", "h");
  h.observe(10);
  h.observe(100);
  std::ostringstream os;
  write_json(os, r);
  const std::string text = os.str();
  // Structural sanity: balanced braces/brackets outside strings.
  int depth = 0;
  bool in_str = false;
  for (std::size_t i = 0; i < text.size(); ++i) {
    char ch = text[i];
    if (in_str) {
      if (ch == '\\') ++i;
      else if (ch == '"') in_str = false;
    } else if (ch == '"') {
      in_str = true;
    } else if (ch == '{' || ch == '[') {
      ++depth;
    } else if (ch == '}' || ch == ']') {
      ASSERT_GT(depth, 0);
      --depth;
    }
  }
  EXPECT_EQ(depth, 0);
  EXPECT_FALSE(in_str);
  EXPECT_NE(text.find("\"schema_version\":1"), std::string::npos);
  EXPECT_NE(text.find("\"name\":\"c_total\""), std::string::npos);
  EXPECT_NE(text.find("\"value\":5"), std::string::npos);
  EXPECT_NE(text.find("\"value\":-3"), std::string::npos);
  EXPECT_NE(text.find("\"count\":2"), std::string::npos);
}

TEST(Export, JsonEscapesControlCharacters) {
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb"), "a\\nb");
  EXPECT_EQ(json_escape(std::string(1, '\x01')), "\\u0001");
}

// --------------------------- RuntimeStats view ------------------------------

// Minimal field extractor for the flat JSON RuntimeStats::to_json emits.
std::uint64_t json_u64(const std::string& text, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  std::size_t at = text.find(needle);
  EXPECT_NE(at, std::string::npos) << "missing key " << key;
  if (at == std::string::npos) return 0;
  at += needle.size();
  std::uint64_t v = 0;
  while (at < text.size() && std::isdigit(static_cast<unsigned char>(text[at])))
    v = v * 10 + static_cast<std::uint64_t>(text[at++] - '0');
  return v;
}

TEST(RuntimeStatsView, SetRateGuardsDegenerateElapsed) {
  runtime::RuntimeStats st;
  st.inserted = 1000;
  st.set_rate(0.0);
  EXPECT_EQ(st.items_per_sec, 0.0);
  st.set_rate(-1.0);
  EXPECT_EQ(st.items_per_sec, 0.0);
  st.set_rate(1e-15);
  EXPECT_EQ(st.items_per_sec, 0.0);
  st.set_rate(0.5);
  EXPECT_DOUBLE_EQ(st.items_per_sec, 2000.0);
}

TEST(RuntimeStatsView, ToJsonCarriesSchemaAndPerShardSumsMatch) {
  MonitorConfig mcfg;
  mcfg.window = 1 << 12;
  mcfg.memory_bytes = 1 << 16;
  runtime::PipelineOptions pcfg;
  pcfg.shards = 2;
  pcfg.producers = 2;
  ConcurrentMonitor mon(mcfg, pcfg);
  mon.start();
  std::vector<std::thread> producers;
  for (std::size_t p = 0; p < pcfg.producers; ++p)
    producers.emplace_back([&mon, p] {
      for (std::uint64_t i = 0; i < 20000; ++i)
        while (!mon.push(p, i * 2 + p)) {
        }
    });
  for (auto& t : producers) t.join();
  mon.close();

  runtime::RuntimeStats st = mon.stats();
  const std::string text = st.to_json();
  EXPECT_EQ(json_u64(text, "schema_version"),
            static_cast<std::uint64_t>(runtime::RuntimeStats::kSchemaVersion));
  EXPECT_EQ(json_u64(text, "inserted"), 40000u);
  EXPECT_EQ(json_u64(text, "produced"), 40000u);

  // Per-shard rows must sum to the totals, both in the struct and as
  // re-extracted from the serialized form.
  std::uint64_t shard_inserted = 0, shard_drains = 0, shard_publishes = 0;
  for (const runtime::ShardStats& sh : st.per_shard) {
    shard_inserted += sh.inserted;
    shard_drains += sh.drains;
    shard_publishes += sh.publishes;
  }
  EXPECT_EQ(shard_inserted, st.inserted);
  EXPECT_EQ(shard_drains, st.drains);
  EXPECT_EQ(shard_publishes, st.publishes);

  std::size_t arr = text.find("\"per_shard\":[");
  ASSERT_NE(arr, std::string::npos);
  std::uint64_t json_shard_inserted = 0;
  for (std::size_t at = text.find("{\"inserted\":", arr);
       at != std::string::npos; at = text.find("{\"inserted\":", at + 1))
    json_shard_inserted += json_u64(text.substr(at), "inserted");
  EXPECT_EQ(json_shard_inserted, st.inserted);
}

TEST(RuntimeStatsView, StatsAgreeWithPipelineRegistry) {
  MonitorConfig mcfg;
  mcfg.window = 1 << 12;
  mcfg.memory_bytes = 1 << 16;
  runtime::PipelineOptions pcfg;
  pcfg.shards = 2;
  ConcurrentMonitor mon(mcfg, pcfg);
  mon.start();
  for (std::uint64_t i = 0; i < 30000; ++i)
    while (!mon.push(0, i)) {
    }
  mon.close();

  runtime::RuntimeStats st = mon.stats();
  std::uint64_t reg_inserted = 0, reg_produced = 0;
  for (const Registry::Entry& e : mon.metrics_registry().entries()) {
    if (e.name == "she_pipeline_inserted_total")
      reg_inserted += e.counter->value();
    if (e.name == "she_pipeline_produced_total")
      reg_produced += e.counter->value();
  }
  EXPECT_EQ(reg_inserted, st.inserted);
  EXPECT_EQ(reg_produced, st.produced);
  EXPECT_EQ(st.inserted, 30000u);
}

// ----------------------------- enabled() gate -------------------------------

TEST(EnabledGate, SheInstrumentationFrozenWhenDisabled) {
  set_enabled(false);
  default_registry().reset();
  SheConfig cfg;
  cfg.window = 1000;
  cfg.cells = 1 << 12;
  cfg.group_cells = 64;
  cfg.alpha = 1.0;

  SheBloomFilter off(cfg, 4);
  for (std::uint64_t k = 0; k < 2000; ++k) off.insert(k);
  for (std::uint64_t k = 0; k < 100; ++k) (void)off.contains(k);
  EXPECT_EQ(she_metrics().hash_calls.value(), 0u);
  EXPECT_EQ(she_metrics().queries.value(), 0u);
  EXPECT_EQ(she_metrics().groupclock_lazy_clean.value(), 0u);

  set_enabled(true);
  SheBloomFilter on(cfg, 4);
  for (std::uint64_t k = 0; k < 2000; ++k) on.insert(k);
  for (std::uint64_t k = 0; k < 100; ++k) (void)on.contains(k);
  set_enabled(false);

  EXPECT_GT(she_metrics().hash_calls.value(), 0u);
  EXPECT_EQ(she_metrics().queries.value(), 100u);
  std::uint64_t cells = she_metrics().query_cells_young.value() +
                        she_metrics().query_cells_perfect.value() +
                        she_metrics().query_cells_aged.value();
  EXPECT_GT(cells, 0u);
  default_registry().reset();
}

// --------------------------------- CLI --------------------------------------

std::string temp_path(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

std::string slurp(const std::string& path) {
  std::ifstream is(path);
  EXPECT_TRUE(is.good()) << path;
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

TEST(Cli, PipelineMetricsOutExposesRequiredFamilies) {
  const std::string path = temp_path("pipeline_metrics.prom");
  std::ostringstream out;
  int rc = tools::run_cli(
      {"she_tool", "pipeline", "--dataset", "caida", "--length", "60000",
       "--window", "4096", "--shards", "2", "--producers", "2",
       "--metrics-out", path},
      out);
  ASSERT_EQ(rc, 0) << out.str();
  const std::string text = slurp(path);
  // SHE internals (global registry, enabled for the run).
  EXPECT_GT(prom_value(text, "she_groupclock_lazy_clean_total"), 0u);
  EXPECT_NE(text.find("she_query_cells_total{age_class=\"young\"}"),
            std::string::npos);
  EXPECT_NE(text.find("she_query_cells_total{age_class=\"perfect\"}"),
            std::string::npos);
  EXPECT_NE(text.find("she_query_cells_total{age_class=\"aged\"}"),
            std::string::npos);
  // Pipeline registry (always-on, merged into the same dump).
  EXPECT_NE(text.find("she_pipeline_drain_latency_ns_bucket"),
            std::string::npos);
  EXPECT_GT(prom_value(text, "she_pipeline_drain_latency_ns_count"), 0u);
  EXPECT_NE(text.find("she_pipeline_queue_depth"), std::string::npos);
  EXPECT_NE(text.find("she_pipeline_publish_latency_ns"), std::string::npos);
  EXPECT_GT(prom_value(text, "she_pipeline_publish_latency_ns_count"), 0u);
  // The run must not leak an enabled toggle into the rest of the process.
  EXPECT_FALSE(enabled());
}

TEST(Cli, MetricsSubcommandJsonFormat) {
  std::ostringstream out;
  int rc = tools::run_cli(
      {"she_tool", "metrics", "--dataset", "caida", "--length", "30000",
       "--window", "2048", "--format", "json"},
      out);
  ASSERT_EQ(rc, 0) << out.str();
  const std::string text = out.str();
  EXPECT_NE(text.find("\"schema_version\":1"), std::string::npos);
  EXPECT_NE(text.find("\"name\":\"she_hash_calls_total\""), std::string::npos);
  EXPECT_NE(text.find("\"age_class\":\"young\""), std::string::npos);
  EXPECT_FALSE(enabled());
}

TEST(Cli, MetricsRejectsBadFormat) {
  std::ostringstream out;
  EXPECT_EQ(tools::run_cli({"she_tool", "metrics", "--dataset", "caida",
                            "--length", "1000", "--format", "xml"},
                           out),
            2);
}

// ------------------------- Prometheus conformance ---------------------------

TEST(Export, PrometheusBucketBoundsStrictlyIncreaseAndStayMonotone) {
  Registry r;
  Histogram& h = r.histogram("wide_ns", "full-range exercise",
                             {{"op", "query"}});
  // One observation per power of two plus extremes: every bucket moves.
  h.observe(0);
  for (unsigned p = 0; p < 48; ++p) h.observe(std::uint64_t{1} << p);
  h.observe(~std::uint64_t{0});
  std::ostringstream os;
  write_prometheus(os, r);
  const std::string text = os.str();
  // Walk the exposition in order: `le` bounds strictly increase, cumulative
  // counts never decrease, and the series ends at le="+Inf" == _count.
  std::istringstream in(text);
  std::string line;
  double prev_le = -1;
  std::uint64_t prev_count = 0, buckets = 0, inf_count = 0;
  while (std::getline(in, line)) {
    const std::size_t le = line.find("le=\"");
    if (line.rfind("wide_ns_bucket{", 0) != 0 || le == std::string::npos)
      continue;
    ++buckets;
    const std::string bound = line.substr(le + 4, line.find('"', le + 4) -
                                                     (le + 4));
    const std::uint64_t count =
        std::stoull(line.substr(line.find_last_of(' ') + 1));
    EXPECT_GE(count, prev_count) << line;
    prev_count = count;
    if (bound == "+Inf") {
      inf_count = count;
    } else {
      const double b = std::stod(bound);
      EXPECT_GT(b, prev_le) << line;
      prev_le = b;
    }
  }
  EXPECT_GT(buckets, 2u);
  EXPECT_EQ(inf_count, 50u);
  EXPECT_EQ(prom_value(text, "wide_ns_count"), 50u);
}

TEST(Export, PrometheusHelpAndTypePrecedeSamples) {
  Registry r;
  r.counter("a_total", "a").inc();
  r.histogram("b_ns", "b").observe(7);
  std::ostringstream os;
  write_prometheus(os, r);
  const std::string text = os.str();
  for (const char* name : {"a_total", "b_ns"}) {
    const std::size_t help = text.find(std::string("# HELP ") + name);
    const std::size_t type = text.find(std::string("# TYPE ") + name);
    // Samples start at column 0 (comment lines also contain the name, but
    // never at a line start); histograms expose name_bucket/name_sum/... so
    // match on the common prefix.
    const std::size_t first_sample = text.find(std::string("\n") + name);
    ASSERT_NE(help, std::string::npos) << name;
    ASSERT_NE(type, std::string::npos) << name;
    EXPECT_LT(help, type) << name;
    EXPECT_LT(type, first_sample) << name;
  }
}

TEST(Cli, PipelineJsonModeStillEmitsStats) {
  const std::string path = temp_path("pipeline_metrics.json");
  std::ostringstream out;
  int rc = tools::run_cli(
      {"she_tool", "pipeline", "--dataset", "caida", "--length", "20000",
       "--window", "2048", "--json", "--metrics-out", path,
       "--metrics-format", "json"},
      out);
  ASSERT_EQ(rc, 0) << out.str();
  EXPECT_NE(out.str().find("\"schema_version\":" +
                           std::to_string(runtime::RuntimeStats::kSchemaVersion)),
            std::string::npos);
  EXPECT_NE(slurp(path).find("\"schema_version\":1"), std::string::npos);
}

// --------------------------------- tracing ----------------------------------

/// Every trace test starts from a clean, enabled collector and leaves the
/// process-wide toggle off (other tests must not inherit it).
struct TraceFixture : ::testing::Test {
  void SetUp() override {
    trace::set_enabled(true);
    trace::reset();
  }
  void TearDown() override {
    trace::set_enabled(false);
    trace::reset();
  }
};

TEST_F(TraceFixture, DisabledMacroRecordsNothing) {
  trace::set_enabled(false);
  for (int i = 0; i < 100; ++i) {
    SHE_TRACE_SPAN("off.span", "test");
  }
  EXPECT_TRUE(trace::collect().empty());
}

TEST_F(TraceFixture, SpanCarriesNameCategoryAndTraceId) {
  {
    trace::TraceIdScope scope(0xabcdef);
    SHE_TRACE_SPAN("outer", "test");
    SHE_TRACE_SPAN("inner", "test2");
  }
  const auto spans = trace::collect();
  ASSERT_EQ(spans.size(), 2u);
  // Sorted by start: outer opened first, closed last.
  EXPECT_STREQ(spans[0].name, "outer");
  EXPECT_STREQ(spans[0].cat, "test");
  EXPECT_STREQ(spans[1].name, "inner");
  EXPECT_STREQ(spans[1].cat, "test2");
  for (const auto& s : spans) {
    EXPECT_EQ(s.trace_id, 0xabcdefu);
    EXPECT_GE(s.start_ns, 0);
  }
  EXPECT_GE(spans[0].dur_ns, spans[1].dur_ns);  // outer encloses inner
}

TEST_F(TraceFixture, TraceIdScopeRestoresPrevious) {
  trace::set_current_trace_id(7);
  {
    trace::TraceIdScope scope(99);
    EXPECT_EQ(trace::current_trace_id(), 99u);
  }
  EXPECT_EQ(trace::current_trace_id(), 7u);
  trace::set_current_trace_id(0);
}

TEST_F(TraceFixture, RingOverwritesOldestAndStaysBounded) {
  const std::size_t n = 2 * trace::kRingCapacity + 17;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t t = trace::now_ticks();
    trace::record("bounded", "test", t, t, 0);
  }
  const auto spans = trace::collect();
  EXPECT_LE(spans.size(), trace::kRingCapacity);
  EXPECT_GT(spans.size(), trace::kRingCapacity / 2);
  for (const auto& s : spans) EXPECT_STREQ(s.name, "bounded");
}

TEST_F(TraceFixture, ResetHidesRetainedSpans) {
  { SHE_TRACE_SPAN("pre.reset", "test"); }
  ASSERT_FALSE(trace::collect().empty());
  trace::reset();
  EXPECT_TRUE(trace::collect().empty());
  { SHE_TRACE_SPAN("post.reset", "test"); }
  const auto spans = trace::collect();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_STREQ(spans[0].name, "post.reset");
}

TEST_F(TraceFixture, ThreadCursorSeesOnlyNewSpans) {
  { SHE_TRACE_SPAN("before.cursor", "test"); }
  const trace::ThreadCursor cur = trace::thread_cursor();
  { SHE_TRACE_SPAN("first", "test"); }
  { SHE_TRACE_SPAN("second", "test"); }
  const auto spans = trace::spans_since(cur);
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_STREQ(spans[0].name, "first");  // oldest first
  EXPECT_STREQ(spans[1].name, "second");
}

TEST_F(TraceFixture, CollectWindowFiltersOldSpans) {
  { SHE_TRACE_SPAN("old", "test"); }
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  { SHE_TRACE_SPAN("recent", "test"); }
  const auto recent = trace::collect(/*window_ns=*/30'000'000);
  ASSERT_EQ(recent.size(), 1u);
  EXPECT_STREQ(recent[0].name, "recent");
  EXPECT_EQ(trace::collect(0).size(), 2u);  // 0 = everything retained
}

TEST_F(TraceFixture, ConcurrentRecordersAndCollectorsStayCoherent) {
  // The tsan surface: writers hammer their rings while collectors scrape.
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int w = 0; w < 4; ++w) {
    writers.emplace_back([&stop, w] {
      trace::TraceIdScope scope(static_cast<std::uint64_t>(w) + 1);
      while (!stop.load(std::memory_order_relaxed)) {
        SHE_TRACE_SPAN("worker.span", "test");
      }
    });
  }
  std::size_t total = 0;
  for (int i = 0; i < 200 && total < 10'000; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    for (const auto& s : trace::collect()) {
      // Torn reads must have been discarded: every span is well-formed.
      ASSERT_STREQ(s.name, "worker.span");
      ASSERT_STREQ(s.cat, "test");
      ASSERT_GE(s.trace_id, 1u);
      ASSERT_LE(s.trace_id, 4u);
      ++total;
    }
  }
  stop.store(true);
  for (auto& t : writers) t.join();
  EXPECT_GT(total, 0u);
}

TEST_F(TraceFixture, RingsRecycleAcrossThreadChurn) {
  // Many short-lived threads must not grow the ring registry without
  // bound; their spans stay collectable after the threads are gone.
  for (int round = 0; round < 32; ++round) {
    std::thread([] { SHE_TRACE_SPAN("churn.span", "test"); }).join();
  }
  const auto spans = trace::collect();
  std::size_t churn = 0;
  std::set<std::uint32_t> tids;
  for (const auto& s : spans) {
    if (std::string_view(s.name) == "churn.span") {
      ++churn;
      tids.insert(s.tid);
    }
  }
  EXPECT_EQ(churn, 32u);
  // Sequential churn reuses parked rings instead of minting new ids.
  EXPECT_LE(tids.size(), 4u);
}

TEST_F(TraceFixture, ChromeTraceExportIsWellFormed) {
  {
    trace::TraceIdScope scope(0x2a);
    SHE_TRACE_SPAN("chrome \"quoted\"\n", "test");
  }
  std::ostringstream os;
  trace::export_chrome_trace(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(text.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(text.find("\"trace_id\":\"0x2a\""), std::string::npos);
  // The name's quote and newline must arrive escaped (control characters
  // go out as \u00XX).
  EXPECT_NE(text.find("chrome \\\"quoted\\\"\\u000a"), std::string::npos);
  // Structural sanity: balanced braces/brackets outside strings.
  int depth = 0;
  bool in_str = false;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char ch = text[i];
    if (in_str) {
      if (ch == '\\') ++i;
      else if (ch == '"') in_str = false;
    } else if (ch == '"') {
      in_str = true;
    } else if (ch == '{' || ch == '[') {
      ++depth;
    } else if (ch == '}' || ch == ']') {
      ASSERT_GT(depth, 0);
      --depth;
    }
  }
  EXPECT_EQ(depth, 0);
  EXPECT_FALSE(in_str);
}

TEST_F(TraceFixture, TickClockIsMonotoneAndCalibrated) {
  const std::uint64_t a = trace::now_ticks();
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  const std::uint64_t b = trace::now_ticks();
  ASSERT_GT(b, a);
  const std::uint64_t ns = trace::ticks_to_ns(b - a);
  // 10ms sleep must convert to something in [5ms, 500ms] — generous
  // bounds, but a mis-calibrated clock is off by orders of magnitude.
  EXPECT_GT(ns, 5'000'000u);
  EXPECT_LT(ns, 500'000'000u);
}

}  // namespace
}  // namespace she::obs
