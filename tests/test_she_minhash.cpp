// SHE-MH tests: sliding-window Jaccard against the exact oracle.
#include "she/she_minhash.hpp"

#include <cmath>

#include "common/stats.hpp"
#include "stream/oracle.hpp"
#include "stream/trace.hpp"
#include <gtest/gtest.h>

namespace she {
namespace {

SheConfig mh_config(std::uint64_t window, std::size_t slots, double alpha = 0.2) {
  SheConfig cfg;
  cfg.window = window;
  cfg.cells = slots;
  cfg.group_cells = 1;  // paper: w = 1 for SHE-MH
  cfg.alpha = alpha;
  return cfg;
}

TEST(SheMinHash, RequiresUnitGroups) {
  SheConfig cfg = mh_config(100, 64);
  cfg.group_cells = 2;
  EXPECT_THROW(SheMinHash{cfg}, std::invalid_argument);
}

TEST(SheMinHash, IncompatibleSignaturesThrow) {
  SheMinHash a(mh_config(100, 64));
  SheMinHash b(mh_config(100, 128));
  EXPECT_THROW(SheMinHash::jaccard(a, b), std::invalid_argument);

  SheConfig other = mh_config(100, 64);
  other.seed = 99;
  SheMinHash c(other);
  EXPECT_THROW(SheMinHash::jaccard(a, c), std::invalid_argument);
}

TEST(SheMinHash, LockStepEnforced) {
  SheMinHash a(mh_config(100, 64)), b(mh_config(100, 64));
  a.insert(1);
  EXPECT_THROW(SheMinHash::jaccard(a, b), std::invalid_argument);
  b.insert(2);
  EXPECT_NO_THROW(SheMinHash::jaccard(a, b));
}

TEST(SheMinHash, IdenticalStreamsScoreNearOne) {
  constexpr std::uint64_t kWindow = 1024;
  SheMinHash a(mh_config(kWindow, 128)), b(mh_config(kWindow, 128));
  auto trace = stream::distinct_trace(4 * kWindow, 3);
  for (auto k : trace) {
    a.insert(k);
    b.insert(k);
  }
  EXPECT_GT(SheMinHash::jaccard(a, b), 0.95);
}

TEST(SheMinHash, DisjointStreamsScoreNearZero) {
  constexpr std::uint64_t kWindow = 1024;
  SheMinHash a(mh_config(kWindow, 128)), b(mh_config(kWindow, 128));
  auto ta = stream::distinct_trace(4 * kWindow, 3);
  auto tb = stream::distinct_trace(4 * kWindow, 4);
  for (std::size_t i = 0; i < ta.size(); ++i) {
    a.insert(ta[i]);
    b.insert(tb[i]);
  }
  EXPECT_LT(SheMinHash::jaccard(a, b), 0.1);
}

TEST(SheMinHash, TracksOracleJaccardOnCorrelatedStreams) {
  constexpr std::uint64_t kWindow = 2048;
  constexpr std::size_t kSlots = 256;
  SheMinHash a(mh_config(kWindow, kSlots)), b(mh_config(kWindow, kSlots));
  stream::JaccardOracle oracle(kWindow);
  auto pair = stream::relevant_pair(6 * kWindow, 2 * kWindow, 0.6, 0.8, 7);
  RunningStats err;
  for (std::size_t i = 0; i < pair.a.size(); ++i) {
    a.insert(pair.a[i]);
    b.insert(pair.b[i]);
    oracle.insert(pair.a[i], pair.b[i]);
    if (i > 3 * kWindow && i % 1024 == 0) {
      double truth = oracle.jaccard();
      double est = SheMinHash::jaccard(a, b);
      err.add(std::abs(est - truth));
    }
  }
  // MinHash stddev at 256 slots ~ sqrt(J(1-J)/256) ~ 0.03; sliding adds the
  // alpha bias. Allow a generous absolute band.
  EXPECT_LT(err.mean(), 0.12);
}

TEST(SheMinHash, WindowShiftChangesSimilarity) {
  // Streams identical for a while, then diverge; similarity must fall.
  constexpr std::uint64_t kWindow = 1024;
  SheMinHash a(mh_config(kWindow, 128)), b(mh_config(kWindow, 128));
  auto shared = stream::distinct_trace(3 * kWindow, 5);
  for (auto k : shared) {
    a.insert(k);
    b.insert(k);
  }
  double before = SheMinHash::jaccard(a, b);
  auto da = stream::distinct_trace(3 * kWindow, 6);
  auto db = stream::distinct_trace(3 * kWindow, 7);
  for (std::size_t i = 0; i < da.size(); ++i) {
    a.insert(da[i]);
    b.insert(db[i]);
  }
  double after = SheMinHash::jaccard(a, b);
  EXPECT_GT(before, 0.9);
  EXPECT_LT(after, 0.2);
}

TEST(SheMinHash, ClearResets) {
  SheMinHash a(mh_config(100, 64));
  a.insert(1);
  a.clear();
  EXPECT_EQ(a.time(), 0u);
}

TEST(SheMinHash, MemoryCheaperThanStrawmanPerSlot) {
  // 3 bytes + 1 mark bit per slot vs 11 bytes for the straw-man.
  SheMinHash a(mh_config(1000, 512));
  EXPECT_LT(a.memory_bytes(), 512 * 4u);
}

}  // namespace
}  // namespace she
