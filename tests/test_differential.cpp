// Randomized differential testing: independent implementations of the same
// semantics must agree across randomly drawn configurations and workloads.
//
//   * generic CSM engine  vs  specialized estimators (exact agreement)
//   * sharded routing     vs  monolithic per-shard feeding (exact agreement)
//   * serialization       vs  live object (exact agreement)
//   * SHE-BF              vs  exact oracle (one-sidedness)
//
// 20 random trials each, seeds printed on failure for reproduction.
#include <sstream>

#include "common/io.hpp"
#include "common/rng.hpp"
#include "she/csm.hpp"
#include "she/she.hpp"
#include "stream/oracle.hpp"
#include "stream/trace.hpp"
#include <gtest/gtest.h>

namespace she {
namespace {

struct RandomScenario {
  SheConfig cfg;
  unsigned hashes;
  stream::Trace trace;
  std::uint64_t seed;
};

RandomScenario draw_scenario(std::uint64_t seed) {
  Rng rng(seed);
  RandomScenario s;
  s.seed = seed;
  s.cfg.window = 256 + rng.below(4096);
  s.cfg.cells = 1024 << rng.below(4);  // 1K..8K cells
  // group_cells from {1, 8, 16, 64, 128}, never exceeding cells.
  const std::size_t choices[] = {1, 8, 16, 64, 128};
  s.cfg.group_cells = choices[rng.below(5)];
  s.cfg.alpha = 0.1 + rng.uniform() * 3.0;
  s.cfg.beta = 0.7 + rng.uniform() * 0.29;
  s.cfg.seed = static_cast<std::uint32_t>(rng());
  s.cfg.mark_bits = 1 + static_cast<unsigned>(rng.below(4));
  s.hashes = 1 + static_cast<unsigned>(rng.below(10));

  // Workload: mix of zipf and distinct segments.
  std::uint64_t len = 3 * s.cfg.window + rng.below(4 * s.cfg.window);
  if (rng.below(2) == 0) {
    s.trace = stream::distinct_trace(len, seed + 1);
  } else {
    stream::ZipfTraceConfig tc;
    tc.length = len;
    tc.universe = 64 + rng.below(4 * s.cfg.window);
    tc.skew = rng.uniform() * 1.4;
    tc.seed = seed + 2;
    s.trace = stream::zipf_trace(tc);
  }
  return s;
}

TEST(Differential, GenericCsmMatchesSpecializedBloom) {
  for (std::uint64_t trial = 0; trial < 20; ++trial) {
    auto s = draw_scenario(1000 + trial);
    SheBloomFilter special(s.cfg, s.hashes);
    csm::SlidingEstimator<csm::BloomPolicy> generic(
        s.cfg, csm::BloomPolicy{s.hashes, s.cfg.seed});
    Rng rng(s.seed + 3);
    for (std::size_t i = 0; i < s.trace.size(); ++i) {
      special.insert(s.trace[i]);
      generic.insert(s.trace[i]);
      if (i % 41 == 0) {
        std::uint64_t probe = rng();
        ASSERT_EQ(special.contains(probe), csm::contains(generic, probe))
            << "trial seed " << s.seed << " i=" << i;
        ASSERT_EQ(special.contains(s.trace[i]), csm::contains(generic, s.trace[i]))
            << "trial seed " << s.seed << " i=" << i;
      }
    }
  }
}

TEST(Differential, GenericCsmMatchesSpecializedCountMin) {
  for (std::uint64_t trial = 0; trial < 20; ++trial) {
    auto s = draw_scenario(2000 + trial);
    SheCountMin special(s.cfg, s.hashes);
    csm::SlidingEstimator<csm::CountMinPolicy> generic(
        s.cfg, csm::CountMinPolicy{s.hashes, s.cfg.seed});
    for (std::size_t i = 0; i < s.trace.size(); ++i) {
      special.insert(s.trace[i]);
      generic.insert(s.trace[i]);
      if (i % 53 == 0) {
        ASSERT_EQ(special.frequency(s.trace[i]), csm::frequency(generic, s.trace[i]))
            << "trial seed " << s.seed << " i=" << i;
      }
    }
  }
}

TEST(Differential, ShardedMatchesManualRouting) {
  for (std::uint64_t trial = 0; trial < 10; ++trial) {
    auto s = draw_scenario(3000 + trial);
    std::size_t shards = 1 + trial % 5;
    auto factory = [&](std::size_t idx) {
      SheConfig cfg = s.cfg;
      cfg.seed = static_cast<std::uint32_t>(idx) * 7919u + s.cfg.seed;
      return SheBloomFilter(cfg, s.hashes);
    };
    Sharded<SheBloomFilter> routed(shards, factory, s.seed);
    Sharded<SheBloomFilter> bulk(shards, factory, s.seed);
    for (auto k : s.trace) routed.insert(k);
    bulk.insert_bulk(s.trace, 2);
    Rng rng(s.seed + 5);
    for (int q = 0; q < 500; ++q) {
      std::uint64_t probe = rng();
      ASSERT_EQ(sharded_contains(routed, probe), sharded_contains(bulk, probe))
          << "trial seed " << s.seed;
    }
  }
}

TEST(Differential, CheckpointMatchesLiveObject) {
  for (std::uint64_t trial = 0; trial < 10; ++trial) {
    auto s = draw_scenario(4000 + trial);
    SheBloomFilter live(s.cfg, s.hashes);
    for (auto k : s.trace) live.insert(k);

    std::stringstream ss;
    BinaryWriter w(ss);
    live.save(w);
    BinaryReader r(ss);
    SheBloomFilter restored = SheBloomFilter::load(r);

    // Continue both with a second stream; answers stay identical.
    auto more = stream::distinct_trace(2000, s.seed + 6);
    for (auto k : more) {
      live.insert(k);
      restored.insert(k);
    }
    Rng rng(s.seed + 7);
    for (int q = 0; q < 500; ++q) {
      std::uint64_t probe = rng();
      ASSERT_EQ(live.contains(probe), restored.contains(probe))
          << "trial seed " << s.seed;
    }
  }
}

TEST(Differential, OneSidednessAcrossRandomConfigs) {
  for (std::uint64_t trial = 0; trial < 20; ++trial) {
    auto s = draw_scenario(5000 + trial);
    SheBloomFilter bf(s.cfg, s.hashes);
    stream::WindowOracle oracle(s.cfg.window);
    Rng rng(s.seed + 8);
    for (std::size_t i = 0; i < s.trace.size(); ++i) {
      bf.insert(s.trace[i]);
      oracle.insert(s.trace[i]);
      if (i % 29 == 0 && i > 0) {
        std::uint64_t back =
            rng.below(std::min<std::uint64_t>(i, s.cfg.window - 1));
        ASSERT_TRUE(bf.contains(s.trace[i - back]))
            << "trial seed " << s.seed << " false negative at i=" << i;
      }
    }
  }
}

}  // namespace
}  // namespace she
