// Time-based sliding window tests: insert_at/advance_to across the five
// estimators.  The window now counts time units, arrivals may be bursty,
// and gaps (no arrivals) must still age content out.
#include "she/she.hpp"

#include "stream/trace.hpp"
#include <gtest/gtest.h>

namespace she {
namespace {

SheConfig cfg_of(std::uint64_t window, std::size_t cells, std::size_t w,
                 double alpha) {
  SheConfig cfg;
  cfg.window = window;
  cfg.cells = cells;
  cfg.group_cells = w;
  cfg.alpha = alpha;
  return cfg;
}

TEST(TimeBased, BackwardsTimeRejectedEverywhere) {
  SheBloomFilter bf(cfg_of(100, 4096, 64, 1.0), 4);
  bf.insert_at(1, 50);
  EXPECT_THROW(bf.insert_at(2, 49), std::invalid_argument);
  EXPECT_THROW(bf.advance_to(10), std::invalid_argument);
  EXPECT_NO_THROW(bf.insert_at(2, 50));  // same timestamp: a burst

  SheBitmap bm(cfg_of(100, 4096, 64, 0.5));
  bm.insert_at(1, 7);
  EXPECT_THROW(bm.insert_at(1, 3), std::invalid_argument);

  SheCountMin cm(cfg_of(100, 4096, 64, 1.0), 4);
  cm.insert_at(1, 7);
  EXPECT_THROW(cm.advance_to(6), std::invalid_argument);

  SheHyperLogLog hll(cfg_of(100, 512, 1, 0.5));
  hll.insert_at(1, 7);
  EXPECT_THROW(hll.insert_at(1, 2), std::invalid_argument);

  SheMinHash mh(cfg_of(100, 64, 1, 0.5));
  mh.insert_at(1, 7);
  EXPECT_THROW(mh.advance_to(1), std::invalid_argument);
}

TEST(TimeBased, InsertIsInsertAtPlusOne) {
  SheConfig cfg = cfg_of(1000, 8192, 64, 1.0);
  SheBloomFilter a(cfg, 4), b(cfg, 4);
  auto trace = stream::distinct_trace(3000, 3);
  std::uint64_t t = 0;
  for (auto k : trace) {
    a.insert(k);
    b.insert_at(k, ++t);
  }
  for (auto k : stream::distinct_trace(500, 9))
    ASSERT_EQ(a.contains(k), b.contains(k));
  for (std::size_t i = trace.size() - 200; i < trace.size(); ++i)
    ASSERT_EQ(a.contains(trace[i]), b.contains(trace[i]));
}

TEST(TimeBased, GapAgesContentOut) {
  // Insert a marker at t=0s-ish, then nothing for many windows of wall
  // time; advance_to alone must age it out.
  SheConfig cfg = cfg_of(1000, 1 << 16, 64, 1.0);
  SheBloomFilter bf(cfg, 8);
  bf.insert_at(0xABCD, 10);
  EXPECT_TRUE(bf.contains(0xABCD));
  bf.advance_to(10 + 10 * cfg.window);
  // After 10 windows of silence the marker is out-dated; every group's
  // age classification reflects the advanced clock.  (Some groups may be
  // mark-aliased and still hold the bit, but at 64 K cells the probability
  // that all 8 probes alias-and-hold is negligible.)
  EXPECT_FALSE(bf.contains(0xABCD));
}

TEST(TimeBased, BurstAtOneTimestamp) {
  // 500 items arriving at the same instant all belong to the same window.
  SheConfig cfg = cfg_of(100, 1 << 15, 64, 2.0);
  SheBloomFilter bf(cfg, 8);
  auto burst = stream::distinct_trace(500, 5);
  for (auto k : burst) bf.insert_at(k, 42);
  for (auto k : burst) EXPECT_TRUE(bf.contains(k));
  // One window later they are gone together.
  bf.advance_to(42 + 5 * cfg.window);
  std::size_t still = 0;
  for (auto k : burst)
    if (bf.contains(k)) ++still;
  EXPECT_LT(still, 20u);
}

TEST(TimeBased, CardinalityOverTimeWindow) {
  // 50 distinct keys rotate, one per tick, for a while; then traffic drops
  // to 5 keys; the time-window estimate follows.  A 5-key stream cannot
  // refresh the groups on-demand (Eq. 1's failure regime), so this test
  // uses wide marks to keep stale groups detectable.
  SheConfig cfg = cfg_of(1000, 1 << 14, 64, 0.2);
  cfg.mark_bits = 8;
  SheBitmap bm(cfg);
  std::uint64_t t = 0;
  for (int round = 0; round < 3000; ++round) {
    ++t;
    bm.insert_at(hash64(static_cast<std::uint64_t>(round % 50), 1), t);
  }
  double busy = bm.cardinality();
  for (int round = 0; round < 3000; ++round) {
    ++t;
    bm.insert_at(hash64(static_cast<std::uint64_t>(round % 5), 2), t);
  }
  double quiet = bm.cardinality();
  EXPECT_GT(busy, 25.0);
  EXPECT_LT(quiet, 20.0);
}

TEST(TimeBased, FrequencyPerTimeWindow) {
  // Key arrives at 2 per time unit; over a 500-unit window SHE-CM should
  // report roughly 1000 regardless of how long the stream has run.
  SheConfig cfg = cfg_of(500, 1 << 14, 64, 1.0);
  SheCountMin cm(cfg, 8);
  std::uint64_t t = 0;
  for (int round = 0; round < 5000; ++round) {
    ++t;
    cm.insert_at(1234, t);
    cm.insert_at(1234, t);
  }
  std::uint64_t est = cm.frequency(1234);
  EXPECT_GE(est, 1000u);                       // never under (mature probes)
  EXPECT_LE(est, 2u * 2u * cfg.window + 10u);  // at most the relaxed window
}

TEST(TimeBased, MinHashLockStepByTimestamp) {
  SheConfig cfg = cfg_of(200, 64, 1, 0.5);
  SheMinHash a(cfg), b(cfg);
  a.insert_at(1, 10);
  b.insert_at(1, 11);
  EXPECT_THROW((void)SheMinHash::jaccard(a, b), std::invalid_argument);
  a.advance_to(11);  // bring the clocks back into step
  EXPECT_NO_THROW((void)SheMinHash::jaccard(a, b));
}

}  // namespace
}  // namespace she
