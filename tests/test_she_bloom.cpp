// SHE-BF tests.  The load-bearing property is one-sidedness: across any
// stream, any alpha, any group size and any mark width, SHE-BF must never
// report a false negative for an item inside the sliding window.
#include "she/she_bloom.hpp"

#include <tuple>

#include "common/rng.hpp"
#include "stream/oracle.hpp"
#include "stream/trace.hpp"
#include <gtest/gtest.h>

namespace she {
namespace {

SheConfig bf_config(std::uint64_t window, std::size_t cells, double alpha,
                    std::size_t w = 64) {
  SheConfig cfg;
  cfg.window = window;
  cfg.cells = cells;
  cfg.group_cells = w;
  cfg.alpha = alpha;
  return cfg;
}

TEST(SheBloom, RejectsZeroHashes) {
  EXPECT_THROW(SheBloomFilter(bf_config(100, 1024, 1.0), 0), std::invalid_argument);
}

TEST(SheBloom, RecentInsertIsFound) {
  SheBloomFilter bf(bf_config(1000, 1 << 14, 3.0), 8);
  for (std::uint64_t k = 0; k < 500; ++k) bf.insert(k);
  for (std::uint64_t k = 0; k < 500; ++k)
    EXPECT_TRUE(bf.contains(k)) << "key " << k;
}

TEST(SheBloom, OutdatedItemsEventuallyForgotten) {
  // Insert a marker, then push several windows of distinct traffic; the
  // marker must eventually be reported absent (cells recycled).
  SheConfig cfg = bf_config(1000, 1 << 16, 1.0);
  SheBloomFilter bf(cfg, 8);
  bf.insert(0xDEAD);
  auto noise = stream::distinct_trace(10 * cfg.window, 77);
  std::size_t still_present = 0;
  for (std::size_t i = 0; i < noise.size(); ++i) {
    bf.insert(noise[i]);
    if (i % cfg.window == 0 && bf.contains(0xDEAD)) ++still_present;
  }
  EXPECT_FALSE(bf.contains(0xDEAD));
  EXPECT_LT(still_present, 4u);  // gone within a few cleaning cycles
}

TEST(SheBloom, ClearResets) {
  SheBloomFilter bf(bf_config(100, 4096, 1.0), 4);
  bf.insert(42);
  EXPECT_TRUE(bf.contains(42));
  bf.clear();
  EXPECT_EQ(bf.time(), 0u);
  bf.insert(1);  // (42 may or may not alias; absence below must hold for new keys)
  EXPECT_TRUE(bf.contains(1));
}

TEST(SheBloom, MemoryAccountsMarks) {
  SheConfig cfg = bf_config(1000, 1 << 14, 1.0);
  SheBloomFilter bf(cfg, 8);
  EXPECT_GE(bf.memory_bytes(), (std::size_t{1} << 14) / 8);
  EXPECT_LE(bf.memory_bytes(), (std::size_t{1} << 14) / 8 + cfg.groups() + 16);
}

// ---- property sweep: no false negatives, ever -----------------------------

struct SheBfParams {
  std::uint64_t window;
  std::size_t cells;
  std::size_t group_cells;
  double alpha;
  unsigned hashes;
  unsigned mark_bits;
  double zipf_skew;  // < 0 means distinct stream
};

class SheBloomProperty : public ::testing::TestWithParam<SheBfParams> {};

TEST_P(SheBloomProperty, NeverFalseNegative) {
  const auto& p = GetParam();
  SheConfig cfg;
  cfg.window = p.window;
  cfg.cells = p.cells;
  cfg.group_cells = p.group_cells;
  cfg.alpha = p.alpha;
  cfg.mark_bits = p.mark_bits;
  SheBloomFilter bf(cfg, p.hashes);
  stream::WindowOracle oracle(p.window);

  stream::Trace trace;
  if (p.zipf_skew < 0) {
    trace = stream::distinct_trace(6 * p.window, 5);
  } else {
    stream::ZipfTraceConfig tc;
    tc.length = 6 * p.window;
    tc.universe = 4 * p.window;
    tc.skew = p.zipf_skew;
    tc.seed = 5;
    trace = stream::zipf_trace(tc);
  }

  Rng rng(99);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    bf.insert(trace[i]);
    oracle.insert(trace[i]);
    // Query a random in-window item every few inserts.
    if (i % 7 == 0 && i > 0) {
      std::uint64_t back = rng.below(std::min<std::uint64_t>(i, p.window - 1));
      std::uint64_t key = trace[i - back];
      ASSERT_TRUE(oracle.contains(key));
      ASSERT_TRUE(bf.contains(key))
          << "false negative at i=" << i << " key=" << key;
    }
  }
}

TEST_P(SheBloomProperty, FprBoundedOnAbsentKeys) {
  const auto& p = GetParam();
  SheConfig cfg;
  cfg.window = p.window;
  cfg.cells = p.cells;
  cfg.group_cells = p.group_cells;
  cfg.alpha = p.alpha;
  cfg.mark_bits = p.mark_bits;
  SheBloomFilter bf(cfg, p.hashes);

  auto trace = stream::distinct_trace(6 * p.window, 21);
  for (auto k : trace) bf.insert(k);

  // Keys from a disjoint space: any "true" is a false positive.
  std::size_t fp = 0;
  constexpr std::size_t kProbes = 4000;
  auto probes = stream::distinct_trace(kProbes, 1234567);
  for (auto k : probes)
    if (bf.contains(k)) ++fp;
  // Loose sanity bound: with >= 8 bits/window-item budget this stays far
  // below 50% (typical values are orders of magnitude lower).
  EXPECT_LT(static_cast<double>(fp) / kProbes, 0.5);
}

INSTANTIATE_TEST_SUITE_P(
    ParamSweep, SheBloomProperty,
    ::testing::Values(
        SheBfParams{1024, 1 << 14, 64, 3.0, 8, 1, -1.0},
        SheBfParams{1024, 1 << 14, 64, 1.0, 8, 1, -1.0},
        SheBfParams{1024, 1 << 14, 64, 0.3, 8, 1, -1.0},
        SheBfParams{1024, 1 << 14, 32, 2.0, 4, 1, -1.0},
        SheBfParams{1024, 1 << 14, 128, 2.0, 12, 1, -1.0},
        SheBfParams{1024, 1 << 14, 64, 3.0, 8, 1, 1.0},
        SheBfParams{1024, 1 << 14, 64, 1.0, 8, 1, 0.6},
        SheBfParams{1024, 1 << 14, 64, 1.0, 8, 4, 1.0},
        SheBfParams{500, 8192, 16, 2.5, 6, 1, 1.2},
        SheBfParams{333, 1 << 13, 64, 1.7, 8, 2, 0.9}));

TEST(SheBloom, BatchInsertEquivalentToSequential) {
  SheConfig cfg = bf_config(2048, 1 << 16, 2.0);
  SheBloomFilter seq(cfg, 8), batch(cfg, 8);
  auto trace = stream::distinct_trace(3 * cfg.window + 5, 7);  // odd tail
  for (auto k : trace) seq.insert(k);
  batch.insert_batch(trace);
  EXPECT_EQ(seq.time(), batch.time());
  for (std::uint64_t p = 0; p < 3000; ++p) {
    std::uint64_t probe = hash64(p, 21);
    ASSERT_EQ(seq.contains(probe), batch.contains(probe));
  }
  for (std::size_t i = trace.size() - 500; i < trace.size(); ++i)
    ASSERT_EQ(seq.contains(trace[i]), batch.contains(trace[i]));
}

TEST(SheBloom, BatchInsertEmptyAndTiny) {
  SheBloomFilter bf(bf_config(100, 4096, 1.0), 4);
  bf.insert_batch({});
  EXPECT_EQ(bf.time(), 0u);
  std::uint64_t three[] = {1, 2, 3};
  bf.insert_batch(three);
  EXPECT_EQ(bf.time(), 3u);
  EXPECT_TRUE(bf.contains(2));
}

TEST(SheBloom, MoreMemoryLowersFpr) {
  auto fpr_at = [](std::size_t cells) {
    SheConfig cfg = bf_config(2048, cells, 3.0);
    SheBloomFilter bf(cfg, 8);
    auto trace = stream::distinct_trace(6 * cfg.window, 31);
    for (auto k : trace) bf.insert(k);
    std::size_t fp = 0;
    auto probes = stream::distinct_trace(20000, 777777);
    for (auto k : probes)
      if (bf.contains(k)) ++fp;
    return static_cast<double>(fp) / 20000.0;
  };
  double small = fpr_at(1 << 14);
  double large = fpr_at(1 << 17);
  EXPECT_LT(large, small + 1e-9);
  EXPECT_LT(large, 0.01);
}

}  // namespace
}  // namespace she
