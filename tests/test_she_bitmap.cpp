// SHE-BM tests: sliding-window cardinality accuracy against the exact
// oracle, plus the Sec. 5.3 structural claims (legal-group fraction).
#include "she/she_bitmap.hpp"

#include <cmath>

#include "common/stats.hpp"
#include "stream/oracle.hpp"
#include "stream/trace.hpp"
#include <gtest/gtest.h>

namespace she {
namespace {

SheConfig bm_config(std::uint64_t window, std::size_t cells, double alpha = 0.2) {
  SheConfig cfg;
  cfg.window = window;
  cfg.cells = cells;
  cfg.group_cells = 64;
  cfg.alpha = alpha;
  return cfg;
}

TEST(SheBitmap, EmptyEstimatesZero) {
  SheBitmap bm(bm_config(1000, 1 << 13));
  EXPECT_NEAR(bm.cardinality(), 0.0, 1.0);
}

TEST(SheBitmap, TracksWindowCardinalityOnZipfStream) {
  constexpr std::uint64_t kWindow = 4096;
  SheBitmap bm(bm_config(kWindow, 1 << 15, 0.2));
  stream::WindowOracle oracle(kWindow);

  stream::ZipfTraceConfig tc;
  tc.length = 8 * kWindow;
  tc.universe = 4 * kWindow;
  tc.skew = 1.0;
  tc.seed = 3;
  auto trace = stream::zipf_trace(tc);

  RunningStats err;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    bm.insert(trace[i]);
    oracle.insert(trace[i]);
    if (i > 3 * kWindow && i % 512 == 0)  // after warm-up
      err.add(relative_error(static_cast<double>(oracle.cardinality()),
                             bm.cardinality()));
  }
  EXPECT_LT(err.mean(), 0.08) << "mean RE too high";
}

TEST(SheBitmap, DuplicatesDoNotInflateCardinality) {
  constexpr std::uint64_t kWindow = 2048;
  SheBitmap bm(bm_config(kWindow, 1 << 14));
  // 50 distinct keys repeated for many windows.
  for (std::uint64_t i = 0; i < 8 * kWindow; ++i) bm.insert(i % 50);
  EXPECT_NEAR(bm.cardinality(), 50.0, 25.0);
}

TEST(SheBitmap, ExpiredKeysLeaveTheEstimate) {
  constexpr std::uint64_t kWindow = 2048;
  SheBitmap bm(bm_config(kWindow, 1 << 14, 0.2));
  // Phase 1: large cardinality. Phase 2: tiny cardinality for many windows.
  auto burst = stream::distinct_trace(2 * kWindow, 5);
  for (auto k : burst) bm.insert(k);
  for (std::uint64_t i = 0; i < 6 * kWindow; ++i) bm.insert(i % 20);
  EXPECT_LT(bm.cardinality(), 200.0);
}

TEST(SheBitmap, LegalGroupFractionMatchesAlpha) {
  // Legal ages are [beta*N, Tcycle); ages are uniform over [0, Tcycle), so
  // the legal fraction is (Tcycle - beta*N) / Tcycle.
  SheConfig cfg = bm_config(1 << 12, 1 << 15, 0.5);
  cfg.beta = 0.9;
  SheBitmap bm(cfg);
  auto trace = stream::distinct_trace(4 * cfg.window, 9);
  for (auto k : trace) bm.insert(k);
  double expected_fraction =
      (static_cast<double>(cfg.tcycle()) - cfg.beta * static_cast<double>(cfg.window)) /
      static_cast<double>(cfg.tcycle());
  double actual_fraction =
      static_cast<double>(bm.legal_groups()) / static_cast<double>(cfg.groups());
  EXPECT_NEAR(actual_fraction, expected_fraction, 0.05);
}

TEST(SheBitmap, ClearResetsEstimate) {
  SheBitmap bm(bm_config(1000, 8192));
  auto t = stream::distinct_trace(3000, 1);
  for (auto k : t) bm.insert(k);
  bm.clear();
  EXPECT_EQ(bm.time(), 0u);
  EXPECT_NEAR(bm.cardinality(), 0.0, 1.0);
}

// Parameterized: accuracy holds across alpha settings (Fig. 7b's premise
// that alpha in [0.1, 1] works, with moderate degradation at the extremes).
class SheBitmapAlpha : public ::testing::TestWithParam<double> {};

TEST_P(SheBitmapAlpha, ErrorTracksAgedWindowBiasModel) {
  // A distinct stream is SHE-BM's worst case: a group of age a records
  // exactly a distinct items, so lumping legal ages in [beta*N, (1+alpha)*N)
  // biases the estimate by about ((beta + 1 + alpha)/2 - 1) relative — the
  // degradation Fig. 7b shows for large alpha.  Assert the measured error
  // stays within that model plus noise slack.
  double alpha = GetParam();
  constexpr std::uint64_t kWindow = 4096;
  SheConfig cfg = bm_config(kWindow, 1 << 15, alpha);
  SheBitmap bm(cfg);
  stream::WindowOracle oracle(kWindow);
  auto trace = stream::distinct_trace(8 * kWindow, 11);
  RunningStats err;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    bm.insert(trace[i]);
    oracle.insert(trace[i]);
    if (i > 3 * kWindow && i % 512 == 0)
      err.add(relative_error(static_cast<double>(oracle.cardinality()),
                             bm.cardinality()));
  }
  double model_bias = (cfg.beta + 1.0 + alpha) / 2.0 - 1.0;
  EXPECT_LT(err.mean(), model_bias + 0.12) << "alpha=" << alpha;
}

INSTANTIATE_TEST_SUITE_P(AlphaSweep, SheBitmapAlpha,
                         ::testing::Values(0.1, 0.2, 0.3, 0.5, 1.0));

}  // namespace
}  // namespace she
