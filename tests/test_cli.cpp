// CLI tests: argument parsing and every she_tool subcommand, driven
// in-process through run_cli.
#include "commands.hpp"

#include <cstdio>

#include "common/checkpoint.hpp"
#include "common/wal.hpp"
#include <filesystem>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

namespace she::tools {
namespace {

// ------------------------------- ArgMap ------------------------------------

TEST(ArgMap, ParsesFlagsAndValues) {
  auto args = ArgMap::parse({"--window", "1024", "--verbose", "--name", "x"});
  EXPECT_EQ(args.get_u64("window", 0), 1024u);
  EXPECT_TRUE(args.has("verbose"));
  EXPECT_EQ(args.get("name", ""), "x");
  EXPECT_FALSE(args.has("missing"));
}

TEST(ArgMap, PositionalRejected) {
  EXPECT_THROW(ArgMap::parse({"oops"}), std::invalid_argument);
  EXPECT_THROW(ArgMap::parse({"--ok", "1", "stray"}), std::invalid_argument);
}

TEST(ArgMap, RequireThrowsWhenMissing) {
  auto args = ArgMap::parse({});
  EXPECT_THROW((void)args.require("out"), std::invalid_argument);
}

TEST(ArgMap, SizeSuffixes) {
  EXPECT_EQ(ArgMap::parse_size("4096"), 4096u);
  EXPECT_EQ(ArgMap::parse_size("64K"), 64u * 1024);
  EXPECT_EQ(ArgMap::parse_size("64KB"), 64u * 1024);
  EXPECT_EQ(ArgMap::parse_size("2m"), 2u * 1024 * 1024);
  EXPECT_EQ(ArgMap::parse_size("1G"), 1024ull * 1024 * 1024);
  EXPECT_THROW(ArgMap::parse_size("12X"), std::invalid_argument);
  EXPECT_THROW(ArgMap::parse_size(""), std::invalid_argument);
}

TEST(ArgMap, UnusedFlagsTracked) {
  auto args = ArgMap::parse({"--used", "1", "--typo", "2"});
  (void)args.get_u64("used", 0);
  auto stray = args.unused();
  ASSERT_EQ(stray.size(), 1u);
  EXPECT_EQ(stray[0], "typo");
}

TEST(ArgMap, MalformedNumberThrows) {
  auto args = ArgMap::parse({"--alpha", "1.5x"});
  EXPECT_THROW((void)args.get_f64("alpha", 0), std::invalid_argument);
}

// ------------------------------- commands ----------------------------------

std::string temp_path(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(Cli, NoArgsPrintsUsage) {
  std::ostringstream out;
  EXPECT_EQ(run_cli({"she_tool"}, out), 2);
  EXPECT_NE(out.str().find("usage:"), std::string::npos);
}

TEST(Cli, UnknownCommandFails) {
  std::ostringstream out;
  EXPECT_EQ(run_cli({"she_tool", "frobnicate"}, out), 2);
  EXPECT_NE(out.str().find("unknown command"), std::string::npos);
}

TEST(Cli, HelpSucceeds) {
  std::ostringstream out;
  EXPECT_EQ(run_cli({"she_tool", "help"}, out), 0);
}

TEST(Cli, UnknownFlagReported) {
  std::ostringstream out;
  int rc = run_cli({"she_tool", "membership", "--length", "10000",
                    "--bogus-flag", "1"},
                   out);
  EXPECT_EQ(rc, 2);
  EXPECT_NE(out.str().find("bogus-flag"), std::string::npos);
}

TEST(Cli, GenerateAndInfoRoundTrip) {
  std::string path = temp_path("cli_trace.bin");
  std::ostringstream out;
  int rc = run_cli({"she_tool", "generate", "--out", path, "--dataset",
                    "distinct", "--length", "5000", "--seed", "3"},
                   out);
  ASSERT_EQ(rc, 0);
  EXPECT_NE(out.str().find("wrote 5000 items"), std::string::npos);
  EXPECT_NE(out.str().find("5000 distinct"), std::string::npos);

  std::ostringstream info;
  rc = run_cli({"she_tool", "info", "--file", path}, info);
  EXPECT_EQ(rc, 0);
  EXPECT_NE(info.str().find("trace, 5000 items"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Cli, MembershipRunsAndReportsNoFalseNegatives) {
  std::ostringstream out;
  int rc = run_cli({"she_tool", "membership", "--dataset", "distinct",
                    "--length", "200000", "--window", "32768", "--memory",
                    "32K", "--probes", "5000"},
                   out);
  EXPECT_EQ(rc, 0) << out.str();
  EXPECT_NE(out.str().find("false-positive rate"), std::string::npos);
  EXPECT_NE(out.str().find("0/"), std::string::npos);  // zero false negatives
}

TEST(Cli, MembershipFromTraceFile) {
  std::string path = temp_path("cli_trace_mem.bin");
  std::ostringstream gen;
  ASSERT_EQ(run_cli({"she_tool", "generate", "--out", path, "--dataset",
                     "caida", "--length", "100000"},
                    gen),
            0);
  std::ostringstream out;
  int rc = run_cli({"she_tool", "membership", "--trace", path, "--window",
                    "16384", "--memory", "16K"},
                   out);
  EXPECT_EQ(rc, 0) << out.str();
  std::remove(path.c_str());
}

TEST(Cli, CardinalityBitmapAndHll) {
  for (const char* algo : {"bitmap", "hll"}) {
    std::ostringstream out;
    int rc = run_cli({"she_tool", "cardinality", "--algo", algo, "--dataset",
                      "campus", "--length", "200000", "--window", "32768",
                      "--memory", "8K"},
                     out);
    EXPECT_EQ(rc, 0) << algo << ": " << out.str();
    EXPECT_NE(out.str().find("mean relative error"), std::string::npos);
  }
}

TEST(Cli, CardinalityRejectsBadAlgo) {
  std::ostringstream out;
  EXPECT_EQ(run_cli({"she_tool", "cardinality", "--algo", "sketchy"}, out), 2);
}

TEST(Cli, FrequencyPrintsTopK) {
  std::ostringstream out;
  int rc = run_cli({"she_tool", "frequency", "--dataset", "webpage",
                    "--length", "200000", "--window", "32768", "--memory",
                    "256K", "--top", "5"},
                   out);
  EXPECT_EQ(rc, 0) << out.str();
  EXPECT_NE(out.str().find("heavy hitters"), std::string::npos);
  // 5 result rows below the header.
  std::size_t rows = 0;
  std::istringstream lines(out.str());
  std::string line;
  bool in_table = false;
  while (std::getline(lines, line)) {
    if (line.find("estimate") != std::string::npos) {
      in_table = true;
      continue;
    }
    if (in_table && !line.empty()) ++rows;
  }
  EXPECT_EQ(rows, 5u);
}

TEST(Cli, PipelineRunsAndReportsStats) {
  std::ostringstream out;
  int rc = run_cli({"she_tool", "pipeline", "--dataset", "caida", "--length",
                    "120000", "--window", "16384", "--memory", "512K",
                    "--shards", "2", "--producers", "2", "--queue", "1024",
                    "--query-interval-ms", "5", "--top", "3"},
                   out);
  EXPECT_EQ(rc, 0) << out.str();
  EXPECT_NE(out.str().find("items/s"), std::string::npos);
  EXPECT_NE(out.str().find("queries during ingest"), std::string::npos);
  EXPECT_NE(out.str().find("final cardinality"), std::string::npos);
}

TEST(Cli, PipelineJsonOutput) {
  // Lossless policy: exit 0 is deterministic (drop runs now exit 1).
  std::ostringstream out;
  int rc = run_cli({"she_tool", "pipeline", "--dataset", "distinct",
                    "--length", "60000", "--window", "8192", "--shards", "2",
                    "--producers", "1", "--policy", "block", "--json"},
                   out);
  EXPECT_EQ(rc, 0) << out.str();
  EXPECT_EQ(out.str().front(), '{');
  EXPECT_NE(out.str().find("\"items_per_sec\""), std::string::npos);
  EXPECT_NE(out.str().find("\"per_shard\""), std::string::npos);
  EXPECT_NE(out.str().find("\"push_timeouts\""), std::string::npos);
  EXPECT_NE(out.str().find("\"recent_items_per_sec\""), std::string::npos);
}

TEST(Cli, PipelineRejectsBadPolicy) {
  std::ostringstream out;
  EXPECT_EQ(run_cli({"she_tool", "pipeline", "--length", "1000", "--policy",
                     "yolo"},
                    out),
            2);
}

TEST(Cli, PipelineBlockTimeoutPolicyRuns) {
  std::ostringstream out;
  int rc = run_cli({"she_tool", "pipeline", "--dataset", "distinct",
                    "--length", "20000", "--window", "4096", "--shards", "2",
                    "--producers", "1", "--policy", "block-timeout",
                    "--push-timeout-ms", "2000", "--json"},
                   out);
  EXPECT_EQ(rc, 0) << out.str();
}

TEST(Cli, PipelineRejectsBadInjectSpec) {
  std::ostringstream out;
  EXPECT_EQ(run_cli({"she_tool", "pipeline", "--length", "1000", "--inject",
                     "frob:0"},
                    out),
            2);
  EXPECT_NE(out.str().find("fault point"), std::string::npos);
}

TEST(Cli, PipelineResumeRequiresCheckpointDir) {
  std::ostringstream out;
  EXPECT_EQ(run_cli({"she_tool", "pipeline", "--length", "1000", "--resume"},
                    out),
            2);
  EXPECT_NE(out.str().find("--resume requires --checkpoint-dir"),
            std::string::npos)
      << out.str();
}

TEST(Cli, PipelineResumeWithNoFramesFailsLoudly) {
  // A --resume pointed at a directory with no frames for this shard count
  // used to start silently from scratch — exactly what an operator who
  // mistyped a path does NOT want.  Now it is a hard, explained error.
  const std::string dir = temp_path("cli_resume_empty");
  std::filesystem::create_directories(dir);
  std::ostringstream out;
  int rc = run_cli({"she_tool", "pipeline", "--dataset", "distinct",
                    "--length", "1000", "--shards", "2", "--producers", "1",
                    "--checkpoint-dir", dir, "--resume"},
                   out);
  EXPECT_EQ(rc, 2) << out.str();
  EXPECT_NE(out.str().find("no checkpoint frames"), std::string::npos)
      << out.str();
  std::filesystem::remove_all(dir);
}

TEST(Cli, PipelineCheckpointKeepRetainsGenerations) {
  const std::string dir = temp_path("cli_ckpt_keep");
  std::ostringstream out;
  // Checkpoints piggyback on publishes, so force frequent publishes and a
  // small queue (otherwise the whole trace drains in one sweep and only
  // the final close() frame exists — nothing to rotate).
  int rc = run_cli({"she_tool", "pipeline", "--dataset", "distinct",
                    "--length", "40000", "--window", "4096", "--shards", "1",
                    "--producers", "1", "--queue", "1024", "--publish", "1024",
                    "--checkpoint-dir", dir, "--checkpoint-every", "4096",
                    "--checkpoint-keep", "3", "--json"},
                   out);
  EXPECT_EQ(rc, 0) << out.str();
  EXPECT_TRUE(std::filesystem::exists(dir + "/shard-0.ckpt"));
  EXPECT_TRUE(std::filesystem::exists(dir + "/shard-0.ckpt.1"));
  EXPECT_TRUE(std::filesystem::exists(dir + "/shard-0.ckpt.2"));
  EXPECT_FALSE(std::filesystem::exists(dir + "/shard-0.ckpt.3"));

  // The retained generations satisfy the resume guard.
  std::ostringstream out2;
  int rc2 = run_cli({"she_tool", "pipeline", "--dataset", "distinct",
                     "--length", "40000", "--window", "4096", "--shards", "1",
                     "--producers", "1", "--queue", "1024", "--publish", "1024",
                     "--checkpoint-dir", dir, "--checkpoint-every", "4096",
                     "--checkpoint-keep", "3", "--resume", "--json"},
                    out2);
  EXPECT_EQ(rc2, 0) << out2.str();
  std::filesystem::remove_all(dir);
}

#if defined(SHE_FAULT_INJECTION)

TEST(Cli, PipelineExitsNonzeroOnDroppedItems) {
  // Stall the lone worker before it drains anything: a 64-slot ring against
  // 50k items under the drop policy must shed load, and lossy runs exit 1.
  std::ostringstream out;
  int rc = run_cli({"she_tool", "pipeline", "--dataset", "distinct",
                    "--length", "50000", "--window", "4096", "--shards", "1",
                    "--producers", "1", "--queue", "64", "--policy", "drop",
                    "--no-supervise", "--inject", "stall:0:0:150", "--json"},
                   out);
  EXPECT_EQ(rc, 1) << out.str();
  EXPECT_NE(out.str().find("\"dropped\""), std::string::npos);
}

TEST(Cli, PipelineCheckpointFaultResumeRoundTrip) {
  const std::string dir = temp_path("cli_ckpt_dir");
  // Run 1: unsupervised worker killed mid-stream; periodic checkpoints
  // survive it.  The fault makes the run exit 1.
  std::ostringstream out1;
  int rc1 = run_cli({"she_tool", "pipeline", "--dataset", "distinct",
                     "--length", "60000", "--window", "8192", "--shards", "2",
                     "--producers", "1", "--policy", "block", "--no-supervise",
                     "--checkpoint-dir", dir, "--checkpoint-every", "4096",
                     "--publish", "1024", "--inject", "throw:any:20000",
                     "--json"},
                    out1);
  EXPECT_EQ(rc1, 1) << out1.str();
  EXPECT_NE(out1.str().find("\"worker_faults\":1"), std::string::npos)
      << out1.str();

  // Run 2: resume from the surviving frames and replay the same trace; the
  // already-covered per-shard prefixes are skipped and the run is clean.
  std::ostringstream out2;
  int rc2 = run_cli({"she_tool", "pipeline", "--dataset", "distinct",
                     "--length", "60000", "--window", "8192", "--shards", "2",
                     "--producers", "1", "--policy", "block",
                     "--checkpoint-dir", dir, "--checkpoint-every", "4096",
                     "--publish", "1024", "--resume", "--json"},
                    out2);
  EXPECT_EQ(rc2, 0) << out2.str();
  const std::string& js = out2.str();
  const auto pos = js.find("\"skipped_on_resume\":");
  ASSERT_NE(pos, std::string::npos);
  EXPECT_EQ(js.find("\"skipped_on_resume\":0,"), std::string::npos)
      << "expected a nonzero resume skip: " << js;
  std::filesystem::remove_all(dir);
}

#endif  // SHE_FAULT_INJECTION

TEST(Cli, SimilaritySyntheticPair) {
  std::ostringstream out;
  int rc = run_cli({"she_tool", "similarity", "--length", "100000",
                    "--overlap", "0.7", "--window", "8192", "--slots", "256"},
                   out);
  EXPECT_EQ(rc, 0) << out.str();
  EXPECT_NE(out.str().find("estimated Jaccard"), std::string::npos);
  EXPECT_NE(out.str().find("exact Jaccard"), std::string::npos);
}

TEST(Cli, SimilarityLengthMismatchRejected) {
  std::string pa = temp_path("cli_a.bin");
  std::string pb = temp_path("cli_b.bin");
  std::ostringstream tmp;
  ASSERT_EQ(run_cli({"she_tool", "generate", "--out", pa, "--dataset",
                     "distinct", "--length", "1000"},
                    tmp),
            0);
  ASSERT_EQ(run_cli({"she_tool", "generate", "--out", pb, "--dataset",
                     "distinct", "--length", "2000"},
                    tmp),
            0);
  std::ostringstream out;
  EXPECT_EQ(run_cli({"she_tool", "similarity", "--trace-a", pa, "--trace-b",
                     pb, "--window", "512"},
                    out),
            2);
  std::remove(pa.c_str());
  std::remove(pb.c_str());
}

TEST(Cli, MembershipCheckpointSaveResumeInfo) {
  std::string ckpt = temp_path("cli_bf.ckpt");
  std::ostringstream out1;
  int rc = run_cli({"she_tool", "membership", "--dataset", "caida", "--length",
                    "60000", "--window", "16384", "--memory", "16K", "--save",
                    ckpt, "--probes", "2000"},
                   out1);
  ASSERT_EQ(rc, 0) << out1.str();
  EXPECT_NE(out1.str().find("checkpoint saved"), std::string::npos);

  std::ostringstream info;
  ASSERT_EQ(run_cli({"she_tool", "info", "--file", ckpt}, info), 0);
  EXPECT_NE(info.str().find("SHE-BF checkpoint"), std::string::npos);
  EXPECT_NE(info.str().find("stream position: 60000"), std::string::npos);

  std::ostringstream out2;
  rc = run_cli({"she_tool", "membership", "--resume", ckpt, "--dataset",
                "caida", "--length", "30000", "--seed", "2", "--probes",
                "2000"},
               out2);
  EXPECT_EQ(rc, 0) << out2.str();
  std::remove(ckpt.c_str());
}

TEST(Cli, TextTraceIngestion) {
  std::string path = temp_path("cli_keys.txt");
  {
    std::ofstream os(path);
    os << "# flows\n";
    for (int i = 0; i < 3000; ++i)
      os << "10.0." << i % 256 << "." << i / 256 << ":443\n";
  }
  std::ostringstream out;
  int rc = run_cli({"she_tool", "cardinality", "--trace-text", path,
                    "--window", "1024", "--memory", "4K"},
                   out);
  EXPECT_EQ(rc, 0) << out.str();
  EXPECT_NE(out.str().find("mean relative error"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Cli, InfoOnUnknownFileFormat) {
  std::string path = temp_path("cli_junk.bin");
  {
    std::ofstream os(path, std::ios::binary);
    os << "JUNKJUNKJUNK";
  }
  std::ostringstream out;
  EXPECT_EQ(run_cli({"she_tool", "info", "--file", path}, out), 1);
  EXPECT_NE(out.str().find("unknown format"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Cli, VerifyScrubsCheckpointsAndWals) {
  namespace fs = std::filesystem;
  const fs::path root = fs::path(temp_path("cli_verify_root"));
  fs::remove_all(root);
  fs::create_directories(root / "pipe");

  const std::vector<char> payload = {'s', 't', 'a', 't', 'e'};
  const std::string ckpt = (root / "pipe" / "shard-0.ckpt").string();
  she::write_file_atomic(ckpt, she::frame_checkpoint(42, payload));
  {
    she::ShardWal wal((root / "pipe" / "shard-0.wal").string(), {},
                      she::WalScan{});
    const std::uint64_t keys[] = {1, 2, 3};
    ASSERT_TRUE(wal.append(keys, /*client_id=*/7, /*client_seq=*/1));
    wal.flush();
  }

  std::ostringstream ok;
  EXPECT_EQ(run_cli({"she_tool", "verify", "--dir", root.string()}, ok), 0)
      << ok.str();
  EXPECT_NE(ok.str().find("0 corrupt"), std::string::npos) << ok.str();

  // Flip one payload byte: the checkpoint's CRC must catch it and the
  // scrub must name the file and exit nonzero.
  {
    std::fstream f(ckpt, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(-1, std::ios::end);
    f.put('X');
  }
  std::ostringstream bad;
  EXPECT_EQ(run_cli({"she_tool", "verify", "--dir", root.string()}, bad), 1);
  EXPECT_NE(bad.str().find("CORRUPT"), std::string::npos) << bad.str();
  EXPECT_NE(bad.str().find("shard-0.ckpt"), std::string::npos) << bad.str();

  std::ostringstream js;
  EXPECT_EQ(run_cli({"she_tool", "verify", "--dir", root.string(), "--json"},
                    js),
            1);
  EXPECT_NE(js.str().find("\"corrupt\":1"), std::string::npos) << js.str();
  fs::remove_all(root);
}

}  // namespace
}  // namespace she::tools
