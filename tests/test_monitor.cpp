// StreamMonitor façade tests.
#include "she/monitor.hpp"

#include <sstream>

#include "common/bobhash.hpp"
#include "stream/oracle.hpp"
#include "stream/trace.hpp"
#include <gtest/gtest.h>

namespace she {
namespace {

MonitorConfig small_cfg() {
  MonitorConfig cfg;
  cfg.window = 4096;
  cfg.memory_bytes = 256 * 1024;
  return cfg;
}

TEST(Monitor, ConfigValidation) {
  MonitorConfig cfg = small_cfg();
  cfg.window = 0;
  EXPECT_THROW(StreamMonitor{cfg}, std::invalid_argument);

  cfg = small_cfg();
  cfg.memory_bytes = 100;
  EXPECT_THROW(StreamMonitor{cfg}, std::invalid_argument);

  cfg = small_cfg();
  cfg.track_membership = cfg.track_cardinality = cfg.track_frequency = false;
  EXPECT_THROW(StreamMonitor{cfg}, std::invalid_argument);

  cfg = small_cfg();
  cfg.heavy_hitter_slots = 0;
  EXPECT_THROW(StreamMonitor{cfg}, std::invalid_argument);
}

TEST(Monitor, DisabledTasksThrowOnQuery) {
  MonitorConfig cfg = small_cfg();
  cfg.track_membership = false;
  StreamMonitor mon(cfg);
  EXPECT_THROW((void)mon.seen(1), std::logic_error);

  MonitorConfig cfg2 = small_cfg();
  cfg2.track_frequency = false;
  StreamMonitor mon2(cfg2);
  EXPECT_THROW((void)mon2.frequency(1), std::logic_error);
}

TEST(Monitor, BudgetRoughlyRespected) {
  MonitorConfig cfg = small_cfg();
  StreamMonitor mon(cfg);
  EXPECT_LE(mon.memory_bytes(), cfg.memory_bytes + cfg.memory_bytes / 4);
  EXPECT_GE(mon.memory_bytes(), cfg.memory_bytes / 4);
}

TEST(Monitor, TracksAllThreeSignals) {
  MonitorConfig cfg = small_cfg();
  StreamMonitor mon(cfg);
  stream::WindowOracle oracle(cfg.window);

  stream::ZipfTraceConfig tc;
  tc.length = 4 * cfg.window;
  tc.universe = 2 * cfg.window;
  tc.skew = 1.1;
  tc.seed = 3;
  auto trace = stream::zipf_trace(tc);
  for (auto k : trace) {
    mon.insert(k);
    oracle.insert(k);
  }

  EXPECT_TRUE(mon.seen(trace.back()));
  auto rep = mon.report(5);
  EXPECT_EQ(rep.items, trace.size());
  ASSERT_TRUE(rep.cardinality.has_value());
  EXPECT_NEAR(*rep.cardinality, static_cast<double>(oracle.cardinality()),
              0.25 * static_cast<double>(oracle.cardinality()));
  ASSERT_EQ(rep.top.size(), 5u);
  // The top-1 key's reported estimate should be near its exact frequency.
  EXPECT_GE(rep.top[0].estimate + 5, oracle.frequency(rep.top[0].key));
}

TEST(Monitor, HllVariant) {
  MonitorConfig cfg = small_cfg();
  cfg.use_hll = true;
  cfg.window = 1 << 15;
  StreamMonitor mon(cfg);
  auto trace = stream::distinct_trace(3 * cfg.window, 5);
  for (auto k : trace) mon.insert(k);
  auto rep = mon.report(1);
  ASSERT_TRUE(rep.cardinality.has_value());
  EXPECT_NEAR(*rep.cardinality, static_cast<double>(cfg.window),
              0.3 * static_cast<double>(cfg.window));
}

TEST(Monitor, CheckpointRoundTrip) {
  MonitorConfig cfg = small_cfg();
  StreamMonitor mon(cfg);
  auto trace = stream::distinct_trace(2 * cfg.window, 7);
  for (auto k : trace) mon.insert(k);

  std::stringstream ss;
  BinaryWriter w(ss);
  mon.save(w);
  BinaryReader r(ss);
  StreamMonitor back = StreamMonitor::load(r);

  EXPECT_EQ(back.time(), mon.time());
  // Membership answers identical.
  for (std::uint64_t p = 0; p < 1000; ++p) {
    std::uint64_t probe = hash64(p, 9);
    ASSERT_EQ(back.seen(probe), mon.seen(probe));
  }
  // Point frequencies identical (sketch roundtrips exactly).
  for (std::size_t i = trace.size() - 200; i < trace.size(); ++i)
    ASSERT_EQ(back.frequency(trace[i]), mon.frequency(trace[i]));
  // Heavy-hitter candidates travel with the checkpoint, so top-k answers
  // are identical immediately after restore (not only after a re-warm).
  {
    auto before = mon.report(5).top;
    auto after = back.report(5).top;
    ASSERT_EQ(after.size(), before.size());
    for (std::size_t i = 0; i < before.size(); ++i) {
      EXPECT_EQ(after[i].key, before[i].key);
      EXPECT_EQ(after[i].estimate, before[i].estimate);
    }
  }
  // Both continue identically.
  auto more = stream::distinct_trace(1000, 11);
  for (auto k : more) {
    mon.insert(k);
    back.insert(k);
  }
  EXPECT_EQ(back.report(1).items, mon.report(1).items);
}

TEST(Monitor, ClearResets) {
  StreamMonitor mon(small_cfg());
  mon.insert(1);
  mon.clear();
  EXPECT_EQ(mon.time(), 0u);
  EXPECT_EQ(mon.report(3).items, 0u);
}

TEST(Monitor, MembershipOnlyConfiguration) {
  MonitorConfig cfg = small_cfg();
  cfg.track_cardinality = false;
  cfg.track_frequency = false;
  StreamMonitor mon(cfg);
  for (std::uint64_t k = 0; k < 1000; ++k) mon.insert(k);
  EXPECT_TRUE(mon.seen(500));
  auto rep = mon.report(3);
  EXPECT_FALSE(rep.cardinality.has_value());
  EXPECT_TRUE(rep.top.empty());
  // The full budget flows to the one enabled sketch.
  EXPECT_GE(mon.memory_bytes(), cfg.memory_bytes / 2);
}

}  // namespace
}  // namespace she
