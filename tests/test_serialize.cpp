// Serialization tests: checkpoint/restore round-trips must resume with
// *identical* answers, and corrupted streams must be rejected loudly.
#include <sstream>

#include "common/bit_array.hpp"
#include "common/io.hpp"
#include "common/packed_array.hpp"
#include "she/she.hpp"
#include "stream/trace.hpp"
#include <gtest/gtest.h>

namespace she {
namespace {

TEST(BinaryIo, PrimitivesRoundTrip) {
  std::stringstream ss;
  BinaryWriter w(ss);
  w.u8(0xAB);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFULL);
  w.i64(-42);
  w.f64(3.14159);
  w.u64_vector({1, 2, 3});

  BinaryReader r(ss);
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_DOUBLE_EQ(r.f64(), 3.14159);
  EXPECT_EQ(r.u64_vector(), (std::vector<std::uint64_t>{1, 2, 3}));
}

TEST(BinaryIo, TruncationThrows) {
  std::stringstream ss;
  BinaryWriter w(ss);
  w.u32(7);
  BinaryReader r(ss);
  EXPECT_THROW((void)r.u64(), std::runtime_error);
}

TEST(BinaryIo, TagMismatchThrows) {
  std::stringstream ss;
  BinaryWriter w(ss);
  w.tag("AAAA");
  BinaryReader r(ss);
  EXPECT_THROW(r.expect_tag("BBBB"), std::runtime_error);
}

TEST(BinaryIo, ImplausibleVectorLengthThrows) {
  std::stringstream ss;
  BinaryWriter w(ss);
  w.u64(~std::uint64_t{0});  // absurd length header
  BinaryReader r(ss);
  EXPECT_THROW((void)r.u64_vector(), std::runtime_error);
}

TEST(BinaryIo, ShortStreamThrowsTypedSerializeError) {
  std::stringstream ss;
  BinaryWriter w(ss);
  w.u32(7);
  BinaryReader r(ss);
  EXPECT_THROW((void)r.u64(), SerializeError);
}

TEST(BinaryIo, VectorLengthBoundedByRemainingStream) {
  // A plausible-looking length (1M elements) over a near-empty seekable
  // stream must be rejected *before* allocating, from the length check —
  // not by limping through a giant read.
  std::stringstream ss;
  BinaryWriter w(ss);
  w.u64(1u << 20);
  w.u64(42);  // only one element actually present
  BinaryReader r(ss);
  EXPECT_THROW((void)r.u64_vector(), SerializeError);

  std::stringstream ss32;
  BinaryWriter w32(ss32);
  w32.u64(1u << 20);
  w32.u32(7);
  BinaryReader r32(ss32);
  EXPECT_THROW((void)r32.u32_vector(), SerializeError);
}

TEST(BinaryIo, ExactLengthVectorStillLoads) {
  std::stringstream ss;
  BinaryWriter w(ss);
  w.u64_vector({5, 6, 7, 8});
  BinaryReader r(ss);
  EXPECT_EQ(r.u64_vector(), (std::vector<std::uint64_t>{5, 6, 7, 8}));
}

TEST(Serialize, BitArrayRoundTrip) {
  BitArray a(1000);
  for (std::size_t i = 0; i < 1000; i += 3) a.set(i);
  std::stringstream ss;
  BinaryWriter w(ss);
  a.save(w);
  BinaryReader r(ss);
  BitArray b = BitArray::load(r);
  ASSERT_EQ(b.size(), a.size());
  for (std::size_t i = 0; i < 1000; ++i) ASSERT_EQ(b.test(i), a.test(i));
}

TEST(Serialize, PackedArrayRoundTrip) {
  PackedArray a(333, 5);
  for (std::size_t i = 0; i < 333; ++i) a.set(i, i % 32);
  std::stringstream ss;
  BinaryWriter w(ss);
  a.save(w);
  BinaryReader r(ss);
  PackedArray b = PackedArray::load(r);
  ASSERT_EQ(b.size(), a.size());
  ASSERT_EQ(b.cell_bits(), a.cell_bits());
  for (std::size_t i = 0; i < 333; ++i) ASSERT_EQ(b.get(i), a.get(i));
}

TEST(Serialize, WrongTypeTagRejected) {
  BitArray a(10);
  std::stringstream ss;
  BinaryWriter w(ss);
  a.save(w);
  BinaryReader r(ss);
  EXPECT_THROW((void)PackedArray::load(r), std::runtime_error);
}

template <typename T, typename SaveFn, typename Equal>
void roundtrip_and_continue(T& original, SaveFn make_copy, Equal answers_equal,
                            const stream::Trace& more) {
  T copy = make_copy(original);
  ASSERT_TRUE(answers_equal(original, copy));
  // Both must evolve identically when the stream continues.
  for (auto k : more) {
    original.insert(k);
    copy.insert(k);
  }
  ASSERT_TRUE(answers_equal(original, copy));
}

TEST(Serialize, SheBloomResumesIdentically) {
  SheConfig cfg;
  cfg.window = 2048;
  cfg.cells = 1 << 14;
  cfg.group_cells = 64;
  cfg.alpha = 2.0;
  SheBloomFilter bf(cfg, 8);
  auto trace = stream::distinct_trace(3 * cfg.window, 3);
  for (auto k : trace) bf.insert(k);

  auto copy_of = [](const SheBloomFilter& x) {
    std::stringstream ss;
    BinaryWriter w(ss);
    x.save(w);
    BinaryReader r(ss);
    return SheBloomFilter::load(r);
  };
  auto equal = [&](const SheBloomFilter& a, const SheBloomFilter& b) {
    if (a.time() != b.time()) return false;
    for (std::uint64_t p = 0; p < 2000; ++p) {
      std::uint64_t probe = hash64(p, 71);
      if (a.contains(probe) != b.contains(probe)) return false;
    }
    for (std::size_t i = trace.size() - 500; i < trace.size(); ++i)
      if (a.contains(trace[i]) != b.contains(trace[i])) return false;
    return true;
  };
  roundtrip_and_continue(bf, copy_of, equal, stream::distinct_trace(3000, 9));
}

TEST(Serialize, SheBitmapResumesIdentically) {
  SheConfig cfg;
  cfg.window = 2048;
  cfg.cells = 1 << 13;
  cfg.group_cells = 64;
  cfg.alpha = 0.2;
  SheBitmap bm(cfg);
  for (auto k : stream::distinct_trace(3 * cfg.window, 5)) bm.insert(k);

  auto copy_of = [](const SheBitmap& x) {
    std::stringstream ss;
    BinaryWriter w(ss);
    x.save(w);
    BinaryReader r(ss);
    return SheBitmap::load(r);
  };
  auto equal = [](const SheBitmap& a, const SheBitmap& b) {
    return a.time() == b.time() && a.cardinality() == b.cardinality();
  };
  roundtrip_and_continue(bm, copy_of, equal, stream::distinct_trace(3000, 11));
}

TEST(Serialize, SheHllResumesIdentically) {
  SheConfig cfg;
  cfg.window = 2048;
  cfg.cells = 512;
  cfg.group_cells = 1;
  cfg.alpha = 0.2;
  SheHyperLogLog hll(cfg);
  for (auto k : stream::distinct_trace(3 * cfg.window, 7)) hll.insert(k);

  auto copy_of = [](const SheHyperLogLog& x) {
    std::stringstream ss;
    BinaryWriter w(ss);
    x.save(w);
    BinaryReader r(ss);
    return SheHyperLogLog::load(r);
  };
  auto equal = [](const SheHyperLogLog& a, const SheHyperLogLog& b) {
    return a.time() == b.time() && a.cardinality() == b.cardinality();
  };
  roundtrip_and_continue(hll, copy_of, equal, stream::distinct_trace(3000, 13));
}

TEST(Serialize, SheCountMinResumesIdentically) {
  SheConfig cfg;
  cfg.window = 2048;
  cfg.cells = 1 << 13;
  cfg.group_cells = 64;
  cfg.alpha = 1.0;
  SheCountMin cm(cfg, 8);
  auto trace = stream::distinct_trace(3 * cfg.window, 15);
  for (auto k : trace) cm.insert(k);

  auto copy_of = [](const SheCountMin& x) {
    std::stringstream ss;
    BinaryWriter w(ss);
    x.save(w);
    BinaryReader r(ss);
    return SheCountMin::load(r);
  };
  auto equal = [&](const SheCountMin& a, const SheCountMin& b) {
    if (a.time() != b.time()) return false;
    for (std::size_t i = 0; i < trace.size(); i += 97)
      if (a.frequency(trace[i]) != b.frequency(trace[i])) return false;
    return true;
  };
  roundtrip_and_continue(cm, copy_of, equal, stream::distinct_trace(3000, 17));
}

TEST(Serialize, SheMinHashResumesIdentically) {
  SheConfig cfg;
  cfg.window = 1024;
  cfg.cells = 128;
  cfg.group_cells = 1;
  cfg.alpha = 0.2;
  SheMinHash a(cfg), b(cfg);
  auto pair = stream::relevant_pair(3 * cfg.window, 2 * cfg.window, 0.6, 0.8, 9);
  for (std::size_t i = 0; i < pair.a.size(); ++i) {
    a.insert(pair.a[i]);
    b.insert(pair.b[i]);
  }

  std::stringstream ss;
  BinaryWriter w(ss);
  a.save(w);
  BinaryReader r(ss);
  SheMinHash a2 = SheMinHash::load(r);
  EXPECT_DOUBLE_EQ(SheMinHash::jaccard(a, b), SheMinHash::jaccard(a2, b));
}

TEST(Serialize, CorruptedEstimatorStreamRejected) {
  SheConfig cfg;
  cfg.window = 100;
  cfg.cells = 1024;
  cfg.group_cells = 64;
  cfg.alpha = 1.0;
  SheBloomFilter bf(cfg, 4);
  std::stringstream ss;
  BinaryWriter w(ss);
  bf.save(w);
  std::string data = ss.str();
  // Truncate the payload.
  std::stringstream cut(data.substr(0, data.size() / 2));
  BinaryReader r(cut);
  EXPECT_THROW((void)SheBloomFilter::load(r), std::runtime_error);
}

}  // namespace
}  // namespace she
