// Generic software-sweep engine tests: parity with the hand-written
// SoftSheBloomFilter (same sweep arithmetic, same query) and the Sec. 3.2
// invariants for arbitrary policies.
#include "she/csm_soft.hpp"

#include "common/rng.hpp"
#include "she/soft_bloom.hpp"
#include "stream/trace.hpp"
#include <gtest/gtest.h>

namespace she::csm {
namespace {

SheConfig soft_cfg(std::uint64_t window, std::size_t cells, double alpha,
                   std::uint32_t seed = 0) {
  SheConfig cfg;
  cfg.window = window;
  cfg.cells = cells;
  cfg.group_cells = 64;  // ignored by the sweep
  cfg.alpha = alpha;
  cfg.seed = seed;
  return cfg;
}

TEST(CsmSoft, MatchesHandWrittenSoftBloom) {
  SheConfig cfg = soft_cfg(1024, 1 << 13, 2.0, 5);
  SoftSlidingEstimator<BloomPolicy> generic(cfg, BloomPolicy{8, cfg.seed});
  SoftSheBloomFilter manual(cfg, 8);
  auto trace = stream::distinct_trace(6 * cfg.window, 3);
  Rng rng(7);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    generic.insert(trace[i]);
    manual.insert(trace[i]);
    if (i % 37 == 0) {
      std::uint64_t probe = rng();
      ASSERT_EQ(contains(generic, probe), manual.contains(probe)) << "i=" << i;
      ASSERT_EQ(contains(generic, trace[i]), manual.contains(trace[i]))
          << "i=" << i;
    }
  }
}

TEST(CsmSoft, CellAgesMatchHandWritten) {
  SheConfig cfg = soft_cfg(6, 12, 1.0);  // the paper's Fig. 3 geometry
  cfg.group_cells = 1;
  SoftSlidingEstimator<BitmapPolicy> generic(cfg, BitmapPolicy{});
  SoftSheBloomFilter manual(cfg, 1);
  for (int i = 0; i < 30; ++i) {
    generic.insert(static_cast<std::uint64_t>(i));
    manual.insert(static_cast<std::uint64_t>(i));
  }
  for (std::size_t pos = 0; pos < 12; ++pos)
    ASSERT_EQ(generic.cell_age(pos), manual.cell_age(pos)) << "pos " << pos;
}

TEST(CsmSoft, AdvanceToSweepsDuringGaps) {
  SheConfig cfg = soft_cfg(100, 1000, 1.0);  // Tcycle = 200
  SoftSlidingEstimator<BloomPolicy> bf(cfg, BloomPolicy{4, 0});
  bf.insert_at(42, 10);
  EXPECT_TRUE(contains(bf, 42));
  bf.advance_to(10 + 5 * cfg.tcycle());  // silence: sweep wipes everything
  EXPECT_FALSE(contains(bf, 42));
}

TEST(CsmSoft, LongGapWholeArrayWipe) {
  SheConfig cfg = soft_cfg(100, 1000, 1.0);
  SoftSlidingEstimator<CountMinPolicy> cm(cfg, CountMinPolicy{4, 0});
  for (int i = 0; i < 50; ++i) cm.insert(7);
  bool any_nonzero = false;
  cm.advance_to(cm.time() + 10 * cfg.tcycle());
  for (unsigned i = 0; i < 4; ++i)
    if (cm.probe(7, i).value != 0) any_nonzero = true;
  EXPECT_FALSE(any_nonzero);
}

TEST(CsmSoft, BackwardsTimeRejected) {
  SheConfig cfg = soft_cfg(100, 1000, 1.0);
  SoftSlidingEstimator<BloomPolicy> bf(cfg, BloomPolicy{4, 0});
  bf.insert_at(1, 50);
  EXPECT_THROW(bf.advance_to(49), std::invalid_argument);
}

TEST(CsmSoft, ClearResets) {
  SheConfig cfg = soft_cfg(100, 1000, 1.0);
  SoftSlidingEstimator<BloomPolicy> bf(cfg, BloomPolicy{4, 0});
  bf.insert(1);
  bf.clear();
  EXPECT_EQ(bf.time(), 0u);
}

}  // namespace
}  // namespace she::csm
