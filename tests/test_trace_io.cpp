// Trace file IO tests.
#include "stream/trace_io.hpp"

#include <cstdio>
#include <sstream>

#include <gtest/gtest.h>

namespace she::stream {
namespace {

TEST(TraceIo, StreamRoundTrip) {
  Trace t = distinct_trace(10000, 3);
  std::stringstream ss;
  save_trace(ss, t);
  Trace back = load_trace(ss);
  EXPECT_EQ(back, t);
}

TEST(TraceIo, EmptyTraceRoundTrip) {
  std::stringstream ss;
  save_trace(ss, {});
  EXPECT_TRUE(load_trace(ss).empty());
}

TEST(TraceIo, BadMagicRejected) {
  std::stringstream ss;
  ss << "NOPE12345678";
  EXPECT_THROW((void)load_trace(ss), std::runtime_error);
}

TEST(TraceIo, TruncationRejected) {
  Trace t = distinct_trace(100, 1);
  std::stringstream ss;
  save_trace(ss, t);
  std::string data = ss.str();
  std::stringstream cut(data.substr(0, data.size() - 40));
  EXPECT_THROW((void)load_trace(cut), std::runtime_error);
}

TEST(TraceIo, FileRoundTrip) {
  Trace t = zipf_trace({.length = 5000, .universe = 1000, .skew = 1.0, .seed = 9,
                        .key_offset = 0});
  std::string path = ::testing::TempDir() + "/she_trace_test.bin";
  save_trace_file(path, t);
  Trace back = load_trace_file(path);
  EXPECT_EQ(back, t);
  std::remove(path.c_str());
}

TEST(TextKeys, ParsesNumbersCommentsAndStrings) {
  std::stringstream ss;
  ss << "# flow log\n"
     << "42\n"
     << "   7   \n"
     << "\n"
     << "10.0.0.1:443\n"
     << "10.0.0.1:443\n"
     << "10.0.0.2:443\n";
  Trace t = load_text_keys(ss);
  ASSERT_EQ(t.size(), 5u);
  EXPECT_EQ(t[0], 42u);
  EXPECT_EQ(t[1], 7u);
  EXPECT_EQ(t[2], t[3]);  // identical strings -> identical keys
  EXPECT_NE(t[2], t[4]);
}

TEST(TextKeys, HugeDecimalFallsBackToHash) {
  std::stringstream ss;
  ss << "123456789012345678901234567890\n";  // > 19 digits: hash, don't stoull
  Trace t = load_text_keys(ss);
  ASSERT_EQ(t.size(), 1u);
}

TEST(TextKeys, EmptyInputGivesEmptyTrace) {
  std::stringstream ss;
  ss << "\n# only comments\n\n";
  EXPECT_TRUE(load_text_keys(ss).empty());
}

TEST(TextKeys, MissingFileThrows) {
  EXPECT_THROW((void)load_text_keys_file("/nonexistent/keys.txt"),
               std::runtime_error);
}

TEST(TraceIo, MissingFileThrows) {
  EXPECT_THROW((void)load_trace_file("/nonexistent/dir/trace.bin"),
               std::runtime_error);
}

}  // namespace
}  // namespace she::stream
