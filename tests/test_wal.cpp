// Write-ahead backlog log tests: frame codec, crash-shape recovery scans
// (torn tails, mid-log corruption, sequence regressions), the per-client
// idempotence table, and the ShardWal append/dedup/compact/repair cycle.
// This binary carries the ctest label `tsan` (see tests/CMakeLists.txt):
// producers for one shard serialize appends on the ShardWal mutex, and
// that surface must stay clean under ThreadSanitizer.
#include "common/wal.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include <gtest/gtest.h>

namespace she {
namespace {

std::string temp_dir(const char* name) {
  auto dir = std::filesystem::path(::testing::TempDir()) / name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir.string();
}

std::uint64_t torn_count() {
  return obs::default_registry()
      .counter("she_wal_torn_tail_total",
               "WAL tails truncated as torn or corrupt during recovery scans")
      .value();
}

std::vector<char> file_bytes(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(is), std::istreambuf_iterator<char>()};
}

void write_file(const std::string& path, std::span<const char> bytes) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

WalFrame data_frame(std::uint64_t seq, std::uint64_t start,
                    std::span<const std::uint64_t> keys,
                    std::uint64_t client_id = 0, std::uint64_t client_seq = 0) {
  WalFrame f;
  f.kind = kWalData;
  f.seq = seq;
  f.start_offset = start;
  f.client_id = client_id;
  f.client_seq = client_seq;
  f.payload.resize(keys.size() * 8);
  for (std::size_t i = 0; i < keys.size(); ++i)
    for (int b = 0; b < 8; ++b)
      f.payload[8 * i + b] = static_cast<char>((keys[i] >> (8 * b)) & 0xff);
  return f;
}

TEST(WalMode, NamesRoundTrip) {
  EXPECT_EQ(wal_mode_from("off"), WalMode::kOff);
  EXPECT_EQ(wal_mode_from("async"), WalMode::kAsync);
  EXPECT_EQ(wal_mode_from("fsync"), WalMode::kFsync);
  EXPECT_STREQ(to_string(WalMode::kAsync), "async");
  EXPECT_THROW((void)wal_mode_from("sync"), std::invalid_argument);
  EXPECT_THROW((void)wal_mode_from(""), std::invalid_argument);
}

TEST(WalFrame, CodecRoundTripThroughFile) {
  const std::string dir = temp_dir("wal_codec");
  const std::string path = dir + "/shard-0.wal";
  const std::uint64_t k1[] = {1, 2, 3};
  const std::uint64_t k2[] = {0xFFFFFFFFFFFFFFFFull, 42};
  const auto f1 = frame_wal(data_frame(1, 0, k1, 77, 9));
  const auto f2 = frame_wal(data_frame(2, 3, k2, 77, 10));
  std::vector<char> all(f1);
  all.insert(all.end(), f2.begin(), f2.end());
  write_file(path, all);

  const WalScan scan = read_wal(path);
  ASSERT_EQ(scan.frames.size(), 2u);
  EXPECT_EQ(scan.frames[0].keys(), (std::vector<std::uint64_t>{1, 2, 3}));
  EXPECT_EQ(scan.frames[1].keys(),
            (std::vector<std::uint64_t>{0xFFFFFFFFFFFFFFFFull, 42}));
  EXPECT_EQ(scan.frames[0].start_offset, 0u);
  EXPECT_EQ(scan.frames[1].start_offset, 3u);
  EXPECT_EQ(scan.end_offset, 5u);
  EXPECT_EQ(scan.next_seq, 3u);
  EXPECT_EQ(scan.valid_bytes, all.size());
  EXPECT_EQ(scan.dropped_bytes, 0u);
  ASSERT_EQ(scan.client_seqs.count(77), 1u);
  EXPECT_EQ(scan.client_seqs.at(77), 10u);
  std::filesystem::remove_all(dir);
}

TEST(WalRead, MissingFileIsEmptyScan) {
  const WalScan scan = read_wal("/nonexistent/definitely/not/here.wal");
  EXPECT_TRUE(scan.frames.empty());
  EXPECT_EQ(scan.next_seq, 1u);
  EXPECT_EQ(scan.end_offset, 0u);
}

TEST(WalRead, TornTailAtEveryTruncationLength) {
  const std::string dir = temp_dir("wal_torn");
  const std::string path = dir + "/shard-0.wal";
  const std::uint64_t k1[] = {10, 11};
  const std::uint64_t k2[] = {12, 13, 14};
  const auto f1 = frame_wal(data_frame(1, 0, k1));
  const auto f2 = frame_wal(data_frame(2, 2, k2));
  std::vector<char> all(f1);
  all.insert(all.end(), f2.begin(), f2.end());

  for (std::size_t n = 0; n < all.size(); n += 7) {
    write_file(path, std::span<const char>(all.data(), n));
    const std::uint64_t before = torn_count();
    const WalScan scan = read_wal(path);
    // Whole frames before the cut survive; the torn tail is reported for
    // truncation and counted exactly when bytes were dropped.
    const std::size_t whole = n >= all.size() ? 2 : (n >= f1.size() ? 1 : 0);
    EXPECT_EQ(scan.frames.size(), whole) << "cut at " << n;
    EXPECT_EQ(scan.valid_bytes, whole == 1 ? f1.size() : 0u) << "cut at " << n;
    EXPECT_EQ(scan.dropped_bytes, n - scan.valid_bytes) << "cut at " << n;
    EXPECT_EQ(torn_count(), before + (scan.dropped_bytes > 0 ? 1 : 0));
  }
  std::filesystem::remove_all(dir);
}

TEST(WalRead, MidLogCorruptionKeepsPrefix) {
  const std::string dir = temp_dir("wal_midcorrupt");
  const std::string path = dir + "/shard-0.wal";
  const std::uint64_t k1[] = {1};
  const std::uint64_t k2[] = {2};
  const auto f1 = frame_wal(data_frame(1, 0, k1));
  const auto f2 = frame_wal(data_frame(2, 1, k2));
  std::vector<char> all(f1);
  all.insert(all.end(), f2.begin(), f2.end());
  // One flipped bit anywhere in the second frame kills it and everything
  // behind it, but the first frame's prefix is kept.
  for (std::size_t pos : {std::size_t{0}, std::size_t{9}, f2.size() - 1}) {
    auto bad = all;
    bad[f1.size() + pos] = static_cast<char>(
        static_cast<unsigned char>(bad[f1.size() + pos]) ^ 0x40);
    write_file(path, bad);
    const WalScan scan = read_wal(path);
    ASSERT_EQ(scan.frames.size(), 1u) << "flip at " << pos;
    EXPECT_EQ(scan.valid_bytes, f1.size());
    EXPECT_EQ(scan.dropped_bytes, f2.size());
  }
  std::filesystem::remove_all(dir);
}

TEST(WalRead, SeqRegressionAndOffsetGapStopTheScan) {
  const std::string dir = temp_dir("wal_seqreg");
  const std::string path = dir + "/shard-0.wal";
  const std::uint64_t k[] = {5};

  // Frame seq repeats: the second frame is not a continuation of this log
  // (e.g. bytes of an older generation left behind) and must be dropped.
  auto all = frame_wal(data_frame(3, 0, k));
  const auto dup = frame_wal(data_frame(3, 1, k));
  all.insert(all.end(), dup.begin(), dup.end());
  write_file(path, all);
  WalScan scan = read_wal(path);
  EXPECT_EQ(scan.frames.size(), 1u);
  EXPECT_EQ(scan.dropped_bytes, dup.size());

  // A data frame that rewinds the accepted-item offset is equally bogus.
  all = frame_wal(data_frame(1, 0, std::span<const std::uint64_t>(k, 1)));
  const auto rewind = frame_wal(data_frame(2, 0, k));
  all.insert(all.end(), rewind.begin(), rewind.end());
  write_file(path, all);
  scan = read_wal(path);
  EXPECT_EQ(scan.frames.size(), 1u);
  EXPECT_EQ(scan.end_offset, 1u);
  std::filesystem::remove_all(dir);
}

TEST(ClientSeqTable, RecordHighSnapshotRestore) {
  ClientSeqTable t;
  EXPECT_TRUE(t.record(7, 1));
  EXPECT_TRUE(t.record(7, 2));
  EXPECT_FALSE(t.record(7, 2));  // replay
  EXPECT_FALSE(t.record(7, 1));  // older replay
  EXPECT_TRUE(t.record(8, 10));
  EXPECT_TRUE(t.record(0, 5));  // id 0 = no identity, never deduplicated
  EXPECT_TRUE(t.record(0, 5));
  EXPECT_EQ(t.high(7), 2u);
  EXPECT_EQ(t.high(9), 0u);

  ClientSeqTable other;
  other.restore(t.snapshot());
  EXPECT_FALSE(other.record(7, 2));
  EXPECT_TRUE(other.record(7, 3));
  // restore() merges by max, never regresses.
  other.restore({{7, 1}});
  EXPECT_EQ(other.high(7), 3u);
}

TEST(ShardWal, AppendScanRoundTripAndDedup) {
  const std::string dir = temp_dir("wal_append");
  const std::string path = dir + "/shard-0.wal";
  const std::uint64_t b1[] = {1, 2, 3};
  const std::uint64_t b2[] = {4, 5};
  {
    ShardWal wal(path, {}, WalScan{});
    EXPECT_TRUE(wal.append(b1, 42, 1));
    EXPECT_TRUE(wal.append(b2, 42, 2));
    EXPECT_FALSE(wal.append(b2, 42, 2));  // lost-ack replay: skip, re-ack
    EXPECT_FALSE(wal.append(b1, 42, 1));
    EXPECT_TRUE(wal.append(b1, 0, 0));  // no identity: always accepted
  }
  const WalScan scan = read_wal(path);
  ASSERT_EQ(scan.frames.size(), 3u);
  EXPECT_EQ(scan.end_offset, 8u);
  EXPECT_EQ(scan.frames[1].start_offset, 3u);
  EXPECT_EQ(scan.client_seqs.at(42), 2u);

  // Reopen from the scan: dedup state and offsets continue seamlessly.
  ShardWal wal(path, {}, scan);
  EXPECT_FALSE(wal.append(b2, 42, 2));
  EXPECT_TRUE(wal.append(b2, 42, 3));
  const WalScan again = read_wal(path);
  ASSERT_EQ(again.frames.size(), 4u);
  EXPECT_EQ(again.frames[3].start_offset, 8u);
  EXPECT_EQ(again.end_offset, 10u);
  std::filesystem::remove_all(dir);
}

TEST(ShardWal, OpenTruncatesTornTail) {
  const std::string dir = temp_dir("wal_open_torn");
  const std::string path = dir + "/shard-0.wal";
  const std::uint64_t keys[] = {9, 8, 7};
  auto all = frame_wal(data_frame(1, 0, keys));
  const std::size_t whole = all.size();
  all.insert(all.end(), {'g', 'a', 'r', 'b', 'a', 'g', 'e'});
  write_file(path, all);

  const WalScan scan = read_wal(path);
  EXPECT_EQ(scan.dropped_bytes, 7u);
  {
    ShardWal wal(path, {}, scan);
    const std::uint64_t more[] = {6};
    EXPECT_TRUE(wal.append(more, 0, 0));
  }
  // The garbage is gone and the appended frame sits right behind the
  // valid prefix: the whole file parses with nothing dropped.
  const WalScan after = read_wal(path);
  EXPECT_EQ(after.dropped_bytes, 0u);
  ASSERT_EQ(after.frames.size(), 2u);
  EXPECT_EQ(after.frames[1].start_offset, 3u);
  EXPECT_GT(file_bytes(path).size(), whole);
  std::filesystem::remove_all(dir);
}

TEST(ShardWal, CompactRetiresCheckpointedFramesKeepsSeqTable) {
  const std::string dir = temp_dir("wal_compact");
  const std::string path = dir + "/shard-0.wal";
  ShardWal::Options opt;
  opt.compact_min_bytes = 0;  // compact unconditionally for the test
  {
    ShardWal wal(path, opt, WalScan{});
    const std::uint64_t b1[] = {1, 2, 3};
    const std::uint64_t b2[] = {4, 5};
    const std::uint64_t b3[] = {6};
    ASSERT_TRUE(wal.append(b1, 11, 1));
    ASSERT_TRUE(wal.append(b2, 11, 2));
    ASSERT_TRUE(wal.append(b3, 12, 1));

    // Checkpoint reached offset 4: the first frame (items [0,3)) retires,
    // the straddling and later frames survive.
    wal.compact(4);
    WalScan scan = read_wal(path);
    ASSERT_EQ(scan.frames.size(), 2u);
    EXPECT_EQ(scan.frames[0].start_offset, 3u);
    EXPECT_EQ(scan.end_offset, 6u);
    EXPECT_EQ(scan.client_seqs.at(11), 2u);  // via the seq-table frame
    EXPECT_EQ(scan.client_seqs.at(12), 1u);

    // Checkpoint caught up: everything retires, dedup state persists.
    wal.compact(6);
    scan = read_wal(path);
    EXPECT_TRUE(scan.frames.empty());
    EXPECT_EQ(scan.end_offset, 6u);
    EXPECT_EQ(scan.client_seqs.at(11), 2u);

    // Appends continue at the preserved offset; replays still dedup.
    const std::uint64_t b4[] = {7, 8};
    EXPECT_FALSE(wal.append(b4, 11, 2));
    EXPECT_TRUE(wal.append(b4, 11, 3));
  }
  const WalScan scan = read_wal(path);
  ASSERT_EQ(scan.frames.size(), 1u);
  EXPECT_EQ(scan.frames[0].start_offset, 6u);
  EXPECT_EQ(scan.end_offset, 8u);

  // A resumed ShardWal over the compacted log still refuses old seqs.
  ShardWal wal(path, opt, scan);
  const std::uint64_t b5[] = {9};
  EXPECT_FALSE(wal.append(b5, 11, 3));
  EXPECT_TRUE(wal.append(b5, 11, 4));
  std::filesystem::remove_all(dir);
}

TEST(ShardWal, CompactCrashShapesNeverLoseTheOldLog) {
  // Compaction rewrites into "<path>.tmp" and renames over the log, so a
  // crash at any instant leaves either the old log (crash before the
  // rename — possibly with a stale tmp beside it) or the new one (crash
  // after).  Both shapes must recover to the same replay suffix and
  // dedup state.
  const std::string dir = temp_dir("wal_compact_crash");
  const std::string path = dir + "/shard-0.wal";
  ShardWal::Options opt;
  opt.compact_min_bytes = 0;
  const std::uint64_t b1[] = {1, 2, 3};
  const std::uint64_t b2[] = {4, 5};
  const std::uint64_t b3[] = {6, 7};
  {
    ShardWal wal(path, opt, WalScan{});
    ASSERT_TRUE(wal.append(b1, 21, 1));
    ASSERT_TRUE(wal.append(b2, 21, 2));
    ASSERT_TRUE(wal.append(b3, 22, 1));
  }

  // Crash shape 1: a previous compaction died mid-rewrite, leaving a
  // partial tmp file.  Recovery reads only the log; the next compaction
  // truncates and replaces the leftover.
  const std::string tmp = path + ".tmp";
  write_file(tmp, std::vector<char>{'h', 'a', 'l', 'f'});
  WalScan scan = read_wal(path);
  ASSERT_EQ(scan.frames.size(), 3u);
  {
    ShardWal wal(path, opt, scan);
    wal.compact(5);  // retires b1 and b2; b3 survives
  }
  EXPECT_FALSE(std::filesystem::exists(tmp)) << "tmp renamed over the log";
  scan = read_wal(path);
  ASSERT_EQ(scan.frames.size(), 1u);
  EXPECT_EQ(scan.frames[0].start_offset, 5u);
  EXPECT_EQ(scan.end_offset, 7u);
  EXPECT_EQ(scan.client_seqs.at(21), 2u);  // dedup state via the seq table
  EXPECT_EQ(scan.client_seqs.at(22), 1u);

  // Crash shape 2: power cut right before the rename — the old (longer)
  // log is still in place next to a *complete* tmp rewrite.  The tmp is
  // dead weight: recovery scans the log, and appends continue on it.
  const auto old_log = file_bytes(path);
  write_file(tmp, old_log);  // any complete file: it must be ignored
  scan = read_wal(path);
  {
    ShardWal wal(path, opt, scan);
    EXPECT_FALSE(wal.append(b2, 21, 2));  // replay still dedups
    const std::uint64_t b4[] = {8};
    EXPECT_TRUE(wal.append(b4, 21, 3));
  }
  scan = read_wal(path);
  ASSERT_EQ(scan.frames.size(), 2u);
  EXPECT_EQ(scan.frames[1].start_offset, 7u);
  EXPECT_EQ(scan.end_offset, 8u);

  // Crash shape 3: torn tail *behind* a compacted log (the crash hit a
  // later append).  The recovery scan keeps the seq-table + frames and
  // drops only the tail; a fresh compact still works on the result.
  auto bytes = file_bytes(path);
  bytes.insert(bytes.end(), {'t', 'o', 'r', 'n'});
  write_file(path, bytes);
  scan = read_wal(path);
  EXPECT_EQ(scan.dropped_bytes, 4u);
  {
    ShardWal wal(path, opt, scan);
    wal.compact(8);  // everything retires
  }
  scan = read_wal(path);
  EXPECT_TRUE(scan.frames.empty());
  EXPECT_EQ(scan.end_offset, 8u);
  EXPECT_EQ(scan.client_seqs.at(21), 3u);
  std::filesystem::remove_all(dir);
}

TEST(ShardWal, FsyncModeGroupCommitAndConcurrentAppends) {
  const std::string dir = temp_dir("wal_fsync");
  const std::string path = dir + "/shard-0.wal";
  ShardWal::Options opt;
  opt.mode = WalMode::kFsync;
  opt.fsync_interval_bytes = 1 << 20;  // group commit: flush() settles it
  constexpr int kThreads = 4;
  constexpr int kPerThread = 64;
  {
    ShardWal wal(path, opt, WalScan{});
    std::vector<std::thread> ts;
    for (int t = 0; t < kThreads; ++t) {
      ts.emplace_back([&wal, t] {
        for (int i = 0; i < kPerThread; ++i) {
          const std::uint64_t key = static_cast<std::uint64_t>(t) * 1000 + i;
          ASSERT_TRUE(wal.append(std::span<const std::uint64_t>(&key, 1),
                                 static_cast<std::uint64_t>(t) + 1,
                                 static_cast<std::uint64_t>(i) + 1));
        }
      });
    }
    for (auto& t : ts) t.join();
    wal.flush();
  }
  const WalScan scan = read_wal(path);
  EXPECT_EQ(scan.dropped_bytes, 0u);
  EXPECT_EQ(scan.frames.size(),
            static_cast<std::size_t>(kThreads) * kPerThread);
  EXPECT_EQ(scan.end_offset, static_cast<std::uint64_t>(kThreads) * kPerThread);
  // Offsets are contiguous under concurrent producers: every frame starts
  // where the previous one ended.
  std::uint64_t at = 0;
  for (const WalFrame& f : scan.frames) {
    EXPECT_EQ(f.start_offset, at);
    at = f.end_offset();
  }
  for (int t = 0; t < kThreads; ++t)
    EXPECT_EQ(scan.client_seqs.at(static_cast<std::uint64_t>(t) + 1),
              static_cast<std::uint64_t>(kPerThread));
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace she
