// GroupClock tests — the correctness core of the hardware SHE version.
#include "she/group_clock.hpp"

#include <gtest/gtest.h>

#include "common/int_math.hpp"

namespace she {
namespace {

TEST(GroupClock, RejectsBadArguments) {
  EXPECT_THROW(GroupClock(0, 100), std::invalid_argument);
  EXPECT_THROW(GroupClock(4, 0), std::invalid_argument);
}

TEST(GroupClock, OffsetsEvenlySpacedAndNonPositive) {
  GroupClock c(4, 100);
  EXPECT_EQ(c.offset(0), 0);
  EXPECT_EQ(c.offset(1), -25);
  EXPECT_EQ(c.offset(2), -50);
  EXPECT_EQ(c.offset(3), -75);
}

TEST(GroupClock, AgeAlwaysInCycleRange) {
  GroupClock c(7, 113);
  for (std::uint64_t t = 0; t < 500; ++t) {
    for (std::size_t g = 0; g < 7; ++g) {
      EXPECT_LT(c.age(g, t), 113u);
    }
  }
}

TEST(GroupClock, AgeAdvancesByOnePerTickUntilWrap) {
  GroupClock c(4, 100);
  for (std::size_t g = 0; g < 4; ++g) {
    std::uint64_t prev = c.age(g, 10);
    for (std::uint64_t t = 11; t < 300; ++t) {
      std::uint64_t a = c.age(g, t);
      if (a != 0) {
        EXPECT_EQ(a, prev + 1) << "g=" << g << " t=" << t;
      }
      prev = a;
    }
  }
}

TEST(GroupClock, GroupZeroBoundariesAtCycleMultiples) {
  GroupClock c(4, 100);
  EXPECT_EQ(c.age(0, 0), 0u);
  EXPECT_EQ(c.age(0, 99), 99u);
  EXPECT_EQ(c.age(0, 100), 0u);
  EXPECT_EQ(c.age(0, 250), 50u);
}

TEST(GroupClock, MarkFlipsOncePerCycle) {
  GroupClock c(1, 50, 1);
  std::uint64_t flips = 0;
  std::uint64_t prev = c.current_mark(0, 0);
  for (std::uint64_t t = 1; t <= 500; ++t) {
    std::uint64_t m = c.current_mark(0, t);
    if (m != prev) ++flips;
    prev = m;
  }
  EXPECT_EQ(flips, 10u);  // 500 / 50
}

TEST(GroupClock, MarkBoundariesOffsetPerGroup) {
  GroupClock c(2, 100);
  // Group 1 has offset -50: its mark flips at t = 50, 150, ...
  std::uint64_t m_before = c.current_mark(1, 49);
  std::uint64_t m_after = c.current_mark(1, 50);
  EXPECT_NE(m_before, m_after);
  // Group 0 flips at t = 100.
  EXPECT_EQ(c.current_mark(0, 49), c.current_mark(0, 50));
  EXPECT_NE(c.current_mark(0, 99), c.current_mark(0, 100));
}

TEST(GroupClock, TouchDetectsExactlyBoundaryCrossings) {
  GroupClock c(4, 100);
  // Touch every group every tick: resets happen exactly once per cycle per
  // group.
  std::size_t resets = 0;
  for (std::uint64_t t = 1; t <= 1000; ++t)
    for (std::size_t g = 0; g < 4; ++g)
      if (c.touch(g, t)) ++resets;
  EXPECT_EQ(resets, 4u * 10u);
}

TEST(GroupClock, StaleAfterSkippedBoundary) {
  GroupClock c(1, 100);
  EXPECT_FALSE(c.stale(0, 50));
  EXPECT_TRUE(c.stale(0, 150));  // boundary at t=100 not touched
  EXPECT_TRUE(c.touch(0, 150));
  EXPECT_FALSE(c.stale(0, 150));
  EXPECT_FALSE(c.touch(0, 160));  // already current
}

TEST(GroupClock, OneBitMarkAliasesAfterTwoCycles) {
  // The on-demand cleaning failure mode (paper Sec. 5.1): untouched for two
  // full cycles, a 1-bit mark looks current again.
  GroupClock c1(1, 100, 1);
  EXPECT_FALSE(c1.stale(0, 250));  // 2 cycles skipped: aliased to "fresh"
  // A 2-bit mark still catches it.
  GroupClock c2(1, 100, 2);
  EXPECT_TRUE(c2.stale(0, 250));
  // ...until 4 cycles.
  EXPECT_FALSE(c2.stale(0, 450));
}

TEST(GroupClock, ResetRestoresTimeZeroState) {
  GroupClock c(4, 100);
  for (std::uint64_t t = 1; t < 321; ++t)
    for (std::size_t g = 0; g < 4; ++g) c.touch(g, t);
  c.reset();
  for (std::size_t g = 0; g < 4; ++g) EXPECT_FALSE(c.stale(g, 0));
}

TEST(GroupClock, MemoryBytesScalesWithMarkBits) {
  EXPECT_LE(GroupClock(64, 100, 1).memory_bytes(), 8u);
  EXPECT_GE(GroupClock(64, 100, 8).memory_bytes(), 64u);
}

// Parameterized consistency sweep: for arbitrary (G, Tcycle) geometry, the
// mark flips exactly when the age wraps to 0.
class ClockGeometry
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::uint64_t>> {};

TEST_P(ClockGeometry, MarkFlipCoincidesWithAgeWrap) {
  auto [groups, tcycle] = GetParam();
  GroupClock c(groups, tcycle);
  for (std::size_t g = 0; g < groups; ++g) {
    std::uint64_t prev_mark = c.current_mark(g, 0);
    std::uint64_t prev_age = c.age(g, 0);
    for (std::uint64_t t = 1; t < 3 * tcycle; ++t) {
      std::uint64_t mark = c.current_mark(g, t);
      std::uint64_t age = c.age(g, t);
      bool wrapped = age < prev_age;
      bool flipped = mark != prev_mark;
      ASSERT_EQ(wrapped, flipped) << "g=" << g << " t=" << t;
      prev_mark = mark;
      prev_age = age;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, ClockGeometry,
    ::testing::Values(std::make_tuple(1u, 10u), std::make_tuple(2u, 10u),
                      std::make_tuple(3u, 10u), std::make_tuple(4u, 97u),
                      std::make_tuple(16u, 64u), std::make_tuple(5u, 123u),
                      std::make_tuple(7u, 7u), std::make_tuple(13u, 200u)));

}  // namespace
}  // namespace she
