// Merge-operation tests: merged fixed-window sketches must answer as if
// every item had been inserted into one sketch (exact equivalence for the
// lattice merges, distributive property for Count-Min).
#include "sketch/bitmap.hpp"
#include "sketch/bloom_filter.hpp"
#include "sketch/count_min.hpp"
#include "sketch/hyperloglog.hpp"
#include "sketch/minhash.hpp"

#include "common/rng.hpp"
#include "stream/trace.hpp"
#include <gtest/gtest.h>

namespace she::fixed {
namespace {

TEST(Merge, BloomUnionEqualsCombinedInsertion) {
  BloomFilter a(1 << 14, 6, 3), b(1 << 14, 6, 3), both(1 << 14, 6, 3);
  auto ta = stream::distinct_trace(2000, 1);
  auto tb = stream::distinct_trace(2000, 2);
  for (auto k : ta) {
    a.insert(k);
    both.insert(k);
  }
  for (auto k : tb) {
    b.insert(k);
    both.insert(k);
  }
  a.merge(b);
  // Exact bitwise equivalence: identical answers on any probe.
  for (std::uint64_t p = 0; p < 5000; ++p) {
    std::uint64_t probe = hash64(p, 9);
    ASSERT_EQ(a.contains(probe), both.contains(probe));
  }
  for (auto k : ta) ASSERT_TRUE(a.contains(k));
  for (auto k : tb) ASSERT_TRUE(a.contains(k));
}

TEST(Merge, BloomIncompatibleRejected) {
  BloomFilter a(1024, 4, 0), b(2048, 4, 0), c(1024, 6, 0), d(1024, 4, 1);
  EXPECT_THROW(a.merge(b), std::invalid_argument);
  EXPECT_THROW(a.merge(c), std::invalid_argument);
  EXPECT_THROW(a.merge(d), std::invalid_argument);
}

TEST(Merge, BitmapUnionCardinality) {
  Bitmap a(1 << 14, 7), b(1 << 14, 7), both(1 << 14, 7);
  auto ta = stream::distinct_trace(1500, 3);
  auto tb = stream::distinct_trace(1500, 4);
  for (auto k : ta) {
    a.insert(k);
    both.insert(k);
  }
  for (auto k : tb) {
    b.insert(k);
    both.insert(k);
  }
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.cardinality(), both.cardinality());
  EXPECT_NEAR(a.cardinality(), 3000.0, 150.0);
}

TEST(Merge, HllUnionCardinality) {
  HyperLogLog a(1024, 5), b(1024, 5), both(1024, 5);
  auto ta = stream::distinct_trace(40000, 5);
  auto tb = stream::distinct_trace(40000, 6);
  for (auto k : ta) {
    a.insert(k);
    both.insert(k);
  }
  for (auto k : tb) {
    b.insert(k);
    both.insert(k);
  }
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.cardinality(), both.cardinality());
}

TEST(Merge, HllMergeIsIdempotentAndCommutative) {
  HyperLogLog a(256), b(256);
  for (auto k : stream::distinct_trace(5000, 7)) a.insert(k);
  for (auto k : stream::distinct_trace(5000, 8)) b.insert(k);
  HyperLogLog ab = a;
  ab.merge(b);
  HyperLogLog ba = b;
  ba.merge(a);
  EXPECT_DOUBLE_EQ(ab.cardinality(), ba.cardinality());
  HyperLogLog aa = ab;
  aa.merge(ab);  // idempotent
  EXPECT_DOUBLE_EQ(aa.cardinality(), ab.cardinality());
}

TEST(Merge, CountMinSumsFrequencies) {
  CountMin a(1 << 14, 4, 2), b(1 << 14, 4, 2), both(1 << 14, 4, 2);
  Rng rng(9);
  for (int i = 0; i < 20000; ++i) {
    std::uint64_t k = rng.below(300);
    if (i % 2 == 0) {
      a.insert(k);
    } else {
      b.insert(k);
    }
    both.insert(k);
  }
  a.merge(b);
  for (std::uint64_t k = 0; k < 300; ++k)
    ASSERT_EQ(a.frequency(k), both.frequency(k)) << "key " << k;
}

TEST(Merge, CountMinSaturatesInsteadOfWrapping) {
  CountMin a(64, 1, 0), b(64, 1, 0);
  // Drive one counter near the 32-bit ceiling on both sides via direct
  // repeated insertion of the same key.
  for (int i = 0; i < 1000; ++i) {
    a.insert(42);
    b.insert(42);
  }
  // Simulate large counts by merging repeatedly: values must never wrap.
  for (int r = 0; r < 40; ++r) a.merge(a);
  std::uint64_t v = a.frequency(42);
  EXPECT_LE(v, 0xFFFFFFFFull);
  EXPECT_GT(v, 1000u);
}

TEST(Merge, MinHashUnionSignature) {
  MinHash a(256, 4), b(256, 4), both(256, 4);
  auto ta = stream::distinct_trace(3000, 11);
  auto tb = stream::distinct_trace(3000, 12);
  for (auto k : ta) {
    a.insert(k);
    both.insert(k);
  }
  for (auto k : tb) {
    b.insert(k);
    both.insert(k);
  }
  a.merge(b);
  for (std::size_t i = 0; i < 256; ++i) ASSERT_EQ(a.slot(i), both.slot(i));
}

TEST(Merge, MinHashUnionEstimatesUnionJaccard) {
  // J(A ∪ B, A) = |A| / |A ∪ B| for disjoint halves.
  MinHash a(512, 1), b(512, 1);
  for (auto k : stream::distinct_trace(2000, 13)) a.insert(k);
  for (auto k : stream::distinct_trace(2000, 14)) b.insert(k);
  MinHash u = a;
  u.merge(b);
  EXPECT_NEAR(MinHash::jaccard(u, a), 0.5, 0.08);
}

}  // namespace
}  // namespace she::fixed
