// Concurrent ingest runtime tests.  This binary carries the ctest label
// `tsan`: build with -DSHE_SANITIZE=thread and run `ctest -L tsan` to
// check the whole surface under ThreadSanitizer (sizes are kept moderate
// so the instrumented run stays fast).
//
//   * SpscRing: FIFO order and wraparound, plus a cross-thread stress.
//   * SeqlockSlot: readers never observe a torn payload.
//   * IngestPipeline: single-producer drains are bit-identical to
//     sequential routing; DropNewest counts rejected pushes; Block loses
//     nothing; queries under load stay consistent.
//   * ConcurrentMonitor: queries under load within the same error bounds
//     as the single-threaded estimators.
#include "runtime/ingest_pipeline.hpp"

#include <sstream>
#include <thread>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "she/monitor.hpp"
#include "she/sharded.hpp"
#include "she/she.hpp"
#include "stream/oracle.hpp"
#include "stream/trace.hpp"
#include <gtest/gtest.h>

namespace she::runtime {
namespace {

// ------------------------------ SpscRing -----------------------------------

TEST(SpscRing, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(SpscRing(1).capacity(), 1u);
  EXPECT_EQ(SpscRing(2).capacity(), 2u);
  EXPECT_EQ(SpscRing(3).capacity(), 4u);
  EXPECT_EQ(SpscRing(1000).capacity(), 1024u);
}

TEST(SpscRing, FifoWithWraparound) {
  SpscRing ring(4);
  std::uint64_t v = 0;
  for (std::uint64_t round = 0; round < 10; ++round) {
    for (std::uint64_t i = 0; i < 4; ++i)
      ASSERT_TRUE(ring.try_push(round * 4 + i));
    EXPECT_FALSE(ring.try_push(999));  // full
    for (std::uint64_t i = 0; i < 4; ++i) {
      ASSERT_TRUE(ring.try_pop(v));
      EXPECT_EQ(v, round * 4 + i);
    }
    EXPECT_FALSE(ring.try_pop(v));  // empty
  }
}

TEST(SpscRing, DrainPreservesOrder) {
  SpscRing ring(8);
  for (std::uint64_t i = 0; i < 6; ++i) ASSERT_TRUE(ring.try_push(i));
  std::uint64_t out[8];
  ASSERT_EQ(ring.drain(out, 4), 4u);
  for (std::uint64_t i = 0; i < 4; ++i) EXPECT_EQ(out[i], i);
  ASSERT_EQ(ring.drain(out, 8), 2u);
  EXPECT_EQ(out[0], 4u);
  EXPECT_EQ(out[1], 5u);
  EXPECT_EQ(ring.drain(out, 8), 0u);
}

TEST(SpscRing, CrossThreadStressKeepsSequence) {
  constexpr std::uint64_t kItems = 200'000;
  SpscRing ring(64);
  std::thread producer([&] {
    for (std::uint64_t i = 0; i < kItems; ++i)
      while (!ring.try_push(i)) std::this_thread::yield();
  });
  std::uint64_t expected = 0;
  std::uint64_t buf[32];
  while (expected < kItems) {
    std::size_t n = ring.drain(buf, 32);
    for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(buf[i], expected++);
    if (n == 0) std::this_thread::yield();
  }
  producer.join();
}

// ----------------------------- SeqlockSlot ---------------------------------

TEST(SeqlockSlot, PublishReadRoundTrip) {
  SeqlockSlot slot(64);
  const char payload[] = "sliding windows";
  slot.publish(payload, sizeof(payload));
  std::vector<char> out;
  std::uint64_t version = slot.read(out);
  EXPECT_EQ(version, 2u);
  ASSERT_EQ(out.size(), sizeof(payload));
  EXPECT_EQ(std::memcmp(out.data(), payload, sizeof(payload)), 0);
}

TEST(SeqlockSlot, RejectsOversizedPayload) {
  SeqlockSlot slot(16);
  std::vector<char> big(64, 'x');
  EXPECT_THROW(slot.publish(big.data(), big.size()), std::length_error);
}

TEST(SeqlockSlot, ReadersNeverSeeTornPayload) {
  // Writer publishes payloads whose every word equals the round number;
  // a torn read would mix words from different rounds.
  constexpr std::size_t kWords = 128;
  constexpr std::uint64_t kMinReads = 500;
  constexpr std::uint64_t kMaxRounds = 5'000'000;  // overlap-or-bust backstop
  SeqlockSlot slot(kWords * 8);
  std::vector<std::uint64_t> payload(kWords, 0);
  slot.publish(payload.data(), kWords * 8);

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> reads{0};
  std::thread reader([&] {
    std::vector<char> buf;
    while (!stop.load(std::memory_order_acquire)) {
      slot.read(buf);
      ASSERT_EQ(buf.size(), kWords * 8);
      std::uint64_t first;
      std::memcpy(&first, buf.data(), 8);
      for (std::size_t w = 1; w < kWords; ++w) {
        std::uint64_t v;
        std::memcpy(&v, buf.data() + w * 8, 8);
        ASSERT_EQ(v, first) << "torn read at word " << w;
      }
      reads.fetch_add(1, std::memory_order_relaxed);
    }
  });
  // Keep publishing until the reader has completed a healthy number of
  // reads concurrently with us (on a single core this needs the yield to
  // interleave the two threads at all).
  for (std::uint64_t round = 1;
       reads.load(std::memory_order_relaxed) < kMinReads && round <= kMaxRounds;
       ++round) {
    std::fill(payload.begin(), payload.end(), round);
    slot.publish(payload.data(), kWords * 8);
    if (round % 64 == 0) std::this_thread::yield();
  }
  stop.store(true, std::memory_order_release);
  reader.join();
  EXPECT_GE(reads.load(), kMinReads);
}

// ---------------------------- IngestPipeline -------------------------------

SheConfig bf_cfg(std::uint64_t window) {
  SheConfig cfg;
  cfg.window = window;
  cfg.cells = 1 << 14;
  cfg.group_cells = 64;
  cfg.alpha = 3.0;
  return cfg;
}

IngestPipeline<SheBloomFilter>::Factory bf_factory(std::size_t shards,
                                                   std::uint64_t window) {
  return [shards, window](std::size_t s) {
    SheConfig cfg = bf_cfg(window / shards);
    cfg.seed = static_cast<std::uint32_t>(s);
    return SheBloomFilter(cfg, 8);
  };
}

TEST(IngestPipeline, ValidatesOptions) {
  PipelineOptions opt;
  opt.shards = 0;
  EXPECT_THROW(IngestPipeline<SheBloomFilter>(opt, bf_factory(1, 1024)),
               std::invalid_argument);
}

TEST(IngestPipeline, SingleProducerDrainBitIdenticalToSequential) {
  // One producer, bounded queues: per-shard order equals arrival order, so
  // each shard's final state must serialize to exactly the bytes the
  // sequential Sharded<T> routing produces.
  constexpr std::uint64_t kWindow = 8192;
  constexpr std::size_t kShards = 4;
  auto trace = stream::distinct_trace(4 * kWindow, 5);

  Sharded<SheBloomFilter> seq(kShards, [&](std::size_t s) {
    SheConfig cfg = bf_cfg(kWindow / kShards);
    cfg.seed = static_cast<std::uint32_t>(s);
    return SheBloomFilter(cfg, 8);
  });
  for (auto k : trace) seq.insert(k);

  PipelineOptions opt;
  opt.shards = kShards;
  opt.producers = 1;
  opt.queue_capacity = 256;
  IngestPipeline<SheBloomFilter> pipe(opt, bf_factory(kShards, kWindow));
  pipe.start();
  EXPECT_EQ(pipe.push_bulk(0, trace), trace.size());
  pipe.close();

  for (std::size_t s = 0; s < kShards; ++s) {
    std::stringstream expected_ss;
    BinaryWriter w(expected_ss);
    seq.shard(s).save(w);
    const std::string expected = expected_ss.str();

    std::stringstream got_ss;
    BinaryWriter gw(got_ss);
    pipe.snapshot(s).save(gw);
    ASSERT_EQ(got_ss.str(), expected) << "shard " << s;
  }

  auto st = pipe.stats();
  EXPECT_EQ(st.inserted, trace.size());
  EXPECT_EQ(st.produced, trace.size());
  EXPECT_EQ(st.dropped, 0u);
  EXPECT_GT(st.publishes, 0u);
}

TEST(IngestPipeline, SyncBarrierSnapshotsCoverEveryAcceptedPush) {
  // Regression: the worker's "rings are empty" observation used to predate
  // its acquire-load of the sync request, so a stale ring view could ack
  // the flush barrier with items still queued — sync() returned true while
  // the published snapshots were short a late chunk of the stream.  The
  // race window is a few microseconds, hence many short rounds.
  constexpr std::uint64_t kWindow = 8192;
  constexpr std::size_t kShards = 2;
  for (int round = 0; round < 40; ++round) {
    std::vector<std::uint64_t> trace(20000);
    for (std::size_t i = 0; i < trace.size(); ++i) {
      trace[i] = (i * 7 + static_cast<std::uint64_t>(round)) % 4000;
    }
    PipelineOptions opt;
    opt.shards = kShards;
    opt.producers = 2;
    IngestPipeline<SheBloomFilter> pipe(opt, bf_factory(kShards, kWindow));
    pipe.start();
    ASSERT_EQ(pipe.push_bulk(0, trace), trace.size());
    ASSERT_TRUE(pipe.sync(/*with_checkpoint=*/false));
    std::uint64_t seen = 0;
    for (std::size_t s = 0; s < kShards; ++s) seen += pipe.snapshot(s).time();
    ASSERT_EQ(seen, trace.size()) << "round " << round;
    pipe.close();
  }
}

TEST(IngestPipeline, BatchedDrainMatchesSequentialUnderConcurrentReads) {
  // The worker drain now hands whole blocks to StreamMonitor::insert_batch
  // (which fans out to the estimators' pipelined insert_batch).  With one
  // producer the per-shard arrival order is deterministic, so the drained
  // state must serialize byte-identically to scalar routing — while a
  // reader thread hammers the seqlock snapshots mid-ingest (the surface
  // `ctest -L tsan` sweeps) and the tiny Block-policy rings force
  // backpressure so the stall counters are exercised.
  constexpr std::uint64_t kWindow = 1 << 14;
  constexpr std::size_t kShards = 2;
  auto trace = stream::distinct_trace(1 << 16, 11);

  auto factory = [](std::size_t s) {
    MonitorConfig m;
    m.window = kWindow / kShards;
    m.memory_bytes = 1 << 17;
    m.heavy_hitter_slots = 8;
    m.seed = static_cast<std::uint32_t>(s);
    return StreamMonitor(m);
  };

  PipelineOptions opt;
  opt.shards = kShards;
  opt.producers = 1;
  opt.queue_capacity = 64;  // keep the producer ahead of the drain
  IngestPipeline<StreamMonitor> pipe(opt, factory);
  pipe.start();

  std::atomic<bool> stop{false};
  std::thread reader([&] {
    std::uint64_t last[kShards] = {};
    while (!stop.load(std::memory_order_relaxed)) {
      for (std::size_t s = 0; s < kShards; ++s) {
        StreamMonitor snap = pipe.snapshot(s);
        ASSERT_GE(snap.time(), last[s]);  // clock never runs backwards
        last[s] = snap.time();
        (void)snap.seen(trace[0]);
        (void)snap.frequency(trace[0]);
      }
    }
  });

  std::vector<StreamMonitor> seq;
  for (std::size_t s = 0; s < kShards; ++s) seq.push_back(factory(s));
  for (auto k : trace) seq[pipe.shard_of(k)].insert(k);

  EXPECT_EQ(pipe.push_bulk(0, trace), trace.size());
  pipe.close();
  stop.store(true, std::memory_order_relaxed);
  reader.join();

  for (std::size_t s = 0; s < kShards; ++s) {
    std::stringstream expected_ss, got_ss;
    BinaryWriter ew(expected_ss), gw(got_ss);
    seq[s].save(ew);
    pipe.snapshot(s).save(gw);
    ASSERT_EQ(got_ss.str(), expected_ss.str()) << "shard " << s;
  }

  auto st = pipe.stats();
  EXPECT_EQ(st.inserted, trace.size());
  EXPECT_EQ(st.dropped, 0u);
  // stall_ns only accumulates inside a counted stall episode.
  if (st.stall_ns > 0) {
    EXPECT_GT(st.stall_events, 0u);
  }
}

TEST(IngestPipeline, DropNewestCountsRejectedPushes) {
  // Workers not started: rings fill up and DropNewest must reject (and
  // count) exactly the overflow, then deliver the accepted remainder.
  PipelineOptions opt;
  opt.shards = 1;
  opt.producers = 1;
  opt.queue_capacity = 64;
  opt.policy = Backpressure::kDropNewest;
  IngestPipeline<SheBloomFilter> pipe(opt, bf_factory(1, 1024));

  constexpr std::uint64_t kPushes = 200;
  std::uint64_t accepted = 0;
  for (std::uint64_t k = 0; k < kPushes; ++k)
    accepted += pipe.push(0, k) ? 1 : 0;
  EXPECT_EQ(accepted, opt.queue_capacity);

  auto st = pipe.stats();
  EXPECT_EQ(st.dropped, kPushes - opt.queue_capacity);
  EXPECT_EQ(st.per_shard[0].dropped, kPushes - opt.queue_capacity);

  pipe.close();  // never started: drains inline
  st = pipe.stats();
  EXPECT_EQ(st.inserted, accepted);
  EXPECT_EQ(pipe.snapshot(0).time(), accepted);
}

TEST(IngestPipeline, BlockPolicyLosesNothingThroughTinyQueues) {
  constexpr std::uint64_t kItems = 100'000;
  PipelineOptions opt;
  opt.shards = 2;
  opt.producers = 2;
  opt.queue_capacity = 16;  // force constant backpressure
  opt.drain_batch = 8;
  IngestPipeline<SheBloomFilter> pipe(opt, bf_factory(2, 1 << 16));
  pipe.start();
  std::vector<std::thread> producers;
  for (std::size_t p = 0; p < 2; ++p) {
    producers.emplace_back([&, p] {
      for (std::uint64_t i = 0; i < kItems / 2; ++i)
        ASSERT_TRUE(pipe.push(p, i * 2 + p));
    });
  }
  for (auto& t : producers) t.join();
  pipe.close();
  auto st = pipe.stats();
  EXPECT_EQ(st.produced, kItems);
  EXPECT_EQ(st.inserted, kItems);
  EXPECT_EQ(st.dropped, 0u);
  EXPECT_GE(st.queue_hwm, 1u);
  EXPECT_LE(st.queue_hwm, 16u);
  // Pushing is far cheaper than draining into SHE-BF, so the 16-slot rings
  // must fill: every Block episode increments stall_events exactly once.
  EXPECT_GT(st.stall_events, 0u);
}

TEST(IngestPipeline, QueriesUnderLoadNeverSeeTornEstimator) {
  // Readers continuously deserialize snapshots while two producers ingest.
  // A torn or stale-mixed image would fail deserialization (tag/shape
  // checks) or break SHE-BF's invariants; we assert clock monotonicity and
  // the no-false-negative guarantee for a key that is always deep in every
  // shard window.
  constexpr std::uint64_t kWindow = 1 << 14;
  constexpr std::size_t kShards = 2;
  constexpr std::uint64_t kHot = 0xB00F;
  constexpr std::uint64_t kItems = 120'000;

  PipelineOptions opt;
  opt.shards = kShards;
  opt.producers = 2;
  opt.queue_capacity = 1024;
  opt.publish_interval = 512;
  IngestPipeline<SheBloomFilter> pipe(opt, bf_factory(kShards, kWindow));
  pipe.start();

  std::atomic<bool> done{false};
  std::thread reader([&] {
    SnapshotReader<SheBloomFilter> views[kShards] = {
        SnapshotReader<SheBloomFilter>(pipe.snapshot_slot(0)),
        SnapshotReader<SheBloomFilter>(pipe.snapshot_slot(1))};
    std::uint64_t last_time[kShards] = {0, 0};
    const std::size_t hot_shard = pipe.shard_of(kHot);
    while (!done.load(std::memory_order_acquire)) {
      for (std::size_t s = 0; s < kShards; ++s) {
        const SheBloomFilter& snap = views[s].get();
        ASSERT_GE(snap.time(), last_time[s]) << "clock went backwards";
        last_time[s] = snap.time();
        // kHot arrives every ~8 global items, so once the hot shard has
        // seen a full window the one-sided guarantee applies.
        if (s == hot_shard && snap.time() > kWindow / kShards) {
          ASSERT_TRUE(snap.contains(kHot));
        }
      }
    }
  });

  std::vector<std::thread> producers;
  for (std::size_t p = 0; p < 2; ++p) {
    producers.emplace_back([&, p] {
      Rng rng(1234 + p);
      for (std::uint64_t i = 0; i < kItems / 2; ++i) {
        pipe.push(p, i % 4 == 0 ? kHot : (rng() | 1ull << 33));
      }
    });
  }
  for (auto& t : producers) t.join();
  done.store(true, std::memory_order_release);
  reader.join();
  pipe.close();
  EXPECT_EQ(pipe.stats().inserted, kItems);
}

// --------------------------- ConcurrentMonitor -----------------------------

TEST(ConcurrentMonitor, QueriesUnderLoadStayWithinSingleThreadBounds) {
  // Mirrors test_sharded.cpp's accuracy bounds, but with ingestion and
  // queries actually concurrent: cardinality RE vs the exact oracle stays
  // under 0.15, hot keys dominate the merged top-k, and recent keys are
  // always seen (one-sided membership).
  constexpr std::uint64_t kWindow = 1 << 14;
  MonitorConfig mcfg;
  mcfg.window = kWindow;
  mcfg.memory_bytes = 1 << 20;
  mcfg.heavy_hitter_slots = 32;

  runtime::PipelineOptions pcfg;
  pcfg.shards = 4;
  pcfg.producers = 1;
  pcfg.queue_capacity = 2048;
  pcfg.publish_interval = 1024;

  ConcurrentMonitor mon(mcfg, pcfg);
  mon.start();

  // Noise plus two persistent heavy keys.
  auto noise = stream::distinct_trace(4 * kWindow, 23);
  constexpr std::uint64_t kHotA = 111, kHotB = 222;
  stream::WindowOracle oracle(kWindow);
  std::thread producer([&] {
    for (std::size_t i = 0; i < noise.size(); ++i) {
      std::uint64_t k = i % 8 == 0 ? kHotA : (i % 8 == 4 ? kHotB : noise[i]);
      ASSERT_TRUE(mon.push(0, k));
    }
  });
  // Concurrent reads: must never throw, items must be monotone.
  std::uint64_t last_items = 0;
  std::uint64_t reads = 0;
  while (true) {
    MonitorReport rep = mon.report(4);
    ASSERT_GE(rep.items, last_items);
    last_items = rep.items;
    ++reads;
    if (rep.items >= noise.size()) break;
    if (last_items == 0) std::this_thread::yield();
  }
  producer.join();
  mon.close();
  EXPECT_GT(reads, 1u);

  for (std::size_t i = 0; i < noise.size(); ++i) {
    std::uint64_t k = i % 8 == 0 ? kHotA : (i % 8 == 4 ? kHotB : noise[i]);
    oracle.insert(k);
  }

  MonitorReport rep = mon.report(4);
  ASSERT_TRUE(rep.cardinality.has_value());
  EXPECT_LT(relative_error(static_cast<double>(oracle.cardinality()),
                           *rep.cardinality),
            0.15);
  ASSERT_GE(rep.top.size(), 2u);
  EXPECT_TRUE((rep.top[0].key == kHotA && rep.top[1].key == kHotB) ||
              (rep.top[0].key == kHotB && rep.top[1].key == kHotA));
  EXPECT_GT(mon.frequency(kHotA), 100u);
  EXPECT_TRUE(mon.seen(kHotA));
  EXPECT_EQ(mon.stats().dropped, 0u);
}

TEST(ConcurrentMonitor, DropNewestSurfacesInStats) {
  MonitorConfig mcfg;
  mcfg.window = 4096;
  mcfg.memory_bytes = 1 << 16;

  runtime::PipelineOptions pcfg;
  pcfg.shards = 1;
  pcfg.producers = 1;
  pcfg.queue_capacity = 32;
  pcfg.policy = runtime::Backpressure::kDropNewest;

  ConcurrentMonitor mon(mcfg, pcfg);  // not started: queue must overflow
  std::uint64_t accepted = 0;
  for (std::uint64_t k = 0; k < 100; ++k) accepted += mon.push(0, k) ? 1 : 0;
  EXPECT_EQ(accepted, 32u);
  EXPECT_EQ(mon.stats().dropped, 68u);
  mon.close();
  EXPECT_EQ(mon.report(1).items, 32u);
}

}  // namespace
}  // namespace she::runtime
