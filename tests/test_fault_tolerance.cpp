// Fault-tolerance tests: CRC-framed durable checkpoints, supervised
// worker restart/fencing, bounded backpressure, and the deterministic
// fault-injection harness that drives them.  This binary carries the
// ctest label `tsan` (see tests/CMakeLists.txt): build with
// -DSHE_SANITIZE=thread and run `ctest -L tsan` to exercise the
// supervisor/worker/producer handshakes under ThreadSanitizer.
#include "common/checkpoint.hpp"

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <functional>
#include <span>
#include <sstream>
#include <thread>
#include <typeinfo>

#include "common/crc32.hpp"
#include "common/wal.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "runtime/fault_injection.hpp"
#include "runtime/ingest_pipeline.hpp"
#include "she/sharded.hpp"
#include "she/she.hpp"
#include "stream/trace.hpp"
#include <gtest/gtest.h>

namespace she::runtime {
namespace {

std::uint64_t corrupt_count() {
  return obs::default_registry()
      .counter("she_checkpoint_corrupt_total",
               "checkpoint frames rejected as truncated or corrupted")
      .value();
}

std::string temp_dir(const char* name) {
  auto dir = std::filesystem::path(::testing::TempDir()) / name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir.string();
}

// -------------------------------- CRC-32 -----------------------------------

TEST(Crc32, KnownVectorsAndChaining) {
  const char check[] = "123456789";
  EXPECT_EQ(crc32(check, 9), 0xCBF43926u);  // the classic CRC-32/IEEE check
  EXPECT_EQ(crc32(check, 0), 0u);
  // Chaining through the seed equals one pass over the concatenation.
  EXPECT_EQ(crc32(check + 4, 5, crc32(check, 4)), crc32(check, 9));
}

// ------------------------------ frame format --------------------------------

std::vector<char> sample_payload() {
  std::vector<char> p;
  for (int i = 0; i < 200; ++i) p.push_back(static_cast<char>(i * 7));
  return p;
}

TEST(Checkpoint, FrameRoundTrip) {
  const auto payload = sample_payload();
  const auto frame = frame_checkpoint(
      987654321, std::span<const char>(payload.data(), payload.size()));
  ASSERT_EQ(frame.size(), kCheckpointHeaderBytes + payload.size());
  const CheckpointData back = parse_checkpoint(frame.data(), frame.size());
  EXPECT_EQ(back.stream_offset, 987654321u);
  EXPECT_EQ(back.payload, payload);
}

TEST(Checkpoint, EmptyPayloadRoundTrips) {
  const auto frame = frame_checkpoint(7, std::span<const char>());
  const CheckpointData back = parse_checkpoint(frame.data(), frame.size());
  EXPECT_EQ(back.stream_offset, 7u);
  EXPECT_TRUE(back.payload.empty());
}

TEST(Checkpoint, ProducerOffsetVectorRoundTripsAsVersion2) {
  const auto payload = sample_payload();
  const std::uint64_t offsets[] = {100, 0, 23456789};
  const auto frame = frame_checkpoint(
      100 + 0 + 23456789, std::span<const std::uint64_t>(offsets),
      std::span<const char>(payload.data(), payload.size()));
  ASSERT_EQ(frame.size(),
            kCheckpointHeaderBytes + 4 + 3 * 8 + payload.size());
  const CheckpointData back = parse_checkpoint(frame.data(), frame.size());
  EXPECT_EQ(back.stream_offset, 100u + 23456789u);
  ASSERT_EQ(back.producer_offsets.size(), 3u);
  EXPECT_EQ(back.producer_offsets[0], 100u);
  EXPECT_EQ(back.producer_offsets[1], 0u);
  EXPECT_EQ(back.producer_offsets[2], 23456789u);
  EXPECT_EQ(back.payload, payload);

  // A bit flip inside the producer vector fails the CRC like any other.
  auto bad = frame;
  bad[kCheckpointHeaderBytes + 9] ^= 0x4;
  EXPECT_THROW((void)parse_checkpoint(bad.data(), bad.size()),
               CheckpointError);

  // An empty vector degrades to a version-1 frame: older readers (and
  // fixtures) see byte-identical output from the two-argument writer.
  const auto v1 = frame_checkpoint(
      7, std::span<const std::uint64_t>(),
      std::span<const char>(payload.data(), payload.size()));
  EXPECT_EQ(v1, frame_checkpoint(
                    7, std::span<const char>(payload.data(), payload.size())));
  EXPECT_TRUE(parse_checkpoint(v1.data(), v1.size()).producer_offsets.empty());
}

TEST(Checkpoint, RejectsBitFlipAnywhere) {
  const auto payload = sample_payload();
  const auto frame = frame_checkpoint(
      42, std::span<const char>(payload.data(), payload.size()));
  // One flipped bit in every region of the frame: magic, version, stream
  // offset, payload length, CRC field, payload head/middle/tail.  All must
  // be rejected with the typed error and counted as corrupt.
  const std::size_t positions[] = {0,  5,  9,  17, 25,
                                   kCheckpointHeaderBytes,
                                   kCheckpointHeaderBytes + payload.size() / 2,
                                   frame.size() - 1};
  for (std::size_t pos : positions) {
    auto bad = frame;
    bad[pos] = static_cast<char>(static_cast<unsigned char>(bad[pos]) ^ 0x10);
    const std::uint64_t before = corrupt_count();
    EXPECT_THROW((void)parse_checkpoint(bad.data(), bad.size()),
                 CheckpointError)
        << "flip at byte " << pos;
    EXPECT_EQ(corrupt_count(), before + 1) << "flip at byte " << pos;
  }
}

TEST(Checkpoint, RejectsTruncationAtEveryLength) {
  const auto payload = sample_payload();
  const auto frame = frame_checkpoint(
      42, std::span<const char>(payload.data(), payload.size()));
  for (std::size_t n = 0; n < frame.size(); n += 13) {
    const std::uint64_t before = corrupt_count();
    EXPECT_THROW((void)parse_checkpoint(frame.data(), n), CheckpointError)
        << "prefix of " << n << " bytes";
    EXPECT_EQ(corrupt_count(), before + 1);
  }
  // Trailing garbage is as invalid as truncation.
  auto padded = frame;
  padded.push_back('x');
  EXPECT_THROW((void)parse_checkpoint(padded.data(), padded.size()),
               CheckpointError);
}

TEST(Checkpoint, FileWriteReadAndMissingFileSemantics) {
  const std::string dir = temp_dir("ckpt_file_rt");
  const std::string path = dir + "/a.ckpt";
  const auto payload = sample_payload();
  const auto frame = frame_checkpoint(
      1234, std::span<const char>(payload.data(), payload.size()));

  // Missing file: try_* says "fresh start", read_* throws — and neither
  // counts as corruption.
  const std::uint64_t before = corrupt_count();
  EXPECT_FALSE(try_read_checkpoint_file(path).has_value());
  EXPECT_THROW((void)read_checkpoint_file(path), CheckpointError);
  EXPECT_EQ(corrupt_count(), before);

  write_file_atomic(path, std::span<const char>(frame.data(), frame.size()));
  const CheckpointData back = read_checkpoint_file(path);
  EXPECT_EQ(back.stream_offset, 1234u);
  EXPECT_EQ(back.payload, payload);
  // No temp file left behind.
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  std::filesystem::remove_all(dir);
}

// ---------------------------- frame retention -------------------------------

/// Write one valid frame whose payload is the single byte `tag` at
/// generation `gen` of `path`.
void write_generation(const std::string& path, std::size_t gen, char tag,
                      std::uint64_t offset) {
  const char payload[] = {tag};
  const auto frame = frame_checkpoint(offset, std::span<const char>(payload, 1));
  write_file_atomic(checkpoint_generation_path(path, gen),
                    std::span<const char>(frame.data(), frame.size()));
}

TEST(CheckpointRetention, GenerationPaths) {
  EXPECT_EQ(checkpoint_generation_path("/d/s.ckpt", 0), "/d/s.ckpt");
  EXPECT_EQ(checkpoint_generation_path("/d/s.ckpt", 1), "/d/s.ckpt.1");
  EXPECT_EQ(checkpoint_generation_path("/d/s.ckpt", 3), "/d/s.ckpt.3");
}

TEST(CheckpointRetention, RotateShiftsAndDropsOldest) {
  const std::string dir = temp_dir("ckpt_rotate");
  const std::string path = dir + "/s.ckpt";

  // keep=3: after writing newest frames A, B, C in that order with a
  // rotation before each, the files are C, B.1, A.2.
  for (int i = 0; i < 3; ++i) {
    rotate_checkpoints(path, 3);
    write_generation(path, 0, static_cast<char>('A' + i), 100u + i);
  }
  EXPECT_EQ(read_checkpoint_file(path).payload[0], 'C');
  EXPECT_EQ(read_checkpoint_file(path + ".1").payload[0], 'B');
  EXPECT_EQ(read_checkpoint_file(path + ".2").payload[0], 'A');

  // One more round: A falls off the end.
  rotate_checkpoints(path, 3);
  write_generation(path, 0, 'D', 103);
  EXPECT_EQ(read_checkpoint_file(path).payload[0], 'D');
  EXPECT_EQ(read_checkpoint_file(path + ".2").payload[0], 'B');
  EXPECT_FALSE(std::filesystem::exists(path + ".3"));

  // keep<=1 is overwrite-in-place: rotation moves nothing.
  rotate_checkpoints(path, 1);
  EXPECT_EQ(read_checkpoint_file(path).payload[0], 'D');
  std::filesystem::remove_all(dir);
}

TEST(CheckpointRetention, RotateToleratesGaps) {
  const std::string dir = temp_dir("ckpt_rotate_gaps");
  const std::string path = dir + "/s.ckpt";
  // Only generation 1 exists; rotating must shift it without inventing
  // files or failing on the missing newest.
  write_generation(path, 1, 'X', 7);
  rotate_checkpoints(path, 3);
  EXPECT_FALSE(std::filesystem::exists(path));
  EXPECT_FALSE(std::filesystem::exists(path + ".1"));
  EXPECT_EQ(read_checkpoint_file(path + ".2").payload[0], 'X');
  std::filesystem::remove_all(dir);
}

TEST(CheckpointRetention, ReadNewestFallsBackPastCorruptFrames) {
  const std::string dir = temp_dir("ckpt_fallback");
  const std::string path = dir + "/s.ckpt";

  // Nothing on disk at all: a fresh start, not an error.
  EXPECT_FALSE(read_newest_checkpoint(path, 3).has_value());

  write_generation(path, 0, 'N', 30);
  write_generation(path, 1, 'M', 20);
  write_generation(path, 2, 'O', 10);
  auto got = read_newest_checkpoint(path, 3);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->payload[0], 'N');
  EXPECT_EQ(got->stream_offset, 30u);

  // Corrupt the newest: the reader counts the rejection and falls back to
  // generation 1.
  {
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    f << "garbage";
  }
  const std::uint64_t before = corrupt_count();
  got = read_newest_checkpoint(path, 3);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->payload[0], 'M');
  EXPECT_EQ(got->stream_offset, 20u);
  EXPECT_GT(corrupt_count(), before);

  // All generations corrupt: throwing beats silently resuming from
  // nothing when frames were demonstrably written.
  for (std::size_t gen = 1; gen < 3; ++gen) {
    std::ofstream f(checkpoint_generation_path(path, gen),
                    std::ios::binary | std::ios::trunc);
    f << "garbage";
  }
  EXPECT_THROW((void)read_newest_checkpoint(path, 3), CheckpointError);

  // A frame outside the retention window is invisible to the reader.
  std::filesystem::remove(path);
  std::filesystem::remove(path + ".1");
  std::filesystem::remove(path + ".2");
  write_generation(path, 2, 'Z', 5);
  EXPECT_FALSE(read_newest_checkpoint(path, 2).has_value());
  std::filesystem::remove_all(dir);
}

TEST(CheckpointRetention, PipelineKeepsGenerationsAndResumesAfterCorruption) {
  const std::string dir = temp_dir("ckpt_pipeline_keep");
  std::vector<std::uint64_t> trace(40000);
  for (std::size_t i = 0; i < trace.size(); ++i) trace[i] = i % 512;

  PipelineOptions opt;
  opt.shards = 1;
  opt.producers = 1;
  opt.checkpoint_dir = dir;
  opt.checkpoint_interval = 4096;  // many checkpoints over 40k items
  opt.checkpoint_keep = 3;
  const auto cm_factory = [](std::size_t) {
    SheConfig cfg;
    cfg.window = 1u << 12;
    cfg.cells = 1 << 14;
    cfg.group_cells = 64;
    cfg.alpha = 3.0;
    return SheCountMin(cfg, 4);
  };
  std::uint64_t expect_freq = 0;
  {
    IngestPipeline<SheCountMin> pipe(opt, cm_factory);
    pipe.start();
    ASSERT_EQ(pipe.push_bulk(0, trace), trace.size());
    pipe.close();
    expect_freq = pipe.snapshot(0).frequency(42);
  }
  const std::string base = dir + "/shard-0.ckpt";
  EXPECT_TRUE(std::filesystem::exists(base));
  EXPECT_TRUE(std::filesystem::exists(base + ".1"));
  EXPECT_TRUE(std::filesystem::exists(base + ".2"));
  // Generations are strictly ordered by stream offset, newest first.
  const std::uint64_t o0 = read_checkpoint_file(base).stream_offset;
  const std::uint64_t o1 = read_checkpoint_file(base + ".1").stream_offset;
  const std::uint64_t o2 = read_checkpoint_file(base + ".2").stream_offset;
  EXPECT_GT(o0, o1);
  EXPECT_GT(o1, o2);
  EXPECT_EQ(o0, trace.size());  // the final close() frame saw everything

  // Smash the newest frame; resume falls back to generation 1 and reports
  // its offset so a replaying driver knows where to pick up.
  {
    std::ofstream f(base, std::ios::binary | std::ios::trunc);
    f << "not a checkpoint";
  }
  opt.resume = true;
  IngestPipeline<SheCountMin> pipe(opt, cm_factory);
  EXPECT_EQ(pipe.resume_offset(0), o1);
  pipe.start();
  // Replay the tail the fallback frame missed; the estimator is
  // deterministic, so the final answer matches the uninterrupted run.
  ASSERT_EQ(pipe.push_bulk(
                0, std::span<const std::uint64_t>(trace.data() + o1,
                                                  trace.size() - o1)),
            trace.size() - o1);
  pipe.close();
  EXPECT_EQ(pipe.snapshot(0).frequency(42), expect_freq);
  std::filesystem::remove_all(dir);
}

// ------------------------------- RateWindow ---------------------------------

TEST(RateWindow, ComputesWindowedRate) {
  RateWindow w(/*window_seconds=*/2);
  auto ns = [](double s) { return static_cast<std::int64_t>(s * 1e9); };
  EXPECT_EQ(w.rate(), 0.0);
  w.sample(ns(0.0), 0);
  EXPECT_EQ(w.rate(), 0.0);  // one sample spans no interval
  w.sample(ns(1.0), 1000);
  EXPECT_DOUBLE_EQ(w.rate(), 1000.0);
  w.sample(ns(2.0), 3000);
  EXPECT_DOUBLE_EQ(w.rate(), 1500.0);  // covers [0, 2]
  // Old samples fall out: [2, 4] saw (5000 - 3000) / 2 s.
  w.sample(ns(3.0), 4000);
  w.sample(ns(4.0), 5000);
  EXPECT_DOUBLE_EQ(w.rate(), 1000.0);
  // A counter that stops moving decays the rate to 0.
  w.sample(ns(10.0), 5000);
  EXPECT_DOUBLE_EQ(w.rate(), 0.0);
}

// --------------------------- fault spec parsing -----------------------------

TEST(FaultSpec, ParsesAllForms) {
  auto s = fault::parse_spec("throw");
  EXPECT_EQ(s.point, fault::Point::kWorkerThrow);
  EXPECT_EQ(s.shard, fault::kAnyShard);
  s = fault::parse_spec("stall:any:1000:250");
  EXPECT_EQ(s.point, fault::Point::kConsumerStall);
  EXPECT_EQ(s.shard, fault::kAnyShard);
  EXPECT_EQ(s.at, 1000u);
  EXPECT_EQ(s.param, 250u);
  s = fault::parse_spec("ckpt-bitflip:2:1:42");
  EXPECT_EQ(s.point, fault::Point::kCheckpointBitFlip);
  EXPECT_EQ(s.shard, 2u);
  s = fault::parse_spec("ckpt-truncate:0");
  EXPECT_EQ(s.point, fault::Point::kCheckpointTruncate);
  s = fault::parse_spec("wal-torn:0:5");
  EXPECT_EQ(s.point, fault::Point::kWalTornWrite);
  EXPECT_EQ(s.shard, 0u);
  EXPECT_EQ(s.at, 5u);
  s = fault::parse_spec("wal-partial:any:2");
  EXPECT_EQ(s.point, fault::Point::kWalPartialFrame);
  EXPECT_EQ(s.shard, fault::kAnyShard);
  EXPECT_EQ(s.at, 2u);
  s = fault::parse_spec("wal-short-fsync");
  EXPECT_EQ(s.point, fault::Point::kWalShortFsync);
  EXPECT_THROW((void)fault::parse_spec("frob"), std::invalid_argument);
  EXPECT_THROW((void)fault::parse_spec("throw:x"), std::invalid_argument);
  EXPECT_THROW((void)fault::parse_spec("throw:0:1:2:3"), std::invalid_argument);
}

#if defined(SHE_FAULT_INJECTION)

/// Clears the process-global injector around every test so armed specs
/// never leak across tests.
class FaultTolerance : public ::testing::Test {
 protected:
  void SetUp() override { fault::injector().clear(); }
  void TearDown() override { fault::injector().clear(); }
};

SheConfig bf_cfg(std::uint64_t window) {
  SheConfig cfg;
  cfg.window = window;
  cfg.cells = 1 << 14;
  cfg.group_cells = 64;
  cfg.alpha = 3.0;
  return cfg;
}

IngestPipeline<SheBloomFilter>::Factory bf_factory(std::size_t shards,
                                                   std::uint64_t window) {
  return [shards, window](std::size_t s) {
    SheConfig cfg = bf_cfg(window / shards);
    cfg.seed = static_cast<std::uint32_t>(s);
    return SheBloomFilter(cfg, 8);
  };
}

template <typename Estimator>
std::string serialized(const Estimator& est) {
  std::stringstream ss;
  BinaryWriter w(ss);
  est.save(w);
  return ss.str();
}

/// The acceptance scenario: checkpoint every k items, kill the worker
/// mid-stream, then resume from the frames and replay the rest of the
/// trace — the final serialized state must be byte-for-byte identical to
/// an unfaulted sequential run.
template <typename Estimator>
void kill_and_recover_byte_identical(
    const std::function<Estimator(std::size_t)>& factory) {
  constexpr std::size_t kShards = 2;
  const auto trace = stream::distinct_trace(50'000, 21);
  const std::string dir =
      temp_dir((std::string("kill_recover_") + typeid(Estimator).name())
                   .c_str());

  Sharded<Estimator> reference(kShards, factory);
  for (auto k : trace) reference.insert(k);

  PipelineOptions opt;
  opt.shards = kShards;
  opt.producers = 1;
  opt.queue_capacity = 1024;
  opt.publish_interval = 512;
  opt.policy = Backpressure::kBlock;
  opt.checkpoint_dir = dir;
  opt.checkpoint_interval = 2048;

  // Run 1: no supervisor — the injected throw kills shard 0's worker for
  // good mid-stream.  Pushes to the dead shard fail fast instead of
  // hanging, so the producer still completes.
  fault::injector().arm({fault::Point::kWorkerThrow, 0, 20'000, 0});
  {
    IngestPipeline<Estimator> pipe(opt, factory);
    pipe.start();
    (void)pipe.push_bulk(0, trace);
    pipe.close();
    const auto st = pipe.stats();
    EXPECT_EQ(st.worker_faults, 1u);
    EXPECT_TRUE(pipe.faulted());
    EXPECT_GT(st.checkpoints, 0u);
  }
  fault::injector().clear();

  // Run 2: resume from the surviving frames, skip each shard's recorded
  // prefix, replay the remainder of the same trace.
  PipelineOptions ropt = opt;
  ropt.resume = true;
  IngestPipeline<Estimator> pipe(ropt, factory);
  std::vector<std::uint64_t> skip(kShards);
  std::uint64_t skip_total = 0;
  for (std::size_t s = 0; s < kShards; ++s) {
    skip[s] = pipe.resume_offset(s);
    skip_total += skip[s];
  }
  EXPECT_GT(skip_total, 0u);
  pipe.start();
  for (auto key : trace) {
    const std::size_t s = pipe.shard_of(key);
    if (skip[s] > 0) {
      --skip[s];
      continue;
    }
    ASSERT_TRUE(pipe.push(0, key));
  }
  pipe.close();
  EXPECT_FALSE(pipe.faulted());

  for (std::size_t s = 0; s < kShards; ++s) {
    EXPECT_EQ(serialized(pipe.snapshot(s)), serialized(reference.shard(s)))
        << "shard " << s << " state diverged across kill + resume";
  }
  std::filesystem::remove_all(dir);
}

TEST_F(FaultTolerance, KillAndRecoverByteIdenticalSheBloom) {
  kill_and_recover_byte_identical<SheBloomFilter>(bf_factory(2, 16'384));
}

TEST_F(FaultTolerance, KillAndRecoverByteIdenticalSheCountMin) {
  kill_and_recover_byte_identical<SheCountMin>([](std::size_t s) {
    SheConfig cfg;
    cfg.window = 8192;
    cfg.cells = 1 << 13;
    cfg.group_cells = 64;
    cfg.alpha = 1.0;
    cfg.seed = static_cast<std::uint32_t>(s);
    return SheCountMin(cfg, 8);
  });
}

TEST_F(FaultTolerance, CorruptCheckpointRejectedOnResume) {
  const std::string dir = temp_dir("corrupt_resume");
  const auto trace = stream::distinct_trace(20'000, 5);
  PipelineOptions opt;
  opt.shards = 1;
  opt.producers = 1;
  opt.publish_interval = 512;
  opt.checkpoint_dir = dir;
  opt.checkpoint_interval = 1024;
  // Run a clean checkpointed ingest, then flip one payload bit in the
  // durable file — the resume constructor must refuse to load it.
  {
    IngestPipeline<SheBloomFilter> pipe(opt, bf_factory(1, 8192));
    pipe.start();
    ASSERT_EQ(pipe.push_bulk(0, trace), trace.size());
    pipe.close();
  }
  const std::string path = dir + "/shard-0.ckpt";
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    f.seekp(40);
    char b = 0;
    f.seekg(40);
    f.read(&b, 1);
    b = static_cast<char>(b ^ 0x01);
    f.seekp(40);
    f.write(&b, 1);
  }
  PipelineOptions ropt = opt;
  ropt.resume = true;
  const std::uint64_t before = corrupt_count();
  EXPECT_THROW(IngestPipeline<SheBloomFilter>(ropt, bf_factory(1, 8192)),
               CheckpointError);
  EXPECT_EQ(corrupt_count(), before + 1);
  std::filesystem::remove_all(dir);
}

TEST_F(FaultTolerance, InjectedCheckpointCorruptionIsCaughtOnRead) {
  // End-to-end through the injection hook: the frame is bit-flipped on its
  // way to disk, and the durable file is rejected instead of loaded.
  const std::string dir = temp_dir("inject_bitflip");
  const auto trace = stream::distinct_trace(8'000, 9);
  PipelineOptions opt;
  opt.shards = 1;
  opt.producers = 1;
  opt.publish_interval = 512;
  opt.checkpoint_dir = dir;
  opt.checkpoint_interval = 100'000;  // only the final frame is written
  fault::injector().arm({fault::Point::kCheckpointBitFlip, 0, 0, 12345});
  {
    IngestPipeline<SheBloomFilter> pipe(opt, bf_factory(1, 4096));
    pipe.start();
    ASSERT_EQ(pipe.push_bulk(0, trace), trace.size());
    pipe.close();
  }
  const std::uint64_t before = corrupt_count();
  EXPECT_THROW((void)read_checkpoint_file(dir + "/shard-0.ckpt"),
               CheckpointError);
  EXPECT_EQ(corrupt_count(), before + 1);
  std::filesystem::remove_all(dir);
}

TEST_F(FaultTolerance, SupervisorRestartsFaultedWorkerLosslesslyAccounted) {
  const auto trace = stream::distinct_trace(40'000, 31);
  PipelineOptions opt;
  opt.shards = 1;
  opt.producers = 1;
  opt.queue_capacity = 512;
  opt.publish_interval = 256;
  opt.policy = Backpressure::kBlock;
  opt.supervise = true;
  opt.supervisor_interval_ms = 2;
  fault::injector().arm({fault::Point::kWorkerThrow, 0, 8'000, 0});

  IngestPipeline<SheBloomFilter> pipe(opt, bf_factory(1, 16'384));
  pipe.start();
  ASSERT_EQ(pipe.push_bulk(0, trace), trace.size());
  pipe.close();

  const auto st = pipe.stats();
  EXPECT_EQ(st.worker_faults, 1u);
  EXPECT_GE(st.worker_restarts, 1u);
  EXPECT_EQ(st.dropped, 0u);
  EXPECT_EQ(st.produced, trace.size());
  // Conservation: what the estimator ends up having seen is exactly the
  // accepted stream minus what the rollback discarded (the ring backlog is
  // replayed, not lost).
  EXPECT_EQ(pipe.snapshot(0).time() + st.items_lost, trace.size());
  EXPECT_FALSE(pipe.faulted());
}

TEST_F(FaultTolerance, SupervisorFencesWedgedWorkerWithoutLoss) {
  const auto trace = stream::distinct_trace(30'000, 33);
  PipelineOptions opt;
  opt.shards = 1;
  opt.producers = 1;
  opt.queue_capacity = 512;
  opt.publish_interval = 256;
  opt.policy = Backpressure::kBlock;
  opt.supervise = true;
  opt.supervisor_interval_ms = 5;
  opt.heartbeat_timeout_ms = 100;
  // Stall the worker for 500 ms early in the stream: long enough that the
  // supervisor must flag it, cooperative enough that the fence hand-over
  // (not a kill) resolves it.
  fault::injector().arm({fault::Point::kConsumerStall, 0, 2'000, 500});

  IngestPipeline<SheBloomFilter> pipe(opt, bf_factory(1, 16'384));
  pipe.start();
  ASSERT_EQ(pipe.push_bulk(0, trace), trace.size());
  pipe.close();

  const auto st = pipe.stats();
  EXPECT_GE(st.worker_wedged, 1u);
  EXPECT_GE(st.worker_restarts, 1u);
  EXPECT_EQ(st.worker_faults, 0u);
  EXPECT_EQ(st.items_lost, 0u);  // fenced hand-over publishes before exit
  EXPECT_EQ(pipe.snapshot(0).time(), trace.size());
}

TEST_F(FaultTolerance, BlockTimeoutReturnsWithinConfiguredTimeout) {
  PipelineOptions opt;
  opt.shards = 1;
  opt.producers = 1;
  opt.queue_capacity = 64;
  opt.policy = Backpressure::kBlockTimeout;
  opt.push_timeout_ms = 100;
  // Workers never started: the ring fills and stays full, so the first
  // rejected push is the one whose latency we bound.
  IngestPipeline<SheBloomFilter> pipe(opt, bf_factory(1, 4096));
  std::size_t accepted = 0;
  for (;;) {
    const auto t0 = std::chrono::steady_clock::now();
    if (pipe.push(0, accepted)) {
      ++accepted;
      continue;
    }
    const auto elapsed = std::chrono::steady_clock::now() - t0;
    EXPECT_GE(elapsed, std::chrono::milliseconds(100));
    // Generous bound (tsan, loaded CI): the point is "bounded", not "tight".
    EXPECT_LT(elapsed, std::chrono::seconds(10));
    break;
  }
  EXPECT_GT(accepted, 0u);
  EXPECT_LE(accepted, 64u);

  const auto st = pipe.stats();
  EXPECT_EQ(st.push_timeouts, 1u);

  // The fault/recovery counters must surface in both export formats.
  std::ostringstream prom, json;
  obs::write_prometheus(prom, pipe.metrics_registry());
  obs::write_json(json, pipe.metrics_registry());
  for (const char* name :
       {"she_pipeline_push_timeouts_total", "she_pipeline_worker_restarts_total",
        "she_pipeline_worker_faults_total", "she_pipeline_items_lost_total",
        "she_pipeline_items_replayed_total", "she_pipeline_checkpoints_total",
        "she_pipeline_rate_items_per_sec"}) {
    EXPECT_NE(prom.str().find(name), std::string::npos) << name;
    EXPECT_NE(json.str().find(name), std::string::npos) << name;
  }
  pipe.close();
}

TEST_F(FaultTolerance, DeadShardAbortsBlockedPushes) {
  // A faulted shard with no supervisor must fail pushes instead of letting
  // producers spin forever behind a consumer that will never drain.
  const auto trace = stream::distinct_trace(30'000, 41);
  PipelineOptions opt;
  opt.shards = 1;
  opt.producers = 1;
  opt.queue_capacity = 256;
  opt.policy = Backpressure::kBlock;
  fault::injector().arm({fault::Point::kWorkerThrow, 0, 1'000, 0});
  IngestPipeline<SheBloomFilter> pipe(opt, bf_factory(1, 8192));
  pipe.start();
  const std::size_t accepted = pipe.push_bulk(0, trace);
  EXPECT_LT(accepted, trace.size());
  const auto st = pipe.stats();
  EXPECT_EQ(st.worker_faults, 1u);
  EXPECT_GT(st.dropped, 0u);
  EXPECT_TRUE(pipe.faulted());
  pipe.close();
}

// ------------------- write-ahead backlog log (zero-loss) --------------------

/// The zero-loss acceptance scenario: ingest through the WAL with a
/// seq-tagged client identity, kill shard 0's worker mid-stream (the moral
/// equivalent of kill -9 — accepted items past the last checkpoint live
/// only in the backlog log), then resume.  The WAL holds every accepted
/// item in arrival order, so the resumed estimator must be byte-for-byte
/// identical to an unfaulted sequential run — and a client replaying its
/// last batch with the same sequence number must be deduplicated.
template <typename Estimator>
void wal_crash_replay_byte_identical(
    const std::function<Estimator(std::size_t)>& factory, std::size_t shards,
    const char* tag) {
  const auto trace = stream::distinct_trace(30'000, 23);
  const std::string dir = temp_dir((std::string("wal_crash_") + tag).c_str());

  Sharded<Estimator> reference(shards, factory);
  for (auto k : trace) reference.insert(k);

  PipelineOptions opt;
  opt.shards = shards;
  opt.producers = 1;
  opt.queue_capacity = 1024;
  opt.publish_interval = 512;
  opt.policy = Backpressure::kBlock;
  opt.checkpoint_dir = dir;
  opt.checkpoint_interval = 2048;
  opt.wal_mode = WalMode::kAsync;

  constexpr std::uint64_t kClient = 99;
  constexpr std::size_t kChunk = 500;
  std::uint64_t seq = 0;
  std::span<const std::uint64_t> last_chunk;
  std::uint64_t last_seq = 0;

  // Run 1: the injected throw kills shard 0's worker for good mid-stream.
  // Accepted items keep landing in the WAL even when the ring push fails —
  // durable-but-not-yet-live is exactly the state resume must repair.
  fault::injector().arm({fault::Point::kWorkerThrow, 0, 10'000, 0});
  {
    IngestPipeline<Estimator> pipe(opt, factory);
    pipe.start();
    for (std::size_t i = 0; i < trace.size(); i += kChunk) {
      const std::size_t n = std::min(kChunk, trace.size() - i);
      last_chunk = std::span<const std::uint64_t>(trace.data() + i, n);
      last_seq = ++seq;
      (void)pipe.push_bulk(0, last_chunk, kClient, last_seq, 0);
    }
    pipe.close();
    EXPECT_TRUE(pipe.faulted());
  }
  fault::injector().clear();

  // Run 2: resume replays the backlog past each shard's newest checkpoint.
  // No trace replay from the driver is needed — the log held everything.
  PipelineOptions ropt = opt;
  ropt.resume = true;
  IngestPipeline<Estimator> pipe(ropt, factory);
  std::vector<std::uint64_t> per_shard(shards, 0);
  for (auto k : trace) ++per_shard[pipe.shard_of(k)];
  for (std::size_t s = 0; s < shards; ++s)
    EXPECT_EQ(pipe.resume_offset(s), per_shard[s]) << "shard " << s;

  // A client that never saw the ack for its final batch replays it with the
  // same sequence number: accepted (so the client unblocks) but applied
  // zero times — the dedup table survived the restart through the log.
  pipe.start();
  ASSERT_EQ(pipe.push_bulk(0, last_chunk, kClient, last_seq, 0),
            last_chunk.size());
  pipe.close();
  EXPECT_FALSE(pipe.faulted());

  for (std::size_t s = 0; s < shards; ++s) {
    EXPECT_EQ(serialized(pipe.snapshot(s)), serialized(reference.shard(s)))
        << "shard " << s << " state diverged across kill + WAL resume";
  }
  std::filesystem::remove_all(dir);
}

TEST_F(FaultTolerance, WalCrashReplayByteIdenticalSheBloom) {
  wal_crash_replay_byte_identical<SheBloomFilter>(
      [](std::size_t s) {
        SheConfig cfg;
        cfg.window = 2048;
        cfg.cells = 1 << 14;
        cfg.group_cells = 64;
        cfg.alpha = 2.0;
        cfg.seed = static_cast<std::uint32_t>(s);
        return SheBloomFilter(cfg, 8);
      },
      2, "bloom");
}

TEST_F(FaultTolerance, WalCrashReplayByteIdenticalSheCountMin) {
  wal_crash_replay_byte_identical<SheCountMin>(
      [](std::size_t s) {
        SheConfig cfg;
        cfg.window = 8192;
        cfg.cells = 1 << 13;
        cfg.group_cells = 64;
        cfg.alpha = 1.0;
        cfg.seed = static_cast<std::uint32_t>(s);
        return SheCountMin(cfg, 8);
      },
      2, "cm");
}

TEST_F(FaultTolerance, WalCrashReplayByteIdenticalSheBitmap) {
  wal_crash_replay_byte_identical<SheBitmap>(
      [](std::size_t s) {
        SheConfig cfg;
        cfg.window = 8192;
        cfg.cells = 1 << 13;
        cfg.group_cells = 64;
        cfg.alpha = 0.2;
        cfg.seed = static_cast<std::uint32_t>(s);
        return SheBitmap(cfg);
      },
      2, "bitmap");
}

TEST_F(FaultTolerance, WalCrashReplayByteIdenticalSheHyperLogLog) {
  wal_crash_replay_byte_identical<SheHyperLogLog>(
      [](std::size_t s) {
        SheConfig cfg;
        cfg.window = 8192;
        cfg.cells = 512;
        cfg.group_cells = 1;
        cfg.alpha = 0.2;
        cfg.seed = static_cast<std::uint32_t>(s);
        return SheHyperLogLog(cfg);
      },
      2, "hll");
}

TEST_F(FaultTolerance, WalCrashReplayByteIdenticalSheMinHash) {
  wal_crash_replay_byte_identical<SheMinHash>(
      [](std::size_t s) {
        SheConfig cfg;
        cfg.window = 1024;
        cfg.cells = 128;
        cfg.group_cells = 1;
        cfg.alpha = 0.2;
        cfg.seed = static_cast<std::uint32_t>(s);
        return SheMinHash(cfg);
      },
      1, "minhash");
}

/// A failed WAL append (torn write, partial frame, or short fsync) must
/// surface as a typed WalError with the batch NOT recorded as durable, so
/// the client's retry under the same sequence number lands exactly once —
/// and a duplicate replay after the ack is suppressed, both before and
/// after a restart.
void wal_failed_append_retry(fault::Point point, WalMode mode,
                             const char* tag) {
  const std::string dir = temp_dir((std::string("wal_retry_") + tag).c_str());
  const auto trace = stream::distinct_trace(4'000, 47);
  const auto factory = bf_factory(1, 8192);

  Sharded<SheBloomFilter> reference(1, factory);
  for (auto k : trace) reference.insert(k);

  PipelineOptions opt;
  opt.shards = 1;
  opt.producers = 1;
  opt.publish_interval = 256;
  opt.checkpoint_dir = dir;
  opt.checkpoint_interval = 1u << 20;  // only the final close() frame
  opt.wal_mode = mode;

  const std::size_t half = trace.size() / 2;
  const std::span<const std::uint64_t> first(trace.data(), half);
  const std::span<const std::uint64_t> second(trace.data() + half,
                                              trace.size() - half);
  constexpr std::uint64_t kClient = 7;

  // The injected fault hits WAL frame seq 2 — the second batch's append.
  fault::injector().arm({point, 0, 2, 0});
  {
    IngestPipeline<SheBloomFilter> pipe(opt, factory);
    pipe.start();
    ASSERT_EQ(pipe.push_bulk(0, first, kClient, 1, 0), first.size());
    EXPECT_THROW((void)pipe.push_bulk(0, second, kClient, 2, 0), WalError);
    // The failed append must not have recorded seq 2 as durable: the retry
    // is accepted and applied exactly once ...
    ASSERT_EQ(pipe.push_bulk(0, second, kClient, 2, 0), second.size());
    // ... and a lost-ack duplicate of the now-durable batch is absorbed.
    ASSERT_EQ(pipe.push_bulk(0, second, kClient, 2, 0), second.size());
    pipe.close();
    EXPECT_FALSE(pipe.faulted());
    EXPECT_EQ(serialized(pipe.snapshot(0)), serialized(reference.shard(0)));
  }
  fault::injector().clear();

  // Restart: the dedup table rides the log, so the same duplicate replay
  // is still suppressed and the state stays byte-identical.
  PipelineOptions ropt = opt;
  ropt.resume = true;
  IngestPipeline<SheBloomFilter> pipe(ropt, factory);
  EXPECT_EQ(pipe.resume_offset(0), trace.size());
  pipe.start();
  ASSERT_EQ(pipe.push_bulk(0, second, kClient, 2, 0), second.size());
  pipe.close();
  EXPECT_EQ(serialized(pipe.snapshot(0)), serialized(reference.shard(0)));
  std::filesystem::remove_all(dir);
}

TEST_F(FaultTolerance, WalTornWriteRetryLandsExactlyOnce) {
  wal_failed_append_retry(fault::Point::kWalTornWrite, WalMode::kAsync,
                          "torn");
}

TEST_F(FaultTolerance, WalPartialFrameRetryLandsExactlyOnce) {
  wal_failed_append_retry(fault::Point::kWalPartialFrame, WalMode::kAsync,
                          "partial");
}

TEST_F(FaultTolerance, WalShortFsyncRetryLandsExactlyOnce) {
  wal_failed_append_retry(fault::Point::kWalShortFsync, WalMode::kFsync,
                          "short_fsync");
}

TEST_F(FaultTolerance, WalShedsBeforeLoggingOnBlockTimeout) {
  // A BlockTimeout (or request-deadline) expiry against a full ring must
  // shed the batch *before* anything reaches the log: a shed batch is
  // never durable, its client seq is never recorded, and the retry lands
  // exactly once.  Were the append to happen first, the log would hold a
  // durable-but-never-live batch mid-stream and every later checkpoint
  // offset would name the wrong log prefix.
  const std::string dir = temp_dir("wal_shed_before_log");
  const auto factory = bf_factory(1, 8192);
  PipelineOptions opt;
  opt.shards = 1;
  opt.producers = 1;
  opt.queue_capacity = 64;
  opt.policy = Backpressure::kBlockTimeout;
  opt.push_timeout_ms = 50;
  opt.checkpoint_dir = dir;
  opt.checkpoint_interval = 1u << 20;
  opt.wal_mode = WalMode::kAsync;

  std::vector<std::uint64_t> b1(64), b2(10);
  for (std::size_t i = 0; i < b1.size(); ++i) b1[i] = i;
  for (std::size_t i = 0; i < b2.size(); ++i) b2[i] = 1000 + i;
  Sharded<SheBloomFilter> reference(1, factory);
  for (auto k : b1) reference.insert(k);
  for (auto k : b2) reference.insert(k);

  constexpr std::uint64_t kClient = 5;
  std::string final_image;
  {
    IngestPipeline<SheBloomFilter> pipe(opt, factory);
    // Workers not started yet: the first batch fills the ring exactly,
    // the second cannot reserve space and must time out with nothing
    // logged and nothing recorded.
    ASSERT_EQ(pipe.push_bulk(0, b1, kClient, 1, 0), b1.size());
    ASSERT_EQ(pipe.push_bulk(0, b2, kClient, 2, 0), 0u);
    EXPECT_EQ(pipe.stats().push_timeouts, 1u);
    {
      const WalScan scan = read_wal(dir + "/shard-0.wal");
      ASSERT_EQ(scan.frames.size(), 1u);  // the shed batch never hit the log
      EXPECT_EQ(scan.end_offset, b1.size());
    }
    // The same-seq retry is accepted once the ring has room — it was
    // never marked durable — and a post-ack duplicate is absorbed.
    pipe.start();
    ASSERT_EQ(pipe.push_bulk(0, b2, kClient, 2, 0), b2.size());
    ASSERT_EQ(pipe.push_bulk(0, b2, kClient, 2, 0), b2.size());
    pipe.close();
    final_image = serialized(pipe.snapshot(0));
    EXPECT_EQ(final_image, serialized(reference.shard(0)));
  }

  // And the log agrees: resume reconstructs the same state.
  PipelineOptions ropt = opt;
  ropt.resume = true;
  IngestPipeline<SheBloomFilter> rpipe(ropt, factory);
  EXPECT_EQ(rpipe.resume_offset(0), b1.size() + b2.size());
  rpipe.close();
  EXPECT_EQ(serialized(rpipe.snapshot(0)), final_image);
  std::filesystem::remove_all(dir);
}

TEST_F(FaultTolerance, WalMultiProducerCrashReplayByteIdentical) {
  // With the WAL on, every sub-batch is logged and enqueued in one
  // critical section on the shard's WAL lane, so drain order equals
  // log-append order no matter which producer slot carried the batch —
  // and a crash+resume replay reconstructs exactly that order.  (Batches
  // here rotate across three producer indices from one thread, so the
  // admitted order is the call order and the reference is sequential.)
  const auto factory = bf_factory(1, 16'384);
  const auto trace = stream::distinct_trace(20'000, 29);
  const std::string dir = temp_dir("wal_multiproducer");
  Sharded<SheBloomFilter> reference(1, factory);
  for (auto k : trace) reference.insert(k);

  PipelineOptions opt;
  opt.shards = 1;
  opt.producers = 3;
  opt.queue_capacity = 512;
  opt.publish_interval = 256;
  opt.policy = Backpressure::kBlock;
  opt.checkpoint_dir = dir;
  opt.checkpoint_interval = 2048;
  opt.wal_mode = WalMode::kAsync;

  fault::injector().arm({fault::Point::kWorkerThrow, 0, 9'000, 0});
  {
    IngestPipeline<SheBloomFilter> pipe(opt, factory);
    pipe.start();
    constexpr std::size_t kChunk = 250;
    std::size_t producer = 0;
    for (std::size_t i = 0; i < trace.size(); i += kChunk) {
      const std::size_t n = std::min(kChunk, trace.size() - i);
      (void)pipe.push_bulk(
          producer, std::span<const std::uint64_t>(trace.data() + i, n));
      producer = (producer + 1) % opt.producers;
    }
    pipe.close();
    EXPECT_TRUE(pipe.faulted());
  }
  fault::injector().clear();

  PipelineOptions ropt = opt;
  ropt.resume = true;
  IngestPipeline<SheBloomFilter> pipe(ropt, factory);
  EXPECT_EQ(pipe.resume_offset(0), trace.size());
  pipe.close();
  EXPECT_EQ(serialized(pipe.snapshot(0)), serialized(reference.shard(0)));
  std::filesystem::remove_all(dir);
}

TEST_F(FaultTolerance, WalSupervisedRestartHealsRollbackFromLog) {
  // A supervised fault rolls the estimator back to its last published
  // snapshot; without the WAL the items applied since are gone (counted
  // in items_lost).  With the WAL on they were all logged before they
  // were applied, so the restart heals them back from the log: nothing
  // is lost, the live state stays byte-identical to a sequential run,
  // and checkpoint offsets written after the restart still name exact
  // log prefixes — verified by the resume replay at the end.
  const auto factory = bf_factory(1, 16'384);
  const auto trace = stream::distinct_trace(30'000, 37);
  const std::string dir = temp_dir("wal_restart_heal");
  Sharded<SheBloomFilter> reference(1, factory);
  for (auto k : trace) reference.insert(k);

  PipelineOptions opt;
  opt.shards = 1;
  opt.producers = 1;
  opt.queue_capacity = 512;
  opt.publish_interval = 256;
  opt.policy = Backpressure::kBlock;
  opt.supervise = true;
  opt.supervisor_interval_ms = 2;
  opt.checkpoint_dir = dir;
  opt.checkpoint_interval = 2048;
  opt.wal_mode = WalMode::kAsync;
  fault::injector().arm({fault::Point::kWorkerThrow, 0, 8'000, 0});

  IngestPipeline<SheBloomFilter> pipe(opt, factory);
  pipe.start();
  ASSERT_EQ(pipe.push_bulk(0, trace), trace.size());
  pipe.close();
  const auto st = pipe.stats();
  EXPECT_EQ(st.worker_faults, 1u);
  EXPECT_GE(st.worker_restarts, 1u);
  EXPECT_EQ(st.items_lost, 0u);  // healed from the log, not lost
  EXPECT_EQ(serialized(pipe.snapshot(0)), serialized(reference.shard(0)));
  fault::injector().clear();

  PipelineOptions ropt = opt;
  ropt.resume = true;
  IngestPipeline<SheBloomFilter> rpipe(ropt, factory);
  EXPECT_EQ(rpipe.resume_offset(0), trace.size());
  rpipe.close();
  EXPECT_EQ(serialized(rpipe.snapshot(0)), serialized(reference.shard(0)));
  std::filesystem::remove_all(dir);
}

TEST_F(FaultTolerance, AllCheckpointGenerationsCorruptFailsLoudly) {
  // Retention is not a license to resume from nothing: when every retained
  // generation is demonstrably corrupt, the resume constructor must throw
  // the typed error instead of silently starting fresh.
  const std::string dir = temp_dir("all_gens_corrupt");
  const auto trace = stream::distinct_trace(12'000, 51);
  PipelineOptions opt;
  opt.shards = 1;
  opt.producers = 1;
  opt.publish_interval = 512;
  opt.checkpoint_dir = dir;
  opt.checkpoint_interval = 1024;
  opt.checkpoint_keep = 2;
  {
    IngestPipeline<SheBloomFilter> pipe(opt, bf_factory(1, 8192));
    pipe.start();
    ASSERT_EQ(pipe.push_bulk(0, trace), trace.size());
    pipe.close();
  }
  const std::string base = dir + "/shard-0.ckpt";
  ASSERT_TRUE(std::filesystem::exists(base));
  ASSERT_TRUE(std::filesystem::exists(base + ".1"));
  for (const std::string& path : {base, base + ".1"}) {
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    f << "garbage";
  }
  PipelineOptions ropt = opt;
  ropt.resume = true;
  const std::uint64_t before = corrupt_count();
  EXPECT_THROW(IngestPipeline<SheBloomFilter>(ropt, bf_factory(1, 8192)),
               CheckpointError);
  EXPECT_GE(corrupt_count(), before + 2);  // both generations rejected loudly
  std::filesystem::remove_all(dir);
}

// ----------------------- concurrency (tsan-focused) -------------------------

TEST(FaultToleranceConcurrency, DropNewestMultiProducerExactAccounting) {
  constexpr std::size_t kProducers = 4;
  constexpr std::uint64_t kPerProducer = 25'000;
  PipelineOptions opt;
  opt.shards = 2;
  opt.producers = kProducers;
  opt.queue_capacity = 256;
  opt.policy = Backpressure::kDropNewest;
  IngestPipeline<SheBloomFilter> pipe(opt, bf_factory(2, 16'384));
  pipe.start();

  std::vector<std::thread> producers;
  std::atomic<std::uint64_t> accepted{0};
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      std::uint64_t ok = 0;
      for (std::uint64_t i = 0; i < kPerProducer; ++i)
        ok += pipe.push(p, p * kPerProducer + i) ? 1 : 0;
      accepted.fetch_add(ok, std::memory_order_relaxed);
    });
  }
  for (auto& t : producers) t.join();
  pipe.close();

  const auto st = pipe.stats();
  // Exact, not approximate: every offered item is counted exactly once as
  // accepted or dropped, even under full multi-producer contention.
  EXPECT_EQ(st.produced + st.dropped, kProducers * kPerProducer);
  EXPECT_EQ(st.produced, accepted.load());
  EXPECT_EQ(st.inserted, st.produced);  // accepted items all drained at close
}

TEST(FaultToleranceConcurrency, ReadersNeverSeeTornSnapshotsOrBadFrames) {
  // A SnapshotReader and a checkpoint-file reader race the worker while it
  // publishes and checkpoints at a high cadence.  The seqlock must never
  // yield a torn (unloadable or time-regressing) snapshot, and the atomic
  // write-rename must never expose a torn frame: every read is either
  // "no file yet" or a fully valid checkpoint with monotone offsets.
  const std::string dir = temp_dir("torn_race");
  const auto trace = stream::distinct_trace(60'000, 51);
  PipelineOptions opt;
  opt.shards = 1;
  opt.producers = 1;
  opt.queue_capacity = 1024;
  opt.publish_interval = 128;
  opt.policy = Backpressure::kBlock;
  opt.checkpoint_dir = dir;
  opt.checkpoint_interval = 256;
  IngestPipeline<SheBloomFilter> pipe(opt, bf_factory(1, 16'384));
  pipe.start();

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> snapshot_reads{0};
  std::atomic<std::uint64_t> frame_reads{0};
  std::thread snap_reader([&] {
    SnapshotReader<SheBloomFilter> reader(pipe.snapshot_slot(0));
    std::uint64_t last_time = 0;
    while (!stop.load(std::memory_order_acquire)) {
      try {
        const SheBloomFilter& bf = reader.get();  // throws on a torn image
        if (bf.time() < last_time) {
          ADD_FAILURE() << "snapshot time went backwards: " << bf.time()
                        << " after " << last_time;
          return;
        }
        last_time = bf.time();
      } catch (const std::exception& e) {
        ADD_FAILURE() << "torn snapshot: " << e.what();
        return;
      }
      snapshot_reads.fetch_add(1, std::memory_order_relaxed);
    }
  });
  std::thread frame_reader([&] {
    const std::string path = dir + "/shard-0.ckpt";
    std::uint64_t last_offset = 0;
    while (!stop.load(std::memory_order_acquire)) {
      try {
        const auto ck = try_read_checkpoint_file(path);  // throws if torn
        if (!ck) continue;  // no frame yet — a valid answer
        if (ck->stream_offset < last_offset) {
          ADD_FAILURE() << "checkpoint offset went backwards: "
                        << ck->stream_offset << " after " << last_offset;
          return;
        }
        last_offset = ck->stream_offset;
      } catch (const std::exception& e) {
        ADD_FAILURE() << "torn or invalid checkpoint frame: " << e.what();
        return;
      }
      frame_reads.fetch_add(1, std::memory_order_relaxed);
    }
  });

  ASSERT_EQ(pipe.push_bulk(0, trace), trace.size());
  pipe.close();
  stop.store(true, std::memory_order_release);
  snap_reader.join();
  frame_reader.join();
  EXPECT_GT(snapshot_reads.load(), 0u);
  EXPECT_GT(frame_reads.load(), 0u);
  const auto st = pipe.stats();
  EXPECT_GT(st.checkpoints, 0u);
  EXPECT_EQ(st.inserted, trace.size());
  std::filesystem::remove_all(dir);
}

#endif  // SHE_FAULT_INJECTION

}  // namespace
}  // namespace she::runtime
