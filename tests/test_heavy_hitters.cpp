// HeavyHitters tests: top-k recovery against the exact oracle on skewed
// streams, window decay of past heavy hitters, and candidate-table bounds.
#include "she/heavy_hitters.hpp"

#include <algorithm>
#include <unordered_set>

#include "stream/oracle.hpp"
#include "stream/trace.hpp"
#include <gtest/gtest.h>

namespace she {
namespace {

SheConfig hh_config(std::uint64_t window) {
  SheConfig cfg;
  cfg.window = window;
  cfg.cells = 1 << 15;
  cfg.group_cells = 64;
  cfg.alpha = 1.0;
  return cfg;
}

TEST(HeavyHitters, RejectsZeroCapacity) {
  EXPECT_THROW(HeavyHitters(hh_config(1000), 8, 0), std::invalid_argument);
}

TEST(HeavyHitters, CapacityBoundRespected) {
  HeavyHitters hh(hh_config(1000), 8, 16);
  auto trace = stream::distinct_trace(5000, 3);
  for (auto k : trace) hh.insert(k);
  EXPECT_LE(hh.candidate_count(), 16u);
}

TEST(HeavyHitters, RecoversTopKeysOnZipfStream) {
  constexpr std::uint64_t kWindow = 4096;
  HeavyHitters hh(hh_config(kWindow), 8, 64);
  stream::WindowOracle oracle(kWindow);

  stream::ZipfTraceConfig tc;
  tc.length = 4 * kWindow;
  tc.universe = 2 * kWindow;
  tc.skew = 1.1;
  tc.seed = 5;
  auto trace = stream::zipf_trace(tc);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    hh.insert(trace[i]);
    oracle.insert(trace[i]);
  }

  // True top-5 of the window.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> truth(
      oracle.counts().begin(), oracle.counts().end());
  std::partial_sort(truth.begin(), truth.begin() + 5, truth.end(),
                    [](const auto& a, const auto& b) { return a.second > b.second; });

  auto reported = hh.top(10);
  ASSERT_GE(reported.size(), 5u);
  std::unordered_set<std::uint64_t> reported_keys;
  for (const auto& e : reported) reported_keys.insert(e.key);
  // All of the true top-5 must appear in the reported top-10.
  for (int i = 0; i < 5; ++i)
    EXPECT_TRUE(reported_keys.count(truth[static_cast<std::size_t>(i)].first))
        << "missing true top key #" << i;
}

TEST(HeavyHitters, EstimatesNeverBelowTruthForReportedKeys) {
  constexpr std::uint64_t kWindow = 4096;
  HeavyHitters hh(hh_config(kWindow), 8, 32);
  stream::WindowOracle oracle(kWindow);
  stream::ZipfTraceConfig tc;
  tc.length = 3 * kWindow;
  tc.universe = kWindow;
  tc.skew = 1.0;
  tc.seed = 7;
  auto trace = stream::zipf_trace(tc);
  for (auto k : trace) {
    hh.insert(k);
    oracle.insert(k);
  }
  for (const auto& e : hh.top(10))
    EXPECT_GE(e.estimate + 2, oracle.frequency(e.key)) << "key " << e.key;
}

TEST(HeavyHitters, FormerHittersDecayOut) {
  constexpr std::uint64_t kWindow = 2048;
  HeavyHitters hh(hh_config(kWindow), 8, 16);
  // Phase 1: key A dominates.  Phase 2: key B dominates for many windows.
  for (int i = 0; i < 2000; ++i) {
    hh.insert(0xAAAA);
    hh.insert(hash64(static_cast<std::uint64_t>(i), 1));
  }
  auto before = hh.top(1);
  ASSERT_FALSE(before.empty());
  EXPECT_EQ(before[0].key, 0xAAAAu);

  for (int i = 0; i < 20000; ++i) {
    hh.insert(0xBBBB);
    hh.insert(hash64(static_cast<std::uint64_t>(i), 2));
  }
  auto after = hh.top(1);
  ASSERT_FALSE(after.empty());
  EXPECT_EQ(after[0].key, 0xBBBBu);
  // A's re-estimated frequency must have decayed to near zero.
  EXPECT_LT(hh.frequency(0xAAAA), 100u);
}

TEST(HeavyHitters, TopIsSortedAndDeterministic) {
  HeavyHitters hh(hh_config(1024), 8, 32);
  for (int rep = 0; rep < 300; ++rep)
    for (std::uint64_t k = 0; k < 10; ++k)
      for (std::uint64_t copy = 0; copy < k + 1; ++copy) hh.insert(k);
  auto top = hh.top(10);
  for (std::size_t i = 1; i < top.size(); ++i)
    EXPECT_GE(top[i - 1].estimate, top[i].estimate);
  auto again = hh.top(10);
  ASSERT_EQ(top.size(), again.size());
  for (std::size_t i = 0; i < top.size(); ++i) {
    EXPECT_EQ(top[i].key, again[i].key);
    EXPECT_EQ(top[i].estimate, again[i].estimate);
  }
}

TEST(HeavyHitters, ClearResets) {
  HeavyHitters hh(hh_config(1024), 4, 8);
  hh.insert(1);
  hh.clear();
  EXPECT_EQ(hh.candidate_count(), 0u);
  EXPECT_EQ(hh.time(), 0u);
}

}  // namespace
}  // namespace she
