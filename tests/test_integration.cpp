// Cross-module integration tests: run realistic streams through SHE, the
// baselines and the exact oracles together, asserting the paper's headline
// *relationships* (who is more accurate than whom) at reduced scale.
#include <cmath>

#include "baselines/strawman_minhash.hpp"
#include "baselines/swamp.hpp"
#include "common/stats.hpp"
#include "she/she.hpp"
#include "stream/oracle.hpp"
#include "stream/trace.hpp"
#include <gtest/gtest.h>

namespace she {
namespace {

TEST(Integration, SheBfBeatsSwampAtTightMemory) {
  // Paper Fig. 9d: at small memory, SWAMP's fingerprints collapse while
  // SHE-BF keeps a low FPR.  8 KB budget, window 4096, CAIDA-like stream
  // (window cardinality well below the window size, as in the real trace).
  constexpr std::uint64_t kWindow = 4096;
  constexpr std::size_t kBits = 1 << 16;  // 8 KB of cells
  constexpr std::size_t kBudgetBytes = kBits / 8 + 16;

  SheConfig cfg;
  cfg.window = kWindow;
  cfg.cells = kBits;
  cfg.group_cells = 64;
  cfg.alpha = 3.0;
  SheBloomFilter shebf(cfg, 8);
  ASSERT_LE(shebf.memory_bytes(), kBudgetBytes + cfg.groups() / 8 + 64);

  auto fbits = baselines::Swamp::fingerprint_bits_for_memory(kWindow, kBudgetBytes);
  ASSERT_TRUE(fbits.has_value());  // 8 KB / 4096 items -> ~7-bit fingerprints
  baselines::Swamp swamp(kWindow, *fbits);

  stream::ZipfTraceConfig tc;
  tc.length = 8 * kWindow;
  tc.universe = 2 * kWindow;
  tc.skew = 1.0;
  tc.seed = 11;
  auto trace = stream::zipf_trace(tc);
  for (auto k : trace) {
    shebf.insert(k);
    swamp.insert(k);
  }
  std::size_t fp_she = 0, fp_swamp = 0;
  auto probes = stream::distinct_trace(20000, 987654);
  for (auto k : probes) {
    if (shebf.contains(k)) ++fp_she;
    if (swamp.contains(k)) ++fp_swamp;
  }
  // SHE-BF should be at least an order of magnitude better here.
  EXPECT_LT(fp_she * 10, fp_swamp + 10);
}

TEST(Integration, SheBmBeatsSwampAtTightMemory) {
  // Paper Fig. 9a: ~2 KB SHE-BM beats SWAMP, which cannot even instantiate
  // at that budget (its queue+table need ~7.25 bits per window item) and is
  // still collision-saturated with 4x the memory.
  constexpr std::uint64_t kWindow = 4096;
  constexpr std::size_t kBits = 16384;  // 2 KB

  SheConfig cfg;
  cfg.window = kWindow;
  cfg.cells = kBits;
  cfg.group_cells = 64;
  cfg.alpha = 0.2;
  SheBitmap shebm(cfg);

  // At SHE-BM's own budget SWAMP is infeasible — itself a Fig. 9a claim.
  ASSERT_FALSE(
      baselines::Swamp::fingerprint_bits_for_memory(kWindow, kBits / 8 + 16)
          .has_value());
  // Give SWAMP 4x the memory: it runs, with collision-saturated fingerprints.
  auto fbits = baselines::Swamp::fingerprint_bits_for_memory(kWindow, kBits / 2);
  ASSERT_TRUE(fbits.has_value());
  baselines::Swamp swamp(kWindow, *fbits);

  stream::WindowOracle oracle(kWindow);
  stream::ZipfTraceConfig tc;
  tc.length = 8 * kWindow;
  tc.universe = 2 * kWindow;
  tc.skew = 1.0;
  tc.seed = 13;
  auto trace = stream::zipf_trace(tc);

  RunningStats err_she, err_swamp;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    shebm.insert(trace[i]);
    swamp.insert(trace[i]);
    oracle.insert(trace[i]);
    if (i > 3 * kWindow && i % 512 == 0) {
      double truth = static_cast<double>(oracle.cardinality());
      err_she.add(relative_error(truth, shebm.cardinality()));
      err_swamp.add(relative_error(truth, swamp.cardinality()));
    }
  }
  EXPECT_LT(err_she.mean(), 0.15);
  EXPECT_GT(err_swamp.mean(), 2 * err_she.mean());
}

TEST(Integration, SheMhBeatsStrawmanAtEqualMemory) {
  // Paper Fig. 9e: ~10x accuracy advantage at the same footprint.  Equal
  // memory means the straw-man gets ~3.6x fewer slots (11 B vs ~3.1 B).
  constexpr std::uint64_t kWindow = 2048;
  constexpr std::size_t kSheSlots = 512;

  SheConfig cfg;
  cfg.window = kWindow;
  cfg.cells = kSheSlots;
  cfg.group_cells = 1;
  cfg.alpha = 0.2;
  SheMinHash a(cfg), b(cfg);

  std::size_t straw_slots = a.memory_bytes() / 11;
  baselines::StrawmanMinHash sa(straw_slots, kWindow), sb(straw_slots, kWindow);

  stream::JaccardOracle oracle(kWindow);
  auto pair = stream::relevant_pair(12 * kWindow, 4 * kWindow, 0.6, 0.8, 17);

  RunningStats err_she, err_straw;
  for (std::size_t i = 0; i < pair.a.size(); ++i) {
    a.insert(pair.a[i]);
    b.insert(pair.b[i]);
    sa.insert(pair.a[i]);
    sb.insert(pair.b[i]);
    oracle.insert(pair.a[i], pair.b[i]);
    if (i > 6 * kWindow && i % 512 == 0) {
      double truth = oracle.jaccard();
      err_she.add(std::abs(SheMinHash::jaccard(a, b) - truth));
      err_straw.add(std::abs(baselines::StrawmanMinHash::jaccard(sa, sb) - truth));
    }
  }
  EXPECT_LT(err_she.mean(), err_straw.mean());
}

TEST(Integration, SheTracksIdealWithinSmallFactor) {
  // Fig. 11's premise: SHE costs little accuracy relative to rebuilding the
  // fixed-window sketch from exact window contents ("Ideal").
  constexpr std::uint64_t kWindow = 4096;
  constexpr std::size_t kBits = 1 << 15;

  SheConfig cfg;
  cfg.window = kWindow;
  cfg.cells = kBits;
  cfg.group_cells = 64;
  cfg.alpha = 0.2;
  SheBitmap shebm(cfg);
  stream::WindowOracle oracle(kWindow);

  stream::ZipfTraceConfig tc;
  tc.length = 8 * kWindow;
  tc.universe = 4 * kWindow;
  tc.skew = 1.0;
  tc.seed = 29;
  auto trace = stream::zipf_trace(tc);

  RunningStats err_she, err_ideal;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    shebm.insert(trace[i]);
    oracle.insert(trace[i]);
    if (i > 3 * kWindow && i % 1024 == 0) {
      double truth = static_cast<double>(oracle.cardinality());
      err_she.add(relative_error(truth, shebm.cardinality()));
      // Ideal: fixed-window Bitmap rebuilt from the exact window contents.
      fixed::Bitmap ideal(kBits);
      for (const auto& [key, cnt] : oracle.counts()) {
        (void)cnt;
        ideal.insert(key);
      }
      err_ideal.add(relative_error(truth, ideal.cardinality()));
    }
  }
  EXPECT_LT(err_she.mean(), err_ideal.mean() + 0.08);
}

TEST(Integration, AllFiveEstimatorsRunOnOneStream) {
  // Smoke-level end-to-end: one Zipf stream through every SHE estimator.
  constexpr std::uint64_t kWindow = 2048;

  SheConfig bf_cfg{kWindow, 1 << 14, 64, 3.0, 0.9, 1, 1};
  SheConfig bm_cfg{kWindow, 1 << 13, 64, 0.2, 0.9, 2, 1};
  SheConfig hll_cfg{kWindow, 1024, 1, 0.2, 0.9, 3, 1};
  SheConfig cm_cfg{kWindow, 1 << 13, 64, 1.0, 0.9, 4, 1};
  SheConfig mh_cfg{kWindow, 256, 1, 0.2, 0.9, 5, 1};

  SheBloomFilter bf(bf_cfg, 8);
  SheBitmap bm(bm_cfg);
  SheHyperLogLog hll(hll_cfg);
  SheCountMin cm(cm_cfg, 8);
  SheMinHash mh_a(mh_cfg), mh_b(mh_cfg);
  stream::WindowOracle oracle(kWindow);

  stream::ZipfTraceConfig tc;
  tc.length = 6 * kWindow;
  tc.universe = 2 * kWindow;
  tc.skew = 1.0;
  tc.seed = 31;
  auto trace = stream::zipf_trace(tc);

  for (std::size_t i = 0; i < trace.size(); ++i) {
    bf.insert(trace[i]);
    bm.insert(trace[i]);
    hll.insert(trace[i]);
    cm.insert(trace[i]);
    mh_a.insert(trace[i]);
    mh_b.insert(trace[i]);
    oracle.insert(trace[i]);
  }

  double truth = static_cast<double>(oracle.cardinality());
  EXPECT_TRUE(bf.contains(trace.back()));
  EXPECT_LT(relative_error(truth, bm.cardinality()), 0.3);
  EXPECT_LT(relative_error(truth, hll.cardinality()), 0.6);
  EXPECT_GT(SheMinHash::jaccard(mh_a, mh_b), 0.95);  // same stream both sides
  // Frequency of the hottest key.
  std::uint64_t hot_key = 0, hot_freq = 0;
  for (const auto& [key, f] : oracle.counts()) {
    if (f > hot_freq) {
      hot_freq = f;
      hot_key = key;
    }
  }
  EXPECT_GE(cm.frequency(hot_key) + 5, hot_freq);
}

}  // namespace
}  // namespace she
