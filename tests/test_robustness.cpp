// Robustness: SHE's invariants must survive adversarial stream shapes —
// the patterns most likely to break approximate cleaning (starvation,
// saturation, cycle resonance, floods).
#include "she/she.hpp"
#include "stream/oracle.hpp"
#include "stream/patterns.hpp"

#include <algorithm>
#include <cmath>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include <gtest/gtest.h>

namespace she {
namespace {

SheConfig robust_cfg(std::uint64_t window) {
  SheConfig cfg;
  cfg.window = window;
  cfg.cells = 1 << 15;
  cfg.group_cells = 64;
  cfg.alpha = 2.0;
  return cfg;
}

// Every pattern under test, generated at a window-matched scale.
std::vector<stream::Trace> adversarial_traces(std::uint64_t window) {
  return {
      stream::burst_pattern(6 * window, window / 2, window / 2, 3),
      stream::step_cardinality(6 * window, window / 2, window, 5),
      stream::periodic_key(6 * window, 3 * window, 0x1234, 7),  // ~Tcycle period
      stream::alternating_pair(6 * window),
      stream::single_key_flood(6 * window),
      stream::rolling_universe(6 * window, window / 4, 9),
  };
}

TEST(Robustness, BloomNeverFalseNegativeUnderAnyPattern) {
  constexpr std::uint64_t kWindow = 2048;
  for (const auto& trace : adversarial_traces(kWindow)) {
    SheBloomFilter bf(robust_cfg(kWindow), 8);
    Rng rng(1);
    for (std::size_t i = 0; i < trace.size(); ++i) {
      bf.insert(trace[i]);
      if (i % 23 == 0 && i > 0) {
        std::uint64_t back = rng.below(std::min<std::uint64_t>(i, kWindow - 1));
        ASSERT_TRUE(bf.contains(trace[i - back]))
            << "pattern trace false negative at i=" << i;
      }
    }
  }
}

TEST(Robustness, CountMinNeverUnderestimatesUnderAnyPattern) {
  constexpr std::uint64_t kWindow = 2048;
  for (const auto& trace : adversarial_traces(kWindow)) {
    SheCountMin cm(robust_cfg(kWindow), 8);
    stream::WindowOracle oracle(kWindow);
    std::uint64_t under = 0;
    for (std::size_t i = 0; i < trace.size(); ++i) {
      cm.insert(trace[i]);
      oracle.insert(trace[i]);
      if (i % 31 == 0 && i > kWindow) {
        std::uint64_t key = trace[i];
        std::uint64_t fallbacks = cm.all_young_queries();
        std::uint64_t est = cm.frequency(key);
        if (cm.all_young_queries() == fallbacks && est < oracle.frequency(key))
          ++under;
      }
    }
    ASSERT_EQ(under, 0u);
  }
}

TEST(Robustness, FloodDoesNotCorruptNeighbours) {
  // A single-key flood hammers one group per hash; keys inserted later must
  // still behave correctly.
  constexpr std::uint64_t kWindow = 2048;
  SheBloomFilter bf(robust_cfg(kWindow), 8);
  for (auto k : stream::single_key_flood(10 * kWindow)) bf.insert(k);
  EXPECT_TRUE(bf.contains(0xF100D));
  // Fresh keys around the flood behave normally.
  for (std::uint64_t k = 0; k < 200; ++k) bf.insert(hash64(k, 77));
  for (std::uint64_t k = 0; k < 200; ++k) EXPECT_TRUE(bf.contains(hash64(k, 77)));
  // Most absent keys answer false (array is nearly empty besides the flood).
  std::size_t fp = 0;
  for (std::uint64_t k = 0; k < 5000; ++k)
    if (bf.contains(hash64(k, 991))) ++fp;
  EXPECT_LT(fp, 250u);
}

TEST(Robustness, AlternatingPairFrequencySplitsEvenly) {
  constexpr std::uint64_t kWindow = 2048;
  SheCountMin cm(robust_cfg(kWindow), 8);
  for (auto k : stream::alternating_pair(8 * kWindow)) cm.insert(k);
  std::uint64_t fa = cm.frequency(0xA);
  std::uint64_t fb = cm.frequency(0xB);
  // Each key fills half of every surviving window; mature counters span
  // [N, (1+alpha)N], so estimates sit in [N/2, (1+alpha)N/2].
  EXPECT_GE(fa, kWindow / 2);
  EXPECT_LE(fa, 3 * kWindow / 2 + 2);
  EXPECT_GE(fb, kWindow / 2);
  EXPECT_LE(fb, 3 * kWindow / 2 + 2);
}

TEST(Robustness, StepCardinalityFollowsWithinPhase) {
  // Cardinality estimator must ramp up and back down across step phases.
  constexpr std::uint64_t kWindow = 4096;
  SheConfig cfg = robust_cfg(kWindow);
  cfg.alpha = 0.2;
  cfg.mark_bits = 8;  // low-cardinality phases cannot refresh groups
  SheBitmap bm(cfg);
  stream::WindowOracle oracle(kWindow);
  auto trace = stream::step_cardinality(12 * kWindow, kWindow, kWindow / 2, 3);
  double worst = 0;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    bm.insert(trace[i]);
    oracle.insert(trace[i]);
    // Measure late in each phase, once the window is phase-pure.  Skip
    // single-digit cardinalities where relative error is meaningless
    // (truth 1 vs estimate 2 reads as 100%).
    if (i > 2 * kWindow && i % kWindow == kWindow - 1 &&
        oracle.cardinality() >= 16) {
      double truth = static_cast<double>(oracle.cardinality());
      double est = bm.cardinality();
      double err = relative_error(truth, est);
      worst = std::max(worst, err);
    }
  }
  EXPECT_LT(worst, 0.6);
}

TEST(Robustness, PeriodicKeyNearCycleStaysDetectable) {
  // A key re-arriving about once per cleaning cycle: whenever it is inside
  // the window it must be found (no-FN), however its groups alias.
  constexpr std::uint64_t kWindow = 2048;
  SheConfig cfg = robust_cfg(kWindow);  // Tcycle = 3 * window
  SheBloomFilter bf(cfg, 8);
  auto trace = stream::periodic_key(12 * kWindow, cfg.tcycle(), 0x9999, 5);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    bf.insert(trace[i]);
    if (trace[i] == 0x9999) {
      ASSERT_TRUE(bf.contains(0x9999)) << "i=" << i;
    }
  }
}

TEST(Robustness, RollingUniverseKeepsSteadyCardinality) {
  constexpr std::uint64_t kWindow = 4096;
  SheConfig cfg = robust_cfg(kWindow);
  cfg.alpha = 0.2;
  SheBitmap bm(cfg);
  stream::WindowOracle oracle(kWindow);
  auto trace = stream::rolling_universe(8 * kWindow, kWindow / 2, 3);
  RunningStats err;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    bm.insert(trace[i]);
    oracle.insert(trace[i]);
    if (i > 3 * kWindow && i % 512 == 0)
      err.add(relative_error(static_cast<double>(oracle.cardinality()),
                             bm.cardinality()));
  }
  EXPECT_LT(err.mean(), 0.12);
}

}  // namespace
}  // namespace she
