// Multi-window query tests: one SHE structure answers any sub-window of N.
#include "common/stats.hpp"
#include "she/she.hpp"
#include <cmath>

#include "stream/oracle.hpp"
#include "stream/trace.hpp"
#include <gtest/gtest.h>

namespace she {
namespace {

SheConfig cfg_of(std::uint64_t window, std::size_t cells, std::size_t w,
                 double alpha) {
  SheConfig cfg;
  cfg.window = window;
  cfg.cells = cells;
  cfg.group_cells = w;
  cfg.alpha = alpha;
  return cfg;
}

TEST(MultiWindow, WindowArgumentValidated) {
  SheBloomFilter bf(cfg_of(1000, 8192, 64, 1.0), 4);
  EXPECT_THROW((void)bf.contains(1, 0), std::invalid_argument);
  EXPECT_THROW((void)bf.contains(1, 1001), std::invalid_argument);

  SheBitmap bm(cfg_of(1000, 8192, 64, 0.5));
  EXPECT_THROW((void)bm.cardinality(0), std::invalid_argument);
  EXPECT_THROW((void)bm.cardinality(1001), std::invalid_argument);

  SheCountMin cm(cfg_of(1000, 8192, 64, 1.0), 4);
  EXPECT_THROW((void)cm.frequency(1, 0), std::invalid_argument);
  EXPECT_THROW((void)cm.frequency(1, 1001), std::invalid_argument);

  SheHyperLogLog hll(cfg_of(1000, 512, 1, 0.5));
  EXPECT_THROW((void)hll.cardinality(0), std::invalid_argument);

  SheMinHash a(cfg_of(1000, 64, 1, 0.5)), b(cfg_of(1000, 64, 1, 0.5));
  EXPECT_THROW((void)SheMinHash::jaccard(a, b, 0), std::invalid_argument);
}

TEST(MultiWindow, FullWindowQueryMatchesDefault) {
  SheConfig cfg = cfg_of(2048, 1 << 14, 64, 2.0);
  SheBloomFilter bf(cfg, 8);
  SheCountMin cm(cfg_of(2048, 1 << 14, 64, 1.0), 8);
  auto trace = stream::distinct_trace(8192, 3);
  for (auto k : trace) {
    bf.insert(k);
    cm.insert(k);
  }
  for (std::uint64_t p = 0; p < 500; ++p) {
    std::uint64_t key = hash64(p, 4);
    ASSERT_EQ(bf.contains(key), bf.contains(key, cfg.window));
    ASSERT_EQ(cm.frequency(key), cm.frequency(key, cfg.window));
  }
}

TEST(MultiWindow, BloomNoFalseNegativesForAnySubWindow) {
  constexpr std::uint64_t kN = 4096;
  SheBloomFilter bf(cfg_of(kN, 1 << 15, 64, 3.0), 8);
  auto trace = stream::distinct_trace(6 * kN, 7);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    bf.insert(trace[i]);
    if (i > kN && i % 37 == 0) {
      for (std::uint64_t w : {kN / 8, kN / 2, kN}) {
        // An item only w/2 items deep is inside every window >= w/2... use
        // depth < w to stay strictly inside the queried sub-window.
        std::uint64_t depth = w / 2;
        ASSERT_TRUE(bf.contains(trace[i - depth], w))
            << "i=" << i << " w=" << w;
      }
    }
  }
}

TEST(MultiWindow, BloomSubWindowForgetsSooner) {
  // A key deeper than the sub-window but inside the full window should
  // (usually) be reported absent for the sub-window and present for N.
  constexpr std::uint64_t kN = 8192;
  SheBloomFilter bf(cfg_of(kN, 1 << 17, 64, 3.0), 8);
  auto trace = stream::distinct_trace(4 * kN, 9);
  std::size_t subwindow_hits = 0;
  std::size_t full_hits = 0;
  std::size_t checks = 0;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    bf.insert(trace[i]);
    if (i > 2 * kN && i % 101 == 0) {
      // Depth 3/4 N: inside the N-window, far outside the N/8-window.
      std::uint64_t key = trace[i - (3 * kN) / 4];
      ++checks;
      if (bf.contains(key, kN)) ++full_hits;
      if (bf.contains(key, kN / 8)) ++subwindow_hits;
    }
  }
  EXPECT_EQ(full_hits, checks);  // no false negatives at depth < N
  // The sub-window query must reject the stale key most of the time.
  EXPECT_LT(subwindow_hits, checks / 2);
}

TEST(MultiWindow, BitmapTracksSubWindowCardinality) {
  constexpr std::uint64_t kN = 1 << 14;
  SheBitmap bm(cfg_of(kN, 1 << 15, 16, 0.3));
  stream::WindowOracle half_oracle(kN / 2);
  auto trace = stream::distinct_trace(6 * kN, 11);
  RunningStats err;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    bm.insert(trace[i]);
    half_oracle.insert(trace[i]);
    if (i > 3 * kN && i % 997 == 0)
      err.add(relative_error(static_cast<double>(half_oracle.cardinality()),
                             bm.cardinality(kN / 2)));
  }
  EXPECT_LT(err.mean(), 0.25);
}

TEST(MultiWindow, CountMinNeverUnderestimatesSubWindow) {
  constexpr std::uint64_t kN = 4096;
  SheCountMin cm(cfg_of(kN, 1 << 14, 64, 1.0), 8);
  stream::WindowOracle oracle(kN / 4);
  stream::ZipfTraceConfig tc;
  tc.length = 6 * kN;
  tc.universe = kN;
  tc.skew = 1.0;
  tc.seed = 13;
  auto trace = stream::zipf_trace(tc);
  std::uint64_t under = 0, checked = 0;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    cm.insert(trace[i]);
    oracle.insert(trace[i]);
    if (i > 2 * kN && i % 53 == 0) {
      std::uint64_t key = trace[i];
      std::uint64_t fallbacks = cm.all_young_queries();
      std::uint64_t est = cm.frequency(key, kN / 4);
      if (cm.all_young_queries() == fallbacks) {
        ++checked;
        if (est < oracle.frequency(key)) ++under;
      }
    }
  }
  EXPECT_GT(checked, 100u);
  EXPECT_EQ(under, 0u);
}

TEST(MultiWindow, HllSubWindowCardinality) {
  constexpr std::uint64_t kN = 1 << 15;
  SheHyperLogLog hll(cfg_of(kN, 8192, 1, 0.3));
  stream::WindowOracle half_oracle(kN / 2);
  auto trace = stream::distinct_trace(6 * kN, 15);
  RunningStats err;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    hll.insert(trace[i]);
    half_oracle.insert(trace[i]);
    if (i > 3 * kN && i % 2048 == 0)
      err.add(relative_error(static_cast<double>(half_oracle.cardinality()),
                             hll.cardinality(kN / 2)));
  }
  EXPECT_LT(err.mean(), 0.3);
}

TEST(MultiWindow, MinHashSubWindowSimilarity) {
  constexpr std::uint64_t kN = 4096;
  SheConfig cfg = cfg_of(kN, 512, 1, 0.3);
  SheMinHash a(cfg), b(cfg);
  stream::JaccardOracle half_oracle(kN / 2);
  auto pair = stream::relevant_pair(6 * kN, 2 * kN, 0.7, 0.8, 17);
  RunningStats err;
  for (std::size_t i = 0; i < pair.a.size(); ++i) {
    a.insert(pair.a[i]);
    b.insert(pair.b[i]);
    half_oracle.insert(pair.a[i], pair.b[i]);
    if (i > 3 * kN && i % 512 == 0)
      err.add(std::abs(SheMinHash::jaccard(a, b, kN / 2) - half_oracle.jaccard()));
  }
  EXPECT_LT(err.mean(), 0.15);
}

}  // namespace
}  // namespace she
