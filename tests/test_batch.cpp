// Differential batch-vs-scalar equivalence for the generic batching layer
// (she/batch.hpp).  insert_batch must be *bit-for-bit* the scalar insert
// loop for all five estimators: same per-item time_ advancement, same lazy
// group-clean ordering, same observed bits/counters — verified by
// interleaving queries during the stream and comparing the serialized
// state byte-for-byte at the end.  Batched read paths must answer
// element-wise identically to their scalar counterparts.
//
// Workloads mix random keys with adversarial group-boundary streams:
// configurations whose last group is partial (cells % group_cells != 0),
// 1-bit marks with short cycles so lazy cleans fire constantly inside
// blocks, and chunk sizes chosen to split blocks across cleaning
// boundaries (1, primes, exact block multiples, one giant chunk).
#include <sstream>
#include <vector>

#include "common/io.hpp"
#include "common/rng.hpp"
#include "she/she.hpp"
#include "stream/trace.hpp"
#include <gtest/gtest.h>

namespace she {
namespace {

template <typename T>
std::string serialized(const T& est) {
  std::stringstream ss;
  BinaryWriter w(ss);
  est.save(w);
  return ss.str();
}

/// Chunk sizes that exercise the tail path (shorter than a block), exact
/// block multiples, primes that misalign every block, and one whole-trace
/// chunk.
const std::size_t kChunks[] = {1, 3, 7, 16, 57, 256, 100000};

struct Scenario {
  SheConfig cfg;
  unsigned hashes;
  stream::Trace trace;
};

Scenario draw(std::uint64_t seed, bool boundary_adversarial) {
  Rng rng(seed);
  Scenario s;
  if (boundary_adversarial) {
    // Tiny groups, short window, 1-bit marks: every block straddles lazy
    // cleans, and cells % group_cells != 0 leaves a partial last group.
    s.cfg.window = 64 + rng.below(256);
    s.cfg.cells = 1000 + rng.below(100);  // not a multiple of group_cells
    s.cfg.group_cells = 16;
    s.cfg.alpha = 0.25;
    s.cfg.mark_bits = 1;
  } else {
    s.cfg.window = 256 + rng.below(4096);
    s.cfg.cells = 1024 << rng.below(4);
    const std::size_t choices[] = {1, 8, 16, 64, 128};
    s.cfg.group_cells = choices[rng.below(5)];
    s.cfg.alpha = 0.1 + rng.uniform() * 3.0;
    s.cfg.mark_bits = 1 + static_cast<unsigned>(rng.below(4));
  }
  s.cfg.beta = 0.7 + rng.uniform() * 0.29;
  s.cfg.seed = static_cast<std::uint32_t>(rng());
  s.hashes = 1 + static_cast<unsigned>(rng.below(10));
  std::uint64_t len = 3 * s.cfg.window + rng.below(4 * s.cfg.window);
  stream::ZipfTraceConfig tc;
  tc.length = len;
  tc.universe = 64 + rng.below(4 * s.cfg.window);
  tc.skew = rng.uniform() * 1.4;
  tc.seed = seed + 2;
  s.trace = stream::zipf_trace(tc);
  return s;
}

/// Drive `scalar` with insert() and `batched` with insert_batch() in
/// chunks, calling `check(scalar, batched, i)` after every chunk.
template <typename T, typename Check>
void drive(T& scalar, T& batched, const stream::Trace& trace,
           std::size_t chunk, Check&& check) {
  std::size_t i = 0;
  while (i < trace.size()) {
    const std::size_t n = std::min(chunk, trace.size() - i);
    for (std::size_t j = 0; j < n; ++j) scalar.insert(trace[i + j]);
    batched.insert_batch(
        std::span<const std::uint64_t>(trace.data() + i, n));
    i += n;
    check(scalar, batched, i);
  }
  ASSERT_EQ(serialized(scalar), serialized(batched))
      << "state diverged, chunk=" << chunk;
}

TEST(BatchDifferential, BloomInsertAndQueries) {
  for (std::uint64_t trial = 0; trial < 12; ++trial) {
    const bool adversarial = trial % 2 == 1;
    auto s = draw(4000 + trial, adversarial);
    for (std::size_t chunk : kChunks) {
      SheBloomFilter scalar(s.cfg, s.hashes);
      SheBloomFilter batched(s.cfg, s.hashes);
      Rng probe_rng(trial * 97 + chunk);
      drive(scalar, batched, s.trace, chunk,
            [&](const SheBloomFilter& a, const SheBloomFilter& b,
                std::size_t i) {
              ASSERT_EQ(a.time(), b.time());
              std::uint64_t probes[3] = {probe_rng(), s.trace[i - 1],
                                         s.trace[i / 2]};
              std::uint8_t got[3];
              b.contains_batch(std::span<const std::uint64_t>(probes, 3),
                               std::span<std::uint8_t>(got, 3));
              for (int p = 0; p < 3; ++p) {
                ASSERT_EQ(a.contains(probes[p]), b.contains(probes[p]));
                ASSERT_EQ(a.contains(probes[p]), got[p] != 0)
                    << "contains_batch diverged at i=" << i;
              }
            });
    }
  }
}

TEST(BatchDifferential, BitmapInsertAndWindowBatch) {
  for (std::uint64_t trial = 0; trial < 12; ++trial) {
    auto s = draw(5000 + trial, trial % 2 == 1);
    for (std::size_t chunk : kChunks) {
      SheBitmap scalar(s.cfg);
      SheBitmap batched(s.cfg);
      drive(scalar, batched, s.trace, chunk,
            [&](const SheBitmap& a, const SheBitmap& b, std::size_t) {
              ASSERT_DOUBLE_EQ(a.cardinality(), b.cardinality());
            });
      const std::uint64_t windows[] = {1, s.cfg.window / 3 + 1,
                                       s.cfg.window / 2 + 1, s.cfg.window};
      auto batch_card = batched.cardinality_batch(windows);
      for (std::size_t j = 0; j < 4; ++j)
        ASSERT_DOUBLE_EQ(batch_card[j], scalar.cardinality(windows[j]))
            << "window " << windows[j];
    }
  }
}

TEST(BatchDifferential, HllInsertAndWindowBatch) {
  for (std::uint64_t trial = 0; trial < 12; ++trial) {
    auto s = draw(6000 + trial, trial % 2 == 1);
    s.cfg.group_cells = 1;  // SHE-HLL requires w = 1
    s.cfg.cells = 512 + (trial % 2 == 1 ? 13 : 0);
    for (std::size_t chunk : kChunks) {
      SheHyperLogLog scalar(s.cfg);
      SheHyperLogLog batched(s.cfg);
      drive(scalar, batched, s.trace, chunk,
            [&](const SheHyperLogLog& a, const SheHyperLogLog& b,
                std::size_t) {
              ASSERT_DOUBLE_EQ(a.cardinality(), b.cardinality());
            });
      const std::uint64_t windows[] = {1, s.cfg.window / 2 + 1, s.cfg.window};
      auto batch_card = batched.cardinality_batch(windows);
      for (std::size_t j = 0; j < 3; ++j)
        ASSERT_DOUBLE_EQ(batch_card[j], scalar.cardinality(windows[j]))
            << "window " << windows[j];
    }
  }
}

TEST(BatchDifferential, CountMinInsertAndFrequencyBatch) {
  for (std::uint64_t trial = 0; trial < 12; ++trial) {
    auto s = draw(7000 + trial, trial % 2 == 1);
    for (std::size_t chunk : kChunks) {
      SheCountMin scalar(s.cfg, s.hashes);
      SheCountMin batched(s.cfg, s.hashes);
      Rng probe_rng(trial * 31 + chunk);
      drive(scalar, batched, s.trace, chunk,
            [&](const SheCountMin& a, const SheCountMin& b, std::size_t i) {
              std::uint64_t probes[3] = {probe_rng(), s.trace[i - 1],
                                         s.trace[i / 2]};
              std::uint64_t got[3];
              b.frequency_batch(std::span<const std::uint64_t>(probes, 3),
                                std::span<std::uint64_t>(got, 3));
              for (int p = 0; p < 3; ++p) {
                ASSERT_EQ(a.frequency(probes[p]), b.frequency(probes[p]));
                ASSERT_EQ(a.frequency(probes[p]), got[p])
                    << "frequency_batch diverged at i=" << i;
              }
            });
    }
  }
}

TEST(BatchDifferential, MinHashInsertAndJaccardBatch) {
  for (std::uint64_t trial = 0; trial < 8; ++trial) {
    auto s = draw(8000 + trial, trial % 2 == 1);
    s.cfg.group_cells = 1;  // SHE-MH requires w = 1
    s.cfg.cells = 64 + 8 * (trial % 3);
    for (std::size_t chunk : {1ul, 7ul, 16ul, 100000ul}) {
      SheMinHash scalar(s.cfg);
      SheMinHash batched(s.cfg);
      drive(scalar, batched, s.trace, chunk,
            [](const SheMinHash& a, const SheMinHash& b, std::size_t) {
              ASSERT_EQ(a.time(), b.time());
            });
      // Lock-step pair: jaccard of (scalar, batched) must be exactly 1 in
      // every legal window, and jaccard_batch must equal per-window calls.
      const std::uint64_t windows[] = {1, s.cfg.window / 2 + 1, s.cfg.window};
      auto batch_sim = SheMinHash::jaccard_batch(scalar, batched, windows);
      for (std::size_t j = 0; j < 3; ++j)
        ASSERT_DOUBLE_EQ(batch_sim[j],
                         SheMinHash::jaccard(scalar, batched, windows[j]))
            << "window " << windows[j];
      ASSERT_DOUBLE_EQ(SheMinHash::jaccard(scalar, batched),
                       1.0);  // identical streams
    }
  }
}

TEST(BatchDifferential, MonitorBatchMatchesScalar) {
  MonitorConfig mcfg;
  mcfg.window = 4096;
  mcfg.memory_bytes = 1 << 18;
  mcfg.heavy_hitter_slots = 16;
  StreamMonitor scalar(mcfg);
  StreamMonitor batched(mcfg);
  auto trace = stream::distinct_trace(3 * mcfg.window, 99);
  std::size_t i = 0;
  const std::size_t chunks[] = {1, 5, 64, 333, 4096};
  std::size_t c = 0;
  while (i < trace.size()) {
    const std::size_t n = std::min(chunks[c % 5], trace.size() - i);
    for (std::size_t j = 0; j < n; ++j) scalar.insert(trace[i + j]);
    batched.insert_batch(std::span<const std::uint64_t>(trace.data() + i, n));
    i += n;
    ++c;
    ASSERT_EQ(scalar.time(), batched.time());
    ASSERT_EQ(scalar.seen(trace[i - 1]), batched.seen(trace[i - 1]));
    ASSERT_EQ(scalar.frequency(trace[i - 1]), batched.frequency(trace[i - 1]));
  }
  ASSERT_EQ(serialized(scalar), serialized(batched));
}

TEST(BatchDifferential, ShardedBulkUsesBatchPathAndMatchesSequential) {
  // insert_bulk now feeds shards through insert_batch: final state must
  // still be byte-identical to per-key sequential routing.
  SheConfig cfg;
  cfg.window = 2048;
  cfg.cells = 1 << 12;
  cfg.group_cells = 64;
  cfg.alpha = 1.0;
  auto factory = [&](std::size_t s) {
    SheConfig c = cfg;
    c.seed = static_cast<std::uint32_t>(s);
    return SheCountMin(c, 6);
  };
  auto trace = stream::distinct_trace(16384, 7);
  for (unsigned threads : {1u, 4u}) {
    Sharded<SheCountMin> bulk(4, factory);
    Sharded<SheCountMin> seq(4, factory);
    bulk.insert_bulk(trace, threads);
    for (auto k : trace) seq.insert(k);
    for (std::size_t s = 0; s < 4; ++s)
      ASSERT_EQ(serialized(bulk.shard(s)), serialized(seq.shard(s)))
          << "shard " << s << " threads " << threads;
  }
}

}  // namespace
}  // namespace she
