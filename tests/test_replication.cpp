// Replication and failover tests: a hot standby bootstraps from the
// primary's files, tails its WAL stream, sheds writes with the typed
// read-only status, and — after a promote — answers every estimator's
// queries byte-identically to an unfaulted single-node run over the same
// stream.  Also covers the disk-fault degraded mode (injected ENOSPC/EIO
// park the pipeline read-only and the probe recovers it) and the
// multi-endpoint client failover.  This binary carries the ctest label
// `tsan`: the replication hub fan-out, the replica apply thread racing
// queries, and promote/stop joins are new concurrency surfaces.
#include "server/replica.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <initializer_list>
#include <memory>
#include <span>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/wal.hpp"
#include "runtime/fault_injection.hpp"
#include "runtime/ingest_pipeline.hpp"
#include "server/client.hpp"
#include "server/server.hpp"

namespace she::server {
namespace {

std::string temp_dir(const char* name) {
  auto dir = std::filesystem::path(::testing::TempDir()) / name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir.string();
}

struct LiveServer {
  explicit LiveServer(ServerOptions opt) : server(std::move(opt)) {
    server.start();
  }
  SheClient client() { return SheClient("127.0.0.1", server.port()); }
  SheServer server;
};

ServerOptions base_options(const std::string& root) {
  ServerOptions opt;
  opt.port = 0;
  opt.http_port = -1;
  opt.manager.checkpoint_root = root;
  return opt;
}

ServerOptions standby_options(const std::string& root, std::uint16_t primary) {
  ServerOptions opt = base_options(root);
  opt.role = "standby";
  opt.follow = {"127.0.0.1:" + std::to_string(primary)};
  return opt;
}

/// The pipeline's accepted-item count from its stats document.  The
/// standby applies exactly the items the primary accepted, so equal
/// `produced` counters mean every published frame has been applied.
std::uint64_t produced_of(SheClient& c, const std::string& name) {
  const std::string s = c.stats_json(name);
  const auto pos = s.find("\"produced\":");
  if (pos == std::string::npos) ADD_FAILURE() << "no produced field: " << s;
  return std::stoull(s.substr(pos + 11));
}

/// Poll until the standby's accepted-item counters match the primary's
/// for every named pipeline (kNotFound while a CREATE is still in flight
/// counts as "not yet").
void wait_caught_up(SheClient& pc, SheClient& sc,
                    std::initializer_list<const char*> names,
                    std::uint64_t timeout_ms = 20000) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  for (;;) {
    bool ok = true;
    for (const char* name : names) {
      try {
        ok = ok && produced_of(sc, name) == produced_of(pc, name);
      } catch (const ClientError&) {
        ok = false;
      }
    }
    if (ok) return;
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "standby never caught up with the primary";
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
}

/// Poll until the standby has adopted `name`.  A standby that bootstraps
/// *after* the pipeline already held data resumes it from shipped files,
/// which does not pass through the `produced` counter — list membership
/// is the caught-up signal for late joiners.
void wait_has_pipeline(SheClient& sc, const std::string& name,
                       std::uint64_t timeout_ms = 20000) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  for (;;) {
    try {
      const auto names = sc.list();
      if (std::find(names.begin(), names.end(), name) != names.end()) return;
    } catch (const ClientError&) {
    }
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "standby never adopted pipeline '" << name << "'";
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
}

/// Poll the standby's health document until the replication section
/// reports zero lag (needs a heartbeat after the last applied frame).
void wait_lag_zero(SheServer& standby, std::uint64_t timeout_ms = 10000) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  for (;;) {
    const std::string h = standby.render_healthz();
    if (h.find("\"synced\":true") != std::string::npos &&
        h.find("\"lag_items\":0") != std::string::npos) {
      return;
    }
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "lag never reached zero; healthz: " << h;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
}

// Two pipelines cover all five estimators: "a" runs SHE-BF (membership),
// SHE-BM (bitmap cardinality), SHE-CM + heavy hitters (frequency/top-k)
// and SHE-MH (similarity); "b" swaps the cardinality estimator for
// SHE-HLL and provides the second minhash for the Jaccard query.
// similarity requires shards=1 (jaccard compares lock-step signatures,
// which per-shard routing would break), so both run single-sharded.
constexpr const char* kSpecA =
    "window=4096 memory=256K shards=1 wal=async similarity "
    "checkpoint-every=1024";
constexpr const char* kSpecB =
    "window=4096 memory=128K shards=1 wal=async hll similarity";

std::vector<std::uint64_t> stream_keys(std::size_t n) {
  std::vector<std::uint64_t> keys(n);
  for (std::size_t i = 0; i < n; ++i) {
    // Mild skew so the heavy-hitter structure has real work to do.
    keys[i] = (i % 7 == 0) ? i % 13 : i % 2500;
  }
  return keys;
}

void ingest(SheClient& c, std::span<const std::uint64_t> keys,
            std::size_t from, std::size_t to) {
  constexpr std::size_t kChunk = 500;  // fixed boundaries in every run
  for (std::size_t i = from; i < to; i += kChunk) {
    const std::size_t n = std::min(kChunk, to - i);
    c.insert_bulk("a", keys.subspan(i, n));
    c.insert_bulk("b", keys.subspan(i, n));
  }
}

/// Every query answer for both pipelines, serialized with full precision.
/// Two servers that processed the same stream must return the same bytes.
std::string answers(SheClient& c) {
  std::ostringstream os;
  os.precision(17);
  os << "card_a=" << c.query_cardinality("a")
     << " card_b=" << c.query_cardinality("b") << " top=[";
  for (const auto& [key, est] : c.query_topk("a", 8))
    os << key << ":" << est << ",";
  os << "] jaccard=" << c.query_jaccard("a", "b") << " probes=[";
  for (const std::uint64_t k : {0ull, 3ull, 12ull, 2499ull, 1048576ull}) {
    os << (c.query_membership("a", k) ? 1 : 0) << ":"
       << c.query_frequency("a", k) << ",";
  }
  os << "]";
  return os.str();
}

TEST(Replication, FailoverAnswersByteIdenticalToUnfaultedRun) {
  const auto keys = stream_keys(12000);
  const std::size_t half = keys.size() / 2;

  // Reference: one unfaulted server ingests the whole stream.
  std::string want;
  {
    LiveServer ref(base_options(temp_dir("repl_ref")));
    SheClient c = ref.client();
    c.create("a", kSpecA);
    c.create("b", kSpecB);
    ingest(c, keys, 0, keys.size());
    c.flush("a");
    c.flush("b");
    want = answers(c);
    ref.server.request_stop();
    ref.server.stop();
  }

  // Faulted run: primary + hot standby; the primary dies mid-stream.
  auto prim = std::make_unique<LiveServer>(base_options(temp_dir("repl_prim")));
  const std::uint16_t prim_port = prim->server.port();
  LiveServer stby(standby_options(temp_dir("repl_stby"), prim_port));
  EXPECT_TRUE(stby.server.standby());

  ClientOptions copt;
  copt.max_retries = 10;
  copt.backoff_initial_ms = 25;
  copt.backoff_max_ms = 400;
  SheClient c(std::vector<std::string>{
                  "127.0.0.1:" + std::to_string(prim_port),
                  "127.0.0.1:" + std::to_string(stby.server.port())},
              copt);
  c.create("a", kSpecA);
  c.create("b", kSpecB);
  ingest(c, keys, 0, half);
  c.flush("a");
  c.flush("b");

  // Let the stream drain, then take the primary down.  stop() is the
  // in-process stand-in for kill -9 — the cross-process variant lives in
  // scripts/chaos.sh --failover; replication-wise the standby has already
  // applied everything either way.
  {
    SheClient pc("127.0.0.1", prim_port);
    SheClient sc("127.0.0.1", stby.server.port());
    wait_caught_up(pc, sc, {"a", "b"});
  }
  wait_lag_zero(stby.server);
  prim->server.request_stop();
  prim->server.stop();
  prim.reset();

  // Promote over the wire; the failover client replays the second half —
  // its first attempts still aim at the dead primary and rotate.
  {
    SheClient sc("127.0.0.1", stby.server.port());
    sc.promote();
  }
  EXPECT_FALSE(stby.server.standby());

  ingest(c, keys, half, keys.size());
  c.flush("a");
  c.flush("b");
  const std::string got = answers(c);
  EXPECT_EQ(got, want);

  stby.server.request_stop();
  stby.server.stop();
}

TEST(Replication, StandbyServesReadsShedsWritesTyped) {
  LiveServer prim(base_options(temp_dir("repl_ro_prim")));
  LiveServer stby(
      standby_options(temp_dir("repl_ro_stby"), prim.server.port()));

  SheClient pc = prim.client();
  pc.create("ro", "window=1024 shards=1 wal=async");
  std::vector<std::uint64_t> keys(2000);
  for (std::size_t i = 0; i < keys.size(); ++i) keys[i] = i % 300;
  pc.insert_bulk("ro", keys);
  pc.flush("ro");
  SheClient sc = stby.client();
  wait_caught_up(pc, sc, {"ro"});

  // Reads work (exactly what the primary would answer)...
  EXPECT_EQ(sc.list(), std::vector<std::string>{"ro"});
  sc.promote();
  sc.flush("ro");  // publish the replica's applied items for querying
  EXPECT_EQ(sc.query_cardinality("ro"), pc.query_cardinality("ro"));

  // ...but before the promote, every write class was shed with the typed
  // status (checked on a second standby so the promote above is isolated).
  // This standby joins late: it bootstraps "ro" from the primary's files
  // instead of watching it stream in.
  LiveServer stby2(
      standby_options(temp_dir("repl_ro_stby2"), prim.server.port()));
  SheClient s2 = stby2.client();
  {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(20);
    while (s2.list().empty()) {
      ASSERT_LT(std::chrono::steady_clock::now(), deadline)
          << "late standby never bootstrapped the pipeline";
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  }
  const auto expect_readonly = [](auto&& fn) {
    try {
      fn();
      FAIL() << "standby accepted a write";
    } catch (const ClientError& e) {
      EXPECT_EQ(e.status(), Status::kReadOnly);
    }
  };
  expect_readonly([&] { s2.create("x", ""); });
  expect_readonly([&] { s2.insert("ro", 1); });
  expect_readonly([&] { s2.insert_bulk("ro", keys); });
  expect_readonly([&] { s2.drop("ro"); });

  // healthz reports the role on both sides.
  EXPECT_NE(stby2.server.render_healthz().find("\"role\":\"standby\""),
            std::string::npos);
  EXPECT_NE(prim.server.render_healthz().find("\"role\":\"primary\""),
            std::string::npos);

  for (SheServer* s : {&stby2.server, &stby.server, &prim.server}) {
    s->request_stop();
    s->stop();
  }
}

TEST(Replication, PromoteIsIdempotentAndPrimaryNoOp) {
  LiveServer prim(base_options(temp_dir("repl_promote_prim")));
  SheClient pc = prim.client();
  pc.promote();  // primary: acknowledged, nothing changes
  EXPECT_FALSE(prim.server.standby());
  pc.create("p", "window=512 shards=1 wal=async");
  EXPECT_EQ(pc.insert("p", 1), 1u);

  LiveServer stby(
      standby_options(temp_dir("repl_promote_stby"), prim.server.port()));
  SheClient sc = stby.client();
  wait_has_pipeline(sc, "p");
  sc.promote();
  sc.promote();  // second promote: still OK
  EXPECT_FALSE(stby.server.standby());
  EXPECT_EQ(sc.insert("p", 2), 1u);  // writes flow after the flip

  for (SheServer* s : {&stby.server, &prim.server}) {
    s->request_stop();
    s->stop();
  }
}

TEST(Replication, DropAndLateCreateReplicate) {
  LiveServer prim(base_options(temp_dir("repl_ddl_prim")));
  LiveServer stby(
      standby_options(temp_dir("repl_ddl_stby"), prim.server.port()));
  SheClient pc = prim.client();

  pc.create("first", "window=512 shards=1 wal=async");
  pc.insert("first", 7);
  pc.flush("first");
  SheClient sc = stby.client();
  wait_caught_up(pc, sc, {"first"});
  EXPECT_EQ(sc.list(), std::vector<std::string>{"first"});

  pc.drop("first");
  pc.create("second", "window=512 shards=1 wal=async");
  pc.insert("second", 9);
  pc.flush("second");
  wait_caught_up(pc, sc, {"second"});
  EXPECT_EQ(sc.list(), std::vector<std::string>{"second"});

  for (SheServer* s : {&stby.server, &prim.server}) {
    s->request_stop();
    s->stop();
  }
}

#if defined(SHE_FAULT_INJECTION)

/// Armed faults must never leak into other tests.
struct FaultGuard {
  ~FaultGuard() { runtime::fault::injector().clear(); }
};

TEST(Degraded, WalEnospcParksPipelineReadOnlyThenRecovers) {
  FaultGuard guard;
  LiveServer live(base_options(temp_dir("degraded_enospc")));
  SheClient c = live.client();
  // The probe interval is also the *minimum* width of the degraded
  // window (the one-shot fault cannot re-degrade after a successful
  // probe), so it must be long enough that a loaded scheduler cannot
  // heal the pipeline before the client observes kDegraded.
  c.create("d", "window=1024 shards=1 wal=async degraded-probe-ms=500");
  EXPECT_EQ(c.insert("d", 1), 1u);
  c.flush("d");

  runtime::fault::injector().arm(runtime::fault::parse_spec("wal-enospc"));
  // The append that hits the injected ENOSPC fails this request and drops
  // the pipeline into degraded read-only mode; the exact status of the
  // first failure depends on where the fault lands, so only the *steady*
  // degraded answer is asserted.
  EXPECT_THROW(c.insert("d", 2), ClientError);
  bool saw_degraded = false;
  try {
    c.insert("d", 3);
  } catch (const ClientError& e) {
    saw_degraded = e.status() == Status::kDegraded;
  }
  EXPECT_TRUE(saw_degraded);

  // Reads keep working while degraded, and health reporting flips.
  (void)c.query_cardinality("d");
  EXPECT_NE(live.server.render_healthz().find("\"status\":\"degraded\""),
            std::string::npos);

  // The fault fires at most once, so the next probe (every 500ms) heals
  // the pipeline and writes flow again.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  for (;;) {
    try {
      EXPECT_EQ(c.insert("d", 4), 1u);
      break;
    } catch (const ClientError&) {
      ASSERT_LT(std::chrono::steady_clock::now(), deadline)
          << "pipeline never recovered from the injected ENOSPC";
      std::this_thread::sleep_for(std::chrono::milliseconds(25));
    }
  }
  EXPECT_NE(live.server.render_healthz().find("\"status\":\"ok\""),
            std::string::npos);
  live.server.request_stop();
  live.server.stop();
}

TEST(Degraded, CheckpointEioAlsoDegradesAndRecovers) {
  FaultGuard guard;
  LiveServer live(base_options(temp_dir("degraded_eio")));
  SheClient c = live.client();
  // Tiny checkpoint interval so SAVE/flush hits the checkpoint writer;
  // generous probe interval so the one-shot fault's degraded window
  // cannot self-heal before the client observes it (see above).
  c.create("d", "window=1024 shards=1 wal=async checkpoint-every=64 "
                "degraded-probe-ms=500");
  runtime::fault::injector().arm(runtime::fault::parse_spec("ckpt-eio"));

  // Drive inserts until the injected checkpoint EIO parks the pipeline.
  bool saw_degraded = false;
  const auto fault_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  std::vector<std::uint64_t> batch(128);
  for (std::uint64_t round = 0; !saw_degraded; ++round) {
    ASSERT_LT(std::chrono::steady_clock::now(), fault_deadline)
        << "injected ckpt-eio never surfaced";
    for (std::size_t i = 0; i < batch.size(); ++i)
      batch[i] = round * batch.size() + i;
    try {
      c.insert_bulk("d", batch);
      c.save("d");
    } catch (const ClientError& e) {
      saw_degraded = e.status() == Status::kDegraded;
    }
  }

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  for (;;) {
    try {
      EXPECT_EQ(c.insert("d", 9), 1u);
      break;
    } catch (const ClientError&) {
      ASSERT_LT(std::chrono::steady_clock::now(), deadline)
          << "pipeline never recovered from the injected EIO";
      std::this_thread::sleep_for(std::chrono::milliseconds(25));
    }
  }
  live.server.request_stop();
  live.server.stop();
}

#endif  // SHE_FAULT_INJECTION

}  // namespace
}  // namespace she::server
