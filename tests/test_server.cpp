// she_server tests: wire codec, spec language, HTTP parsing, the
// PipelineManager name table, and the full server lifecycle over real
// sockets — concurrent clients racing CREATE/DROP against INSERT/QUERY,
// malformed frames, the /metrics endpoint, and SIGTERM → checkpoint →
// restart → identical answers.  This binary carries the ctest label
// `tsan` (see tests/CMakeLists.txt): the connection handlers, manager
// lock discipline, and producer-slot lending are concurrency surfaces
// ThreadSanitizer must sweep.
#include "server/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <filesystem>
#include <fstream>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "server/client.hpp"
#include "server/http.hpp"
#include "server/pipeline_manager.hpp"
#include "server/protocol.hpp"
#include "common/simd.hpp"
#include "common/wal.hpp"
#include "obs/trace.hpp"
#include "runtime/fault_injection.hpp"
#include "runtime/runtime_stats.hpp"

namespace she::server {
namespace {

std::string temp_dir(const char* name) {
  auto dir = std::filesystem::path(::testing::TempDir()) / name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir.string();
}

// ------------------------------ wire codec ---------------------------------

TEST(Wire, RoundTrip) {
  WireWriter w;
  w.u8(7);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefULL);
  w.f64(3.25);
  w.str("hello");
  w.str("");
  WireReader r(w.body());
  EXPECT_EQ(r.u8(), 7);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.f64(), 3.25);
  EXPECT_EQ(r.str(), "hello");
  EXPECT_EQ(r.str(), "");
  EXPECT_EQ(r.remaining(), 0u);
  EXPECT_NO_THROW(r.expect_done());
}

TEST(Wire, TruncationThrows) {
  WireWriter w;
  w.u32(3);  // a string length with no bytes behind it
  WireReader r(w.body());
  EXPECT_THROW((void)r.str(), ProtocolError);

  WireReader r2(std::span<const char>(w.body().data(), 2));
  EXPECT_THROW((void)r2.u32(), ProtocolError);
  WireReader r3(w.body());
  (void)r3.u32();
  EXPECT_THROW((void)r3.u8(), ProtocolError);
}

TEST(Wire, TrailingBytesRejected) {
  WireWriter w;
  w.u8(1);
  w.u8(2);
  WireReader r(w.body());
  (void)r.u8();
  EXPECT_THROW(r.expect_done(), ProtocolError);
}

TEST(Wire, OpcodeValidation) {
  EXPECT_THROW((void)op_from(0), ProtocolError);
  EXPECT_THROW((void)op_from(15), ProtocolError);
  EXPECT_THROW((void)op_from(200), ProtocolError);
  EXPECT_EQ(op_from(1), Op::kPing);
  EXPECT_EQ(op_from(11), Op::kShutdown);
  EXPECT_EQ(op_from(12), Op::kAuth);
  EXPECT_EQ(op_from(13), Op::kReplicate);
  EXPECT_EQ(op_from(14), Op::kPromote);
  EXPECT_THROW((void)query_type_from(0), ProtocolError);
  EXPECT_THROW((void)query_type_from(99), ProtocolError);
  EXPECT_EQ(query_type_from(5), QueryType::kJaccard);
}

// ------------------------------ spec parser --------------------------------

TEST(Wire, TraceHeaderParsesAndStrips) {
  // [0xF5][u64 id] before the body; read_trace_header consumes it only
  // when present and whole.
  std::vector<char> framed;
  framed.push_back(static_cast<char>(kTraceHeader));
  const std::uint64_t id = 0x1122334455667788ull;
  for (int b = 0; b < 8; ++b)
    framed.push_back(static_cast<char>((id >> (8 * b)) & 0xff));
  framed.push_back(static_cast<char>(Op::kPing));
  WireReader r(framed);
  EXPECT_EQ(read_trace_header(r), id);
  EXPECT_EQ(op_from(r.u8()), Op::kPing);
  r.expect_done();
  EXPECT_EQ(opcode_offset(framed), 9u);

  // Untraced bodies are untouched.
  const char plain[] = {static_cast<char>(Op::kPing)};
  WireReader p({plain, 1});
  EXPECT_EQ(read_trace_header(p), 0u);
  EXPECT_EQ(op_from(p.u8()), Op::kPing);
  EXPECT_EQ(opcode_offset({plain, 1}), 0u);

  // A 0xF5 first byte without the full 9 bytes is not a trace header.
  const char runt[] = {static_cast<char>(kTraceHeader), 1, 2};
  WireReader q({runt, 3});
  EXPECT_EQ(read_trace_header(q), 0u);
  EXPECT_EQ(q.remaining(), 3u);  // nothing consumed
  EXPECT_EQ(opcode_offset({runt, 3}), 0u);
}

TEST(Wire, SeqHeaderParsesAndStrips) {
  // [0xF6][u64 client_id][u64 client_seq] after the optional trace header;
  // read_seq_header consumes it only when present and whole.
  auto u64le = [](std::vector<char>& out, std::uint64_t v) {
    for (int b = 0; b < 8; ++b)
      out.push_back(static_cast<char>((v >> (8 * b)) & 0xff));
  };
  std::vector<char> framed;
  framed.push_back(static_cast<char>(kSeqHeader));
  u64le(framed, 0xAB);
  u64le(framed, 42);
  framed.push_back(static_cast<char>(Op::kPing));
  WireReader r(framed);
  const ClientSeq cs = read_seq_header(r);
  EXPECT_EQ(cs.client_id, 0xABu);
  EXPECT_EQ(cs.client_seq, 42u);
  EXPECT_EQ(op_from(r.u8()), Op::kPing);
  r.expect_done();
  EXPECT_EQ(opcode_offset(framed), 17u);

  // Trace header then seq header: both are skipped to find the opcode.
  std::vector<char> both;
  both.push_back(static_cast<char>(kTraceHeader));
  u64le(both, 7);
  both.insert(both.end(), framed.begin(), framed.end());
  EXPECT_EQ(opcode_offset(both), 26u);

  // Untagged bodies are untouched, and a runt 0xF6 is not a seq header.
  const char plain[] = {static_cast<char>(Op::kPing)};
  WireReader p({plain, 1});
  EXPECT_EQ(read_seq_header(p).client_id, 0u);
  EXPECT_EQ(p.remaining(), 1u);
  const char runt[] = {static_cast<char>(kSeqHeader), 1, 2, 3};
  WireReader q({runt, 4});
  EXPECT_EQ(read_seq_header(q).client_id, 0u);
  EXPECT_EQ(q.remaining(), 4u);  // nothing consumed
  EXPECT_EQ(opcode_offset({runt, 4}), 0u);
}

TEST(SpecParser, DefaultsAndOverrides) {
  const PipelineSpec def = parse_sketch_spec("");
  EXPECT_TRUE(def.pipeline.supervise);  // a service must outlive one fault
  EXPECT_EQ(def.pipeline.producers, 4u);

  const PipelineSpec s = parse_sketch_spec(
      "window=16K memory=256K shards=2 producers=3 queue=2048 publish=512 "
      "policy=drop hll hh-slots=32 seed=9 checkpoint-every=4096");
  EXPECT_EQ(s.monitor.window, 16u * 1024);
  EXPECT_EQ(s.monitor.memory_bytes, 256u * 1024);
  EXPECT_TRUE(s.monitor.use_hll);
  EXPECT_EQ(s.monitor.heavy_hitter_slots, 32u);
  EXPECT_EQ(s.monitor.seed, 9u);
  EXPECT_EQ(s.pipeline.shards, 2u);
  EXPECT_EQ(s.pipeline.producers, 3u);
  EXPECT_EQ(s.pipeline.queue_capacity, 2048u);
  EXPECT_EQ(s.pipeline.publish_interval, 512u);
  EXPECT_EQ(s.pipeline.policy, runtime::Backpressure::kDropNewest);
  EXPECT_EQ(s.pipeline.checkpoint_interval, 4096u);
}

TEST(SpecParser, Rejections) {
  EXPECT_THROW((void)parse_sketch_spec("frobnicate=1"), std::invalid_argument);
  EXPECT_THROW((void)parse_sketch_spec("window=abc"), std::invalid_argument);
  EXPECT_THROW((void)parse_sketch_spec("window"), std::invalid_argument);
  EXPECT_THROW((void)parse_sketch_spec("policy=maybe"), std::invalid_argument);
  // SHE-MH jaccard needs lock-step streams; hash routing over 2 shards
  // breaks that, so the spec language refuses the combination.
  EXPECT_THROW((void)parse_sketch_spec("similarity shards=2"),
               std::invalid_argument);
  EXPECT_NO_THROW((void)parse_sketch_spec("similarity shards=1"));
}

TEST(SpecParser, NameValidation) {
  EXPECT_TRUE(valid_pipeline_name("web-frontend_2"));
  EXPECT_FALSE(valid_pipeline_name(""));
  EXPECT_FALSE(valid_pipeline_name("a/b"));
  EXPECT_FALSE(valid_pipeline_name(".."));
  EXPECT_FALSE(valid_pipeline_name(std::string(65, 'x')));
}

// --------------------------------- HTTP ------------------------------------

TEST(Http, RequestParsing) {
  const auto req = parse_http_request("GET /metrics HTTP/1.1\r\nHost: x\r\n");
  ASSERT_TRUE(req.has_value());
  EXPECT_EQ(req->method, "GET");
  EXPECT_EQ(req->target, "/metrics");
  EXPECT_FALSE(parse_http_request("").has_value());
  EXPECT_FALSE(parse_http_request("garbage\r\n").has_value());
  EXPECT_FALSE(parse_http_request("GET /x SMTP/1.0\r\n").has_value());
}

TEST(Http, ResponseFormat) {
  const std::string resp = http_response(200, "OK", "text/plain", "body");
  EXPECT_NE(resp.find("HTTP/1.1 200 OK\r\n"), std::string::npos);
  EXPECT_NE(resp.find("Content-Length: 4\r\n"), std::string::npos);
  EXPECT_NE(resp.find("\r\n\r\nbody"), std::string::npos);
}

// --------------------------- PipelineManager -------------------------------

TEST(PipelineManager, CreateFindDropAndDirLifecycle) {
  const std::string root = temp_dir("mgr_lifecycle");
  PipelineManager mgr({root, /*keep=*/1, /*resume=*/false});
  auto e = mgr.create("alpha", "window=4K memory=64K");
  ASSERT_NE(e, nullptr);
  EXPECT_TRUE(std::filesystem::exists(
      std::filesystem::path(root) / "alpha" / "spec"));
  EXPECT_EQ(mgr.find("alpha"), e);
  EXPECT_EQ(mgr.find("beta"), nullptr);
  EXPECT_THROW((void)mgr.create("alpha", ""), AlreadyExists);
  EXPECT_THROW((void)mgr.create("bad/name", ""), std::invalid_argument);
  EXPECT_THROW((void)mgr.create("badspec", "nope=1"), std::invalid_argument);
  // A CREATE that failed must not leave a ghost directory for resume.
  EXPECT_FALSE(std::filesystem::exists(
      std::filesystem::path(root) / "badspec"));

  EXPECT_TRUE(mgr.drop("alpha"));
  EXPECT_FALSE(mgr.drop("alpha"));
  EXPECT_FALSE(std::filesystem::exists(std::filesystem::path(root) / "alpha"));
  // The dropped entry is still safe to use through a retained shared_ptr;
  // pushes are rejected rather than touching freed memory.
  const std::uint64_t keys[] = {1, 2, 3};
  EXPECT_EQ(e->insert_bulk(keys), 0u);
}

TEST(PipelineManager, ResumeAllRestoresState) {
  const std::string root = temp_dir("mgr_resume");
  std::vector<std::uint64_t> keys(20000);
  for (std::size_t i = 0; i < keys.size(); ++i) keys[i] = i % 3000;
  double card = 0;
  {
    PipelineManager mgr({root, 2, false});
    auto e = mgr.create("walrus", "window=8K memory=128K shards=2 seed=5");
    EXPECT_EQ(e->insert_bulk(keys), keys.size());
    ASSERT_TRUE(e->monitor().save_now());
    card = e->monitor().report(0).cardinality.value();
    mgr.close_all();
  }
  PipelineManager mgr2({root, 2, /*resume=*/true});
  auto e = mgr2.find("walrus");
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->monitor().report(0).cardinality.value(), card);
  // A subdirectory without a spec is ignored, not fatal.
  std::filesystem::create_directories(std::filesystem::path(root) / "junk");
  PipelineManager mgr3({root, 2, true});
  EXPECT_EQ(mgr3.size(), 1u);
}

// ------------------------------ live server --------------------------------

struct LiveServer {
  explicit LiveServer(ServerOptions opt = {}) : server(std::move(opt)) {
    server.start();
  }
  SheClient client() { return SheClient("127.0.0.1", server.port()); }
  SheServer server;
};

TEST(Server, BasicOpsEndToEnd) {
  LiveServer live;
  SheClient c = live.client();
  c.ping();
  c.create("web", "window=8K memory=128K shards=2");

  EXPECT_EQ(c.insert("web", 42), 1u);
  std::vector<std::uint64_t> keys(10000);
  for (std::size_t i = 0; i < keys.size(); ++i) keys[i] = i % 2000;
  EXPECT_EQ(c.insert_bulk("web", keys), keys.size());
  c.flush("web");

  EXPECT_TRUE(c.query_membership("web", 42));
  EXPECT_GE(c.query_frequency("web", 7), 1u);  // 7 appears in every cycle
  const double card = c.query_cardinality("web");
  EXPECT_GT(card, 1000.0);
  EXPECT_LT(card, 4000.0);
  const auto top = c.query_topk("web", 5);
  EXPECT_LE(top.size(), 5u);
  const std::string stats = c.stats_json("web");
  EXPECT_NE(stats.find("\"schema_version\""), std::string::npos);

  const auto names = c.list();
  ASSERT_EQ(names.size(), 1u);
  EXPECT_EQ(names[0], "web");

  c.drop("web");
  EXPECT_TRUE(c.list().empty());
}

TEST(Server, ErrorStatuses) {
  LiveServer live;
  SheClient c = live.client();
  c.create("dup", "window=4K memory=64K");

  try {
    c.create("dup", "");
    FAIL() << "expected kExists";
  } catch (const ClientError& e) {
    EXPECT_EQ(e.status(), Status::kExists);
  }
  try {
    (void)c.query_cardinality("ghost");
    FAIL() << "expected kNotFound";
  } catch (const ClientError& e) {
    EXPECT_EQ(e.status(), Status::kNotFound);
  }
  try {
    c.create("badspec", "bogus-token");
    FAIL() << "expected kBadRequest";
  } catch (const ClientError& e) {
    EXPECT_EQ(e.status(), Status::kBadRequest);
  }
  try {
    c.create("bad/name", "");
    FAIL() << "expected kBadRequest";
  } catch (const ClientError& e) {
    EXPECT_EQ(e.status(), Status::kBadRequest);
  }
  // Jaccard against a pipeline that doesn't track similarity.
  try {
    (void)c.query_jaccard("dup", "dup");
    FAIL() << "expected an error";
  } catch (const ClientError& e) {
    EXPECT_NE(e.status(), Status::kOk);
  }
}

TEST(Server, MalformedBodiesAreCountedAndSurvivable) {
  LiveServer live;
  SheClient c = live.client();

  // Unknown opcode: per-request error, connection keeps working.
  {
    const char body[] = {99};
    const std::vector<char> resp = c.roundtrip_raw({body, 1});
    ASSERT_FALSE(resp.empty());
    EXPECT_EQ(static_cast<Status>(resp[0]), Status::kBadRequest);
  }
  c.ping();

  // Trailing bytes after a well-formed request.
  {
    WireWriter w;
    w.u8(static_cast<std::uint8_t>(Op::kPing));
    w.u8(0xab);
    const std::vector<char> resp = c.roundtrip_raw(w.body());
    EXPECT_EQ(static_cast<Status>(resp[0]), Status::kBadRequest);
  }
  c.ping();

  // A bulk insert whose claimed count exceeds the body.
  {
    WireWriter w;
    w.u8(static_cast<std::uint8_t>(Op::kInsertBulk));
    w.str("nope");
    w.u32(1000);  // ...and zero key bytes behind it
    const std::vector<char> resp = c.roundtrip_raw(w.body());
    EXPECT_EQ(static_cast<Status>(resp[0]), Status::kBadRequest);
  }
  c.ping();

  // An oversized frame length is connection-fatal (framing cannot be
  // resynchronized) — but the server answers first and keeps serving
  // everyone else.
  {
    SheClient doomed = live.client();
    const unsigned char hdr[] = {0xff, 0xff, 0xff, 0xff};
    write_all(doomed.fd(), hdr, sizeof(hdr));
    std::vector<char> resp;
    ASSERT_TRUE(read_frame(doomed.fd(), resp));
    EXPECT_EQ(static_cast<Status>(resp[0]), Status::kBadRequest);
    EXPECT_FALSE(read_frame(doomed.fd(), resp));  // then EOF
  }
  c.ping();

  const std::string metrics = live.server.render_metrics();
  EXPECT_NE(metrics.find("she_server_protocol_errors_total 4"),
            std::string::npos)
      << metrics;
}

// Every server-side send carries MSG_NOSIGNAL, so a client that vanishes
// between request and response costs one connection, not the process.
// Without that flag the response write lands on a reset socket, raises
// SIGPIPE, and kills the server (the default disposition is terminate) —
// this test would then fail on the final ping.
TEST(Server, HalfClosedSocketsNeverRaiseSigpipe) {
  LiveServer live;
  SheClient c = live.client();
  c.create("gone", "window=4K memory=64K shards=2");

  auto vanish_after = [&](std::uint16_t port, const void* data,
                          std::size_t n, int repeats) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
              0);
    // Pipeline several copies so at least one response write happens after
    // the connection is already dead, whatever the thread interleaving.
    for (int i = 0; i < repeats; ++i) write_all(fd, data, n);
    // SO_LINGER with zero timeout turns close() into a hard RST: the
    // kernel discards anything buffered and the server's next send sees
    // EPIPE/ECONNRESET instead of quietly landing in a buffer.
    linger lg{};
    lg.l_onoff = 1;
    lg.l_linger = 0;
    ::setsockopt(fd, SOL_SOCKET, SO_LINGER, &lg, sizeof(lg));
    ::close(fd);
  };

  WireWriter w;
  w.u8(static_cast<std::uint8_t>(Op::kInsertBulk));
  w.str("gone");
  w.u32(2048);
  for (std::uint64_t i = 0; i < 2048; ++i) w.u64(i);
  std::vector<char> framed;
  const std::uint32_t len = static_cast<std::uint32_t>(w.body().size());
  for (int b = 0; b < 4; ++b)
    framed.push_back(static_cast<char>((len >> (8 * b)) & 0xff));
  framed.insert(framed.end(), w.body().begin(), w.body().end());

  for (int round = 0; round < 16; ++round)
    vanish_after(live.server.port(), framed.data(), framed.size(), 4);

  // The HTTP listener writes responses too — same vanishing act there.
  const std::string req = "GET /metrics HTTP/1.1\r\nHost: t\r\n\r\n";
  for (int round = 0; round < 8; ++round)
    vanish_after(live.server.http_port(), req.data(), req.size(), 1);

  // Give the handler threads a beat to hit their dead sockets, then prove
  // the process is still here and still serving.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  c.ping();
  EXPECT_EQ(c.insert("gone", 99), 1u);
  c.flush("gone");
  EXPECT_TRUE(c.query_membership("gone", 99));
}

TEST(Server, ConcurrentClientsCreateDropRacingInsertQuery) {
  LiveServer live;
  const char* names[] = {"alpha", "beta"};
  std::atomic<bool> go{true};
  std::atomic<std::uint64_t> ops{0};

  auto worker = [&](unsigned tid) {
    SheClient c = live.client();
    std::vector<std::uint64_t> keys(256);
    for (std::size_t i = 0; i < keys.size(); ++i) keys[i] = tid * 1000 + i;
    std::uint64_t it = 0;
    while (go.load(std::memory_order_acquire)) {
      const char* name = names[(tid + it) % 2];
      try {
        switch ((tid + it) % 5) {
          case 0:
            c.create(name, "window=4K memory=64K shards=2");
            break;
          case 1:
            (void)c.insert_bulk(name, keys);
            break;
          case 2:
            (void)c.query_cardinality(name);
            break;
          case 3:
            (void)c.query_membership(name, keys[it % keys.size()]);
            break;
          case 4:
            if (it % 7 == 0) c.drop(name);
            break;
        }
      } catch (const ClientError&) {
        // kExists / kNotFound are the expected casualties of the race.
      }
      ++it;
      ops.fetch_add(1, std::memory_order_relaxed);
    }
  };

  std::vector<std::thread> threads;
  for (unsigned t = 0; t < 4; ++t) threads.emplace_back(worker, t);
  // Run until the stampede has really exercised the race, not for a fixed
  // wall-clock slice: a loaded single-core box under tsan can fall short of
  // any absolute ops/second floor.  The deadline only bounds a hung server.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (ops.load(std::memory_order_relaxed) < 64 &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  go.store(false, std::memory_order_release);
  for (auto& t : threads) t.join();

  EXPECT_GE(ops.load(), 64u);
  SheClient c = live.client();
  c.ping();  // the server survived the stampede
}

TEST(Server, ShutdownOpcodeStopsTheServer) {
  LiveServer live;
  SheClient c = live.client();
  c.create("x", "window=4K memory=64K");
  c.shutdown_server();  // acknowledged before the teardown starts
  live.server.wait();
  EXPECT_THROW(SheClient("127.0.0.1", live.server.port()),
               std::runtime_error);
}

// Raw one-shot HTTP GET against the server's metrics listener.
std::string http_get(std::uint16_t port, const std::string& target) {
  SheClient raw("127.0.0.1", port);  // it's just a TCP connect
  const std::string req = "GET " + target + " HTTP/1.1\r\nHost: t\r\n\r\n";
  write_all(raw.fd(), req.data(), req.size());
  std::string out;
  char buf[4096];
  for (;;) {
    const ssize_t r = ::read(raw.fd(), buf, sizeof(buf));
    if (r <= 0) break;
    out.append(buf, static_cast<std::size_t>(r));
  }
  return out;
}

TEST(Server, MetricsEndpointServesLabeledPipelines) {
  LiveServer live;
  SheClient c = live.client();
  c.create("edge", "window=4K memory=64K");
  std::vector<std::uint64_t> keys(4096);
  for (std::size_t i = 0; i < keys.size(); ++i) keys[i] = i;
  (void)c.insert_bulk("edge", keys);
  c.flush("edge");

  const std::string healthz = http_get(live.server.http_port(), "/healthz");
  EXPECT_NE(healthz.find("200 OK"), std::string::npos);
  EXPECT_NE(healthz.find("ok"), std::string::npos);

  const std::string metrics = http_get(live.server.http_port(), "/metrics");
  EXPECT_NE(metrics.find("200 OK"), std::string::npos);
  EXPECT_NE(metrics.find("she_server_requests_total"), std::string::npos);
  EXPECT_NE(metrics.find("she_pipeline_inserted_total"), std::string::npos);
  EXPECT_NE(metrics.find("pipeline=\"edge\""), std::string::npos);

  const std::string missing = http_get(live.server.http_port(), "/nope");
  EXPECT_NE(missing.find("404"), std::string::npos);
  EXPECT_NE(http_get(live.server.http_port(), "/healthz").find("200"),
            std::string::npos);  // still serving after a 404
}

TEST(Server, JaccardAcrossPipelines) {
  LiveServer live;
  SheClient c = live.client();
  const char* spec =
      "similarity shards=1 window=8K memory=64K similarity-slots=512 seed=3";
  c.create("a", spec);
  c.create("b", spec);
  // Lock-step streams over 1500-key universes sharing 500 keys:
  // J = 500 / 2500 = 0.2.
  std::vector<std::uint64_t> ka(15000), kb(15000);
  for (std::size_t i = 0; i < ka.size(); ++i) {
    ka[i] = i % 1500;
    kb[i] = (i % 1500) + 1000;
  }
  ASSERT_EQ(c.insert_bulk("a", ka), ka.size());
  ASSERT_EQ(c.insert_bulk("b", kb), kb.size());
  const double j = c.query_jaccard("a", "b");
  EXPECT_GT(j, 0.05);
  EXPECT_LT(j, 0.45);
  // Self-similarity is exactly 1.
  EXPECT_EQ(c.query_jaccard("a", "a"), 1.0);
}

// --------------------------- tracing / healthz -----------------------------

/// Body of an HTTP response (everything after the blank line).
std::string http_body(const std::string& resp) {
  const std::size_t at = resp.find("\r\n\r\n");
  return at == std::string::npos ? std::string() : resp.substr(at + 4);
}

/// Restores the process-wide tracing toggle (a --trace server flips it on).
struct TraceToggleGuard {
  ~TraceToggleGuard() {
    obs::trace::set_enabled(false);
    obs::trace::reset();
  }
};

TEST(Server, HealthzReportsBuildAndSchema) {
  LiveServer live;
  const std::string resp = http_get(live.server.http_port(), "/healthz");
  EXPECT_NE(resp.find("200 OK"), std::string::npos);
  EXPECT_NE(resp.find("application/json"), std::string::npos);
  const std::string body = http_body(resp);
  EXPECT_NE(body.find("\"status\":\"ok\""), std::string::npos);
  EXPECT_NE(body.find("\"uptime_s\":"), std::string::npos);
  EXPECT_NE(body.find("\"schema_version\":" +
                      std::to_string(runtime::RuntimeStats::kSchemaVersion)),
            std::string::npos);
  EXPECT_NE(body.find("\"version\":\""), std::string::npos);
  EXPECT_NE(body.find("\"compiler\":\""), std::string::npos);
  EXPECT_NE(body.find("\"tracing\":false"), std::string::npos);
  EXPECT_NE(body.find("\"trace_sample\":1"), std::string::npos);
  EXPECT_NE(body.find("\"pipelines\":0"), std::string::npos);
  // Dispatched SIMD backend + scalar override state, for fleet debugging.
  EXPECT_NE(body.find("\"simd\":\"" + std::string(simd::active_isa_name()) +
                      "\""),
            std::string::npos);
  EXPECT_NE(body.find("\"force_scalar\":" +
                      std::string(simd::force_scalar_env() ? "1" : "0")),
            std::string::npos);

  const std::string metrics =
      http_body(http_get(live.server.http_port(), "/metrics"));
  EXPECT_NE(metrics.find("she_build_info{"), std::string::npos);
  EXPECT_NE(metrics.find("version=\""), std::string::npos);
  EXPECT_NE(metrics.find("compiler=\""), std::string::npos);
  EXPECT_NE(metrics.find("simd=\""), std::string::npos);
  EXPECT_NE(metrics.find("force_scalar=\""), std::string::npos);
}

TEST(Server, TraceSamplingRecordsOneInN) {
  TraceToggleGuard guard;
  ServerOptions opt;
  opt.enable_tracing = true;
  opt.trace_sample = 4;
  LiveServer live(std::move(opt));
  obs::trace::reset();  // only this test's spans
  SheClient c = live.client();
  for (int i = 0; i < 8; ++i) c.ping();
  // Requests 0 and 4 of the 1-in-4 sampler record; the other six run under
  // SuppressScope and leave nothing in the rings.
  std::size_t ping_spans = 0;
  for (const auto& s : obs::trace::collect())
    if (std::string_view(s.name) == "ping") ++ping_spans;
  EXPECT_EQ(ping_spans, 2u);

  const std::string body =
      http_body(http_get(live.server.http_port(), "/healthz"));
  EXPECT_NE(body.find("\"trace_sample\":4"), std::string::npos);
}

TEST(Server, TracedRequestsAcceptedWithTracingDisabled) {
  // The trace header is a wire extension the server must strip whether or
  // not span collection is on.
  LiveServer live;
  SheClient c = live.client();
  c.set_trace_id(0x51);
  c.ping();
  c.create("compat", "window=4K memory=64K");
  std::vector<std::uint64_t> keys(512);
  for (std::size_t i = 0; i < keys.size(); ++i) keys[i] = i;
  EXPECT_EQ(c.insert_bulk("compat", keys), keys.size());
  c.flush("compat");
  EXPECT_TRUE(c.query_membership("compat", 7));
  EXPECT_TRUE(obs::trace::collect().empty());  // nothing recorded while off
}

TEST(Server, TraceEndpointShowsRequestPipelineAndEstimatorSpans) {
  TraceToggleGuard guard;
  ServerOptions opt;
  opt.enable_tracing = true;
  LiveServer live(std::move(opt));
  obs::trace::reset();  // only this test's spans
  SheClient c = live.client();
  c.create("traced", "window=8K memory=128K shards=1");
  const std::uint64_t id = 0xbeef;
  c.set_trace_id(id);
  std::vector<std::uint64_t> keys(4096);
  for (std::size_t i = 0; i < keys.size(); ++i) keys[i] = i % 1024;
  // Several bulks: every drain sweep after the first adopts the id.
  for (int round = 0; round < 4; ++round)
    ASSERT_EQ(c.insert_bulk("traced", keys), keys.size());
  c.flush("traced");
  (void)c.query_cardinality("traced");
  (void)c.query_membership("traced", 42);

  const std::string resp =
      http_get(live.server.http_port(), "/trace?ms=0");
  EXPECT_NE(resp.find("200 OK"), std::string::npos);
  EXPECT_NE(resp.find("application/json"), std::string::npos);
  const std::string body = http_body(resp);
  EXPECT_NE(body.find("\"traceEvents\":["), std::string::npos);
  // The traced request chain: server op over pipeline drain over the
  // estimator batch, all tagged with the client's trace id.
  EXPECT_NE(body.find("\"name\":\"insert_bulk\""), std::string::npos);
  EXPECT_NE(body.find("\"name\":\"query\""), std::string::npos);
  EXPECT_NE(body.find("\"name\":\"pipeline.push_bulk\""), std::string::npos);
  EXPECT_NE(body.find("\"name\":\"pipeline.drain\""), std::string::npos);
  EXPECT_NE(body.find("\"name\":\"estimator.insert_batch\""),
            std::string::npos);
  EXPECT_NE(body.find("\"name\":\"query.shard_merge\""), std::string::npos);
  EXPECT_NE(body.find("\"trace_id\":\"0xbeef\""), std::string::npos);

  // The id crossed the push → drain thread hop into the estimator batch.
  bool estimator_tagged = false;
  for (const auto& s : obs::trace::collect()) {
    if (s.trace_id == id &&
        (std::string_view(s.name) == "estimator.insert_batch" ||
         std::string_view(s.name) == "pipeline.drain")) {
      estimator_tagged = true;
    }
  }
  EXPECT_TRUE(estimator_tagged);

  // Per-op duration histograms picked up the labeled requests.
  const std::string metrics =
      http_body(http_get(live.server.http_port(), "/metrics"));
  EXPECT_NE(metrics.find("she_server_request_duration_ns_bucket{op=\"insert_"
                         "bulk\",pipeline=\"traced\""),
            std::string::npos);
  EXPECT_NE(metrics.find("she_server_request_duration_ns_count{op=\"query\","
                         "pipeline=\"traced\""),
            std::string::npos);
}

TEST(Server, SlowRequestCounterAndWindowedTrace) {
  TraceToggleGuard guard;
  ServerOptions opt;
  opt.enable_tracing = true;
  opt.slow_request_ms = 1;  // a 200k-key bulk parse + push is well past 1ms
  LiveServer live(std::move(opt));
  SheClient c = live.client();
  c.create("slow", "window=16K memory=256K");
  std::vector<std::uint64_t> keys(200'000);
  for (std::size_t i = 0; i < keys.size(); ++i) keys[i] = i;
  ASSERT_EQ(c.insert_bulk("slow", keys), keys.size());
  c.flush("slow");
  const std::string metrics =
      http_body(http_get(live.server.http_port(), "/metrics"));
  const std::size_t at = metrics.find("she_server_slow_requests_total ");
  ASSERT_NE(at, std::string::npos);
  EXPECT_NE(metrics[metrics.find_first_not_of(' ', at + 31)], '0');

  // A tiny window still yields valid (possibly near-empty) trace JSON.
  const std::string body =
      http_body(http_get(live.server.http_port(), "/trace?ms=1"));
  EXPECT_NE(body.find("\"traceEvents\":["), std::string::npos);
}

TEST(Server, ConcurrentScrapesWhileIngesting) {
  TraceToggleGuard guard;
  ServerOptions opt;
  opt.enable_tracing = true;
  LiveServer live(std::move(opt));
  {
    SheClient setup = live.client();
    setup.create("scrape", "window=8K memory=128K shards=2");
  }
  std::atomic<bool> stop{false};
  std::thread ingester([&] {
    SheClient c = live.client();
    c.set_trace_id(0x77);
    std::vector<std::uint64_t> keys(2048);
    for (std::size_t i = 0; i < keys.size(); ++i) keys[i] = i;
    while (!stop.load(std::memory_order_relaxed)) {
      (void)c.insert_bulk("scrape", keys);
    }
  });
  std::vector<std::thread> scrapers;
  std::atomic<int> bad{0};
  for (int t = 0; t < 3; ++t) {
    scrapers.emplace_back([&, t] {
      for (int i = 0; i < 8; ++i) {
        const char* target = t == 0   ? "/metrics"
                             : t == 1 ? "/healthz"
                                      : "/trace?ms=100";
        const std::string resp = http_get(live.server.http_port(), target);
        if (resp.find("200 OK") == std::string::npos) bad.fetch_add(1);
        if (t == 0 &&
            resp.find("she_server_requests_total") == std::string::npos) {
          bad.fetch_add(1);
        }
      }
    });
  }
  for (auto& s : scrapers) s.join();
  stop.store(true);
  ingester.join();
  EXPECT_EQ(bad.load(), 0);
}

TEST(Server, SigtermCheckpointsRestartAnswersIdentically) {
  const std::string root = temp_dir("server_sigterm");
  std::vector<std::uint64_t> keys(30000);
  for (std::size_t i = 0; i < keys.size(); ++i) keys[i] = (i * 7) % 4000;

  double card = 0;
  std::vector<std::uint64_t> freqs;
  std::vector<bool> present;
  {
    ServerOptions opt;
    opt.manager.checkpoint_root = root;
    opt.manager.checkpoint_keep = 2;
    LiveServer live(std::move(opt));
    SheClient c = live.client();
    c.create("flows", "window=16K memory=256K shards=2 seed=11");
    ASSERT_EQ(c.insert_bulk("flows", keys), keys.size());
    c.flush("flows");
    card = c.query_cardinality("flows");
    for (std::uint64_t k = 0; k < 24; ++k) {
      freqs.push_back(c.query_frequency("flows", k));
      present.push_back(c.query_membership("flows", k));
    }
    live.server.install_signal_handlers();
    std::raise(SIGTERM);
    live.server.wait();  // drains, writes final checkpoints, restores
  }

  ServerOptions opt;
  opt.manager.checkpoint_root = root;
  opt.manager.checkpoint_keep = 2;
  opt.manager.resume = true;
  LiveServer live(std::move(opt));
  SheClient c = live.client();
  const auto names = c.list();
  ASSERT_EQ(names.size(), 1u);
  EXPECT_EQ(names[0], "flows");
  EXPECT_EQ(c.query_cardinality("flows"), card);
  for (std::uint64_t k = 0; k < 24; ++k) {
    EXPECT_EQ(c.query_frequency("flows", k), freqs[k]) << "key " << k;
    EXPECT_EQ(c.query_membership("flows", k), present[k]) << "key " << k;
  }
}

// -------------------- admission control / zero-loss ingest ------------------

/// Little-endian u64 append, for hand-built wire frames.
void put_u64le(std::vector<char>& out, std::uint64_t v) {
  for (int b = 0; b < 8; ++b)
    out.push_back(static_cast<char>((v >> (8 * b)) & 0xff));
}

/// An INSERT_BULK body tagged with an explicit (client_id, client_seq) so a
/// test can replay the *same* sequence number byte-for-byte.
std::vector<char> seq_tagged_bulk(std::uint64_t client_id,
                                  std::uint64_t client_seq,
                                  const std::string& name,
                                  const std::vector<std::uint64_t>& keys) {
  std::vector<char> body;
  body.push_back(static_cast<char>(kSeqHeader));
  put_u64le(body, client_id);
  put_u64le(body, client_seq);
  WireWriter w;
  w.u8(static_cast<std::uint8_t>(Op::kInsertBulk));
  w.str(name);
  w.u32(static_cast<std::uint32_t>(keys.size()));
  for (std::uint64_t k : keys) w.u64(k);
  body.insert(body.end(), w.body().begin(), w.body().end());
  return body;
}

TEST(Server, DuplicateSeqReplayIsIdempotent) {
  LiveServer live;
  SheClient c = live.client();
  c.create("dd", "window=16K memory=128K shards=1");

  std::vector<std::uint64_t> keys(500, 7);  // one hot key, exact frequency
  const std::vector<char> body = seq_tagged_bulk(5, 1, "dd", keys);
  for (int replay = 0; replay < 3; ++replay) {
    const std::vector<char> resp = c.roundtrip_raw(body);
    ASSERT_FALSE(resp.empty());
    EXPECT_EQ(static_cast<Status>(resp[0]), Status::kOk);
    WireReader r(resp);
    (void)r.u8();
    // Every replay is acked with the full count (the client unblocks) ...
    EXPECT_EQ(r.u64(), keys.size());
  }
  c.flush("dd");
  // ... but the batch was applied exactly once.
  EXPECT_EQ(c.query_frequency("dd", 7), keys.size());

  // A fresh sequence number from the same client is new work.
  const std::vector<char> next = seq_tagged_bulk(5, 2, "dd", keys);
  EXPECT_EQ(static_cast<Status>(c.roundtrip_raw(next)[0]), Status::kOk);
  c.flush("dd");
  EXPECT_EQ(c.query_frequency("dd", 7), 2 * keys.size());
}

TEST(Server, AuthGateTokensAndTypedRejection) {
  const std::string dir = temp_dir("server_auth");
  const std::string token_file = dir + "/tokens";
  {
    std::ofstream f(token_file);
    f << "alpha-token\nbeta-token\n";
  }
  ServerOptions opt;
  opt.auth_token_file = token_file;
  LiveServer live(std::move(opt));

  // Every op before AUTH is rejected with the typed status — and the
  // connection survives to authenticate afterwards.
  SheClient c = live.client();
  try {
    c.ping();
    FAIL() << "expected kUnauthorized";
  } catch (const ClientError& e) {
    EXPECT_EQ(e.status(), Status::kUnauthorized);
  }
  {
    WireWriter w;
    w.u8(static_cast<std::uint8_t>(Op::kAuth));
    w.str("alpha-token");
    const std::vector<char> resp = c.roundtrip_raw(w.body());
    EXPECT_EQ(static_cast<Status>(resp[0]), Status::kOk);
  }
  c.ping();  // authed now

  // A wrong token is rejected but not connection-fatal.
  SheClient bad = live.client();
  {
    WireWriter w;
    w.u8(static_cast<std::uint8_t>(Op::kAuth));
    w.str("nope");
    const std::vector<char> resp = bad.roundtrip_raw(w.body());
    EXPECT_EQ(static_cast<Status>(resp[0]), Status::kUnauthorized);
  }
  try {
    bad.ping();
    FAIL() << "expected kUnauthorized";
  } catch (const ClientError& e) {
    EXPECT_EQ(e.status(), Status::kUnauthorized);
  }

  // The deadline-aware client authenticates on every (re)connect; a bad
  // token surfaces as the typed error from the constructor.
  ClientOptions good;
  good.auth_token = "beta-token";
  SheClient authed("127.0.0.1", live.server.port(), good);
  authed.create("locked", "window=4K memory=64K");
  EXPECT_EQ(authed.insert("locked", 9), 1u);
  ClientOptions wrong;
  wrong.auth_token = "stolen";
  EXPECT_THROW(SheClient("127.0.0.1", live.server.port(), wrong), ClientError);

  const std::string body =
      http_body(http_get(live.server.http_port(), "/healthz"));
  EXPECT_NE(body.find("\"auth_required\":true"), std::string::npos);
  const std::string metrics = live.server.render_metrics();
  EXPECT_NE(metrics.find("she_server_unauthorized_total"), std::string::npos);
  std::filesystem::remove_all(dir);
}

TEST(Server, OverQuotaLoadShedsFastWithTypedError) {
  ServerOptions opt;
  opt.bytes_per_sec = 64 * 1024;  // burst capacity: one second of budget
  LiveServer live(std::move(opt));
  SheClient c = live.client();
  c.create("ov", "window=8K memory=64K shards=1");

  // ~32 KiB per request: the 4x-quota burst must hit the typed overload
  // rejection, and the rejection must come back fast (shed before work,
  // not queued behind it).
  std::vector<std::uint64_t> keys(4096);
  for (std::size_t i = 0; i < keys.size(); ++i) keys[i] = i;
  bool overloaded = false;
  for (int i = 0; i < 8 && !overloaded; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    try {
      (void)c.insert_bulk("ov", keys);
    } catch (const ClientError& e) {
      ASSERT_EQ(e.status(), Status::kOverloaded);
      EXPECT_NE(std::string(e.what()).find("retry"), std::string::npos);
      EXPECT_LT(std::chrono::steady_clock::now() - t0,
                std::chrono::milliseconds(1000));
      overloaded = true;
    }
  }
  EXPECT_TRUE(overloaded) << "4x quota load never hit kOverloaded";
  c.ping();  // rejection is per-request, the connection keeps serving

  const std::string body =
      http_body(http_get(live.server.http_port(), "/healthz"));
  EXPECT_NE(body.find("\"overloaded_total\":"), std::string::npos);
  const std::string metrics = live.server.render_metrics();
  const std::size_t at = metrics.find("she_server_overloaded_total ");
  ASSERT_NE(at, std::string::npos);
  EXPECT_NE(metrics[metrics.find_first_not_of(' ', at + 28)], '0');

  // An overload-aware client with backoff retries through the window the
  // bucket needs to refill and eventually lands the batch.
  ClientOptions copt;
  copt.max_retries = 20;
  copt.backoff_initial_ms = 100;
  copt.backoff_max_ms = 400;
  SheClient patient("127.0.0.1", live.server.port(), copt);
  EXPECT_EQ(patient.insert_bulk("ov", keys), keys.size());
}

TEST(Server, BatchLargerThanBurstStillAdmitted) {
  ServerOptions opt;
  opt.bytes_per_sec = 16 * 1024;  // burst capacity: 16 KiB
  LiveServer live(std::move(opt));
  SheClient c = live.client();
  c.create("big", "window=8K memory=64K shards=1");

  // ~32 KiB — double the burst.  A strict bucket check would starve this
  // forever; a full bucket must admit it (going into debt) so oversize
  // batches make progress at the configured long-run rate.
  std::vector<std::uint64_t> keys(4096);
  for (std::size_t i = 0; i < keys.size(); ++i) keys[i] = i + 1;
  // Let the CREATE's charge refill so the burst is whole again.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_EQ(c.insert_bulk("big", keys), keys.size());

  // The debt is real: an immediate second oversize batch is shed.
  bool overloaded = false;
  try {
    (void)c.insert_bulk("big", keys);
  } catch (const ClientError& e) {
    EXPECT_EQ(e.status(), Status::kOverloaded);
    overloaded = true;
  }
  EXPECT_TRUE(overloaded) << "debt from the oversize batch was not charged";

  // And a patient client rides the refill through the debt.
  ClientOptions copt;
  copt.max_retries = 30;
  copt.backoff_initial_ms = 100;
  copt.backoff_max_ms = 500;
  SheClient patient("127.0.0.1", live.server.port(), copt);
  EXPECT_EQ(patient.insert_bulk("big", keys), keys.size());
}

#if defined(SHE_FAULT_INJECTION)

/// Clears the process-global fault injector around a test body.
struct InjectorGuard {
  InjectorGuard() { runtime::fault::injector().clear(); }
  ~InjectorGuard() { runtime::fault::injector().clear(); }
};

TEST(Server, RequestDeadlineShedsInsteadOfWedging) {
  InjectorGuard guard;
  ServerOptions opt;
  opt.request_deadline_ms = 200;
  LiveServer live(std::move(opt));
  SheClient c = live.client();
  c.create("dl", "window=16K memory=128K shards=1 producers=1 queue=256 "
                 "policy=block");

  // Wedge the drain thread for 3 s early in the stream.  The ring fills,
  // the handler's backpressure spin hits the request deadline, and the
  // server answers kTimeout long before the stall clears.
  runtime::fault::injector().arm(
      {runtime::fault::Point::kConsumerStall, 0, 1'000, 3'000});
  std::vector<std::uint64_t> keys(20'000);
  for (std::size_t i = 0; i < keys.size(); ++i) keys[i] = i;
  const auto t0 = std::chrono::steady_clock::now();
  try {
    (void)c.insert_bulk("dl", keys);
    FAIL() << "expected kTimeout";
  } catch (const ClientError& e) {
    EXPECT_EQ(e.status(), Status::kTimeout);
    EXPECT_NE(std::string(e.what()).find("replay is safe"),
              std::string::npos);
  }
  EXPECT_LT(std::chrono::steady_clock::now() - t0,
            std::chrono::milliseconds(2'500));
  c.ping();  // the handler thread was shed, not wedged

  const std::string metrics = live.server.render_metrics();
  const std::size_t at = metrics.find("she_server_deadline_shed_total ");
  ASSERT_NE(at, std::string::npos);
  EXPECT_NE(metrics[metrics.find_first_not_of(' ', at + 31)], '0');
  const std::string body =
      http_body(http_get(live.server.http_port(), "/healthz"));
  EXPECT_NE(body.find("\"request_deadline_ms\":200"), std::string::npos);
}

#endif  // SHE_FAULT_INJECTION

TEST(Server, WalSpecRequiresDurableRoot) {
  // Without a checkpoint root there is nowhere durable to put a backlog
  // log: the spec is rejected up front, not silently degraded.
  LiveServer live;
  SheClient c = live.client();
  try {
    c.create("w", "wal=async");
    FAIL() << "expected kBadRequest";
  } catch (const ClientError& e) {
    EXPECT_EQ(e.status(), Status::kBadRequest);
  }

  const std::string root = temp_dir("server_wal_spec");
  ServerOptions opt;
  opt.manager.checkpoint_root = root;
  LiveServer durable(std::move(opt));
  SheClient d = durable.client();
  d.create("w", "wal=fsync wal-fsync-bytes=64K shards=1 window=8K memory=64K");
  std::vector<std::uint64_t> keys(2048);
  for (std::size_t i = 0; i < keys.size(); ++i) keys[i] = i;
  EXPECT_EQ(d.insert_bulk("w", keys), keys.size());
  // The per-shard backlog log exists under the pipeline's directory.
  EXPECT_TRUE(std::filesystem::exists(
      std::filesystem::path(root) / "w" / "shard-0.wal"));
}

TEST(Server, ClientReplaysInsertsAcrossServerRestartExactTotals) {
  const std::string root = temp_dir("server_client_replay");
  std::uint16_t port = 0;
  ClientOptions copt;
  copt.connect_timeout_ms = 2'000;
  copt.io_timeout_ms = 5'000;
  copt.max_retries = 40;
  copt.backoff_initial_ms = 25;
  copt.backoff_max_ms = 250;
  copt.client_id = 0xC0FFEE;

  std::vector<std::uint64_t> batch(1'000, 7);  // exact frequency accounting
  std::optional<LiveServer> live;
  {
    ServerOptions opt;
    opt.manager.checkpoint_root = root;
    opt.manager.default_wal_mode = WalMode::kAsync;
    live.emplace(std::move(opt));
  }
  port = live->server.port();
  // ONE client object survives the restart: its sequence counter keeps
  // counting, so post-restart inserts are new work, not replays.
  SheClient c("127.0.0.1", port, copt);
  c.create("flows", "window=32K memory=256K shards=1 producers=1 seed=3");
  EXPECT_EQ(c.insert_bulk("flows", batch), batch.size());
  EXPECT_EQ(c.insert_bulk("flows", batch), batch.size());
  live->server.stop();
  live->server.wait();
  live.reset();

  // Same port, resumed state: the client's next insert rides its
  // exponential-backoff reconnect and lands exactly once.
  {
    ServerOptions opt;
    opt.host = "127.0.0.1";
    opt.port = port;
    opt.manager.checkpoint_root = root;
    opt.manager.default_wal_mode = WalMode::kAsync;
    opt.manager.resume = true;
    live.emplace(std::move(opt));
  }
  EXPECT_EQ(c.insert_bulk("flows", batch), batch.size());
  c.flush("flows");
  EXPECT_EQ(c.query_frequency("flows", 7), 3 * batch.size());
  // And a wire-level replay of an already-acked sequence number is still
  // absorbed after the restart — the idempotence table rode the log.
  const std::vector<char> dup = seq_tagged_bulk(0xC0FFEE, 2, "flows", batch);
  EXPECT_EQ(static_cast<Status>(c.roundtrip_raw(dup)[0]), Status::kOk);
  c.flush("flows");
  EXPECT_EQ(c.query_frequency("flows", 7), 3 * batch.size());
  std::filesystem::remove_all(root);
}

}  // namespace
}  // namespace she::server
