// SHE-HLL tests.
#include "she/she_hll.hpp"

#include "common/stats.hpp"
#include "stream/oracle.hpp"
#include "stream/trace.hpp"
#include <gtest/gtest.h>

namespace she {
namespace {

SheConfig hll_config(std::uint64_t window, std::size_t registers,
                     double alpha = 0.2) {
  SheConfig cfg;
  cfg.window = window;
  cfg.cells = registers;
  cfg.group_cells = 1;  // paper: w = 1 for SHE-HLL
  cfg.alpha = alpha;
  return cfg;
}

TEST(SheHll, RequiresUnitGroups) {
  SheConfig cfg = hll_config(1000, 1024);
  cfg.group_cells = 4;
  EXPECT_THROW(SheHyperLogLog{cfg}, std::invalid_argument);
}

TEST(SheHll, EmptyEstimatesZero) {
  SheHyperLogLog hll(hll_config(1000, 1024));
  EXPECT_NEAR(hll.cardinality(), 0.0, 5.0);
}

TEST(SheHll, TracksLargeWindowCardinality) {
  // HLL is meant for big cardinalities (paper uses N = 2^21; we scale down
  // but keep cardinality >> registers).
  constexpr std::uint64_t kWindow = 1 << 15;
  SheHyperLogLog hll(hll_config(kWindow, 2048, 0.2));
  stream::WindowOracle oracle(kWindow);
  auto trace = stream::distinct_trace(6 * kWindow, 7);
  RunningStats err;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    hll.insert(trace[i]);
    oracle.insert(trace[i]);
    if (i > 3 * kWindow && i % 4096 == 0)
      err.add(relative_error(static_cast<double>(oracle.cardinality()),
                             hll.cardinality()));
  }
  // Base HLL error ~1.04/sqrt(m_legal); sliding adds the alpha bias.
  EXPECT_LT(err.mean(), 0.15);
}

TEST(SheHll, DuplicatesDoNotInflate) {
  constexpr std::uint64_t kWindow = 8192;
  SheHyperLogLog hll(hll_config(kWindow, 1024));
  for (std::uint64_t i = 0; i < 6 * kWindow; ++i) hll.insert(i % 100);
  EXPECT_LT(hll.cardinality(), 400.0);
}

TEST(SheHll, AdaptsDownAfterBurst) {
  constexpr std::uint64_t kWindow = 8192;
  SheHyperLogLog hll(hll_config(kWindow, 1024, 0.2));
  auto burst = stream::distinct_trace(2 * kWindow, 3);
  for (auto k : burst) hll.insert(k);
  double high = hll.cardinality();
  for (std::uint64_t i = 0; i < 6 * kWindow; ++i) hll.insert(i % 64);
  double low = hll.cardinality();
  EXPECT_LT(low, high / 4.0);
}

TEST(SheHll, MemoryAccountsRegistersAndMarks) {
  SheHyperLogLog hll(hll_config(1000, 1024));
  // 1024 x 5-bit registers = 640 bytes, + 1024 1-bit marks = 128 bytes.
  EXPECT_GE(hll.memory_bytes(), 640u);
  EXPECT_LE(hll.memory_bytes(), 640u + 128u + 16u);
}

TEST(SheHll, ClearResets) {
  SheHyperLogLog hll(hll_config(1000, 512));
  auto t = stream::distinct_trace(5000, 2);
  for (auto k : t) hll.insert(k);
  hll.clear();
  EXPECT_EQ(hll.time(), 0u);
  EXPECT_NEAR(hll.cardinality(), 0.0, 5.0);
}

class SheHllAlpha : public ::testing::TestWithParam<double> {};

TEST_P(SheHllAlpha, ErrorBoundedAcrossAlpha) {
  double alpha = GetParam();
  constexpr std::uint64_t kWindow = 1 << 14;
  SheHyperLogLog hll(hll_config(kWindow, 2048, alpha));
  stream::WindowOracle oracle(kWindow);
  auto trace = stream::distinct_trace(6 * kWindow, 13);
  RunningStats err;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    hll.insert(trace[i]);
    oracle.insert(trace[i]);
    if (i > 3 * kWindow && i % 2048 == 0)
      err.add(relative_error(static_cast<double>(oracle.cardinality()),
                             hll.cardinality()));
  }
  EXPECT_LT(err.mean(), 0.35) << "alpha=" << alpha;
}

INSTANTIATE_TEST_SUITE_P(AlphaSweep, SheHllAlpha,
                         ::testing::Values(0.1, 0.2, 0.4, 1.0));

}  // namespace
}  // namespace she
