// Tests for the BOBHash family: determinism, seed independence and rough
// uniformity (the estimators' accuracy analysis assumes uniform hashing).
#include "common/bobhash.hpp"

#include <cstring>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace she {
namespace {

TEST(BobHash, DeterministicAcrossInstances) {
  BobHash32 h1(7);
  BobHash32 h2(7);
  for (std::uint64_t k = 0; k < 1000; ++k) EXPECT_EQ(h1(k), h2(k));
}

TEST(BobHash, SeedsProduceDistinctFunctions) {
  BobHash32 h0(0), h1(1);
  std::size_t equal = 0;
  for (std::uint64_t k = 0; k < 1000; ++k)
    if (h0(k) == h1(k)) ++equal;
  EXPECT_LT(equal, 3u);  // collisions between functions should be ~0
}

TEST(BobHash, StringAndBytesAgree) {
  BobHash32 h(3);
  std::string s = "sliding-window";
  EXPECT_EQ(h(s), h(s.data(), s.size()));
}

TEST(BobHash, HandlesAllTailLengths) {
  // lookup2 consumes 12-byte blocks; exercise every remainder 0..11.
  BobHash32 h(9);
  std::vector<unsigned char> buf(64, 0xAB);
  std::set<std::uint32_t> seen;
  for (std::size_t len = 0; len <= 24; ++len) seen.insert(h(buf.data(), len));
  EXPECT_EQ(seen.size(), 25u);  // every length hashes differently
}

TEST(BobHash, BucketsRoughlyUniform) {
  BobHash32 h(5);
  constexpr std::size_t kBuckets = 64;
  constexpr std::size_t kKeys = 64000;
  std::vector<std::size_t> counts(kBuckets, 0);
  for (std::uint64_t k = 0; k < kKeys; ++k) ++counts[h(k) % kBuckets];
  // Chi-squared with 63 dof: expect each bucket ~1000; allow +-20%.
  for (std::size_t b = 0; b < kBuckets; ++b) {
    EXPECT_GT(counts[b], 800u) << "bucket " << b;
    EXPECT_LT(counts[b], 1200u) << "bucket " << b;
  }
}

TEST(Hash64, BijectiveOnSample) {
  // SplitMix64 finalizer is a bijection: no collisions on a large sample.
  std::set<std::uint64_t> seen;
  for (std::uint64_t k = 0; k < 100000; ++k) seen.insert(hash64(k));
  EXPECT_EQ(seen.size(), 100000u);
}

TEST(Hash64, SeedChangesOutput) {
  EXPECT_NE(hash64(42, 0), hash64(42, 1));
}

TEST(Hash32, TopBitsUsed) {
  // hash32 takes the high 32 bits; should still look uniform mod small n.
  std::vector<std::size_t> counts(16, 0);
  for (std::uint64_t k = 0; k < 16000; ++k) ++counts[hash32(k) % 16];
  for (std::size_t c : counts) {
    EXPECT_GT(c, 800u);
    EXPECT_LT(c, 1200u);
  }
}

}  // namespace
}  // namespace she
