// Sharded wrapper tests: routing determinism, parallel/sequential
// equivalence, query semantics across shards, and the window-edge blur
// bound.
#include "she/sharded.hpp"

#include <thread>

#include "common/stats.hpp"
#include "she/she.hpp"
#include "stream/oracle.hpp"
#include "stream/trace.hpp"
#include <gtest/gtest.h>

namespace she {
namespace {

SheConfig bf_cfg(std::uint64_t window) {
  SheConfig cfg;
  cfg.window = window;
  cfg.cells = 1 << 14;
  cfg.group_cells = 64;
  cfg.alpha = 3.0;
  return cfg;
}

Sharded<SheBloomFilter> make_sharded_bf(std::size_t shards,
                                        std::uint64_t global_window) {
  return Sharded<SheBloomFilter>(shards, [&](std::size_t s) {
    SheConfig cfg = bf_cfg(global_window / shards);
    cfg.seed = static_cast<std::uint32_t>(s);  // independent families
    return SheBloomFilter(cfg, 8);
  });
}

TEST(Sharded, RejectsZeroShards) {
  EXPECT_THROW(make_sharded_bf(0, 1024), std::invalid_argument);
}

TEST(Sharded, RoutingIsDeterministicAndBalanced) {
  auto s = make_sharded_bf(8, 8192);
  std::vector<std::size_t> counts(8, 0);
  for (std::uint64_t k = 0; k < 80000; ++k) {
    std::size_t a = s.shard_of(k);
    ASSERT_EQ(a, s.shard_of(k));  // deterministic
    ++counts[a];
  }
  for (std::size_t c : counts) {
    EXPECT_GT(c, 9000u);
    EXPECT_LT(c, 11000u);
  }
}

TEST(Sharded, ParallelBulkEqualsSequentialRouting) {
  constexpr std::uint64_t kWindow = 8192;
  auto seq = make_sharded_bf(4, kWindow);
  auto par = make_sharded_bf(4, kWindow);
  auto trace = stream::distinct_trace(4 * kWindow, 5);

  for (auto k : trace) seq.insert(k);
  par.insert_bulk(trace, 4);

  // Identical answers on inserted keys and on absent probes.
  for (std::size_t i = 0; i < trace.size(); i += 17)
    ASSERT_EQ(sharded_contains(seq, trace[i]), sharded_contains(par, trace[i]));
  for (std::uint64_t p = 0; p < 3000; ++p) {
    std::uint64_t probe = (std::uint64_t{1} << 40) + p;
    ASSERT_EQ(sharded_contains(seq, probe), sharded_contains(par, probe));
  }
}

TEST(Sharded, BulkSingleThreadPathEquivalentToo) {
  constexpr std::uint64_t kWindow = 4096;
  auto seq = make_sharded_bf(3, kWindow);
  auto bulk = make_sharded_bf(3, kWindow);
  auto trace = stream::distinct_trace(2 * kWindow, 7);
  for (auto k : trace) seq.insert(k);
  bulk.insert_bulk(trace, 1);
  for (std::size_t i = 0; i < trace.size(); i += 13)
    ASSERT_EQ(sharded_contains(seq, trace[i]), sharded_contains(bulk, trace[i]));
}

TEST(Sharded, BulkCapsThreadsAtShardCount) {
  // More threads than shards must not spawn empty workers (and certainly
  // not change the result).
  constexpr std::uint64_t kWindow = 4096;
  auto seq = make_sharded_bf(3, kWindow);
  auto bulk = make_sharded_bf(3, kWindow);
  auto trace = stream::distinct_trace(2 * kWindow, 29);
  for (auto k : trace) seq.insert(k);
  bulk.insert_bulk(trace, 64);
  for (std::size_t i = 0; i < trace.size(); i += 13)
    ASSERT_EQ(sharded_contains(seq, trace[i]), sharded_contains(bulk, trace[i]));
}

TEST(Sharded, DeepInWindowItemsAlwaysFound) {
  // Sharding blurs the window edge by O(sqrt(N/S)), but items within half
  // the window must still always be present.
  constexpr std::uint64_t kWindow = 1 << 15;
  constexpr std::size_t kShards = 8;
  auto s = make_sharded_bf(kShards, kWindow);
  auto trace = stream::distinct_trace(4 * kWindow, 11);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    s.insert(trace[i]);
    if (i % 101 == 0 && i > kWindow / 2) {
      ASSERT_TRUE(sharded_contains(s, trace[i - kWindow / 2])) << "i=" << i;
      ASSERT_TRUE(sharded_contains(s, trace[i - 1]));
    }
  }
}

TEST(Sharded, OutdatedItemsExpireAcrossShards) {
  constexpr std::uint64_t kWindow = 1 << 14;
  // Roomy per-shard filters so a stale answer would be retention, not an
  // ordinary false positive.
  Sharded<SheBloomFilter> s(4, [&](std::size_t idx) {
    SheConfig cfg = bf_cfg(kWindow / 4);
    cfg.cells = 1 << 17;
    cfg.seed = static_cast<std::uint32_t>(idx);
    return SheBloomFilter(cfg, 8);
  });
  s.insert(0xFEED);
  auto noise = stream::distinct_trace(10 * kWindow, 13);
  s.insert_bulk(noise, 2);
  EXPECT_FALSE(sharded_contains(s, 0xFEED));
}

TEST(Sharded, CardinalitySumsAcrossShards) {
  constexpr std::uint64_t kWindow = 1 << 14;
  constexpr std::size_t kShards = 4;
  Sharded<SheBitmap> s(kShards, [&](std::size_t idx) {
    SheConfig cfg;
    cfg.window = kWindow / kShards;
    cfg.cells = 1 << 13;
    cfg.group_cells = 64;
    cfg.alpha = 0.2;
    cfg.seed = static_cast<std::uint32_t>(idx);
    return SheBitmap(cfg);
  });
  stream::WindowOracle oracle(kWindow);
  auto trace = stream::distinct_trace(4 * kWindow, 17);
  RunningStats err;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    s.insert(trace[i]);
    oracle.insert(trace[i]);
    if (i > 2 * kWindow && i % 1024 == 0)
      err.add(relative_error(static_cast<double>(oracle.cardinality()),
                             sharded_cardinality(s)));
  }
  EXPECT_LT(err.mean(), 0.12);
}

TEST(Sharded, FrequencyRoutesToOwner) {
  constexpr std::uint64_t kWindow = 1 << 14;
  Sharded<SheCountMin> s(4, [&](std::size_t idx) {
    SheConfig cfg;
    cfg.window = kWindow / 4;
    cfg.cells = 1 << 14;
    cfg.group_cells = 64;
    cfg.alpha = 1.0;
    cfg.seed = static_cast<std::uint32_t>(idx);
    return SheCountMin(cfg, 8);
  });
  // One hot key sprinkled through noise; the owner shard sees all of it.
  auto noise = stream::distinct_trace(2 * kWindow, 19);
  std::uint64_t hot_inserted = 0;
  for (std::size_t i = 0; i < noise.size(); ++i) {
    s.insert(noise[i]);
    if (i % 8 == 0) {
      s.insert(777);
      ++hot_inserted;
    }
  }
  // The hot key's shard-local window is N/4; it holds the most recent
  // ~N/4 shard items, of which the hot key is a steady fraction.
  std::uint64_t est = sharded_frequency(s, 777);
  EXPECT_GT(est, 100u);
}

TEST(Sharded, MemorySumsShards) {
  auto s = make_sharded_bf(4, 8192);
  EXPECT_GE(s.memory_bytes(), 4 * ((1u << 14) / 8));
}

}  // namespace
}  // namespace she
