// SheConfig validation and Sec.-5 tuning formula tests.
#include "she/config.hpp"
#include "she/tuning.hpp"

#include <cmath>

#include <gtest/gtest.h>

namespace she {
namespace {

SheConfig valid_config() {
  SheConfig cfg;
  cfg.window = 1000;
  cfg.cells = 4096;
  cfg.group_cells = 64;
  cfg.alpha = 0.5;
  return cfg;
}

TEST(SheConfig, TcycleRounding) {
  SheConfig cfg = valid_config();
  cfg.alpha = 0.5;
  EXPECT_EQ(cfg.tcycle(), 1500u);
  cfg.alpha = 0.2;
  EXPECT_EQ(cfg.tcycle(), 1200u);
  cfg.window = 3;
  cfg.alpha = 0.5;
  EXPECT_EQ(cfg.tcycle(), 5u);  // round(4.5) -> 5 (llround half-up)
}

TEST(SheConfig, GroupCount) {
  SheConfig cfg = valid_config();
  EXPECT_EQ(cfg.groups(), 64u);
  cfg.cells = 4097;
  EXPECT_EQ(cfg.groups(), 65u);  // ceil
  cfg.group_cells = 1;
  EXPECT_EQ(cfg.groups(), 4097u);
}

TEST(SheConfig, ValidationCatchesEachField) {
  SheConfig cfg = valid_config();
  EXPECT_NO_THROW(cfg.validate());

  cfg = valid_config();
  cfg.window = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);

  cfg = valid_config();
  cfg.cells = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);

  cfg = valid_config();
  cfg.group_cells = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);

  cfg = valid_config();
  cfg.group_cells = cfg.cells + 1;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);

  cfg = valid_config();
  cfg.alpha = 0.0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);

  cfg = valid_config();
  cfg.alpha = -0.5;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);

  cfg = valid_config();
  cfg.beta = 0.0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);

  cfg = valid_config();
  cfg.beta = 1.5;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);

  cfg = valid_config();
  cfg.mark_bits = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);

  cfg = valid_config();
  cfg.mark_bits = 33;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);

  // alpha so small that Tcycle rounds to N.
  cfg = valid_config();
  cfg.alpha = 1e-9;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(Tuning, RetentionQInUnitInterval) {
  double q = bf_retention_q(1 << 17, 64, 1 << 14, 8);
  EXPECT_GT(q, 0.0);
  EXPECT_LT(q, 1.0);
}

TEST(Tuning, RetentionQDecreasesWithLoad) {
  double q_light = bf_retention_q(1 << 18, 64, 1000, 8);
  double q_heavy = bf_retention_q(1 << 18, 64, 100000, 8);
  EXPECT_GT(q_light, q_heavy);
}

TEST(Tuning, OptimalRatioIsRootOfDerivative) {
  for (double q : {0.1, 0.3, 0.5, 0.7, 0.9, 0.99}) {
    double r0 = optimal_ratio(q);
    double lnq = std::log(q);
    double dg = std::pow(q, r0) * (r0 * lnq - 1.0) + q;
    EXPECT_NEAR(dg, 0.0, 1e-9) << "q=" << q;
    EXPECT_GT(r0, 0.0);
  }
}

TEST(Tuning, OptimalRatioRejectsBadQ) {
  EXPECT_THROW(optimal_ratio(0.0), std::invalid_argument);
  EXPECT_THROW(optimal_ratio(1.0), std::invalid_argument);
  EXPECT_THROW(optimal_ratio(-0.5), std::invalid_argument);
}

TEST(Tuning, FprModelMinimizedAtOptimalRatio) {
  // Scan R around R0: the model FPR should be (weakly) larger elsewhere.
  for (double q : {0.2, 0.5, 0.8}) {
    double r0 = optimal_ratio(q);
    double best = bf_fpr_model(q, r0, 8);
    for (double r = 0.2; r < 4 * r0; r += 0.1) {
      EXPECT_GE(bf_fpr_model(q, r, 8) + 1e-12, best)
          << "q=" << q << " r=" << r << " r0=" << r0;
    }
  }
}

TEST(Tuning, FprModelDecreasesWithMoreMemory) {
  // Higher Q (lighter load) -> lower minimum FPR.
  double fpr_tight = bf_fpr_model(0.3, optimal_ratio(0.3), 8);
  double fpr_roomy = bf_fpr_model(0.9, optimal_ratio(0.9), 8);
  EXPECT_GT(fpr_tight, fpr_roomy);
}

TEST(Tuning, OptimalAlphaPositive) {
  double a = optimal_alpha_bf(1 << 17, 64, 1 << 14, 8);
  EXPECT_GE(a, 0.01);
  EXPECT_LT(a, 100.0);
}

TEST(Tuning, ExpectedFailedGroupsMonotoneInG) {
  double prev = 0.0;
  for (std::size_t g = 1; g <= 1 << 12; g *= 2) {
    double e = expected_failed_groups(g, 10000, 8, 0.5);
    EXPECT_GE(e, prev);
    prev = e;
  }
}

TEST(Tuning, MaxGroupsRespectsEps) {
  std::size_t g = max_groups_for_failure(10000, 8, 0.5, 0.01);
  EXPECT_GE(g, 1u);
  EXPECT_LE(expected_failed_groups(g, 10000, 8, 0.5), 0.01);
  EXPECT_GT(expected_failed_groups(g + 1, 10000, 8, 0.5), 0.01);
}

TEST(Tuning, MaxGroupsRejectsBadEps) {
  EXPECT_THROW(max_groups_for_failure(1000, 8, 0.5, 0.0), std::invalid_argument);
}

TEST(Tuning, MoreInsertionsAllowMoreGroups) {
  std::size_t few = max_groups_for_failure(1000, 8, 0.5, 0.01);
  std::size_t many = max_groups_for_failure(100000, 8, 0.5, 0.01);
  EXPECT_GT(many, few);
}

}  // namespace
}  // namespace she
