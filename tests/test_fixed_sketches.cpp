// Fixed-window base sketch tests (Bloom, Bitmap, HLL, CM, MinHash) — these
// are both the paper's "Ideal" goal and the kernels SHE extends, so their
// one-sidedness/accuracy properties must hold before SHE's can.
#include "sketch/bitmap.hpp"
#include "sketch/bloom_filter.hpp"
#include "sketch/count_min.hpp"
#include "sketch/hyperloglog.hpp"
#include "sketch/minhash.hpp"

#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include <gtest/gtest.h>

namespace she::fixed {
namespace {

TEST(BloomFilter, RejectsBadArguments) {
  EXPECT_THROW(BloomFilter(0, 4), std::invalid_argument);
  EXPECT_THROW(BloomFilter(100, 0), std::invalid_argument);
}

TEST(BloomFilter, NoFalseNegatives) {
  BloomFilter bf(1 << 14, 4);
  for (std::uint64_t k = 0; k < 1000; ++k) bf.insert(k);
  for (std::uint64_t k = 0; k < 1000; ++k) EXPECT_TRUE(bf.contains(k));
}

TEST(BloomFilter, FalsePositiveRateNearTheory) {
  constexpr std::size_t kBits = 1 << 14;
  constexpr unsigned kHashes = 4;
  constexpr std::size_t kInserted = 2000;
  BloomFilter bf(kBits, kHashes);
  for (std::uint64_t k = 0; k < kInserted; ++k) bf.insert(k);
  std::size_t fp = 0;
  constexpr std::size_t kProbes = 20000;
  for (std::uint64_t k = 1000000; k < 1000000 + kProbes; ++k)
    if (bf.contains(k)) ++fp;
  double fpr = static_cast<double>(fp) / kProbes;
  double theory = std::pow(1.0 - std::exp(-static_cast<double>(kHashes * kInserted) / kBits),
                           kHashes);
  EXPECT_NEAR(fpr, theory, theory + 0.002);  // within 2x + floor
}

TEST(BloomFilter, ClearEmpties) {
  BloomFilter bf(1024, 3);
  bf.insert(5);
  bf.clear();
  EXPECT_FALSE(bf.contains(5));
}

TEST(Bitmap, CardinalityAccurate) {
  Bitmap bm(1 << 14);
  std::unordered_set<std::uint64_t> keys;
  Rng rng(17);
  for (int i = 0; i < 4000; ++i) {
    std::uint64_t k = rng();
    keys.insert(k);
    bm.insert(k);
  }
  double est = bm.cardinality();
  EXPECT_NEAR(est, static_cast<double>(keys.size()), keys.size() * 0.05);
}

TEST(Bitmap, DuplicatesDoNotInflate) {
  Bitmap bm(4096);
  for (int rep = 0; rep < 100; ++rep)
    for (std::uint64_t k = 0; k < 50; ++k) bm.insert(k);
  EXPECT_NEAR(bm.cardinality(), 50.0, 10.0);
}

TEST(Bitmap, EmptyIsZero) {
  EXPECT_DOUBLE_EQ(Bitmap(1024).cardinality(), 0.0);
}

TEST(LinearCounting, SaturationHandled) {
  // All bits set -> returns the resolvable maximum rather than infinity.
  double v = linear_counting(0, 1024, 1024.0);
  EXPECT_TRUE(std::isfinite(v));
  EXPECT_GT(v, 1024.0);
}

TEST(HyperLogLog, CardinalityWithinExpectedError) {
  HyperLogLog hll(1024);
  constexpr std::uint64_t kDistinct = 100000;
  for (std::uint64_t k = 0; k < kDistinct; ++k) hll.insert(k);
  // Standard error ~1.04/sqrt(1024) = 3.25%; allow 4 sigma.
  EXPECT_NEAR(hll.cardinality(), static_cast<double>(kDistinct),
              kDistinct * 0.13);
}

TEST(HyperLogLog, SmallRangeCorrectionKicksIn) {
  HyperLogLog hll(1024);
  for (std::uint64_t k = 0; k < 10; ++k) hll.insert(k);
  EXPECT_NEAR(hll.cardinality(), 10.0, 3.0);
}

TEST(HyperLogLog, DuplicatesIdempotent) {
  HyperLogLog a(256), b(256);
  for (std::uint64_t k = 0; k < 1000; ++k) a.insert(k);
  for (int rep = 0; rep < 5; ++rep)
    for (std::uint64_t k = 0; k < 1000; ++k) b.insert(k);
  EXPECT_DOUBLE_EQ(a.cardinality(), b.cardinality());
}

TEST(HyperLogLog, AlphaConstants) {
  EXPECT_DOUBLE_EQ(HyperLogLog::alpha(16), 0.673);
  EXPECT_DOUBLE_EQ(HyperLogLog::alpha(32), 0.697);
  EXPECT_DOUBLE_EQ(HyperLogLog::alpha(64), 0.709);
  EXPECT_NEAR(HyperLogLog::alpha(1024), 0.7213 / (1 + 1.079 / 1024), 1e-12);
}

TEST(CountMin, NeverUnderestimates) {
  CountMin cm(4096, 4);
  std::unordered_map<std::uint64_t, std::uint64_t> truth;
  Rng rng(23);
  for (int i = 0; i < 20000; ++i) {
    std::uint64_t k = rng.below(500);
    cm.insert(k);
    ++truth[k];
  }
  for (const auto& [k, f] : truth) EXPECT_GE(cm.frequency(k), f) << "key " << k;
}

TEST(CountMin, AccurateWithAmpleMemory) {
  CountMin cm(1 << 16, 4);
  for (int rep = 0; rep < 100; ++rep)
    for (std::uint64_t k = 0; k < 20; ++k) cm.insert(k);
  for (std::uint64_t k = 0; k < 20; ++k) EXPECT_EQ(cm.frequency(k), 100u);
}

TEST(CountMin, UnknownKeyLikelyZeroWithAmpleMemory) {
  CountMin cm(1 << 16, 4);
  for (std::uint64_t k = 0; k < 100; ++k) cm.insert(k);
  std::size_t nonzero = 0;
  for (std::uint64_t k = 1000; k < 2000; ++k)
    if (cm.frequency(k) > 0) ++nonzero;
  EXPECT_LT(nonzero, 10u);
}

TEST(MinHash, IdenticalSetsGiveOne) {
  MinHash a(128, 1), b(128, 1);
  for (std::uint64_t k = 0; k < 500; ++k) {
    a.insert(k);
    b.insert(k);
  }
  EXPECT_DOUBLE_EQ(MinHash::jaccard(a, b), 1.0);
}

TEST(MinHash, DisjointSetsNearZero) {
  MinHash a(256, 1), b(256, 1);
  for (std::uint64_t k = 0; k < 500; ++k) a.insert(k);
  for (std::uint64_t k = 10000; k < 10500; ++k) b.insert(k);
  EXPECT_LT(MinHash::jaccard(a, b), 0.05);
}

TEST(MinHash, EstimatesKnownJaccard) {
  // |A|=|B|=600, |A ∩ B|=300 -> J = 300/900 = 1/3.
  MinHash a(512, 2), b(512, 2);
  for (std::uint64_t k = 0; k < 600; ++k) a.insert(k);
  for (std::uint64_t k = 300; k < 900; ++k) b.insert(k);
  EXPECT_NEAR(MinHash::jaccard(a, b), 1.0 / 3.0, 0.08);
}

TEST(MinHash, SizeMismatchThrows) {
  MinHash a(64), b(128);
  EXPECT_THROW(MinHash::jaccard(a, b), std::invalid_argument);
}

TEST(MinHash, EmptySignaturesGiveZero) {
  MinHash a(64), b(64);
  EXPECT_DOUBLE_EQ(MinHash::jaccard(a, b), 0.0);
}

}  // namespace
}  // namespace she::fixed
