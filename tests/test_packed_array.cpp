// PackedArray tests across all cell widths (cross-word packing is the
// subtle part: e.g. 5-bit HLL registers straddle 64-bit word boundaries).
#include "common/packed_array.hpp"

#include <vector>

#include <gtest/gtest.h>

namespace she {
namespace {

TEST(PackedArray, RejectsBadWidths) {
  EXPECT_THROW(PackedArray(8, 0), std::invalid_argument);
  EXPECT_THROW(PackedArray(8, 65), std::invalid_argument);
  EXPECT_NO_THROW(PackedArray(8, 64));
}

TEST(PackedArray, MaxValue) {
  EXPECT_EQ(PackedArray(1, 1).max_value(), 1u);
  EXPECT_EQ(PackedArray(1, 5).max_value(), 31u);
  EXPECT_EQ(PackedArray(1, 18).max_value(), (1u << 18) - 1);
  EXPECT_EQ(PackedArray(1, 64).max_value(), ~std::uint64_t{0});
}

TEST(PackedArray, OutOfRangeThrows) {
  PackedArray a(10, 7);
  EXPECT_THROW((void)a.get(10), std::out_of_range);
  EXPECT_THROW(a.set(10, 0), std::out_of_range);
  EXPECT_THROW(a.clear_range(5, 6), std::out_of_range);
}

TEST(PackedArray, ValuesMaskedToWidth) {
  PackedArray a(4, 3);
  a.set(1, 0xFF);  // only low 3 bits kept
  EXPECT_EQ(a.get(1), 7u);
  EXPECT_EQ(a.get(0), 0u);
  EXPECT_EQ(a.get(2), 0u);
}

TEST(PackedArray, SaturatingAdd) {
  PackedArray a(2, 4);  // max 15
  a.add_saturating(0, 10);
  EXPECT_EQ(a.get(0), 10u);
  a.add_saturating(0, 10);
  EXPECT_EQ(a.get(0), 15u);  // clamped
  a.add_saturating(1);
  EXPECT_EQ(a.get(1), 1u);
}

TEST(PackedArray, ClearRange) {
  PackedArray a(20, 6);
  for (std::size_t i = 0; i < 20; ++i) a.set(i, i + 1);
  a.clear_range(5, 10);
  for (std::size_t i = 0; i < 20; ++i)
    EXPECT_EQ(a.get(i), (i >= 5 && i < 15) ? 0u : i + 1) << i;
}

// Parameterized over every cell width: write-read roundtrip with values that
// exercise word-boundary straddles at each width.
class PackedWidthTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(PackedWidthTest, RoundTripAgainstReference) {
  unsigned bits = GetParam();
  constexpr std::size_t kCells = 137;  // odd size -> many straddles
  PackedArray a(kCells, bits);
  std::vector<std::uint64_t> ref(kCells, 0);
  std::uint64_t state = 0x12345678 + bits;
  for (int round = 0; round < 3; ++round) {
    for (std::size_t i = 0; i < kCells; ++i) {
      state = state * 6364136223846793005ULL + 1442695040888963407ULL;
      std::uint64_t v = state & a.max_value();
      a.set(i, v);
      ref[i] = v;
    }
    for (std::size_t i = 0; i < kCells; ++i)
      ASSERT_EQ(a.get(i), ref[i]) << "width=" << bits << " cell=" << i;
  }
}

TEST_P(PackedWidthTest, NeighboursUndisturbed) {
  unsigned bits = GetParam();
  PackedArray a(99, bits);
  for (std::size_t i = 0; i < 99; ++i) a.set(i, a.max_value());
  a.set(50, 0);
  EXPECT_EQ(a.get(49), a.max_value());
  EXPECT_EQ(a.get(50), 0u);
  EXPECT_EQ(a.get(51), a.max_value());
}

INSTANTIATE_TEST_SUITE_P(AllWidths, PackedWidthTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u, 9u,
                                           12u, 13u, 16u, 18u, 21u, 24u, 31u,
                                           32u, 33u, 40u, 48u, 63u, 64u));

TEST(PackedArray, MemoryBytes) {
  EXPECT_EQ(PackedArray(64, 1).memory_bytes(), 8u);
  EXPECT_EQ(PackedArray(12, 5).memory_bytes(), 8u);    // 60 bits -> 1 word
  EXPECT_EQ(PackedArray(13, 5).memory_bytes(), 16u);   // 65 bits -> 2 words
}

}  // namespace
}  // namespace she
