// SHEsoft-BF tests, including the software-vs-hardware equivalence the
// framework's group cleaning is meant to preserve.
#include "she/soft_bloom.hpp"

#include "common/rng.hpp"
#include "she/she_bloom.hpp"
#include "stream/oracle.hpp"
#include "stream/trace.hpp"
#include <gtest/gtest.h>

namespace she {
namespace {

SheConfig soft_config(std::uint64_t window, std::size_t cells, double alpha) {
  SheConfig cfg;
  cfg.window = window;
  cfg.cells = cells;
  cfg.group_cells = 64;  // ignored by the soft version
  cfg.alpha = alpha;
  return cfg;
}

TEST(SoftBloom, RejectsZeroHashes) {
  EXPECT_THROW(SoftSheBloomFilter(soft_config(100, 1024, 1.0), 0),
               std::invalid_argument);
}

TEST(SoftBloom, CellAgesFollowTheSweep) {
  // M = Tcycle: the sweep cleans exactly one cell per tick (the paper's
  // Fig. 3 setting), so cell i is cleaned at ticks i+1, i+1+T, ...
  SheConfig cfg;
  cfg.window = 6;
  cfg.cells = 12;
  cfg.group_cells = 1;
  cfg.alpha = 1.0;  // Tcycle = 12 = M
  SoftSheBloomFilter bf(cfg, 1);
  ASSERT_EQ(cfg.tcycle(), 12u);
  for (int i = 0; i < 30; ++i) bf.insert(static_cast<std::uint64_t>(i));
  // At t = 30: sweep has cleaned 30 cells; cell 0 last cleaned at sweep
  // index 24 (t = 25), cell 5 at index 29 (t = 30), cell 6 at index 18
  // (t = 19).
  EXPECT_EQ(bf.cell_age(0), 5u);
  EXPECT_EQ(bf.cell_age(5), 0u);
  EXPECT_EQ(bf.cell_age(6), 11u);
}

TEST(SoftBloom, NeverSweptCellsAgeEqualsTime) {
  SheConfig cfg = soft_config(100, 1000, 1.0);  // Tcycle = 200, M = 1000
  SoftSheBloomFilter bf(cfg, 1);
  for (int i = 0; i < 10; ++i) bf.insert(static_cast<std::uint64_t>(i));
  // After 10 ticks only 50 cells are swept; a far cell was never swept.
  EXPECT_EQ(bf.cell_age(900), 10u);
}

TEST(SoftBloom, NoFalseNegatives) {
  constexpr std::uint64_t kWindow = 1024;
  SoftSheBloomFilter bf(soft_config(kWindow, 1 << 14, 3.0), 8);
  stream::WindowOracle oracle(kWindow);
  auto trace = stream::distinct_trace(6 * kWindow, 5);
  Rng rng(2);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    bf.insert(trace[i]);
    oracle.insert(trace[i]);
    if (i % 11 == 0 && i > 0) {
      std::uint64_t back = rng.below(std::min<std::uint64_t>(i, kWindow - 1));
      ASSERT_TRUE(bf.contains(trace[i - back])) << "i=" << i;
    }
  }
}

TEST(SoftBloom, OutdatedItemsForgotten) {
  constexpr std::uint64_t kWindow = 1024;
  SoftSheBloomFilter bf(soft_config(kWindow, 1 << 14, 1.0), 8);
  bf.insert(0xBEEF);
  auto noise = stream::distinct_trace(8 * kWindow, 6);
  for (auto k : noise) bf.insert(k);
  EXPECT_FALSE(bf.contains(0xBEEF));
}

TEST(SoftBloom, FprComparableToHardwareVersion) {
  // The hardware (grouped lazy) version approximates the software sweep;
  // with the same budget their FPRs should be the same order of magnitude.
  constexpr std::uint64_t kWindow = 2048;
  constexpr std::size_t kCells = 1 << 15;
  SoftSheBloomFilter soft(soft_config(kWindow, kCells, 3.0), 8);
  SheConfig hw_cfg = soft_config(kWindow, kCells, 3.0);
  SheBloomFilter hard(hw_cfg, 8);

  auto trace = stream::distinct_trace(8 * kWindow, 17);
  for (auto k : trace) {
    soft.insert(k);
    hard.insert(k);
  }
  auto probes = stream::distinct_trace(20000, 424242);
  std::size_t fp_soft = 0, fp_hard = 0;
  for (auto k : probes) {
    if (soft.contains(k)) ++fp_soft;
    if (hard.contains(k)) ++fp_hard;
  }
  double soft_fpr = (fp_soft + 1.0) / 20000.0;
  double hard_fpr = (fp_hard + 1.0) / 20000.0;
  EXPECT_LT(soft_fpr / hard_fpr, 10.0);
  EXPECT_LT(hard_fpr / soft_fpr, 10.0);
}

TEST(SoftBloom, ClearResets) {
  SoftSheBloomFilter bf(soft_config(100, 1024, 1.0), 4);
  bf.insert(42);
  bf.clear();
  EXPECT_EQ(bf.time(), 0u);
}

}  // namespace
}  // namespace she
