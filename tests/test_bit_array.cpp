// BitArray tests, including parameterized sweeps over range offsets/widths
// since group cleaning depends on word-straddling clear_range correctness.
#include "common/bit_array.hpp"

#include <tuple>
#include <vector>

#include <gtest/gtest.h>

namespace she {
namespace {

TEST(BitArray, StartsAllZero) {
  BitArray a(200);
  EXPECT_EQ(a.size(), 200u);
  EXPECT_EQ(a.popcount(), 0u);
  for (std::size_t i = 0; i < 200; ++i) EXPECT_FALSE(a.test(i));
}

TEST(BitArray, SetTestReset) {
  BitArray a(130);
  a.set(0);
  a.set(63);
  a.set(64);
  a.set(129);
  EXPECT_TRUE(a.test(0));
  EXPECT_TRUE(a.test(63));
  EXPECT_TRUE(a.test(64));
  EXPECT_TRUE(a.test(129));
  EXPECT_FALSE(a.test(1));
  EXPECT_EQ(a.popcount(), 4u);
  a.reset(63);
  EXPECT_FALSE(a.test(63));
  EXPECT_EQ(a.popcount(), 3u);
}

TEST(BitArray, ClearZeroesEverything) {
  BitArray a(100);
  for (std::size_t i = 0; i < 100; i += 3) a.set(i);
  a.clear();
  EXPECT_EQ(a.popcount(), 0u);
}

TEST(BitArray, MemoryBytesRoundsToWords) {
  EXPECT_EQ(BitArray(1).memory_bytes(), 8u);
  EXPECT_EQ(BitArray(64).memory_bytes(), 8u);
  EXPECT_EQ(BitArray(65).memory_bytes(), 16u);
  EXPECT_EQ(BitArray(1024).memory_bytes(), 128u);
}

TEST(BitArray, RangeErrorsThrow) {
  BitArray a(64);
  EXPECT_THROW(a.clear_range(60, 5), std::out_of_range);
  EXPECT_THROW((void)a.popcount_range(0, 65), std::out_of_range);
  EXPECT_NO_THROW(a.clear_range(60, 4));
}

// Parameterized: clear_range / popcount_range over (first, count) pairs that
// exercise in-word, word-aligned and multi-word-straddling geometries.
class BitRangeTest : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(BitRangeTest, ClearRangeMatchesReference) {
  auto [first, count] = GetParam();
  constexpr std::size_t kBits = 256;
  BitArray a(kBits);
  std::vector<bool> ref(kBits, false);
  // Set a pseudo-random pattern.
  for (std::size_t i = 0; i < kBits; ++i) {
    if ((i * 2654435761u) % 3 != 0) {
      a.set(i);
      ref[i] = true;
    }
  }
  a.clear_range(first, count);
  for (std::size_t i = first; i < first + count; ++i) ref[i] = false;
  for (std::size_t i = 0; i < kBits; ++i)
    ASSERT_EQ(a.test(i), ref[i]) << "bit " << i << " first=" << first
                                 << " count=" << count;
}

TEST_P(BitRangeTest, PopcountRangeMatchesReference) {
  auto [first, count] = GetParam();
  constexpr std::size_t kBits = 256;
  BitArray a(kBits);
  std::size_t expected = 0;
  for (std::size_t i = 0; i < kBits; ++i) {
    if ((i * 0x9e3779b9u) % 5 < 2) a.set(i);
  }
  for (std::size_t i = first; i < first + count; ++i)
    if (a.test(i)) ++expected;
  EXPECT_EQ(a.popcount_range(first, count), expected);
  EXPECT_EQ(a.zeros_range(first, count), count - expected);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, BitRangeTest,
    ::testing::Values(std::make_tuple(0, 0), std::make_tuple(0, 1),
                      std::make_tuple(0, 64), std::make_tuple(0, 256),
                      std::make_tuple(1, 62), std::make_tuple(1, 63),
                      std::make_tuple(63, 1), std::make_tuple(63, 2),
                      std::make_tuple(64, 64), std::make_tuple(32, 64),
                      std::make_tuple(32, 128), std::make_tuple(5, 246),
                      std::make_tuple(127, 2), std::make_tuple(128, 128),
                      std::make_tuple(192, 64), std::make_tuple(200, 56)));

}  // namespace
}  // namespace she
