// Ground-truth oracle tests: verified against brute-force recomputation.
#include "stream/oracle.hpp"

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/rng.hpp"
#include <gtest/gtest.h>

namespace she::stream {
namespace {

TEST(WindowOracle, RejectsZeroWindow) {
  EXPECT_THROW(WindowOracle(0), std::invalid_argument);
}

TEST(WindowOracle, BasicLifecycle) {
  WindowOracle o(3);
  o.insert(10);
  o.insert(20);
  o.insert(10);
  EXPECT_TRUE(o.contains(10));
  EXPECT_TRUE(o.contains(20));
  EXPECT_EQ(o.frequency(10), 2u);
  EXPECT_EQ(o.cardinality(), 2u);
  o.insert(30);  // evicts the first 10
  EXPECT_EQ(o.frequency(10), 1u);
  EXPECT_EQ(o.cardinality(), 3u);
  o.insert(40);  // evicts 20
  EXPECT_FALSE(o.contains(20));
  EXPECT_EQ(o.cardinality(), 3u);  // {10, 30, 40}
}

TEST(WindowOracle, TimeAdvances) {
  WindowOracle o(5);
  EXPECT_EQ(o.time(), 0u);
  for (int i = 0; i < 7; ++i) o.insert(static_cast<std::uint64_t>(i));
  EXPECT_EQ(o.time(), 7u);
}

TEST(WindowOracle, MatchesBruteForce) {
  constexpr std::uint64_t kWindow = 50;
  constexpr int kItems = 2000;
  WindowOracle o(kWindow);
  Rng rng(13);
  std::vector<std::uint64_t> history;
  for (int i = 0; i < kItems; ++i) {
    std::uint64_t key = rng.below(30);  // small key space -> much churn
    o.insert(key);
    history.push_back(key);

    if (i % 97 != 0) continue;  // spot-check periodically
    // Brute-force window contents.
    std::unordered_map<std::uint64_t, std::uint64_t> truth;
    std::size_t start = history.size() > kWindow ? history.size() - kWindow : 0;
    for (std::size_t j = start; j < history.size(); ++j) ++truth[history[j]];
    ASSERT_EQ(o.cardinality(), truth.size());
    for (std::uint64_t k = 0; k < 30; ++k) {
      auto it = truth.find(k);
      std::uint64_t expected = it == truth.end() ? 0 : it->second;
      ASSERT_EQ(o.frequency(k), expected) << "key " << k << " step " << i;
      ASSERT_EQ(o.contains(k), expected > 0);
    }
  }
}

TEST(JaccardOracle, DisjointAndIdentical) {
  JaccardOracle o(4);
  o.insert(1, 11);
  o.insert(2, 12);
  EXPECT_DOUBLE_EQ(o.jaccard(), 0.0);

  JaccardOracle o2(4);
  o2.insert(1, 1);
  o2.insert(2, 2);
  EXPECT_DOUBLE_EQ(o2.jaccard(), 1.0);
}

TEST(JaccardOracle, PartialOverlap) {
  JaccardOracle o(3);
  o.insert(1, 1);
  o.insert(2, 5);
  o.insert(3, 6);
  // A = {1,2,3}, B = {1,5,6}; intersection {1}, union 5 keys.
  EXPECT_DOUBLE_EQ(o.jaccard(), 1.0 / 5.0);
}

TEST(JaccardOracle, WindowEvictionAffectsSimilarity) {
  JaccardOracle o(2);
  o.insert(1, 1);
  o.insert(2, 2);
  EXPECT_DOUBLE_EQ(o.jaccard(), 1.0);
  o.insert(3, 9);  // windows now A={2,3}, B={2,9}
  EXPECT_DOUBLE_EQ(o.jaccard(), 1.0 / 3.0);
}

TEST(JaccardOracle, EmptyWindowsGiveZero) {
  JaccardOracle o(5);
  EXPECT_DOUBLE_EQ(o.jaccard(), 0.0);
}

}  // namespace
}  // namespace she::stream
