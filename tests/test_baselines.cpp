// Baseline algorithm tests: each competitor must actually work (the paper's
// comparisons are meaningless against broken baselines).
#include "baselines/compact_table.hpp"
#include "baselines/cvs.hpp"
#include "baselines/ecm.hpp"
#include "baselines/shll.hpp"
#include "baselines/strawman_minhash.hpp"
#include "baselines/swamp.hpp"
#include "baselines/tbf.hpp"
#include "baselines/tobf.hpp"
#include "baselines/tsv.hpp"

#include <cmath>
#include <unordered_map>

#include "common/bobhash.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "stream/oracle.hpp"
#include "stream/trace.hpp"
#include <gtest/gtest.h>

namespace she::baselines {
namespace {

// ------------------------- CompactCountingTable ----------------------------

TEST(CompactTable, RejectsBadArguments) {
  EXPECT_THROW(CompactCountingTable(0, 4, 16), std::invalid_argument);
  EXPECT_THROW(CompactCountingTable(16, 0, 16), std::invalid_argument);
  EXPECT_THROW(CompactCountingTable(16, 4, 16, 0), std::invalid_argument);
}

TEST(CompactTable, InsertRemoveCountBalance) {
  CompactCountingTable t(64, 4, 16);
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(t.insert(7));
  EXPECT_EQ(t.count(7), 10u);
  EXPECT_EQ(t.distinct(), 1u);
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(t.remove(7));
  EXPECT_EQ(t.count(7), 0u);
  EXPECT_EQ(t.distinct(), 0u);
  EXPECT_FALSE(t.remove(7));
}

TEST(CompactTable, ChainCountingBeyondCounterCeiling) {
  // 4-bit counts saturate at 15; hotter fingerprints spill to extra slots.
  CompactCountingTable t(64, 4, 16, 4);
  for (int i = 0; i < 40; ++i) EXPECT_TRUE(t.insert(9));
  EXPECT_EQ(t.count(9), 40u);
  EXPECT_EQ(t.distinct(), 1u);
  for (int i = 0; i < 40; ++i) EXPECT_TRUE(t.remove(9));
  EXPECT_EQ(t.count(9), 0u);
  EXPECT_EQ(t.distinct(), 0u);
}

TEST(CompactTable, MatchesReferenceMultiset) {
  CompactCountingTable t(512, 4, 20);
  std::unordered_map<std::uint32_t, std::uint64_t> ref;
  Rng rng(3);
  for (int i = 0; i < 20000; ++i) {
    auto fp = static_cast<std::uint32_t>(rng.below(500));
    if (rng.below(3) == 0 && ref[fp] > 0) {
      EXPECT_TRUE(t.remove(fp));
      --ref[fp];
    } else {
      EXPECT_TRUE(t.insert(fp));
      ++ref[fp];
    }
    if (i % 501 == 0) {
      std::size_t ref_distinct = 0;
      for (const auto& [k, c] : ref) {
        ASSERT_EQ(t.count(k), c) << "fp " << k << " step " << i;
        if (c > 0) ++ref_distinct;
      }
      ASSERT_EQ(t.distinct(), ref_distinct) << "step " << i;
    }
  }
}

TEST(CompactTable, DropsWhenChainSaturates) {
  // 2 buckets x 2 slots, chain 4 wraps the whole table: capacity 4 entries
  // of distinct fingerprints with saturating-width counts.
  CompactCountingTable t(2, 2, 16, 4);
  std::uint64_t inserted = 0;
  for (std::uint32_t fp = 0; fp < 50; ++fp)
    if (t.insert(fp)) ++inserted;
  EXPECT_LE(inserted, 4u);
  EXPECT_GT(t.dropped(), 0u);
}

TEST(CompactTable, MemoryIsPackedSlots) {
  CompactCountingTable t(1024, 4, 12, 4);
  // 4096 slots x 16 bits = 8 KB (+ word rounding).
  EXPECT_GE(t.memory_bytes(), 8192u);
  EXPECT_LE(t.memory_bytes(), 8192u + 32u);
}

// ------------------------------ SWAMP --------------------------------------

TEST(Swamp, RejectsBadArguments) {
  EXPECT_THROW(Swamp(0, 16), std::invalid_argument);
  EXPECT_THROW(Swamp(100, 0), std::invalid_argument);
  EXPECT_THROW(Swamp(100, 32), std::invalid_argument);
}

TEST(Swamp, ExactWithWideFingerprints) {
  // 31-bit fingerprints over a tiny window: collisions negligible, SWAMP
  // answers match the oracle exactly.
  constexpr std::uint64_t kWindow = 256;
  Swamp sw(kWindow, 31);
  stream::WindowOracle oracle(kWindow);
  Rng rng(3);
  for (int i = 0; i < 5000; ++i) {
    std::uint64_t k = rng.below(400);
    sw.insert(k);
    oracle.insert(k);
    if (i % 53 == 0) {
      for (std::uint64_t q = 0; q < 400; q += 7) {
        ASSERT_EQ(sw.contains(q), oracle.contains(q)) << "i=" << i;
        ASSERT_EQ(sw.frequency(q), oracle.frequency(q)) << "i=" << i;
      }
      ASSERT_NEAR(sw.cardinality(), static_cast<double>(oracle.cardinality()),
                  1.0);
    }
  }
}

TEST(Swamp, NoFalseNegatives) {
  Swamp sw(128, 12);
  for (std::uint64_t k = 0; k < 128; ++k) sw.insert(k);
  for (std::uint64_t k = 0; k < 128; ++k) EXPECT_TRUE(sw.contains(k));
}

TEST(Swamp, TinyFingerprintsCollide) {
  // 4-bit fingerprints over a 4096 window: the fingerprint space saturates
  // and membership answers become mostly false positives — the small-memory
  // failure mode in Fig. 9d.
  Swamp sw(4096, 4);
  auto trace = stream::distinct_trace(8192, 3);
  for (auto k : trace) sw.insert(k);
  std::size_t fp = 0;
  auto probes = stream::distinct_trace(1000, 999);
  for (auto k : probes)
    if (sw.contains(k)) ++fp;
  EXPECT_GT(fp, 900u);
}

TEST(Swamp, MemoryModel) {
  // Real packed footprint: W*f queue bits + 1.5*W slots of (f + 4) bits.
  Swamp sw(1 << 16, 16);
  double expected_bits = 65536.0 * 16 + 1.5 * 65536 * (16 + 4);
  EXPECT_NEAR(static_cast<double>(sw.memory_bytes()), expected_bits / 8,
              expected_bits / 8 * 0.01);
  // The sizing helper inverts that formula.
  auto f = Swamp::fingerprint_bits_for_memory(1 << 16, sw.memory_bytes());
  ASSERT_TRUE(f.has_value());
  EXPECT_GE(*f, 15u);
  EXPECT_LE(*f, 17u);
  // Below ~W*(2.5+6)/8 bytes SWAMP cannot run at all.
  EXPECT_FALSE(Swamp::fingerprint_bits_for_memory(1 << 16, 10000).has_value());
  // Round-trip: the suggested width must actually fit the budget.
  Swamp sized(1 << 16, *f);
  EXPECT_LE(sized.memory_bytes(), sw.memory_bytes() + 1024);
}

TEST(Swamp, TableDropsStayNegligible) {
  Swamp sw(4096, 14);
  auto trace = stream::distinct_trace(20000, 5);
  for (auto k : trace) sw.insert(k);
  // The bounded chain can drop under clustering; with 50% slot slack and an
  // 8-bucket chain drops effectively vanish.
  EXPECT_LT(sw.table_drops(), trace.size() / 1000);
}

// ------------------------------- TSV ---------------------------------------

TEST(Tsv, TracksWindowCardinality) {
  constexpr std::uint64_t kWindow = 2048;
  TimestampVector tsv(1 << 14, kWindow);
  stream::WindowOracle oracle(kWindow);
  auto trace = stream::distinct_trace(4 * kWindow, 5);
  RunningStats err;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    tsv.insert(trace[i]);
    oracle.insert(trace[i]);
    if (i > 2 * kWindow && i % 256 == 0)
      err.add(relative_error(static_cast<double>(oracle.cardinality()),
                             tsv.cardinality()));
  }
  EXPECT_LT(err.mean(), 0.05);
}

TEST(Tsv, MemoryIs64BitsPerSlot) {
  EXPECT_EQ(TimestampVector(1000, 10).memory_bytes(), 8000u);
}

// ------------------------------- CVS ---------------------------------------

TEST(Cvs, RejectsBadArguments) {
  EXPECT_THROW(CounterVectorSketch(0, 10), std::invalid_argument);
  EXPECT_THROW(CounterVectorSketch(10, 0), std::invalid_argument);
  EXPECT_THROW(CounterVectorSketch(10, 10, 16), std::invalid_argument);
}

TEST(Cvs, RoughCardinalityOnSteadyStream) {
  constexpr std::uint64_t kWindow = 2048;
  CounterVectorSketch cvs(1 << 14, kWindow, 10, 1);
  stream::WindowOracle oracle(kWindow);
  auto trace = stream::distinct_trace(6 * kWindow, 7);
  RunningStats err;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    cvs.insert(trace[i]);
    oracle.insert(trace[i]);
    if (i > 3 * kWindow && i % 512 == 0)
      err.add(relative_error(static_cast<double>(oracle.cardinality()),
                             cvs.cardinality()));
  }
  // CVS's random decay is noisy — accept a loose band (it is the weakest
  // baseline in Fig. 9a too).
  EXPECT_LT(err.mean(), 0.5);
}

TEST(Cvs, DecayEmptiesAfterTrafficStops) {
  // Insert into one region then hammer a single key: other counters decay.
  constexpr std::uint64_t kWindow = 512;
  CounterVectorSketch cvs(4096, kWindow, 10, 2);
  auto burst = stream::distinct_trace(2 * kWindow, 9);
  for (auto k : burst) cvs.insert(k);
  double high = cvs.cardinality();
  for (std::uint64_t i = 0; i < 20 * kWindow; ++i) cvs.insert(42);
  double low = cvs.cardinality();
  EXPECT_LT(low, high / 2);
}

// ------------------------------- TOBF --------------------------------------

TEST(Tobf, NoFalseNegatives) {
  constexpr std::uint64_t kWindow = 1024;
  TimeOutBloomFilter tobf(1 << 13, 4, kWindow);
  stream::WindowOracle oracle(kWindow);
  auto trace = stream::distinct_trace(4 * kWindow, 3);
  Rng rng(4);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    tobf.insert(trace[i]);
    oracle.insert(trace[i]);
    if (i % 13 == 0 && i > 0) {
      std::uint64_t back = rng.below(std::min<std::uint64_t>(i, kWindow - 1));
      ASSERT_TRUE(tobf.contains(trace[i - back]));
    }
  }
}

TEST(Tobf, ExactExpiry) {
  TimeOutBloomFilter tobf(1 << 14, 4, 100);
  tobf.insert(7);
  for (std::uint64_t i = 0; i < 99; ++i) tobf.insert(1000000 + i);
  EXPECT_TRUE(tobf.contains(7));  // age 99 < 100
  tobf.insert(2000000);
  EXPECT_FALSE(tobf.contains(7));  // age 100 >= 100: exactly expired
}

// -------------------------------- TBF --------------------------------------

TEST(Tbf, RejectsTooNarrowCounters) {
  EXPECT_THROW(TimingBloomFilter(1024, 4, 1 << 16, 16), std::invalid_argument);
  EXPECT_NO_THROW(TimingBloomFilter(1024, 4, 1 << 16, 18));
}

TEST(Tbf, NoFalseNegatives) {
  constexpr std::uint64_t kWindow = 1024;
  TimingBloomFilter tbf(1 << 13, 4, kWindow, 12);
  auto trace = stream::distinct_trace(4 * kWindow, 3);
  Rng rng(4);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    tbf.insert(trace[i]);
    if (i % 13 == 0 && i > 0) {
      std::uint64_t back = rng.below(std::min<std::uint64_t>(i, kWindow - 1));
      ASSERT_TRUE(tbf.contains(trace[i - back])) << i;
    }
  }
}

TEST(Tbf, AgreesWithTobfOnMembership) {
  // TBF is TOBF with wrapped counters; with ample counter bits they should
  // give (nearly) identical answers.
  constexpr std::uint64_t kWindow = 512;
  TimeOutBloomFilter tobf(8192, 4, kWindow);
  TimingBloomFilter tbf(8192, 4, kWindow, 14);
  auto trace = stream::distinct_trace(4 * kWindow, 8);
  std::size_t disagreements = 0;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    tobf.insert(trace[i]);
    tbf.insert(trace[i]);
    if (i % 7 == 0) {
      std::uint64_t probe = hash64(i, 321);
      if (tobf.contains(probe) != tbf.contains(probe)) ++disagreements;
      std::uint64_t recent = trace[i - std::min<std::size_t>(i, 100)];
      if (tobf.contains(recent) != tbf.contains(recent)) ++disagreements;
    }
  }
  EXPECT_LT(disagreements, 10u);
}

TEST(Tbf, OutdatedExpired) {
  constexpr std::uint64_t kWindow = 256;
  TimingBloomFilter tbf(1 << 13, 4, kWindow, 12);
  tbf.insert(7);
  auto noise = stream::distinct_trace(4 * kWindow, 5);
  for (auto k : noise) tbf.insert(k);
  EXPECT_FALSE(tbf.contains(7));
}

// -------------------------------- SHLL -------------------------------------

TEST(Shll, TracksWindowCardinality) {
  constexpr std::uint64_t kWindow = 1 << 14;
  SlidingHyperLogLog shll(2048, kWindow);
  stream::WindowOracle oracle(kWindow);
  auto trace = stream::distinct_trace(4 * kWindow, 5);
  RunningStats err;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    shll.insert(trace[i]);
    oracle.insert(trace[i]);
    if (i > 2 * kWindow && i % 2048 == 0)
      err.add(relative_error(static_cast<double>(oracle.cardinality()),
                             shll.cardinality(kWindow)));
  }
  EXPECT_LT(err.mean(), 0.12);
}

TEST(Shll, AnswersMultipleWindows) {
  SlidingHyperLogLog shll(1024, 10000);
  auto trace = stream::distinct_trace(20000, 6);
  for (auto k : trace) shll.insert(k);
  double small = shll.cardinality(1000);
  double large = shll.cardinality(10000);
  EXPECT_LT(small, large);
  EXPECT_NEAR(small, 1000, 300);
  EXPECT_NEAR(large, 10000, 3000);
  EXPECT_THROW((void)shll.cardinality(20000), std::invalid_argument);
}

TEST(Shll, QueuesStayMonotone) {
  // Memory stays bounded in practice but is data-dependent; on a distinct
  // stream the expected LFPM length is O(log N) per register.
  SlidingHyperLogLog shll(256, 1 << 14);
  auto trace = stream::distinct_trace(1 << 16, 7);
  for (auto k : trace) shll.insert(k);
  EXPECT_GT(shll.memory_bytes(), 256u * 9);
  EXPECT_LT(shll.memory_bytes(), 256u * 9 * 40);
  EXPECT_GE(shll.peak_memory_bytes(), shll.memory_bytes());
}

// -------------------------------- ECM --------------------------------------

TEST(ExpHist, ExactForTinyCounts) {
  ExpHistogram eh(4);
  for (std::uint64_t t = 1; t <= 4; ++t) eh.add(t);
  EXPECT_NEAR(eh.count(4, 100), 4.0, 0.01);
}

TEST(ExpHist, WindowedCountWithinEhBound) {
  ExpHistogram eh(8);
  constexpr std::uint64_t kTotal = 4000;
  for (std::uint64_t t = 1; t <= kTotal; ++t) eh.add(t);
  for (std::uint64_t window : {100u, 500u, 1000u, 4000u}) {
    double est = eh.count(kTotal, window);
    double truth = static_cast<double>(window);
    EXPECT_NEAR(est, truth, truth / 8.0 + 2)
        << "window " << window;  // EH error <= ~1/(2k)
  }
}

TEST(ExpHist, BucketCountLogarithmic) {
  // The defining EH property: at most k+1 buckets per power-of-two size,
  // so the total is O(k log n) — not O(n).
  ExpHistogram eh(4);
  for (std::uint64_t t = 1; t <= 100000; ++t) eh.add(t);
  // log2(100000) ~ 17 size classes, (k+1) = 5 buckets each, plus slack.
  EXPECT_LE(eh.bucket_count(), 5u * 18u + 5u);
  EXPECT_GE(eh.bucket_count(), 17u);
}

TEST(ExpHist, SizesNonIncreasingFromOldest) {
  // Structural invariant the merge logic relies on.
  ExpHistogram eh(2);
  for (std::uint64_t t = 1; t <= 5000; ++t) eh.add(t);
  double total = eh.count(5000, 5000);
  EXPECT_NEAR(total, 5000.0, 5000.0 / 4.0 + 2);  // k=2: ~25% worst case
}

TEST(ExpHist, ExpireDropsOldBuckets) {
  ExpHistogram eh(2);
  for (std::uint64_t t = 1; t <= 1000; ++t) eh.add(t);
  std::size_t before = eh.bucket_count();
  eh.expire(2000, 100);
  EXPECT_LT(eh.bucket_count(), before);
}

TEST(Ecm, FrequencyTracksOracle) {
  constexpr std::uint64_t kWindow = 2048;
  EcmSketch ecm(4096, 4, kWindow);
  stream::WindowOracle oracle(kWindow);
  stream::ZipfTraceConfig tc;
  tc.length = 4 * kWindow;
  tc.universe = 512;
  tc.skew = 1.0;
  tc.seed = 3;
  auto trace = stream::zipf_trace(tc);
  RunningStats err;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    ecm.insert(trace[i]);
    oracle.insert(trace[i]);
    if (i > 2 * kWindow && i % 499 == 0) {
      for (const auto& [key, f] : oracle.counts()) {
        if (f < 16) continue;
        err.add(relative_error(static_cast<double>(f), ecm.frequency(key)));
      }
    }
  }
  EXPECT_LT(err.mean(), 0.4);
}

TEST(Ecm, MemoryGrowsWithCounters) {
  EcmSketch small(256, 4, 1000), large(4096, 4, 1000);
  auto trace = stream::distinct_trace(5000, 2);
  for (auto k : trace) {
    small.insert(k);
    large.insert(k);
  }
  EXPECT_LT(small.memory_bytes(), large.memory_bytes());
}

// --------------------------- Straw-man MinHash -----------------------------

TEST(StrawmanMh, IdenticalStreamsNearOne) {
  constexpr std::uint64_t kWindow = 1024;
  StrawmanMinHash a(128, kWindow), b(128, kWindow);
  auto trace = stream::distinct_trace(3 * kWindow, 4);
  for (auto k : trace) {
    a.insert(k);
    b.insert(k);
  }
  EXPECT_GT(StrawmanMinHash::jaccard(a, b), 0.9);
}

TEST(StrawmanMh, NoisierThanExactOracle) {
  constexpr std::uint64_t kWindow = 2048;
  StrawmanMinHash a(256, kWindow), b(256, kWindow);
  stream::JaccardOracle oracle(kWindow);
  auto pair = stream::relevant_pair(6 * kWindow, 2 * kWindow, 0.6, 0.8, 7);
  RunningStats err;
  for (std::size_t i = 0; i < pair.a.size(); ++i) {
    a.insert(pair.a[i]);
    b.insert(pair.b[i]);
    oracle.insert(pair.a[i], pair.b[i]);
    if (i > 3 * kWindow && i % 1024 == 0)
      err.add(std::abs(StrawmanMinHash::jaccard(a, b) - oracle.jaccard()));
  }
  // It works, roughly — just worse than SHE-MH (asserted in integration).
  EXPECT_LT(err.mean(), 0.35);
}

TEST(StrawmanMh, MemoryElevenBytesPerSlot) {
  EXPECT_EQ(StrawmanMinHash(100, 10).memory_bytes(), 1100u);
}

TEST(StrawmanMh, NaiveVariantSlotsDecayOverTime) {
  // The naive straw-man's flaw: a slot is live only while its all-time
  // minimum sits inside the window, so live slots decay as the stream runs.
  constexpr std::uint64_t kWindow = 1024;
  StrawmanMinHash naive(256, kWindow, 0, /*overwrite_expired=*/false);
  StrawmanMinHash repaired(256, kWindow, 0, /*overwrite_expired=*/true);
  auto trace = stream::distinct_trace(16 * kWindow, 5);
  for (auto k : trace) {
    naive.insert(k);
    repaired.insert(k);
  }
  EXPECT_LT(naive.live_slots(), repaired.live_slots());
  EXPECT_EQ(repaired.live_slots(), 256u);  // overwrite keeps every slot live
  EXPECT_LT(naive.live_slots(), 100u);     // most naive slots are poisoned
}

TEST(StrawmanMh, VariantFlagIncompatible) {
  StrawmanMinHash a(64, 100, 0, false), b(64, 100, 0, true);
  EXPECT_THROW(StrawmanMinHash::jaccard(a, b), std::invalid_argument);
}

}  // namespace
}  // namespace she::baselines
