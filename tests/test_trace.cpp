// Workload generator tests: determinism, shape, and dataset properties the
// experiments rely on.
#include "stream/trace.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include <gtest/gtest.h>

namespace she::stream {
namespace {

TEST(ZipfTrace, LengthAndDeterminism) {
  ZipfTraceConfig cfg;
  cfg.length = 10000;
  cfg.universe = 1000;
  cfg.seed = 3;
  Trace a = zipf_trace(cfg);
  Trace b = zipf_trace(cfg);
  EXPECT_EQ(a.size(), 10000u);
  EXPECT_EQ(a, b);
}

TEST(ZipfTrace, SeedChangesTrace) {
  ZipfTraceConfig cfg;
  cfg.length = 1000;
  cfg.universe = 1000;
  cfg.seed = 1;
  Trace a = zipf_trace(cfg);
  cfg.seed = 2;
  Trace b = zipf_trace(cfg);
  EXPECT_NE(a, b);
}

TEST(ZipfTrace, SkewConcentratesFrequency) {
  ZipfTraceConfig cfg;
  cfg.length = 50000;
  cfg.universe = 10000;
  cfg.skew = 1.2;
  Trace t = zipf_trace(cfg);
  std::unordered_map<std::uint64_t, std::size_t> freq;
  for (auto k : t) ++freq[k];
  std::size_t top = 0;
  for (const auto& [k, c] : freq) top = std::max(top, c);
  // Top key of a Zipf(1.2) over 10K ranks carries >> 1/10000 of the mass.
  EXPECT_GT(top, t.size() / 100);
  // And the stream still has many distinct keys.
  EXPECT_GT(freq.size(), 1000u);
}

TEST(ZipfTrace, KeyOffsetDisjointUniverses) {
  ZipfTraceConfig cfg;
  cfg.length = 5000;
  cfg.universe = 1000;
  Trace a = zipf_trace(cfg);
  cfg.key_offset = 1u << 30;
  Trace b = zipf_trace(cfg);
  std::unordered_set<std::uint64_t> sa(a.begin(), a.end());
  for (auto k : b) EXPECT_EQ(sa.count(k), 0u);
}

TEST(DistinctTrace, AllUnique) {
  Trace t = distinct_trace(20000, 9);
  EXPECT_EQ(distinct_count(t), 20000u);
}

TEST(DistinctTrace, SeedsDisjointWithHighProbability) {
  Trace a = distinct_trace(1000, 1);
  Trace b = distinct_trace(1000, 2);
  std::unordered_set<std::uint64_t> sa(a.begin(), a.end());
  std::size_t shared = 0;
  for (auto k : b) shared += sa.count(k);
  EXPECT_EQ(shared, 0u);
}

TEST(RelevantPair, OverlapBoundsRespected) {
  EXPECT_THROW(relevant_pair(100, 100, -0.1), std::invalid_argument);
  EXPECT_THROW(relevant_pair(100, 100, 1.1), std::invalid_argument);
}

TEST(RelevantPair, ZeroOverlapDisjoint) {
  RelevantPair p = relevant_pair(5000, 1000, 0.0);
  std::unordered_set<std::uint64_t> sa(p.a.begin(), p.a.end());
  for (auto k : p.b) EXPECT_EQ(sa.count(k), 0u);
}

TEST(RelevantPair, FullOverlapSharesUniverse) {
  RelevantPair p = relevant_pair(5000, 500, 1.0, 0.8, 7);
  std::unordered_set<std::uint64_t> sa(p.a.begin(), p.a.end());
  std::size_t shared = 0;
  for (auto k : p.b)
    if (sa.count(k)) ++shared;
  // Same Zipf universe on both sides: most B items appear in A too.
  EXPECT_GT(shared, p.b.size() / 2);
}

TEST(RelevantPair, OverlapMonotoneInParameter) {
  auto measure = [](double overlap) {
    RelevantPair p = relevant_pair(20000, 2000, overlap, 0.8, 11);
    std::unordered_set<std::uint64_t> sa(p.a.begin(), p.a.end());
    std::unordered_set<std::uint64_t> sb(p.b.begin(), p.b.end());
    std::size_t inter = 0;
    for (auto k : sb) inter += sa.count(k);
    return static_cast<double>(inter) / static_cast<double>(sa.size() + sb.size() - inter);
  };
  double j0 = measure(0.1), j1 = measure(0.5), j2 = measure(0.9);
  EXPECT_LT(j0, j1);
  EXPECT_LT(j1, j2);
}

TEST(NamedDataset, KnownNamesWork) {
  for (const char* name : {"caida", "campus", "webpage"}) {
    Trace t = named_dataset(name, 10000, 1);
    EXPECT_EQ(t.size(), 10000u) << name;
    EXPECT_GT(distinct_count(t), 100u) << name;
  }
}

TEST(NamedDataset, UnknownNameThrows) {
  EXPECT_THROW(named_dataset("nonexistent", 100), std::invalid_argument);
}

TEST(NamedDataset, SkewOrderingAcrossDatasets) {
  // webpage (skew 1.3) should have fewer distinct keys per item than
  // campus (skew 0.6) at the same length.
  auto web = named_dataset("webpage", 50000, 2);
  auto campus = named_dataset("campus", 50000, 2);
  EXPECT_LT(distinct_count(web), distinct_count(campus));
}

}  // namespace
}  // namespace she::stream
