// Statistics accumulators and table printer tests.
#include "common/stats.hpp"
#include "common/table.hpp"

#include <cmath>
#include <sstream>

#include <gtest/gtest.h>

namespace she {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, KnownSample) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(RelativeError, Definition) {
  EXPECT_DOUBLE_EQ(relative_error(100, 110), 0.1);
  EXPECT_DOUBLE_EQ(relative_error(100, 90), 0.1);
  EXPECT_DOUBLE_EQ(relative_error(100, 100), 0.0);
  EXPECT_DOUBLE_EQ(relative_error(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(relative_error(0, 5), 5.0);  // degenerate truth: absolute
}

TEST(Percentile, InterpolatesCorrectly) {
  std::vector<double> v = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 3.0);
  EXPECT_DOUBLE_EQ(percentile(v, 25), 2.0);
  EXPECT_DOUBLE_EQ(percentile(v, 12.5), 1.5);
}

TEST(Percentile, UnsortedInput) {
  EXPECT_DOUBLE_EQ(percentile({5, 1, 3, 2, 4}, 50), 3.0);
}

TEST(Percentile, Errors) {
  EXPECT_THROW(percentile({}, 50), std::invalid_argument);
  EXPECT_THROW(percentile({1.0}, -1), std::invalid_argument);
  EXPECT_THROW(percentile({1.0}, 101), std::invalid_argument);
}

TEST(Table, ArityEnforced) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"1"}), std::invalid_argument);
  EXPECT_NO_THROW(t.add_row({"1", "2"}));
  EXPECT_EQ(t.rows(), 1u);
}

TEST(Table, PrintsAlignedColumns) {
  Table t({"name", "value"});
  t.add("alpha", 1.5);
  t.add("beta-long", 42);
  std::ostringstream os;
  t.print(os);
  std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("beta-long"), std::string::npos);
  EXPECT_NE(out.find("1.5"), std::string::npos);
}

TEST(Table, CsvFormat) {
  Table t({"x", "y"});
  t.add(1, 2.5);
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "x,y\n1,2.5\n");
}

TEST(Table, ScientificForTinyValues) {
  Table t({"v"});
  t.add(1.23e-7);
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_NE(os.str().find("e-07"), std::string::npos);
}

}  // namespace
}  // namespace she
