// QoS monitor over a sliding window (the paper's Sec. 1 motivating
// application: "improving Quality of Service").
//
// A link-level monitor tracking, over the most recent N packets:
//   * active flow count (SHE-HLL)    — table-sizing / DDoS early warning
//   * heavy hitters     (SHE-CM)     — which flows to police
//   * per-epoch report every half window, like a router line card would
//     export.
//
// The stream shifts its traffic mix halfway through, and the report shows
// the sliding statistics following the change within one window.
#include <cstdio>
#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "common/zipf.hpp"
#include "she/she.hpp"

int main() {
  constexpr std::uint64_t kWindow = 1u << 18;  // ~262K packets
  constexpr std::uint64_t kStream = 4 * kWindow;

  she::SheConfig hll_cfg;
  hll_cfg.window = kWindow;
  hll_cfg.cells = 4096;
  hll_cfg.group_cells = 1;
  hll_cfg.alpha = 0.2;
  she::SheHyperLogLog flows(hll_cfg);

  she::SheConfig cm_cfg;
  cm_cfg.window = kWindow;
  cm_cfg.cells = 1u << 19;
  cm_cfg.group_cells = 64;
  cm_cfg.alpha = 1.0;
  she::SheCountMin volume(cm_cfg, 8);

  // Phase 1: broad mix over 300K flows.  Phase 2: a flash crowd — traffic
  // concentrates on 1K flows (e.g. a viral object), flow count collapses.
  she::Rng rng(11);
  she::ZipfDistribution broad(300'000, 1.0);
  she::ZipfDistribution crowd(1'000, 1.1);

  std::vector<std::uint64_t> watched = {1, 2, 3};  // flow IDs we police

  std::printf("%-10s %-14s %-14s %s\n", "packets", "active flows",
              "flow 1 freq", "phase");
  for (std::uint64_t t = 0; t < kStream; ++t) {
    bool flash = t >= kStream / 2;
    std::uint64_t flow = flash ? crowd(rng) : broad(rng);
    flows.insert(flow);
    volume.insert(flow);

    if ((t + 1) % (kWindow / 2) == 0) {
      std::printf("%-10llu %-14.0f %-14llu %s\n",
                  static_cast<unsigned long long>(t + 1), flows.cardinality(),
                  static_cast<unsigned long long>(volume.frequency(watched[0])),
                  flash ? "flash crowd" : "broad mix");
    }
  }

  std::printf("\nheavy-hitter check (last window, flash-crowd phase):\n");
  for (std::uint64_t flow : watched) {
    std::uint64_t f = volume.frequency(flow);
    std::printf("  flow %llu: ~%llu pkts in window  %s\n",
                static_cast<unsigned long long>(flow),
                static_cast<unsigned long long>(f),
                f > kWindow / 100 ? "[POLICE]" : "");
  }
  std::printf("monitor memory: flows %zu B + volume %zu B\n",
              flows.memory_bytes(), volume.memory_bytes());
  return 0;
}
