// StreamMonitor dashboard — the one-stop façade, with checkpointing.
//
// A gateway process tracks membership + distinct flows + heavy hitters over
// the last 200K packets with a single 512 KB budget, prints a periodic
// dashboard line, checkpoints itself mid-stream, "crashes", restores from
// the checkpoint, and continues — demonstrating that a restored monitor
// picks up exactly where it left off.
#include <cstdio>
#include <sstream>

#include "common/rng.hpp"
#include "common/zipf.hpp"
#include "she/she.hpp"

int main() {
  she::MonitorConfig cfg;
  cfg.window = 200'000;
  cfg.memory_bytes = 512 * 1024;
  cfg.expected_cardinality = 30'000;
  she::StreamMonitor monitor(cfg);

  she::Rng rng(21);
  she::ZipfDistribution flows(100'000, 1.05);
  auto next_packet = [&] { return she::hash64(flows(rng), 4); };

  std::printf("%-10s %-16s %-14s %s\n", "packets", "distinct flows",
              "top flow pkts", "top flow id");
  auto dashboard = [&] {
    auto rep = monitor.report(1);
    std::printf("%-10llu %-16.0f %-14llu %llu\n",
                static_cast<unsigned long long>(rep.items),
                rep.cardinality.value_or(0.0),
                rep.top.empty() ? 0ULL
                                : static_cast<unsigned long long>(rep.top[0].estimate),
                rep.top.empty() ? 0ULL
                                : static_cast<unsigned long long>(rep.top[0].key));
  };

  for (int i = 0; i < 300'000; ++i) monitor.insert(next_packet());
  dashboard();

  // Checkpoint, simulate a restart, restore.
  std::stringstream checkpoint;
  {
    she::BinaryWriter w(checkpoint);
    monitor.save(w);
  }
  std::printf("-- checkpointed (%zu bytes), restarting --\n",
              checkpoint.str().size());
  she::BinaryReader r(checkpoint);
  she::StreamMonitor restored = she::StreamMonitor::load(r);

  for (int i = 0; i < 300'000; ++i) restored.insert(next_packet());
  auto rep = restored.report(3);
  std::printf("%-10llu %-16.0f (restored monitor, stream continued)\n",
              static_cast<unsigned long long>(rep.items),
              rep.cardinality.value_or(0.0));
  std::printf("top flows now:\n");
  for (const auto& e : rep.top)
    std::printf("  flow %llu  ~%llu pkts in window\n",
                static_cast<unsigned long long>(e.key),
                static_cast<unsigned long long>(e.estimate));
  std::printf("monitor memory: %zu bytes (budget %zu)\n",
              restored.memory_bytes(), cfg.memory_bytes);
  return 0;
}
