// Near-duplicate stream detection with SHE-MH (the paper's similarity task;
// cf. min-hash near-duplicate detection in its related work).
//
// Scenario: two content ingestion pipelines (e.g. two mirrors of a crawl)
// each emit a stream of shingle IDs.  The operator wants to know, on a
// rolling basis, how similar the two feeds' recent content is — a sudden
// drop means one mirror diverged (stale cache, partial outage).
//
// The example drives three phases (mirrored -> partially diverged -> fully
// diverged) and prints the sliding Jaccard estimate against the exact value.
#include <cstdio>
#include <cstdint>

#include "common/bobhash.hpp"
#include "common/rng.hpp"
#include "she/she.hpp"
#include "stream/oracle.hpp"

int main() {
  constexpr std::uint64_t kWindow = 1u << 13;
  constexpr std::uint64_t kPhase = 2 * kWindow;

  she::SheConfig cfg;
  cfg.window = kWindow;
  cfg.cells = 384;  // ~1.2 KB signature per feed
  cfg.group_cells = 1;
  cfg.alpha = 0.2;
  she::SheMinHash feed_a(cfg), feed_b(cfg);
  she::stream::JaccardOracle oracle(kWindow);

  she::Rng rng(5);
  std::printf("%-10s %-12s %-10s %-10s\n", "items", "phase", "SHE-MH", "exact");

  for (std::uint64_t t = 0; t < 3 * kPhase; ++t) {
    int phase = static_cast<int>(t / kPhase);
    std::uint64_t a = she::hash64(rng.below(50'000), 1);
    std::uint64_t b;
    if (phase == 0) {
      b = a;  // mirrored
    } else if (phase == 1) {
      // 50% of B's items diverge.
      b = (rng.below(2) == 0) ? a : she::hash64(rng.below(50'000), 2);
    } else {
      b = she::hash64(rng.below(50'000), 2);  // fully diverged
    }
    feed_a.insert(a);
    feed_b.insert(b);
    oracle.insert(a, b);

    if ((t + 1) % kWindow == 0) {
      static const char* names[] = {"mirrored", "partial", "diverged"};
      std::printf("%-10llu %-12s %-10.3f %-10.3f\n",
                  static_cast<unsigned long long>(t + 1), names[phase],
                  she::SheMinHash::jaccard(feed_a, feed_b), oracle.jaccard());
    }
  }

  std::printf("\nsignature memory per feed: %zu bytes (vs %zu for the exact "
              "window sets)\n",
              feed_a.memory_bytes(),
              oracle.a().counts().size() * 16);
  return 0;
}
