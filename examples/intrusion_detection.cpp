// Intrusion detection over a sliding window (the paper's Sec. 1 motivating
// application).
//
// Scenario: a gateway watches (srcIP, dstPort) probes.  Two sliding-window
// signals drive alerts:
//   * port-scan detection — a source touching many distinct ports in the
//     last N packets (SHE-CM counts per-source probe frequency; SHE-BF
//     dedupes (src,port) pairs so repeats don't inflate the scan width);
//   * newcomer detection — sources never seen in the recent window
//     (SHE-BF membership over srcIP).
//
// The stream mixes benign traffic with an injected scanner; the example
// prints the alerts raised and checks the scanner is caught.
#include <cstdio>
#include <cstdint>

#include "common/bobhash.hpp"
#include "common/rng.hpp"
#include "she/she.hpp"

namespace {

struct Packet {
  std::uint32_t src;
  std::uint16_t port;
};

/// Benign mix plus a scanner sweeping ports from one address.
Packet make_packet(she::Rng& rng, std::uint64_t t) {
  constexpr std::uint32_t kScanner = 0x0A00002A;  // 10.0.0.42
  if (t % 50 == 0) {  // scanner probes a fresh port every 50 packets
    return {kScanner, static_cast<std::uint16_t>((t / 50) % 65535)};
  }
  if (t % 1000 == 1) {  // occasional genuinely-new visitor
    return {static_cast<std::uint32_t>(0xC0A80000u) + static_cast<std::uint32_t>(t),
            443};
  }
  // Benign: 5000 hosts, each talking to a handful of common ports.
  std::uint32_t src = static_cast<std::uint32_t>(rng.below(5000)) + 1;
  std::uint16_t port = static_cast<std::uint16_t>(80 + rng.below(8));
  return {src, port};
}

std::uint64_t pair_key(std::uint32_t src, std::uint16_t port) {
  return (static_cast<std::uint64_t>(src) << 16) | port;
}

}  // namespace

int main() {
  constexpr std::uint64_t kWindow = 200'000;  // packets
  constexpr std::uint64_t kScanThreshold = 64;

  // Distinct (src,port) pairs in the window: SHE-BF dedupe + SHE-CM count.
  she::SheConfig bf_cfg;
  bf_cfg.window = kWindow;
  bf_cfg.cells = 1u << 21;
  bf_cfg.group_cells = 64;
  bf_cfg.alpha =
      she::optimal_alpha_bf(bf_cfg.cells, bf_cfg.group_cells, 60'000, 8);
  she::SheBloomFilter pair_seen(bf_cfg, 8);

  she::SheConfig cm_cfg;
  cm_cfg.window = kWindow;
  cm_cfg.cells = 1u << 18;  // 1 MB of 32-bit counters
  cm_cfg.group_cells = 64;
  cm_cfg.alpha = 1.0;
  she::SheCountMin scan_width(cm_cfg, 8);  // per-src distinct-port count

  she::SheConfig src_cfg = bf_cfg;
  src_cfg.seed = 99;
  she::SheBloomFilter src_seen(src_cfg, 8);

  she::Rng rng(7);
  std::uint64_t alerts_scan = 0;
  std::uint64_t alerts_newcomer = 0;
  bool scanner_flagged = false;

  for (std::uint64_t t = 0; t < 2 * kWindow; ++t) {
    Packet p = make_packet(rng, t);
    std::uint64_t pk = pair_key(p.src, p.port);

    // Newcomer signal (suppress during warm-up).
    if (t > kWindow && !src_seen.contains(p.src)) ++alerts_newcomer;
    src_seen.insert(p.src);

    // Count a (src,port) pair only the first time it shows up in the
    // window: SHE-BF's one-sided error means we never double-count a pair
    // reported present, only occasionally skip one (false positive).
    if (!pair_seen.contains(pk)) {
      pair_seen.insert(pk);
      scan_width.insert(p.src);
      std::uint64_t width = scan_width.frequency(p.src);
      if (t > kWindow && width >= kScanThreshold) {
        ++alerts_scan;
        if (p.src == 0x0A00002A && !scanner_flagged) {
          scanner_flagged = true;
          std::printf("[t=%llu] port-scan alert: src=10.0.0.42 touched ~%llu "
                      "distinct ports in the last %llu packets\n",
                      static_cast<unsigned long long>(t),
                      static_cast<unsigned long long>(width),
                      static_cast<unsigned long long>(kWindow));
        }
      }
    }
  }

  std::printf("packets processed:      %llu\n",
              static_cast<unsigned long long>(2 * kWindow));
  std::printf("port-scan alerts:       %llu (scanner %s)\n",
              static_cast<unsigned long long>(alerts_scan),
              scanner_flagged ? "caught" : "MISSED");
  std::printf("newcomer alerts:        %llu\n",
              static_cast<unsigned long long>(alerts_newcomer));
  std::printf("memory: pair filter %zu B, width sketch %zu B, src filter %zu B\n",
              pair_seen.memory_bytes(), scan_width.memory_bytes(),
              src_seen.memory_bytes());
  return scanner_flagged ? 0 : 1;
}
