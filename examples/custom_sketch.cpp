// Extending SHE with a custom sketch via the CSM policy framework.
//
// The paper's framework promises: any algorithm expressible as the Common
// Sketch Model triple <cell type, K locations, update F> gets sliding-window
// behaviour for free.  This example defines a *sliding maximum-bid tracker*
// in ~25 lines of policy code: an ad exchange wants, per item category, the
// maximum bid observed over the most recent N bid events.
//
//   cell  = 16-bit max-bid register
//   K     = 2 hashed cells per category (min-of-maxima on query tames
//           collisions: a colliding category can only raise a cell)
//   F     = max(bid, cell)
#include <algorithm>
#include <cstdio>
#include <cstdint>

#include "common/bobhash.hpp"
#include "common/rng.hpp"
#include "she/csm.hpp"

namespace {

/// CSM policy: sliding per-key maximum of a 16-bit payload.
struct MaxBidPolicy {
  using Cell = std::uint16_t;
  std::uint32_t seed = 0;

  [[nodiscard]] unsigned probes(std::size_t) const { return 2; }
  [[nodiscard]] std::size_t position(std::uint64_t event, unsigned i,
                                     std::size_t cells) const {
    return she::BobHash32(seed + i)(category(event)) % cells;
  }
  [[nodiscard]] Cell update(std::uint64_t event, unsigned, Cell old) const {
    Cell b = bid(event);
    return b > old ? b : old;
  }
  static Cell empty_cell() { return 0; }
  static std::size_t cell_bits() { return 16; }

  // Event encoding: (category << 16) | bid.
  static std::uint64_t category(std::uint64_t event) { return event >> 16; }
  static Cell bid(std::uint64_t event) { return static_cast<Cell>(event); }
  static std::uint64_t encode(std::uint64_t cat, Cell b) {
    return (cat << 16) | b;
  }
};

/// Query: min over mature probed cells — like SHE-CM, ignoring young cells
/// keeps the answer an upper bound on the true window maximum.
std::uint16_t max_bid(const she::csm::SlidingEstimator<MaxBidPolicy>& est,
                      std::uint64_t category) {
  std::uint64_t probe_event = MaxBidPolicy::encode(category, 0);
  std::uint16_t best = 0xFFFF;
  bool mature_seen = false;
  for (unsigned i = 0; i < 2; ++i) {
    auto cell = est.probe(probe_event, i);
    if (cell.age_class == she::csm::CellAge::kYoung) continue;
    mature_seen = true;
    best = std::min(best, cell.value);
  }
  return mature_seen ? best : 0;
}

}  // namespace

int main() {
  constexpr std::uint64_t kWindow = 100'000;

  she::SheConfig cfg;
  cfg.window = kWindow;
  cfg.cells = 1u << 16;
  cfg.group_cells = 64;
  cfg.alpha = 1.0;
  she::csm::SlidingEstimator<MaxBidPolicy> tracker(cfg, MaxBidPolicy{});

  she::Rng rng(3);
  // Steady bidding across 10K categories, bids ~ uniform under 1000; plus
  // one whale: category 7 receives a 50'000 bid early on, never again.
  tracker.insert(MaxBidPolicy::encode(7, 50'000));
  for (std::uint64_t t = 0; t < 5 * kWindow; ++t) {
    std::uint64_t cat = rng.below(10'000);
    auto bid = static_cast<std::uint16_t>(rng.below(1'000));
    tracker.insert(MaxBidPolicy::encode(cat, bid));
    if ((t + 1) % kWindow == 0) {
      std::printf("after %llu events: max bid in window for category 7 ~= %u\n",
                  static_cast<unsigned long long>(t + 1), max_bid(tracker, 7));
    }
  }
  std::printf("(the 50000 whale bid ages out after ~(1+alpha) windows; later "
              "answers reflect only recent bids)\n");
  std::printf("tracker memory: %zu bytes for 10K categories x %llu-event "
              "window\n",
              tracker.memory_bytes(), static_cast<unsigned long long>(kWindow));
  return 0;
}
