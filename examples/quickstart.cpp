// Quickstart — the smallest useful SHE program.
//
// Builds a sliding-window Bloom filter (SHE-BF) answering "did key X appear
// among the last N items?", a sliding Bitmap (SHE-BM) answering "how many
// distinct keys in the last N items?", and shows the tuning helpers.
//
//   $ ./quickstart
#include <cstdio>

#include "she/she.hpp"
#include "stream/trace.hpp"

int main() {
  constexpr std::uint64_t kWindow = 100'000;  // last 100K items

  // --- membership: SHE-BF ---------------------------------------------
  she::SheConfig bf_cfg;
  bf_cfg.window = kWindow;
  bf_cfg.cells = 1u << 20;     // 128 KB of bits
  bf_cfg.group_cells = 64;     // FPGA-style 64-bit groups
  // Eq. (2) picks the cleaning-speed ratio; we expect ~50K distinct keys
  // per window and use 8 hash probes.
  bf_cfg.alpha = she::optimal_alpha_bf(bf_cfg.cells, bf_cfg.group_cells,
                                       /*cardinality=*/50'000, /*hashes=*/8);
  she::SheBloomFilter seen(bf_cfg, /*hashes=*/8);

  // --- cardinality: SHE-BM ---------------------------------------------
  she::SheConfig bm_cfg;
  bm_cfg.window = kWindow;
  bm_cfg.cells = 1u << 18;  // 32 KB of bits
  bm_cfg.group_cells = 64;
  bm_cfg.alpha = 0.2;  // paper's empirical sweet spot for two-sided tasks
  she::SheBitmap distinct(bm_cfg);

  // Feed a synthetic heavy-tailed stream.
  she::stream::ZipfTraceConfig tc;
  tc.length = 5 * kWindow;
  tc.universe = 200'000;
  tc.skew = 1.0;
  tc.seed = 42;
  auto trace = she::stream::zipf_trace(tc);

  for (auto key : trace) {
    seen.insert(key);
    distinct.insert(key);
  }

  std::printf("alpha chosen by Eq. (2): %.2f (cycle = %.2f windows)\n",
              bf_cfg.alpha, 1.0 + bf_cfg.alpha);
  std::printf("SHE-BF memory: %zu bytes, SHE-BM memory: %zu bytes\n",
              seen.memory_bytes(), distinct.memory_bytes());

  std::printf("last item (%llu) in window?  %s\n",
              static_cast<unsigned long long>(trace.back()),
              seen.contains(trace.back()) ? "yes" : "no");
  std::printf("key 0xdeadbeef in window?   %s\n",
              seen.contains(0xdeadbeefULL) ? "yes (false positive)" : "no");
  std::printf("estimated distinct keys in the last %llu items: %.0f\n",
              static_cast<unsigned long long>(kWindow), distinct.cardinality());
  return 0;
}
