#!/usr/bin/env bash
# Chaos harness: loop kill -9 against a live she_server mid-ingest and
# assert zero-loss, exactly-once delivery end to end.
#
# Default mode — restart chaos.  Two passes over the identical
# deterministic workload:
#
#   1. reference — one server, no faults, clean shutdown; final query
#      answers are recorded.
#   2. chaos — the same inserts, but every iteration the server is
#      kill -9'd while a bulk insert is in flight, then restarted with
#      --resume.  The surviving she_tool invocation (one client identity,
#      monotonic sequence numbers) rides its reconnect backoff through
#      the outage; the write-ahead backlog log replays accepted-but-
#      undrained frames and its sequence table absorbs the client's
#      lost-ack replays.  One iteration additionally arms an injected
#      torn WAL write (fault-injection builds), which the client absorbs
#      as a retryable server error.
#
# --failover mode — node-death chaos.  A primary and a hot standby
# (--role standby --follow) run side by side; a failover she_tool client
# (--endpoints primary,standby) streams into pipelines covering all five
# estimators.  Mid-stream the primary is kill -9'd, the standby is
# promoted, and the client's seq-tagged replay rides onto it.  The
# primary is SIGSTOPped just before the kill so the requests in flight
# at the moment of death are exactly the un-acked ones the client
# replays — the kill lands mid-request without racing the asynchronous
# replication ship of already-acknowledged frames.
#
# In both modes the final answers must be byte-identical to a clean
# single-node reference pass — losing or double-counting even one item
# shifts the estimates and fails the diff.
#
# Environment: SERVER, TOOL, PORT, PORT2, ITERS override the defaults.
set -euo pipefail

SERVER=${SERVER:-./build/src/server/she_server}
TOOL=${TOOL:-./build/tools/she_tool}
PORT=${PORT:-7272}
PORT2=${PORT2:-$((PORT + 1))}
ITERS=${ITERS:-4}

# Per-iteration workload.  Keys are deterministic (key-base + i mod
# distinct), so both passes insert the identical sequence and the final
# window state is a pure function of it.
COUNT=600000
DISTINCT=20000
SPEC="window=16K memory=256K shards=2 producers=2 queue=1024 seed=11"
# Durable ingest: group-committed fsync with a small interval so the
# insert stream is slow enough for the kill to land mid-flight.
WAL_ARGS="--wal-mode fsync --wal-fsync-bytes 16384"

WORK=$(mktemp -d)
SRV=0
PRIM=0
STBY=0
cleanup() {
  for p in "$SRV" "$PRIM" "$STBY"; do
    [ "$p" -ne 0 ] && kill -9 "$p" 2>/dev/null || true
  done
  rm -rf "$WORK"
}
trap cleanup EXIT

CLIENT="$TOOL client --port $PORT"
# The chaos-side client must outlive server restarts: generous io
# deadline, enough retries that capped exponential backoff (2 s) spans
# the longest resume.
RCLIENT="$CLIENT --timeout-ms 30000 --retries 400"

boot() { # boot <checkpoint-root> [extra she_server args...]
  local root=$1
  shift
  "$SERVER" --port "$PORT" --http-port -1 --checkpoint-root "$root" \
    $WAL_ARGS "$@" &
  SRV=$!
  for _ in $(seq 1 150); do
    if $CLIENT --op ping >/dev/null 2>&1; then return 0; fi
    sleep 0.2
  done
  echo "chaos: server on port $PORT failed to come up" >&2
  return 1
}

run_inserts() { # run_inserts <client-prefix> <pass-dir> <kill|no-kill> <iter>
  local cl=$1 dir=$2 kill_mode=$3 it=$4
  if [ "$kill_mode" = kill ]; then
    $cl --op bulk --name flows --count $COUNT --distinct $DISTINCT \
      --key-base $((it * 1000000)) >"$dir/bulk-$it.txt" &
    local bulk=$!
    # Let the stream get going, then yank the server mid-flight.
    sleep 0.3
    kill -9 "$SRV" 2>/dev/null || true
    wait "$SRV" 2>/dev/null || true
    SRV=0
    local inject=""
    if [ "$it" -eq 2 ]; then
      # One restart also tears the first post-resume WAL append; the
      # client sees a typed server error and replays the frame.
      inject="--inject wal-torn"
    fi
    # shellcheck disable=SC2086  # inject is deliberately word-split
    boot "$dir/ckpt" --resume $inject
    wait "$bulk"
  else
    $cl --op bulk --name flows --count $COUNT --distinct $DISTINCT \
      --key-base $((it * 1000000)) >"$dir/bulk-$it.txt"
  fi
  grep -q "accepted $COUNT/$COUNT" "$dir/bulk-$it.txt"
}

record_answers() { # record_answers <out-file>
  $CLIENT --op flush --name flows
  {
    $CLIENT --op query --name flows --type cardinality
    # Keys from the final iteration's range are still in the window.
    $CLIENT --op query --name flows --type frequency \
      --key $((ITERS * 1000000 + 17))
    $CLIENT --op query --name flows --type frequency \
      --key $((ITERS * 1000000 + 4242))
  } >"$1"
}

# ----------------------------- failover mode -------------------------------

# Two pipelines cover all five estimators: "a" = BF + BM + CM + MH
# (similarity), "b" = HLL + MH.  wal=async makes them replicated state —
# pipelines without a WAL only replicate DDL.  similarity requires
# shards=1 (jaccard compares lock-step minhash signatures).
SPEC_A="window=16K memory=256K shards=1 wal=async similarity checkpoint-every=4096 seed=11"
SPEC_B="window=16K memory=128K shards=1 wal=async hll similarity seed=11"
FN1=300000   # items per pipeline before the kill
FN2=200000   # items per pipeline ridden across the failover
FDISTINCT=20000

boot_at() { # boot_at <port> <checkpoint-root> [extra args...]; sets BOOT_PID
  local port=$1 root=$2
  shift 2
  "$SERVER" --port "$port" --http-port -1 --checkpoint-root "$root" "$@" &
  BOOT_PID=$!
  for _ in $(seq 1 150); do
    if $TOOL client --port "$port" --op ping >/dev/null 2>&1; then return 0; fi
    sleep 0.2
  done
  echo "chaos: server on port $port failed to come up" >&2
  return 1
}

produced_of() { # produced_of <port> <name> — accepted-item count from stats
  { $TOOL client --port "$1" --op stats --name "$2" 2>/dev/null || true; } |
    sed -n 's/.*"produced":\([0-9][0-9]*\).*/\1/p'
}

wait_caught_up() { # wait_caught_up <name...> — standby holds every item
  local n p s all
  for _ in $(seq 1 200); do
    all=1
    for n in "$@"; do
      p=$(produced_of "$PORT" "$n")
      s=$(produced_of "$PORT2" "$n")
      if [ -z "$p" ] || [ "$p" != "$s" ]; then all=0; break; fi
    done
    [ "$all" -eq 1 ] && return 0
    sleep 0.2
  done
  echo "chaos: standby never caught up with the primary" >&2
  return 1
}

answers_at() { # answers_at <port> <out-file> — all five estimators
  local cl="$TOOL client --port $1"
  $cl --op flush --name a
  $cl --op flush --name b
  {
    $cl --op query --name a --type cardinality
    $cl --op query --name b --type cardinality
    $cl --op query --name a --type topk --k 8
    $cl --op query --name a --type jaccard --other b
    for k in 0 3 17 4242 19999 1048576; do
      $cl --op query --name a --type membership --key "$k"
      $cl --op query --name a --type frequency --key "$k"
      $cl --op query --name b --type frequency --key "$k"
    done
  } >"$2"
}

run_failover() {
  echo "== failover reference pass (single node, no faults) =="
  boot_at "$PORT" "$WORK/ref"
  PRIM=$BOOT_PID
  local cl="$TOOL client --port $PORT"
  $cl --op create --name a --spec "$SPEC_A"
  $cl --op create --name b --spec "$SPEC_B"
  $cl --op bulk --name a --count $FN1 --distinct $FDISTINCT --key-base 0
  $cl --op bulk --name b --count $FN1 --distinct $FDISTINCT --key-base 0
  $cl --op bulk --name a --count $FN2 --distinct $FDISTINCT --key-base 7
  $cl --op bulk --name b --count $FN2 --distinct $FDISTINCT --key-base 7
  answers_at "$PORT" "$WORK/ref-answers.txt"
  $cl --op shutdown
  wait "$PRIM" || true
  PRIM=0
  cat "$WORK/ref-answers.txt"

  echo "== failover pass (kill -9 the primary mid-stream, promote) =="
  boot_at "$PORT" "$WORK/prim"
  PRIM=$BOOT_PID
  boot_at "$PORT2" "$WORK/stby" --role standby --follow "127.0.0.1:$PORT"
  STBY=$BOOT_PID
  local fcl="$TOOL client --endpoints 127.0.0.1:$PORT,127.0.0.1:$PORT2"
  fcl="$fcl --timeout-ms 30000 --retries 400"
  $fcl --op create --name a --spec "$SPEC_A"
  $fcl --op create --name b --spec "$SPEC_B"
  $fcl --op bulk --name a --count $FN1 --distinct $FDISTINCT --key-base 0
  $fcl --op bulk --name b --count $FN1 --distinct $FDISTINCT --key-base 0
  $fcl --op flush --name a
  $fcl --op flush --name b
  wait_caught_up a b

  # Freeze the primary, then start the final bulks: their requests block
  # un-acked in the primary's socket buffers, so the kill -9 provably
  # lands mid-request and the client replays every affected frame.
  kill -STOP "$PRIM"
  $fcl --op bulk --name a --count $FN2 --distinct $FDISTINCT --key-base 7 \
    >"$WORK/bulk-a.txt" &
  local ba=$!
  $fcl --op bulk --name b --count $FN2 --distinct $FDISTINCT --key-base 7 \
    >"$WORK/bulk-b.txt" &
  local bb=$!
  sleep 0.5
  echo "-- kill -9 primary ($PRIM), promote standby --"
  kill -9 "$PRIM"
  wait "$PRIM" 2>/dev/null || true
  PRIM=0
  $TOOL client --port "$PORT2" --op promote
  wait "$ba"
  wait "$bb"
  grep -q "accepted $FN2/$FN2" "$WORK/bulk-a.txt"
  grep -q "accepted $FN2/$FN2" "$WORK/bulk-b.txt"

  answers_at "$PORT2" "$WORK/failover-answers.txt"
  $TOOL client --port "$PORT2" --op shutdown
  wait "$STBY" || true
  STBY=0
  cat "$WORK/failover-answers.txt"

  diff "$WORK/ref-answers.txt" "$WORK/failover-answers.txt"
  echo "chaos: failover mid-stream, final answers byte-identical"
}

if [ "${1:-}" = "--failover" ]; then
  run_failover
  exit 0
fi

echo "== reference pass (no faults) =="
boot "$WORK/ref"
$CLIENT --op create --name flows --spec "$SPEC"
for it in $(seq 1 "$ITERS"); do
  run_inserts "$CLIENT" "$WORK" no-kill "$it"
done
record_answers "$WORK/ref-answers.txt"
$CLIENT --op shutdown
wait "$SRV"
SRV=0
cat "$WORK/ref-answers.txt"

echo "== chaos pass (kill -9 each iteration) =="
boot "$WORK/chaos/ckpt"
$CLIENT --op create --name flows --spec "$SPEC"
for it in $(seq 1 "$ITERS"); do
  echo "-- iteration $it: kill -9 mid-insert --"
  run_inserts "$RCLIENT" "$WORK/chaos" kill "$it"
done
record_answers "$WORK/chaos-answers.txt"
$CLIENT --op shutdown
wait "$SRV"
SRV=0
cat "$WORK/chaos-answers.txt"

diff "$WORK/ref-answers.txt" "$WORK/chaos-answers.txt"
echo "chaos: $ITERS kill -9 iterations, final answers byte-identical"
