#!/usr/bin/env bash
# Chaos harness: loop kill -9 against a live she_server mid-ingest and
# assert zero-loss, exactly-once delivery end to end.
#
# Two passes over the identical deterministic workload:
#
#   1. reference — one server, no faults, clean shutdown; final query
#      answers are recorded.
#   2. chaos — the same inserts, but every iteration the server is
#      kill -9'd while a bulk insert is in flight, then restarted with
#      --resume.  The surviving she_tool invocation (one client identity,
#      monotonic sequence numbers) rides its reconnect backoff through
#      the outage; the write-ahead backlog log replays accepted-but-
#      undrained frames and its sequence table absorbs the client's
#      lost-ack replays.  One iteration additionally arms an injected
#      torn WAL write (fault-injection builds), which the client absorbs
#      as a retryable server error.
#
# The final answers of both passes must be byte-identical — losing or
# double-counting even one item shifts the estimates and fails the diff.
#
# Environment: SERVER, TOOL, PORT, ITERS override the defaults below.
set -euo pipefail

SERVER=${SERVER:-./build/src/server/she_server}
TOOL=${TOOL:-./build/tools/she_tool}
PORT=${PORT:-7272}
ITERS=${ITERS:-4}

# Per-iteration workload.  Keys are deterministic (key-base + i mod
# distinct), so both passes insert the identical sequence and the final
# window state is a pure function of it.
COUNT=600000
DISTINCT=20000
SPEC="window=16K memory=256K shards=2 producers=2 queue=1024 seed=11"
# Durable ingest: group-committed fsync with a small interval so the
# insert stream is slow enough for the kill to land mid-flight.
WAL_ARGS="--wal-mode fsync --wal-fsync-bytes 16384"

WORK=$(mktemp -d)
SRV=0
cleanup() {
  [ "$SRV" -ne 0 ] && kill -9 "$SRV" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

CLIENT="$TOOL client --port $PORT"
# The chaos-side client must outlive server restarts: generous io
# deadline, enough retries that capped exponential backoff (2 s) spans
# the longest resume.
RCLIENT="$CLIENT --timeout-ms 30000 --retries 400"

boot() { # boot <checkpoint-root> [extra she_server args...]
  local root=$1
  shift
  "$SERVER" --port "$PORT" --http-port -1 --checkpoint-root "$root" \
    $WAL_ARGS "$@" &
  SRV=$!
  for _ in $(seq 1 150); do
    if $CLIENT --op ping >/dev/null 2>&1; then return 0; fi
    sleep 0.2
  done
  echo "chaos: server on port $PORT failed to come up" >&2
  return 1
}

run_inserts() { # run_inserts <client-prefix> <pass-dir> <kill|no-kill> <iter>
  local cl=$1 dir=$2 kill_mode=$3 it=$4
  if [ "$kill_mode" = kill ]; then
    $cl --op bulk --name flows --count $COUNT --distinct $DISTINCT \
      --key-base $((it * 1000000)) >"$dir/bulk-$it.txt" &
    local bulk=$!
    # Let the stream get going, then yank the server mid-flight.
    sleep 0.3
    kill -9 "$SRV" 2>/dev/null || true
    wait "$SRV" 2>/dev/null || true
    SRV=0
    local inject=""
    if [ "$it" -eq 2 ]; then
      # One restart also tears the first post-resume WAL append; the
      # client sees a typed server error and replays the frame.
      inject="--inject wal-torn"
    fi
    # shellcheck disable=SC2086  # inject is deliberately word-split
    boot "$dir/ckpt" --resume $inject
    wait "$bulk"
  else
    $cl --op bulk --name flows --count $COUNT --distinct $DISTINCT \
      --key-base $((it * 1000000)) >"$dir/bulk-$it.txt"
  fi
  grep -q "accepted $COUNT/$COUNT" "$dir/bulk-$it.txt"
}

record_answers() { # record_answers <out-file>
  $CLIENT --op flush --name flows
  {
    $CLIENT --op query --name flows --type cardinality
    # Keys from the final iteration's range are still in the window.
    $CLIENT --op query --name flows --type frequency \
      --key $((ITERS * 1000000 + 17))
    $CLIENT --op query --name flows --type frequency \
      --key $((ITERS * 1000000 + 4242))
  } >"$1"
}

echo "== reference pass (no faults) =="
boot "$WORK/ref"
$CLIENT --op create --name flows --spec "$SPEC"
for it in $(seq 1 "$ITERS"); do
  run_inserts "$CLIENT" "$WORK" no-kill "$it"
done
record_answers "$WORK/ref-answers.txt"
$CLIENT --op shutdown
wait "$SRV"
SRV=0
cat "$WORK/ref-answers.txt"

echo "== chaos pass (kill -9 each iteration) =="
boot "$WORK/chaos/ckpt"
$CLIENT --op create --name flows --spec "$SPEC"
for it in $(seq 1 "$ITERS"); do
  echo "-- iteration $it: kill -9 mid-insert --"
  run_inserts "$RCLIENT" "$WORK/chaos" kill "$it"
done
record_answers "$WORK/chaos-answers.txt"
$CLIENT --op shutdown
wait "$SRV"
SRV=0
cat "$WORK/chaos-answers.txt"

diff "$WORK/ref-answers.txt" "$WORK/chaos-answers.txt"
echo "chaos: $ITERS kill -9 iterations, final answers byte-identical"
