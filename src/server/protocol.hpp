// she_server wire protocol — length-prefixed binary frames over TCP.
//
// Every message (request or response) is one frame:
//
//   offset  size  field
//   ------  ----  -------------------------------------------
//        0     4  body length in bytes (u32, little-endian)
//        4     n  body
//
// A request body is `u8 opcode` followed by opcode-specific fields; a
// response body is `u8 status` followed by status/opcode-specific fields.
// Strings are `u32 length + bytes` (no terminator).  The frame length is
// bounded by kMaxFrameBytes so a garbage prefix can never make the server
// allocate gigabytes; anything that fails a bound, runs past the end of
// its body, or leaves trailing bytes is a ProtocolError — the server
// counts it, answers kBadRequest when the transport still permits, and
// drops that connection (a byte stream cannot be resynchronized after a
// framing error), while every other connection keeps being served.
//
// Request bodies:
//   PING
//   CREATE       str name, str spec          (spec: see parse_sketch_spec)
//   INSERT       str name, u64 key
//   INSERT_BULK  str name, u32 n, n x u64 keys
//   QUERY        str name, u8 query_type, then per type:
//                  MEMBERSHIP / FREQUENCY: u64 key
//                  CARDINALITY: -
//                  TOPK: u32 k
//                  JACCARD: str other_pipeline
//   STATS        str name
//   DROP         str name
//   SAVE         str name                    (checkpoint now)
//   FLUSH        str name                    (drain-then-publish barrier)
//   LIST
//   SHUTDOWN
//   AUTH         str token                   (required first op when the
//                                             server has an auth file)
//   REPLICATE    u64 proto_version           (standby subscribes; the
//                                             connection becomes a one-way
//                                             replication stream of
//                                             records, see replica.hpp)
//   PROMOTE                                  (standby only: drain the
//                                             stream, become primary)
//
// Response bodies (after `u8 status`; error statuses carry `str message`):
//   PING/CREATE/DROP/SAVE/FLUSH/SHUTDOWN: -
//   INSERT / INSERT_BULK: u64 accepted
//   QUERY MEMBERSHIP: u8 present
//   QUERY FREQUENCY:  u64 estimate
//   QUERY CARDINALITY / JACCARD: f64 estimate
//   QUERY TOPK: u32 n, n x (u64 key, u64 estimate)
//   STATS: str runtime-stats JSON
//   LIST:  u32 n, n x str name
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace she::server {

/// Typed rejection for malformed frames and bodies: oversized lengths,
/// reads past the end of a body, trailing bytes, unknown opcodes.
class ProtocolError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A socket read/write missed its deadline (SO_RCVTIMEO / SO_SNDTIMEO on
/// the fd).  Distinct from generic transport errors so deadline-aware
/// callers can treat "slow" differently from "broken" — the connection is
/// desynchronized either way (a late response may still arrive), so the
/// fd must be dropped before retrying.
class IoTimeout : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Hard bound on one frame's body (16 MiB ~ a 2M-key bulk insert).
inline constexpr std::uint32_t kMaxFrameBytes = 16u << 20;

/// Optional request-body prefix carrying a client trace id:
///
///   [u8 kTraceHeader][u64 trace_id][normal request body...]
///
/// The marker byte sits outside the opcode range (ops are 1..14), so a
/// server can tell a traced body from a legacy one by its first byte, and
/// servers that predate tracing reject it as an unknown opcode instead of
/// misparsing it.  Clients that never set a trace id produce byte-
/// identical requests to older builds.
inline constexpr std::uint8_t kTraceHeader = 0xF5;

/// Optional request-body prefix carrying the client's idempotence
/// identity, placed *after* the trace header when both are present:
///
///   [trace header?][u8 kSeqHeader][u64 client_id][u64 client_seq][body...]
///
/// INSERT_BULK requests tagged this way are deduplicated per shard by
/// (client_id, client_seq): a replay after a lost ack is acked again
/// without double-counting.  client_id 0 is reserved for "no identity".
inline constexpr std::uint8_t kSeqHeader = 0xF6;

enum class Op : std::uint8_t {
  kPing = 1,
  kCreate = 2,
  kInsert = 3,
  kInsertBulk = 4,
  kQuery = 5,
  kStats = 6,
  kDrop = 7,
  kSave = 8,
  kFlush = 9,
  kList = 10,
  kShutdown = 11,
  kAuth = 12,
  kReplicate = 13,
  kPromote = 14,
};

enum class QueryType : std::uint8_t {
  kMembership = 1,
  kFrequency = 2,
  kCardinality = 3,
  kTopK = 4,
  kJaccard = 5,
};

enum class Status : std::uint8_t {
  kOk = 0,
  kError = 1,         ///< internal failure (message attached)
  kNotFound = 2,      ///< no pipeline under that name
  kExists = 3,        ///< CREATE of a name already taken
  kBadRequest = 4,    ///< malformed body, bad spec, unsupported query
  kTimeout = 5,       ///< barrier or per-request deadline expired
  kUnauthorized = 6,  ///< AUTH required/failed; retrying is pointless
  kOverloaded = 7,    ///< admission control shed the request; retry later
  kReadOnly = 8,      ///< standby replica: writes go to the primary
  kDegraded = 9,      ///< pipeline is read-only after a disk fault
};

[[nodiscard]] const char* to_string(Op op);
[[nodiscard]] const char* to_string(Status st);
[[nodiscard]] const char* to_string(QueryType q);

/// Validate a client-chosen opcode byte; throws ProtocolError.
[[nodiscard]] Op op_from(std::uint8_t raw);
[[nodiscard]] QueryType query_type_from(std::uint8_t raw);

// --------------------------------------------------------------- encoding --

/// Append-only body builder (little-endian fixed-width fields).
class WireWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void f64(double v);
  void str(std::string_view s);  ///< u32 length + bytes

  [[nodiscard]] const std::vector<char>& body() const { return buf_; }

 private:
  std::vector<char> buf_;
};

/// Bounds-checked body reader; any overrun throws ProtocolError.
class WireReader {
 public:
  explicit WireReader(std::span<const char> body) : body_(body) {}

  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  double f64();
  std::string str();  ///< u32 length (bounded by the remaining body) + bytes

  /// Next byte without consuming it; throws ProtocolError at the end.
  [[nodiscard]] std::uint8_t peek_u8() const;

  [[nodiscard]] std::size_t remaining() const { return body_.size() - pos_; }

  /// A well-formed body is consumed exactly; trailing bytes are an error.
  void expect_done() const;

 private:
  std::span<const char> body_;
  std::size_t pos_ = 0;
};

/// Consume the optional trace header (see kTraceHeader) off the front of
/// a request body and return its trace id, or 0 when the body starts with
/// a plain opcode.  A marker byte not followed by a full id is left for
/// op_from to reject.
[[nodiscard]] std::uint64_t read_trace_header(WireReader& r);

/// Client idempotence identity (see kSeqHeader); absent = {0, 0}.
struct ClientSeq {
  std::uint64_t client_id = 0;
  std::uint64_t client_seq = 0;
};

/// Consume the optional sequence header off the front of a request body
/// (call after read_trace_header).  A marker byte not followed by both
/// ids is left for op_from to reject.
[[nodiscard]] ClientSeq read_seq_header(WireReader& r);

/// Offset of the opcode byte in a raw request body, skipping the trace
/// and sequence headers when present.  Does not validate the opcode.
[[nodiscard]] std::size_t opcode_offset(std::span<const char> body);

// ---------------------------------------------------------------- framing --

/// Read exactly one frame's body from `fd`.  Returns false on a clean EOF
/// at a frame boundary (client closed); throws ProtocolError on an
/// oversized length prefix or mid-frame EOF, std::runtime_error on socket
/// errors.
bool read_frame(int fd, std::vector<char>& body);

/// Write `body` as one length-prefixed frame; throws std::runtime_error
/// when the peer is gone.
void write_frame(int fd, std::span<const char> body);

/// write(2) until done, retrying EINTR; throws std::runtime_error.
void write_all(int fd, const void* data, std::size_t n);

}  // namespace she::server
