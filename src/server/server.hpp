// SheServer — the long-running sketch service.
//
// Two listeners share one process:
//   * a binary-protocol TCP listener (protocol.hpp) with one handler
//     thread per connection, dispatching into the PipelineManager, and
//   * an HTTP listener serving `GET /metrics` (Prometheus text format:
//     process-wide SHE registry + server registry + every pipeline's
//     registry labeled pipeline="<name>") and `GET /healthz`.
//
// Queries hit seqlock snapshots, so reads never block ingest; inserts go
// through borrowed producer slots, so many clients feed one pipeline.
//
// Shutdown discipline: request_stop() — also wired to SIGTERM/SIGINT via
// install_signal_handlers(), and to the SHUTDOWN opcode — writes one byte
// to a self-pipe.  The accept loops poll that pipe and exit; stop() then
// shuts down every live connection socket (unblocking handler reads),
// joins the handlers, and closes every pipeline, which drains accepted
// items and writes final checkpoint frames.  A server restarted with
// `resume` answers queries identically to the moment of the checkpoint.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <memory>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "server/pipeline_manager.hpp"
#include "server/protocol.hpp"
#include "server/replica.hpp"

namespace she::server {

struct ServerOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;       ///< protocol listener; 0 = ephemeral
  int http_port = 0;            ///< /metrics listener; 0 = ephemeral, -1 = off
  std::size_t max_connections = 256;  ///< concurrent protocol connections
  std::size_t flush_timeout_ms = 10000;  ///< FLUSH/SAVE barrier bound
  bool enable_tracing = false;  ///< span collection on from start()
  std::size_t trace_sample = 1;  ///< trace 1 in N requests; 1 = all, 0 = all
  std::size_t slow_request_ms = 0;  ///< log requests slower than this; 0 = off
  /// Admission control.  `auth_token_file` names a file with one token per
  /// line; when set, every connection must AUTH before any other op (the
  /// 1-based line number becomes its client identity for quotas).  Quotas
  /// of 0 mean unlimited.  `request_deadline_ms` bounds each request's
  /// wall time: the budget is threaded into backpressure blocking so an
  /// overloaded shard sheds the request (kTimeout) instead of wedging the
  /// handler thread.
  std::string auth_token_file;
  std::uint64_t request_deadline_ms = 0;   ///< 0 = no per-request deadline
  std::size_t max_inflight = 0;            ///< global concurrent requests
  std::size_t max_inflight_per_client = 0; ///< per auth identity
  std::uint64_t bytes_per_sec = 0;         ///< global ingest budget
  std::uint64_t bytes_per_sec_per_client = 0;  ///< per auth identity
  /// Replication role.  "primary" (default) serves everything and streams
  /// to any REPLICATE subscriber.  "standby" follows the `follow`
  /// endpoints (hot-standby: bootstraps + tails the primary's WALs),
  /// serves reads, answers writes kReadOnly, and flips to primary on the
  /// PROMOTE op or SIGUSR2.
  std::string role = "primary";
  std::vector<std::string> follow;  ///< primary endpoints, "host:port"
  std::string follow_token;         ///< AUTH token for the primary, if any
  PipelineManager::Options manager;
};

class SheServer {
 public:
  explicit SheServer(ServerOptions opt);
  ~SheServer();  ///< request_stop() + stop()

  SheServer(const SheServer&) = delete;
  SheServer& operator=(const SheServer&) = delete;

  /// Bind both listeners and launch the accept threads.  Throws
  /// std::runtime_error when a port cannot be bound.
  void start();

  /// Block until a stop was requested and the shutdown sequence (run by
  /// the caller of wait()) has completed.
  void wait();

  /// Async-signal-safe stop trigger: one byte down the self-pipe.
  void request_stop() noexcept;

  /// Full shutdown: stop accepting, close connections, join handlers,
  /// close every pipeline (final checkpoints).  Idempotent.
  void stop();

  /// Route SIGTERM/SIGINT to request_stop() — and SIGUSR2 to promote() —
  /// on this server.  At most one server per process may install handlers;
  /// stop() restores the old dispositions.
  void install_signal_handlers();

  /// Standby → primary: drain what the replication stream already holds,
  /// stop following, start accepting writes.  Idempotent; no-op on a
  /// server that is already primary.  Wired to the PROMOTE op and SIGUSR2.
  void promote();

  /// True while the server answers writes with kReadOnly (standby role,
  /// not yet promoted).
  [[nodiscard]] bool standby() const {
    return standby_.load(std::memory_order_acquire);
  }

  /// Bound ports, valid after start() (useful with port 0).
  [[nodiscard]] std::uint16_t port() const { return port_; }
  [[nodiscard]] std::uint16_t http_port() const { return http_port_; }

  [[nodiscard]] PipelineManager& manager() { return manager_; }
  [[nodiscard]] const obs::Registry& metrics_registry() const {
    return registry_;
  }

  /// The /metrics payload (also what the HTTP listener serves).
  [[nodiscard]] std::string render_metrics() const;

  /// The /healthz payload: status, uptime, schema version, build info.
  [[nodiscard]] std::string render_healthz() const;

  /// The /trace payload: Chrome trace-event JSON of the spans retained in
  /// the last `window_ms` milliseconds (0 = everything retained).
  [[nodiscard]] static std::string render_trace(std::uint64_t window_ms);

 private:
  struct Conn {
    int fd = -1;
    std::thread thread;
    bool finished = false;
  };

  /// What a request turned out to be, filled in by dispatch() for the
  /// per-op duration histogram and the slow-request log.
  struct OpInfo {
    const char* op = "unknown";
    std::string pipeline;
  };

  /// Per-request context from the connection handler: the absolute
  /// steady-clock deadline (0 = none) threaded into blocking paths.
  struct ReqCtx {
    std::int64_t deadline_ns = 0;
  };

  /// Refill-on-demand token bucket, burst = one second of the rate.
  /// Guarded by admission_mu_.
  struct TokenBucket {
    double tokens = 0;
    std::int64_t last_ns = 0;
    bool take(double cost, double per_sec, std::int64_t now_ns);
  };

  struct ClientQuota {
    TokenBucket bytes;
    std::size_t inflight = 0;
  };

  /// Admission verdict for one request; releases in-flight counts on
  /// destruction when admitted.
  enum class Admission { kAdmit, kOverloadedGlobal, kOverloadedClient };

  void accept_loop();
  void http_loop();
  void handle_conn(std::uint64_t id, int fd);
  void handle_http(std::uint64_t id, int fd);
  void reap_finished();

  Admission admit(std::uint64_t client, std::size_t bytes);
  void release(std::uint64_t client);

  /// Dispatch one request body; always returns a response body.
  std::vector<char> dispatch(std::span<const char> body, OpInfo& info,
                             ReqCtx ctx);
  std::vector<char> do_query(WireReader& req, OpInfo& info, ReqCtx ctx);

  /// she_server_request_duration_ns{op=...,pipeline=...} observation
  /// (register-or-lookup per request; registration is mutex + small scan).
  void observe_request(const OpInfo& info, std::uint64_t ns);

  /// Rate-limited stderr line for requests over slow_request_ms, with the
  /// span breakdown this handler thread recorded during the request.
  void maybe_log_slow(const OpInfo& info, std::uint64_t ns,
                      const obs::trace::ThreadCursor& cursor);

  /// opt_.manager with the hub pointer patched in (manager_ init helper).
  [[nodiscard]] PipelineManager::Options manager_options();

  ServerOptions opt_;
  obs::Registry registry_;
  ReplicationHub hub_;  ///< must outlive manager_ (WAL observers hold it)
  PipelineManager manager_;
  std::unique_ptr<ReplicaClient> replica_;  ///< standby role only
  std::atomic<bool> standby_{false};

  int listen_fd_ = -1;
  int http_fd_ = -1;
  int stop_pipe_[2] = {-1, -1};  ///< [0] polled by loops, [1] written once
  int promote_pipe_[2] = {-1, -1};  ///< SIGUSR2 → accept_loop → promote()
  std::uint16_t port_ = 0;
  std::uint16_t http_port_ = 0;

  std::thread accept_thread_;
  std::thread http_thread_;

  std::mutex conns_mu_;
  std::map<std::uint64_t, Conn> conns_;
  std::uint64_t next_conn_id_ = 0;
  std::size_t live_protocol_ = 0;  ///< guarded by conns_mu_

  std::atomic<bool> started_{false};
  std::atomic<bool> stop_requested_{false};
  std::once_flag stop_flag_;
  std::mutex stopped_mu_;
  std::condition_variable stopped_cv_;
  bool stopped_ = false;
  bool signals_installed_ = false;

  // Admission state.  auth_tokens_ is loaded once in start() and read-only
  // afterwards; the quota maps are guarded by admission_mu_.
  std::vector<std::string> auth_tokens_;
  mutable std::mutex admission_mu_;
  TokenBucket global_bytes_;
  std::map<std::uint64_t, ClientQuota> client_quota_;
  std::size_t inflight_ = 0;  ///< guarded by admission_mu_

  obs::Counter* connections_total_;
  obs::Gauge* active_connections_;
  obs::Counter* protocol_errors_;
  obs::Histogram* request_latency_;
  obs::Gauge* pipelines_gauge_;
  obs::Counter* slow_requests_;
  obs::Counter* unauthorized_total_;
  obs::Counter* overloaded_total_;
  obs::Counter* deadline_shed_total_;
  obs::Gauge* inflight_gauge_;
  std::map<Op, obs::Counter*> requests_by_op_;
  std::atomic<std::uint64_t> request_seq_{0};  ///< 1-in-N trace sampler
  std::atomic<std::int64_t> last_slow_log_ns_{0};
  std::int64_t start_steady_ns_ = 0;  ///< for /healthz uptime
};

}  // namespace she::server
