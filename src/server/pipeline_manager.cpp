#include "server/pipeline_manager.hpp"

#include "server/replica.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>

namespace she::server {
namespace fs = std::filesystem;

namespace {

/// u64 with an optional K/M/G suffix (powers of 1024), e.g. "64K".
std::uint64_t parse_size(const std::string& key, const std::string& text) {
  if (text.empty()) throw std::invalid_argument(key + ": empty value");
  std::size_t end = 0;
  std::uint64_t v = 0;
  try {
    v = std::stoull(text, &end);
  } catch (const std::exception&) {
    throw std::invalid_argument(key + ": bad number '" + text + "'");
  }
  if (end + 1 == text.size()) {
    switch (std::tolower(static_cast<unsigned char>(text[end]))) {
      case 'k': return v << 10;
      case 'm': return v << 20;
      case 'g': return v << 30;
      default: break;
    }
  } else if (end == text.size()) {
    return v;
  }
  throw std::invalid_argument(key + ": bad number '" + text + "'");
}

double parse_f64(const std::string& key, const std::string& text) {
  std::size_t end = 0;
  double v = 0;
  try {
    v = std::stod(text, &end);
  } catch (const std::exception&) {
    end = text.size() + 1;
  }
  if (end != text.size()) {
    throw std::invalid_argument(key + ": bad number '" + text + "'");
  }
  return v;
}

}  // namespace

PipelineSpec parse_sketch_spec(const std::string& text) {
  PipelineSpec spec;
  // Serving defaults: modest window, supervised workers (a long-running
  // service must outlive one worker exception), one producer slot per
  // likely-concurrent client batch.
  spec.pipeline.producers = 4;
  spec.pipeline.supervise = true;

  std::istringstream is(text);
  std::string tok;
  while (is >> tok) {
    const std::size_t eq = tok.find('=');
    const std::string key = tok.substr(0, eq);
    const std::string val = eq == std::string::npos ? "" : tok.substr(eq + 1);
    const auto need = [&]() -> const std::string& {
      if (eq == std::string::npos) {
        throw std::invalid_argument(key + " requires =value");
      }
      return val;
    };
    if (key == "window") {
      spec.monitor.window = parse_size(key, need());
    } else if (key == "memory") {
      spec.monitor.memory_bytes = parse_size(key, need());
    } else if (key == "shards") {
      spec.pipeline.shards = parse_size(key, need());
    } else if (key == "producers") {
      spec.pipeline.producers = parse_size(key, need());
    } else if (key == "queue") {
      spec.pipeline.queue_capacity = parse_size(key, need());
    } else if (key == "publish") {
      spec.pipeline.publish_interval = parse_size(key, need());
    } else if (key == "batch") {
      spec.pipeline.drain_batch = parse_size(key, need());
    } else if (key == "policy") {
      if (need() == "block") {
        spec.pipeline.policy = runtime::Backpressure::kBlock;
      } else if (val == "drop") {
        spec.pipeline.policy = runtime::Backpressure::kDropNewest;
      } else if (val == "block-timeout") {
        spec.pipeline.policy = runtime::Backpressure::kBlockTimeout;
      } else {
        throw std::invalid_argument("policy: unknown '" + val + "'");
      }
    } else if (key == "push-timeout-ms") {
      spec.pipeline.push_timeout_ms = parse_size(key, need());
    } else if (key == "checkpoint-every") {
      spec.pipeline.checkpoint_interval = parse_size(key, need());
    } else if (key == "degraded-probe-ms") {
      spec.pipeline.degraded_probe_ms = parse_size(key, need());
    } else if (key == "wal") {
      spec.wal = wal_mode_from(need());
    } else if (key == "wal-fsync-bytes") {
      spec.wal_fsync_bytes = parse_size(key, need());
    } else if (key == "hll") {
      spec.monitor.use_hll = true;
    } else if (key == "similarity") {
      spec.monitor.track_similarity = true;
    } else if (key == "similarity-slots") {
      spec.monitor.similarity_slots = parse_size(key, need());
    } else if (key == "hh-slots") {
      spec.monitor.heavy_hitter_slots = parse_size(key, need());
    } else if (key == "expected-cardinality") {
      spec.monitor.expected_cardinality = parse_f64(key, need());
    } else if (key == "seed") {
      spec.monitor.seed = static_cast<std::uint32_t>(parse_size(key, need()));
    } else if (key == "no-membership") {
      spec.monitor.track_membership = false;
    } else if (key == "no-cardinality") {
      spec.monitor.track_cardinality = false;
    } else if (key == "no-frequency") {
      spec.monitor.track_frequency = false;
    } else {
      throw std::invalid_argument("unknown spec token '" + tok + "'");
    }
  }
  if (spec.monitor.track_similarity && spec.pipeline.shards != 1) {
    throw std::invalid_argument(
        "similarity requires shards=1: SHE-MH jaccard compares signatures "
        "over lock-step streams, which per-shard hash routing breaks");
  }
  spec.monitor.validate();
  spec.pipeline.validate();
  return spec;
}

bool valid_pipeline_name(const std::string& name) {
  if (name.empty() || name.size() > 64) return false;
  return std::all_of(name.begin(), name.end(), [](char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '-';
  });
}

// ------------------------------------------------------------------ Entry --

namespace {
std::atomic<std::uint64_t> g_next_entry_id{1};
}  // namespace

PipelineManager::Entry::Entry(std::string name, std::string spec_text,
                              const PipelineSpec& spec)
    : name_(std::move(name)),
      id_(g_next_entry_id.fetch_add(1, std::memory_order_relaxed)),
      spec_text_(std::move(spec_text)),
      monitor_(spec.monitor, spec.pipeline),
      slot_mu_(new std::mutex[spec.pipeline.producers]),
      slots_(spec.pipeline.producers) {}

std::size_t PipelineManager::Entry::insert_bulk(
    std::span<const std::uint64_t> keys, std::uint64_t client_id,
    std::uint64_t client_seq, std::int64_t deadline_ns) {
  // Producer slots serialize push() per index (the IngestPipeline
  // contract) while letting up to `slots_` handler threads ingest
  // concurrently: sweep for a free slot, fall back to blocking on the
  // round-robin one so load spreads instead of convoying on slot 0.
  const std::size_t start = rr_.fetch_add(1, std::memory_order_relaxed);
  for (std::size_t i = 0; i < slots_; ++i) {
    const std::size_t s = (start + i) % slots_;
    std::unique_lock<std::mutex> lk(slot_mu_[s], std::try_to_lock);
    if (lk.owns_lock()) {
      return monitor_.push_bulk(s, keys, client_id, client_seq, deadline_ns);
    }
  }
  const std::size_t s = start % slots_;
  std::lock_guard<std::mutex> lk(slot_mu_[s]);
  return monitor_.push_bulk(s, keys, client_id, client_seq, deadline_ns);
}

void PipelineManager::Entry::close_once() {
  std::call_once(close_flag_, [this] { monitor_.close(); });
}

// ---------------------------------------------------------------- manager --

PipelineManager::PipelineManager(Options opt) : opt_(std::move(opt)) {
  if (!opt_.checkpoint_root.empty()) {
    fs::create_directories(opt_.checkpoint_root);
    if (opt_.resume) resume_all();
  }
}

PipelineManager::~PipelineManager() { close_all(); }

std::string PipelineManager::dir_for(const std::string& name) const {
  return (fs::path(opt_.checkpoint_root) / name).string();
}

std::shared_ptr<PipelineManager::Entry> PipelineManager::create(
    const std::string& name, const std::string& spec_text) {
  auto entry = create_internal(name, spec_text, /*resume=*/false);
  // Announce after the pipeline is live so a standby applying the record
  // can never observe the name before the primary serves it.
  if (opt_.hub) opt_.hub->publish_create(name, spec_text);
  return entry;
}

std::shared_ptr<PipelineManager::Entry> PipelineManager::create_internal(
    const std::string& name, const std::string& spec_text, bool resume) {
  if (!valid_pipeline_name(name)) {
    throw std::invalid_argument("invalid pipeline name '" + name +
                                "' (want [A-Za-z0-9_-], 1..64 chars)");
  }
  PipelineSpec spec = parse_sketch_spec(spec_text);
  const bool durable = !opt_.checkpoint_root.empty();
  if (durable) {
    spec.pipeline.checkpoint_dir = dir_for(name);
    spec.pipeline.checkpoint_keep = opt_.checkpoint_keep;
    spec.pipeline.resume = resume;
    spec.pipeline.wal_mode = spec.wal.value_or(opt_.default_wal_mode);
    spec.pipeline.wal_fsync_bytes =
        spec.wal_fsync_bytes.value_or(opt_.wal_fsync_bytes);
    if (opt_.hub && spec.pipeline.wal_mode != WalMode::kOff) {
      // Fan durable WAL appends out to REPLICATE subscribers.  The
      // observer runs under the shard's append lock, so the hub only
      // enqueues (bounded per-subscriber queues, never a socket write).
      ReplicationHub* hub = opt_.hub;
      spec.pipeline.wal_observer = [hub, name](std::size_t shard,
                                               const WalFrame& f,
                                               std::span<const char> enc) {
        hub->publish_wal(name, shard, f, enc);
      };
    }
    spec.pipeline.validate();  // wal x policy combinations re-checked
  } else if (spec.wal.value_or(WalMode::kOff) != WalMode::kOff) {
    throw std::invalid_argument(
        "wal=" + std::string(to_string(*spec.wal)) +
        " needs a durable server (start she_server with --checkpoint-root)");
  }

  std::unique_lock lock(mu_);
  for (const auto& [n, e] : entries_) {
    if (n == name) throw AlreadyExists("pipeline '" + name + "' exists");
  }
  const bool fresh_dir = durable && !fs::exists(dir_for(name));
  if (durable) {
    // Spec on disk before the pipeline exists: a crash between the two
    // leaves a spec with no frames, which resume_all() brings back fresh.
    fs::create_directories(dir_for(name));
    std::ofstream spec_out(fs::path(dir_for(name)) / "spec",
                           std::ios::trunc);
    spec_out << spec_text << '\n';
    if (!spec_out) {
      throw std::runtime_error("cannot write spec for '" + name + "'");
    }
  }
  std::shared_ptr<Entry> entry;
  try {
    entry = std::make_shared<Entry>(name, spec_text, spec);
  } catch (...) {
    // A fresh CREATE that failed to construct must not leave a ghost spec
    // for resume_all(); a resume that failed keeps its directory for
    // post-mortem.
    if (fresh_dir) {
      std::error_code ec;
      fs::remove_all(dir_for(name), ec);
    }
    throw;
  }
  entry->monitor().start();
  entries_.emplace_back(name, entry);
  return entry;
}

std::shared_ptr<PipelineManager::Entry> PipelineManager::find(
    const std::string& name) const {
  std::shared_lock lock(mu_);
  for (const auto& [n, e] : entries_) {
    if (n == name) return e;
  }
  return nullptr;
}

bool PipelineManager::drop(const std::string& name) {
  // Close + delete under the exclusive lock: a racing CREATE of the same
  // name cannot interleave with the directory removal, and late INSERTs
  // holding the old shared_ptr see rejected pushes rather than a free.
  std::unique_lock lock(mu_);
  const auto it =
      std::find_if(entries_.begin(), entries_.end(),
                   [&](const auto& p) { return p.first == name; });
  if (it == entries_.end()) return false;
  const std::shared_ptr<Entry> entry = it->second;
  entries_.erase(it);
  entry->close_once();
  if (!opt_.checkpoint_root.empty()) {
    std::error_code ec;
    fs::remove_all(dir_for(name), ec);
  }
  if (opt_.hub) opt_.hub->publish_drop(name);
  return true;
}

std::shared_ptr<PipelineManager::Entry> PipelineManager::adopt(
    const std::string& name, const std::string& spec_text) {
  // Forget any resident instance WITHOUT touching its directory: the
  // replica client has already replaced the files with the primary's, and
  // close_once() on the old entry must happen before the resume so its
  // workers are gone (it may still write final checkpoint frames into the
  // directory, which is why the client drops stale pipelines *before*
  // receiving files — adopt's close here is a belt-and-braces fallback).
  std::shared_ptr<Entry> old;
  {
    std::unique_lock lock(mu_);
    const auto it =
        std::find_if(entries_.begin(), entries_.end(),
                     [&](const auto& p) { return p.first == name; });
    if (it != entries_.end()) {
      old = it->second;
      entries_.erase(it);
    }
  }
  if (old) old->close_once();
  return create_internal(name, spec_text, /*resume=*/true);
}

std::size_t PipelineManager::degraded_count() const {
  std::shared_lock lock(mu_);
  std::size_t n = 0;
  for (const auto& [name, e] : entries_) {
    if (e->monitor().degraded()) ++n;
  }
  return n;
}

std::vector<PipelineManager::BootstrapItem>
PipelineManager::bootstrap_snapshot() const {
  std::shared_lock lock(mu_);
  std::vector<BootstrapItem> out;
  out.reserve(entries_.size());
  for (const auto& [n, e] : entries_) {
    out.push_back({n, e->spec_text(),
                   opt_.checkpoint_root.empty() ? std::string() : dir_for(n)});
  }
  return out;
}

std::vector<std::string> PipelineManager::names() const {
  std::shared_lock lock(mu_);
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [n, e] : entries_) out.push_back(n);
  return out;
}

std::size_t PipelineManager::size() const {
  std::shared_lock lock(mu_);
  return entries_.size();
}

std::size_t PipelineManager::resume_all() {
  if (opt_.checkpoint_root.empty()) return 0;
  std::size_t resumed = 0;
  for (const auto& dirent : fs::directory_iterator(opt_.checkpoint_root)) {
    if (!dirent.is_directory()) continue;
    const std::string name = dirent.path().filename().string();
    const fs::path spec_path = dirent.path() / "spec";
    if (!fs::exists(spec_path)) continue;
    std::string spec_text;
    {
      std::ifstream in(spec_path);
      std::getline(in, spec_text);
      if (!in && spec_text.empty()) {
        std::cerr << "she_server: skipping '" << name
                  << "': unreadable spec\n";
        continue;
      }
    }
    try {
      create_internal(name, spec_text, /*resume=*/true);
      ++resumed;
    } catch (const std::exception& e) {
      std::cerr << "she_server: skipping '" << name << "': " << e.what()
                << '\n';
    }
  }
  return resumed;
}

void PipelineManager::close_all() {
  // Snapshot under the lock, close outside it: close() drains rings and
  // joins workers, which must not stall concurrent find()/LIST.
  std::vector<std::shared_ptr<Entry>> all;
  {
    std::shared_lock lock(mu_);
    all.reserve(entries_.size());
    for (const auto& [n, e] : entries_) all.push_back(e);
  }
  for (const auto& e : all) e->close_once();
}

PipelineManager::ExportSet PipelineManager::export_registries() const {
  ExportSet out;
  std::shared_lock lock(mu_);
  out.keepalive.reserve(entries_.size());
  out.registries.reserve(entries_.size());
  for (const auto& [n, e] : entries_) {
    out.keepalive.push_back(e);
    out.registries.push_back(
        {&e->monitor().metrics_registry(), {{"pipeline", n}}});
  }
  return out;
}

}  // namespace she::server
