#include "server/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace she::server {

SheClient::SheClient(const std::string& host, std::uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    throw std::runtime_error(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  const std::string target = host.empty() ? "127.0.0.1" : host;
  if (::inet_pton(AF_INET, target.c_str(), &addr.sin_addr) != 1) {
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error("cannot parse host '" + target +
                             "' (want an IPv4 address)");
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int err = errno;
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error("cannot connect to " + target + ":" +
                             std::to_string(port) + ": " +
                             std::strerror(err));
  }
  // Strict request/response protocol with small frames: Nagle only adds
  // latency here, never useful coalescing.
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

SheClient::~SheClient() {
  if (fd_ >= 0) ::close(fd_);
}

SheClient::SheClient(SheClient&& other) noexcept
    : fd_(other.fd_), trace_id_(other.trace_id_) {
  other.fd_ = -1;
}

SheClient& SheClient::operator=(SheClient&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = other.fd_;
    trace_id_ = other.trace_id_;
    other.fd_ = -1;
  }
  return *this;
}

std::vector<char> SheClient::roundtrip_raw(std::span<const char> body) {
  write_frame(fd_, body);
  std::vector<char> resp;
  if (!read_frame(fd_, resp)) {
    throw std::runtime_error("server closed the connection");
  }
  return resp;
}

std::vector<char> SheClient::roundtrip(const WireWriter& req) {
  std::vector<char> resp;
  if (trace_id_ != 0) {
    std::vector<char> traced;
    traced.reserve(9 + req.body().size());
    traced.push_back(static_cast<char>(kTraceHeader));
    for (int i = 0; i < 8; ++i)
      traced.push_back(static_cast<char>((trace_id_ >> (8 * i)) & 0xff));
    traced.insert(traced.end(), req.body().begin(), req.body().end());
    resp = roundtrip_raw(traced);
  } else {
    resp = roundtrip_raw(req.body());
  }
  WireReader r(resp);
  const auto status = static_cast<Status>(r.u8());
  if (status != Status::kOk) {
    std::string msg;
    try {
      msg = r.str();
    } catch (const ProtocolError&) {
      msg = "(no message)";
    }
    throw ClientError(status, msg);
  }
  return {resp.begin() + 1, resp.end()};
}

void SheClient::ping() {
  WireWriter w;
  w.u8(static_cast<std::uint8_t>(Op::kPing));
  roundtrip(w);
}

void SheClient::create(const std::string& name, const std::string& spec) {
  WireWriter w;
  w.u8(static_cast<std::uint8_t>(Op::kCreate));
  w.str(name);
  w.str(spec);
  roundtrip(w);
}

void SheClient::drop(const std::string& name) {
  WireWriter w;
  w.u8(static_cast<std::uint8_t>(Op::kDrop));
  w.str(name);
  roundtrip(w);
}

void SheClient::save(const std::string& name) {
  WireWriter w;
  w.u8(static_cast<std::uint8_t>(Op::kSave));
  w.str(name);
  roundtrip(w);
}

void SheClient::flush(const std::string& name) {
  WireWriter w;
  w.u8(static_cast<std::uint8_t>(Op::kFlush));
  w.str(name);
  roundtrip(w);
}

std::vector<std::string> SheClient::list() {
  WireWriter w;
  w.u8(static_cast<std::uint8_t>(Op::kList));
  const std::vector<char> payload = roundtrip(w);
  WireReader r(payload);
  const std::uint32_t n = r.u32();
  std::vector<std::string> names;
  names.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) names.push_back(r.str());
  return names;
}

std::string SheClient::stats_json(const std::string& name) {
  WireWriter w;
  w.u8(static_cast<std::uint8_t>(Op::kStats));
  w.str(name);
  const std::vector<char> payload = roundtrip(w);
  WireReader r(payload);
  return r.str();
}

std::uint64_t SheClient::insert(const std::string& name, std::uint64_t key) {
  WireWriter w;
  w.u8(static_cast<std::uint8_t>(Op::kInsert));
  w.str(name);
  w.u64(key);
  const std::vector<char> payload = roundtrip(w);
  return WireReader(payload).u64();
}

std::uint64_t SheClient::insert_bulk(const std::string& name,
                                     std::span<const std::uint64_t> keys) {
  WireWriter w;
  w.u8(static_cast<std::uint8_t>(Op::kInsertBulk));
  w.str(name);
  w.u32(static_cast<std::uint32_t>(keys.size()));
  for (const std::uint64_t k : keys) w.u64(k);
  const std::vector<char> payload = roundtrip(w);
  return WireReader(payload).u64();
}

bool SheClient::query_membership(const std::string& name, std::uint64_t key) {
  WireWriter w;
  w.u8(static_cast<std::uint8_t>(Op::kQuery));
  w.str(name);
  w.u8(static_cast<std::uint8_t>(QueryType::kMembership));
  w.u64(key);
  const std::vector<char> payload = roundtrip(w);
  return WireReader(payload).u8() != 0;
}

std::uint64_t SheClient::query_frequency(const std::string& name,
                                         std::uint64_t key) {
  WireWriter w;
  w.u8(static_cast<std::uint8_t>(Op::kQuery));
  w.str(name);
  w.u8(static_cast<std::uint8_t>(QueryType::kFrequency));
  w.u64(key);
  const std::vector<char> payload = roundtrip(w);
  return WireReader(payload).u64();
}

double SheClient::query_cardinality(const std::string& name) {
  WireWriter w;
  w.u8(static_cast<std::uint8_t>(Op::kQuery));
  w.str(name);
  w.u8(static_cast<std::uint8_t>(QueryType::kCardinality));
  const std::vector<char> payload = roundtrip(w);
  return WireReader(payload).f64();
}

std::vector<std::pair<std::uint64_t, std::uint64_t>> SheClient::query_topk(
    const std::string& name, std::uint32_t k) {
  WireWriter w;
  w.u8(static_cast<std::uint8_t>(Op::kQuery));
  w.str(name);
  w.u8(static_cast<std::uint8_t>(QueryType::kTopK));
  w.u32(k);
  const std::vector<char> payload = roundtrip(w);
  WireReader r(payload);
  const std::uint32_t n = r.u32();
  std::vector<std::pair<std::uint64_t, std::uint64_t>> top;
  top.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::uint64_t key = r.u64();
    const std::uint64_t est = r.u64();
    top.emplace_back(key, est);
  }
  return top;
}

double SheClient::query_jaccard(const std::string& name,
                                const std::string& other) {
  WireWriter w;
  w.u8(static_cast<std::uint8_t>(Op::kQuery));
  w.str(name);
  w.u8(static_cast<std::uint8_t>(QueryType::kJaccard));
  w.str(other);
  const std::vector<char> payload = roundtrip(w);
  return WireReader(payload).f64();
}

void SheClient::shutdown_server() {
  WireWriter w;
  w.u8(static_cast<std::uint8_t>(Op::kShutdown));
  roundtrip(w);
}

}  // namespace she::server
