#include "server/client.hpp"

#include "server/replica.hpp"  // parse_endpoint

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <random>
#include <thread>

namespace she::server {
namespace {

/// Non-zero random identity; the zero id means "no identity" on the wire.
std::uint64_t random_client_id() {
  std::random_device rd;
  std::uint64_t id = (static_cast<std::uint64_t>(rd()) << 32) ^ rd();
  return id == 0 ? 1 : id;
}

void set_io_deadline(int fd, std::uint64_t ms) {
  if (ms == 0) return;
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(ms / 1000);
  tv.tv_usec = static_cast<suseconds_t>((ms % 1000) * 1000);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

/// connect(2) bounded by `timeout_ms` (0 = plain blocking connect).
/// Throws IoTimeout when the deadline expires, std::runtime_error on
/// every other failure.  Leaves the fd in blocking mode.
void connect_bounded(int fd, const sockaddr_in& addr, const std::string& where,
                     std::uint64_t timeout_ms) {
  const auto* sa = reinterpret_cast<const sockaddr*>(&addr);
  if (timeout_ms == 0) {
    if (::connect(fd, sa, sizeof(addr)) != 0) {
      throw std::runtime_error("cannot connect to " + where + ": " +
                               std::strerror(errno));
    }
    return;
  }
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  if (::connect(fd, sa, sizeof(addr)) != 0) {
    if (errno != EINPROGRESS) {
      throw std::runtime_error("cannot connect to " + where + ": " +
                               std::strerror(errno));
    }
    pollfd p{};
    p.fd = fd;
    p.events = POLLOUT;
    int r;
    do {
      r = ::poll(&p, 1, static_cast<int>(timeout_ms));
    } while (r < 0 && errno == EINTR);
    if (r == 0) {
      throw IoTimeout("connect to " + where + " timed out after " +
                      std::to_string(timeout_ms) + "ms");
    }
    if (r < 0) {
      throw std::runtime_error("cannot connect to " + where + ": poll: " +
                               std::strerror(errno));
    }
    int err = 0;
    socklen_t len = sizeof(err);
    ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len);
    if (err != 0) {
      throw std::runtime_error("cannot connect to " + where + ": " +
                               std::strerror(err));
    }
  }
  ::fcntl(fd, F_SETFL, flags);
}

}  // namespace

SheClient::SheClient(const std::string& host, std::uint16_t port,
                     ClientOptions opt)
    : endpoints_{{host.empty() ? "127.0.0.1" : host, port}},
      opt_(std::move(opt)),
      client_id_(opt_.client_id != 0 ? opt_.client_id : random_client_id()) {
  connect_now();
}

SheClient::SheClient(const std::vector<std::string>& endpoints,
                     ClientOptions opt)
    : opt_(std::move(opt)),
      client_id_(opt_.client_id != 0 ? opt_.client_id : random_client_id()) {
  if (endpoints.empty()) {
    throw std::invalid_argument("SheClient needs at least one endpoint");
  }
  endpoints_.reserve(endpoints.size());
  for (const std::string& e : endpoints) endpoints_.push_back(parse_endpoint(e));
  connect_now();
}

SheClient::~SheClient() { disconnect(); }

SheClient::SheClient(SheClient&& other) noexcept
    : endpoints_(std::move(other.endpoints_)),
      current_(other.current_),
      opt_(std::move(other.opt_)),
      fd_(other.fd_),
      trace_id_(other.trace_id_),
      client_id_(other.client_id_),
      seq_(other.seq_) {
  other.fd_ = -1;
}

SheClient& SheClient::operator=(SheClient&& other) noexcept {
  if (this != &other) {
    disconnect();
    endpoints_ = std::move(other.endpoints_);
    current_ = other.current_;
    opt_ = std::move(other.opt_);
    fd_ = other.fd_;
    trace_id_ = other.trace_id_;
    client_id_ = other.client_id_;
    seq_ = other.seq_;
    other.fd_ = -1;
  }
  return *this;
}

void SheClient::rotate() noexcept {
  if (endpoints_.size() > 1) current_ = (current_ + 1) % endpoints_.size();
}

void SheClient::disconnect() noexcept {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
}

void SheClient::connect_now() {
  // Try every endpoint once, starting at current_ so a client that failed
  // over sticks with the endpoint that worked.  The last failure wins when
  // none of them answers; roundtrip()'s backoff loop wraps the whole scan.
  disconnect();
  std::exception_ptr last;
  for (std::size_t i = 0; i < endpoints_.size(); ++i) {
    const std::size_t idx = (current_ + i) % endpoints_.size();
    try {
      connect_endpoint(endpoints_[idx].first, endpoints_[idx].second);
      current_ = idx;
      return;
    } catch (...) {
      last = std::current_exception();
    }
  }
  std::rethrow_exception(last);
}

void SheClient::connect_endpoint(const std::string& host, std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    throw std::runtime_error(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw std::runtime_error("cannot parse host '" + host +
                             "' (want an IPv4 address)");
  }
  try {
    connect_bounded(fd, addr, host + ":" + std::to_string(port),
                    opt_.connect_timeout_ms);
  } catch (...) {
    ::close(fd);
    throw;
  }
  // Strict request/response protocol with small frames: Nagle only adds
  // latency here, never useful coalescing.
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  set_io_deadline(fd, opt_.io_timeout_ms);
  fd_ = fd;

  if (!opt_.auth_token.empty()) {
    // Authenticate before anything else touches the connection.  Failure
    // closes the fd so a half-authenticated client can never leak out.
    try {
      WireWriter w;
      w.u8(static_cast<std::uint8_t>(Op::kAuth));
      w.str(opt_.auth_token);
      const std::vector<char> resp = exchange_raw(w.body());
      WireReader r(resp);
      const auto status = static_cast<Status>(r.u8());
      if (status != Status::kOk) {
        std::string msg;
        try {
          msg = r.str();
        } catch (const ProtocolError&) {
          msg = "(no message)";
        }
        throw ClientError(status, msg);
      }
    } catch (...) {
      disconnect();
      throw;
    }
  }
}

std::vector<char> SheClient::exchange_raw(std::span<const char> body) {
  write_frame(fd_, body);
  std::vector<char> resp;
  if (!read_frame(fd_, resp)) {
    throw std::runtime_error("server closed the connection");
  }
  return resp;
}

std::vector<char> SheClient::roundtrip_raw(std::span<const char> body) {
  if (fd_ < 0) connect_now();
  try {
    return exchange_raw(body);
  } catch (...) {
    // The stream is desynchronized (partial send, missing response, or a
    // late one still in flight); never reuse the connection.
    disconnect();
    throw;
  }
}

std::vector<char> SheClient::roundtrip(const WireWriter& req, bool replayable,
                                       ClientSeq cs) {
  // Headers are prepended once and the identical bytes are re-sent on
  // every replay — same client_seq, so the server dedups lost-ack
  // retries instead of double-counting them.
  std::vector<char> out;
  out.reserve(9 + 17 + req.body().size());
  if (trace_id_ != 0) {
    out.push_back(static_cast<char>(kTraceHeader));
    for (int i = 0; i < 8; ++i)
      out.push_back(static_cast<char>((trace_id_ >> (8 * i)) & 0xff));
  }
  if (cs.client_id != 0) {
    out.push_back(static_cast<char>(kSeqHeader));
    for (int i = 0; i < 8; ++i)
      out.push_back(static_cast<char>((cs.client_id >> (8 * i)) & 0xff));
    for (int i = 0; i < 8; ++i)
      out.push_back(static_cast<char>((cs.client_seq >> (8 * i)) & 0xff));
  }
  out.insert(out.end(), req.body().begin(), req.body().end());

  std::uint64_t backoff_ms = opt_.backoff_initial_ms;
  for (std::size_t attempt = 0;; ++attempt) {
    try {
      if (fd_ < 0) connect_now();
      const std::vector<char> resp = exchange_raw(out);
      WireReader r(resp);
      const auto status = static_cast<Status>(r.u8());
      if (status != Status::kOk) {
        std::string msg;
        try {
          msg = r.str();
        } catch (const ProtocolError&) {
          msg = "(no message)";
        }
        throw ClientError(status, msg);
      }
      return {resp.begin() + 1, resp.end()};
    } catch (const IoTimeout&) {
      // A missed io deadline means the response may still arrive later;
      // drop the stream.  The caller owns the clock — retrying here
      // would silently double their deadline.
      disconnect();
      throw;
    } catch (const ClientError& e) {
      // Overload is shed before any work, so replaying it is safe for
      // every op.  A generic server error (e.g. a failed backlog-log
      // append under fault injection) is only retried when the request
      // carries a sequence header: the server's dedup table then makes
      // the replay exactly-once no matter how far the failed attempt got.
      // kReadOnly means a standby answered (it sheds writes before any
      // work): rotate to the next endpoint and replay — during a
      // failover the promoted server eventually takes the request.
      bool retryable = e.status() == Status::kOverloaded ||
                       (e.status() == Status::kError && cs.client_id != 0);
      if (e.status() == Status::kReadOnly) {
        disconnect();
        rotate();
        retryable = true;
      }
      if (!retryable || attempt >= opt_.max_retries) throw;
    } catch (const std::exception&) {
      // Transport failure: the server may be gone for good — aim the
      // reconnect at the next endpoint first (connect_now still falls
      // back through the full list).
      disconnect();
      rotate();
      if (!replayable || attempt >= opt_.max_retries) throw;
    }
    if (backoff_ms > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
    }
    backoff_ms = std::min(std::max<std::uint64_t>(backoff_ms, 1) * 2,
                          opt_.backoff_max_ms);
  }
}

void SheClient::ping() {
  WireWriter w;
  w.u8(static_cast<std::uint8_t>(Op::kPing));
  roundtrip(w, /*replayable=*/true);
}

void SheClient::create(const std::string& name, const std::string& spec) {
  WireWriter w;
  w.u8(static_cast<std::uint8_t>(Op::kCreate));
  w.str(name);
  w.str(spec);
  roundtrip(w, /*replayable=*/false);
}

void SheClient::drop(const std::string& name) {
  WireWriter w;
  w.u8(static_cast<std::uint8_t>(Op::kDrop));
  w.str(name);
  roundtrip(w, /*replayable=*/false);
}

void SheClient::save(const std::string& name) {
  WireWriter w;
  w.u8(static_cast<std::uint8_t>(Op::kSave));
  w.str(name);
  roundtrip(w, /*replayable=*/false);
}

void SheClient::flush(const std::string& name) {
  WireWriter w;
  w.u8(static_cast<std::uint8_t>(Op::kFlush));
  w.str(name);
  roundtrip(w, /*replayable=*/false);
}

std::vector<std::string> SheClient::list() {
  WireWriter w;
  w.u8(static_cast<std::uint8_t>(Op::kList));
  const std::vector<char> payload = roundtrip(w, /*replayable=*/true);
  WireReader r(payload);
  const std::uint32_t n = r.u32();
  std::vector<std::string> names;
  names.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) names.push_back(r.str());
  return names;
}

std::string SheClient::stats_json(const std::string& name) {
  WireWriter w;
  w.u8(static_cast<std::uint8_t>(Op::kStats));
  w.str(name);
  const std::vector<char> payload = roundtrip(w, /*replayable=*/true);
  WireReader r(payload);
  return r.str();
}

std::uint64_t SheClient::insert(const std::string& name, std::uint64_t key) {
  WireWriter w;
  w.u8(static_cast<std::uint8_t>(Op::kInsert));
  w.str(name);
  w.u64(key);
  const ClientSeq cs{client_id_, ++seq_};
  const std::vector<char> payload = roundtrip(w, /*replayable=*/true, cs);
  return WireReader(payload).u64();
}

std::uint64_t SheClient::insert_bulk(const std::string& name,
                                     std::span<const std::uint64_t> keys) {
  WireWriter w;
  w.u8(static_cast<std::uint8_t>(Op::kInsertBulk));
  w.str(name);
  w.u32(static_cast<std::uint32_t>(keys.size()));
  for (const std::uint64_t k : keys) w.u64(k);
  const ClientSeq cs{client_id_, ++seq_};
  const std::vector<char> payload = roundtrip(w, /*replayable=*/true, cs);
  return WireReader(payload).u64();
}

bool SheClient::query_membership(const std::string& name, std::uint64_t key) {
  WireWriter w;
  w.u8(static_cast<std::uint8_t>(Op::kQuery));
  w.str(name);
  w.u8(static_cast<std::uint8_t>(QueryType::kMembership));
  w.u64(key);
  const std::vector<char> payload = roundtrip(w, /*replayable=*/true);
  return WireReader(payload).u8() != 0;
}

std::uint64_t SheClient::query_frequency(const std::string& name,
                                         std::uint64_t key) {
  WireWriter w;
  w.u8(static_cast<std::uint8_t>(Op::kQuery));
  w.str(name);
  w.u8(static_cast<std::uint8_t>(QueryType::kFrequency));
  w.u64(key);
  const std::vector<char> payload = roundtrip(w, /*replayable=*/true);
  return WireReader(payload).u64();
}

double SheClient::query_cardinality(const std::string& name) {
  WireWriter w;
  w.u8(static_cast<std::uint8_t>(Op::kQuery));
  w.str(name);
  w.u8(static_cast<std::uint8_t>(QueryType::kCardinality));
  const std::vector<char> payload = roundtrip(w, /*replayable=*/true);
  return WireReader(payload).f64();
}

std::vector<std::pair<std::uint64_t, std::uint64_t>> SheClient::query_topk(
    const std::string& name, std::uint32_t k) {
  WireWriter w;
  w.u8(static_cast<std::uint8_t>(Op::kQuery));
  w.str(name);
  w.u8(static_cast<std::uint8_t>(QueryType::kTopK));
  w.u32(k);
  const std::vector<char> payload = roundtrip(w, /*replayable=*/true);
  WireReader r(payload);
  const std::uint32_t n = r.u32();
  std::vector<std::pair<std::uint64_t, std::uint64_t>> top;
  top.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::uint64_t key = r.u64();
    const std::uint64_t est = r.u64();
    top.emplace_back(key, est);
  }
  return top;
}

double SheClient::query_jaccard(const std::string& name,
                                const std::string& other) {
  WireWriter w;
  w.u8(static_cast<std::uint8_t>(Op::kQuery));
  w.str(name);
  w.u8(static_cast<std::uint8_t>(QueryType::kJaccard));
  w.str(other);
  const std::vector<char> payload = roundtrip(w, /*replayable=*/true);
  return WireReader(payload).f64();
}

void SheClient::shutdown_server() {
  WireWriter w;
  w.u8(static_cast<std::uint8_t>(Op::kShutdown));
  roundtrip(w, /*replayable=*/false);
}

void SheClient::promote() {
  WireWriter w;
  w.u8(static_cast<std::uint8_t>(Op::kPromote));
  roundtrip(w, /*replayable=*/true);  // idempotent on the server
}

}  // namespace she::server
