#include "server/protocol.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace she::server {
namespace {

/// read(2) exactly `n` bytes, retrying EINTR.  Returns false on EOF at
/// byte 0 (`eof_ok` path); throws on mid-read EOF or socket error.
bool read_exact(int fd, void* dst, std::size_t n, bool eof_ok) {
  char* p = static_cast<char*>(dst);
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::read(fd, p + got, n - got);
    if (r > 0) {
      got += static_cast<std::size_t>(r);
      continue;
    }
    if (r == 0) {
      if (got == 0 && eof_ok) return false;
      throw ProtocolError("connection closed mid-frame");
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      throw IoTimeout("read timed out");
    }
    throw std::runtime_error(std::string("read failed: ") +
                             std::strerror(errno));
  }
  return true;
}

std::uint32_t load_u32le(const char* p) {
  const auto* b = reinterpret_cast<const unsigned char*>(p);
  return static_cast<std::uint32_t>(b[0]) |
         (static_cast<std::uint32_t>(b[1]) << 8) |
         (static_cast<std::uint32_t>(b[2]) << 16) |
         (static_cast<std::uint32_t>(b[3]) << 24);
}

std::uint64_t load_u64le(const char* p) {
  return static_cast<std::uint64_t>(load_u32le(p)) |
         (static_cast<std::uint64_t>(load_u32le(p + 4)) << 32);
}

}  // namespace

const char* to_string(Op op) {
  switch (op) {
    case Op::kPing: return "ping";
    case Op::kCreate: return "create";
    case Op::kInsert: return "insert";
    case Op::kInsertBulk: return "insert_bulk";
    case Op::kQuery: return "query";
    case Op::kStats: return "stats";
    case Op::kDrop: return "drop";
    case Op::kSave: return "save";
    case Op::kFlush: return "flush";
    case Op::kList: return "list";
    case Op::kShutdown: return "shutdown";
    case Op::kAuth: return "auth";
    case Op::kReplicate: return "replicate";
    case Op::kPromote: return "promote";
  }
  return "unknown";
}

const char* to_string(Status st) {
  switch (st) {
    case Status::kOk: return "ok";
    case Status::kError: return "error";
    case Status::kNotFound: return "not_found";
    case Status::kExists: return "exists";
    case Status::kBadRequest: return "bad_request";
    case Status::kTimeout: return "timeout";
    case Status::kUnauthorized: return "unauthorized";
    case Status::kOverloaded: return "overloaded";
    case Status::kReadOnly: return "read_only";
    case Status::kDegraded: return "degraded";
  }
  return "unknown";
}

const char* to_string(QueryType q) {
  switch (q) {
    case QueryType::kMembership: return "membership";
    case QueryType::kFrequency: return "frequency";
    case QueryType::kCardinality: return "cardinality";
    case QueryType::kTopK: return "topk";
    case QueryType::kJaccard: return "jaccard";
  }
  return "unknown";
}

Op op_from(std::uint8_t raw) {
  if (raw < static_cast<std::uint8_t>(Op::kPing) ||
      raw > static_cast<std::uint8_t>(Op::kPromote)) {
    throw ProtocolError("unknown opcode " + std::to_string(raw));
  }
  return static_cast<Op>(raw);
}

QueryType query_type_from(std::uint8_t raw) {
  if (raw < static_cast<std::uint8_t>(QueryType::kMembership) ||
      raw > static_cast<std::uint8_t>(QueryType::kJaccard)) {
    throw ProtocolError("unknown query type " + std::to_string(raw));
  }
  return static_cast<QueryType>(raw);
}

// --------------------------------------------------------------- encoding --

void WireWriter::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void WireWriter::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void WireWriter::f64(double v) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  u64(bits);
}

void WireWriter::str(std::string_view s) {
  u32(static_cast<std::uint32_t>(s.size()));
  buf_.insert(buf_.end(), s.begin(), s.end());
}

std::uint8_t WireReader::u8() {
  if (remaining() < 1) throw ProtocolError("body truncated reading u8");
  return static_cast<std::uint8_t>(body_[pos_++]);
}

std::uint32_t WireReader::u32() {
  if (remaining() < 4) throw ProtocolError("body truncated reading u32");
  const std::uint32_t v = load_u32le(body_.data() + pos_);
  pos_ += 4;
  return v;
}

std::uint64_t WireReader::u64() {
  if (remaining() < 8) throw ProtocolError("body truncated reading u64");
  const std::uint64_t v = load_u64le(body_.data() + pos_);
  pos_ += 8;
  return v;
}

double WireReader::f64() {
  const std::uint64_t bits = u64();
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string WireReader::str() {
  const std::uint32_t len = u32();
  if (remaining() < len) throw ProtocolError("body truncated reading string");
  std::string s(body_.data() + pos_, len);
  pos_ += len;
  return s;
}

std::uint8_t WireReader::peek_u8() const {
  if (remaining() < 1) throw ProtocolError("body truncated peeking u8");
  return static_cast<std::uint8_t>(body_[pos_]);
}

void WireReader::expect_done() const {
  if (pos_ != body_.size()) {
    throw ProtocolError("trailing bytes after request body");
  }
}

std::uint64_t read_trace_header(WireReader& r) {
  // A lone marker byte with no room for the id is left in place: op_from
  // then rejects 0xF5 as an unknown opcode, which is the right answer for
  // a truncated header too.
  if (r.remaining() < 9 || r.peek_u8() != kTraceHeader) return 0;
  (void)r.u8();
  return r.u64();
}

ClientSeq read_seq_header(WireReader& r) {
  // Like the trace header: a truncated marker is left for op_from to
  // reject as an unknown opcode.
  if (r.remaining() < 17 || r.peek_u8() != kSeqHeader) return {};
  (void)r.u8();
  ClientSeq cs;
  cs.client_id = r.u64();
  cs.client_seq = r.u64();
  return cs;
}

std::size_t opcode_offset(std::span<const char> body) {
  std::size_t at = 0;
  if (body.size() - at >= 9 &&
      static_cast<std::uint8_t>(body[at]) == kTraceHeader)
    at += 9;
  if (body.size() - at >= 17 &&
      static_cast<std::uint8_t>(body[at]) == kSeqHeader)
    at += 17;
  return at;
}

// ---------------------------------------------------------------- framing --

bool read_frame(int fd, std::vector<char>& body) {
  char hdr[4];
  if (!read_exact(fd, hdr, sizeof(hdr), /*eof_ok=*/true)) return false;
  const std::uint32_t len = load_u32le(hdr);
  if (len > kMaxFrameBytes) {
    throw ProtocolError("frame length " + std::to_string(len) +
                        " exceeds limit " + std::to_string(kMaxFrameBytes));
  }
  body.resize(len);
  if (len > 0) read_exact(fd, body.data(), len, /*eof_ok=*/false);
  return true;
}

void write_all(int fd, const void* data, std::size_t n) {
  const char* p = static_cast<const char*>(data);
  std::size_t sent = 0;
  while (sent < n) {
    // send(MSG_NOSIGNAL) instead of write: a peer that closed mid-response
    // must surface as EPIPE, not kill the process with SIGPIPE.
    const ssize_t r = ::send(fd, p + sent, n - sent, MSG_NOSIGNAL);
    if (r >= 0) {
      sent += static_cast<std::size_t>(r);
      continue;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      throw IoTimeout("write timed out");
    }
    throw std::runtime_error(std::string("write failed: ") +
                             std::strerror(errno));
  }
}

void write_frame(int fd, std::span<const char> body) {
  if (body.size() > kMaxFrameBytes) {
    throw ProtocolError("response body exceeds frame limit");
  }
  char hdr[4];
  const auto len = static_cast<std::uint32_t>(body.size());
  for (int i = 0; i < 4; ++i)
    hdr[i] = static_cast<char>((len >> (8 * i)) & 0xff);
  // Header and body go out in one write_all so a frame is never split by
  // a throw between two sends, and small responses cost one syscall.
  std::vector<char> out;
  out.reserve(4 + body.size());
  out.insert(out.end(), hdr, hdr + 4);
  out.insert(out.end(), body.begin(), body.end());
  write_all(fd, out.data(), out.size());
}

}  // namespace she::server
