// PipelineManager — named, resident ConcurrentMonitor instances.
//
// The server keeps one ConcurrentMonitor per client-chosen name.  The
// manager owns the name table, the textual sketch-spec language clients
// use in CREATE, per-pipeline checkpoint directories under one root
// (`<root>/<name>/spec` + the pipeline's CRC-framed shard frames), and
// restart recovery: resume_all() re-creates every pipeline whose spec
// survived, resuming each from its newest valid checkpoint generation.
//
// Concurrency: lookups take a shared lock and hand out shared_ptr<Entry>,
// so a DROP racing an in-flight INSERT/QUERY never frees memory under the
// handler — the handler's shared_ptr keeps the entry alive; its pushes are
// rejected (return 0 accepted) once the drop has closed the pipeline.
// CREATE/DROP serialize on the exclusive lock, making them linearizable
// against each other.  Handler threads are arbitrary, but IngestPipeline
// requires push() be serialized per producer index, so Entry lends out
// producer slots behind per-slot mutexes (try-lock sweep, then block).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <span>
#include <string>
#include <vector>

#include "obs/export.hpp"
#include "she/monitor.hpp"

namespace she::server {

class ReplicationHub;

/// CREATE of a name that is already resident.
class AlreadyExists : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A parsed sketch spec: what to estimate + how to run it.  The WAL
/// fields stay separate from the pipeline options because they only apply
/// once the manager has assigned a checkpoint directory: unset means
/// "server default".
struct PipelineSpec {
  MonitorConfig monitor;
  runtime::PipelineOptions pipeline;
  std::optional<WalMode> wal;                  ///< spec `wal=off|async|fsync`
  std::optional<std::size_t> wal_fsync_bytes;  ///< spec `wal-fsync-bytes=N`
};

/// Parse the CREATE spec language: whitespace-separated `key=value` pairs
/// and bare flags.  Keys: window, memory (both take K/M/G suffixes),
/// shards, producers, queue, publish, batch, policy (block | drop |
/// block-timeout), push-timeout-ms, hll, similarity, similarity-slots,
/// hh-slots, expected-cardinality, checkpoint-every, degraded-probe-ms,
/// seed; flags:
/// no-membership, no-cardinality, no-frequency.  Unknown tokens, malformed
/// numbers, and invalid combinations (similarity with shards > 1 — SHE-MH
/// jaccard needs lock-step per-shard streams, which hash routing breaks)
/// throw std::invalid_argument.
[[nodiscard]] PipelineSpec parse_sketch_spec(const std::string& text);

/// Names are path components and label values: [A-Za-z0-9_-], 1..64 chars.
[[nodiscard]] bool valid_pipeline_name(const std::string& name);

class PipelineManager {
 public:
  struct Options {
    std::string checkpoint_root;     ///< empty = nothing durable
    std::size_t checkpoint_keep = 1; ///< frame generations per shard
    bool resume = false;             ///< resume_all() on construction
    /// Backlog-log default for pipelines whose spec says nothing about
    /// `wal=`; requires a checkpoint_root to take effect.
    WalMode default_wal_mode = WalMode::kOff;
    std::size_t wal_fsync_bytes = 0;  ///< default kFsync group-commit bound
    /// When set, every durable pipeline's WAL appends are fanned out to
    /// the hub (REPLICATE subscribers), and CREATE/DROP are announced.
    ReplicationHub* hub = nullptr;
  };

  /// One resident pipeline.  Insert paths borrow a producer slot; queries
  /// go straight to the monitor (seqlock snapshots, any thread).
  class Entry {
   public:
    Entry(std::string name, std::string spec_text, const PipelineSpec& spec);

    [[nodiscard]] const std::string& name() const { return name_; }
    /// Process-unique id; never reused, even when a dropped name is
    /// re-created.  Lets query caches key snapshots by pipeline identity
    /// instead of name, so state from a dropped pipeline can't be served
    /// for its successor.
    [[nodiscard]] std::uint64_t id() const { return id_; }
    [[nodiscard]] const std::string& spec_text() const { return spec_text_; }
    [[nodiscard]] ConcurrentMonitor& monitor() { return monitor_; }
    [[nodiscard]] const ConcurrentMonitor& monitor() const { return monitor_; }

    /// Push keys through a borrowed producer slot; returns accepted count
    /// (0 once the entry is closed).
    std::size_t insert_bulk(std::span<const std::uint64_t> keys) {
      return insert_bulk(keys, 0, 0, 0);
    }

    /// insert_bulk carrying the client's idempotence identity (replays
    /// dedupe per shard) and an absolute steady-clock deadline (0 = none)
    /// bounding backpressure blocking.
    std::size_t insert_bulk(std::span<const std::uint64_t> keys,
                            std::uint64_t client_id, std::uint64_t client_seq,
                            std::int64_t deadline_ns);

    /// Drain + final checkpoint + join workers; idempotent and safe to
    /// race with insert_bulk (late pushes are rejected, not lost memory).
    void close_once();

   private:
    std::string name_;
    std::uint64_t id_;
    std::string spec_text_;
    ConcurrentMonitor monitor_;
    std::unique_ptr<std::mutex[]> slot_mu_;
    std::size_t slots_;
    std::atomic<std::size_t> rr_{0};
    std::once_flag close_flag_;
  };

  /// Per-pipeline registries plus the shared_ptrs keeping them alive for
  /// the duration of an export.
  struct ExportSet {
    std::vector<std::shared_ptr<Entry>> keepalive;
    std::vector<obs::LabeledRegistry> registries;  ///< pipeline="<name>"
  };

  explicit PipelineManager(Options opt);
  ~PipelineManager();  ///< close_all()

  PipelineManager(const PipelineManager&) = delete;
  PipelineManager& operator=(const PipelineManager&) = delete;

  /// Parse `spec_text`, persist it under the checkpoint root (when
  /// configured), construct and start the pipeline.  Throws
  /// std::invalid_argument on a bad name/spec, AlreadyExists on a taken
  /// name.
  std::shared_ptr<Entry> create(const std::string& name,
                                const std::string& spec_text);

  /// nullptr when no pipeline holds `name`.
  [[nodiscard]] std::shared_ptr<Entry> find(const std::string& name) const;

  /// Close the pipeline and delete its checkpoint directory.  False when
  /// the name is not resident.
  bool drop(const std::string& name);

  /// Replication bootstrap: close and forget any resident pipeline under
  /// `name` *without* deleting its checkpoint directory, then re-create it
  /// from `spec_text` resuming from the files currently in that directory
  /// (which the replica client just received from the primary).
  std::shared_ptr<Entry> adopt(const std::string& name,
                               const std::string& spec_text);

  /// Pipelines parked read-only after a disk fault (for /healthz).
  [[nodiscard]] std::size_t degraded_count() const;

  /// One resident pipeline as the REPLICATE handler ships it: name, spec,
  /// and the on-disk directory whose files are sent verbatim.
  struct BootstrapItem {
    std::string name;
    std::string spec_text;
    std::string dir;  ///< empty when the manager is not durable
  };
  [[nodiscard]] std::vector<BootstrapItem> bootstrap_snapshot() const;

  [[nodiscard]] std::vector<std::string> names() const;
  [[nodiscard]] std::size_t size() const;

  /// Re-create every pipeline whose `<root>/<name>/spec` survived a
  /// restart, resuming from the newest valid checkpoint generation.
  /// Unreadable specs and corrupt-beyond-recovery checkpoints are warned
  /// to stderr and skipped — one damaged pipeline must not take down the
  /// rest.  Returns how many were resumed.
  std::size_t resume_all();

  /// Close every pipeline (drain + final checkpoint frames).  Entries stay
  /// resident for queries; used on server shutdown.
  void close_all();

  /// Snapshot of per-pipeline metric registries for /metrics.
  [[nodiscard]] ExportSet export_registries() const;

  [[nodiscard]] const Options& options() const { return opt_; }

 private:
  [[nodiscard]] std::string dir_for(const std::string& name) const;

  std::shared_ptr<Entry> create_internal(const std::string& name,
                                         const std::string& spec_text,
                                         bool resume);

  Options opt_;
  mutable std::shared_mutex mu_;
  std::vector<std::pair<std::string, std::shared_ptr<Entry>>> entries_;
};

}  // namespace she::server
