#include "server/server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <utility>

#include "common/build_info.hpp"
#include "common/checkpoint.hpp"
#include "obs/export.hpp"
#include "runtime/runtime_stats.hpp"
#include "runtime/snapshot.hpp"
#include "server/http.hpp"

namespace she::server {
namespace {

using Clock = std::chrono::steady_clock;

/// Self-pipe write end for the process signal handler.  One server per
/// process may install handlers; enforced in install_signal_handlers().
std::atomic<int> g_signal_stop_fd{-1};
std::atomic<int> g_signal_promote_fd{-1};
struct sigaction g_old_sigterm;
struct sigaction g_old_sigint;
struct sigaction g_old_sigusr2;

extern "C" void she_server_on_signal(int) {
  // Async-signal-safe: one atomic load + one write(2).
  const int fd = g_signal_stop_fd.load(std::memory_order_relaxed);
  if (fd >= 0) {
    const char byte = 's';
    [[maybe_unused]] const ssize_t r = ::write(fd, &byte, 1);
  }
}

extern "C" void she_server_on_promote_signal(int) {
  const int fd = g_signal_promote_fd.load(std::memory_order_relaxed);
  if (fd >= 0) {
    const char byte = 'p';
    [[maybe_unused]] const ssize_t r = ::write(fd, &byte, 1);
  }
}

/// Bind + listen on host:port; returns the fd and stores the actual bound
/// port (for port 0) in `bound`.
int listen_tcp(const std::string& host, std::uint16_t port,
               std::uint16_t* bound) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    throw std::runtime_error(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (host.empty() || host == "0.0.0.0") {
    addr.sin_addr.s_addr = htonl(INADDR_ANY);
  } else if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw std::runtime_error("cannot parse listen host '" + host +
                             "' (want an IPv4 address)");
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 64) != 0) {
    const int err = errno;
    ::close(fd);
    throw std::runtime_error("cannot listen on " + host + ":" +
                             std::to_string(port) + ": " +
                             std::strerror(err));
  }
  sockaddr_in got{};
  socklen_t len = sizeof(got);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&got), &len) == 0) {
    *bound = ntohs(got.sin_port);
  }
  return fd;
}

/// Per-handler-thread cache of deserialized shard snapshots.  Per-key
/// queries (membership, frequency) hit a handful of slots over and over,
/// and a fresh StreamMonitor deserialize per request dominates query
/// latency; SnapshotReader re-deserializes only when the published seqlock
/// version moves.  Keyed by (entry id, shard) — entry ids are never
/// reused, so a dropped pipeline's cached state can never answer for a
/// successor with the same name.  The caller must hold the entry's
/// shared_ptr for the duration of the call (keeps the slot alive); stale
/// readers for dropped pipelines are never dereferenced, only evicted.
/// Constant-time token equality: the comparison cost depends only on the
/// candidate's length (which the peer chose and already knows), never on
/// how many leading bytes match a stored token — no early exit, so
/// response timing cannot be used to guess a token byte by byte.
bool token_eq_consttime(const std::string& candidate,
                        const std::string& stored) {
  if (stored.empty()) return candidate.empty();
  unsigned diff = static_cast<unsigned>(candidate.size() ^ stored.size());
  for (std::size_t i = 0; i < candidate.size(); ++i)
    diff |= static_cast<unsigned>(
        static_cast<unsigned char>(candidate[i]) ^
        static_cast<unsigned char>(stored[i % stored.size()]));
  return diff == 0;
}

/// 1-based index of the stored token matching `candidate`, 0 when none.
/// Scans the whole list even after a match so the timing is independent
/// of which (if any) token matched.
std::size_t match_token(const std::vector<std::string>& tokens,
                        const std::string& candidate) {
  std::size_t found = 0;
  for (std::size_t t = 0; t < tokens.size(); ++t)
    if (token_eq_consttime(candidate, tokens[t]) && found == 0) found = t + 1;
  return found;
}

const StreamMonitor& cached_shard(const PipelineManager::Entry& entry,
                                  std::size_t shard) {
  using Reader = runtime::SnapshotReader<StreamMonitor>;
  thread_local std::map<std::pair<std::uint64_t, std::size_t>, Reader> cache;
  if (cache.size() > 64) cache.clear();  // bound churn from dropped pipelines
  const auto key = std::make_pair(entry.id(), shard);
  auto it = cache.find(key);
  if (it == cache.end()) {
    it = cache.emplace(key, Reader(entry.monitor().shard_slot(shard))).first;
  }
  return it->second.get();
}

}  // namespace

PipelineManager::Options SheServer::manager_options() {
  PipelineManager::Options m = opt_.manager;
  m.hub = &hub_;
  return m;
}

SheServer::SheServer(ServerOptions opt)
    : opt_(std::move(opt)), hub_(registry_), manager_(manager_options()) {
  if (opt_.role != "primary" && opt_.role != "standby") {
    throw std::invalid_argument("role must be primary or standby, not '" +
                                opt_.role + "'");
  }
  if (opt_.role == "standby" && opt_.follow.empty()) {
    throw std::invalid_argument("role=standby needs --follow host:port");
  }
  if (opt_.role != "standby" && !opt_.follow.empty()) {
    throw std::invalid_argument("--follow only makes sense with role=standby");
  }
  connections_total_ = &registry_.counter(
      "she_server_connections_total",
      "protocol connections accepted over the server lifetime");
  active_connections_ = &registry_.gauge(
      "she_server_active_connections", "protocol connections currently open");
  protocol_errors_ = &registry_.counter(
      "she_server_protocol_errors_total",
      "malformed or truncated frames rejected (connection-fatal framing "
      "errors and per-request body errors)");
  request_latency_ = &registry_.histogram(
      "she_server_request_latency_ns",
      "wall time from complete request frame to complete response, ns");
  pipelines_gauge_ = &registry_.gauge("she_server_pipelines",
                                      "resident named pipelines");
  slow_requests_ = &registry_.counter(
      "she_server_slow_requests_total",
      "requests slower than the configured slow_request_ms threshold");
  unauthorized_total_ = &registry_.counter(
      "she_server_unauthorized_total",
      "requests rejected kUnauthorized (missing or failed AUTH)");
  overloaded_total_ = &registry_.counter(
      "she_server_overloaded_total",
      "requests shed kOverloaded by admission control (in-flight or "
      "bytes-per-second quota)");
  deadline_shed_total_ = &registry_.counter(
      "she_server_deadline_shed_total",
      "requests answered kTimeout because the per-request deadline expired "
      "mid-operation");
  inflight_gauge_ = &registry_.gauge(
      "she_server_inflight_requests", "requests currently being dispatched");
  registry_
      .gauge("she_build_info",
             "constant 1; build metadata carried in the labels",
             {{"version", build_version()},
              {"compiler", build_compiler()},
              {"simd", build_simd_isa()},
              {"force_scalar", build_force_scalar()}})
      .set(1);
  for (std::uint8_t raw = static_cast<std::uint8_t>(Op::kPing);
       raw <= static_cast<std::uint8_t>(Op::kPromote); ++raw) {
    const Op op = static_cast<Op>(raw);
    requests_by_op_[op] =
        &registry_.counter("she_server_requests_total",
                           "requests dispatched, by opcode",
                           {{"op", to_string(op)}});
  }
  pipelines_gauge_->set(static_cast<std::int64_t>(manager_.size()));
}

SheServer::~SheServer() {
  request_stop();
  stop();
  for (int& fd : stop_pipe_) {
    if (fd >= 0) ::close(fd);
    fd = -1;
  }
  for (int& fd : promote_pipe_) {
    if (fd >= 0) ::close(fd);
    fd = -1;
  }
}

void SheServer::start() {
  if (started_.exchange(true)) {
    throw std::logic_error("SheServer::start() called twice");
  }
  if (::pipe(stop_pipe_) != 0) {
    throw std::runtime_error(std::string("pipe: ") + std::strerror(errno));
  }
  start_steady_ns_ =
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          Clock::now().time_since_epoch())
          .count();
  if (opt_.enable_tracing) obs::trace::set_enabled(true);
  if (!opt_.auth_token_file.empty()) {
    std::ifstream in(opt_.auth_token_file);
    if (!in) {
      throw std::runtime_error("cannot read auth token file '" +
                               opt_.auth_token_file + "'");
    }
    std::string line;
    while (std::getline(in, line)) {
      while (!line.empty() && (line.back() == '\r' || line.back() == ' '))
        line.pop_back();
      if (!line.empty()) auth_tokens_.push_back(line);
    }
    if (auth_tokens_.empty()) {
      throw std::runtime_error("auth token file '" + opt_.auth_token_file +
                               "' holds no tokens");
    }
  }
  for (int fd : stop_pipe_) ::fcntl(fd, F_SETFD, FD_CLOEXEC);
  if (::pipe(promote_pipe_) != 0) {
    throw std::runtime_error(std::string("pipe: ") + std::strerror(errno));
  }
  for (int fd : promote_pipe_) ::fcntl(fd, F_SETFD, FD_CLOEXEC);
  listen_fd_ = listen_tcp(opt_.host, opt_.port, &port_);
  if (opt_.http_port >= 0) {
    http_fd_ = listen_tcp(opt_.host,
                          static_cast<std::uint16_t>(opt_.http_port),
                          &http_port_);
  }
  if (opt_.role == "standby") {
    standby_.store(true, std::memory_order_release);
    ReplicaClientOptions ro;
    ro.endpoints = opt_.follow;
    ro.auth_token = opt_.follow_token;
    replica_ = std::make_unique<ReplicaClient>(std::move(ro), manager_,
                                               registry_);
    replica_->start();
  }
  accept_thread_ = std::thread([this] { accept_loop(); });
  if (http_fd_ >= 0) http_thread_ = std::thread([this] { http_loop(); });
}

void SheServer::request_stop() noexcept {
  stop_requested_.store(true, std::memory_order_release);
  const int fd = stop_pipe_[1];
  if (fd >= 0) {
    const char byte = 's';
    [[maybe_unused]] const ssize_t r = ::write(fd, &byte, 1);
  }
}

void SheServer::wait() {
  {
    std::unique_lock lk(stopped_mu_);
    if (stopped_) return;
  }
  if (stop_pipe_[0] >= 0) {
    pollfd p{stop_pipe_[0], POLLIN, 0};
    while (::poll(&p, 1, -1) < 0 && errno == EINTR) {
    }
  }
  stop();
}

void SheServer::stop() {
  std::call_once(stop_flag_, [this] {
    request_stop();
    if (accept_thread_.joinable()) accept_thread_.join();
    if (http_thread_.joinable()) http_thread_.join();
    // Unblock every handler stuck in read()/send(), then join.  Handlers
    // never close their own fd (a close racing this shutdown could hit a
    // recycled descriptor); fds are closed here, after the join.
    {
      std::lock_guard lk(conns_mu_);
      for (auto& [id, c] : conns_) {
        if (!c.finished) ::shutdown(c.fd, SHUT_RDWR);
      }
    }
    std::map<std::uint64_t, Conn> taken;
    {
      std::lock_guard lk(conns_mu_);
      taken.swap(conns_);
    }
    for (auto& [id, c] : taken) {
      if (c.thread.joinable()) c.thread.join();
      if (c.fd >= 0) ::close(c.fd);
    }
    if (listen_fd_ >= 0) ::close(listen_fd_);
    if (http_fd_ >= 0) ::close(http_fd_);
    listen_fd_ = http_fd_ = -1;
    // Stop following before the pipelines close (the replica thread
    // applies into them).
    if (replica_) replica_->stop();
    // Drain-then-checkpoint every pipeline: a resumed server answers
    // queries as of this moment.
    manager_.close_all();
    if (signals_installed_) {
      g_signal_stop_fd.store(-1, std::memory_order_relaxed);
      g_signal_promote_fd.store(-1, std::memory_order_relaxed);
      ::sigaction(SIGTERM, &g_old_sigterm, nullptr);
      ::sigaction(SIGINT, &g_old_sigint, nullptr);
      ::sigaction(SIGUSR2, &g_old_sigusr2, nullptr);
      signals_installed_ = false;
    }
    {
      std::lock_guard lk(stopped_mu_);
      stopped_ = true;
    }
    stopped_cv_.notify_all();
  });
  // Late callers (destructor after an explicit stop()) still wait for the
  // sequence to finish before returning.
  std::unique_lock lk(stopped_mu_);
  stopped_cv_.wait(lk, [this] { return stopped_; });
}

void SheServer::install_signal_handlers() {
  if (stop_pipe_[1] < 0) {
    throw std::logic_error("install_signal_handlers() before start()");
  }
  int expected = -1;
  if (!g_signal_stop_fd.compare_exchange_strong(expected, stop_pipe_[1])) {
    throw std::logic_error("signal handlers already routed to a server");
  }
  g_signal_promote_fd.store(promote_pipe_[1], std::memory_order_relaxed);
  struct sigaction sa{};
  sa.sa_handler = she_server_on_signal;
  ::sigemptyset(&sa.sa_mask);
  ::sigaction(SIGTERM, &sa, &g_old_sigterm);
  ::sigaction(SIGINT, &sa, &g_old_sigint);
  struct sigaction pa{};
  pa.sa_handler = she_server_on_promote_signal;
  ::sigemptyset(&pa.sa_mask);
  ::sigaction(SIGUSR2, &pa, &g_old_sigusr2);
  signals_installed_ = true;
}

void SheServer::promote() {
  if (!standby_.exchange(false, std::memory_order_acq_rel)) return;
  std::fputs("[she_server] PROMOTE: draining replication stream\n", stderr);
  if (replica_) replica_->promote();
  std::fputs("[she_server] PROMOTE: serving as primary\n", stderr);
}

// ---------------------------------------------------------- accept loops --

void SheServer::reap_finished() {
  std::vector<Conn> done;
  {
    std::lock_guard lk(conns_mu_);
    for (auto it = conns_.begin(); it != conns_.end();) {
      if (it->second.finished) {
        done.push_back(std::move(it->second));
        it = conns_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (Conn& c : done) {
    if (c.thread.joinable()) c.thread.join();
    if (c.fd >= 0) ::close(c.fd);
  }
}

void SheServer::accept_loop() {
  for (;;) {
    reap_finished();
    pollfd fds[3] = {{listen_fd_, POLLIN, 0},
                     {stop_pipe_[0], POLLIN, 0},
                     {promote_pipe_[0], POLLIN, 0}};
    const int r = ::poll(fds, 3, 500);
    if (r < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (fds[1].revents != 0) break;
    if (fds[2].revents & POLLIN) {
      char byte;
      [[maybe_unused]] const ssize_t rd = ::read(promote_pipe_[0], &byte, 1);
      promote();
    }
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    // Responses are single small frames; Nagle would only delay them.
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    connections_total_->inc();
    std::lock_guard lk(conns_mu_);
    if (live_protocol_ >= opt_.max_connections) {
      ::close(fd);
      continue;
    }
    ++live_protocol_;
    const std::uint64_t id = next_conn_id_++;
    Conn& c = conns_[id];
    c.fd = fd;
    c.thread = std::thread([this, id, fd] { handle_conn(id, fd); });
  }
}

void SheServer::http_loop() {
  for (;;) {
    pollfd fds[2] = {{http_fd_, POLLIN, 0}, {stop_pipe_[0], POLLIN, 0}};
    const int r = ::poll(fds, 2, 500);
    if (r < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (fds[1].revents != 0) break;
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int fd = ::accept(http_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    std::lock_guard lk(conns_mu_);
    const std::uint64_t id = next_conn_id_++;
    Conn& c = conns_[id];
    c.fd = fd;
    c.thread = std::thread([this, id, fd] { handle_http(id, fd); });
  }
}

void SheServer::handle_conn(std::uint64_t id, int fd) {
  active_connections_->add(1);
  std::vector<char> body;
  // Connection auth state: identity 0 until a successful AUTH (identity =
  // 1-based token line).  With no token file, everything runs as 0.
  bool authed = auth_tokens_.empty();
  std::uint64_t auth_id = 0;
  const auto answer = [&](Status st, const std::string& msg) {
    WireWriter w;
    w.u8(static_cast<std::uint8_t>(st));
    w.str(msg);
    write_frame(fd, w.body());
  };
  try {
    while (!stop_requested_.load(std::memory_order_acquire)) {
      if (!read_frame(fd, body)) break;  // clean EOF at a frame boundary
      const std::size_t op_at = opcode_offset(body);
      // AUTH is handled here — it mutates connection state dispatch()
      // cannot see — and is never quota-gated (a client must always be
      // able to identify itself).
      if (body.size() > op_at && body[op_at] == static_cast<char>(Op::kAuth)) {
        requests_by_op_[Op::kAuth]->inc();
        try {
          WireReader r(body);
          (void)read_trace_header(r);
          (void)read_seq_header(r);
          (void)r.u8();  // opcode
          const std::string token = r.str();
          r.expect_done();
          const std::size_t match = match_token(auth_tokens_, token);
          if (auth_tokens_.empty() || match != 0) {
            authed = true;
            auth_id = static_cast<std::uint64_t>(match);  // 0: no token file
            WireWriter w;
            w.u8(static_cast<std::uint8_t>(Status::kOk));
            write_frame(fd, w.body());
          } else {
            unauthorized_total_->inc();
            answer(Status::kUnauthorized, "unknown auth token");
          }
        } catch (const ProtocolError& e) {
          protocol_errors_->inc();
          answer(Status::kBadRequest, e.what());
        }
        continue;
      }
      if (!authed) {
        unauthorized_total_->inc();
        answer(Status::kUnauthorized, "AUTH required before any other op");
        continue;
      }
      // REPLICATE turns this connection into a one-way record stream: no
      // more requests arrive on it, so it leaves the request loop (and is
      // never admission-gated — a standby must be able to catch up while
      // the server sheds client load).
      if (body.size() > op_at &&
          body[op_at] == static_cast<char>(Op::kReplicate)) {
        requests_by_op_[Op::kReplicate]->inc();
        bool ok = false;
        try {
          WireReader r(body);
          (void)read_trace_header(r);
          (void)read_seq_header(r);
          (void)r.u8();  // opcode
          const std::uint64_t ver = r.u64();
          r.expect_done();
          if (ver != kReplicationProtoVersion) {
            answer(Status::kBadRequest,
                   "unsupported replication protocol version " +
                       std::to_string(ver));
          } else {
            ok = true;
          }
        } catch (const ProtocolError& e) {
          protocol_errors_->inc();
          answer(Status::kBadRequest, e.what());
        }
        if (!ok) continue;
        WireWriter w;
        w.u8(static_cast<std::uint8_t>(Status::kOk));
        write_frame(fd, w.body());
        serve_replication(fd, manager_, hub_, [this] {
          return stop_requested_.load(std::memory_order_acquire);
        });
        break;
      }
      // SHUTDOWN answers before triggering the stop sequence, so the
      // client sees its acknowledgment even though stop() tears down this
      // very connection moments later.  The opcode sits after the optional
      // trace header, if the client sent one.
      if (body.size() > op_at &&
          body[op_at] == static_cast<char>(Op::kShutdown)) {
        requests_by_op_[Op::kShutdown]->inc();
        WireWriter w;
        w.u8(static_cast<std::uint8_t>(Status::kOk));
        write_frame(fd, w.body());
        request_stop();
        break;
      }
      // Admission: shed *before* any work so an overloaded server answers
      // within the client's deadline instead of queueing behind it.
      const Admission adm = admit(auth_id, body.size());
      if (adm != Admission::kAdmit) {
        overloaded_total_->inc();
        answer(Status::kOverloaded,
               adm == Admission::kOverloadedGlobal
                   ? "server overloaded (global quota); retry with backoff"
                   : "client quota exceeded; retry with backoff");
        continue;
      }
      const bool tracing = obs::trace::enabled();
      // 1-in-N request sampling: unsampled requests run their dispatch
      // under a SuppressScope, so every span on this handler thread (the
      // op span and any inline estimator work) is skipped.  Spans recorded
      // by pipeline drain threads are tied to the client trace id, not
      // this thread, and are not sampled here.
      const bool sampled =
          !tracing || opt_.trace_sample <= 1 ||
          request_seq_.fetch_add(1, std::memory_order_relaxed) %
                  opt_.trace_sample ==
              0;
      const obs::trace::ThreadCursor cursor =
          tracing ? obs::trace::thread_cursor() : obs::trace::ThreadCursor{};
      const Clock::time_point t0 = Clock::now();
      ReqCtx ctx;
      if (opt_.request_deadline_ms != 0) {
        ctx.deadline_ns =
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                t0.time_since_epoch())
                .count() +
            static_cast<std::int64_t>(opt_.request_deadline_ms) * 1'000'000;
      }
      OpInfo info;
      std::vector<char> resp;
      try {
        if (sampled) {
          resp = dispatch(body, info, ctx);
        } else {
          const obs::trace::SuppressScope mute;
          resp = dispatch(body, info, ctx);
        }
      } catch (...) {
        release(auth_id);
        throw;
      }
      release(auth_id);
      const std::uint64_t ns = static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                               t0)
              .count());
      request_latency_->observe(ns);
      observe_request(info, ns);
      if (opt_.slow_request_ms != 0 &&
          ns >= opt_.slow_request_ms * 1'000'000ull) {
        maybe_log_slow(info, ns, cursor);
      }
      write_frame(fd, resp);
    }
  } catch (const ProtocolError& e) {
    // Framing is broken (oversized length, mid-frame EOF): the byte
    // stream cannot be resynchronized, so answer if the transport still
    // works and drop this connection.  Everyone else keeps being served.
    protocol_errors_->inc();
    try {
      WireWriter w;
      w.u8(static_cast<std::uint8_t>(Status::kBadRequest));
      w.str(e.what());
      write_frame(fd, w.body());
    } catch (...) {
    }
  } catch (const std::exception&) {
    // Socket error (peer reset, shutdown() during stop): drop quietly.
  }
  ::shutdown(fd, SHUT_RDWR);
  active_connections_->add(-1);
  std::lock_guard lk(conns_mu_);
  --live_protocol_;
  const auto it = conns_.find(id);
  if (it != conns_.end()) it->second.finished = true;
}

void SheServer::handle_http(std::uint64_t id, int fd) {
  // Read the request head (bounded, with an idle timeout) and answer one
  // request; Connection: close.
  std::string head;
  try {
    char buf[2048];
    while (head.find("\r\n\r\n") == std::string::npos && head.size() < 8192) {
      pollfd p{fd, POLLIN, 0};
      const int pr = ::poll(&p, 1, 5000);
      if (pr <= 0) break;
      const ssize_t r = ::recv(fd, buf, sizeof(buf), 0);
      if (r <= 0) break;
      head.append(buf, static_cast<std::size_t>(r));
    }
    std::string resp;
    const std::optional<HttpRequest> req = parse_http_request(head);
    if (!req) {
      resp = http_response(400, "Bad Request", "text/plain", "bad request\n");
    } else if (req->method != "GET") {
      resp = http_response(405, "Method Not Allowed", "text/plain",
                           "only GET\n");
    } else if (req->target == "/healthz") {
      resp = http_response(200, "OK", "application/json", render_healthz());
    } else if (req->target == "/metrics" ||
               req->target.rfind("/metrics?", 0) == 0) {
      resp = http_response(200, "OK",
                           "text/plain; version=0.0.4; charset=utf-8",
                           render_metrics());
    } else if (req->target == "/trace" ||
               req->target.rfind("/trace?", 0) == 0) {
      // /trace?ms=N limits the export to spans from the last N ms
      // (default 1000; ms=0 = everything still in the rings).
      std::uint64_t window_ms = 1000;
      const std::string::size_type q = req->target.find("ms=");
      if (q != std::string::npos) {
        window_ms = std::strtoull(req->target.c_str() + q + 3, nullptr, 10);
      }
      resp = http_response(200, "OK", "application/json",
                           render_trace(window_ms));
    } else {
      resp = http_response(404, "Not Found", "text/plain", "not found\n");
    }
    write_all(fd, resp.data(), resp.size());
  } catch (const std::exception&) {
  }
  ::shutdown(fd, SHUT_RDWR);
  std::lock_guard lk(conns_mu_);
  const auto it = conns_.find(id);
  if (it != conns_.end()) it->second.finished = true;
}

std::string SheServer::render_metrics() const {
  // pipelines gauge is refreshed lazily, at export time.
  pipelines_gauge_->set(static_cast<std::int64_t>(manager_.size()));
  const PipelineManager::ExportSet exported = manager_.export_registries();
  std::vector<obs::LabeledRegistry> regs;
  regs.reserve(2 + exported.registries.size());
  regs.push_back({&obs::default_registry(), {}});
  regs.push_back({&registry_, {}});
  regs.insert(regs.end(), exported.registries.begin(),
              exported.registries.end());
  std::ostringstream os;
  obs::write_prometheus(os, std::span<const obs::LabeledRegistry>(regs));
  return os.str();
}

std::string SheServer::render_healthz() const {
  const std::int64_t now_ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          Clock::now().time_since_epoch())
          .count();
  const std::int64_t up_s =
      start_steady_ns_ > 0 ? (now_ns - start_steady_ns_) / 1'000'000'000
                           : 0;
  const std::size_t degraded = manager_.degraded_count();
  std::ostringstream os;
  os << "{\"status\":\"" << (degraded != 0 ? "degraded" : "ok")
     << "\",\"role\":\""
     << (standby_.load(std::memory_order_acquire) ? "standby" : "primary")
     << "\",\"degraded_pipelines\":" << degraded
     << ",\"uptime_s\":" << up_s
     << ",\"schema_version\":" << runtime::RuntimeStats::kSchemaVersion
     << ",\"version\":\"" << obs::json_escape(build_version())
     << "\",\"compiler\":\"" << obs::json_escape(build_compiler())
     << "\",\"simd\":\"" << obs::json_escape(build_simd_isa())
     << "\",\"force_scalar\":" << build_force_scalar()
     << ",\"tracing\":" << (obs::trace::enabled() ? "true" : "false")
     << ",\"trace_sample\":" << (opt_.trace_sample == 0 ? 1 : opt_.trace_sample)
     << ",\"auth_required\":" << (auth_tokens_.empty() ? "false" : "true")
     << ",\"request_deadline_ms\":" << opt_.request_deadline_ms
     << ",\"max_inflight\":" << opt_.max_inflight << ",\"inflight\":";
  {
    std::lock_guard lk(admission_mu_);
    os << inflight_;
  }
  os << ",\"overloaded_total\":" << overloaded_total_->value()
     << ",\"unauthorized_total\":" << unauthorized_total_->value()
     << ",\"deadline_shed_total\":" << deadline_shed_total_->value();
  if (replica_) {
    os << ",\"replication\":{\"connected\":"
       << (replica_->connected() ? "true" : "false")
       << ",\"synced\":" << (replica_->synced() ? "true" : "false")
       << ",\"lag_items\":" << replica_->lag_items() << "}";
  }
  os << ",\"pipelines\":" << manager_.size() << "}\n";
  return os.str();
}

std::string SheServer::render_trace(std::uint64_t window_ms) {
  std::ostringstream os;
  obs::trace::export_chrome_trace(os, window_ms * 1'000'000ull);
  return os.str();
}

void SheServer::observe_request(const OpInfo& info, std::uint64_t ns) {
  registry_
      .histogram("she_server_request_duration_ns",
                 "wall time per request, by opcode and target pipeline, ns",
                 {{"op", info.op},
                  {"pipeline", info.pipeline.empty() ? "-" : info.pipeline}})
      .observe(ns);
}

void SheServer::maybe_log_slow(const OpInfo& info, std::uint64_t ns,
                               const obs::trace::ThreadCursor& cursor) {
  slow_requests_->inc();
  // Rate limit the log line itself to one per second so a latency storm
  // cannot flood stderr; the counter above still sees every slow request.
  const std::int64_t now_ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          Clock::now().time_since_epoch())
          .count();
  std::int64_t last = last_slow_log_ns_.load(std::memory_order_relaxed);
  if (now_ns - last < 1'000'000'000 ||
      !last_slow_log_ns_.compare_exchange_strong(last, now_ns,
                                                 std::memory_order_relaxed)) {
    return;
  }
  std::ostringstream os;
  os << "[she_server] slow request: op=" << info.op << " pipeline="
     << (info.pipeline.empty() ? "-" : info.pipeline)
     << " took_ms=" << ns / 1'000'000;
  if (cursor.ring != nullptr) {
    os << " spans=[";
    const std::vector<obs::trace::CollectedSpan> spans =
        obs::trace::spans_since(cursor);
    bool first = true;
    for (const obs::trace::CollectedSpan& s : spans) {
      if (!first) os << ' ';
      first = false;
      os << s.name << ':' << s.dur_ns / 1'000'000 << "ms";
    }
    os << ']';
  }
  os << '\n';
  std::fputs(os.str().c_str(), stderr);
}

// -------------------------------------------------------------- admission --

bool SheServer::TokenBucket::take(double cost, double per_sec,
                                  std::int64_t now_ns) {
  if (per_sec <= 0) return true;  // unlimited
  const double cap = per_sec;     // burst: one second of budget
  if (last_ns == 0) tokens = cap;
  else
    tokens = std::min(
        cap, tokens + static_cast<double>(now_ns - last_ns) * 1e-9 * per_sec);
  last_ns = now_ns;
  // A request costing more than the burst would starve forever under a
  // strict `tokens >= cost` check; requiring only a full burst — while
  // still charging the whole cost, driving the bucket into debt — lets
  // oversize batches through at the configured long-run rate.
  if (tokens < std::min(cost, cap)) return false;
  tokens -= cost;
  return true;
}

SheServer::Admission SheServer::admit(std::uint64_t client,
                                      std::size_t bytes) {
  const std::int64_t now_ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          Clock::now().time_since_epoch())
          .count();
  std::lock_guard lk(admission_mu_);
  if (opt_.max_inflight != 0 && inflight_ >= opt_.max_inflight) {
    return Admission::kOverloadedGlobal;
  }
  ClientQuota& cq = client_quota_[client];
  if (opt_.max_inflight_per_client != 0 &&
      cq.inflight >= opt_.max_inflight_per_client) {
    return Admission::kOverloadedClient;
  }
  // Bytes budget: check the per-client bucket first so one hog drains its
  // own allowance before touching the shared pool.  Rejections must not
  // consume tokens, so the global take happens only after the client take
  // passed — and is refunded never (a global rejection after a client
  // take is the one ordering wrinkle; at these granularities it is noise).
  if (!cq.bytes.take(static_cast<double>(bytes),
                     static_cast<double>(opt_.bytes_per_sec_per_client),
                     now_ns)) {
    return Admission::kOverloadedClient;
  }
  if (!global_bytes_.take(static_cast<double>(bytes),
                          static_cast<double>(opt_.bytes_per_sec), now_ns)) {
    return Admission::kOverloadedGlobal;
  }
  ++inflight_;
  ++cq.inflight;
  inflight_gauge_->set(static_cast<std::int64_t>(inflight_));
  return Admission::kAdmit;
}

void SheServer::release(std::uint64_t client) {
  std::lock_guard lk(admission_mu_);
  if (inflight_ > 0) --inflight_;
  const auto it = client_quota_.find(client);
  if (it != client_quota_.end() && it->second.inflight > 0) {
    --it->second.inflight;
  }
  inflight_gauge_->set(static_cast<std::int64_t>(inflight_));
}

// --------------------------------------------------------------- dispatch --

std::vector<char> SheServer::dispatch(std::span<const char> body,
                                      OpInfo& info, ReqCtx ctx) {
  WireWriter resp;
  const auto fail = [](Status st, const std::string& msg) {
    WireWriter w;
    w.u8(static_cast<std::uint8_t>(st));
    w.str(msg);
    return w.body();
  };
  try {
    WireReader req(body);
    // An optional trace header binds this request's spans — here and in
    // every stage the work flows through — to the client-chosen trace id.
    // Always stripped, even with tracing off: the body must parse.
    const std::uint64_t trace_id = read_trace_header(req);
    const obs::trace::TraceIdScope trace_scope(trace_id);
    // Optional idempotence identity: INSERT/INSERT_BULK tagged with it
    // dedupe per shard on replay; other ops ignore it.
    const ClientSeq cs = read_seq_header(req);
    const Op op = op_from(req.u8());
    info.op = to_string(op);  // static literal; outlives the span ring
    const obs::trace::SpanGuard span(info.op, "server");
    requests_by_op_[op]->inc();
    // A standby serves reads from its replicated state but never takes
    // writes: the primary owns the stream, and a divergent standby could
    // not be promoted.  Typed kReadOnly so clients fail over, not retry.
    if (standby_.load(std::memory_order_acquire) &&
        (op == Op::kCreate || op == Op::kInsert || op == Op::kInsertBulk ||
         op == Op::kDrop)) {
      return fail(Status::kReadOnly,
                  "standby replica: writes go to the primary");
    }
    switch (op) {
      case Op::kPing: {
        req.expect_done();
        resp.u8(static_cast<std::uint8_t>(Status::kOk));
        break;
      }
      case Op::kCreate: {
        const std::string name = req.str();
        const std::string spec = req.str();
        req.expect_done();
        info.pipeline = name;
        manager_.create(name, spec);
        pipelines_gauge_->set(static_cast<std::int64_t>(manager_.size()));
        resp.u8(static_cast<std::uint8_t>(Status::kOk));
        break;
      }
      case Op::kInsert: {
        const std::string name = req.str();
        const std::uint64_t key = req.u64();
        req.expect_done();
        info.pipeline = name;
        const auto entry = manager_.find(name);
        if (!entry) return fail(Status::kNotFound, "no pipeline '" + name + "'");
        const std::uint64_t accepted =
            entry->insert_bulk(std::span<const std::uint64_t>(&key, 1),
                               cs.client_id, cs.client_seq, ctx.deadline_ns);
        if (accepted < 1 && ctx.deadline_ns != 0 &&
            Clock::now().time_since_epoch().count() >= ctx.deadline_ns) {
          deadline_shed_total_->inc();
          return fail(Status::kTimeout, "request deadline exceeded");
        }
        resp.u8(static_cast<std::uint8_t>(Status::kOk));
        resp.u64(accepted);
        break;
      }
      case Op::kInsertBulk: {
        const std::string name = req.str();
        const std::uint32_t n = req.u32();
        if (static_cast<std::size_t>(n) * 8 > req.remaining()) {
          throw ProtocolError("bulk count exceeds body size");
        }
        std::vector<std::uint64_t> keys(n);
        for (std::uint32_t i = 0; i < n; ++i) keys[i] = req.u64();
        req.expect_done();
        info.pipeline = name;
        const auto entry = manager_.find(name);
        if (!entry) return fail(Status::kNotFound, "no pipeline '" + name + "'");
        const std::uint64_t accepted = entry->insert_bulk(
            keys, cs.client_id, cs.client_seq, ctx.deadline_ns);
        if (accepted < n && ctx.deadline_ns != 0 &&
            Clock::now().time_since_epoch().count() >= ctx.deadline_ns) {
          // Shed, not wedged: the deadline cut the backpressure spin
          // short.  An idempotent client replays with the same sequence
          // number and the per-shard dedup makes the retry exactly-once.
          deadline_shed_total_->inc();
          return fail(Status::kTimeout,
                      "request deadline exceeded (" +
                          std::to_string(accepted) + " of " +
                          std::to_string(n) + " accepted; replay is safe)");
        }
        resp.u8(static_cast<std::uint8_t>(Status::kOk));
        resp.u64(accepted);
        break;
      }
      case Op::kQuery:
        return do_query(req, info, ctx);
      case Op::kStats: {
        const std::string name = req.str();
        req.expect_done();
        info.pipeline = name;
        const auto entry = manager_.find(name);
        if (!entry) return fail(Status::kNotFound, "no pipeline '" + name + "'");
        resp.u8(static_cast<std::uint8_t>(Status::kOk));
        resp.str(entry->monitor().stats().to_json());
        break;
      }
      case Op::kDrop: {
        const std::string name = req.str();
        req.expect_done();
        info.pipeline = name;
        if (!manager_.drop(name)) {
          return fail(Status::kNotFound, "no pipeline '" + name + "'");
        }
        pipelines_gauge_->set(static_cast<std::int64_t>(manager_.size()));
        resp.u8(static_cast<std::uint8_t>(Status::kOk));
        break;
      }
      case Op::kSave:
      case Op::kFlush: {
        const std::string name = req.str();
        req.expect_done();
        info.pipeline = name;
        const auto entry = manager_.find(name);
        if (!entry) return fail(Status::kNotFound, "no pipeline '" + name + "'");
        std::size_t timeout_ms = opt_.flush_timeout_ms;
        if (ctx.deadline_ns != 0) {
          const std::int64_t left_ms =
              (ctx.deadline_ns - Clock::now().time_since_epoch().count()) /
              1'000'000;
          if (left_ms <= 0) {
            deadline_shed_total_->inc();
            return fail(Status::kTimeout, "request deadline exceeded");
          }
          timeout_ms = std::min<std::size_t>(
              timeout_ms, static_cast<std::size_t>(left_ms));
        }
        const bool done = op == Op::kSave
                              ? entry->monitor().save_now(timeout_ms)
                              : entry->monitor().flush(timeout_ms);
        if (!done) {
          return fail(Status::kTimeout,
                      std::string(op == Op::kSave ? "save" : "flush") +
                          " barrier timed out");
        }
        resp.u8(static_cast<std::uint8_t>(Status::kOk));
        break;
      }
      case Op::kList: {
        req.expect_done();
        const std::vector<std::string> names = manager_.names();
        resp.u8(static_cast<std::uint8_t>(Status::kOk));
        resp.u32(static_cast<std::uint32_t>(names.size()));
        for (const std::string& n : names) resp.str(n);
        break;
      }
      case Op::kShutdown: {
        // Normally short-circuited in handle_conn; answering OK here keeps
        // dispatch() total for direct (in-process) use.
        req.expect_done();
        resp.u8(static_cast<std::uint8_t>(Status::kOk));
        request_stop();
        break;
      }
      case Op::kAuth: {
        // Normally handled in handle_conn (it owns the connection's auth
        // state).  Direct (in-process) dispatch has no connection, so the
        // token is validated statelessly.
        const std::string token = req.str();
        req.expect_done();
        if (!auth_tokens_.empty() && match_token(auth_tokens_, token) == 0) {
          unauthorized_total_->inc();
          return fail(Status::kUnauthorized, "unknown auth token");
        }
        resp.u8(static_cast<std::uint8_t>(Status::kOk));
        break;
      }
      case Op::kReplicate: {
        // Normally short-circuited in handle_conn (the connection becomes
        // a record stream); a dispatch-level REPLICATE has no stream.
        return fail(Status::kBadRequest,
                    "REPLICATE requires a dedicated connection");
      }
      case Op::kPromote: {
        req.expect_done();
        promote();
        resp.u8(static_cast<std::uint8_t>(Status::kOk));
        break;
      }
    }
    return resp.body();
  } catch (const ProtocolError& e) {
    // Body-level garbage inside an intact frame: framing survives, so the
    // connection keeps going after the error answer.
    protocol_errors_->inc();
    return fail(Status::kBadRequest, e.what());
  } catch (const AlreadyExists& e) {
    return fail(Status::kExists, e.what());
  } catch (const std::invalid_argument& e) {
    return fail(Status::kBadRequest, e.what());
  } catch (const runtime::DegradedError& e) {
    // Disk fault parked the pipeline read-only: typed so clients can tell
    // "this node cannot take writes right now" from a generic failure.
    return fail(Status::kDegraded, e.what());
  } catch (const std::exception& e) {
    return fail(Status::kError, e.what());
  }
}

std::vector<char> SheServer::do_query(WireReader& req, OpInfo& info,
                                      ReqCtx ctx) {
  const auto fail = [](Status st, const std::string& msg) {
    WireWriter w;
    w.u8(static_cast<std::uint8_t>(st));
    w.str(msg);
    return w.body();
  };
  const std::string name = req.str();
  const QueryType qt = query_type_from(req.u8());
  info.pipeline = name;
  const auto entry = manager_.find(name);
  if (!entry) return fail(Status::kNotFound, "no pipeline '" + name + "'");
  ConcurrentMonitor& mon = entry->monitor();
  // Aggregate queries (cardinality, top-k) read every shard; the
  // per-handler SnapshotReader cache skips deserialization for shards
  // whose published version has not moved since this thread's last look.
  const auto merged_report = [&](std::size_t top_k) {
    SHE_TRACE_SPAN("query.shard_merge", "server");
    std::vector<MonitorReport> parts;
    parts.reserve(mon.shard_count());
    for (std::size_t s = 0; s < mon.shard_count(); ++s) {
      parts.push_back(cached_shard(*entry, s).report(top_k));
    }
    return MonitorReport::combine(parts, top_k);
  };
  WireWriter resp;
  switch (qt) {
    case QueryType::kMembership: {
      const std::uint64_t key = req.u64();
      req.expect_done();
      SHE_TRACE_SPAN("query.shard_read", "server");
      const bool present = cached_shard(*entry, mon.shard_of(key)).seen(key);
      resp.u8(static_cast<std::uint8_t>(Status::kOk));
      resp.u8(present ? 1 : 0);
      break;
    }
    case QueryType::kFrequency: {
      const std::uint64_t key = req.u64();
      req.expect_done();
      SHE_TRACE_SPAN("query.shard_read", "server");
      resp.u8(static_cast<std::uint8_t>(Status::kOk));
      resp.u64(cached_shard(*entry, mon.shard_of(key)).frequency(key));
      break;
    }
    case QueryType::kCardinality: {
      req.expect_done();
      const MonitorReport rep = merged_report(0);
      if (!rep.cardinality) {
        return fail(Status::kBadRequest,
                    "pipeline '" + name + "' does not track cardinality");
      }
      resp.u8(static_cast<std::uint8_t>(Status::kOk));
      resp.f64(*rep.cardinality);
      break;
    }
    case QueryType::kTopK: {
      const std::uint32_t k = req.u32();
      req.expect_done();
      const MonitorReport rep = merged_report(k);
      resp.u8(static_cast<std::uint8_t>(Status::kOk));
      resp.u32(static_cast<std::uint32_t>(rep.top.size()));
      for (const HeavyHitters::Entry& e : rep.top) {
        resp.u64(e.key);
        resp.u64(e.estimate);
      }
      break;
    }
    case QueryType::kJaccard: {
      const std::string other_name = req.str();
      req.expect_done();
      const auto other = manager_.find(other_name);
      if (!other) {
        return fail(Status::kNotFound, "no pipeline '" + other_name + "'");
      }
      // SHE-MH signatures compare at matching stream times; flush both so
      // the published snapshots reflect everything accepted so far.  The
      // request deadline bounds the barriers like it does FLUSH itself.
      std::size_t timeout_ms = opt_.flush_timeout_ms;
      if (ctx.deadline_ns != 0) {
        const std::int64_t left_ms =
            (ctx.deadline_ns - Clock::now().time_since_epoch().count()) /
            1'000'000;
        if (left_ms <= 0) {
          deadline_shed_total_->inc();
          return fail(Status::kTimeout, "request deadline exceeded");
        }
        timeout_ms =
            std::min<std::size_t>(timeout_ms, static_cast<std::size_t>(left_ms));
      }
      mon.flush(timeout_ms);
      other->monitor().flush(timeout_ms);
      const double j = ConcurrentMonitor::jaccard(mon, other->monitor());
      resp.u8(static_cast<std::uint8_t>(Status::kOk));
      resp.f64(j);
      break;
    }
  }
  return resp.body();
}

}  // namespace she::server
