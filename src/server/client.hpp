// SheClient — typed, deadline-aware client for the she_server protocol.
//
// One TCP connection, one outstanding request at a time (the protocol has
// no request ids; responses come back in order).  Error statuses surface
// as ClientError carrying the wire status and the server's message.  Used
// by `she_tool client`, the server tests, and bench/server_throughput.
//
// Robustness contract (all knobs in ClientOptions; defaults preserve the
// original blocking behavior):
//   - connect_timeout_ms bounds connection establishment (non-blocking
//     connect + poll); io_timeout_ms bounds every socket read/write
//     (SO_RCVTIMEO/SO_SNDTIMEO).  A missed deadline surfaces as IoTimeout
//     and drops the connection — a late response would desynchronize the
//     request/response stream otherwise.
//   - When a send/receive fails mid-request, replay-safe requests
//     (inserts, queries, PING/LIST/STATS) are retried over a fresh
//     connection with exponential backoff.  INSERT/INSERT_BULK are tagged
//     with (client_id, client_seq) on the wire, so a replay of a batch
//     whose ack was lost is deduplicated server-side: acked again,
//     counted once.  State-changing ops (CREATE/DROP/SAVE/FLUSH/
//     SHUTDOWN) are never silently replayed.
//   - kOverloaded answers (admission control) are retried with the same
//     backoff; every other error status propagates immediately.
//   - auth_token, when set, is presented via AUTH on every (re)connect
//     before anything else is sent.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "server/protocol.hpp"

namespace she::server {

/// A non-OK response status, or a transport-level failure.
class ClientError : public std::runtime_error {
 public:
  ClientError(Status status, const std::string& msg)
      : std::runtime_error(msg), status_(status) {}

  [[nodiscard]] Status status() const { return status_; }

 private:
  Status status_;
};

/// Timeout / retry / identity knobs.  The defaults are the legacy
/// behavior: block forever, retry nothing.
struct ClientOptions {
  std::uint64_t connect_timeout_ms = 0;  ///< 0 = blocking connect
  std::uint64_t io_timeout_ms = 0;       ///< 0 = no read/write deadline
  std::string auth_token;                ///< sent as AUTH when non-empty
  /// Reconnect-and-replay attempts for replay-safe requests (0 = fail on
  /// the first transport error, like the legacy client).
  std::size_t max_retries = 0;
  std::uint64_t backoff_initial_ms = 50;  ///< doubles per retry...
  std::uint64_t backoff_max_ms = 2000;    ///< ...up to this ceiling
  /// Idempotence identity prefixed to INSERT/INSERT_BULK; 0 = draw a
  /// random non-zero id per client.  Replays of the same (id, seq) are
  /// deduplicated by the server's per-shard sequence tables.
  std::uint64_t client_id = 0;
};

class SheClient {
 public:
  /// Connect to host:port (IPv4); throws std::runtime_error on failure,
  /// IoTimeout when connect_timeout_ms expires first.
  SheClient(const std::string& host, std::uint16_t port,
            ClientOptions opt = {});

  /// Failover client: candidate endpoints ("host:port"), tried in order
  /// starting from the first that connects.  A transport error — or a
  /// kReadOnly answer from a not-yet-promoted standby — rotates to the
  /// next endpoint before the retry; seq-tagged inserts make the replayed
  /// batch exactly-once on whichever server ends up taking it.
  explicit SheClient(const std::vector<std::string>& endpoints,
                     ClientOptions opt = {});
  ~SheClient();

  SheClient(SheClient&& other) noexcept;
  SheClient& operator=(SheClient&& other) noexcept;
  SheClient(const SheClient&) = delete;
  SheClient& operator=(const SheClient&) = delete;

  void ping();
  void create(const std::string& name, const std::string& spec);
  void drop(const std::string& name);
  void save(const std::string& name);
  void flush(const std::string& name);
  [[nodiscard]] std::vector<std::string> list();
  [[nodiscard]] std::string stats_json(const std::string& name);

  /// Returns how many keys the pipeline accepted (drop-policy pipelines
  /// may accept fewer than sent).  Each call takes the next client_seq;
  /// internal replays reuse it, so a retried batch is counted once.
  std::uint64_t insert(const std::string& name, std::uint64_t key);
  std::uint64_t insert_bulk(const std::string& name,
                            std::span<const std::uint64_t> keys);

  [[nodiscard]] bool query_membership(const std::string& name,
                                      std::uint64_t key);
  [[nodiscard]] std::uint64_t query_frequency(const std::string& name,
                                              std::uint64_t key);
  [[nodiscard]] double query_cardinality(const std::string& name);
  [[nodiscard]] std::vector<std::pair<std::uint64_t, std::uint64_t>>
  query_topk(const std::string& name, std::uint32_t k);
  [[nodiscard]] double query_jaccard(const std::string& name,
                                     const std::string& other);

  /// Ask the server to begin its shutdown sequence (acknowledged first).
  void shutdown_server();

  /// Standby → primary: drain the replication stream and start taking
  /// writes.  Idempotent (a primary answers OK without doing anything).
  void promote();

  /// Send a raw, possibly malformed body and return the raw response body
  /// (status byte included).  For protocol tests; reconnects when needed
  /// but never retries.
  std::vector<char> roundtrip_raw(std::span<const char> body);

  /// Tag every subsequent request with a trace id (prefixed on the wire
  /// as the optional kTraceHeader field); 0 restores untraced requests.
  /// A traced server stitches its spans for the request to this id.
  void set_trace_id(std::uint64_t id) { trace_id_ = id; }
  [[nodiscard]] std::uint64_t trace_id() const { return trace_id_; }

  /// The idempotence identity inserts are tagged with.
  [[nodiscard]] std::uint64_t client_id() const { return client_id_; }
  /// client_seq of the most recent insert/insert_bulk (0 = none yet).
  [[nodiscard]] std::uint64_t last_seq() const { return seq_; }

  [[nodiscard]] int fd() const { return fd_; }

 private:
  /// Establish a connection to some endpoint (bounded by
  /// connect_timeout_ms per endpoint), apply the io deadline to the fd,
  /// and present the auth token when configured.  Tries endpoints
  /// round-robin starting at current_; throws the last failure when none
  /// answers.
  void connect_now();
  void connect_endpoint(const std::string& host, std::uint16_t port);
  void disconnect() noexcept;

  /// Send `body` (headers included) and read one response frame.
  std::vector<char> exchange_raw(std::span<const char> body);

  /// Send `req` prefixed with the trace/seq headers, parse the status,
  /// throw ClientError on non-OK, return the payload after the status
  /// byte.  Reconnects and replays per the options when `replayable`.
  std::vector<char> roundtrip(const WireWriter& req, bool replayable,
                              ClientSeq cs = {});

  /// Rotate current_ to the next endpoint (no-op with one endpoint).
  void rotate() noexcept;

  std::vector<std::pair<std::string, std::uint16_t>> endpoints_;
  std::size_t current_ = 0;  ///< index of the endpoint fd_ points at
  ClientOptions opt_;
  int fd_ = -1;
  std::uint64_t trace_id_ = 0;
  std::uint64_t client_id_ = 0;
  std::uint64_t seq_ = 0;
};

}  // namespace she::server
