// SheClient — typed, blocking client for the she_server protocol.
//
// One TCP connection, one outstanding request at a time (the protocol has
// no request ids; responses come back in order).  Error statuses surface
// as ClientError carrying the wire status and the server's message.  Used
// by `she_tool client`, the server tests, and bench/server_throughput.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "server/protocol.hpp"

namespace she::server {

/// A non-OK response status, or a transport-level failure.
class ClientError : public std::runtime_error {
 public:
  ClientError(Status status, const std::string& msg)
      : std::runtime_error(msg), status_(status) {}

  [[nodiscard]] Status status() const { return status_; }

 private:
  Status status_;
};

class SheClient {
 public:
  /// Connect to host:port (IPv4); throws std::runtime_error on failure.
  SheClient(const std::string& host, std::uint16_t port);
  ~SheClient();

  SheClient(SheClient&& other) noexcept;
  SheClient& operator=(SheClient&& other) noexcept;
  SheClient(const SheClient&) = delete;
  SheClient& operator=(const SheClient&) = delete;

  void ping();
  void create(const std::string& name, const std::string& spec);
  void drop(const std::string& name);
  void save(const std::string& name);
  void flush(const std::string& name);
  [[nodiscard]] std::vector<std::string> list();
  [[nodiscard]] std::string stats_json(const std::string& name);

  /// Returns how many keys the pipeline accepted (drop-policy pipelines
  /// may accept fewer than sent).
  std::uint64_t insert(const std::string& name, std::uint64_t key);
  std::uint64_t insert_bulk(const std::string& name,
                            std::span<const std::uint64_t> keys);

  [[nodiscard]] bool query_membership(const std::string& name,
                                      std::uint64_t key);
  [[nodiscard]] std::uint64_t query_frequency(const std::string& name,
                                              std::uint64_t key);
  [[nodiscard]] double query_cardinality(const std::string& name);
  [[nodiscard]] std::vector<std::pair<std::uint64_t, std::uint64_t>>
  query_topk(const std::string& name, std::uint32_t k);
  [[nodiscard]] double query_jaccard(const std::string& name,
                                     const std::string& other);

  /// Ask the server to begin its shutdown sequence (acknowledged first).
  void shutdown_server();

  /// Send a raw, possibly malformed body and return the raw response body
  /// (status byte included).  For protocol tests.
  std::vector<char> roundtrip_raw(std::span<const char> body);

  /// Tag every subsequent request with a trace id (prefixed on the wire
  /// as the optional kTraceHeader field); 0 restores untraced requests.
  /// A traced server stitches its spans for the request to this id.
  void set_trace_id(std::uint64_t id) { trace_id_ = id; }
  [[nodiscard]] std::uint64_t trace_id() const { return trace_id_; }

  [[nodiscard]] int fd() const { return fd_; }

 private:
  /// Send `body` (with the trace header when a trace id is set), read the
  /// response, throw ClientError on non-OK, return the payload after the
  /// status byte.
  std::vector<char> roundtrip(const WireWriter& req);

  int fd_ = -1;
  std::uint64_t trace_id_ = 0;
};

}  // namespace she::server
