#include "server/http.hpp"

namespace she::server {

std::optional<HttpRequest> parse_http_request(std::string_view head) {
  const std::size_t eol = head.find("\r\n");
  std::string_view line = eol == std::string_view::npos ? head
                                                        : head.substr(0, eol);
  const std::size_t sp1 = line.find(' ');
  if (sp1 == std::string_view::npos || sp1 == 0) return std::nullopt;
  const std::size_t sp2 = line.find(' ', sp1 + 1);
  if (sp2 == std::string_view::npos || sp2 == sp1 + 1) return std::nullopt;
  if (line.substr(sp2 + 1).rfind("HTTP/", 0) != 0) return std::nullopt;
  HttpRequest req;
  req.method = std::string(line.substr(0, sp1));
  req.target = std::string(line.substr(sp1 + 1, sp2 - sp1 - 1));
  return req;
}

std::string http_response(int status, std::string_view reason,
                          std::string_view content_type,
                          std::string_view body) {
  std::string out = "HTTP/1.1 " + std::to_string(status) + ' ';
  out += reason;
  out += "\r\nContent-Type: ";
  out += content_type;
  out += "\r\nContent-Length: " + std::to_string(body.size());
  out += "\r\nConnection: close\r\n\r\n";
  out += body;
  return out;
}

}  // namespace she::server
