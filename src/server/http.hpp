// Minimal HTTP/1.1 support for the metrics endpoint — just enough to
// serve `GET /metrics` and `GET /healthz` to Prometheus and curl.  One
// request per connection (`Connection: close`), request headers are read
// and discarded, bodies are not supported.
#pragma once

#include <optional>
#include <string>
#include <string_view>

namespace she::server {

struct HttpRequest {
  std::string method;  ///< e.g. "GET"
  std::string target;  ///< e.g. "/metrics" (query string kept verbatim)
};

/// Parse the request line out of a raw header block ("METHOD SP target SP
/// version CRLF ...").  nullopt when it is not recognizably HTTP.
[[nodiscard]] std::optional<HttpRequest> parse_http_request(
    std::string_view head);

/// Render a full response: status line, Content-Type/-Length,
/// `Connection: close`, blank line, body.
[[nodiscard]] std::string http_response(int status, std::string_view reason,
                                        std::string_view content_type,
                                        std::string_view body);

}  // namespace she::server
