// Hot-standby replication: survive node death without losing the window.
//
// A standby `she_server --role standby --follow host:port` opens one
// REPLICATE connection to the primary and never lets go:
//
//   standby ──REPLICATE──▶ primary            (one protocol frame)
//   standby ◀──kOk──────── primary            (stream begins)
//   standby ◀──kFile*──────                   bootstrap: spec + shard-N.ckpt
//   standby ◀──kPipelineDone(name, spec)──    generations + shard-N.wal,
//   standby ◀──kBootstrapDone──               shipped verbatim per pipeline
//   standby ◀──kWal/kCreate/kDrop/kHeartbeat  live tail, forever
//
// Bootstrap is *file shipping*: the primary reads each pipeline's durable
// checkpoint frames and backlog log off disk and sends the bytes as-is —
// the CRC-framed "SHCP"/"SHWL" formats are already torn-tail-tolerant
// wire formats, and the standby resumes from them through the exact code
// path a crash-restart uses (estimator state, stream offsets, per-shard
// client sequence tables all restored).  The live tail then rides the
// per-shard WAL append observer: every durable data frame the primary
// appends is fanned out, in log order, to every subscriber.
//
// The race between the file snapshot and the live stream is closed by
// subscribing FIRST: a frame appended during bootstrap is both in the
// shipped file and in the queue, and the standby deduplicates by *offset*
// (frames whose end_offset is at or below the shard's applied offset are
// skipped), so the overlap is harmless.  Offsets — not WAL seq numbers —
// are the replication identity because compaction renumbers seqs while
// offsets only ever grow.
//
// The standby applies each frame through its own pipeline's WAL lane
// (Entry::insert_bulk with the frame's client identity), so the standby
// keeps its own durable WAL + checkpoints + dedup tables: after PROMOTE,
// replaying clients are still exactly-once, and a promoted server can
// itself be followed by a fresh standby.
//
// Lag is visible end to end: the primary heartbeats its per-(pipeline,
// shard) log end offsets every ~500 ms; the standby exports
// she_replica_lag_items = Σ max(0, primary_end − applied).
//
// Scope: live tailing requires the pipeline's WAL (wal mode != off).  A
// durable pipeline without a WAL is bootstrapped at checkpoint
// granularity and then only advances on the standby at the next
// re-bootstrap (reconnect); run replicated pipelines with wal=async or
// wal=fsync.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/wal.hpp"
#include "obs/metrics.hpp"

namespace she::server {

class PipelineManager;

/// One REPLICATE stream record = one protocol frame, first byte the type.
enum class ReplRecord : std::uint8_t {
  kFile = 1,          ///< [str pipeline][str relpath][u8 last][str chunk]
  kPipelineDone = 2,  ///< [str pipeline][str spec_text] — adopt + resume now
  kBootstrapDone = 3, ///< [] — everything resident at subscribe time shipped
  kWal = 4,           ///< [str pipeline][u32 shard][str encoded SHWL frame]
  kCreate = 5,        ///< [str pipeline][str spec_text] — live CREATE
  kDrop = 6,          ///< [str pipeline] — live DROP
  kHeartbeat = 7,     ///< [u32 n] n×([str pipeline][u32 shard][u64 end_off])
};

inline constexpr std::uint64_t kReplicationProtoVersion = 1;
/// File-shipping chunk size; comfortably under kMaxFrameBytes.
inline constexpr std::size_t kReplFileChunk = std::size_t{4} << 20;

/// Fan-out point between the primary's WAL appends and its REPLICATE
/// connections.  publish_wal runs under the shard's append lock (the
/// observer contract), so it only ever enqueues: each subscriber owns a
/// bounded queue the connection thread drains onto its socket.  A
/// subscriber that falls further behind than its byte bound is marked
/// overflowed and its connection dropped — the standby reconnects and
/// re-bootstraps from files, which is always correct and never blocks
/// the ingest path.
class ReplicationHub {
 public:
  struct Subscription {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<std::vector<char>> q;  ///< encoded records, oldest first
    std::size_t queued_bytes = 0;
    std::size_t max_bytes = std::size_t{64} << 20;
    bool overflowed = false;  ///< queue blew the bound; conn must drop
    bool closed = false;      ///< hub/connection is going away
  };

  explicit ReplicationHub(obs::Registry& registry);

  [[nodiscard]] std::shared_ptr<Subscription> subscribe();
  void unsubscribe(const std::shared_ptr<Subscription>& sub);
  [[nodiscard]] std::size_t subscriber_count() const;

  /// Observer entry (per-shard append lock held): enqueue the encoded
  /// frame for every subscriber and advance the shard's end offset.
  void publish_wal(const std::string& pipeline, std::size_t shard,
                   const WalFrame& frame, std::span<const char> encoded);
  void publish_create(const std::string& pipeline, const std::string& spec);
  void publish_drop(const std::string& pipeline);

  /// Encoded kHeartbeat record with the current per-(pipeline, shard)
  /// log end offsets (what the standby computes lag against).
  [[nodiscard]] std::vector<char> heartbeat_record() const;

 private:
  void broadcast(std::vector<char> rec);

  mutable std::mutex mu_;
  std::vector<std::shared_ptr<Subscription>> subs_;
  std::atomic<std::size_t> nsubs_{0};  ///< fast no-subscriber early-out
  std::map<std::pair<std::string, std::size_t>, std::uint64_t> end_offsets_;
  obs::Counter* records_total_;
  obs::Counter* bytes_total_;
  obs::Counter* overflows_total_;
  obs::Gauge* subscribers_gauge_;
};

struct ReplicaClientOptions {
  std::vector<std::string> endpoints;  ///< primary candidates, "host:port"
  std::string auth_token;              ///< AUTH before REPLICATE when set
  std::size_t backoff_initial_ms = 200;
  std::size_t backoff_max_ms = 5000;
};

/// The standby side: one background thread that follows the configured
/// endpoints (rotating on failure), bootstraps, applies the live tail
/// through the local PipelineManager, and reports lag.  promote() drains
/// whatever the socket already holds, stops following, and returns — the
/// server then flips itself to primary.
class ReplicaClient {
 public:
  ReplicaClient(ReplicaClientOptions opt, PipelineManager& manager,
                obs::Registry& registry);
  ~ReplicaClient();  ///< stop() without draining

  ReplicaClient(const ReplicaClient&) = delete;
  ReplicaClient& operator=(const ReplicaClient&) = delete;

  void start();

  /// Drain the records already received (bounded by `drain_ms`), then
  /// stop following.  Idempotent; safe from any thread.
  void promote(std::size_t drain_ms = 2000);

  /// Stop following without the drain courtesy (shutdown path).
  void stop();

  [[nodiscard]] bool connected() const {
    return connected_.load(std::memory_order_acquire);
  }
  /// At least one full bootstrap completed since start().
  [[nodiscard]] bool synced() const {
    return synced_.load(std::memory_order_acquire);
  }
  /// Σ max(0, primary_end − applied) over every known (pipeline, shard).
  [[nodiscard]] std::uint64_t lag_items() const;

 private:
  void run();
  /// One connect → bootstrap → tail session; returns when the connection
  /// died or stop/promote was requested.  True when the session reached
  /// the streaming phase (resets the reconnect backoff).
  bool follow_once(const std::string& host, std::uint16_t port);
  void handle_record(std::span<const char> body);
  void refresh_lag();  ///< mu_ held
  void join_thread();

  ReplicaClientOptions opt_;
  PipelineManager& manager_;
  std::thread thread_;
  std::mutex join_mu_;  ///< promote() and stop() may race to join
  std::atomic<bool> stop_{false};
  std::atomic<bool> promoting_{false};
  std::atomic<std::size_t> drain_ms_{2000};
  std::atomic<bool> connected_{false};
  std::atomic<bool> synced_{false};
  std::atomic<int> fd_{-1};  ///< live session socket, for shutdown()

  mutable std::mutex mu_;  ///< applied_/primary_end_/bootstrap file state
  std::map<std::pair<std::string, std::size_t>, std::uint64_t> applied_;
  std::map<std::pair<std::string, std::size_t>, std::uint64_t> primary_end_;
  /// Bootstrap file currently being received (records arrive file by
  /// file) and the set of pipelines whose stale local state was cleared.
  std::string cur_path_;
  std::unique_ptr<std::FILE, int (*)(std::FILE*)> cur_file_{nullptr,
                                                            std::fclose};
  std::vector<std::string> bootstrapped_;

  obs::Counter* frames_applied_;
  obs::Counter* bytes_applied_;
  obs::Counter* dup_frames_;
  obs::Counter* reconnects_;
  obs::Gauge* connected_gauge_;
  obs::Gauge* synced_gauge_;
  obs::Gauge* lag_gauge_;
};

/// Parse "host:port" (host may be empty → 127.0.0.1); throws
/// std::invalid_argument on a malformed endpoint.
[[nodiscard]] std::pair<std::string, std::uint16_t> parse_endpoint(
    const std::string& text);

/// Primary side of one REPLICATE connection: subscribe to the hub FIRST
/// (so nothing appended during bootstrap can be missed), ship every
/// resident pipeline's files, then stream the subscription until the peer
/// dies, the queue overflows, or `stopping` returns true.  Sends records
/// only — the caller has already answered the REPLICATE request with kOk.
/// Socket errors just end the stream (the standby reconnects).
void serve_replication(int fd, PipelineManager& manager, ReplicationHub& hub,
                       const std::function<bool()>& stopping);

}  // namespace she::server
