// she_server — run the SHE sketch service.
//
//   she_server [--host A.B.C.D] [--port N] [--http-port N]
//              [--checkpoint-root DIR] [--checkpoint-keep K]
//              [--resume] [--max-conns N] [--flush-timeout-ms N]
//
// Prints one machine-parseable line per listener once bound:
//
//   she_server listening proto=<port> http=<port>
//
// then serves until SIGTERM/SIGINT or a SHUTDOWN request, checkpointing
// every pipeline on the way down.  Exit code 0 on a clean shutdown.
#include <cstring>
#include <iostream>
#include <stdexcept>
#include <string>

#include "runtime/fault_injection.hpp"
#include "server/server.hpp"

namespace {

void usage(std::ostream& os) {
  os << "usage: she_server [options]\n"
        "  --host ADDR            IPv4 listen address (default 127.0.0.1)\n"
        "  --port N               protocol port (default 7070; 0 = "
        "ephemeral)\n"
        "  --http-port N          /metrics + /healthz port (default 7071;\n"
        "                         0 = ephemeral, -1 = disabled)\n"
        "  --checkpoint-root DIR  durable state root (default: none)\n"
        "  --checkpoint-keep K    frame generations kept per shard "
        "(default 1)\n"
        "  --resume               resume pipelines found under the root\n"
        "  --max-conns N          concurrent protocol connections "
        "(default 256)\n"
        "  --flush-timeout-ms N   FLUSH/SAVE barrier bound (default "
        "10000)\n"
        "  --trace                collect request/pipeline spans; export "
        "via\n"
        "                         GET /trace[?ms=N] (Chrome trace JSON)\n"
        "  --trace-sample N       with --trace, record spans for 1 in N\n"
        "                         requests (default 1 = every request)\n"
        "  --slow-ms N            log requests slower than N ms with a "
        "span\n"
        "                         breakdown (default 0 = off)\n"
        "  --wal-mode MODE        backlog-log default for durable pipelines:\n"
        "                         off | async | fsync (default off; needs\n"
        "                         --checkpoint-root)\n"
        "  --wal-fsync-bytes N    group-commit bound for --wal-mode fsync:\n"
        "                         fdatasync at least every N appended bytes\n"
        "                         (default 0 = every append)\n"
        "  --auth-token-file F    require AUTH with a token from F (one per\n"
        "                         line) before any other op\n"
        "  --request-deadline-ms N  shed requests still working after N ms\n"
        "                         with status timeout (default 0 = off)\n"
        "  --max-inflight N       global concurrent-request cap; excess is\n"
        "                         answered overloaded (default 0 = off)\n"
        "  --max-inflight-per-client N  same cap per authenticated client\n"
        "  --bytes-per-sec N      global request-byte budget; excess is\n"
        "                         answered overloaded (default 0 = off)\n"
        "  --bytes-per-sec-per-client N  same budget per authenticated "
        "client\n"
        "  --inject SPEC          arm a fault-injection spec "
        "(point[:shard[:at[:param]]]);\n"
        "                         repeatable; needs an SHE_FAULT_INJECTION "
        "build\n"
        "  --role ROLE            primary (default) or standby; standby\n"
        "                         follows --follow, serves reads, answers\n"
        "                         writes read_only until PROMOTE/SIGUSR2\n"
        "  --follow HOST:PORT     primary endpoint to replicate from\n"
        "                         (repeatable or comma-separated; requires\n"
        "                         --role standby and --checkpoint-root)\n"
        "  --follow-token TOK     AUTH token presented to the primary\n"
        "  --help\n";
}

bool parse_u64(const char* s, std::uint64_t* out) {
  try {
    std::size_t end = 0;
    *out = std::stoull(s, &end);
    return end == std::strlen(s);
  } catch (const std::exception&) {
    return false;
  }
}

bool parse_i64(const char* s, long long* out) {
  try {
    std::size_t end = 0;
    *out = std::stoll(s, &end);
    return end == std::strlen(s);
  } catch (const std::exception&) {
    return false;
  }
}

}  // namespace

int main(int argc, char** argv) {
  she::server::ServerOptions opt;
  opt.port = 7070;
  opt.http_port = 7071;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "she_server: " << arg << " requires a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    std::uint64_t u = 0;
    long long ll = 0;
    if (arg == "--help" || arg == "-h") {
      usage(std::cout);
      return 0;
    } else if (arg == "--host") {
      opt.host = value();
    } else if (arg == "--port") {
      if (!parse_u64(value(), &u) || u > 65535) {
        std::cerr << "she_server: bad --port\n";
        return 2;
      }
      opt.port = static_cast<std::uint16_t>(u);
    } else if (arg == "--http-port") {
      if (!parse_i64(value(), &ll) || ll < -1 || ll > 65535) {
        std::cerr << "she_server: bad --http-port\n";
        return 2;
      }
      opt.http_port = static_cast<int>(ll);
    } else if (arg == "--checkpoint-root") {
      opt.manager.checkpoint_root = value();
    } else if (arg == "--checkpoint-keep") {
      if (!parse_u64(value(), &u) || u == 0) {
        std::cerr << "she_server: bad --checkpoint-keep (want >= 1)\n";
        return 2;
      }
      opt.manager.checkpoint_keep = u;
    } else if (arg == "--resume") {
      opt.manager.resume = true;
    } else if (arg == "--max-conns") {
      if (!parse_u64(value(), &u) || u == 0) {
        std::cerr << "she_server: bad --max-conns\n";
        return 2;
      }
      opt.max_connections = u;
    } else if (arg == "--flush-timeout-ms") {
      if (!parse_u64(value(), &u)) {
        std::cerr << "she_server: bad --flush-timeout-ms\n";
        return 2;
      }
      opt.flush_timeout_ms = u;
    } else if (arg == "--trace") {
      opt.enable_tracing = true;
    } else if (arg == "--trace-sample") {
      if (!parse_u64(value(), &u) || u == 0) {
        std::cerr << "she_server: bad --trace-sample (want >= 1)\n";
        return 2;
      }
      opt.trace_sample = u;
    } else if (arg == "--slow-ms") {
      if (!parse_u64(value(), &u)) {
        std::cerr << "she_server: bad --slow-ms\n";
        return 2;
      }
      opt.slow_request_ms = u;
    } else if (arg == "--wal-mode") {
      try {
        opt.manager.default_wal_mode = she::wal_mode_from(value());
      } catch (const std::exception& e) {
        std::cerr << "she_server: " << e.what() << "\n";
        return 2;
      }
    } else if (arg == "--wal-fsync-bytes") {
      if (!parse_u64(value(), &u)) {
        std::cerr << "she_server: bad --wal-fsync-bytes\n";
        return 2;
      }
      opt.manager.wal_fsync_bytes = static_cast<std::size_t>(u);
    } else if (arg == "--auth-token-file") {
      opt.auth_token_file = value();
    } else if (arg == "--request-deadline-ms") {
      if (!parse_u64(value(), &u)) {
        std::cerr << "she_server: bad --request-deadline-ms\n";
        return 2;
      }
      opt.request_deadline_ms = u;
    } else if (arg == "--max-inflight") {
      if (!parse_u64(value(), &u)) {
        std::cerr << "she_server: bad --max-inflight\n";
        return 2;
      }
      opt.max_inflight = static_cast<std::size_t>(u);
    } else if (arg == "--max-inflight-per-client") {
      if (!parse_u64(value(), &u)) {
        std::cerr << "she_server: bad --max-inflight-per-client\n";
        return 2;
      }
      opt.max_inflight_per_client = static_cast<std::size_t>(u);
    } else if (arg == "--bytes-per-sec") {
      if (!parse_u64(value(), &u)) {
        std::cerr << "she_server: bad --bytes-per-sec\n";
        return 2;
      }
      opt.bytes_per_sec = u;
    } else if (arg == "--bytes-per-sec-per-client") {
      if (!parse_u64(value(), &u)) {
        std::cerr << "she_server: bad --bytes-per-sec-per-client\n";
        return 2;
      }
      opt.bytes_per_sec_per_client = u;
    } else if (arg == "--role") {
      opt.role = value();
    } else if (arg == "--follow") {
      // Repeatable, and each value may carry a comma-separated list.
      std::string list = value();
      std::size_t pos = 0;
      while (pos <= list.size()) {
        const std::size_t comma = list.find(',', pos);
        const std::string one =
            list.substr(pos, comma == std::string::npos ? comma : comma - pos);
        if (!one.empty()) opt.follow.push_back(one);
        if (comma == std::string::npos) break;
        pos = comma + 1;
      }
    } else if (arg == "--follow-token") {
      opt.follow_token = value();
    } else if (arg == "--inject") {
#if defined(SHE_FAULT_INJECTION)
      try {
        she::runtime::fault::injector().arm(
            she::runtime::fault::parse_spec(value()));
      } catch (const std::exception& e) {
        std::cerr << "she_server: bad --inject: " << e.what() << "\n";
        return 2;
      }
#else
      std::cerr << "she_server: --inject " << value()
                << " ignored: this build has no SHE_FAULT_INJECTION "
                   "harness\n";
      return 2;
#endif
    } else {
      std::cerr << "she_server: unknown option " << arg << "\n";
      usage(std::cerr);
      return 2;
    }
  }
  if (opt.manager.resume && opt.manager.checkpoint_root.empty()) {
    std::cerr << "she_server: --resume requires --checkpoint-root\n";
    return 2;
  }
  if (opt.manager.default_wal_mode != she::WalMode::kOff &&
      opt.manager.checkpoint_root.empty()) {
    std::cerr << "she_server: --wal-mode requires --checkpoint-root\n";
    return 2;
  }
  if (opt.role == "standby" && opt.manager.checkpoint_root.empty()) {
    std::cerr << "she_server: --role standby requires --checkpoint-root "
                 "(bootstrap lands the primary's files there)\n";
    return 2;
  }

  try {
    const std::string role = opt.role;
    she::server::SheServer server(std::move(opt));
    server.start();
    server.install_signal_handlers();
    std::cout << "she_server listening proto=" << server.port()
              << " http=" << server.http_port() << " role=" << role
              << std::endl;
    server.wait();
  } catch (const std::exception& e) {
    std::cerr << "she_server: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
