#include "server/replica.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <iostream>

#include "server/pipeline_manager.hpp"
#include "server/protocol.hpp"

namespace she::server {
namespace fs = std::filesystem;

namespace {

std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

// -------------------------------------------------------- ReplicationHub --

ReplicationHub::ReplicationHub(obs::Registry& registry)
    : records_total_(&registry.counter(
          "she_repl_records_total",
          "replication records fanned out to REPLICATE subscribers")),
      bytes_total_(&registry.counter(
          "she_repl_bytes_total",
          "encoded replication record bytes fanned out to subscribers")),
      overflows_total_(&registry.counter(
          "she_repl_subscriber_overflows_total",
          "subscriber queues dropped for exceeding their byte bound")),
      subscribers_gauge_(&registry.gauge(
          "she_repl_subscribers", "live REPLICATE subscriber connections")) {}

std::shared_ptr<ReplicationHub::Subscription> ReplicationHub::subscribe() {
  auto sub = std::make_shared<Subscription>();
  std::lock_guard<std::mutex> lk(mu_);
  subs_.push_back(sub);
  nsubs_.store(subs_.size(), std::memory_order_release);
  subscribers_gauge_->set(static_cast<std::int64_t>(subs_.size()));
  return sub;
}

void ReplicationHub::unsubscribe(const std::shared_ptr<Subscription>& sub) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    subs_.erase(std::remove(subs_.begin(), subs_.end(), sub), subs_.end());
    nsubs_.store(subs_.size(), std::memory_order_release);
    subscribers_gauge_->set(static_cast<std::int64_t>(subs_.size()));
  }
  std::lock_guard<std::mutex> lk(sub->mu);
  sub->closed = true;
  sub->cv.notify_all();
}

std::size_t ReplicationHub::subscriber_count() const {
  return nsubs_.load(std::memory_order_acquire);
}

void ReplicationHub::broadcast(std::vector<char> rec) {
  std::lock_guard<std::mutex> lk(mu_);
  for (const auto& sub : subs_) {
    std::lock_guard<std::mutex> slk(sub->mu);
    if (sub->closed || sub->overflowed) continue;
    if (sub->queued_bytes + rec.size() > sub->max_bytes) {
      // A standby this far behind re-bootstraps from files after the
      // dropped connection — always correct, never blocks the primary.
      sub->overflowed = true;
      overflows_total_->inc();
      sub->cv.notify_all();
      continue;
    }
    sub->q.push_back(rec);
    sub->queued_bytes += rec.size();
    records_total_->inc();
    bytes_total_->inc(rec.size());
    sub->cv.notify_one();
  }
}

void ReplicationHub::publish_wal(const std::string& pipeline,
                                 std::size_t shard, const WalFrame& frame,
                                 std::span<const char> encoded) {
  // The one cost an unreplicated server pays per durable append.
  if (nsubs_.load(std::memory_order_relaxed) == 0) return;
  {
    std::lock_guard<std::mutex> lk(mu_);
    auto& off = end_offsets_[{pipeline, shard}];
    if (frame.end_offset() > off) off = frame.end_offset();
  }
  WireWriter w;
  w.u8(static_cast<std::uint8_t>(ReplRecord::kWal));
  w.str(pipeline);
  w.u32(static_cast<std::uint32_t>(shard));
  w.str(std::string_view(encoded.data(), encoded.size()));
  broadcast(w.body());
}

void ReplicationHub::publish_create(const std::string& pipeline,
                                    const std::string& spec) {
  if (nsubs_.load(std::memory_order_relaxed) == 0) return;
  WireWriter w;
  w.u8(static_cast<std::uint8_t>(ReplRecord::kCreate));
  w.str(pipeline);
  w.str(spec);
  broadcast(w.body());
}

void ReplicationHub::publish_drop(const std::string& pipeline) {
  {
    // Offsets for a dropped pipeline must not linger in heartbeats even
    // when nobody is currently subscribed.
    std::lock_guard<std::mutex> lk(mu_);
    for (auto it = end_offsets_.begin(); it != end_offsets_.end();) {
      it = it->first.first == pipeline ? end_offsets_.erase(it)
                                       : std::next(it);
    }
  }
  if (nsubs_.load(std::memory_order_relaxed) == 0) return;
  WireWriter w;
  w.u8(static_cast<std::uint8_t>(ReplRecord::kDrop));
  w.str(pipeline);
  broadcast(w.body());
}

std::vector<char> ReplicationHub::heartbeat_record() const {
  std::lock_guard<std::mutex> lk(mu_);
  WireWriter w;
  w.u8(static_cast<std::uint8_t>(ReplRecord::kHeartbeat));
  w.u32(static_cast<std::uint32_t>(end_offsets_.size()));
  for (const auto& [key, off] : end_offsets_) {
    w.str(key.first);
    w.u32(static_cast<std::uint32_t>(key.second));
    w.u64(off);
  }
  return w.body();
}

// ----------------------------------------------------- primary-side serve --

namespace {

/// Ship one file as a run of kFile records (≥ 1 even when empty).
void ship_file(int fd, const std::string& pipeline, const std::string& rel,
               const fs::path& full) {
  std::ifstream in(full, std::ios::binary);
  if (!in) return;  // rotated away since the directory listing; skip
  std::vector<char> buf(kReplFileChunk);
  for (;;) {
    in.read(buf.data(), static_cast<std::streamsize>(buf.size()));
    const std::size_t n = static_cast<std::size_t>(in.gcount());
    const bool last = n < buf.size();
    WireWriter w;
    w.u8(static_cast<std::uint8_t>(ReplRecord::kFile));
    w.str(pipeline);
    w.str(rel);
    w.u8(last ? 1 : 0);
    w.str(std::string_view(buf.data(), n));
    write_frame(fd, w.body());
    if (last) break;
  }
}

/// Ship a pipeline directory, WAL files FIRST.  Read order matters: a
/// checkpoint taken after our WAL read can only be AHEAD of the shipped
/// log, and the frames covering that gap were appended after the hub
/// subscription, so they arrive on the live stream; reading checkpoints
/// first would let a concurrent compaction retire frames the shipped
/// (older) checkpoint still needs.
void ship_dir(int fd, const std::string& pipeline, const std::string& dir) {
  std::vector<std::pair<int, fs::path>> files;
  std::error_code ec;
  for (fs::directory_iterator it(dir, ec), end; !ec && it != end;
       it.increment(ec)) {
    std::error_code fec;
    if (!it->is_regular_file(fec)) continue;
    const std::string name = it->path().filename().string();
    if (name.empty() || name[0] == '.') continue;
    const bool is_wal =
        name.size() > 4 && name.compare(name.size() - 4, 4, ".wal") == 0;
    files.emplace_back(is_wal ? 0 : 1, it->path());
  }
  std::stable_sort(files.begin(), files.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  for (const auto& [rank, path] : files) {
    ship_file(fd, pipeline, path.filename().string(), path);
  }
}

}  // namespace

void serve_replication(int fd, PipelineManager& manager, ReplicationHub& hub,
                       const std::function<bool()>& stopping) {
  const auto sub = hub.subscribe();
  try {
    // Subscribe-first (above) closes the snapshot/stream race: anything
    // appended from here on is queued, anything before it is in the files.
    for (const auto& item : manager.bootstrap_snapshot()) {
      if (!item.dir.empty()) ship_dir(fd, item.name, item.dir);
      WireWriter done;
      done.u8(static_cast<std::uint8_t>(ReplRecord::kPipelineDone));
      done.str(item.name);
      done.str(item.spec_text);
      write_frame(fd, done.body());
    }
    WireWriter bdone;
    bdone.u8(static_cast<std::uint8_t>(ReplRecord::kBootstrapDone));
    write_frame(fd, bdone.body());

    for (;;) {
      std::vector<std::vector<char>> batch;
      bool dead = false;
      {
        std::unique_lock<std::mutex> lk(sub->mu);
        sub->cv.wait_for(lk, std::chrono::milliseconds(500), [&] {
          return !sub->q.empty() || sub->closed || sub->overflowed;
        });
        dead = sub->closed || sub->overflowed;
        while (!sub->q.empty()) {
          batch.push_back(std::move(sub->q.front()));
          sub->queued_bytes -= batch.back().size();
          sub->q.pop_front();
        }
      }
      for (const auto& rec : batch) write_frame(fd, rec);
      if (dead || (stopping && stopping())) break;
      // Idle connection: heartbeat so the standby can compute lag (and
      // notice a dead primary by silence).
      if (batch.empty()) write_frame(fd, hub.heartbeat_record());
    }
  } catch (const std::exception&) {
    // Peer gone mid-stream: normal standby churn, nothing to do.
  }
  hub.unsubscribe(sub);
}

// --------------------------------------------------------- ReplicaClient --

std::pair<std::string, std::uint16_t> parse_endpoint(const std::string& text) {
  const std::size_t colon = text.rfind(':');
  if (colon == std::string::npos) {
    throw std::invalid_argument("endpoint must be host:port: '" + text + "'");
  }
  std::string host = text.substr(0, colon);
  if (host.empty()) host = "127.0.0.1";
  const std::string ptext = text.substr(colon + 1);
  std::size_t end = 0;
  unsigned long port = 0;
  try {
    port = std::stoul(ptext, &end);
  } catch (const std::exception&) {
    end = 0;
  }
  if (end != ptext.size() || ptext.empty() || port == 0 || port > 65535) {
    throw std::invalid_argument("bad port in endpoint '" + text + "'");
  }
  return {std::move(host), static_cast<std::uint16_t>(port)};
}

ReplicaClient::ReplicaClient(ReplicaClientOptions opt,
                             PipelineManager& manager, obs::Registry& registry)
    : opt_(std::move(opt)),
      manager_(manager),
      frames_applied_(&registry.counter(
          "she_replica_frames_applied_total",
          "replicated WAL frames applied to local pipelines")),
      bytes_applied_(&registry.counter(
          "she_replica_bytes_applied_total",
          "encoded bytes of replicated WAL frames applied")),
      dup_frames_(&registry.counter(
          "she_replica_dup_frames_total",
          "replicated frames skipped as already applied (offset overlap)")),
      reconnects_(&registry.counter(
          "she_replica_reconnects_total",
          "replication sessions established (first connect included)")),
      connected_gauge_(&registry.gauge(
          "she_replica_connected", "1 while following a primary")),
      synced_gauge_(&registry.gauge(
          "she_replica_synced", "1 once a full bootstrap has completed")),
      lag_gauge_(&registry.gauge(
          "she_replica_lag_items",
          "items the primary has logged that this standby has not applied")) {
  if (opt_.endpoints.empty()) {
    throw std::invalid_argument("standby needs at least one --follow endpoint");
  }
  for (const auto& e : opt_.endpoints) (void)parse_endpoint(e);  // fail fast
  if (manager_.options().checkpoint_root.empty()) {
    throw std::invalid_argument(
        "standby replication needs --checkpoint-root: bootstrap files and "
        "the standby's own WAL/checkpoints land there");
  }
}

ReplicaClient::~ReplicaClient() { stop(); }

void ReplicaClient::start() {
  thread_ = std::thread([this] { run(); });
}

void ReplicaClient::promote(std::size_t drain_ms) {
  drain_ms_.store(drain_ms, std::memory_order_relaxed);
  promoting_.store(true, std::memory_order_release);
  join_thread();
}

void ReplicaClient::stop() {
  stop_.store(true, std::memory_order_release);
  const int fd = fd_.load(std::memory_order_acquire);
  if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
  join_thread();
}

void ReplicaClient::join_thread() {
  std::lock_guard<std::mutex> lk(join_mu_);
  if (thread_.joinable()) thread_.join();
}

std::uint64_t ReplicaClient::lag_items() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::uint64_t lag = 0;
  for (const auto& [key, end] : primary_end_) {
    const auto it = applied_.find(key);
    const std::uint64_t ap = it == applied_.end() ? 0 : it->second;
    if (end > ap) lag += end - ap;
  }
  return lag;
}

void ReplicaClient::refresh_lag() {
  std::uint64_t lag = 0;
  for (const auto& [key, end] : primary_end_) {
    const auto it = applied_.find(key);
    const std::uint64_t ap = it == applied_.end() ? 0 : it->second;
    if (end > ap) lag += end - ap;
  }
  lag_gauge_->set(static_cast<std::int64_t>(lag));
}

void ReplicaClient::run() {
  std::size_t backoff = opt_.backoff_initial_ms;
  std::size_t next = 0;
  while (!stop_.load(std::memory_order_acquire) &&
         !promoting_.load(std::memory_order_acquire)) {
    const auto [host, port] =
        parse_endpoint(opt_.endpoints[next % opt_.endpoints.size()]);
    ++next;
    if (follow_once(host, port)) {
      backoff = opt_.backoff_initial_ms;
    } else {
      backoff = std::min(backoff * 2, opt_.backoff_max_ms);
    }
    // Interruptible backoff so stop()/promote() never wait seconds.
    for (std::size_t slept = 0;
         slept < backoff && !stop_.load(std::memory_order_acquire) &&
         !promoting_.load(std::memory_order_acquire);
         slept += 50) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  }
  connected_.store(false, std::memory_order_release);
  connected_gauge_->set(0);
}

bool ReplicaClient::follow_once(const std::string& host, std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return false;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
      ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
          0) {
    ::close(fd);
    return false;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  fd_.store(fd, std::memory_order_release);

  bool streamed = false;
  try {
    std::vector<char> body;
    if (!opt_.auth_token.empty()) {
      WireWriter w;
      w.u8(static_cast<std::uint8_t>(Op::kAuth));
      w.str(opt_.auth_token);
      write_frame(fd, w.body());
      if (!read_frame(fd, body) || body.empty() || body[0] != 0) {
        throw std::runtime_error("primary rejected AUTH");
      }
    }
    WireWriter w;
    w.u8(static_cast<std::uint8_t>(Op::kReplicate));
    w.u64(kReplicationProtoVersion);
    write_frame(fd, w.body());
    if (!read_frame(fd, body) || body.empty() ||
        static_cast<std::uint8_t>(body[0]) !=
            static_cast<std::uint8_t>(Status::kOk)) {
      throw std::runtime_error("primary rejected REPLICATE");
    }

    streamed = true;
    reconnects_->inc();
    connected_.store(true, std::memory_order_release);
    connected_gauge_->set(1);
    {
      std::lock_guard<std::mutex> lk(mu_);
      bootstrapped_.clear();
      cur_file_.reset();
      cur_path_.clear();
    }

    std::int64_t promote_deadline = 0;
    for (;;) {
      if (stop_.load(std::memory_order_acquire)) break;
      pollfd p{fd, POLLIN, 0};
      const int pr = ::poll(&p, 1, 100);
      if (promoting_.load(std::memory_order_acquire)) {
        if (promote_deadline == 0) {
          promote_deadline =
              now_ns() + static_cast<std::int64_t>(
                             drain_ms_.load(std::memory_order_relaxed)) *
                             1'000'000;
        }
        // Drain what the socket already holds, bounded by the deadline.
        if (pr <= 0 || now_ns() > promote_deadline) break;
      }
      if (pr < 0) {
        if (errno == EINTR) continue;
        break;
      }
      if (pr == 0) continue;
      if (!read_frame(fd, body)) break;  // primary closed
      handle_record(body);
    }
  } catch (const std::exception& e) {
    std::cerr << "she_server: replication stream ended: " << e.what() << '\n';
  }
  connected_.store(false, std::memory_order_release);
  connected_gauge_->set(0);
  fd_.store(-1, std::memory_order_release);
  ::close(fd);
  std::lock_guard<std::mutex> lk(mu_);
  cur_file_.reset();
  cur_path_.clear();
  return streamed;
}

void ReplicaClient::handle_record(std::span<const char> body) {
  WireReader r(body);
  switch (static_cast<ReplRecord>(r.u8())) {
    case ReplRecord::kFile: {
      const std::string pipeline = r.str();
      const std::string rel = r.str();
      const bool last = r.u8() != 0;
      const std::string chunk = r.str();
      r.expect_done();
      if (!valid_pipeline_name(pipeline) || rel.empty() || rel[0] == '.' ||
          rel.find('/') != std::string::npos ||
          rel.find('\\') != std::string::npos) {
        throw std::runtime_error("replication: unsafe bootstrap path '" + rel +
                                 "'");
      }
      std::lock_guard<std::mutex> lk(mu_);
      const fs::path dir =
          fs::path(manager_.options().checkpoint_root) / pipeline;
      if (std::find(bootstrapped_.begin(), bootstrapped_.end(), pipeline) ==
          bootstrapped_.end()) {
        // First file of this pipeline's bootstrap: clear every trace of
        // stale local state (a resident pipeline AND leftover files —
        // drop() only removes the directory when the name is resident).
        manager_.drop(pipeline);
        std::error_code ec;
        fs::remove_all(dir, ec);
        fs::create_directories(dir);
        bootstrapped_.push_back(pipeline);
      }
      const std::string path = (dir / rel).string();
      if (cur_path_ != path) {
        cur_file_.reset(std::fopen(path.c_str(), "wb"));
        cur_path_ = path;
        if (!cur_file_) {
          throw std::runtime_error("replication: cannot write " + path);
        }
      }
      if (!chunk.empty() &&
          std::fwrite(chunk.data(), 1, chunk.size(), cur_file_.get()) !=
              chunk.size()) {
        throw std::runtime_error("replication: short write to " + path);
      }
      if (last) {
        cur_file_.reset();
        cur_path_.clear();
      }
      break;
    }
    case ReplRecord::kPipelineDone: {
      const std::string name = r.str();
      const std::string spec = r.str();
      r.expect_done();
      std::lock_guard<std::mutex> lk(mu_);
      cur_file_.reset();
      cur_path_.clear();
      try {
        const auto entry = manager_.adopt(name, spec);
        const std::size_t shards = entry->monitor().shard_count();
        for (std::size_t s = 0; s < shards; ++s) {
          applied_[{name, s}] = entry->monitor().resume_offset(s);
        }
      } catch (const std::exception& e) {
        // One unreplicable pipeline must not kill the stream; it stays
        // absent locally and offset checks skip its frames.
        std::cerr << "she_server: replication: cannot adopt '" << name
                  << "': " << e.what() << '\n';
      }
      break;
    }
    case ReplRecord::kBootstrapDone: {
      r.expect_done();
      {
        std::lock_guard<std::mutex> lk(mu_);
        bootstrapped_.clear();
      }
      synced_.store(true, std::memory_order_release);
      synced_gauge_->set(1);
      break;
    }
    case ReplRecord::kWal: {
      const std::string name = r.str();
      const std::size_t shard = r.u32();
      const std::string bytes = r.str();
      r.expect_done();
      WalFrame f;
      if (parse_wal_frame({bytes.data(), bytes.size()}, f) == 0) {
        throw std::runtime_error("replication: corrupt WAL frame for '" +
                                 name + "'");
      }
      if (f.kind != kWalData) break;
      const auto key = std::make_pair(name, shard);
      {
        std::lock_guard<std::mutex> lk(mu_);
        auto& pe = primary_end_[key];
        if (f.end_offset() > pe) pe = f.end_offset();
        const auto it = applied_.find(key);
        if (it == applied_.end()) {  // never adopted (create raced / failed)
          refresh_lag();
          break;
        }
        if (f.end_offset() <= it->second) {  // bootstrap/stream overlap
          dup_frames_->inc();
          refresh_lag();
          break;
        }
      }
      const auto entry = manager_.find(name);
      if (!entry) break;
      const std::vector<std::uint64_t> keys = f.keys();
      try {
        // Same spec + seed → same shard routing, so these keys land on
        // local shard `shard` and per-shard offsets stay in lockstep with
        // the primary.  The client identity rides along so the standby's
        // own WAL keeps the dedup tables a post-promote replay needs.
        entry->insert_bulk(keys, f.client_id, f.client_seq, 0);
      } catch (const std::exception& e) {
        std::cerr << "she_server: replication: apply to '" << name
                  << "' failed: " << e.what() << '\n';
      }
      std::lock_guard<std::mutex> lk(mu_);
      auto& ap = applied_[key];
      if (f.end_offset() > ap) ap = f.end_offset();
      frames_applied_->inc();
      bytes_applied_->inc(bytes.size());
      refresh_lag();
      break;
    }
    case ReplRecord::kCreate: {
      const std::string name = r.str();
      const std::string spec = r.str();
      r.expect_done();
      try {
        manager_.drop(name);
        const auto entry = manager_.create(name, spec);
        std::lock_guard<std::mutex> lk(mu_);
        for (std::size_t s = 0; s < entry->monitor().shard_count(); ++s) {
          applied_[{name, s}] = 0;
        }
      } catch (const std::exception& e) {
        std::cerr << "she_server: replication: cannot create '" << name
                  << "': " << e.what() << '\n';
      }
      break;
    }
    case ReplRecord::kDrop: {
      const std::string name = r.str();
      r.expect_done();
      manager_.drop(name);
      std::lock_guard<std::mutex> lk(mu_);
      for (auto it = applied_.begin(); it != applied_.end();) {
        it = it->first.first == name ? applied_.erase(it) : std::next(it);
      }
      for (auto it = primary_end_.begin(); it != primary_end_.end();) {
        it = it->first.first == name ? primary_end_.erase(it) : std::next(it);
      }
      refresh_lag();
      break;
    }
    case ReplRecord::kHeartbeat: {
      const std::uint32_t n = r.u32();
      std::lock_guard<std::mutex> lk(mu_);
      for (std::uint32_t i = 0; i < n; ++i) {
        const std::string name = r.str();
        const std::size_t shard = r.u32();
        const std::uint64_t off = r.u64();
        auto& pe = primary_end_[{name, shard}];
        if (off > pe) pe = off;
      }
      r.expect_done();
      refresh_lag();
      break;
    }
    default:
      throw std::runtime_error("replication: unknown record type");
  }
}

}  // namespace she::server
