#include "common/io.hpp"

#include <bit>
#include <cstring>

namespace she {

namespace {
// The format is little-endian on disk; byteswap on big-endian hosts.
template <typename T>
T to_le(T v) {
  if constexpr (std::endian::native == std::endian::big) {
    T out;
    auto* src = reinterpret_cast<const unsigned char*>(&v);
    auto* dst = reinterpret_cast<unsigned char*>(&out);
    for (std::size_t i = 0; i < sizeof(T); ++i) dst[i] = src[sizeof(T) - 1 - i];
    return out;
  }
  return v;
}
}  // namespace

void BinaryWriter::raw(const void* p, std::size_t n) {
  os_.write(static_cast<const char*>(p), static_cast<std::streamsize>(n));
  if (!os_) throw SerializeError("BinaryWriter: write failed");
}

void BinaryWriter::u32(std::uint32_t v) {
  v = to_le(v);
  raw(&v, 4);
}

void BinaryWriter::u64(std::uint64_t v) {
  v = to_le(v);
  raw(&v, 8);
}

void BinaryWriter::f64(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, 8);
  u64(bits);
}

void BinaryWriter::u64_vector(const std::vector<std::uint64_t>& v) {
  u64(v.size());
  for (std::uint64_t x : v) u64(x);
}

void BinaryWriter::u32_vector(const std::vector<std::uint32_t>& v) {
  u64(v.size());
  for (std::uint32_t x : v) u32(x);
}

void BinaryReader::raw(void* p, std::size_t n) {
  is_.read(static_cast<char*>(p), static_cast<std::streamsize>(n));
  if (static_cast<std::size_t>(is_.gcount()) != n)
    throw SerializeError("BinaryReader: unexpected end of stream");
}

std::optional<std::uint64_t> BinaryReader::remaining_bytes() {
  const std::streampos pos = is_.tellg();
  if (pos == std::streampos(-1)) {
    is_.clear();
    return std::nullopt;
  }
  is_.seekg(0, std::ios::end);
  const std::streampos end = is_.tellg();
  is_.seekg(pos);
  if (end == std::streampos(-1) || end < pos || !is_) {
    is_.clear();
    is_.seekg(pos);
    return std::nullopt;
  }
  return static_cast<std::uint64_t>(end - pos);
}

void BinaryReader::check_length(std::uint64_t n, std::size_t elem_bytes) {
  if (n > (std::uint64_t{1} << 32))
    throw SerializeError("BinaryReader: implausible vector length");
  if (const auto rem = remaining_bytes(); rem && n > *rem / elem_bytes)
    throw SerializeError("BinaryReader: vector length " + std::to_string(n) +
                         " exceeds the " + std::to_string(*rem) +
                         " bytes remaining in the stream");
}

std::uint8_t BinaryReader::u8() {
  std::uint8_t v;
  raw(&v, 1);
  return v;
}

std::uint32_t BinaryReader::u32() {
  std::uint32_t v;
  raw(&v, 4);
  return to_le(v);
}

std::uint64_t BinaryReader::u64() {
  std::uint64_t v;
  raw(&v, 8);
  return to_le(v);
}

double BinaryReader::f64() {
  std::uint64_t bits = u64();
  double v;
  std::memcpy(&v, &bits, 8);
  return v;
}

void BinaryReader::expect_tag(const char (&t)[5]) {
  char got[4];
  raw(got, 4);
  if (std::memcmp(got, t, 4) != 0)
    throw SerializeError(std::string("BinaryReader: expected tag '") + t +
                         "', stream holds something else");
}

std::string BinaryReader::read_tag() {
  char got[4];
  raw(got, 4);
  return std::string(got, 4);
}

std::vector<std::uint64_t> BinaryReader::u64_vector() {
  std::uint64_t n = u64();
  check_length(n, 8);
  std::vector<std::uint64_t> v(n);
  for (auto& x : v) x = u64();
  return v;
}

std::vector<std::uint32_t> BinaryReader::u32_vector() {
  std::uint64_t n = u64();
  check_length(n, 4);
  std::vector<std::uint32_t> v(n);
  for (auto& x : v) x = u32();
  return v;
}

}  // namespace she
