#include "common/io.hpp"

#include <bit>
#include <cstring>
#include <stdexcept>

namespace she {

namespace {
// The format is little-endian on disk; byteswap on big-endian hosts.
template <typename T>
T to_le(T v) {
  if constexpr (std::endian::native == std::endian::big) {
    T out;
    auto* src = reinterpret_cast<const unsigned char*>(&v);
    auto* dst = reinterpret_cast<unsigned char*>(&out);
    for (std::size_t i = 0; i < sizeof(T); ++i) dst[i] = src[sizeof(T) - 1 - i];
    return out;
  }
  return v;
}
}  // namespace

void BinaryWriter::raw(const void* p, std::size_t n) {
  os_.write(static_cast<const char*>(p), static_cast<std::streamsize>(n));
  if (!os_) throw std::runtime_error("BinaryWriter: write failed");
}

void BinaryWriter::u32(std::uint32_t v) {
  v = to_le(v);
  raw(&v, 4);
}

void BinaryWriter::u64(std::uint64_t v) {
  v = to_le(v);
  raw(&v, 8);
}

void BinaryWriter::f64(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, 8);
  u64(bits);
}

void BinaryWriter::u64_vector(const std::vector<std::uint64_t>& v) {
  u64(v.size());
  for (std::uint64_t x : v) u64(x);
}

void BinaryWriter::u32_vector(const std::vector<std::uint32_t>& v) {
  u64(v.size());
  for (std::uint32_t x : v) u32(x);
}

void BinaryReader::raw(void* p, std::size_t n) {
  is_.read(static_cast<char*>(p), static_cast<std::streamsize>(n));
  if (static_cast<std::size_t>(is_.gcount()) != n)
    throw std::runtime_error("BinaryReader: unexpected end of stream");
}

std::uint8_t BinaryReader::u8() {
  std::uint8_t v;
  raw(&v, 1);
  return v;
}

std::uint32_t BinaryReader::u32() {
  std::uint32_t v;
  raw(&v, 4);
  return to_le(v);
}

std::uint64_t BinaryReader::u64() {
  std::uint64_t v;
  raw(&v, 8);
  return to_le(v);
}

double BinaryReader::f64() {
  std::uint64_t bits = u64();
  double v;
  std::memcpy(&v, &bits, 8);
  return v;
}

void BinaryReader::expect_tag(const char (&t)[5]) {
  char got[4];
  raw(got, 4);
  if (std::memcmp(got, t, 4) != 0)
    throw std::runtime_error(std::string("BinaryReader: expected tag '") + t +
                             "', stream holds something else");
}

std::vector<std::uint64_t> BinaryReader::u64_vector() {
  std::uint64_t n = u64();
  if (n > (std::uint64_t{1} << 32))
    throw std::runtime_error("BinaryReader: implausible vector length");
  std::vector<std::uint64_t> v(n);
  for (auto& x : v) x = u64();
  return v;
}

std::vector<std::uint32_t> BinaryReader::u32_vector() {
  std::uint64_t n = u64();
  if (n > (std::uint64_t{1} << 32))
    throw std::runtime_error("BinaryReader: implausible vector length");
  std::vector<std::uint32_t> v(n);
  for (auto& x : v) x = u32();
  return v;
}

}  // namespace she
