// Durable, CRC-framed checkpoint files.
//
// The estimators' save()/load() byte format is deliberately minimal — it
// trusts its input.  A checkpoint that survives process crashes cannot: a
// power cut mid-write leaves a truncated file, a disk error flips bits,
// and loading either into a live pipeline would silently corrupt hours of
// sliding-window state.  This module wraps any serialized payload in a
// self-verifying frame and writes it atomically:
//
//   offset  size  field
//   ------  ----  -----------------------------------------------
//        0     4  magic "SHCP"
//        4     4  frame version (u32, little-endian, 1 or 2)
//        8     8  stream offset (items applied when the snapshot was taken)
//       16     8  payload length in bytes
//       24     4  CRC-32 (IEEE) of bytes [0, 24) chained with everything
//                 after the CRC field — a flipped bit anywhere in the frame
//                 (including the stream offset) fails the checksum
//  version 2 only:
//       28     4  producer count P (u32)
//       32   8*P  per-producer consumed-item offsets (u64 each) — how many
//                 of the stream-offset items each producer lane contributed
//  then:
//        *     n  payload (estimator save() bytes)
//
// Version 1 frames (no producer vector) are still accepted by the parser;
// writers emit version 1 when no per-producer offsets are supplied, so
// pre-existing frames and fixtures stay byte-identical.
//
// Readers reject anything that fails magic, version, length or CRC checks
// with a typed CheckpointError — never a crash, hang or silent load — and
// every such rejection is counted in the `she_checkpoint_corrupt_total`
// metric (obs::default_registry()).  Writers go through a temp file and an
// atomic rename, so a reader racing a writer observes either the old or
// the new complete frame, never a torn one.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/io.hpp"

namespace she {

/// Typed rejection for unusable checkpoint files: truncation, bad magic,
/// unknown version, length mismatch, CRC failure, or a missing file on a
/// path that was required to exist.
class CheckpointError : public SerializeError {
 public:
  using SerializeError::SerializeError;
};

inline constexpr char kCheckpointMagic[4] = {'S', 'H', 'C', 'P'};
inline constexpr std::uint32_t kCheckpointVersion = 1;
inline constexpr std::uint32_t kCheckpointVersionProducers = 2;
inline constexpr std::size_t kCheckpointHeaderBytes = 28;

/// A parsed frame: the recorded ingest position plus the raw payload.
/// `producer_offsets` is empty for version-1 frames; version-2 frames
/// record how many of the stream-offset items each producer lane had
/// contributed when the snapshot was taken.
struct CheckpointData {
  std::uint64_t stream_offset = 0;
  std::vector<std::uint64_t> producer_offsets;
  std::vector<char> payload;
};

/// Wrap `payload` in a magic/version/offset/length/CRC frame (version 1).
[[nodiscard]] std::vector<char> frame_checkpoint(std::uint64_t stream_offset,
                                                 std::span<const char> payload);

/// Like above, but additionally records the per-producer offset vector
/// (version 2).  An empty vector degrades to a version-1 frame.
[[nodiscard]] std::vector<char> frame_checkpoint(
    std::uint64_t stream_offset,
    std::span<const std::uint64_t> producer_offsets,
    std::span<const char> payload);

/// Validate and unwrap a frame.  Throws CheckpointError (and increments
/// `she_checkpoint_corrupt_total`) on any structural or checksum failure.
[[nodiscard]] CheckpointData parse_checkpoint(const char* data, std::size_t n);

/// Write `bytes` to `path` via "<path>.tmp" + flush(+fsync) + atomic
/// rename.  Throws DiskFault when the failure's errno says the disk is
/// unhealthy (ENOSPC/EDQUOT/EIO/EROFS — survivable, the caller can go
/// degraded and retry later), std::runtime_error otherwise.
void write_file_atomic(const std::string& path, std::span<const char> bytes);

/// Read and parse `path`; nullopt iff the file does not exist (a fresh
/// start, not an error).  A file that exists but fails validation throws
/// CheckpointError, like parse_checkpoint.
[[nodiscard]] std::optional<CheckpointData> try_read_checkpoint_file(
    const std::string& path);

/// Like try_read_checkpoint_file, but a missing file is also a
/// CheckpointError (it is not counted as corrupt).
[[nodiscard]] CheckpointData read_checkpoint_file(const std::string& path);

// ------------------------------------------------------- frame retention --
//
// A single overwrite-in-place file is one bad write away from losing all
// durability.  With `keep > 1` a writer retains the last `keep` frames as
//
//   <path>        newest
//   <path>.1      one generation older
//   ...
//   <path>.<keep-1>
//
// and a resuming reader walks newest -> oldest, loading the first frame
// that validates.  Corrupt frames are skipped (each rejection is counted
// in `she_checkpoint_corrupt_total`); only when every existing generation
// fails does the read throw.

/// The on-disk name of generation `gen` (0 = newest = `path` itself).
[[nodiscard]] std::string checkpoint_generation_path(const std::string& path,
                                                     std::size_t gen);

/// Shift the retained generations one step older, making room for a new
/// newest frame at `path`: <path>.(keep-2) -> <path>.(keep-1), ...,
/// <path> -> <path>.1.  The oldest generation falls off.  Missing
/// generations are skipped; with keep <= 1 this is a no-op (pure
/// overwrite-in-place).
void rotate_checkpoints(const std::string& path, std::size_t keep);

/// Read the newest valid frame among the `keep` retained generations.
/// Returns nullopt when no generation exists at all (a fresh start);
/// throws CheckpointError when generations exist but every one of them is
/// corrupt — resuming silently from nothing when frames were written would
/// masquerade as data loss.
[[nodiscard]] std::optional<CheckpointData> read_newest_checkpoint(
    const std::string& path, std::size_t keep);

}  // namespace she
