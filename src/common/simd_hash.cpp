#include "common/simd_hash.hpp"

#include "common/bobhash.hpp"
#include "common/simd.hpp"

#if defined(__x86_64__)
#include <immintrin.h>
#endif
#if defined(__aarch64__)
#include <arm_neon.h>
#endif

namespace she::simd {
namespace {

// ---------------------------------------------------------------------------
// Scalar reference loops (also the SHE_FORCE_SCALAR path).
// ---------------------------------------------------------------------------

void bobhash32_keys_scalar(const std::uint64_t* keys, std::size_t n,
                           std::uint32_t seed, std::uint32_t* out) noexcept {
  const BobHash32 h(seed);
  for (std::size_t i = 0; i < n; ++i) out[i] = h(keys[i]);
}

void bobhash32_seeds_scalar(std::uint64_t key, std::uint32_t seed0,
                            std::size_t n, std::uint32_t* out) noexcept {
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = BobHash32(seed0 + static_cast<std::uint32_t>(i))(key);
  }
}

void hash64_keys_scalar(const std::uint64_t* keys, std::size_t n,
                        std::uint64_t seed, std::uint64_t* out) noexcept {
  for (std::size_t i = 0; i < n; ++i) out[i] = hash64(keys[i], seed);
}

void bobhash32_keys_multi_scalar(const std::uint64_t* keys, std::size_t n,
                                 std::uint32_t seed0, unsigned k,
                                 std::uint32_t* out) noexcept {
  for (std::size_t b = 0; b < n; ++b) {
    for (unsigned h = 0; h < k; ++h)
      out[b * k + h] = BobHash32(seed0 + h)(keys[b]);
  }
}

void positions_groups_scalar(const std::uint32_t* h, std::size_t n,
                             FastDiv32 mod_cells, FastDiv32 div_group,
                             std::uint32_t* pos, std::uint32_t* gid) noexcept {
  for (std::size_t i = 0; i < n; ++i) {
    pos[i] = mod_cells.mod(h[i]);
    gid[i] = div_group.div(pos[i]);
  }
}

// ---------------------------------------------------------------------------
// AVX2: 8 x u32 lanes for BobHash32, 4 x u64 lanes for hash64.
// ---------------------------------------------------------------------------
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))

#define SHE_AVX2 __attribute__((target("avx2"), always_inline)) inline

// Gather the low 32 bits of eight u64s (v0 = keys 0..3, v1 = keys 4..7)
// into one 8 x u32 vector, preserving key order.  shuffle_ps picks the even
// (resp. odd) dwords per 128-bit lane; the 4x64 permute undoes the lane
// interleave.
SHE_AVX2 __m256i pack_even_dwords(__m256i v0, __m256i v1) {
  __m256 r = _mm256_shuffle_ps(_mm256_castsi256_ps(v0), _mm256_castsi256_ps(v1),
                               _MM_SHUFFLE(2, 0, 2, 0));
  return _mm256_permute4x64_epi64(_mm256_castps_si256(r),
                                  _MM_SHUFFLE(3, 1, 2, 0));
}

SHE_AVX2 __m256i pack_odd_dwords(__m256i v0, __m256i v1) {
  __m256 r = _mm256_shuffle_ps(_mm256_castsi256_ps(v0), _mm256_castsi256_ps(v1),
                               _MM_SHUFFLE(3, 1, 3, 1));
  return _mm256_permute4x64_epi64(_mm256_castps_si256(r),
                                  _MM_SHUFFLE(3, 1, 2, 0));
}

// lookup2 mix(), one lane per key.  Same 27 sub/xor/shift ops as the scalar
// version in bobhash.cpp, so the result is bit-identical per lane.
SHE_AVX2 void mix8(__m256i& a, __m256i& b, __m256i& c) {
  a = _mm256_sub_epi32(a, b); a = _mm256_sub_epi32(a, c);
  a = _mm256_xor_si256(a, _mm256_srli_epi32(c, 13));
  b = _mm256_sub_epi32(b, c); b = _mm256_sub_epi32(b, a);
  b = _mm256_xor_si256(b, _mm256_slli_epi32(a, 8));
  c = _mm256_sub_epi32(c, a); c = _mm256_sub_epi32(c, b);
  c = _mm256_xor_si256(c, _mm256_srli_epi32(b, 13));
  a = _mm256_sub_epi32(a, b); a = _mm256_sub_epi32(a, c);
  a = _mm256_xor_si256(a, _mm256_srli_epi32(c, 12));
  b = _mm256_sub_epi32(b, c); b = _mm256_sub_epi32(b, a);
  b = _mm256_xor_si256(b, _mm256_slli_epi32(a, 16));
  c = _mm256_sub_epi32(c, a); c = _mm256_sub_epi32(c, b);
  c = _mm256_xor_si256(c, _mm256_srli_epi32(b, 5));
  a = _mm256_sub_epi32(a, b); a = _mm256_sub_epi32(a, c);
  a = _mm256_xor_si256(a, _mm256_srli_epi32(c, 3));
  b = _mm256_sub_epi32(b, c); b = _mm256_sub_epi32(b, a);
  b = _mm256_xor_si256(b, _mm256_slli_epi32(a, 10));
  c = _mm256_sub_epi32(c, a); c = _mm256_sub_epi32(c, b);
  c = _mm256_xor_si256(c, _mm256_srli_epi32(b, 15));
}

__attribute__((target("avx2"))) void bobhash32_keys_avx2(
    const std::uint64_t* keys, std::size_t n, std::uint32_t seed,
    std::uint32_t* out) noexcept {
  const __m256i golden = _mm256_set1_epi32(static_cast<int>(0x9e3779b9u));
  const __m256i c_init = _mm256_set1_epi32(static_cast<int>(seed + 8u));
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i k0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(keys + i));
    const __m256i k1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(keys + i + 4));
    __m256i a = _mm256_add_epi32(pack_even_dwords(k0, k1), golden);
    __m256i b = _mm256_add_epi32(pack_odd_dwords(k0, k1), golden);
    __m256i c = c_init;
    mix8(a, b, c);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), c);
  }
  if (i < n) bobhash32_keys_scalar(keys + i, n - i, seed, out + i);
}

__attribute__((target("avx2"))) void bobhash32_seeds_avx2(
    std::uint64_t key, std::uint32_t seed0, std::size_t n,
    std::uint32_t* out) noexcept {
  const __m256i a_init = _mm256_set1_epi32(
      static_cast<int>(0x9e3779b9u + static_cast<std::uint32_t>(key)));
  const __m256i b_init = _mm256_set1_epi32(
      static_cast<int>(0x9e3779b9u + static_cast<std::uint32_t>(key >> 32)));
  const __m256i c_base = _mm256_add_epi32(
      _mm256_set1_epi32(static_cast<int>(seed0 + 8u)),
      _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7));
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256i a = a_init;
    __m256i b = b_init;
    __m256i c =
        _mm256_add_epi32(c_base, _mm256_set1_epi32(static_cast<int>(i)));
    mix8(a, b, c);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), c);
  }
  if (i < n) {
    bobhash32_seeds_scalar(key, seed0 + static_cast<std::uint32_t>(i), n - i,
                           out + i);
  }
}

__attribute__((target("avx2"))) void bobhash32_keys_multi_avx2(
    const std::uint64_t* keys, std::size_t n, std::uint32_t seed0, unsigned k,
    std::uint32_t* out) noexcept {
  // Key-major: each key's k probe hashes vectorize along the seed axis
  // (same shape as bobhash32_seeds), and land contiguously in `out`.
  for (std::size_t b = 0; b < n; ++b)
    bobhash32_seeds_avx2(keys[b], seed0, k, out + b * k);
}

// 64x64 -> low-64 multiply: AVX2 has no _mm256_mullo_epi64, so build it from
// 32x32 half products ((aL*bH + aH*bL) << 32) + aL*bL.
SHE_AVX2 __m256i mullo64(__m256i a, __m256i b) {
  const __m256i al_bh = _mm256_mul_epu32(a, _mm256_srli_epi64(b, 32));
  const __m256i ah_bl = _mm256_mul_epu32(_mm256_srli_epi64(a, 32), b);
  const __m256i hi = _mm256_slli_epi64(_mm256_add_epi64(al_bh, ah_bl), 32);
  return _mm256_add_epi64(hi, _mm256_mul_epu32(a, b));
}

__attribute__((target("avx2"))) void hash64_keys_avx2(
    const std::uint64_t* keys, std::size_t n, std::uint64_t seed,
    std::uint64_t* out) noexcept {
  constexpr std::uint64_t kGolden = 0x9e3779b97f4a7c15ULL;
  const __m256i pre =
      _mm256_set1_epi64x(static_cast<long long>(seed * kGolden + kGolden));
  const __m256i m1 =
      _mm256_set1_epi64x(static_cast<long long>(0xbf58476d1ce4e5b9ULL));
  const __m256i m2 =
      _mm256_set1_epi64x(static_cast<long long>(0x94d049bb133111ebULL));
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i z = _mm256_add_epi64(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(keys + i)), pre);
    z = mullo64(_mm256_xor_si256(z, _mm256_srli_epi64(z, 30)), m1);
    z = mullo64(_mm256_xor_si256(z, _mm256_srli_epi64(z, 27)), m2);
    z = _mm256_xor_si256(z, _mm256_srli_epi64(z, 31));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), z);
  }
  if (i < n) hash64_keys_scalar(keys + i, n - i, seed, out + i);
}

// FastDiv32 arithmetic on 4 x u64 lanes, each holding a u32 value.  Both
// helpers are the exact half-word decompositions from int_math.hpp: every
// intermediate fits 64 bits, so the lanes match the scalar results bit for
// bit.  mul_epu32 reads only the low dword of each lane, which is exactly
// the "& 0xFFFFFFFF" the scalar form spells out.

// mulhi64(magic * n, d): n % d for magic = floor(2^64 / d) + 1.
SHE_AVX2 __m256i fastmod4(__m256i n, __m256i mg_lo, __m256i mg_hi, __m256i d) {
  const __m256i frac =
      _mm256_add_epi64(_mm256_mul_epu32(mg_lo, n),
                       _mm256_slli_epi64(_mm256_mul_epu32(mg_hi, n), 32));
  const __m256i lo_term = _mm256_mul_epu32(frac, d);
  const __m256i hi_term = _mm256_mul_epu32(_mm256_srli_epi64(frac, 32), d);
  return _mm256_srli_epi64(
      _mm256_add_epi64(hi_term, _mm256_srli_epi64(lo_term, 32)), 32);
}

// mulhi64(magic, n): n / d.
SHE_AVX2 __m256i fastdiv4(__m256i n, __m256i mg_lo, __m256i mg_hi) {
  const __m256i lo = _mm256_mul_epu32(mg_lo, n);
  const __m256i hi = _mm256_mul_epu32(mg_hi, n);
  return _mm256_srli_epi64(
      _mm256_add_epi64(hi, _mm256_srli_epi64(lo, 32)), 32);
}

__attribute__((target("avx2"))) void positions_groups_avx2(
    const std::uint32_t* h, std::size_t n, FastDiv32 mod_cells,
    FastDiv32 div_group, std::uint32_t* pos, std::uint32_t* gid) noexcept {
  const __m256i c_lo =
      _mm256_set1_epi64x(static_cast<long long>(mod_cells.magic & 0xFFFFFFFFu));
  const __m256i c_hi =
      _mm256_set1_epi64x(static_cast<long long>(mod_cells.magic >> 32));
  const __m256i c_d = _mm256_set1_epi64x(static_cast<long long>(mod_cells.d));
  const __m256i g_lo = _mm256_set1_epi64x(
      static_cast<long long>(div_group.magic & 0xFFFFFFFFu));
  const __m256i g_hi =
      _mm256_set1_epi64x(static_cast<long long>(div_group.magic >> 32));
  // d == 1 has magic == 0 (the wrap FastDiv32 documents): the vector mod
  // correctly yields 0, but div must return n unchanged — copy pos instead.
  const bool unit_group = div_group.d == 1;
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(h + i));
    const __m256i v0 = _mm256_cvtepu32_epi64(_mm256_castsi256_si128(v));
    const __m256i v1 = _mm256_cvtepu32_epi64(_mm256_extracti128_si256(v, 1));
    const __m256i p0 = fastmod4(v0, c_lo, c_hi, c_d);
    const __m256i p1 = fastmod4(v1, c_lo, c_hi, c_d);
    const __m256i packed = pack_even_dwords(p0, p1);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(pos + i), packed);
    const __m256i groups =
        unit_group ? packed
                   : pack_even_dwords(fastdiv4(p0, g_lo, g_hi),
                                      fastdiv4(p1, g_lo, g_hi));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(gid + i), groups);
  }
  if (i < n) {
    positions_groups_scalar(h + i, n - i, mod_cells, div_group, pos + i,
                            gid + i);
  }
}

#undef SHE_AVX2
#endif  // __x86_64__

// ---------------------------------------------------------------------------
// NEON: 4 x u32 lanes.  vld2q_u32 de-interleaves the u64 keys into lo/hi
// dword vectors for free.
// ---------------------------------------------------------------------------
#if defined(__aarch64__)

inline void mix4(uint32x4_t& a, uint32x4_t& b, uint32x4_t& c) {
  a = vsubq_u32(a, b); a = vsubq_u32(a, c); a = veorq_u32(a, vshrq_n_u32(c, 13));
  b = vsubq_u32(b, c); b = vsubq_u32(b, a); b = veorq_u32(b, vshlq_n_u32(a, 8));
  c = vsubq_u32(c, a); c = vsubq_u32(c, b); c = veorq_u32(c, vshrq_n_u32(b, 13));
  a = vsubq_u32(a, b); a = vsubq_u32(a, c); a = veorq_u32(a, vshrq_n_u32(c, 12));
  b = vsubq_u32(b, c); b = vsubq_u32(b, a); b = veorq_u32(b, vshlq_n_u32(a, 16));
  c = vsubq_u32(c, a); c = vsubq_u32(c, b); c = veorq_u32(c, vshrq_n_u32(b, 5));
  a = vsubq_u32(a, b); a = vsubq_u32(a, c); a = veorq_u32(a, vshrq_n_u32(c, 3));
  b = vsubq_u32(b, c); b = vsubq_u32(b, a); b = veorq_u32(b, vshlq_n_u32(a, 10));
  c = vsubq_u32(c, a); c = vsubq_u32(c, b); c = veorq_u32(c, vshrq_n_u32(b, 15));
}

void bobhash32_keys_neon(const std::uint64_t* keys, std::size_t n,
                         std::uint32_t seed, std::uint32_t* out) noexcept {
  const uint32x4_t golden = vdupq_n_u32(0x9e3779b9u);
  const uint32x4_t c_init = vdupq_n_u32(seed + 8u);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const uint32x4x2_t k =
        vld2q_u32(reinterpret_cast<const std::uint32_t*>(keys + i));
    uint32x4_t a = vaddq_u32(k.val[0], golden);
    uint32x4_t b = vaddq_u32(k.val[1], golden);
    uint32x4_t c = c_init;
    mix4(a, b, c);
    vst1q_u32(out + i, c);
  }
  if (i < n) bobhash32_keys_scalar(keys + i, n - i, seed, out + i);
}

void bobhash32_seeds_neon(std::uint64_t key, std::uint32_t seed0,
                          std::size_t n, std::uint32_t* out) noexcept {
  const uint32x4_t a_init =
      vdupq_n_u32(0x9e3779b9u + static_cast<std::uint32_t>(key));
  const uint32x4_t b_init =
      vdupq_n_u32(0x9e3779b9u + static_cast<std::uint32_t>(key >> 32));
  const std::uint32_t lanes[4] = {0, 1, 2, 3};
  const uint32x4_t c_base = vaddq_u32(vdupq_n_u32(seed0 + 8u), vld1q_u32(lanes));
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    uint32x4_t a = a_init;
    uint32x4_t b = b_init;
    uint32x4_t c =
        vaddq_u32(c_base, vdupq_n_u32(static_cast<std::uint32_t>(i)));
    mix4(a, b, c);
    vst1q_u32(out + i, c);
  }
  if (i < n) {
    bobhash32_seeds_scalar(key, seed0 + static_cast<std::uint32_t>(i), n - i,
                           out + i);
  }
}

#endif  // __aarch64__

}  // namespace

void bobhash32_keys(const std::uint64_t* keys, std::size_t n,
                    std::uint32_t seed, std::uint32_t* out) noexcept {
  switch (active_isa()) {
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
    case Isa::kAvx2:
      bobhash32_keys_avx2(keys, n, seed, out);
      return;
#endif
#if defined(__aarch64__)
    case Isa::kNeon:
      bobhash32_keys_neon(keys, n, seed, out);
      return;
#endif
    default:
      bobhash32_keys_scalar(keys, n, seed, out);
      return;
  }
}

void bobhash32_seeds(std::uint64_t key, std::uint32_t seed0, std::size_t n,
                     std::uint32_t* out) noexcept {
  switch (active_isa()) {
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
    case Isa::kAvx2:
      bobhash32_seeds_avx2(key, seed0, n, out);
      return;
#endif
#if defined(__aarch64__)
    case Isa::kNeon:
      bobhash32_seeds_neon(key, seed0, n, out);
      return;
#endif
    default:
      bobhash32_seeds_scalar(key, seed0, n, out);
      return;
  }
}

void bobhash32_keys_multi(const std::uint64_t* keys, std::size_t n,
                          std::uint32_t seed0, unsigned k,
                          std::uint32_t* out) noexcept {
  switch (active_isa()) {
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
    case Isa::kAvx2:
      bobhash32_keys_multi_avx2(keys, n, seed0, k, out);
      return;
#endif
#if defined(__aarch64__)
    case Isa::kNeon:
      for (std::size_t b = 0; b < n; ++b)
        bobhash32_seeds_neon(keys[b], seed0, k, out + b * k);
      return;
#endif
    default:
      bobhash32_keys_multi_scalar(keys, n, seed0, k, out);
      return;
  }
}

void hash64_keys(const std::uint64_t* keys, std::size_t n, std::uint64_t seed,
                 std::uint64_t* out) noexcept {
  switch (active_isa()) {
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
    case Isa::kAvx2:
      hash64_keys_avx2(keys, n, seed, out);
      return;
#endif
    default:
      // NEON deliberately falls through: SplitMix64's 64x64 multiplies have
      // no NEON encoding, and the scalar multiplier wins there.
      hash64_keys_scalar(keys, n, seed, out);
      return;
  }
}

void positions_groups(const std::uint32_t* h, std::size_t n,
                      FastDiv32 mod_cells, FastDiv32 div_group,
                      std::uint32_t* pos, std::uint32_t* gid) noexcept {
  switch (active_isa()) {
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
    case Isa::kAvx2:
      positions_groups_avx2(h, n, mod_cells, div_group, pos, gid);
      return;
#endif
    default:
      // NEON falls through: the 32x32 -> 64 products vectorize, but the
      // scalar FastDiv32 is already two multiplies and wins on in-order
      // cores.
      positions_groups_scalar(h, n, mod_cells, div_group, pos, gid);
      return;
  }
}

}  // namespace she::simd
