#include "common/wal.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "common/crc32.hpp"
#include "obs/metrics.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#endif

namespace she {

namespace {

template <typename T>
T to_le(T v) {
  if constexpr (std::endian::native == std::endian::big) {
    T out;
    auto* src = reinterpret_cast<const unsigned char*>(&v);
    auto* dst = reinterpret_cast<unsigned char*>(&out);
    for (std::size_t i = 0; i < sizeof(T); ++i) dst[i] = src[sizeof(T) - 1 - i];
    return out;
  }
  return v;
}

template <typename T>
void put_le(char* out, T v) {
  v = to_le(v);
  std::memcpy(out, &v, sizeof(T));
}

template <typename T>
T get_le(const char* p) {
  T v;
  std::memcpy(&v, p, sizeof(T));
  return to_le(v);
}

/// A frame claiming more payload than this is treated as tail garbage: no
/// real sub-batch approaches it (the wire protocol caps frames at 16 MiB)
/// and honoring a flipped length bit would try a huge allocation.
constexpr std::uint32_t kMaxWalPayload = 64u << 20;

obs::Counter& torn_counter() {
  return obs::default_registry().counter(
      "she_wal_torn_tail_total",
      "WAL tails truncated as torn or corrupt during recovery scans");
}

/// Validate the frame starting at data[at]; fills `f` and returns the
/// total encoded size, or 0 when the bytes are not a valid frame (torn
/// tail — the scan stops there).
std::size_t parse_frame(const char* data, std::size_t n, std::size_t at,
                        WalFrame& f) {
  if (n - at < kWalHeaderBytes) return 0;
  const char* h = data + at;
  if (std::memcmp(h, kWalMagic, 4) != 0) return 0;
  if (get_le<std::uint16_t>(h + 4) != kWalVersion) return 0;
  const auto kind = get_le<std::uint16_t>(h + 6);
  if (kind != kWalData && kind != kWalSeqTable) return 0;
  const auto payload_len = get_le<std::uint32_t>(h + 40);
  if (payload_len > kMaxWalPayload) return 0;
  if (n - at - kWalHeaderBytes < payload_len) return 0;
  const char* payload = h + kWalHeaderBytes;
  std::uint32_t crc = crc32(h, 44);
  crc = crc32(payload, payload_len, crc);
  if (crc != get_le<std::uint32_t>(h + 44)) return 0;
  if (payload_len % 16 != 0 && kind == kWalSeqTable) return 0;
  if (payload_len % 8 != 0 && kind == kWalData) return 0;
  f.kind = kind;
  f.seq = get_le<std::uint64_t>(h + 8);
  f.start_offset = get_le<std::uint64_t>(h + 16);
  f.client_id = get_le<std::uint64_t>(h + 24);
  f.client_seq = get_le<std::uint64_t>(h + 32);
  f.payload.assign(payload, payload + payload_len);
  return kWalHeaderBytes + payload_len;
}

}  // namespace

std::size_t parse_wal_frame(std::span<const char> bytes, WalFrame& f) {
  return parse_frame(bytes.data(), bytes.size(), 0, f);
}

WalMode wal_mode_from(std::string_view name) {
  if (name == "off") return WalMode::kOff;
  if (name == "async") return WalMode::kAsync;
  if (name == "fsync") return WalMode::kFsync;
  throw std::invalid_argument("wal mode must be off|async|fsync, got '" +
                              std::string(name) + "'");
}

const char* to_string(WalMode m) {
  switch (m) {
    case WalMode::kOff: return "off";
    case WalMode::kAsync: return "async";
    case WalMode::kFsync: return "fsync";
  }
  return "?";
}

std::vector<std::uint64_t> WalFrame::keys() const {
  std::vector<std::uint64_t> out(payload.size() / 8);
  for (std::size_t i = 0; i < out.size(); ++i)
    out[i] = get_le<std::uint64_t>(payload.data() + 8 * i);
  return out;
}

std::vector<char> frame_wal(const WalFrame& f) {
  std::vector<char> out(kWalHeaderBytes + f.payload.size());
  std::memcpy(out.data(), kWalMagic, 4);
  put_le<std::uint16_t>(out.data() + 4, kWalVersion);
  put_le<std::uint16_t>(out.data() + 6, f.kind);
  put_le<std::uint64_t>(out.data() + 8, f.seq);
  put_le<std::uint64_t>(out.data() + 16, f.start_offset);
  put_le<std::uint64_t>(out.data() + 24, f.client_id);
  put_le<std::uint64_t>(out.data() + 32, f.client_seq);
  put_le<std::uint32_t>(out.data() + 40,
                        static_cast<std::uint32_t>(f.payload.size()));
  std::uint32_t crc = crc32(out.data(), 44);
  crc = crc32(f.payload.data(), f.payload.size(), crc);
  put_le<std::uint32_t>(out.data() + 44, crc);
  if (!f.payload.empty())
    std::memcpy(out.data() + kWalHeaderBytes, f.payload.data(),
                f.payload.size());
  return out;
}

WalScan read_wal(const std::string& path) {
  WalScan scan;
  std::ifstream is(path, std::ios::binary);
  if (!is) return scan;  // no log yet — fresh start
  std::vector<char> bytes((std::istreambuf_iterator<char>(is)),
                          std::istreambuf_iterator<char>());
  if (!is.good() && !is.eof())
    throw WalError("wal: read error on " + path);

  std::size_t at = 0;
  std::uint64_t last_seq = 0;
  while (at < bytes.size()) {
    WalFrame f;
    const std::size_t sz = parse_frame(bytes.data(), bytes.size(), at, f);
    if (sz == 0) break;  // torn tail (or mid-log corruption): stop here
    // Frame seqs are strictly increasing; a regression means the bytes
    // are not a continuation of this log.
    if (f.seq <= last_seq) break;
    last_seq = f.seq;
    if (f.kind == kWalSeqTable) {
      for (std::size_t p = 0; p + 16 <= f.payload.size(); p += 16) {
        const auto id = get_le<std::uint64_t>(f.payload.data() + p);
        const auto hi = get_le<std::uint64_t>(f.payload.data() + p + 8);
        auto [it, inserted] = scan.client_seqs.try_emplace(id, hi);
        if (!inserted && it->second < hi) it->second = hi;
      }
      scan.end_offset = std::max(scan.end_offset, f.start_offset);
    } else {
      // Data frames must continue the accepted-item sequence.
      if (f.start_offset < scan.end_offset) break;
      scan.end_offset = f.end_offset();
      if (f.client_id != 0) {
        auto [it, inserted] =
            scan.client_seqs.try_emplace(f.client_id, f.client_seq);
        if (!inserted && it->second < f.client_seq) it->second = f.client_seq;
      }
      scan.frames.push_back(std::move(f));
    }
    at += sz;
  }
  scan.next_seq = last_seq + 1;
  scan.valid_bytes = at;
  scan.dropped_bytes = bytes.size() - at;
  if (scan.dropped_bytes > 0) torn_counter().inc();
  return scan;
}

ShardWal::ShardWal(std::string path, Options opt, const WalScan& scan)
    : path_(std::move(path)), opt_(std::move(opt)) {
  seqs_.restore(scan.client_seqs);
  next_seq_ = scan.next_seq;
  end_offset_ = scan.end_offset;
  file_bytes_ = scan.valid_bytes;
  if (scan.dropped_bytes > 0) {
    // Cut the torn tail before appending: the next frame must start at
    // the end of the valid prefix or the log stops being a frame stream.
    std::error_code ec;
    std::filesystem::resize_file(path_, scan.valid_bytes, ec);
    if (ec)
      throw WalError("wal: cannot truncate torn tail of " + path_ + ": " +
                     ec.message());
  }
  reopen_locked(file_bytes_);
}

ShardWal::~ShardWal() {
  if (file_ != nullptr) {
    try {
      flush();
    } catch (...) {
      // Destructor: durability failures here surface on the next resume
      // as a torn tail, which replay tolerates.
    }
    std::fclose(file_);
  }
}

void ShardWal::reopen_locked(std::uint64_t file_bytes) {
  if (file_ != nullptr) std::fclose(file_);
  file_ = std::fopen(path_.c_str(), "ab");
  if (file_ == nullptr) throw WalError("wal: cannot open " + path_);
  file_bytes_ = file_bytes;
  disk_bytes_ = file_bytes;
  unsynced_bytes_ = 0;
}

void ShardWal::repair_locked() {
  // A failed append left bytes past the last accepted frame (torn-write
  // injection, or a frame whose mode-required fsync failed).  Cut them so
  // the log stays exactly "the accepted items, once each" — otherwise a
  // client retry would land *behind* stale bytes and replay would double
  // count.  (A real crash skips this, but then recovery's scan does the
  // same truncation before the process ever appends again.)
  std::fclose(file_);
  file_ = nullptr;
  std::error_code ec;
  std::filesystem::resize_file(path_, file_bytes_, ec);
  if (ec)
    throw WalError("wal: cannot truncate failed-append tail of " + path_ +
                   ": " + ec.message());
  reopen_locked(file_bytes_);
}

bool ShardWal::append(std::span<const std::uint64_t> keys,
                      std::uint64_t client_id, std::uint64_t client_seq) {
  std::lock_guard<std::mutex> lk(mu_);
  // Peek, don't record yet: the seq mark must only advance once the frame
  // is as durable as the mode promises, or a retry after a failed append
  // would be treated as a duplicate and the batch silently lost.
  if (client_id != 0 && client_seq <= seqs_.high(client_id)) return false;
  if (disk_bytes_ != file_bytes_) repair_locked();
  if (opt_.hooks.fail_errno) {
    if (const int err = opt_.hooks.fail_errno(next_seq_); err != 0)
      throw DiskFault("wal: injected disk fault on " + path_ + ": " +
                          std::strerror(err),
                      err);
  }

  WalFrame f;
  f.kind = kWalData;
  f.seq = next_seq_;
  f.start_offset = end_offset_;
  f.client_id = client_id;
  f.client_seq = client_seq;
  f.payload.resize(keys.size() * 8);
  for (std::size_t i = 0; i < keys.size(); ++i)
    put_le<std::uint64_t>(f.payload.data() + 8 * i, keys[i]);
  const std::vector<char> bytes = frame_wal(f);

  // Real write/flush failures: an unknown number of bytes may have
  // reached the file, so force a repair before the next append, and
  // surface a disk-unhealthy errno as the typed DiskFault.
  const auto fail_write = [this](const std::string& what) -> void {
    const int err = errno;
    disk_bytes_ = file_bytes_ + 1;  // unknown tail: repair before reuse
    const std::string msg =
        "wal: " + what + " " + path_ +
        (err != 0 ? std::string(": ") + std::strerror(err) : std::string());
    if (is_disk_fault_errno(err)) throw DiskFault(msg, err);
    throw WalError(msg);
  };
  std::size_t to_write = bytes.size();
  if (opt_.hooks.torn) to_write = std::min(to_write, opt_.hooks.torn(f.seq, bytes.size()));
  const bool torn = to_write < bytes.size();
  errno = 0;
  if (to_write > 0 &&
      std::fwrite(bytes.data(), 1, to_write, file_) != to_write)
    fail_write("short write to");
  if (std::fflush(file_) != 0) fail_write("flush failed on");
  if (torn) {
    // Injected crash mid-write: the prefix is on disk, the append fails.
    // The caller drops the batch unacked; the next append (or recovery
    // scan) truncates the tail and the client's replay re-delivers.
    disk_bytes_ = file_bytes_ + to_write;
    throw WalError("wal: injected torn write on " + path_ + " (frame " +
                   std::to_string(f.seq) + ", " + std::to_string(to_write) +
                   " of " + std::to_string(bytes.size()) + " bytes)");
  }

  if (opt_.mode == WalMode::kFsync) {
    const std::size_t pending = unsynced_bytes_ + bytes.size();
    if (pending > opt_.fsync_interval_bytes) {
      bool ok = true;
      int err = 0;
      if (opt_.hooks.fail_fsync && opt_.hooks.fail_fsync(f.seq)) {
        ok = false;
      }
#if defined(__unix__) || defined(__APPLE__)
      else {
        ok = ::fsync(fileno(file_)) == 0;
        if (!ok) err = errno;
      }
#endif
      if (!ok) {
        // The frame is written but its durability is unknown: cut it so
        // the retry re-appends cleanly instead of duplicating the keys.
        disk_bytes_ = file_bytes_ + bytes.size();
        repair_locked();
        const std::string msg = "wal: fsync failed on " + path_ +
                                " — batch durability unknown, not acking";
        if (is_disk_fault_errno(err)) throw DiskFault(msg, err);
        throw WalError(msg);
      }
      unsynced_bytes_ = 0;
    } else {
      unsynced_bytes_ = pending;
    }
  }
  file_bytes_ += bytes.size();
  disk_bytes_ = file_bytes_;
  next_seq_ = f.seq + 1;
  end_offset_ = f.end_offset();
  seqs_.record(client_id, client_seq);
  if (opt_.observer)
    opt_.observer(f, std::span<const char>(bytes.data(), bytes.size()));
  return true;
}

void ShardWal::flush() {
  std::lock_guard<std::mutex> lk(mu_);
  if (file_ == nullptr) return;
  if (std::fflush(file_) != 0)
    throw WalError("wal: flush failed on " + path_);
#if defined(__unix__) || defined(__APPLE__)
  if (opt_.mode == WalMode::kFsync && unsynced_bytes_ > 0) {
    if (::fsync(fileno(file_)) != 0)
      throw WalError("wal: fsync failed on " + path_);
    unsynced_bytes_ = 0;
  }
#endif
}

void ShardWal::compact(std::uint64_t low_water) {
  std::lock_guard<std::mutex> lk(mu_);
  if (low_water <= base_offset_) return;
  // A rewrite costs a full-file pass; only pay it when everything can be
  // retired (the common steady state: checkpoint caught up with accepted)
  // or the backlog file has grown past the configured bound.
  const bool retire_all = low_water >= end_offset_;
  if (!retire_all && file_bytes_ < opt_.compact_min_bytes) return;

  if (std::fflush(file_) != 0)
    throw WalError("wal: flush failed on " + path_);
  const WalScan scan = read_wal(path_);

  // The seq-table frame anchors the log's offset base.  A surviving frame
  // can straddle the low-water mark (it holds items both below and above
  // it); the anchor must not pass that frame's start or the next scan's
  // continuity check would reject it as a rewind.
  std::uint64_t base = std::min(low_water, end_offset_);
  for (const WalFrame& f : scan.frames)
    if (f.end_offset() > low_water) base = std::min(base, f.start_offset);

  // Rewrite into a tmp file, make the replacement as durable as the mode
  // promises, then rename over the log.  The pre-compaction file is only
  // replaced by the rename itself: any failure before that point keeps
  // the (longer, still valid) old log.
  const std::string tmp = path_ + ".tmp";
  {
    std::FILE* out = std::fopen(tmp.c_str(), "wb");
    if (out == nullptr) throw WalError("wal: cannot open " + tmp);
    const auto fail = [&out, &tmp](const std::string& msg) {
      std::fclose(out);
      std::error_code rm;
      std::filesystem::remove(tmp, rm);
      throw WalError(msg);
    };
    const auto put = [&](const std::vector<char>& bytes) {
      if (std::fwrite(bytes.data(), 1, bytes.size(), out) != bytes.size())
        fail("wal: short write to " + tmp);
    };
    std::uint64_t seq = 1;
    WalFrame table;
    table.kind = kWalSeqTable;
    table.seq = seq++;
    table.start_offset = base;
    const auto snap = seqs_.snapshot();
    table.payload.resize(snap.size() * 16);
    std::size_t p = 0;
    for (const auto& [id, hi] : snap) {
      put_le<std::uint64_t>(table.payload.data() + p, id);
      put_le<std::uint64_t>(table.payload.data() + p + 8, hi);
      p += 16;
    }
    put(frame_wal(table));
    for (const WalFrame& f : scan.frames) {
      if (f.end_offset() <= low_water) continue;  // fully checkpointed
      WalFrame keep = f;
      keep.seq = seq++;
      put(frame_wal(keep));
    }
    if (std::fflush(out) != 0) fail("wal: flush failed on " + tmp);
#if defined(__unix__) || defined(__APPLE__)
    // In kFsync mode the surviving frames were already made durable in
    // the old log; the replacement must be durable *before* it takes the
    // log's name, or a power loss shortly after the rename could surface
    // an empty or partial rewrite where fsync'd frames used to be.
    if (opt_.mode == WalMode::kFsync && ::fsync(fileno(out)) != 0)
      fail("wal: fsync failed on " + tmp);
#endif
    if (std::fclose(out) != 0) {
      std::error_code rm;
      std::filesystem::remove(tmp, rm);
      throw WalError("wal: close failed on " + tmp);
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path_, ec);
  if (ec) {
    std::filesystem::remove(tmp, ec);
    throw WalError("wal: cannot rename " + tmp + " to " + path_);
  }
#if defined(__unix__) || defined(__APPLE__)
  if (opt_.mode == WalMode::kFsync) {
    // Persist the rename.  Best-effort: if the directory update is lost
    // to a power cut, the pre-compaction file reappears whole — longer,
    // but a valid log covering the same accepted suffix.
    const std::filesystem::path dir =
        std::filesystem::path(path_).parent_path();
    const int dfd = ::open(dir.empty() ? "." : dir.c_str(), O_RDONLY);
    if (dfd >= 0) {
      (void)::fsync(dfd);
      ::close(dfd);
    }
  }
#endif
  const WalScan after = read_wal(path_);
  base_offset_ = base;
  next_seq_ = after.next_seq;
  end_offset_ = std::max(end_offset_, after.end_offset);
  reopen_locked(after.valid_bytes);
}

}  // namespace she
