#include "common/zipf.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace she {

ZipfDistribution::ZipfDistribution(std::uint64_t universe, double skew)
    : skew_(skew), cdf_(universe) {
  if (universe == 0) throw std::invalid_argument("ZipfDistribution: empty universe");
  if (skew < 0) throw std::invalid_argument("ZipfDistribution: negative skew");
  double total = 0;
  for (std::uint64_t i = 0; i < universe; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), skew);
    cdf_[i] = total;
  }
  for (auto& c : cdf_) c /= total;
  cdf_.back() = 1.0;  // guard against rounding
}

std::uint64_t ZipfDistribution::operator()(Rng& rng) const {
  double u = rng.uniform();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::uint64_t>(it - cdf_.begin());
}

double ZipfDistribution::pmf(std::uint64_t rank) const {
  if (rank >= cdf_.size()) throw std::out_of_range("ZipfDistribution::pmf");
  return rank == 0 ? cdf_[0] : cdf_[rank] - cdf_[rank - 1];
}

}  // namespace she
