// Zipf(s) sampler over {0, .., universe-1}.
//
// The paper evaluates on CAIDA traces (~30M packets, ~600K distinct srcIPs,
// heavy-tailed), plus Campus/Webpage traces for throughput.  We substitute
// seeded Zipf streams with matching skew (see DESIGN.md §5).  Sampling uses
// a precomputed inverse-CDF table with binary search: O(log U) per draw,
// exact distribution, no rejection loops.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"

namespace she {

class ZipfDistribution {
 public:
  /// Zipf with exponent `skew` (s=0 is uniform) over `universe` ranks.
  ZipfDistribution(std::uint64_t universe, double skew);

  /// Draw a rank in [0, universe); rank 0 is the most frequent.
  std::uint64_t operator()(Rng& rng) const;

  [[nodiscard]] std::uint64_t universe() const { return cdf_.size(); }
  [[nodiscard]] double skew() const { return skew_; }

  /// Probability mass of rank i (for analytical checks in tests).
  [[nodiscard]] double pmf(std::uint64_t rank) const;

 private:
  double skew_;
  std::vector<double> cdf_;  // cdf_[i] = P(rank <= i)
};

}  // namespace she
