#include "common/bobhash.hpp"

#include <cstring>

namespace she {
namespace {

// lookup2 mixing step (Bob Jenkins, Dr. Dobb's 1997).
inline void mix(std::uint32_t& a, std::uint32_t& b, std::uint32_t& c) {
  a -= b; a -= c; a ^= (c >> 13);
  b -= c; b -= a; b ^= (a << 8);
  c -= a; c -= b; c ^= (b >> 13);
  a -= b; a -= c; a ^= (c >> 12);
  b -= c; b -= a; b ^= (a << 16);
  c -= a; c -= b; c ^= (b >> 5);
  a -= b; a -= c; a ^= (c >> 3);
  b -= c; b -= a; b ^= (a << 10);
  c -= a; c -= b; c ^= (b >> 15);
}

inline std::uint32_t load_le32(const unsigned char* p, std::size_t n) {
  std::uint32_t v = 0;
  for (std::size_t i = 0; i < n; ++i) v |= std::uint32_t{p[i]} << (8 * i);
  return v;
}

}  // namespace

std::uint32_t BobHash32::operator()(const void* data, std::size_t len) const {
  const auto* k = static_cast<const unsigned char*>(data);
  std::uint32_t a = 0x9e3779b9u;
  std::uint32_t b = 0x9e3779b9u;
  std::uint32_t c = seed_;
  std::size_t remaining = len;

  while (remaining >= 12) {
    a += load_le32(k, 4);
    b += load_le32(k + 4, 4);
    c += load_le32(k + 8, 4);
    mix(a, b, c);
    k += 12;
    remaining -= 12;
  }

  c += static_cast<std::uint32_t>(len);
  if (remaining > 0) {
    a += load_le32(k, remaining < 4 ? remaining : 4);
    if (remaining > 4) b += load_le32(k + 4, remaining - 4 < 4 ? remaining - 4 : 4);
    if (remaining > 8) c += load_le32(k + 8, remaining - 8) << 8;
  }
  mix(a, b, c);
  return c;
}

}  // namespace she
