// Small statistics accumulators used by the benchmark harnesses and tests
// to aggregate per-trial error metrics (RE, ARE, FPR) exactly as the paper
// defines them in Sec. 7.1.
#pragma once

#include <cstddef>
#include <vector>

namespace she {

/// Streaming mean/variance/min/max (Welford).
class RunningStats {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const;  ///< sample variance (n-1)
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Relative error |f - f_hat| / f  (paper metric "RE").
double relative_error(double truth, double estimate);

/// Percentile (0..100) of a sample set; interpolated, copies and sorts.
double percentile(std::vector<double> samples, double pct);

}  // namespace she
