#include "common/packed_array.hpp"

#include <algorithm>
#include <stdexcept>

namespace she {

PackedArray::PackedArray(std::size_t count, unsigned bits_per_cell)
    : count_(count),
      bits_(bits_per_cell),
      mask_(bits_per_cell >= 64 ? ~std::uint64_t{0}
                                : ((std::uint64_t{1} << bits_per_cell) - 1)),
      words_((count * bits_per_cell + 63) / 64, 0) {
  if (bits_per_cell == 0 || bits_per_cell > 64)
    throw std::invalid_argument("PackedArray: bits_per_cell must be in [1,64]");
}

void PackedArray::add_saturating(std::size_t i, std::uint64_t delta) {
  std::uint64_t v = get(i);
  std::uint64_t room = mask_ - v;
  set(i, v + std::min(delta, room));
}

void PackedArray::save(BinaryWriter& out) const {
  out.tag("PAKD");
  out.u64(count_);
  out.u32(bits_);
  out.u64_vector(words_);
}

PackedArray PackedArray::load(BinaryReader& in) {
  in.expect_tag("PAKD");
  std::uint64_t count = in.u64();
  unsigned bits = in.u32();
  PackedArray a(count, bits);
  auto words = in.u64_vector();
  if (words.size() != a.words_.size())
    throw std::runtime_error("PackedArray::load: word count mismatch");
  a.words_ = std::move(words);
  return a;
}

void PackedArray::clear() { std::fill(words_.begin(), words_.end(), 0); }

void PackedArray::clear_range(std::size_t first, std::size_t count) {
  if (first + count > count_) throw std::out_of_range("PackedArray::clear_range");
  for (std::size_t i = first; i < first + count; ++i) set(i, 0);
}

}  // namespace she
