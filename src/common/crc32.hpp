// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320).
//
// Used by the checkpoint framing (common/checkpoint.hpp) to detect
// bit-flips and truncation in durable snapshot files.  Table-driven,
// byte-at-a-time: checkpoints are written at publish cadence (KBs every
// tens of thousands of items), so throughput is nowhere near a hot path.
// The incremental form (`seed` = previous result) lets callers checksum
// scattered buffers without concatenating.
#pragma once

#include <cstddef>
#include <cstdint>

namespace she {

/// CRC-32 of `n` bytes at `data`; pass a previous result as `seed` to
/// continue an incremental checksum (the empty-prefix seed is 0).
[[nodiscard]] std::uint32_t crc32(const void* data, std::size_t n,
                                  std::uint32_t seed = 0) noexcept;

}  // namespace she
