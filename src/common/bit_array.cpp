#include "common/bit_array.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

namespace she {

BitArray::BitArray(std::size_t nbits)
    : nbits_(nbits), words_((nbits + 63) / 64, 0) {}

void BitArray::clear() { std::fill(words_.begin(), words_.end(), 0); }

void BitArray::clear_range(std::size_t first, std::size_t count) {
  if (count == 0) return;
  if (first + count > nbits_) throw std::out_of_range("BitArray::clear_range");
  std::size_t last = first + count;  // exclusive
  std::size_t fw = first >> 6;
  std::size_t lw = (last - 1) >> 6;
  if (fw == lw) {
    std::uint64_t mask = ((count == 64) ? ~std::uint64_t{0}
                                        : ((std::uint64_t{1} << count) - 1))
                         << (first & 63);
    words_[fw] &= ~mask;
    return;
  }
  words_[fw] &= (std::uint64_t{1} << (first & 63)) - 1;
  for (std::size_t w = fw + 1; w < lw; ++w) words_[w] = 0;
  std::size_t tail = last & 63;
  if (tail == 0) {
    words_[lw] = 0;
  } else {
    words_[lw] &= ~((std::uint64_t{1} << tail) - 1);
  }
}

void BitArray::save(BinaryWriter& out) const {
  out.tag("BITV");
  out.u64(nbits_);
  out.u64_vector(words_);
}

BitArray BitArray::load(BinaryReader& in) {
  in.expect_tag("BITV");
  std::uint64_t nbits = in.u64();
  BitArray a(nbits);
  auto words = in.u64_vector();
  if (words.size() != a.words_.size())
    throw std::runtime_error("BitArray::load: word count mismatch");
  a.words_ = std::move(words);
  return a;
}

BitArray& BitArray::operator|=(const BitArray& other) {
  if (nbits_ != other.nbits_)
    throw std::invalid_argument("BitArray::operator|=: size mismatch");
  for (std::size_t w = 0; w < words_.size(); ++w) words_[w] |= other.words_[w];
  return *this;
}

BitArray& BitArray::operator&=(const BitArray& other) {
  if (nbits_ != other.nbits_)
    throw std::invalid_argument("BitArray::operator&=: size mismatch");
  for (std::size_t w = 0; w < words_.size(); ++w) words_[w] &= other.words_[w];
  return *this;
}

std::size_t BitArray::popcount() const {
  std::size_t total = 0;
  for (std::uint64_t w : words_) total += static_cast<std::size_t>(std::popcount(w));
  return total;
}

std::size_t BitArray::popcount_range(std::size_t first, std::size_t count) const {
  if (count == 0) return 0;
  if (first + count > nbits_) throw std::out_of_range("BitArray::popcount_range");
  std::size_t last = first + count;
  std::size_t fw = first >> 6;
  std::size_t lw = (last - 1) >> 6;
  auto masked = [&](std::size_t w, std::uint64_t mask) {
    return static_cast<std::size_t>(std::popcount(words_[w] & mask));
  };
  if (fw == lw) {
    std::uint64_t mask = ((count == 64) ? ~std::uint64_t{0}
                                        : ((std::uint64_t{1} << count) - 1))
                         << (first & 63);
    return masked(fw, mask);
  }
  std::size_t total = masked(fw, ~((std::uint64_t{1} << (first & 63)) - 1));
  for (std::size_t w = fw + 1; w < lw; ++w)
    total += static_cast<std::size_t>(std::popcount(words_[w]));
  std::size_t tail = last & 63;
  total += masked(lw, tail == 0 ? ~std::uint64_t{0} : ((std::uint64_t{1} << tail) - 1));
  return total;
}

}  // namespace she
