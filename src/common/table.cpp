#include "common/table.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace she {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size())
    throw std::invalid_argument("Table::add_row: arity mismatch");
  rows_.push_back(std::move(cells));
}

std::string Table::to_cell(double v) {
  char buf[48];
  if (v != 0.0 && (std::abs(v) < 1e-3 || std::abs(v) >= 1e7)) {
    std::snprintf(buf, sizeof(buf), "%.4e", v);
  } else {
    std::snprintf(buf, sizeof(buf), "%.6g", v);
  }
  return buf;
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c];
      if (c + 1 < row.size())
        os << std::string(widths[c] - row[c].size() + 2, ' ');
    }
    os << '\n';
  };
  emit(headers_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

void Table::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c];
      if (c + 1 < row.size()) os << ',';
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

}  // namespace she
