// Minimal binary (de)serialization substrate.
//
// Estimators support save()/load() so a long-lived monitor can checkpoint
// its sliding-window state (e.g. across process restarts) and resume with
// identical answers.  The format is little-endian fixed-width fields behind
// a per-type magic tag and version byte; readers throw SerializeError on
// truncation, tag mismatch or implausible lengths rather than returning
// garbage.  Length prefixes are additionally bounded against the remaining
// stream size (when the stream is seekable), so a corrupted prefix can
// never trigger a multi-gigabyte allocation before the truncation is
// discovered element by element.
#pragma once

#include <cerrno>
#include <cstdint>
#include <istream>
#include <optional>
#include <ostream>
#include <stdexcept>
#include <string>
#include <vector>

namespace she {

/// Typed rejection for every malformed-stream condition the binary readers
/// detect: short reads, tag mismatches, implausible or oversized length
/// prefixes.  Derives from std::runtime_error so pre-existing catch sites
/// keep working.
class SerializeError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// True when `err` (an errno) says the *disk* is unhealthy — out of space,
/// quota, media error, or mounted read-only — as opposed to a structural
/// problem with the bytes being written.
[[nodiscard]] inline bool is_disk_fault_errno(int err) noexcept {
  return err == ENOSPC || err == EIO || err == EROFS
#if defined(EDQUOT)
         || err == EDQUOT
#endif
      ;
}

/// A durable write (WAL append, checkpoint frame) failed because the disk
/// is unhealthy.  Unlike the structural SerializeError family this is a
/// *survivable, possibly transient* condition: the ingest runtime parks
/// the affected pipeline in degraded read-only mode and probes for
/// recovery instead of treating the write path as broken forever.
class DiskFault : public SerializeError {
 public:
  DiskFault(const std::string& msg, int err)
      : SerializeError(msg), errno_(err) {}
  [[nodiscard]] int error() const noexcept { return errno_; }

 private:
  int errno_;
};

class BinaryWriter {
 public:
  explicit BinaryWriter(std::ostream& os) : os_(os) {}

  void u8(std::uint8_t v) { raw(&v, 1); }
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v);

  /// 4-byte section tag, e.g. "SHBF".
  void tag(const char (&t)[5]) { raw(t, 4); }

  void u64_vector(const std::vector<std::uint64_t>& v);
  void u32_vector(const std::vector<std::uint32_t>& v);

 private:
  void raw(const void* p, std::size_t n);
  std::ostream& os_;
};

class BinaryReader {
 public:
  explicit BinaryReader(std::istream& is) : is_(is) {}

  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64();

  /// Read and verify a 4-byte section tag; throws on mismatch.
  void expect_tag(const char (&t)[5]);

  /// Read a 4-byte section tag and return it, for formats that dispatch on
  /// the tag (e.g. a container accepting several versions of its layout).
  [[nodiscard]] std::string read_tag();

  std::vector<std::uint64_t> u64_vector();
  std::vector<std::uint32_t> u32_vector();

 private:
  void raw(void* p, std::size_t n);

  /// Bytes left before end-of-stream, or nullopt when the stream is not
  /// seekable (then only the absolute plausibility cap applies).
  std::optional<std::uint64_t> remaining_bytes();

  /// Reject a vector length prefix that is absurd in absolute terms or
  /// provably larger than the remaining stream.
  void check_length(std::uint64_t n, std::size_t elem_bytes);

  std::istream& is_;
};

}  // namespace she
