// Build metadata surfaced by /healthz and the she_build_info gauge.
#pragma once

#include "common/simd.hpp"

namespace she {

/// Project version as configured by CMake (SHE_VERSION), or "dev" for
/// builds driven without it.
[[nodiscard]] inline const char* build_version() noexcept {
#ifdef SHE_VERSION
  return SHE_VERSION;
#else
  return "dev";
#endif
}

/// Compiler family + version string, e.g. "gcc 12.2.0".
[[nodiscard]] inline const char* build_compiler() noexcept {
#if defined(__clang__)
  return "clang " __VERSION__;
#elif defined(__GNUC__)
  return "gcc " __VERSION__;
#else
  return "unknown";
#endif
}

/// SIMD ISA the hot-path kernels dispatch to right now ("avx2", "neon",
/// "scalar").  Reflects SHE_FORCE_SCALAR and programmatic overrides.
[[nodiscard]] inline const char* build_simd_isa() noexcept {
  return simd::active_isa_name();
}

/// "1" when SHE_FORCE_SCALAR pinned the scalar path from the environment.
[[nodiscard]] inline const char* build_force_scalar() noexcept {
  return simd::force_scalar_env() ? "1" : "0";
}

}  // namespace she
