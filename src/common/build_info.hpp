// Build metadata surfaced by /healthz and the she_build_info gauge.
#pragma once

namespace she {

/// Project version as configured by CMake (SHE_VERSION), or "dev" for
/// builds driven without it.
[[nodiscard]] inline const char* build_version() noexcept {
#ifdef SHE_VERSION
  return SHE_VERSION;
#else
  return "dev";
#endif
}

/// Compiler family + version string, e.g. "gcc 12.2.0".
[[nodiscard]] inline const char* build_compiler() noexcept {
#if defined(__clang__)
  return "clang " __VERSION__;
#elif defined(__GNUC__)
  return "gcc " __VERSION__;
#else
  return "unknown";
#endif
}

}  // namespace she
