#include "common/checkpoint.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <stdexcept>

#include "common/crc32.hpp"
#include "obs/metrics.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace she {

namespace {

template <typename T>
T to_le(T v) {
  if constexpr (std::endian::native == std::endian::big) {
    T out;
    auto* src = reinterpret_cast<const unsigned char*>(&v);
    auto* dst = reinterpret_cast<unsigned char*>(&out);
    for (std::size_t i = 0; i < sizeof(T); ++i) dst[i] = src[sizeof(T) - 1 - i];
    return out;
  }
  return v;
}

template <typename T>
void put_le(char* out, T v) {
  v = to_le(v);
  std::memcpy(out, &v, sizeof(T));
}

template <typename T>
T get_le(const char* p) {
  T v;
  std::memcpy(&v, p, sizeof(T));
  return to_le(v);
}

/// Corrupt-checkpoint rejections, kept in the process-wide registry so
/// they surface in every Prometheus/JSON dump regardless of which
/// pipeline (or tool) hit them.  Incremented unconditionally — rejections
/// are rare and always worth counting, so the obs::enabled() gate does
/// not apply.
obs::Counter& corrupt_counter() {
  return obs::default_registry().counter(
      "she_checkpoint_corrupt_total",
      "checkpoint frames rejected as truncated or corrupted");
}

[[noreturn]] void reject(const std::string& why) {
  corrupt_counter().inc();
  throw CheckpointError("checkpoint rejected: " + why);
}

}  // namespace

std::vector<char> frame_checkpoint(std::uint64_t stream_offset,
                                   std::span<const char> payload) {
  return frame_checkpoint(stream_offset, std::span<const std::uint64_t>{},
                          payload);
}

std::vector<char> frame_checkpoint(
    std::uint64_t stream_offset,
    std::span<const std::uint64_t> producer_offsets,
    std::span<const char> payload) {
  const bool v2 = !producer_offsets.empty();
  const std::size_t vec_bytes = v2 ? 4 + 8 * producer_offsets.size() : 0;
  std::vector<char> out(kCheckpointHeaderBytes + vec_bytes + payload.size());
  std::memcpy(out.data(), kCheckpointMagic, 4);
  put_le<std::uint32_t>(out.data() + 4,
                        v2 ? kCheckpointVersionProducers : kCheckpointVersion);
  put_le<std::uint64_t>(out.data() + 8, stream_offset);
  put_le<std::uint64_t>(out.data() + 16, payload.size());
  if (v2) {
    put_le<std::uint32_t>(out.data() + kCheckpointHeaderBytes,
                          static_cast<std::uint32_t>(producer_offsets.size()));
    for (std::size_t i = 0; i < producer_offsets.size(); ++i)
      put_le<std::uint64_t>(out.data() + kCheckpointHeaderBytes + 4 + 8 * i,
                            producer_offsets[i]);
  }
  if (!payload.empty())
    std::memcpy(out.data() + kCheckpointHeaderBytes + vec_bytes,
                payload.data(), payload.size());
  // The CRC covers the header prefix too, chained into everything after
  // the CRC field (producer vector + payload), so a bit flip in the
  // stream offset or a producer count is as loud as one in the payload.
  std::uint32_t c = crc32(out.data(), 24);
  c = crc32(out.data() + kCheckpointHeaderBytes,
            out.size() - kCheckpointHeaderBytes, c);
  put_le<std::uint32_t>(out.data() + 24, c);
  return out;
}

CheckpointData parse_checkpoint(const char* data, std::size_t n) {
  if (n < kCheckpointHeaderBytes)
    reject("truncated header (" + std::to_string(n) + " of " +
           std::to_string(kCheckpointHeaderBytes) + " bytes)");
  if (std::memcmp(data, kCheckpointMagic, 4) != 0)
    reject("bad magic (not a checkpoint file)");
  const auto version = get_le<std::uint32_t>(data + 4);
  if (version != kCheckpointVersion && version != kCheckpointVersionProducers)
    reject("unsupported frame version " + std::to_string(version));
  CheckpointData out;
  out.stream_offset = get_le<std::uint64_t>(data + 8);
  const auto payload_len = get_le<std::uint64_t>(data + 16);
  const auto expected_crc = get_le<std::uint32_t>(data + 24);
  std::size_t at = kCheckpointHeaderBytes;
  if (version == kCheckpointVersionProducers) {
    if (n < at + 4) reject("truncated producer-offset vector");
    const auto count = get_le<std::uint32_t>(data + at);
    // A count no plausible shard configuration reaches: treat it as
    // corruption rather than attempting the allocation it implies.
    if (count > 65536) reject("implausible producer count " +
                              std::to_string(count));
    if (n < at + 4 + std::size_t{8} * count)
      reject("truncated producer-offset vector");
    out.producer_offsets.resize(count);
    for (std::uint32_t i = 0; i < count; ++i)
      out.producer_offsets[i] = get_le<std::uint64_t>(data + at + 4 + 8 * i);
    at += 4 + std::size_t{8} * count;
  }
  if (payload_len != n - at)
    reject("payload length " + std::to_string(payload_len) +
           " does not match the " + std::to_string(n - at) +
           " bytes present (truncated or trailing garbage)");
  const char* payload = data + at;
  std::uint32_t actual_crc = crc32(data, 24);
  actual_crc = crc32(data + kCheckpointHeaderBytes, n - kCheckpointHeaderBytes,
                     actual_crc);
  if (actual_crc != expected_crc)
    reject("CRC mismatch (corrupted header or payload)");
  out.payload.assign(payload, payload + payload_len);
  return out;
}

void write_file_atomic(const std::string& path, std::span<const char> bytes) {
  const std::string tmp = path + ".tmp";
  // ENOSPC/EIO from any step is a *disk* fault, not a caller bug: report
  // it as the typed DiskFault so the ingest runtime can park the pipeline
  // in degraded read-only mode instead of crashing the worker.
  const auto fail = [&tmp](const std::string& what, int err) -> void {
    std::remove(tmp.c_str());
    const std::string msg = "checkpoint: " + what + " " + tmp +
                            (err != 0 ? std::string(": ") + std::strerror(err)
                                      : std::string());
    if (is_disk_fault_errno(err)) throw DiskFault(msg, err);
    throw std::runtime_error(msg);
  };
  errno = 0;
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (!f) fail("cannot open", errno);
  errno = 0;
  bool ok = bytes.empty() ||
            std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size();
  ok = ok && std::fflush(f) == 0;
#if defined(__unix__) || defined(__APPLE__)
  // Frame durability, not just atomicity: reach the disk before the
  // rename makes the new frame visible.
  ok = ok && ::fsync(fileno(f)) == 0;
#endif
  int err = ok ? 0 : errno;
  if (std::fclose(f) != 0 && ok) {
    ok = false;
    err = errno;
  }
  if (!ok) fail("short write to", err);
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) fail("cannot rename", ec.value());
}

std::optional<CheckpointData> try_read_checkpoint_file(
    const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return std::nullopt;
  std::vector<char> bytes((std::istreambuf_iterator<char>(is)),
                          std::istreambuf_iterator<char>());
  if (!is.good() && !is.eof())
    throw CheckpointError("checkpoint: read error on " + path);
  return parse_checkpoint(bytes.data(), bytes.size());
}

CheckpointData read_checkpoint_file(const std::string& path) {
  auto data = try_read_checkpoint_file(path);
  if (!data)
    throw CheckpointError("checkpoint: no such file: " + path);
  return std::move(*data);
}

std::string checkpoint_generation_path(const std::string& path,
                                       std::size_t gen) {
  return gen == 0 ? path : path + "." + std::to_string(gen);
}

void rotate_checkpoints(const std::string& path, std::size_t keep) {
  if (keep <= 1) return;
  // Oldest first so each rename lands on a vacated (or expired) slot.
  for (std::size_t gen = keep - 1; gen > 0; --gen) {
    const std::string from = checkpoint_generation_path(path, gen - 1);
    const std::string to = checkpoint_generation_path(path, gen);
    std::error_code ec;
    std::filesystem::rename(from, to, ec);  // missing generations are fine
  }
}

std::optional<CheckpointData> read_newest_checkpoint(const std::string& path,
                                                     std::size_t keep) {
  bool any_exists = false;
  std::string first_error;
  for (std::size_t gen = 0; gen < std::max<std::size_t>(keep, 1); ++gen) {
    const std::string p = checkpoint_generation_path(path, gen);
    try {
      auto data = try_read_checkpoint_file(p);
      if (data) return data;  // newest valid generation wins
    } catch (const CheckpointError& e) {
      any_exists = true;  // present but unusable; fall back to older
      if (first_error.empty()) first_error = e.what();
    }
  }
  if (any_exists)
    throw CheckpointError("checkpoint: every retained generation of " + path +
                          " is corrupt (newest: " + first_error + ")");
  return std::nullopt;
}

}  // namespace she
