// Lane-parallel hash kernels behind the same seeded interfaces as
// common/bobhash.hpp.
//
// Every kernel is *bit-identical* to its scalar reference:
//
//   bobhash32_keys(keys, n, seed, out)   out[i] == BobHash32(seed)(keys[i])
//   bobhash32_seeds(key, seed0, n, out)  out[i] == BobHash32(seed0 + i)(key)
//   hash64_keys(keys, n, seed, out)      out[i] == hash64(keys[i], seed)
//
// The identity holds because an 8-byte key hits exactly one lookup2 mix()
// round (a = 0x9e3779b9 + lo32, b = 0x9e3779b9 + hi32, c = seed + 8), which
// is pure 32-bit sub/xor/shift — the same ops in every lane.  Differential
// tests assert the equality exhaustively; estimator state produced through
// either path serializes identically.
//
// Dispatch (AVX2 / NEON / scalar) happens per call via simd::active_isa();
// a call covers a whole block of keys, so the dispatch branch is amortized.
// The scalar fallback simply loops over the reference implementations, which
// is also the path taken under SHE_FORCE_SCALAR=1.
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/int_math.hpp"

namespace she::simd {

/// out[i] = BobHash32(seed)(keys[i]) for i in [0, n).
void bobhash32_keys(const std::uint64_t* keys, std::size_t n,
                    std::uint32_t seed, std::uint32_t* out) noexcept;

/// out[i] = BobHash32(seed0 + i)(key) for i in [0, n) — the MinHash shape,
/// where one key is hashed under many consecutive seeds.
void bobhash32_seeds(std::uint64_t key, std::uint32_t seed0, std::size_t n,
                     std::uint32_t* out) noexcept;

/// out[b * k + h] = BobHash32(seed0 + h)(keys[b]) for b in [0, n), h in
/// [0, k) — the k-probe insert shape, key-major.  One call hashes a whole
/// block across every probe seed (the seed axis vectorizes per key), so the
/// per-call dispatch cost is paid once per block instead of once per probe.
void bobhash32_keys_multi(const std::uint64_t* keys, std::size_t n,
                          std::uint32_t seed0, unsigned k,
                          std::uint32_t* out) noexcept;

/// out[i] = hash64(keys[i], seed) for i in [0, n).  (On NEON this runs the
/// scalar loop: SplitMix64 needs a 64x64 multiply that NEON lacks.)
void hash64_keys(const std::uint64_t* keys, std::size_t n, std::uint64_t seed,
                 std::uint64_t* out) noexcept;

/// pos[i] = mod_cells.mod(h[i]); gid[i] = div_group.div(pos[i]) for i in
/// [0, n) — the hash -> cell -> group reduction every estimator stage runs
/// after a hash sweep.  Bit-identical to the scalar FastDiv32 calls (which
/// are themselves exact), vectorized 8-wide under AVX2 via the same
/// half-word product decomposition FastDiv32 documents.
void positions_groups(const std::uint32_t* h, std::size_t n,
                      FastDiv32 mod_cells, FastDiv32 div_group,
                      std::uint32_t* pos, std::uint32_t* gid) noexcept;

}  // namespace she::simd
