// Aligned console table + CSV writer used by the bench harnesses so every
// figure/table prints the same rows/series the paper reports, in a form
// that is both human-readable and machine-parsable.
#pragma once

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace she {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Append a row (must have the same arity as the header).
  void add_row(std::vector<std::string> cells);

  /// Convenience: format doubles/ints into a row.
  template <typename... Ts>
  void add(const Ts&... vals) {
    add_row({to_cell(vals)...});
  }

  /// Pretty-print with aligned columns.
  void print(std::ostream& os) const;

  /// Emit as CSV.
  void print_csv(std::ostream& os) const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

 private:
  static std::string to_cell(const std::string& s) { return s; }
  static std::string to_cell(const char* s) { return s; }
  static std::string to_cell(double v);
  static std::string to_cell(unsigned long long v) { return std::to_string(v); }
  static std::string to_cell(unsigned long v) { return std::to_string(v); }
  static std::string to_cell(unsigned v) { return std::to_string(v); }
  static std::string to_cell(long long v) { return std::to_string(v); }
  static std::string to_cell(long v) { return std::to_string(v); }
  static std::string to_cell(int v) { return std::to_string(v); }

  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace she
