#include "common/simd.hpp"

#include <cstdlib>
#include <cstring>

namespace she::simd {
namespace {

Isa detect() noexcept {
#if defined(__aarch64__)
  // NEON is baseline on AArch64; no runtime probe needed.
  return Isa::kNeon;
#elif defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
  return __builtin_cpu_supports("avx2") ? Isa::kAvx2 : Isa::kScalar;
#else
  return Isa::kScalar;
#endif
}

bool env_force_scalar() noexcept {
  const char* v = std::getenv("SHE_FORCE_SCALAR");
  if (v == nullptr || *v == '\0') return false;
  // "0", "false", "off" (any case) mean "not forced"; anything else forces.
  return !(std::strcmp(v, "0") == 0 || std::strcmp(v, "false") == 0 ||
           std::strcmp(v, "off") == 0);
}

// Both are computed exactly once; the env read is hoisted into a magic
// static so a later setenv() in the same process cannot make two call sites
// disagree about the configuration.
std::atomic<bool>& force_flag() noexcept {
  static std::atomic<bool> flag{env_force_scalar()};
  return flag;
}

}  // namespace

Isa detected_isa() noexcept {
  static const Isa isa = detect();
  return isa;
}

bool force_scalar() noexcept {
  return force_flag().load(std::memory_order_relaxed);
}

bool force_scalar_env() noexcept {
  static const bool env = env_force_scalar();
  return env;
}

void set_force_scalar(bool on) noexcept {
  force_flag().store(on, std::memory_order_relaxed);
}

const char* isa_name(Isa isa) noexcept {
  switch (isa) {
    case Isa::kAvx2:
      return "avx2";
    case Isa::kNeon:
      return "neon";
    case Isa::kScalar:
      return "scalar";
  }
  return "scalar";
}

}  // namespace she::simd
