// BOBHash — Bob Jenkins' lookup2/lookup3-style hash, the hash family used by
// the SHE paper's released code ("we use BOBHash [3] as the hash function").
//
// Two front-ends are provided:
//   * BobHash32 — faithful lookup2 over an arbitrary byte string, with a
//     per-instance seed so that independent hash functions h1..hk can be
//     instantiated (Bloom filter / Count-Min need k independent functions).
//   * hash64    — a SplitMix64-style finalizer for fixed 64-bit keys; used
//     where the key is already an integer item ID and full avalanche is all
//     that is required (HyperLogLog rank bits, MinHash values).
//
// Both are deterministic across platforms and runs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace she {

/// Bob Jenkins' 32-bit hash (lookup2).  Seeded; distinct seeds give
/// effectively independent hash functions.
class BobHash32 {
 public:
  /// Construct hash function number `seed` of the family (seed >= 0).
  constexpr explicit BobHash32(std::uint32_t seed = 0) : seed_(seed) {}

  /// Hash an arbitrary byte string.
  [[nodiscard]] std::uint32_t operator()(const void* data, std::size_t len) const;

  /// Hash a string view.
  [[nodiscard]] std::uint32_t operator()(std::string_view s) const {
    return (*this)(s.data(), s.size());
  }

  /// Hash a 64-bit key (the common case for stream item IDs).
  [[nodiscard]] std::uint32_t operator()(std::uint64_t key) const {
    return (*this)(&key, sizeof(key));
  }

  [[nodiscard]] constexpr std::uint32_t seed() const { return seed_; }

 private:
  std::uint32_t seed_;
};

/// SplitMix64 finalizer: bijective full-avalanche mix of a 64-bit key.
/// `seed` selects a member of the family (key is pre-whitened with it).
[[nodiscard]] constexpr std::uint64_t hash64(std::uint64_t key, std::uint64_t seed = 0) {
  std::uint64_t z = key + seed * 0x9e3779b97f4a7c15ULL + 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Convenience: 32-bit slice of hash64.
[[nodiscard]] constexpr std::uint32_t hash32(std::uint64_t key, std::uint64_t seed = 0) {
  return static_cast<std::uint32_t>(hash64(key, seed) >> 32);
}

}  // namespace she
