// Fixed-width packed counter array.
//
// HyperLogLog registers are 5 bits in the paper's setup ("store the numbers
// of leading 0 of these hash values in 5-bit cells"); TBF uses 18-bit
// wraparound counters.  PackedArray stores 2^many small counters at their
// true bit width so the memory budgets in the figures are honest, while
// keeping get/set O(1).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/io.hpp"

namespace she {

class PackedArray {
 public:
  PackedArray() = default;

  /// `count` cells of `bits_per_cell` bits each (1..64), zero-initialized.
  PackedArray(std::size_t count, unsigned bits_per_cell);

  [[nodiscard]] std::size_t size() const { return count_; }
  [[nodiscard]] unsigned cell_bits() const { return bits_; }

  /// Payload bytes (rounded up to whole 64-bit words).
  [[nodiscard]] std::size_t memory_bytes() const { return words_.size() * sizeof(std::uint64_t); }

  /// Largest storable value: 2^bits - 1.
  [[nodiscard]] std::uint64_t max_value() const { return mask_; }

  /// Hint the cache to fetch the line holding cell `i` (no-op semantics),
  /// mirroring BitArray::prefetch: batched inserts warm CM counters, HLL
  /// registers and GroupClock marks ahead of the apply stage.  `write`
  /// selects the exclusive-state hint; pass false on query paths.
  void prefetch(std::size_t i, bool write = true) const {
#if defined(__GNUC__) || defined(__clang__)
    if (write)
      __builtin_prefetch(&words_[(i * bits_) >> 6], 1, 1);
    else
      __builtin_prefetch(&words_[(i * bits_) >> 6], 0, 1);
#else
    (void)i;
    (void)write;
#endif
  }

  /// Read cell `i`.  Inline: the GroupClock mark probe sits on the insert
  /// hot path (one read per hashed cell), where an out-of-line call would
  /// cost more than the extraction itself.
  [[nodiscard]] std::uint64_t get(std::size_t i) const {
    if (i >= count_) throw std::out_of_range("PackedArray::get");
    std::size_t bitpos = i * bits_;
    std::size_t w = bitpos >> 6;
    unsigned off = bitpos & 63;
    std::uint64_t v = words_[w] >> off;
    if (off + bits_ > 64) v |= words_[w + 1] << (64 - off);
    return v & mask_;
  }

  /// Write cell `i`; `v` must fit in the cell width.
  void set(std::size_t i, std::uint64_t v) {
    if (i >= count_) throw std::out_of_range("PackedArray::set");
    v &= mask_;
    std::size_t bitpos = i * bits_;
    std::size_t w = bitpos >> 6;
    unsigned off = bitpos & 63;
    words_[w] = (words_[w] & ~(mask_ << off)) | (v << off);
    if (off + bits_ > 64) {
      unsigned spill = off + bits_ - 64;
      std::uint64_t spill_mask = (std::uint64_t{1} << spill) - 1;
      words_[w + 1] = (words_[w + 1] & ~spill_mask) | (v >> (bits_ - spill));
    }
  }

  /// Saturating increment of cell `i` by `delta` (clamps at max_value()).
  void add_saturating(std::size_t i, std::uint64_t delta = 1);

  /// Zero every cell.
  void clear();

  /// Zero cells [first, first+count).
  void clear_range(std::size_t first, std::size_t count);

  /// Checkpoint to / restore from a binary stream.
  void save(BinaryWriter& out) const;
  static PackedArray load(BinaryReader& in);

 private:
  std::size_t count_ = 0;
  unsigned bits_ = 0;
  std::uint64_t mask_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace she
