// Deterministic, fast RNG used by every workload generator and by CVS's
// random-decrement step.  All experiment randomness flows from explicit
// seeds so that every figure in EXPERIMENTS.md is exactly reproducible.
#pragma once

#include <cstdint>

namespace she {

/// xoshiro256** — fast, high-quality, 2^256-1 period, deterministic.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) {
    // SplitMix64 seeding as recommended by the xoshiro authors.
    std::uint64_t z = seed;
    for (auto& word : s_) {
      z += 0x9e3779b97f4a7c15ULL;
      std::uint64_t t = z;
      t = (t ^ (t >> 30)) * 0xbf58476d1ce4e5b9ULL;
      t = (t ^ (t >> 27)) * 0x94d049bb133111ebULL;
      word = t ^ (t >> 31);
    }
  }

  std::uint64_t operator()() {
    auto rotl = [](std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); };
    std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound) via Lemire's multiply-shift reduction.
  std::uint64_t below(std::uint64_t bound) {
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>((*this)()) * bound) >> 64);
  }

  /// Uniform double in [0, 1).
  double uniform() { return static_cast<double>((*this)() >> 11) * 0x1.0p-53; }

  static constexpr std::uint64_t min() { return 0; }
  static constexpr std::uint64_t max() { return ~std::uint64_t{0}; }

 private:
  std::uint64_t s_[4];
};

}  // namespace she
