#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace she {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double relative_error(double truth, double estimate) {
  if (truth == 0.0) return estimate == 0.0 ? 0.0 : std::abs(estimate);
  return std::abs(truth - estimate) / std::abs(truth);
}

double percentile(std::vector<double> samples, double pct) {
  if (samples.empty()) throw std::invalid_argument("percentile: empty sample");
  if (pct < 0 || pct > 100) throw std::invalid_argument("percentile: pct out of range");
  std::sort(samples.begin(), samples.end());
  double idx = pct / 100.0 * static_cast<double>(samples.size() - 1);
  auto lo = static_cast<std::size_t>(idx);
  auto hi = std::min(lo + 1, samples.size() - 1);
  double frac = idx - static_cast<double>(lo);
  return samples[lo] * (1 - frac) + samples[hi] * frac;
}

}  // namespace she
