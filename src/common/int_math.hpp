// Integer math helpers shared by every module.
//
// The SHE group clock uses *negative* time offsets (d_gid <= 0), so the mark
// and age computations need floored division/modulo rather than C++'s
// truncating operators. These helpers are the single source of truth for that
// arithmetic; GroupClock and the hardware pipeline model both build on them.
#pragma once

#include <bit>
#include <cstdint>
#include <type_traits>

namespace she {

/// Floored integer division: rounds toward negative infinity.
/// floor_div(-1, 8) == -1, floor_div(7, 8) == 0, floor_div(-8, 8) == -1.
constexpr std::int64_t floor_div(std::int64_t a, std::int64_t b) {
  std::int64_t q = a / b;
  std::int64_t r = a % b;
  return (r != 0 && ((r < 0) != (b < 0))) ? q - 1 : q;
}

/// Floored modulo: result always has the sign of the divisor.
/// For positive b the result is in [0, b).  floor_mod(-1, 8) == 7.
constexpr std::int64_t floor_mod(std::int64_t a, std::int64_t b) {
  std::int64_t r = a % b;
  return (r != 0 && ((r < 0) != (b < 0))) ? r + b : r;
}

/// True if v is a power of two (v > 0).
constexpr bool is_pow2(std::uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }

/// Smallest power of two >= v (v >= 1).
constexpr std::uint64_t next_pow2(std::uint64_t v) {
  return v <= 1 ? 1 : std::uint64_t{1} << (64 - std::countl_zero(v - 1));
}

/// Ceiling division for non-negative integers.
constexpr std::uint64_t ceil_div(std::uint64_t a, std::uint64_t b) {
  return (a + b - 1) / b;
}

/// HyperLogLog rank: position of the leftmost 1-bit in the low `width` bits
/// of h, counting from 1; returns width+1 when those bits are all zero.
/// This equals (number of leading zero bits) + 1, the paper's l_zero + 1.
constexpr std::uint8_t hll_rank(std::uint64_t h, unsigned width) {
  h &= (width >= 64) ? ~std::uint64_t{0} : ((std::uint64_t{1} << width) - 1);
  if (h == 0) return static_cast<std::uint8_t>(width + 1);
  unsigned lz = static_cast<unsigned>(std::countl_zero(h)) - (64 - width);
  return static_cast<std::uint8_t>(lz + 1);
}

/// log2 of a power of two.
constexpr unsigned log2_pow2(std::uint64_t v) {
  return static_cast<unsigned>(std::countr_zero(v));
}

/// Division and modulo by a runtime-constant 32-bit divisor without a divide
/// instruction (Lemire, Kaser & Kurz, "Faster remainder by direct
/// computation").  Precompute once per estimator (`d` = cells or group
/// width), then each `div`/`mod` is two multiplies — this is what keeps the
/// vector slot-staging loops free of per-probe `udiv`.
///
/// Exact for every n, d in [0, 2^32): with M = floor(2^64 / d) + 1,
///   n / d == mulhi64(M, n)  and  n % d == mulhi64(M * n, d).
/// d == 1 is special-cased because its magic constant would wrap to zero.
struct FastDiv32 {
  std::uint64_t magic = 0;
  std::uint32_t d = 1;

  FastDiv32() = default;
  constexpr explicit FastDiv32(std::uint32_t divisor) : d(divisor) {
    if (d > 1) magic = ~std::uint64_t{0} / d + 1;
  }

  static constexpr std::uint64_t mulhi64(std::uint64_t a, std::uint64_t b) {
#if defined(__SIZEOF_INT128__)
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(a) * b) >> 64);
#else
    // Portable 64x64->high-64 via 32-bit halves (no platform in CI hits this).
    const std::uint64_t al = a & 0xFFFFFFFFu, ah = a >> 32;
    const std::uint64_t bl = b & 0xFFFFFFFFu, bh = b >> 32;
    const std::uint64_t mid = ah * bl + ((al * bl) >> 32);
    const std::uint64_t mid2 = al * bh + (mid & 0xFFFFFFFFu);
    return ah * bh + (mid >> 32) + (mid2 >> 32);
#endif
  }

  [[nodiscard]] constexpr std::uint32_t div(std::uint32_t n) const {
    return d == 1 ? n : static_cast<std::uint32_t>(mulhi64(magic, n));
  }

  [[nodiscard]] constexpr std::uint32_t mod(std::uint32_t n) const {
    return d == 1 ? 0 : static_cast<std::uint32_t>(mulhi64(magic * n, d));
  }
};

}  // namespace she
