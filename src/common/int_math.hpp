// Integer math helpers shared by every module.
//
// The SHE group clock uses *negative* time offsets (d_gid <= 0), so the mark
// and age computations need floored division/modulo rather than C++'s
// truncating operators. These helpers are the single source of truth for that
// arithmetic; GroupClock and the hardware pipeline model both build on them.
#pragma once

#include <bit>
#include <cstdint>
#include <type_traits>

namespace she {

/// Floored integer division: rounds toward negative infinity.
/// floor_div(-1, 8) == -1, floor_div(7, 8) == 0, floor_div(-8, 8) == -1.
constexpr std::int64_t floor_div(std::int64_t a, std::int64_t b) {
  std::int64_t q = a / b;
  std::int64_t r = a % b;
  return (r != 0 && ((r < 0) != (b < 0))) ? q - 1 : q;
}

/// Floored modulo: result always has the sign of the divisor.
/// For positive b the result is in [0, b).  floor_mod(-1, 8) == 7.
constexpr std::int64_t floor_mod(std::int64_t a, std::int64_t b) {
  std::int64_t r = a % b;
  return (r != 0 && ((r < 0) != (b < 0))) ? r + b : r;
}

/// True if v is a power of two (v > 0).
constexpr bool is_pow2(std::uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }

/// Smallest power of two >= v (v >= 1).
constexpr std::uint64_t next_pow2(std::uint64_t v) {
  return v <= 1 ? 1 : std::uint64_t{1} << (64 - std::countl_zero(v - 1));
}

/// Ceiling division for non-negative integers.
constexpr std::uint64_t ceil_div(std::uint64_t a, std::uint64_t b) {
  return (a + b - 1) / b;
}

/// HyperLogLog rank: position of the leftmost 1-bit in the low `width` bits
/// of h, counting from 1; returns width+1 when those bits are all zero.
/// This equals (number of leading zero bits) + 1, the paper's l_zero + 1.
constexpr std::uint8_t hll_rank(std::uint64_t h, unsigned width) {
  h &= (width >= 64) ? ~std::uint64_t{0} : ((std::uint64_t{1} << width) - 1);
  if (h == 0) return static_cast<std::uint8_t>(width + 1);
  unsigned lz = static_cast<unsigned>(std::countl_zero(h)) - (64 - width);
  return static_cast<std::uint8_t>(lz + 1);
}

/// log2 of a power of two.
constexpr unsigned log2_pow2(std::uint64_t v) {
  return static_cast<unsigned>(std::countr_zero(v));
}

}  // namespace she
