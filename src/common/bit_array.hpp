// Packed bit vector with the operations SHE's bit-celled sketches need:
// single-bit set/test, fast popcount over ranges (Bitmap cardinality queries
// count zeros over the legal groups), and word-aligned range clears (group
// cleaning resets w contiguous bits at once, mirroring the FPGA's ability to
// rewrite a whole group per memory access).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/io.hpp"

namespace she {

class BitArray {
 public:
  BitArray() = default;

  /// Construct an all-zero array of `nbits` bits.
  explicit BitArray(std::size_t nbits);

  /// Number of addressable bits.
  [[nodiscard]] std::size_t size() const { return nbits_; }

  /// Memory footprint of the payload in bytes (what the paper's memory
  /// budgets count).
  [[nodiscard]] std::size_t memory_bytes() const { return words_.size() * sizeof(std::uint64_t); }

  /// Set bit `i` to 1.
  void set(std::size_t i) { words_[i >> 6] |= std::uint64_t{1} << (i & 63); }

  /// Clear bit `i`.
  void reset(std::size_t i) { words_[i >> 6] &= ~(std::uint64_t{1} << (i & 63)); }

  /// Read bit `i`.
  [[nodiscard]] bool test(std::size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1u;
  }

  /// Hint the cache to fetch the line holding bit `i` (no-op semantics).
  /// `write` selects the exclusive-state hint; pass false on query paths so
  /// batched reads don't steal lines from writers.
  void prefetch(std::size_t i, bool write = true) const {
#if defined(__GNUC__) || defined(__clang__)
    if (write)
      __builtin_prefetch(&words_[i >> 6], 1, 1);
    else
      __builtin_prefetch(&words_[i >> 6], 0, 1);
#else
    (void)i;
    (void)write;
#endif
  }

  /// Clear all bits.
  void clear();

  /// Clear bits [first, first+count).  Group cleaning uses this.
  void clear_range(std::size_t first, std::size_t count);

  /// Number of 1-bits in the whole array.
  [[nodiscard]] std::size_t popcount() const;

  /// Number of 1-bits in [first, first+count).
  [[nodiscard]] std::size_t popcount_range(std::size_t first, std::size_t count) const;

  /// Number of 0-bits in [first, first+count).
  [[nodiscard]] std::size_t zeros_range(std::size_t first, std::size_t count) const {
    return count - popcount_range(first, count);
  }

  /// Checkpoint to / restore from a binary stream.
  void save(BinaryWriter& out) const;
  static BitArray load(BinaryReader& in);

  /// Bitwise union / intersection with an equal-sized array (throws
  /// std::invalid_argument on size mismatch) — the primitive behind sketch
  /// merging.
  BitArray& operator|=(const BitArray& other);
  BitArray& operator&=(const BitArray& other);

 private:
  std::size_t nbits_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace she
