// Runtime SIMD dispatch for the vectorized hot paths.
//
// The batching layer (she/batch.hpp) stages work into blocks precisely so
// that stage 1 — hashing, slot arithmetic, GroupClock mark precomputation —
// can run lane-parallel.  This header is the single place that decides which
// instruction set those kernels use:
//
//   * detection happens once (CPUID on x86-64, compile-time on aarch64);
//   * `SHE_FORCE_SCALAR=1` in the environment pins everything to the scalar
//     reference path (differential tests and the micro benchmarks rely on
//     this to compare the two implementations bit-for-bit);
//   * `set_force_scalar()` flips the same switch programmatically so a test
//     or bench can exercise both paths in one process.
//
// Kernels are compiled with function-level target attributes (no global
// -march flags), so a binary built anywhere runs anywhere: an AVX2 kernel is
// only ever *called* after CPUID says it is safe.
#pragma once

#include <atomic>
#include <cstdint>

namespace she::simd {

enum class Isa : std::uint8_t {
  kScalar = 0,
  kAvx2 = 1,
  kNeon = 2,
};

/// Hardware capability, ignoring any scalar override.  Computed once.
[[nodiscard]] Isa detected_isa() noexcept;

/// True when the scalar reference path is pinned, either by the
/// SHE_FORCE_SCALAR environment variable (read once at first use) or by
/// set_force_scalar().
[[nodiscard]] bool force_scalar() noexcept;

/// True when SHE_FORCE_SCALAR was set in the environment at first use
/// (reported separately from the programmatic switch so /healthz shows the
/// deployment's configuration, not a test's transient override).
[[nodiscard]] bool force_scalar_env() noexcept;

/// Programmatically pin (or unpin) the scalar path.  Used by differential
/// tests and the micro benchmarks; takes effect on the next dispatch check.
void set_force_scalar(bool on) noexcept;

/// The ISA the vector kernels will actually use right now.
[[nodiscard]] inline Isa active_isa() noexcept {
  return force_scalar() ? Isa::kScalar : detected_isa();
}

[[nodiscard]] const char* isa_name(Isa isa) noexcept;

[[nodiscard]] inline const char* active_isa_name() noexcept {
  return isa_name(active_isa());
}

/// RAII scalar pin for tests/benches: forces scalar on construction (or
/// explicitly un-forces with `ScopedForceScalar(false)`), restores the
/// previous setting on destruction.
class ScopedForceScalar {
 public:
  explicit ScopedForceScalar(bool on = true) noexcept
      : previous_(force_scalar()) {
    set_force_scalar(on);
  }
  ~ScopedForceScalar() { set_force_scalar(previous_); }
  ScopedForceScalar(const ScopedForceScalar&) = delete;
  ScopedForceScalar& operator=(const ScopedForceScalar&) = delete;

 private:
  bool previous_;
};

}  // namespace she::simd
