// Per-shard write-ahead backlog log.
//
// The durable checkpoint (common/checkpoint.hpp) captures estimator state
// at the drain offset it had reached; everything *accepted but not yet
// drained* — items sitting in the SPSC rings — used to vanish at a crash.
// The WAL closes that gap: `IngestPipeline::push_bulk` appends each
// accepted per-shard sub-batch here *before* ring enqueue, so resume can
// replay the suffix of accepted items past the newest checkpoint's offset
// and reconstruct the estimator byte-identically.
//
// Frame layout ("SHWL", little-endian, 48-byte header):
//
//   [ 0, 4)  magic "SHWL"
//   [ 4, 6)  u16 version (1)
//   [ 6, 8)  u16 kind: 0 = data, 1 = seq-table
//   [ 8,16)  u64 seq — per-log frame number, strictly increasing from 1
//   [16,24)  u64 start_offset — shard items accepted before this frame
//            (data); compaction low-water base (seq-table)
//   [24,32)  u64 client_id (0 = no client identity, never deduplicated)
//   [32,40)  u64 client_seq — the client's idempotence sequence number
//   [40,44)  u32 payload_len
//   [44,48)  u32 CRC-32 over header [0,44) chained into the payload
//
// Data payloads are the accepted keys as u64 LE; seq-table payloads are
// repeated (u64 client_id, u64 high_seq) pairs, written at the head of a
// compacted log so the idempotence filter survives frame retirement.
//
// Crash contract: appends go to the end of the file in order, so a crash
// at any instant leaves a valid frame prefix plus at most one torn tail.
// `read_wal` accepts exactly that shape — it stops at the first frame
// that fails validation and reports the bytes behind it for truncation —
// and anything else (mid-log corruption) also truncates there, keeping
// the longest crash-consistent prefix.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <map>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/io.hpp"

namespace she {

/// Durability mode of the backlog log.
enum class WalMode {
  kOff,    ///< no log; accepted-but-undrained items are lost at a crash
  kAsync,  ///< append without fsync (survives kill -9, not power loss)
  kFsync,  ///< group-commit fdatasync bounded by `fsync_interval_bytes`
};

[[nodiscard]] WalMode wal_mode_from(std::string_view name);
[[nodiscard]] const char* to_string(WalMode m);

/// A torn, truncated, or corrupted log structure (reads), or a failed
/// append/fsync (writes).  Appends that throw leave the batch *unacked*:
/// the client replays it and the idempotence filter makes that exact.
/// Appends that fail because the *disk* is unhealthy (ENOSPC/EIO) throw
/// the sibling DiskFault (common/io.hpp) instead, which callers treat as
/// survivable: park the pipeline read-only, probe, recover.
class WalError : public SerializeError {
 public:
  using SerializeError::SerializeError;
};

inline constexpr char kWalMagic[4] = {'S', 'H', 'W', 'L'};
inline constexpr std::uint16_t kWalVersion = 1;
inline constexpr std::size_t kWalHeaderBytes = 48;
inline constexpr std::uint16_t kWalData = 0;
inline constexpr std::uint16_t kWalSeqTable = 1;

/// One decoded frame.
struct WalFrame {
  std::uint16_t kind = kWalData;
  std::uint64_t seq = 0;
  std::uint64_t start_offset = 0;
  std::uint64_t client_id = 0;
  std::uint64_t client_seq = 0;
  std::vector<char> payload;

  /// Data-frame keys (payload decoded as u64 LE).
  [[nodiscard]] std::vector<std::uint64_t> keys() const;
  /// Items covered: data frames span [start_offset, end_offset()).
  [[nodiscard]] std::uint64_t end_offset() const {
    return start_offset + (kind == kWalData ? payload.size() / 8 : 0);
  }
};

/// Encode a frame (header + CRC + payload) ready for appending.
[[nodiscard]] std::vector<char> frame_wal(const WalFrame& f);

/// Validate and decode the frame at the front of `bytes`; returns its
/// total encoded size, or 0 when the bytes are not a whole valid frame.
/// Replication peers use this to verify frames received off the wire with
/// the same checks the recovery scan applies on disk.
[[nodiscard]] std::size_t parse_wal_frame(std::span<const char> bytes,
                                          WalFrame& f);

/// Highest applied client sequence number per client id — the idempotence
/// filter that makes INSERT_BULK replay exactly-once per shard.  Client id
/// 0 means "no identity" and is never deduplicated.
class ClientSeqTable {
 public:
  /// Record (client_id, client_seq); returns false — a duplicate, the
  /// caller must skip the batch — when client_seq <= the recorded mark.
  bool record(std::uint64_t client_id, std::uint64_t client_seq) {
    if (client_id == 0) return true;
    std::lock_guard<std::mutex> lk(mu_);
    auto [it, inserted] = high_.try_emplace(client_id, client_seq);
    if (inserted) return true;
    if (client_seq <= it->second) return false;
    it->second = client_seq;
    return true;
  }

  [[nodiscard]] std::uint64_t high(std::uint64_t client_id) const {
    std::lock_guard<std::mutex> lk(mu_);
    const auto it = high_.find(client_id);
    return it == high_.end() ? 0 : it->second;
  }

  [[nodiscard]] std::map<std::uint64_t, std::uint64_t> snapshot() const {
    std::lock_guard<std::mutex> lk(mu_);
    return high_;
  }

  void restore(const std::map<std::uint64_t, std::uint64_t>& m) {
    std::lock_guard<std::mutex> lk(mu_);
    for (const auto& [id, seq] : m) {
      auto [it, inserted] = high_.try_emplace(id, seq);
      if (!inserted && it->second < seq) it->second = seq;
    }
  }

 private:
  mutable std::mutex mu_;
  std::map<std::uint64_t, std::uint64_t> high_;
};

/// Result of scanning a log file: the longest valid frame prefix.
struct WalScan {
  std::vector<WalFrame> frames;  ///< data frames only, in append order
  std::map<std::uint64_t, std::uint64_t> client_seqs;  ///< id → high seq
  std::uint64_t next_seq = 1;     ///< first unused frame seq
  std::uint64_t end_offset = 0;   ///< shard items covered by the log
  std::uint64_t valid_bytes = 0;  ///< prefix length that parsed
  std::uint64_t dropped_bytes = 0;  ///< torn/corrupt tail behind it
};

/// Scan `path` (missing file → empty scan).  Never throws on torn tails —
/// they are the *expected* crash shape — but counts them in
/// `she_wal_torn_tail_total`.  Throws WalError only on filesystem read
/// errors.
[[nodiscard]] WalScan read_wal(const std::string& path);

/// Fault hooks threaded in by the runtime's SHE_FAULT_INJECTION harness
/// (common/ cannot depend on runtime/).  Both default to "no fault".
struct WalFaultHooks {
  /// Returns how many bytes of the encoded frame actually reach the file;
  /// anything short of frame_bytes simulates a crash mid-write — the
  /// prefix is written and flushed, then the append throws WalError.
  std::function<std::size_t(std::uint64_t seq, std::size_t frame_bytes)> torn;
  /// True = the mode-required fdatasync must report failure this append.
  std::function<bool(std::uint64_t seq)> fail_fsync;
  /// Nonzero = this append fails before anything reaches the file, as if
  /// write(2) set that errno (ENOSPC/EIO) — the append throws DiskFault
  /// and the pipeline drops into degraded read-only mode.
  std::function<int(std::uint64_t seq)> fail_errno;
};

/// Append handle for one shard's log.  Thread-safe: producers for the
/// same shard serialize on an internal mutex (appends are batched — one
/// frame per push_bulk sub-batch — so the lock is cold).
class ShardWal {
 public:
  struct Options {
    WalMode mode = WalMode::kAsync;
    /// kFsync group-commit bound: unsynced bytes before the next append
    /// forces an fdatasync.  0 = every append syncs (strictest).
    std::size_t fsync_interval_bytes = 0;
    /// Compaction rewrites only logs at least this large (a full-file
    /// rewrite per checkpoint would dominate small windows).
    std::size_t compact_min_bytes = std::size_t{4} << 20;
    WalFaultHooks hooks;
    /// Called after each append that is as durable as the mode promises,
    /// with the decoded frame and its encoded bytes, still under the
    /// per-shard append lock — observers therefore see frames in exact
    /// log order.  Replication tails the log through this; keep it cheap
    /// (hand the bytes to a queue, never block on a socket here).
    std::function<void(const WalFrame&, std::span<const char> encoded)>
        observer;
  };

  /// Open (creating if needed) the log at `path` for appending, first
  /// truncating any torn tail the caller's `scan` found.
  ShardWal(std::string path, Options opt, const WalScan& scan);
  ~ShardWal();
  ShardWal(const ShardWal&) = delete;
  ShardWal& operator=(const ShardWal&) = delete;

  /// Append one data frame for an accepted sub-batch; the frame's
  /// start_offset is assigned internally (the log's current end), which
  /// keeps offsets contiguous under concurrent producers.  Returns false
  /// — nothing written, caller must skip the batch — when (client_id,
  /// client_seq) is a known duplicate.  Throws WalError when the bytes
  /// cannot be made as durable as the mode promises; the frame may then
  /// be torn on disk, which resume tolerates and replay dedupes.
  bool append(std::span<const std::uint64_t> keys, std::uint64_t client_id,
              std::uint64_t client_seq);

  /// Retire frames wholly below `low_water` (the oldest *retained*
  /// checkpoint generation's offset — older generations may still be the
  /// resume base, so their replay suffix must survive).  Rewrites the log
  /// as a seq-table frame plus surviving data frames; cheap no-op unless
  /// everything can go or the file has grown past `compact_min_bytes`.
  void compact(std::uint64_t low_water);

  /// Force the durability the mode promises (checkpoint barrier / close).
  void flush();

  [[nodiscard]] ClientSeqTable& seq_table() { return seqs_; }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  void reopen_locked(std::uint64_t file_bytes);
  void repair_locked();  ///< truncate bytes past the last whole frame

  std::string path_;
  Options opt_;
  ClientSeqTable seqs_;
  std::mutex mu_;
  std::FILE* file_ = nullptr;
  std::uint64_t next_seq_ = 1;
  std::uint64_t end_offset_ = 0;  ///< items covered by frames on disk
  std::uint64_t file_bytes_ = 0;  ///< bytes of whole, accepted frames
  std::uint64_t disk_bytes_ = 0;  ///< actual file size (>= file_bytes_
                                  ///< after a failed append left a tail)
  std::uint64_t base_offset_ = 0;  ///< compaction low-water already applied
  std::size_t unsynced_bytes_ = 0;
};

}  // namespace she
