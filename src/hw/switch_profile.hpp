// Programmable-switch (P4 / RMT) constraint profile.
//
// The paper targets FPGAs *and* programmable switches (Sec. 1, Sec. 2.3).
// Switch pipelines are harsher than FPGAs: a fixed number of match-action
// stages, narrow per-stage register accesses, and no free recirculation.
// check_switch() evaluates a Pipeline against such a profile; SHE-BM fits a
// Tofino-like profile directly, SHE-BF fits once its hash lanes are laid
// out side-by-side (parallel tables in shared stages), and SWAMP cannot fit
// at all — reproducing the paper's "P4 switches" claim alongside the FPGA
// one.
#pragma once

#include <cstddef>

#include "hw/pipeline.hpp"

namespace she::hw {

/// Constraint envelope of an RMT-style switch pipeline.
struct SwitchProfile {
  std::size_t max_stages = 12;            ///< match-action stages available
  std::size_t max_access_bits = 128;      ///< register width per stage access
  std::size_t sram_budget_bits =
      std::size_t{10} * 8 * 1024 * 1024;  ///< total stateful memory
};

/// A Tofino-generation profile (12 stages, 128-bit stateful ALU ops).
[[nodiscard]] SwitchProfile tofino_like();

/// Evaluate `pipeline` against `profile`.  `parallel_lanes` is the number
/// of identical lane replicas that share stages side-by-side (SHE-BF lays
/// its `hashes` lanes out in parallel: the front stage plus one hash /
/// mark / update stage triple occupied concurrently by every lane).
/// Sequential depth is therefore 1 + ceil((stages - 1) / lanes).
[[nodiscard]] ConstraintReport check_switch(const Pipeline& pipeline,
                                            const SwitchProfile& profile,
                                            std::size_t parallel_lanes = 1);

/// Human-readable stage table (a P4-planning artifact: one row per stage
/// with its memory region, access width and modeled logic).
[[nodiscard]] std::string describe(const Pipeline& pipeline);

}  // namespace she::hw
