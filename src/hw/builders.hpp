// Concrete pipeline instances (paper Sec. 6 and Sec. 2.3).
//
// make_she_bm_pipeline / make_she_bf_pipeline encode the four-stage design
// of Sec. 6 (item counter -> hash -> time-mark check -> cell/group update);
// SHE-BF replicates the three memory-touching stages into `hashes` parallel
// lanes, each owning its own bit array and mark bank ("8 identical
// processes" in the paper's FPGA build).  Their LUT figures are calibrated
// to the paper's Virtex-7 synthesis (Table 2) and are a *model*, not a
// synthesis result.
//
// make_swamp_pipeline encodes SWAMP's per-item work and deliberately fails
// the checker, reproducing Sec. 2.3's argument for why SWAMP cannot be
// implemented on such hardware: the queue slot is read and written in one
// stage, the TinyTable is touched by both the insert and the eviction
// paths, and bucket overflow triggers a data-dependent domino expansion.
#pragma once

#include <cstddef>
#include <cstdint>

#include "hw/pipeline.hpp"

namespace she::hw {

/// SHE-BM: `array_bits` bit array in groups of `group_bits`.
/// Paper build: array_bits = 1024, group_bits = 64.
Pipeline make_she_bm_pipeline(std::size_t array_bits = 1024,
                              std::size_t group_bits = 64);

/// SHE-BF: `hashes` parallel lanes, each a SHE-BM-like array.
Pipeline make_she_bf_pipeline(std::size_t array_bits = 1024,
                              std::size_t group_bits = 64,
                              unsigned hashes = 8);

/// SWAMP with window `window` items and `fingerprint_bits`-bit fingerprints;
/// fails the constraint checker by construction.
Pipeline make_swamp_pipeline(std::uint64_t window = 1u << 16,
                             unsigned fingerprint_bits = 16);

}  // namespace she::hw
