// Hardware pipeline model — the FPGA substitute (DESIGN.md §5).
//
// The paper's Table 2/3 claims are (i) SHE satisfies the three hardware
// constraints of Sec. 2.3 as a short pipeline, and (ii) the resulting design
// sustains one item per clock (544 Mips at the achieved 544 MHz on a
// Virtex-7).  Without the device we verify (i) *structurally*: a Pipeline is
// a list of stages, each declaring which memory regions it touches and how
// many bits per access; check() evaluates the three constraints:
//
//   1. limited SRAM        — total region bits within a configurable budget
//   2. single-stage access — no memory region is touched by two stages
//   3. limited concurrency — each stage issues at most one access, of at
//                            most `max_access_bits` bits, at one address
//
// and (ii) by cycle accounting: a pipeline that passes has initiation
// interval 1, so throughput = clock * 1 item/cycle.  A coarse resource
// model (pipeline latch bits, LUT-equivalents for hash/compare logic)
// produces Table-2-shaped rows; builders.hpp instantiates SHE-BM, SHE-BF
// and (deliberately failing) SWAMP pipelines.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace she::hw {

/// A physical memory block (register bank / SRAM) of `bits` bits.
struct MemoryRegion {
  std::string name;
  std::size_t bits = 0;
};

/// One memory access a stage performs per item.
struct MemoryAccess {
  std::size_t region = 0;      ///< index into the pipeline's regions
  std::size_t bits = 0;        ///< bits moved per access
  bool write = false;
  bool single_address = true;  ///< false = scatter access (constraint 3 breach)
  bool bounded = true;         ///< false = data-dependent cascade (e.g. TinyTable
                               ///  domino expansion) — unbounded concurrency
};

/// One pipeline stage: combinational logic plus at most one memory access
/// (more, wider, or unbounded accesses are reported as violations).
struct Stage {
  std::string name;
  std::vector<MemoryAccess> accesses;
  std::size_t latch_bits = 0;  ///< pipeline registers carried to the next stage
  std::size_t logic_luts = 0;  ///< modeled LUT-equivalents of this stage's logic
};

/// Result of evaluating the three constraints of Sec. 2.3.
struct ConstraintReport {
  bool sram_fits = false;
  bool single_stage_access = false;
  bool limited_concurrent_access = false;
  std::vector<std::string> violations;

  /// All three constraints hold: the design pipelines at 1 item/cycle.
  [[nodiscard]] bool pipelined() const {
    return sram_fits && single_stage_access && limited_concurrent_access;
  }
};

/// Table-2/3-shaped summary.
struct ResourceEstimate {
  std::size_t lut = 0;            ///< modeled LUT-equivalents
  std::size_t registers = 0;      ///< pipeline latches + memory held in registers
  std::size_t block_ram_bits = 0; ///< regions too large for registers
  double items_per_cycle = 0.0;   ///< 1.0 when the constraint report passes
};

class Pipeline {
 public:
  Pipeline(std::string name, std::vector<MemoryRegion> regions,
           std::vector<Stage> stages);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const std::vector<MemoryRegion>& regions() const { return regions_; }
  [[nodiscard]] const std::vector<Stage>& stages() const { return stages_; }

  /// Evaluate the three hardware constraints.  `sram_budget_bits` defaults
  /// to 30 MB (the paper's Virtex-7 on-chip bound), `max_access_bits` to
  /// 1024 (one FPGA memory fetch).
  [[nodiscard]] ConstraintReport check(
      std::size_t sram_budget_bits = std::size_t{30} * 8 * 1024 * 1024,
      std::size_t max_access_bits = 1024) const;

  /// Coarse resource/throughput model.  Regions of at most
  /// `register_threshold_bits` are assumed register-implemented (the
  /// paper's 1024-bit arrays are), larger ones go to block RAM.
  [[nodiscard]] ResourceEstimate resources(
      std::size_t register_threshold_bits = 4096) const;

  /// Throughput in million items per second at `clock_mhz`, given the
  /// constraint report (0 if the pipeline cannot sustain 1 item/cycle).
  [[nodiscard]] double throughput_mips(double clock_mhz) const;

  /// Total bits across all memory regions.
  [[nodiscard]] std::size_t total_memory_bits() const;

 private:
  std::string name_;
  std::vector<MemoryRegion> regions_;
  std::vector<Stage> stages_;
};

}  // namespace she::hw
