#include "hw/switch_profile.hpp"

#include <sstream>

namespace she::hw {

SwitchProfile tofino_like() { return SwitchProfile{}; }

ConstraintReport check_switch(const Pipeline& pipeline,
                              const SwitchProfile& profile,
                              std::size_t parallel_lanes) {
  // Start from the three generic hardware constraints at the profile's
  // tighter access width / SRAM budget.
  ConstraintReport rep =
      pipeline.check(profile.sram_budget_bits, profile.max_access_bits);

  // Stage-count constraint: lanes share stages side-by-side.
  std::size_t stages = pipeline.stages().size();
  std::size_t depth =
      parallel_lanes <= 1 || stages <= 1
          ? stages
          : 1 + (stages - 1 + parallel_lanes - 1) / parallel_lanes;
  if (depth > profile.max_stages) {
    rep.limited_concurrent_access = false;  // cannot be laid out
    rep.violations.push_back(
        pipeline.name() + ": needs " + std::to_string(depth) +
        " sequential stages, profile provides " +
        std::to_string(profile.max_stages));
  }
  return rep;
}

std::string describe(const Pipeline& pipeline) {
  std::ostringstream os;
  os << "pipeline " << pipeline.name() << " ("
     << pipeline.total_memory_bits() << " memory bits)\n";
  for (std::size_t s = 0; s < pipeline.stages().size(); ++s) {
    const auto& st = pipeline.stages()[s];
    os << "  stage " << s << "  " << st.name;
    if (st.accesses.empty()) {
      os << "  [no memory access]";
    } else {
      for (const auto& acc : st.accesses) {
        os << "  [" << pipeline.regions()[acc.region].name << " "
           << acc.bits << "b" << (acc.write ? " rw" : " ro");
        if (!acc.single_address) os << " multi-address";
        if (!acc.bounded) os << " UNBOUNDED";
        os << "]";
      }
    }
    os << "  latch=" << st.latch_bits << "b logic~" << st.logic_luts << "LUT\n";
  }
  return os.str();
}

}  // namespace she::hw
