#include "hw/access_trace.hpp"

#include "common/bobhash.hpp"
#include "she/group_clock.hpp"

namespace she::hw {

AccessStats trace_insertions(const SheConfig& cfg, unsigned hashes,
                             std::span<const std::uint64_t> keys) {
  cfg.validate();
  GroupClock clock(cfg.groups(), cfg.tcycle(), cfg.mark_bits);
  AccessStats stats;
  std::uint64_t t = 0;
  for (std::uint64_t key : keys) {
    ++t;
    ++stats.items;
    ++stats.counter_accesses;  // stage 1: read + increment the item counter
    for (unsigned i = 0; i < hashes; ++i) {
      std::size_t pos = BobHash32(cfg.seed + i)(key) % cfg.cells;
      std::size_t gid = pos / cfg.group_cells;
      ++stats.mark_accesses;  // stage 3: one mark read (write folded in)
      if (clock.touch(gid, t)) ++stats.group_resets;
      ++stats.cell_accesses;  // stage 4: one group-wide read-modify-write
    }
  }
  return stats;
}

}  // namespace she::hw
