// Memory-access accounting for SHE inserts.
//
// Replays the exact SHE-BM / SHE-BF insertion logic (via the same
// GroupClock) while counting accesses to each memory region, demonstrating
// empirically what the pipeline checker shows structurally: every item
// costs exactly one item-counter access, one mark access and one cell-group
// access per hash lane — a fixed access budget, so the pipeline's
// initiation interval is 1.
#pragma once

#include <cstdint>
#include <span>

#include "she/config.hpp"

namespace she::hw {

struct AccessStats {
  std::uint64_t items = 0;
  std::uint64_t counter_accesses = 0;  ///< item-counter read/update
  std::uint64_t mark_accesses = 0;     ///< time-mark read (+ conditional write)
  std::uint64_t cell_accesses = 0;     ///< cell/group read-modify-write
  std::uint64_t group_resets = 0;      ///< how many mark checks triggered a reset

  [[nodiscard]] double mark_accesses_per_item() const {
    return items ? static_cast<double>(mark_accesses) / static_cast<double>(items) : 0;
  }
  [[nodiscard]] double cell_accesses_per_item() const {
    return items ? static_cast<double>(cell_accesses) / static_cast<double>(items) : 0;
  }
  [[nodiscard]] double resets_per_item() const {
    return items ? static_cast<double>(group_resets) / static_cast<double>(items) : 0;
  }
};

/// Replay `keys` through a SHE estimator with `hashes` lanes under `cfg`,
/// counting region accesses (hashes = 1 reproduces SHE-BM).
AccessStats trace_insertions(const SheConfig& cfg, unsigned hashes,
                             std::span<const std::uint64_t> keys);

}  // namespace she::hw
