#include "hw/pipeline.hpp"

#include <stdexcept>

namespace she::hw {

Pipeline::Pipeline(std::string name, std::vector<MemoryRegion> regions,
                   std::vector<Stage> stages)
    : name_(std::move(name)), regions_(std::move(regions)), stages_(std::move(stages)) {
  for (const auto& st : stages_)
    for (const auto& acc : st.accesses)
      if (acc.region >= regions_.size())
        throw std::invalid_argument("Pipeline: access references unknown region");
}

std::size_t Pipeline::total_memory_bits() const {
  std::size_t total = 0;
  for (const auto& r : regions_) total += r.bits;
  return total;
}

ConstraintReport Pipeline::check(std::size_t sram_budget_bits,
                                 std::size_t max_access_bits) const {
  ConstraintReport rep;

  // (1) limited SRAM
  rep.sram_fits = total_memory_bits() <= sram_budget_bits;
  if (!rep.sram_fits)
    rep.violations.push_back(name_ + ": total memory " +
                             std::to_string(total_memory_bits()) +
                             " bits exceeds the SRAM budget");

  // (2) single stage memory access: region -> owning stage
  rep.single_stage_access = true;
  std::vector<int> owner(regions_.size(), -1);
  for (std::size_t s = 0; s < stages_.size(); ++s) {
    for (const auto& acc : stages_[s].accesses) {
      if (owner[acc.region] >= 0 && owner[acc.region] != static_cast<int>(s)) {
        rep.single_stage_access = false;
        rep.violations.push_back(name_ + ": region '" + regions_[acc.region].name +
                                 "' accessed by stages '" +
                                 stages_[static_cast<std::size_t>(owner[acc.region])].name +
                                 "' and '" + stages_[s].name +
                                 "' (read-write hazard)");
      }
      owner[acc.region] = static_cast<int>(s);
    }
  }

  // (3) limited concurrent memory access
  rep.limited_concurrent_access = true;
  for (const auto& st : stages_) {
    if (st.accesses.size() > 1) {
      rep.limited_concurrent_access = false;
      rep.violations.push_back(name_ + ": stage '" + st.name + "' issues " +
                               std::to_string(st.accesses.size()) +
                               " memory accesses per item (limit 1)");
    }
    for (const auto& acc : st.accesses) {
      if (acc.bits > max_access_bits) {
        rep.limited_concurrent_access = false;
        rep.violations.push_back(name_ + ": stage '" + st.name + "' moves " +
                                 std::to_string(acc.bits) +
                                 " bits in one access (limit " +
                                 std::to_string(max_access_bits) + ")");
      }
      if (!acc.single_address) {
        rep.limited_concurrent_access = false;
        rep.violations.push_back(name_ + ": stage '" + st.name +
                                 "' accesses multiple addresses in one stage");
      }
      if (!acc.bounded) {
        rep.limited_concurrent_access = false;
        rep.violations.push_back(name_ + ": stage '" + st.name +
                                 "' performs a data-dependent unbounded access"
                                 " cascade");
      }
    }
  }
  return rep;
}

ResourceEstimate Pipeline::resources(std::size_t register_threshold_bits) const {
  ResourceEstimate est;
  for (const auto& r : regions_) {
    if (r.bits <= register_threshold_bits)
      est.registers += r.bits;
    else
      est.block_ram_bits += r.bits;
  }
  for (const auto& st : stages_) {
    est.registers += st.latch_bits;
    est.lut += st.logic_luts;
    // Address decode / write-enable logic per access, proportional to width.
    for (const auto& acc : st.accesses) est.lut += acc.bits / 8 + 16;
  }
  est.items_per_cycle = check().pipelined() ? 1.0 : 0.0;
  return est;
}

double Pipeline::throughput_mips(double clock_mhz) const {
  return check().pipelined() ? clock_mhz : 0.0;
}

}  // namespace she::hw
