// Cycle-level pipeline simulation.
//
// Complements the structural constraint checker with a simple timing model:
// a clean pipeline of D stages finishes n items in n + D - 1 cycles
// (initiation interval 1).  Constraint violations serialize: an extra
// memory access in a stage costs one recirculation cycle per item, a
// multi-address access costs one cycle per address, and a data-dependent
// cascade (e.g. TinyTable's domino expansion) costs `cascade_penalty`
// expected extra cycles per item.  The model quantifies *why* SWAMP's
// violations matter — its per-item cost rises above 1 cycle — rather than
// predicting absolute silicon numbers.
#pragma once

#include <cstdint>

#include "hw/pipeline.hpp"

namespace she::hw {

struct SimResult {
  std::uint64_t items = 0;
  std::uint64_t cycles = 0;
  double cycles_per_item = 0.0;

  /// Throughput in million items per second at `clock_mhz`.
  [[nodiscard]] double mips(double clock_mhz) const {
    return cycles == 0 ? 0.0
                       : clock_mhz * static_cast<double>(items) /
                             static_cast<double>(cycles);
  }
};

/// Simulate `items` items through `pipeline`.  `cascade_penalty` is the
/// expected extra cycles charged per item for each unbounded access.
SimResult simulate(const Pipeline& pipeline, std::uint64_t items,
                   std::uint64_t cascade_penalty = 4);

}  // namespace she::hw
