#include "hw/cycle_sim.hpp"

namespace she::hw {

SimResult simulate(const Pipeline& pipeline, std::uint64_t items,
                   std::uint64_t cascade_penalty) {
  SimResult res;
  res.items = items;
  if (items == 0) return res;

  // Per-item stall cycles from constraint violations.
  std::uint64_t stall_per_item = 0;
  for (const auto& stage : pipeline.stages()) {
    if (stage.accesses.size() > 1)
      stall_per_item += stage.accesses.size() - 1;  // recirculation per access
    for (const auto& acc : stage.accesses) {
      if (!acc.single_address) stall_per_item += 1;  // address-serialized
      if (!acc.bounded) stall_per_item += cascade_penalty;
    }
  }
  // A region shared by multiple stages forces a bubble between dependent
  // stages for every item (read-write hazard interlock).
  {
    std::vector<int> owner(pipeline.regions().size(), -1);
    for (std::size_t s = 0; s < pipeline.stages().size(); ++s) {
      for (const auto& acc : pipeline.stages()[s].accesses) {
        if (owner[acc.region] >= 0 && owner[acc.region] != static_cast<int>(s))
          stall_per_item += 1;
        owner[acc.region] = static_cast<int>(s);
      }
    }
  }

  std::uint64_t depth = pipeline.stages().size();
  res.cycles = items * (1 + stall_per_item) + (depth == 0 ? 0 : depth - 1);
  res.cycles_per_item =
      static_cast<double>(res.cycles) / static_cast<double>(items);
  return res;
}

}  // namespace she::hw
