#include "hw/builders.hpp"

#include <string>

namespace she::hw {

namespace {
// LUT-equivalent figures calibrated against the paper's Table 2 synthesis.
constexpr std::size_t kCounterLuts = 40;    // 32-bit item counter + compare
constexpr std::size_t kHashLuts = 1200;     // BOBHash32 rounds, unrolled
constexpr std::size_t kMarkLuts = 140;      // mark arithmetic + compare
constexpr std::size_t kUpdateLuts = 180;    // group reset mux + bit set
}  // namespace

Pipeline make_she_bm_pipeline(std::size_t array_bits, std::size_t group_bits) {
  std::size_t groups = (array_bits + group_bits - 1) / group_bits;
  std::vector<MemoryRegion> regions = {
      {"item_counter", 32},
      {"time_marks", groups},
      {"bit_array", array_bits},
  };
  std::vector<Stage> stages = {
      {"fetch_time", {{0, 32, true, true, true}}, 64, kCounterLuts},
      {"hash_index", {}, 170, kHashLuts},
      {"mark_check", {{1, 1, true, true, true}}, 203, kMarkLuts},
      {"cell_update", {{2, group_bits, true, true, true}}, 0, kUpdateLuts},
  };
  return Pipeline("SHE-BM", std::move(regions), std::move(stages));
}

Pipeline make_she_bf_pipeline(std::size_t array_bits, std::size_t group_bits,
                              unsigned hashes) {
  std::size_t groups = (array_bits + group_bits - 1) / group_bits;
  std::vector<MemoryRegion> regions = {{"item_counter", 32}};
  std::vector<Stage> stages = {
      {"fetch_time", {{0, 32, true, true, true}}, 64, kCounterLuts},
  };
  for (unsigned lane = 0; lane < hashes; ++lane) {
    std::string suffix = "[" + std::to_string(lane) + "]";
    std::size_t marks_region = regions.size();
    regions.push_back({"time_marks" + suffix, groups});
    std::size_t array_region = regions.size();
    regions.push_back({"bit_array" + suffix, array_bits});
    stages.push_back({"hash_index" + suffix, {}, 170, kHashLuts});
    stages.push_back(
        {"mark_check" + suffix, {{marks_region, 1, true, true, true}}, 203, kMarkLuts});
    stages.push_back(
        {"cell_update" + suffix, {{array_region, group_bits, true, true, true}}, 0,
         kUpdateLuts});
  }
  return Pipeline("SHE-BF", std::move(regions), std::move(stages));
}

Pipeline make_swamp_pipeline(std::uint64_t window, unsigned fingerprint_bits) {
  std::size_t queue_bits = static_cast<std::size_t>(window) * fingerprint_bits;
  std::size_t table_bits = queue_bits * 9 / 4;  // TinyTable at 2.25x fingerprints
  std::vector<MemoryRegion> regions = {
      {"fingerprint_queue", queue_bits},
      {"tiny_table", table_bits},
  };
  std::vector<Stage> stages = {
      {"fetch_time", {}, 64, kCounterLuts},
      {"hash_fingerprint", {}, 96, kHashLuts},
      // The queue slot must be read (evicted fingerprint) and overwritten
      // (new fingerprint) for the same item: two accesses in one stage.
      {"queue_swap",
       {{0, fingerprint_bits, false, true, true},
        {0, fingerprint_bits, true, true, true}},
       fingerprint_bits * 2,
       220},
      // Inserting the new fingerprint may expand into adjacent buckets
      // (domino effect): data-dependent, unbounded access.
      {"table_insert", {{1, 64, true, false, false}}, 0, 400},
      // Decrementing the evicted fingerprint touches the same table again,
      // from a different stage: read-write hazard.
      {"table_evict", {{1, 64, true, true, true}}, 0, 300},
  };
  return Pipeline("SWAMP", std::move(regions), std::move(stages));
}

}  // namespace she::hw
