// Adversarial and structured stream patterns.
//
// The figure workloads (trace.hpp) model benign traffic.  Robustness
// testing needs the shapes that break sliding-window summaries: bursts
// that saturate and vanish, cardinality step-changes, periodic flows that
// resonate with the cleaning cycle, single-key floods that starve group
// refresh, and low-entropy alternations.  Each generator is deterministic
// in its seed; the property tests assert SHE's invariants hold under all
// of them.
#pragma once

#include <cstdint>

#include "stream/trace.hpp"

namespace she::stream {

/// `quiet` items of a single hot key, then a burst of `burst` distinct
/// keys, repeated to `length` — alternating starvation and saturation.
Trace burst_pattern(std::uint64_t length, std::uint64_t quiet,
                    std::uint64_t burst, std::uint64_t seed = 1);

/// Cardinality step function: each phase of `phase_len` items draws from a
/// key set whose size doubles each phase (1, 2, 4, ... up to `max_keys`),
/// then restarts.  Stress for cardinality estimators' adaptivity.
Trace step_cardinality(std::uint64_t length, std::uint64_t phase_len,
                       std::uint64_t max_keys, std::uint64_t seed = 1);

/// A key that re-appears exactly every `period` items, embedded in distinct
/// noise.  With period near Tcycle this resonates with the cleaning cycle —
/// the worst case for mark aliasing.
Trace periodic_key(std::uint64_t length, std::uint64_t period,
                   std::uint64_t key, std::uint64_t seed = 1);

/// Only two keys, alternating — minimal entropy, maximal group starvation.
Trace alternating_pair(std::uint64_t length, std::uint64_t key_a = 0xA,
                       std::uint64_t key_b = 0xB);

/// One key repeated `length` times — the degenerate flood.
Trace single_key_flood(std::uint64_t length, std::uint64_t key = 0xF100D);

/// Sawtooth inter-arrival churn: key i is drawn from a window of `width`
/// consecutive IDs that advances by one every item, so every key lives for
/// exactly `width` items of the stream — uniform-age turnover.
Trace rolling_universe(std::uint64_t length, std::uint64_t width,
                       std::uint64_t seed = 1);

}  // namespace she::stream
