// Trace file IO: persist generated traces so experiment runs can share the
// exact same input (or import externally-converted traces — any sequence of
// 64-bit keys).  Format: "SHTR" magic, version byte, u64 count, u64 keys,
// all little-endian.
#pragma once

#include <iosfwd>
#include <string>

#include "stream/trace.hpp"

namespace she::stream {

/// Write `trace` to a binary stream / file.  Throws std::runtime_error on
/// IO failure.
void save_trace(std::ostream& os, const Trace& trace);
void save_trace_file(const std::string& path, const Trace& trace);

/// Read a trace back.  Throws std::runtime_error on bad magic, version or
/// truncation.
Trace load_trace(std::istream& is);
Trace load_trace_file(const std::string& path);

/// Import keys from a text stream: one token per line (surrounding blanks
/// ignored, empty lines and '#' comments skipped).  Decimal tokens become
/// their integer value; anything else is hashed to a 64-bit key, so flow
/// IDs like "10.0.0.1:443" work directly.
Trace load_text_keys(std::istream& is);
Trace load_text_keys_file(const std::string& path);

}  // namespace she::stream
