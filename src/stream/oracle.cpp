#include "stream/oracle.hpp"

#include <stdexcept>

namespace she::stream {

WindowOracle::WindowOracle(std::uint64_t window) : window_(window) {
  if (window == 0) throw std::invalid_argument("WindowOracle: window must be > 0");
}

void WindowOracle::insert(std::uint64_t key) {
  recent_.push_back(key);
  ++counts_[key];
  ++time_;
  if (recent_.size() > window_) {
    std::uint64_t old = recent_.front();
    recent_.pop_front();
    auto it = counts_.find(old);
    if (--it->second == 0) counts_.erase(it);
  }
}

bool WindowOracle::contains(std::uint64_t key) const {
  return counts_.find(key) != counts_.end();
}

std::uint64_t WindowOracle::frequency(std::uint64_t key) const {
  auto it = counts_.find(key);
  return it == counts_.end() ? 0 : it->second;
}

double JaccardOracle::jaccard() const {
  const auto& ca = a_.counts();
  const auto& cb = b_.counts();
  std::uint64_t inter = 0;
  for (const auto& [key, cnt] : ca) {
    (void)cnt;
    if (cb.find(key) != cb.end()) ++inter;
  }
  std::uint64_t uni = ca.size() + cb.size() - inter;
  return uni == 0 ? 0.0 : static_cast<double>(inter) / static_cast<double>(uni);
}

}  // namespace she::stream
