#include "stream/trace_io.hpp"

#include <fstream>
#include <stdexcept>

#include "common/bobhash.hpp"
#include "common/io.hpp"

namespace she::stream {

namespace {
constexpr std::uint8_t kVersion = 1;
}

void save_trace(std::ostream& os, const Trace& trace) {
  BinaryWriter out(os);
  out.tag("SHTR");
  out.u8(kVersion);
  out.u64_vector(trace);
}

void save_trace_file(const std::string& path, const Trace& trace) {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw std::runtime_error("save_trace_file: cannot open " + path);
  save_trace(os, trace);
}

Trace load_trace(std::istream& is) {
  BinaryReader in(is);
  in.expect_tag("SHTR");
  std::uint8_t version = in.u8();
  if (version != kVersion)
    throw std::runtime_error("load_trace: unsupported version " +
                             std::to_string(version));
  return in.u64_vector();
}

Trace load_trace_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("load_trace_file: cannot open " + path);
  return load_trace(is);
}

Trace load_text_keys(std::istream& is) {
  Trace out;
  std::string line;
  while (std::getline(is, line)) {
    std::size_t begin = line.find_first_not_of(" \t\r");
    if (begin == std::string::npos) continue;
    std::size_t end = line.find_last_not_of(" \t\r");
    std::string token = line.substr(begin, end - begin + 1);
    if (token.empty() || token[0] == '#') continue;
    // Pure decimal tokens keep their numeric identity; everything else is
    // hashed (stable across runs: BOBHash over the bytes + a 64-bit mix).
    bool numeric = token.find_first_not_of("0123456789") == std::string::npos &&
                   token.size() <= 19;
    if (numeric) {
      out.push_back(std::stoull(token));
    } else {
      BobHash32 h1(0x7e57), h2(0x7e58);
      out.push_back((std::uint64_t{h1(token)} << 32) | h2(token));
    }
  }
  return out;
}

Trace load_text_keys_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("load_text_keys_file: cannot open " + path);
  return load_text_keys(is);
}

}  // namespace she::stream
