// Exact sliding-window ground truth.
//
// Every accuracy figure in the paper compares an estimator against the true
// window statistics.  WindowOracle maintains the last-N items of one stream
// exactly (ring buffer + multiset counts); JaccardOracle does the same for a
// pair of streams and reports the true Jaccard index of their window *sets*.
// These are reference implementations: clarity over speed, O(1) amortized
// per insert, O(1) membership/frequency/cardinality queries.
#pragma once

#include <cstdint>
#include <deque>
#include <unordered_map>

namespace she::stream {

/// Exact count-based sliding window over a single stream.
class WindowOracle {
 public:
  /// Window of the most recent `window` items.
  explicit WindowOracle(std::uint64_t window);

  /// Append one item; evicts the (now out-dated) item N steps back.
  void insert(std::uint64_t key);

  /// True membership of `key` in the current window.
  [[nodiscard]] bool contains(std::uint64_t key) const;

  /// True frequency of `key` in the current window.
  [[nodiscard]] std::uint64_t frequency(std::uint64_t key) const;

  /// True number of distinct keys in the current window.
  [[nodiscard]] std::uint64_t cardinality() const { return counts_.size(); }

  /// Items inserted so far (the stream clock).
  [[nodiscard]] std::uint64_t time() const { return time_; }

  [[nodiscard]] std::uint64_t window() const { return window_; }

  /// Iterate distinct keys currently in the window.
  [[nodiscard]] const std::unordered_map<std::uint64_t, std::uint64_t>& counts() const {
    return counts_;
  }

 private:
  std::uint64_t window_;
  std::uint64_t time_ = 0;
  std::deque<std::uint64_t> recent_;
  std::unordered_map<std::uint64_t, std::uint64_t> counts_;
};

/// Exact Jaccard similarity of the window *sets* of two synchronized streams.
class JaccardOracle {
 public:
  explicit JaccardOracle(std::uint64_t window) : a_(window), b_(window) {}

  /// Append one item to each stream (streams advance in lock-step, as in
  /// the paper's SHE-MH setup).
  void insert(std::uint64_t key_a, std::uint64_t key_b) {
    a_.insert(key_a);
    b_.insert(key_b);
  }

  /// |A ∩ B| / |A ∪ B| over the two windows' distinct-key sets.
  [[nodiscard]] double jaccard() const;

  [[nodiscard]] const WindowOracle& a() const { return a_; }
  [[nodiscard]] const WindowOracle& b() const { return b_; }

 private:
  WindowOracle a_;
  WindowOracle b_;
};

}  // namespace she::stream
