#include "stream/patterns.hpp"

#include <stdexcept>

#include "common/bobhash.hpp"
#include "common/rng.hpp"

namespace she::stream {

Trace burst_pattern(std::uint64_t length, std::uint64_t quiet,
                    std::uint64_t burst, std::uint64_t seed) {
  if (quiet + burst == 0)
    throw std::invalid_argument("burst_pattern: quiet + burst must be > 0");
  Trace out;
  out.reserve(length);
  std::uint64_t fresh = 0;
  std::uint64_t cycle = quiet + burst;
  for (std::uint64_t i = 0; i < length; ++i) {
    std::uint64_t phase = i % cycle;
    if (phase < quiet) {
      out.push_back(hash64(0x407, seed));  // the lone hot key
    } else {
      out.push_back(hash64(fresh++, seed + 1));  // unique burst keys
    }
  }
  return out;
}

Trace step_cardinality(std::uint64_t length, std::uint64_t phase_len,
                       std::uint64_t max_keys, std::uint64_t seed) {
  if (phase_len == 0) throw std::invalid_argument("step_cardinality: phase_len 0");
  if (max_keys == 0) throw std::invalid_argument("step_cardinality: max_keys 0");
  Rng rng(seed);
  Trace out;
  out.reserve(length);
  std::uint64_t keys = 1;
  std::uint64_t epoch = 0;
  for (std::uint64_t i = 0; i < length; ++i) {
    if (i > 0 && i % phase_len == 0) {
      keys *= 2;
      if (keys > max_keys) {
        keys = 1;
        ++epoch;  // restart with a fresh key space
      }
    }
    out.push_back(hash64(rng.below(keys), seed + 13 * epoch + keys));
  }
  return out;
}

Trace periodic_key(std::uint64_t length, std::uint64_t period,
                   std::uint64_t key, std::uint64_t seed) {
  if (period == 0) throw std::invalid_argument("periodic_key: period 0");
  Trace out;
  out.reserve(length);
  std::uint64_t fresh = 0;
  for (std::uint64_t i = 0; i < length; ++i) {
    if (i % period == 0) {
      out.push_back(key);
    } else {
      out.push_back(hash64(fresh++, seed + 0xF00));
    }
  }
  return out;
}

Trace alternating_pair(std::uint64_t length, std::uint64_t key_a,
                       std::uint64_t key_b) {
  Trace out;
  out.reserve(length);
  for (std::uint64_t i = 0; i < length; ++i)
    out.push_back(i % 2 == 0 ? key_a : key_b);
  return out;
}

Trace single_key_flood(std::uint64_t length, std::uint64_t key) {
  return Trace(length, key);
}

Trace rolling_universe(std::uint64_t length, std::uint64_t width,
                       std::uint64_t seed) {
  if (width == 0) throw std::invalid_argument("rolling_universe: width 0");
  Rng rng(seed);
  Trace out;
  out.reserve(length);
  for (std::uint64_t i = 0; i < length; ++i)
    out.push_back(hash64(i + rng.below(width), seed + 0xE0));
  return out;
}

}  // namespace she::stream
