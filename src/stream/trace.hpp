// Synthetic data-stream traces.
//
// The paper evaluates on four datasets (Sec. 7.1): CAIDA backbone traces,
// a Distinct Stream (every item unique), Relevant Stream pairs (IMC10
// derived), and Campus/Webpage traces for throughput.  None of these are
// redistributable, so we generate seeded synthetic equivalents with matching
// statistical shape (DESIGN.md §5).  All generators are deterministic in the
// seed.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace she::stream {

/// A trace is a finite prefix of a data stream: item keys in arrival order.
using Trace = std::vector<std::uint64_t>;

/// Parameters of a Zipf-shaped trace.
struct ZipfTraceConfig {
  std::uint64_t length = 1u << 20;    ///< number of items
  std::uint64_t universe = 600'000;   ///< number of distinct candidate keys
  double skew = 1.0;                  ///< Zipf exponent
  std::uint64_t seed = 1;             ///< RNG seed
  std::uint64_t key_offset = 0;       ///< added to every key (disjoint universes)
};

/// Heavy-tailed trace; with defaults this mimics the paper's CAIDA slice
/// (~600K distinct srcIPs, skewed frequencies).
Trace zipf_trace(const ZipfTraceConfig& cfg);

/// Every item distinct — the paper's "Distinct Stream", the worst case for
/// SHE-BF (no repeated insertions to refresh groups).
Trace distinct_trace(std::uint64_t length, std::uint64_t seed = 1);

/// A pair of streams over a shared universe with tunable overlap, the
/// paper's "Relevant Stream" for SHE-MH.  `overlap` in [0,1] is the
/// probability that a B-item is drawn from A's universe rather than a
/// disjoint one; the exact window Jaccard is computed by the oracle.
struct RelevantPair {
  Trace a;
  Trace b;
};
RelevantPair relevant_pair(std::uint64_t length, std::uint64_t universe,
                           double overlap, double skew = 0.8,
                           std::uint64_t seed = 1);

/// Named datasets used by the throughput figures (Fig. 10/11):
///   "caida"   — skew 1.0, 600K universe (backbone-like)
///   "campus"  — skew 0.6, 200K universe (flatter campus gateway mix)
///   "webpage" — skew 1.3, 60K universe  (FIMI web-page items, strong skew)
/// Throws std::invalid_argument on unknown names.
Trace named_dataset(const std::string& name, std::uint64_t length,
                    std::uint64_t seed = 1);

/// Count of distinct keys in a trace (test/diagnostic helper).
std::uint64_t distinct_count(const Trace& t);

}  // namespace she::stream
