#include "stream/trace.hpp"

#include <stdexcept>
#include <unordered_set>

#include "common/bobhash.hpp"
#include "common/rng.hpp"
#include "common/zipf.hpp"

namespace she::stream {

Trace zipf_trace(const ZipfTraceConfig& cfg) {
  Rng rng(cfg.seed);
  ZipfDistribution zipf(cfg.universe, cfg.skew);
  Trace out;
  out.reserve(cfg.length);
  for (std::uint64_t i = 0; i < cfg.length; ++i) {
    // Whiten the rank so that hot keys are not clustered in hash space.
    std::uint64_t rank = zipf(rng);
    out.push_back(hash64(rank, /*seed=*/0xC0FFEE) % (cfg.universe * 4) + cfg.key_offset);
  }
  return out;
}

Trace distinct_trace(std::uint64_t length, std::uint64_t seed) {
  Trace out;
  out.reserve(length);
  // hash64 is a bijection on 64-bit ints, so seed+i values never collide.
  for (std::uint64_t i = 0; i < length; ++i) out.push_back(hash64(i, seed));
  return out;
}

RelevantPair relevant_pair(std::uint64_t length, std::uint64_t universe,
                           double overlap, double skew, std::uint64_t seed) {
  if (overlap < 0.0 || overlap > 1.0)
    throw std::invalid_argument("relevant_pair: overlap must be in [0,1]");
  Rng rng(seed);
  ZipfDistribution zipf(universe, skew);
  RelevantPair pair;
  pair.a.reserve(length);
  pair.b.reserve(length);
  for (std::uint64_t i = 0; i < length; ++i) {
    pair.a.push_back(zipf(rng));
    std::uint64_t rank = zipf(rng);
    bool shared = rng.uniform() < overlap;
    pair.b.push_back(shared ? rank : rank + universe);
  }
  return pair;
}

Trace named_dataset(const std::string& name, std::uint64_t length,
                    std::uint64_t seed) {
  ZipfTraceConfig cfg;
  cfg.length = length;
  cfg.seed = seed;
  if (name == "caida") {
    cfg.universe = 600'000;
    cfg.skew = 1.0;
  } else if (name == "campus") {
    cfg.universe = 200'000;
    cfg.skew = 0.6;
  } else if (name == "webpage") {
    cfg.universe = 60'000;
    cfg.skew = 1.3;
  } else {
    throw std::invalid_argument("named_dataset: unknown dataset '" + name + "'");
  }
  return zipf_trace(cfg);
}

std::uint64_t distinct_count(const Trace& t) {
  std::unordered_set<std::uint64_t> seen(t.begin(), t.end());
  return seen.size();
}

}  // namespace she::stream
