// CVS — Counter Vector Sketch [Shan et al., Neurocomputing 2016].
//
// A vector of small saturating counters (max value c).  Insert sets the
// hashed counter to c and then decrements `m*c/N` randomly chosen counters
// (fractional part accumulated), so that a counter written once decays to
// zero in roughly one window.  Cardinality is linear counting over the
// non-zero counters.  The random decrement is CVS's accuracy weakness
// (the paper's Sec. 2.2): expiry is only correct in expectation.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bobhash.hpp"
#include "common/rng.hpp"

namespace she::baselines {

class CounterVectorSketch {
 public:
  /// `counters` cells with maximum value `cmax` (paper setting: 10),
  /// window of `window` items.
  CounterVectorSketch(std::size_t counters, std::uint64_t window,
                      unsigned cmax = 10, std::uint32_t seed = 0);

  void insert(std::uint64_t key);

  /// Linear-counting cardinality over non-zero counters.
  [[nodiscard]] double cardinality() const;

  void clear();

  [[nodiscard]] std::uint64_t time() const { return time_; }

  /// 4-bit cells (cmax <= 15) packed.
  [[nodiscard]] std::size_t memory_bytes() const { return (cells_.size() + 1) / 2; }

 private:
  std::size_t slots_;
  std::uint64_t window_;
  unsigned cmax_;
  std::uint32_t seed_;
  double decrements_per_insert_;
  double pending_ = 0.0;  // fractional decrement accumulator
  std::uint64_t time_ = 0;
  Rng rng_;
  std::vector<std::uint8_t> cells_;
};

}  // namespace she::baselines
