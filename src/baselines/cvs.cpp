#include "baselines/cvs.hpp"

#include <algorithm>
#include <stdexcept>

#include "sketch/bitmap.hpp"

namespace she::baselines {

CounterVectorSketch::CounterVectorSketch(std::size_t counters, std::uint64_t window,
                                         unsigned cmax, std::uint32_t seed)
    : slots_(counters),
      window_(window),
      cmax_(cmax),
      seed_(seed),
      decrements_per_insert_(static_cast<double>(counters) * cmax /
                             static_cast<double>(window)),
      rng_(seed ^ 0xC5EDu),
      cells_(counters, 0) {
  if (counters == 0) throw std::invalid_argument("CVS: counters must be > 0");
  if (window == 0) throw std::invalid_argument("CVS: window must be > 0");
  if (cmax == 0 || cmax > 15) throw std::invalid_argument("CVS: cmax must be in [1,15]");
}

void CounterVectorSketch::insert(std::uint64_t key) {
  ++time_;
  cells_[BobHash32(seed_)(key) % slots_] = static_cast<std::uint8_t>(cmax_);
  pending_ += decrements_per_insert_;
  while (pending_ >= 1.0) {
    pending_ -= 1.0;
    std::uint8_t& c = cells_[rng_.below(slots_)];
    if (c > 0) --c;
  }
}

double CounterVectorSketch::cardinality() const {
  std::size_t zeros = 0;
  for (std::uint8_t c : cells_)
    if (c == 0) ++zeros;
  return fixed::linear_counting(zeros, slots_, static_cast<double>(slots_));
}

void CounterVectorSketch::clear() {
  std::fill(cells_.begin(), cells_.end(), std::uint8_t{0});
  pending_ = 0.0;
  time_ = 0;
}

}  // namespace she::baselines
