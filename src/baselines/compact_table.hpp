// CompactCountingTable — a TinyTable-style compact fingerprint multiset.
//
// SWAMP's companion structure stores, for every fingerprint in the window
// queue, how many times it occurs.  TinyTable does this in packed buckets
// with chain spilling; we implement the same shape: `buckets` buckets of
// `slots_per_bucket` packed (fingerprint, small-count) entries, insertions
// probing a bounded chain of consecutive buckets (the chain bound is what
// *prevents* the unbounded domino effect in software — at the cost of
// occasionally dropping an entry when the chain is saturated, which the
// caller can observe via the return value / dropped()).
//
// Counts are `count_bits` wide; a fingerprint hotter than the count ceiling
// occupies additional slots (chain counting), keeping insert/remove exactly
// balanced, which the sliding queue requires.  count == 0 marks a free
// slot, so no extra occupancy bitmap is needed.
#pragma once

#include <cstdint>

#include "common/bobhash.hpp"
#include "common/packed_array.hpp"

namespace she::baselines {

class CompactCountingTable {
 public:
  /// `buckets` x `slots_per_bucket` slots of (`fp_bits`, `count_bits`).
  CompactCountingTable(std::size_t buckets, unsigned slots_per_bucket,
                       unsigned fp_bits, unsigned count_bits = 4,
                       std::uint32_t seed = 0);

  /// Add one occurrence of `fp`.  Returns false (and counts a drop) when
  /// the whole probe chain is full.
  bool insert(std::uint32_t fp);

  /// Remove one occurrence.  Returns false if `fp` is not present (e.g. its
  /// insert was dropped).
  bool remove(std::uint32_t fp);

  /// Occurrences of `fp` currently stored.
  [[nodiscard]] std::uint64_t count(std::uint32_t fp) const;

  [[nodiscard]] bool contains(std::uint32_t fp) const { return count(fp) > 0; }

  /// Number of distinct fingerprints currently stored (maintained
  /// incrementally).
  [[nodiscard]] std::size_t distinct() const { return distinct_; }

  /// Inserts dropped because the probe chain was saturated.
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }

  void clear();

  [[nodiscard]] std::size_t slot_count() const { return fps_.size(); }

  /// Real payload bytes: packed fingerprints + packed counts.
  [[nodiscard]] std::size_t memory_bytes() const {
    return fps_.memory_bytes() + counts_.memory_bytes();
  }

  /// Buckets probed per operation (the bounded chain).  8 buckets x 4 slots
  /// keeps the drop probability negligible at TinyTable's ~0.8 load factor
  /// while still bounding the worst case (no domino effect).
  static constexpr std::size_t kChain = 8;

 private:
  [[nodiscard]] std::size_t home_bucket(std::uint32_t fp) const {
    return BobHash32(seed_)(static_cast<std::uint64_t>(fp)) % buckets_;
  }

  std::size_t buckets_;
  unsigned slots_;
  std::uint32_t seed_;
  PackedArray fps_;     // fingerprint per slot
  PackedArray counts_;  // occurrence count per slot; 0 = free
  std::size_t distinct_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace she::baselines
