#include "baselines/compact_table.hpp"

#include <stdexcept>

namespace she::baselines {

CompactCountingTable::CompactCountingTable(std::size_t buckets,
                                           unsigned slots_per_bucket,
                                           unsigned fp_bits, unsigned count_bits,
                                           std::uint32_t seed)
    : buckets_(buckets),
      slots_(slots_per_bucket),
      seed_(seed),
      fps_(buckets * slots_per_bucket, fp_bits),
      counts_(buckets * slots_per_bucket, count_bits) {
  if (buckets == 0)
    throw std::invalid_argument("CompactCountingTable: buckets must be > 0");
  if (slots_per_bucket == 0)
    throw std::invalid_argument("CompactCountingTable: slots must be > 0");
  if (count_bits == 0 || count_bits > 16)
    throw std::invalid_argument("CompactCountingTable: count_bits in [1,16]");
}

bool CompactCountingTable::insert(std::uint32_t fp) {
  std::uint64_t fp_stored = fp & fps_.max_value();
  std::size_t home = home_bucket(fp);
  std::size_t free_slot = fps_.size();  // sentinel: none found yet
  bool existing_seen = false;

  for (std::size_t hop = 0; hop < kChain; ++hop) {
    std::size_t bucket = (home + hop) % buckets_;
    for (unsigned s = 0; s < slots_; ++s) {
      std::size_t slot = bucket * slots_ + s;
      std::uint64_t c = counts_.get(slot);
      if (c == 0) {
        if (free_slot == fps_.size()) free_slot = slot;
        continue;
      }
      if (fps_.get(slot) != fp_stored) continue;
      existing_seen = true;
      if (c < counts_.max_value()) {
        counts_.set(slot, c + 1);
        return true;
      }
      // Saturated entry: fall through and chain-count in a fresh slot.
    }
  }
  if (free_slot == fps_.size()) {
    ++dropped_;  // the bounded chain is what stops TinyTable's domino effect
    return false;
  }
  fps_.set(free_slot, fp_stored);
  counts_.set(free_slot, 1);
  if (!existing_seen) ++distinct_;
  return true;
}

bool CompactCountingTable::remove(std::uint32_t fp) {
  std::uint64_t fp_stored = fp & fps_.max_value();
  std::size_t home = home_bucket(fp);
  std::size_t victim = fps_.size();
  std::size_t occurrences = 0;

  for (std::size_t hop = 0; hop < kChain; ++hop) {
    std::size_t bucket = (home + hop) % buckets_;
    for (unsigned s = 0; s < slots_; ++s) {
      std::size_t slot = bucket * slots_ + s;
      if (counts_.get(slot) == 0 || fps_.get(slot) != fp_stored) continue;
      ++occurrences;
      // Prefer decrementing an unsaturated (chain-tail) entry so saturated
      // base entries stay intact.
      if (victim == fps_.size() || counts_.get(slot) < counts_.get(victim))
        victim = slot;
    }
  }
  if (victim == fps_.size()) return false;
  std::uint64_t c = counts_.get(victim);
  counts_.set(victim, c - 1);
  if (c == 1 && occurrences == 1) --distinct_;
  return true;
}

std::uint64_t CompactCountingTable::count(std::uint32_t fp) const {
  std::uint64_t fp_stored = fp & fps_.max_value();
  std::size_t home = home_bucket(fp);
  std::uint64_t total = 0;
  for (std::size_t hop = 0; hop < kChain; ++hop) {
    std::size_t bucket = (home + hop) % buckets_;
    for (unsigned s = 0; s < slots_; ++s) {
      std::size_t slot = bucket * slots_ + s;
      if (counts_.get(slot) != 0 && fps_.get(slot) == fp_stored)
        total += counts_.get(slot);
    }
  }
  return total;
}

void CompactCountingTable::clear() {
  fps_.clear();
  counts_.clear();
  distinct_ = 0;
  dropped_ = 0;
}

}  // namespace she::baselines
