// SWAMP [Assaf, Ben Basat, Einziger et al., INFOCOM 2018] — the paper's main
// generic competitor.
//
// A cyclic queue holds the fingerprints of the last W items (W = the window
// size); a companion TinyTable-style compact table (CompactCountingTable)
// counts how many times each fingerprint occurs among those W.  Membership
// (ISMEMBER), frequency, and cardinality (DISTINCT maximum-likelihood,
// correcting for fingerprint collisions) all read that table.
//
// Memory: the queue stores W fingerprints of `fingerprint_bits` each; the
// table provides 1.5*W slots of (fingerprint + 4-bit count) — slot slack
// absorbing probe-chain clustering.  memory_bytes() reports the *real*
// packed footprint.  SWAMP's accuracy at a budget B follows from
// f = (8B/W - 6) / 2.5 fingerprint bits: small budgets force tiny
// fingerprints and collision-dominated answers (the paper's Fig. 9), and
// below f = 1 SWAMP cannot run at all.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "baselines/compact_table.hpp"
#include "common/bobhash.hpp"

namespace she::baselines {

class Swamp {
 public:
  /// Window of `window` items, fingerprints of `fingerprint_bits` (1..31).
  Swamp(std::uint64_t window, unsigned fingerprint_bits, std::uint32_t seed = 0);

  /// Insert one item: evict the W-old fingerprint, enqueue the new one.
  void insert(std::uint64_t key);

  /// ISMEMBER estimator: true iff the key's fingerprint occurs in the window.
  /// One-sided (no false negatives) up to fingerprint collisions and the
  /// table's (rare) chain-saturation drops.
  [[nodiscard]] bool contains(std::uint64_t key) const;

  /// Frequency estimator: occurrences of the key's fingerprint.
  [[nodiscard]] std::uint64_t frequency(std::uint64_t key) const;

  /// DISTINCT MLE estimator: corrects observed distinct-fingerprint count d
  /// for collisions in a 2^f space: n_hat = ln(1 - d/L) / ln(1 - 1/L).
  [[nodiscard]] double cardinality() const;

  void clear();

  [[nodiscard]] std::uint64_t time() const { return time_; }
  [[nodiscard]] std::uint64_t window() const { return window_; }
  [[nodiscard]] unsigned fingerprint_bits() const { return fbits_; }

  /// Inserts the compact table had to drop (diagnostic; ~0 when sized
  /// normally).
  [[nodiscard]] std::uint64_t table_drops() const { return counts_.dropped(); }

  /// Real memory: packed queue + packed table.
  [[nodiscard]] std::size_t memory_bytes() const;

  /// Largest fingerprint width (bits) fitting in `bytes` for a window of
  /// `window` items; nullopt if even 1 bit does not fit (SWAMP infeasible
  /// at this budget — the paper's small-memory regime).
  static std::optional<unsigned> fingerprint_bits_for_memory(std::uint64_t window,
                                                             std::size_t bytes);

 private:
  [[nodiscard]] std::uint32_t fingerprint(std::uint64_t key) const {
    return BobHash32(seed_)(key) & fmask_;
  }

  static std::size_t table_buckets(std::uint64_t window);

  std::uint64_t window_;
  unsigned fbits_;
  std::uint32_t fmask_;
  std::uint32_t seed_;
  std::uint64_t time_ = 0;
  PackedArray queue_;   // cyclic, `window` fingerprints
  std::uint64_t head_ = 0;
  std::uint64_t filled_ = 0;
  CompactCountingTable counts_;
};

}  // namespace she::baselines
