// ECM — Exponential-histogram Count-Min [Papapetrou, Garofalakis &
// Deligiannakis, VLDB 2012].
//
// A Count-Min sketch whose counters are Exponential Histograms (Datar et
// al.): each counter keeps buckets of power-of-two sizes with at most
// `k_eh + 1` buckets per size, merging the two oldest of a size on
// overflow.  A window query sums the in-window buckets, counting the oldest
// straddling bucket at half weight — the EH's (1 + 1/k_eh) approximation.
// Exact-ish expiry, but each counter costs O(k_eh * log N) bucket records;
// memory_bytes() reports the real footprint.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "common/bobhash.hpp"

namespace she::baselines {

/// One exponential-histogram counter over a count-based window.
class ExpHistogram {
 public:
  /// `k` controls accuracy: relative count error <= 1/(2k) roughly.
  explicit ExpHistogram(unsigned k) : k_(k) {}

  /// Record one event at time `t` (monotone non-decreasing).
  void add(std::uint64_t t);

  /// Drop buckets that can no longer intersect a window of `window` items
  /// ending at `now` (standard EH expiry: a bucket leaves when its newest
  /// element leaves).
  void expire(std::uint64_t now, std::uint64_t window);

  /// Events within (now - window, now].
  [[nodiscard]] double count(std::uint64_t now, std::uint64_t window) const;

  [[nodiscard]] std::size_t bucket_count() const { return buckets_.size(); }

  void clear() { buckets_.clear(); }

 private:
  struct Bucket {
    std::uint64_t newest;  // timestamp of the most recent event merged in
    std::uint64_t size;    // power of two
  };

  unsigned k_;
  std::deque<Bucket> buckets_;  // oldest at front
};

class EcmSketch {
 public:
  /// `counters` EH cells probed by `hashes` functions; EH accuracy knob
  /// `k_eh` (paper default experiments use 4 hash functions).
  EcmSketch(std::size_t counters, unsigned hashes, std::uint64_t window,
            unsigned k_eh = 4, std::uint32_t seed = 0);

  void insert(std::uint64_t key);

  /// Estimated frequency in the last-`window()` items: min over probes.
  [[nodiscard]] double frequency(std::uint64_t key) const;

  void clear();

  [[nodiscard]] std::uint64_t time() const { return time_; }
  [[nodiscard]] std::uint64_t window() const { return window_; }

  /// Real footprint: 8 bytes per live EH bucket (64-bit timestamp; size is
  /// positional) + a directory slot per counter.
  [[nodiscard]] std::size_t memory_bytes() const;

 private:
  [[nodiscard]] std::size_t position(std::uint64_t key, unsigned i) const {
    return BobHash32(seed_ + i)(key) % cells_.size();
  }

  unsigned hashes_;
  std::uint64_t window_;
  std::uint32_t seed_;
  std::uint64_t time_ = 0;
  std::vector<ExpHistogram> cells_;
};

}  // namespace she::baselines
