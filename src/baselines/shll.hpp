// SHLL — Sliding HyperLogLog [Chabchoub & Hébrail, ICDMW 2010].
//
// Each HLL register keeps a List of Future Possible Maxima: (rank, time)
// pairs such that ranks strictly decrease with recency.  An arriving item
// pops every entry with rank <= its own before pushing itself, and entries
// older than the maximum supported window are dropped.  Queries take the
// max rank among in-window entries per register and apply the standard HLL
// estimator.  Expiry is exact, but the per-register queues make memory
// data-dependent and unbounded in the worst case — the drawback the paper
// cites; memory_bytes()/peak_memory_bytes() report the actual footprint at
// the paper's 64-bit-timestamp accounting.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "common/bobhash.hpp"

namespace she::baselines {

class SlidingHyperLogLog {
 public:
  /// `registers` LFPM queues; answers any window up to `max_window`.
  SlidingHyperLogLog(std::size_t registers, std::uint64_t max_window,
                     std::uint32_t seed = 0);

  void insert(std::uint64_t key);

  /// Cardinality of the last `window` items (window <= max_window).
  [[nodiscard]] double cardinality(std::uint64_t window) const;

  void clear();

  [[nodiscard]] std::uint64_t time() const { return time_; }

  /// Current footprint: one (8-byte time, 1-byte rank) entry per queued
  /// maximum, plus the register directory.
  [[nodiscard]] std::size_t memory_bytes() const;
  [[nodiscard]] std::size_t peak_memory_bytes() const { return peak_bytes_; }

 private:
  struct Entry {
    std::uint64_t t;
    std::uint8_t rank;
  };

  std::uint64_t max_window_;
  std::uint32_t seed_;
  std::uint64_t time_ = 0;
  std::size_t entries_ = 0;
  std::size_t peak_bytes_ = 0;
  std::vector<std::deque<Entry>> lfpm_;  // newest at back, ranks decrease to back
};

}  // namespace she::baselines
