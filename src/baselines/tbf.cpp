#include "baselines/tbf.hpp"

#include <stdexcept>

#include "common/int_math.hpp"

namespace she::baselines {

TimingBloomFilter::TimingBloomFilter(std::size_t slots, unsigned hashes,
                                     std::uint64_t window, unsigned counter_bits,
                                     std::uint32_t seed)
    : hashes_(hashes),
      window_(window),
      seed_(seed),
      scan_step_(static_cast<std::size_t>(ceil_div(slots, window))),
      cells_(slots, counter_bits) {
  if (hashes == 0) throw std::invalid_argument("TBF: hashes must be > 0");
  if (window == 0) throw std::invalid_argument("TBF: window must be > 0");
  if ((std::uint64_t{1} << counter_bits) < 2 * window + 2)
    throw std::invalid_argument("TBF: counter_bits too small for the window");
  if (scan_step_ == 0) scan_step_ = 1;
}

bool TimingBloomFilter::expired(std::uint64_t cell) const {
  if (cell == 0) return true;
  std::uint64_t wrap = cells_.max_value();  // stamps live in [1, wrap]
  std::uint64_t now = stamp(time_);
  // Wrapped age: how many ticks ago the stamp was written, modulo `wrap`.
  std::uint64_t age = now >= cell ? now - cell : now + wrap - cell;
  return age >= window_;
}

void TimingBloomFilter::insert(std::uint64_t key) {
  ++time_;
  // Background expiry: revisit the whole array at least once per window so
  // wrapped times never become ambiguous.
  for (std::size_t s = 0; s < scan_step_; ++s) {
    std::size_t idx = scan_;
    scan_ = (scan_ + 1) % cells_.size();
    if (expired(cells_.get(idx))) cells_.set(idx, 0);
  }
  std::uint64_t now = stamp(time_);
  for (unsigned i = 0; i < hashes_; ++i) cells_.set(position(key, i), now);
}

bool TimingBloomFilter::contains(std::uint64_t key) const {
  for (unsigned i = 0; i < hashes_; ++i)
    if (expired(cells_.get(position(key, i)))) return false;
  return true;
}

void TimingBloomFilter::clear() {
  cells_.clear();
  time_ = 0;
  scan_ = 0;
}

}  // namespace she::baselines
