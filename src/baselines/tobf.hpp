// TOBF — Time-Out Bloom Filter [Kong et al., ICOIN 2006].
//
// A Bloom filter whose bits are replaced by full 64-bit arrival timestamps.
// Insert stamps all k hashed slots; membership requires every hashed slot
// to hold an in-window timestamp.  Exact expiry, no false negatives, but
// 64 bits per cell — the memory cost the paper's Fig. 9d exposes.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bobhash.hpp"

namespace she::baselines {

class TimeOutBloomFilter {
 public:
  TimeOutBloomFilter(std::size_t slots, unsigned hashes, std::uint64_t window,
                     std::uint32_t seed = 0);

  void insert(std::uint64_t key);

  /// True iff all k hashed slots were stamped within the window.
  [[nodiscard]] bool contains(std::uint64_t key) const;

  void clear();

  [[nodiscard]] std::uint64_t time() const { return time_; }
  [[nodiscard]] std::size_t memory_bytes() const {
    return ts_.size() * sizeof(std::uint64_t);
  }

 private:
  [[nodiscard]] std::size_t position(std::uint64_t key, unsigned i) const {
    return BobHash32(seed_ + i)(key) % ts_.size();
  }

  unsigned hashes_;
  std::uint64_t window_;
  std::uint32_t seed_;
  std::uint64_t time_ = 0;
  std::vector<std::uint64_t> ts_;  // 0 = never written
};

}  // namespace she::baselines
