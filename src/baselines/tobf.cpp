#include "baselines/tobf.hpp"

#include <algorithm>
#include <stdexcept>

namespace she::baselines {

TimeOutBloomFilter::TimeOutBloomFilter(std::size_t slots, unsigned hashes,
                                       std::uint64_t window, std::uint32_t seed)
    : hashes_(hashes), window_(window), seed_(seed), ts_(slots, 0) {
  if (slots == 0) throw std::invalid_argument("TOBF: slots must be > 0");
  if (hashes == 0) throw std::invalid_argument("TOBF: hashes must be > 0");
  if (window == 0) throw std::invalid_argument("TOBF: window must be > 0");
}

void TimeOutBloomFilter::insert(std::uint64_t key) {
  ++time_;
  for (unsigned i = 0; i < hashes_; ++i) ts_[position(key, i)] = time_;
}

bool TimeOutBloomFilter::contains(std::uint64_t key) const {
  for (unsigned i = 0; i < hashes_; ++i) {
    std::uint64_t t = ts_[position(key, i)];
    if (t == 0 || time_ - t >= window_) return false;
  }
  return true;
}

void TimeOutBloomFilter::clear() {
  std::fill(ts_.begin(), ts_.end(), 0);
  time_ = 0;
}

}  // namespace she::baselines
