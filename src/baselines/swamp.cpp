#include "baselines/swamp.hpp"

#include <cmath>
#include <stdexcept>

namespace she::baselines {

namespace {
constexpr unsigned kSlotsPerBucket = 4;
constexpr unsigned kCountBits = 4;
constexpr double kSlotSlack = 1.5;  // slot headroom absorbing chain clustering
}  // namespace

std::size_t Swamp::table_buckets(std::uint64_t window) {
  auto slots = static_cast<std::size_t>(kSlotSlack * static_cast<double>(window));
  return (slots + kSlotsPerBucket - 1) / kSlotsPerBucket + 1;
}

Swamp::Swamp(std::uint64_t window, unsigned fingerprint_bits, std::uint32_t seed)
    : window_(window),
      fbits_(fingerprint_bits),
      fmask_((fingerprint_bits >= 32 ? ~std::uint32_t{0}
                                     : ((std::uint32_t{1} << fingerprint_bits) - 1))),
      seed_(seed),
      queue_(window, fingerprint_bits),
      counts_(table_buckets(window), kSlotsPerBucket, fingerprint_bits,
              kCountBits, seed + 0x5A5A) {
  if (window == 0) throw std::invalid_argument("Swamp: window must be > 0");
  if (fingerprint_bits == 0 || fingerprint_bits > 31)
    throw std::invalid_argument("Swamp: fingerprint_bits must be in [1,31]");
}

void Swamp::insert(std::uint64_t key) {
  std::uint32_t fp = fingerprint(key);
  if (filled_ == window_) {
    auto old = static_cast<std::uint32_t>(queue_.get(head_));
    counts_.remove(old);  // false only if the original insert was dropped
  } else {
    ++filled_;
  }
  queue_.set(head_, fp);
  counts_.insert(fp);
  head_ = (head_ + 1) % window_;
  ++time_;
}

bool Swamp::contains(std::uint64_t key) const {
  return counts_.contains(fingerprint(key));
}

std::uint64_t Swamp::frequency(std::uint64_t key) const {
  return counts_.count(fingerprint(key));
}

double Swamp::cardinality() const {
  double space = std::ldexp(1.0, static_cast<int>(fbits_));  // L = 2^f
  double d = static_cast<double>(counts_.distinct());
  if (d >= space) return space * std::log(space);  // saturated fingerprint space
  // MLE inversion of the collision process (SWAMP's DISTINCT estimator).
  return std::log(1.0 - d / space) / std::log(1.0 - 1.0 / space);
}

void Swamp::clear() {
  counts_.clear();
  queue_.clear();
  head_ = filled_ = time_ = 0;
}

std::size_t Swamp::memory_bytes() const {
  return queue_.memory_bytes() + counts_.memory_bytes();
}

std::optional<unsigned> Swamp::fingerprint_bits_for_memory(std::uint64_t window,
                                                           std::size_t bytes) {
  // Total bits = W*f (queue) + 1.5*W*(f + 4) (table) = W*(2.5 f + 6).
  double f = (8.0 * static_cast<double>(bytes) / static_cast<double>(window) -
              kSlotSlack * kCountBits) /
             (1.0 + kSlotSlack);
  if (f < 1.0) return std::nullopt;
  return static_cast<unsigned>(std::min(f, 31.0));
}

}  // namespace she::baselines
