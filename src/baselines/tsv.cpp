#include "baselines/tsv.hpp"

#include <algorithm>
#include <stdexcept>

#include "sketch/bitmap.hpp"

namespace she::baselines {

TimestampVector::TimestampVector(std::size_t slots, std::uint64_t window,
                                 std::uint32_t seed)
    : slots_(slots), window_(window), seed_(seed), ts_(slots, 0) {
  if (slots == 0) throw std::invalid_argument("TimestampVector: slots must be > 0");
  if (window == 0) throw std::invalid_argument("TimestampVector: window must be > 0");
}

void TimestampVector::insert(std::uint64_t key) {
  ++time_;
  ts_[BobHash32(seed_)(key) % slots_] = time_;
}

double TimestampVector::cardinality() const {
  std::size_t active = 0;
  for (std::uint64_t t : ts_)
    if (t != 0 && time_ - t < window_) ++active;
  return fixed::linear_counting(slots_ - active, slots_,
                                static_cast<double>(slots_));
}

void TimestampVector::clear() {
  std::fill(ts_.begin(), ts_.end(), 0);
  time_ = 0;
}

}  // namespace she::baselines
