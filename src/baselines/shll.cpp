#include "baselines/shll.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/int_math.hpp"
#include "sketch/hyperloglog.hpp"

namespace she::baselines {

SlidingHyperLogLog::SlidingHyperLogLog(std::size_t registers,
                                       std::uint64_t max_window,
                                       std::uint32_t seed)
    : max_window_(max_window), seed_(seed), lfpm_(registers) {
  if (registers == 0) throw std::invalid_argument("SHLL: registers must be > 0");
  if (max_window == 0) throw std::invalid_argument("SHLL: max_window must be > 0");
}

void SlidingHyperLogLog::insert(std::uint64_t key) {
  ++time_;
  std::size_t i = BobHash32(seed_)(key) % lfpm_.size();
  std::uint32_t h = BobHash32(seed_ + 0x5eed)(key);
  std::uint8_t rank = hll_rank(h, 32);

  auto& q = lfpm_[i];
  // Expire entries that can never matter again.
  while (!q.empty() && time_ - q.front().t >= max_window_) {
    q.pop_front();
    --entries_;
  }
  // Maintain the monotone property: the new entry supersedes every queued
  // entry with rank <= its own (they are older *and* no larger).
  while (!q.empty() && q.back().rank <= rank) {
    q.pop_back();
    --entries_;
  }
  q.push_back({time_, rank});
  ++entries_;
  peak_bytes_ = std::max(peak_bytes_, memory_bytes());
}

double SlidingHyperLogLog::cardinality(std::uint64_t window) const {
  if (window > max_window_)
    throw std::invalid_argument("SHLL: window exceeds max_window");
  double sum = 0.0;
  std::size_t zeros = 0;
  for (const auto& q : lfpm_) {
    std::uint8_t best = 0;
    for (const auto& e : q) {
      if (time_ - e.t < window && e.rank > best) best = e.rank;
    }
    if (best == 0) ++zeros;
    sum += std::ldexp(1.0, -static_cast<int>(best));
  }
  double m = static_cast<double>(lfpm_.size());
  return fixed::HyperLogLog::estimate(sum, lfpm_.size(), m, zeros);
}

std::size_t SlidingHyperLogLog::memory_bytes() const {
  // Paper accounting: 64-bit timestamp + rank byte per queued entry, plus a
  // pointer-sized directory slot per register.
  return entries_ * 9 + lfpm_.size() * sizeof(void*);
}

void SlidingHyperLogLog::clear() {
  for (auto& q : lfpm_) q.clear();
  entries_ = 0;
  peak_bytes_ = 0;
  time_ = 0;
}

}  // namespace she::baselines
