#include "baselines/ecm.hpp"

#include <algorithm>
#include <stdexcept>

namespace she::baselines {

void ExpHistogram::add(std::uint64_t t) {
  buckets_.push_back({t, 1});
  // Cascade merges: at most k_+1 buckets of each size; merging the two
  // oldest of a size produces one of the next size, which may overflow in
  // turn.  Buckets are ordered oldest->newest with non-increasing sizes
  // from the front, so the run of a given size is contiguous (but not
  // necessarily at the tail once sizes above 1 exist).
  std::uint64_t size = 1;
  while (true) {
    std::size_t first = buckets_.size();
    unsigned count = 0;
    for (std::size_t i = buckets_.size(); i-- > 0;) {
      if (buckets_[i].size < size) continue;  // newer, smaller buckets
      if (buckets_[i].size > size) break;     // passed the run
      first = i;
      ++count;
    }
    if (count <= k_ + 1) break;
    // Merge the two *oldest* buckets of this size (indices first, first+1):
    // the merged bucket keeps the newer timestamp and doubles in size.
    buckets_[first + 1].size = size * 2;
    buckets_.erase(buckets_.begin() + static_cast<std::ptrdiff_t>(first));
    size *= 2;
  }
}

void ExpHistogram::expire(std::uint64_t now, std::uint64_t window) {
  while (!buckets_.empty() && now - buckets_.front().newest >= window)
    buckets_.pop_front();
}

double ExpHistogram::count(std::uint64_t now, std::uint64_t window) const {
  double total = 0.0;
  bool straddle_seen = false;
  for (const auto& b : buckets_) {
    if (now - b.newest >= window) continue;  // entirely expired (newest is out)
    if (!straddle_seen) {
      // Oldest in-window bucket may straddle the boundary: half weight.
      straddle_seen = true;
      total += b.size == 1 ? 1.0 : static_cast<double>(b.size) / 2.0;
    } else {
      total += static_cast<double>(b.size);
    }
  }
  return total;
}

EcmSketch::EcmSketch(std::size_t counters, unsigned hashes, std::uint64_t window,
                     unsigned k_eh, std::uint32_t seed)
    : hashes_(hashes), window_(window), seed_(seed) {
  if (counters == 0) throw std::invalid_argument("ECM: counters must be > 0");
  if (hashes == 0) throw std::invalid_argument("ECM: hashes must be > 0");
  if (window == 0) throw std::invalid_argument("ECM: window must be > 0");
  if (k_eh == 0) throw std::invalid_argument("ECM: k_eh must be > 0");
  cells_.assign(counters, ExpHistogram(k_eh));
}

void EcmSketch::insert(std::uint64_t key) {
  ++time_;
  for (unsigned i = 0; i < hashes_; ++i) {
    ExpHistogram& cell = cells_[position(key, i)];
    cell.expire(time_, window_);
    cell.add(time_);
  }
}

double EcmSketch::frequency(std::uint64_t key) const {
  double best = -1.0;
  for (unsigned i = 0; i < hashes_; ++i) {
    double c = cells_[position(key, i)].count(time_, window_);
    if (best < 0.0 || c < best) best = c;
  }
  return best < 0.0 ? 0.0 : best;
}

std::size_t EcmSketch::memory_bytes() const {
  // Per live bucket: a 64-bit timestamp (the size exponent is implied by
  // the bucket's position), plus a directory slot per counter.
  std::size_t buckets = 0;
  for (const auto& c : cells_) buckets += c.bucket_count();
  return buckets * 8 + cells_.size() * sizeof(void*);
}

void EcmSketch::clear() {
  for (auto& c : cells_) c.clear();
  time_ = 0;
}

}  // namespace she::baselines
