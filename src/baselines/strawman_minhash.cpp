#include "baselines/strawman_minhash.hpp"

#include <algorithm>
#include <stdexcept>

namespace she::baselines {

StrawmanMinHash::StrawmanMinHash(std::size_t slots, std::uint64_t window,
                                 std::uint32_t seed, bool overwrite_expired)
    : window_(window),
      seed_(seed),
      overwrite_expired_(overwrite_expired),
      sig_(slots, kEmpty),
      ts_(slots, 0) {
  if (slots == 0) throw std::invalid_argument("StrawmanMinHash: slots must be > 0");
  if (window == 0) throw std::invalid_argument("StrawmanMinHash: window must be > 0");
}

void StrawmanMinHash::insert(std::uint64_t key) {
  ++time_;
  for (std::size_t i = 0; i < sig_.size(); ++i) {
    std::uint32_t v = value(key, i);
    if (v <= sig_[i] || (overwrite_expired_ && !live(i))) {
      sig_[i] = v;
      ts_[i] = time_;
    }
  }
}

std::size_t StrawmanMinHash::live_slots() const {
  std::size_t n = 0;
  for (std::size_t i = 0; i < sig_.size(); ++i)
    if (live(i)) ++n;
  return n;
}

double StrawmanMinHash::jaccard(const StrawmanMinHash& a, const StrawmanMinHash& b) {
  if (a.sig_.size() != b.sig_.size() || a.seed_ != b.seed_ ||
      a.overwrite_expired_ != b.overwrite_expired_)
    throw std::invalid_argument("StrawmanMinHash::jaccard: incompatible signatures");
  std::size_t match = 0;
  std::size_t compared = 0;
  for (std::size_t i = 0; i < a.sig_.size(); ++i) {
    bool la = a.live(i);
    bool lb = b.live(i);
    if (!la && !lb) continue;
    ++compared;
    if (la && lb && a.sig_[i] == b.sig_[i]) ++match;
  }
  return compared == 0 ? 0.0
                       : static_cast<double>(match) / static_cast<double>(compared);
}

void StrawmanMinHash::clear() {
  std::fill(sig_.begin(), sig_.end(), kEmpty);
  std::fill(ts_.begin(), ts_.end(), 0);
  time_ = 0;
}

}  // namespace she::baselines
