// Straw-man sliding MinHash (paper Sec. 7.1): classic MinHash with a 64-bit
// timestamp attached to each signature slot.
//
// The paper describes it only as "the modified MinHash by adding a 64-bit
// timestamp for each pair of counters to indicate if the counters need to
// be cleaned".  The natural naive implementation keeps pure min-update
// semantics: a slot is re-stamped only when its minimum is (re)established,
// and a slot whose stored minimum has left the window is invalid at query
// time.  The flaw — the reason SHE-MH beats it ~10x in Fig. 9e — is that a
// stale minimum *poisons* its slot: larger in-window values cannot displace
// it, so the slot stays invalid until an even smaller hash happens to
// arrive, and the number of usable slots decays over the stream's life.
//
// `overwrite_expired = true` selects a repaired variant (an expired slot is
// overwritten by the next arrival, TOBF-style) used by the ablation benches
// to show how much of the gap the naive timestamping accounts for.
//
// Memory: 3-byte value + 8-byte timestamp per slot — 11 bytes/slot vs.
// SHE-MH's 3 bytes + 1 mark bit.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bobhash.hpp"

namespace she::baselines {

class StrawmanMinHash {
 public:
  /// `slots` signature slots over a window of `window` items.  Two
  /// signatures to be compared must share `seed` and the variant flag.
  StrawmanMinHash(std::size_t slots, std::uint64_t window,
                  std::uint32_t seed = 0, bool overwrite_expired = false);

  void insert(std::uint64_t key);

  void clear();

  [[nodiscard]] std::uint64_t time() const { return time_; }
  [[nodiscard]] std::size_t slot_count() const { return sig_.size(); }
  [[nodiscard]] std::size_t memory_bytes() const { return sig_.size() * 11; }

  /// Slots whose stored minimum is inside the window (usable at query).
  [[nodiscard]] std::size_t live_slots() const;

  static constexpr std::uint32_t kEmpty = 1u << 24;

  /// Jaccard estimate: a slot counts when at least one side is usable;
  /// it matches when both sides are usable and equal.
  static double jaccard(const StrawmanMinHash& a, const StrawmanMinHash& b);

 private:
  [[nodiscard]] std::uint32_t value(std::uint64_t key, std::size_t i) const {
    return BobHash32(seed_ + static_cast<std::uint32_t>(i))(key) & 0xFFFFFFu;
  }
  [[nodiscard]] bool live(std::size_t i) const {
    return ts_[i] != 0 && time_ - ts_[i] < window_;
  }

  std::uint64_t window_;
  std::uint32_t seed_;
  bool overwrite_expired_;
  std::uint64_t time_ = 0;
  std::vector<std::uint32_t> sig_;
  std::vector<std::uint64_t> ts_;
};

}  // namespace she::baselines
