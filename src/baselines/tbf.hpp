// TBF — Timing Bloom Filter [Zhang & Guan, ICDCS 2008].
//
// Like TOBF, but stores *wraparound* b-bit times instead of raw 64-bit
// timestamps (paper setting: 18-bit counters), plus a background scan that
// expires out-dated slots: each insertion advances a scan pointer by
// ceil(m / N) slots so the whole array is revisited at least once per
// window, keeping wrapped ages unambiguous as long as 2^b exceeds ~2N.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bobhash.hpp"
#include "common/packed_array.hpp"

namespace she::baselines {

class TimingBloomFilter {
 public:
  /// `slots` cells of `counter_bits` (paper: 18), `hashes` probes, window N.
  TimingBloomFilter(std::size_t slots, unsigned hashes, std::uint64_t window,
                    unsigned counter_bits = 18, std::uint32_t seed = 0);

  void insert(std::uint64_t key);

  /// True iff all k hashed slots hold an in-window wrapped time.
  [[nodiscard]] bool contains(std::uint64_t key) const;

  void clear();

  [[nodiscard]] std::uint64_t time() const { return time_; }
  [[nodiscard]] std::size_t memory_bytes() const { return cells_.memory_bytes(); }

 private:
  [[nodiscard]] std::size_t position(std::uint64_t key, unsigned i) const {
    return BobHash32(seed_ + i)(key) % cells_.size();
  }

  /// Wrapped stamp of time t: (t mod (2^b - 1)) + 1, so 0 always = empty.
  [[nodiscard]] std::uint64_t stamp(std::uint64_t t) const {
    return (t % (cells_.max_value())) + 1;
  }

  /// True if the slot is empty or its wrapped age is >= window.
  [[nodiscard]] bool expired(std::uint64_t cell) const;

  unsigned hashes_;
  std::uint64_t window_;
  std::uint32_t seed_;
  std::uint64_t time_ = 0;
  std::size_t scan_ = 0;       // background expiry pointer
  std::size_t scan_step_;      // slots expired per insertion
  PackedArray cells_;          // wrapped times, 0 = empty
};

}  // namespace she::baselines
