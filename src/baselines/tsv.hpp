// TSV — Timestamp-Vector [Kim & O'Hallaron, GLOBECOM 2003].
//
// A Bitmap where each bit is replaced by a full 64-bit arrival timestamp.
// Insert stamps the hashed slot; the cardinality query counts slots whose
// timestamp falls inside the window ("active") and feeds the zero count to
// the same linear-counting MLE as Bitmap.  Exact expiry, but 64x the memory
// per cell — the memory inefficiency the paper criticizes.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bobhash.hpp"

namespace she::baselines {

class TimestampVector {
 public:
  /// `slots` timestamp cells, window of `window` items.
  TimestampVector(std::size_t slots, std::uint64_t window, std::uint32_t seed = 0);

  void insert(std::uint64_t key);

  /// Linear-counting cardinality over the active slots.
  [[nodiscard]] double cardinality() const;

  void clear();

  [[nodiscard]] std::uint64_t time() const { return time_; }
  [[nodiscard]] std::size_t memory_bytes() const {
    return ts_.size() * sizeof(std::uint64_t);
  }

 private:
  std::size_t slots_;
  std::uint64_t window_;
  std::uint32_t seed_;
  std::uint64_t time_ = 0;
  std::vector<std::uint64_t> ts_;  // 0 = never written
};

}  // namespace she::baselines
