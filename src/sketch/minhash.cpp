#include "sketch/minhash.hpp"

#include <algorithm>
#include <stdexcept>

namespace she::fixed {

MinHash::MinHash(std::size_t m, std::uint32_t seed)
    : sig_(m, kEmpty), seed_(seed) {
  if (m == 0) throw std::invalid_argument("MinHash: m must be > 0");
}

void MinHash::insert(std::uint64_t key) {
  for (std::size_t i = 0; i < sig_.size(); ++i)
    sig_[i] = std::min(sig_[i], value(key, i));
}

void MinHash::merge(const MinHash& other) {
  if (sig_.size() != other.sig_.size() || seed_ != other.seed_)
    throw std::invalid_argument("MinHash::merge: incompatible signatures");
  for (std::size_t i = 0; i < sig_.size(); ++i)
    sig_[i] = std::min(sig_[i], other.sig_[i]);
}

void MinHash::clear() { std::fill(sig_.begin(), sig_.end(), kEmpty); }

double MinHash::jaccard(const MinHash& a, const MinHash& b) {
  if (a.sig_.size() != b.sig_.size())
    throw std::invalid_argument("MinHash::jaccard: size mismatch");
  std::size_t match = 0;
  std::size_t compared = 0;
  for (std::size_t i = 0; i < a.sig_.size(); ++i) {
    if (a.sig_[i] == kEmpty && b.sig_[i] == kEmpty) continue;
    ++compared;
    if (a.sig_[i] == b.sig_[i]) ++match;
  }
  return compared == 0 ? 0.0 : static_cast<double>(match) / static_cast<double>(compared);
}

}  // namespace she::fixed
