#include "sketch/bloom_filter.hpp"

#include <stdexcept>

namespace she::fixed {

BloomFilter::BloomFilter(std::size_t bits, unsigned k, std::uint32_t seed)
    : bits_(bits), k_(k), seed_(seed) {
  if (bits == 0) throw std::invalid_argument("BloomFilter: bits must be > 0");
  if (k == 0) throw std::invalid_argument("BloomFilter: k must be > 0");
}

void BloomFilter::insert(std::uint64_t key) {
  for (unsigned i = 0; i < k_; ++i) bits_.set(position(key, i));
}

void BloomFilter::merge(const BloomFilter& other) {
  if (bits_.size() != other.bits_.size() || k_ != other.k_ || seed_ != other.seed_)
    throw std::invalid_argument("BloomFilter::merge: incompatible filters");
  bits_ |= other.bits_;
}

bool BloomFilter::contains(std::uint64_t key) const {
  for (unsigned i = 0; i < k_; ++i)
    if (!bits_.test(position(key, i))) return false;
  return true;
}

}  // namespace she::fixed
