#include "sketch/hyperloglog.hpp"

#include <cmath>
#include <stdexcept>

#include "common/int_math.hpp"

namespace she::fixed {

namespace {
constexpr unsigned kRankBits = 5;    // register width
constexpr unsigned kValueBits = 32;  // hashed value width fed to the rank
}  // namespace

HyperLogLog::HyperLogLog(std::size_t registers, std::uint32_t seed)
    : regs_(registers, kRankBits), seed_(seed) {
  if (registers == 0) throw std::invalid_argument("HyperLogLog: registers must be > 0");
}

std::uint8_t HyperLogLog::rank(std::uint64_t key) const {
  std::uint32_t h = BobHash32(seed_ + 0x5eed)(key);
  return hll_rank(h, kValueBits);
}

void HyperLogLog::insert(std::uint64_t key) {
  std::size_t i = index(key);
  std::uint64_t r = rank(key);
  if (r > regs_.max_value()) r = regs_.max_value();
  if (r > regs_.get(i)) regs_.set(i, r);
}

void HyperLogLog::merge(const HyperLogLog& other) {
  if (regs_.size() != other.regs_.size() || seed_ != other.seed_)
    throw std::invalid_argument("HyperLogLog::merge: incompatible sketches");
  for (std::size_t i = 0; i < regs_.size(); ++i) {
    std::uint64_t o = other.regs_.get(i);
    if (o > regs_.get(i)) regs_.set(i, o);
  }
}

double HyperLogLog::alpha(std::size_t m) {
  if (m <= 16) return 0.673;
  if (m <= 32) return 0.697;
  if (m <= 64) return 0.709;
  return 0.7213 / (1.0 + 1.079 / static_cast<double>(m));
}

double HyperLogLog::estimate(double inv_power_sum, std::size_t observed,
                             double m_total, std::size_t zeros) {
  if (observed == 0) return 0.0;
  double k = static_cast<double>(observed);
  double raw = alpha(observed) * k * m_total / inv_power_sum;
  // Small-range correction: fall back to linear counting over the observed
  // registers, scaled to the full array.
  if (raw <= 2.5 * m_total && zeros > 0) {
    double lc = -k * std::log(static_cast<double>(zeros) / k);
    return lc * (m_total / k);
  }
  return raw;
}

double HyperLogLog::cardinality() const {
  double sum = 0.0;
  std::size_t zeros = 0;
  const std::size_t m = regs_.size();
  for (std::size_t i = 0; i < m; ++i) {
    std::uint64_t r = regs_.get(i);
    if (r == 0) ++zeros;
    sum += std::ldexp(1.0, -static_cast<int>(r));
  }
  return estimate(sum, m, static_cast<double>(m), zeros);
}

}  // namespace she::fixed
