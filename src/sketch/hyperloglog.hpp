// Fixed-window HyperLogLog [Flajolet et al. 2007] — CSM triple
// <counter, 1, F(x,y)=max(rank(x), y)>.
//
// Registers are 5-bit packed cells (the paper stores leading-zero counts of
// 32-bit hash values in 5-bit cells).  The estimator includes the standard
// bias constant alpha_m and the small-range linear-counting correction.
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/bobhash.hpp"
#include "common/packed_array.hpp"

namespace she::fixed {

class HyperLogLog {
 public:
  /// `registers` counters (need not be a power of two; indexing uses mod).
  explicit HyperLogLog(std::size_t registers, std::uint32_t seed = 0);

  /// Insert: C[i] = max(C[i], rank) where rank = #leading-zeros + 1 of the
  /// value hash, i = index hash mod m.
  void insert(std::uint64_t key);

  /// Bias-corrected harmonic-mean estimate with small-range correction.
  [[nodiscard]] double cardinality() const;

  void clear() { regs_.clear(); }

  /// Register-wise max with an identically-configured sketch: the merged
  /// estimate is the cardinality of the union of the inserted key sets.
  void merge(const HyperLogLog& other);

  [[nodiscard]] std::size_t register_count() const { return regs_.size(); }
  [[nodiscard]] std::size_t memory_bytes() const { return regs_.memory_bytes(); }

  /// Index and rank decomposition (exposed so SHE-HLL maps identically).
  [[nodiscard]] std::size_t index(std::uint64_t key) const {
    return BobHash32(seed_)(key) % regs_.size();
  }
  [[nodiscard]] std::uint8_t rank(std::uint64_t key) const;

  /// Bias constant alpha_m for an m-register estimator.
  static double alpha(std::size_t m);

  /// Estimator shared with SHE-HLL: given the sum of 2^-reg over `observed`
  /// registers (treating empty registers as 2^0), the register total `m_total`
  /// the estimate is scaled to, and `zeros` = #empty observed registers.
  static double estimate(double inv_power_sum, std::size_t observed,
                         double m_total, std::size_t zeros);

 private:
  PackedArray regs_;  // 5-bit ranks, value 0 = empty
  std::uint32_t seed_;
};

}  // namespace she::fixed
