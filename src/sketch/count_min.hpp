// Fixed-window Count-Min sketch [Cormode & Muthukrishnan 2005] — CSM triple
// <counter, k, F(x,y)=y+1>.
//
// The paper's CSM presents CM as a single n-counter array with k hash
// positions (the "one-row, k probes" layout also used by its released code),
// rather than the k-row matrix; we follow that layout so SHE-CM maps onto
// identical cells.  Counters are 32-bit.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/bobhash.hpp"

namespace she::fixed {

class CountMin {
 public:
  /// `counters` 32-bit cells probed by `k` hash functions.
  CountMin(std::size_t counters, unsigned k, std::uint32_t seed = 0);

  /// Insert: add 1 to each of the k hashed counters.
  void insert(std::uint64_t key);

  /// Query: min over the k hashed counters.  Never under-estimates.
  [[nodiscard]] std::uint64_t frequency(std::uint64_t key) const;

  void clear();

  /// Counter-wise (saturating) sum with an identically-configured sketch:
  /// the merged sketch answers frequency queries for the combined streams.
  void merge(const CountMin& other);

  [[nodiscard]] std::size_t counter_count() const { return cells_.size(); }
  [[nodiscard]] unsigned hash_count() const { return k_; }
  [[nodiscard]] std::size_t memory_bytes() const {
    return cells_.size() * sizeof(std::uint32_t);
  }

  [[nodiscard]] std::size_t position(std::uint64_t key, unsigned i) const {
    return BobHash32(seed_ + i)(key) % cells_.size();
  }

 private:
  std::vector<std::uint32_t> cells_;
  unsigned k_;
  std::uint32_t seed_;
};

}  // namespace she::fixed
