// Fixed-window MinHash [Broder 1997] — CSM triple
// <counter, m, F(x,y)=min(hash_i(x), y)>.
//
// Two synchronized signature arrays (one per stream) of M counters; hash
// function i keeps the minimum of H_i over all inserted keys.  The Jaccard
// estimate is the fraction of matching signature slots.  Hash outputs are
// 24-bit as in the paper's setup.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/bobhash.hpp"

namespace she::fixed {

/// One MinHash signature (one stream side).
class MinHash {
 public:
  /// `m` hash functions / signature slots.
  explicit MinHash(std::size_t m, std::uint32_t seed = 0);

  /// Insert: slot i = min(slot i, H_i(key)) for all i.
  void insert(std::uint64_t key);

  void clear();

  /// Slot-wise min with an identically-configured signature: the merged
  /// signature represents the union of the two inserted key sets.
  void merge(const MinHash& other);

  [[nodiscard]] std::size_t slot_count() const { return sig_.size(); }
  [[nodiscard]] std::size_t memory_bytes() const {
    return sig_.size() * 3;  // 24-bit values
  }
  [[nodiscard]] std::uint32_t slot(std::size_t i) const { return sig_[i]; }

  /// Empty-slot sentinel (no key inserted yet): all-ones 24-bit value + 1.
  static constexpr std::uint32_t kEmpty = 1u << 24;

  /// 24-bit hash value of `key` under function `i`.
  [[nodiscard]] std::uint32_t value(std::uint64_t key, std::size_t i) const {
    return BobHash32(seed_ + static_cast<std::uint32_t>(i))(key) & 0xFFFFFFu;
  }

  /// Jaccard estimate between two signatures of equal size: matching slots
  /// (both non-empty and equal) over compared slots.
  static double jaccard(const MinHash& a, const MinHash& b);

 private:
  std::vector<std::uint32_t> sig_;
  std::uint32_t seed_;
};

}  // namespace she::fixed
